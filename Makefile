GO ?= go
BENCH_PKGS = ./internal/scanner/ ./internal/pattern/ ./internal/mutator/

.PHONY: build vet test race bench bench-all

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine benchmarks: scan throughput, match-engine hot paths, cached
# mutation. Writes bench.txt so CI can upload it as an artifact and the
# perf trajectory stays comparable across PRs. No pipe to tee: the
# recipe must fail when go test fails.
bench:
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) > bench.txt 2>&1; \
	  status=$$?; cat bench.txt; exit $$status

# Everything, including the paper-evaluation campaign benchmarks at the
# repository root (slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench-all.txt 2>&1; \
	  status=$$?; cat bench-all.txt; exit $$status
