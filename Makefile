GO ?= go
BENCH_PKGS = ./internal/scanner/ ./internal/pattern/ ./internal/mutator/ ./internal/interp/

.PHONY: build vet test race shuffle cover fuzz-smoke golden-update bench bench-exec bench-pipeline bench-all metrics-smoke worker-chaos-smoke restart-chaos-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Randomized test order + race detector: the order-independence gate CI
# runs as its second matrix leg.
shuffle:
	$(GO) test -shuffle=on -race -count=1 ./...

# Coverage profile + function summary (coverage.out is the CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Short fuzz runs over the DSL compiler, the pattern matcher and the
# three-engine differential interpreter target (the seed corpora live
# under the packages' testdata/fuzz/ directories).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/dsl/
	$(GO) test -run '^$$' -fuzz FuzzMatchPrefix -fuzztime $(FUZZTIME) ./internal/pattern/
	$(GO) test -run '^$$' -fuzz FuzzEngineEquivalence -fuzztime $(FUZZTIME) ./internal/interp/

# Regenerate the golden campaign-record fixtures (testdata/golden/)
# after an intentional behavior change; review the diff before commit.
golden-update:
	$(GO) test -run TestGoldenCampaignRecords -count=1 -update .

# Engine benchmarks: scan throughput, match-engine hot paths, cached
# mutation, interpreter round execution (tree-walk vs compiled). Writes
# bench.txt so CI can upload it as an artifact and the perf trajectory
# stays comparable across PRs. No pipe to tee: the recipe must fail when
# go test fails. Also emits the machine-readable execute-phase results
# (BENCH_exec.json) via bench-exec.
bench: bench-exec
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) > bench.txt 2>&1; \
	  status=$$?; cat bench.txt; exit $$status

# End-to-end execute-phase benchmark: campaign throughput and two-round
# experiment latency, compiled vs tree-walk, as machine-readable JSON.
bench-exec:
	PROFIPY_BENCH_JSON=$(CURDIR)/BENCH_exec.json $(GO) test -run TestEmitExecBenchJSON -count=1 .

# Streaming-pipeline benchmark: campaign record throughput through the
# Local vs Sharded executors plus the online aggregator's per-record
# cost, as machine-readable JSON (BENCH_pipeline.json, a CI artifact).
bench-pipeline:
	PROFIPY_BENCH_PIPELINE_JSON=$(CURDIR)/BENCH_pipeline.json $(GO) test -run TestEmitPipelineBenchJSON -count=1 .

# Observability gate: boots profipyd, runs a demo campaign, and fails
# if /metrics is missing an expected family, the exposition format does
# not parse, or the pprof debug listener is unreachable.
metrics-smoke:
	./scripts/metrics-smoke.sh

# Fault-tolerance gate: boots profipyd plus two profipy-worker
# processes, SIGKILLs one mid-campaign, and fails unless the surviving
# worker finishes the campaign with records byte-identical to an
# in-process baseline run.
worker-chaos-smoke:
	./scripts/worker-chaos-smoke.sh

# Crash-consistency gate: boots profipyd, SIGKILLs it mid-campaign with
# a second job still queued, restarts it on the same data dir, and
# fails unless the resumed campaign's records and report come out
# byte-identical to an uninterrupted run and the queued job completes.
restart-chaos-smoke:
	./scripts/restart-chaos-smoke.sh

# Everything, including the paper-evaluation campaign benchmarks at the
# repository root (slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench-all.txt 2>&1; \
	  status=$$?; cat bench-all.txt; exit $$status
