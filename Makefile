GO ?= go
BENCH_PKGS = ./internal/scanner/ ./internal/pattern/ ./internal/mutator/ ./internal/interp/

.PHONY: build vet test race bench bench-exec bench-all

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine benchmarks: scan throughput, match-engine hot paths, cached
# mutation, interpreter round execution (tree-walk vs compiled). Writes
# bench.txt so CI can upload it as an artifact and the perf trajectory
# stays comparable across PRs. No pipe to tee: the recipe must fail when
# go test fails. Also emits the machine-readable execute-phase results
# (BENCH_exec.json) via bench-exec.
bench: bench-exec
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) > bench.txt 2>&1; \
	  status=$$?; cat bench.txt; exit $$status

# End-to-end execute-phase benchmark: campaign throughput and two-round
# experiment latency, compiled vs tree-walk, as machine-readable JSON.
bench-exec:
	PROFIPY_BENCH_JSON=$(CURDIR)/BENCH_exec.json $(GO) test -run TestEmitExecBenchJSON -count=1 .

# Everything, including the paper-evaluation campaign benchmarks at the
# repository root (slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench-all.txt 2>&1; \
	  status=$$?; cat bench-all.txt; exit $$status
