// Benchmark harness regenerating every table and figure of the paper's
// evaluation. The experiment index lives in DESIGN.md; paper-vs-measured
// values are recorded in EXPERIMENTS.md.
//
//	F1   BenchmarkFig1DSLCompile        Fig. 1 bug specifications
//	T1   BenchmarkTable1Faultloads      Table I faultload definitions
//	E-A  BenchmarkCampaignA             §V-A  errors from external APIs
//	E-B  BenchmarkCampaignB             §V-B  wrong inputs
//	E-C  BenchmarkCampaignC             §V-C  resource management bugs
//	E-D1 BenchmarkScanKVClient          §V-D  scan+mutate the client
//	E-D2 BenchmarkScanLargeProject      §V-D  OpenStack-scale scan
//	E-D3 BenchmarkSingleExperiment      §V-D  10–120s per experiment
//	E-D4 BenchmarkParallelExperiments   §V-D  N−1 parallel containers
//	     BenchmarkAblationTrigger       trigger-wrap overhead (design ablation)
//	     BenchmarkAblationCoverage      coverage-pruned vs full plans
//	     BenchmarkSchedulerThroughput   async campaign jobs/s vs pool size
//	     BenchmarkSchedulerOverhead     queue+pool cost with no-op jobs
package profipy

import (
	"context"
	"fmt"
	"testing"

	"profipy/internal/campaign"
	"profipy/internal/faultmodel"
	"profipy/internal/genproject"
	"profipy/internal/kvclient"
	"profipy/internal/sandbox"
	"profipy/internal/scanner"
	"profipy/internal/scheduler"
	"profipy/internal/workload"
)

// fig1Specs are the three bug specifications of Fig. 1.
var fig1Specs = []Spec{
	{Name: "MFC", DSL: `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`},
	{Name: "MIFS", DSL: `
change {
	if $EXPR{var=node} {
		$BLOCK{stmts=1,4}
		continue
	}
} into {
}`},
	{Name: "WPF", DSL: `
change {
	$CALL#c{name=utils.Execute}(..., $STRING#s{val=*-*}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`},
}

// BenchmarkFig1DSLCompile measures DSL compilation of the Fig. 1 specs
// (experiment F1).
func BenchmarkFig1DSLCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range fig1Specs {
			if _, err := Compile(s.Name, s.DSL); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1Faultloads compiles and scans the three Table I
// faultloads, reporting the injection-point counts the paper's case study
// is built on (experiment T1). Paper: A=26, B=66, C=37.
func BenchmarkTable1Faultloads(b *testing.B) {
	rows := []struct {
		name  string
		files map[string][]byte
		specs []Spec
	}{
		{"external-api-failures", kvclient.ClientFiles(), kvclient.CampaignAFaultload()},
		{"wrong-inputs", kvclient.WorkloadFiles(), kvclient.CampaignBFaultload()},
		{"resource-management", kvclient.WorkloadFiles(), kvclient.CampaignCFaultload()},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			points := 0
			for i := 0; i < b.N; i++ {
				pl, err := Scan(row.files, row.specs)
				if err != nil {
					b.Fatal(err)
				}
				points = pl.Len()
			}
			b.ReportMetric(float64(points), "points")
		})
	}
}

func benchCampaign(b *testing.B, build func(rt *Runtime, seed int64) *campaign.Campaign, seed int64) {
	b.Helper()
	var rep *Report
	for i := 0; i < b.N; i++ {
		rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
		res, err := build(rt, seed).Run()
		if err != nil {
			b.Fatal(err)
		}
		rep = res.Report
	}
	b.ReportMetric(float64(rep.Total), "points")
	b.ReportMetric(float64(rep.Covered), "covered")
	b.ReportMetric(float64(rep.Failures), "failures")
	b.ReportMetric(float64(rep.Unavailable), "unavailable")
}

// BenchmarkCampaignA regenerates §V-A (paper: 26 points, 13 covered,
// 12 failures, half unavailable in round 2).
func BenchmarkCampaignA(b *testing.B) { benchCampaign(b, kvclient.CampaignA, 101) }

// BenchmarkCampaignB regenerates §V-B (paper: 66 points, all covered,
// 29 failures: AttributeError, KeyNotFound, 400 Bad Request).
func BenchmarkCampaignB(b *testing.B) { benchCampaign(b, kvclient.CampaignB, 202) }

// BenchmarkCampaignC regenerates §V-C (paper: 37 points, all covered,
// 14 failures, mostly UnboundLocalError).
func BenchmarkCampaignC(b *testing.B) { benchCampaign(b, kvclient.CampaignC, 303) }

// BenchmarkScanKVClient measures scan+mutate over the whole client
// project with all three faultloads (experiment E-D1; paper: < 1 min for
// Python-etcd).
func BenchmarkScanKVClient(b *testing.B) {
	files := kvclient.Sources()
	specs := append(append(kvclient.CampaignAFaultload(), kvclient.CampaignBFaultload()...),
		kvclient.CampaignCFaultload()...)
	models, err := faultmodel.CompileAll(specs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	points := 0
	for i := 0; i < b.N; i++ {
		pts, err := scanner.ScanProject(files, models)
		if err != nil {
			b.Fatal(err)
		}
		// Mutate the first point of each file to include generation cost.
		seen := map[string]bool{}
		for _, pt := range pts {
			if seen[pt.File] {
				continue
			}
			seen[pt.File] = true
			spec := findSpec(specs, pt.Spec)
			if _, err := Mutate(files[pt.File], spec, pt, MutateOptions{Triggered: true}); err != nil {
				b.Fatal(err)
			}
		}
		points = len(pts)
	}
	b.ReportMetric(float64(points), "points")
}

func findSpec(specs []Spec, name string) Spec {
	for _, s := range specs {
		if s.Name == name {
			return s
		}
	}
	return Spec{}
}

// BenchmarkScanLargeProject measures scan throughput on synthetic corpora
// with 120 DSL patterns (experiment E-D2; paper: ~400K lines -> 17,488
// locations in ~20 min). The shape to reproduce is linear scaling in
// corpus size; lines/s is the comparable throughput metric.
func BenchmarkScanLargeProject(b *testing.B) {
	for _, lines := range []int{10_000, 40_000, 100_000} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			files := genproject.Generate(genproject.DefaultConfig(lines, 1))
			total := genproject.Lines(files)
			models, err := faultmodel.CompileAll(genproject.Patterns(120))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			points := 0
			for i := 0; i < b.N; i++ {
				pts, err := scanner.ScanProject(files, models)
				if err != nil {
					b.Fatal(err)
				}
				points = len(pts)
			}
			b.ReportMetric(float64(points), "points")
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}

// BenchmarkSingleExperiment measures one full experiment (mutate, deploy
// container, two workload rounds, teardown) — experiment E-D3 (paper:
// 10–120s per experiment, worst case a hang). The virtual-duration metric
// is the in-experiment time that corresponds to the paper's wall clock.
func BenchmarkSingleExperiment(b *testing.B) {
	files := kvclient.Sources()
	run := func(b *testing.B, specs []Spec, pointIdx int) {
		b.Helper()
		pl, err := Scan(map[string][]byte{kvclient.FileClient: files[kvclient.FileClient]}, specs)
		if err != nil {
			b.Fatal(err)
		}
		if pl.Len() <= pointIdx {
			b.Fatalf("no point %d (have %d)", pointIdx, pl.Len())
		}
		pt := pl.Points[pointIdx]
		spec, _ := pl.Spec(pt.Spec)
		mut, err := Mutate(files[kvclient.FileClient], spec, pt, MutateOptions{Triggered: true})
		if err != nil {
			b.Fatal(err)
		}
		imgFiles := map[string][]byte{}
		for k, v := range files {
			imgFiles[k] = v
		}
		imgFiles[kvclient.FileClient] = mut.Source
		rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 5})
		var virtual int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			img := kvclient.Image()
			img.Files = imgFiles
			ctr := rt.CreateSeeded(img, 5)
			res, err := workload.Run(ctr, kvclient.WorkloadConfig())
			if err != nil {
				b.Fatal(err)
			}
			virtual = res.Round1().VirtualNS + res.Round2().VirtualNS
			if err := rt.Destroy(ctr); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(virtual)/1e9, "virtual-s")
	}
	b.Run("typical", func(b *testing.B) {
		run(b, kvclient.CampaignAFaultload(), 0)
	})
	b.Run("hang-worst-case", func(b *testing.B) {
		// An injected unbounded delay in the request path makes round 1
		// hit the workload timeout — the paper's 120s worst case.
		hang := []Spec{{Name: "hang", Type: "Hang", DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.Request}($EXPR#m, $EXPR#u, $EXPR#p)
} into {
	$TIMEOUT{ms=500000}
	$VAR#v := $CALL#c
}`}}
		run(b, hang, 2) // the tryOnce request site: hit on every API call
	})
}

// BenchmarkParallelExperiments sweeps the simulated host's core count:
// the runtime schedules at most N−1 parallel containers (experiment
// E-D4, the PAIN rule [52]). The metric is experiments per wall second
// over a fixed 24-experiment batch.
func BenchmarkParallelExperiments(b *testing.B) {
	files := kvclient.Sources()
	const batch = 24
	for _, cores := range []int{2, 3, 5, 9} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := NewRuntime(RuntimeConfig{Cores: cores, Seed: 1})
				img := kvclient.Image()
				img.Files = files
				results := sandbox.RunBatch(rt, img, batch, func(j int) error {
					ctr := rt.CreateSeeded(img, int64(j))
					defer func() { _ = rt.Destroy(ctr) }()
					_, err := workload.Run(ctr, kvclient.WorkloadConfig())
					return err
				})
				for _, err := range results {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "experiments/s")
			b.ReportMetric(float64(cores-1), "workers")
		})
	}
}

// BenchmarkAblationTrigger compares a fault-free workload run against the
// same run with a trigger-wrapped (disabled) mutation in the hot path:
// the cost of keeping original statements behind the EDFI-style trigger.
func BenchmarkAblationTrigger(b *testing.B) {
	files := kvclient.Sources()
	runOnce := func(b *testing.B, srcs map[string][]byte) {
		b.Helper()
		rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 3})
		for i := 0; i < b.N; i++ {
			img := kvclient.Image()
			img.Files = srcs
			ctr := rt.CreateSeeded(img, 3)
			cfg := kvclient.WorkloadConfig()
			cfg.Rounds = 1
			cfg.FaultFree = true
			res, err := workload.Run(ctr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Round1().OK {
				b.Fatalf("fault-free round failed: %s", res.Round1().Message)
			}
			if err := rt.Destroy(ctr); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pristine", func(b *testing.B) { runOnce(b, files) })
	b.Run("trigger-wrapped-disabled", func(b *testing.B) {
		specs := kvclient.CampaignAFaultload()
		pl, err := Scan(map[string][]byte{kvclient.FileClient: files[kvclient.FileClient]}, specs)
		if err != nil {
			b.Fatal(err)
		}
		pt := pl.Points[2] // the tryOnce request site: on every API call
		spec, _ := pl.Spec(pt.Spec)
		mut, err := Mutate(files[kvclient.FileClient], spec, pt, MutateOptions{Triggered: true})
		if err != nil {
			b.Fatal(err)
		}
		srcs := map[string][]byte{}
		for k, v := range files {
			srcs[k] = v
		}
		srcs[kvclient.FileClient] = mut.Source
		runOnce(b, srcs)
	})
}

// BenchmarkSchedulerThroughput measures whole-campaign throughput
// through the async scheduler as the worker pool grows: a fixed batch of
// sampled Campaign-A jobs is enqueued and drained, reporting campaigns
// per wall second. This is the SaaS-layer analog of E-D4 — one level up
// from parallel experiments, we parallelize across campaigns.
func BenchmarkSchedulerThroughput(b *testing.B) {
	const batch = 8
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := scheduler.New(scheduler.Config{Workers: workers, QueueDepth: batch})
				ids := make([]string, 0, batch)
				for j := 0; j < batch; j++ {
					seed := int64(101 + j)
					id, err := s.Submit("bench", func(ctx context.Context, report func(scheduler.Progress)) (any, error) {
						c := kvclient.CampaignA(NewRuntime(RuntimeConfig{Cores: 4, Seed: 20}), seed)
						c.SampleN = 4
						c.OnProgress = func(p campaign.Progress) {
							report(scheduler.Progress{Phase: p.Phase, Done: p.Done, Total: p.Total})
						}
						return c.RunContext(ctx)
					})
					if err != nil {
						b.Fatal(err)
					}
					ids = append(ids, id)
				}
				for _, id := range ids {
					if st, _ := s.Wait(id); st.State != scheduler.Done {
						b.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
					}
				}
				s.Close()
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "campaigns/s")
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

// BenchmarkSchedulerOverhead isolates the queue + worker-pool cost by
// draining no-op jobs: the jobs/s ceiling the scheduling layer itself
// imposes on campaign throughput.
func BenchmarkSchedulerOverhead(b *testing.B) {
	s := scheduler.New(scheduler.Config{Workers: 4, QueueDepth: 1, Retain: 1})
	defer s.Close()
	noop := func(ctx context.Context, report func(scheduler.Progress)) (any, error) { return nil, nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Submit("noop", noop)
		if err != nil {
			b.Fatal(err)
		}
		if st, _ := s.Wait(id); st.State != scheduler.Done {
			b.Fatalf("job %s: %s", id, st.State)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkAblationCoverage compares campaign cost with and without the
// §IV-D coverage optimization (pruning experiments the workload cannot
// reach).
func BenchmarkAblationCoverage(b *testing.B) {
	for _, reduce := range []bool{false, true} {
		name := "full-plan"
		if reduce {
			name = "coverage-pruned"
		}
		b.Run(name, func(b *testing.B) {
			experiments := 0
			for i := 0; i < b.N; i++ {
				rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
				c := kvclient.CampaignA(rt, 101)
				c.ReducePlan = reduce
				res, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				experiments = len(res.Records)
			}
			b.ReportMetric(float64(experiments), "experiments")
		})
	}
}
