// Command genproject generates the synthetic large-scale scan corpora of
// §V-D (the OpenStack-scale performance evaluation) and optionally scans
// them, reporting injectable-location counts and throughput.
//
//	genproject -lines 400000 -patterns 120 -scan
//	genproject -lines 40000 -dir /tmp/corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"profipy/internal/faultmodel"
	"profipy/internal/genproject"
	"profipy/internal/scanner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "genproject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("genproject", flag.ContinueOnError)
	lines := fs.Int("lines", 40000, "approximate total source lines to generate")
	seed := fs.Int64("seed", 1, "generation seed")
	dir := fs.String("dir", "", "write generated files under this directory")
	patterns := fs.Int("patterns", 120, "number of DSL patterns for -scan")
	scan := fs.Bool("scan", false, "scan the generated corpus and report throughput")
	if err := fs.Parse(args); err != nil {
		return err
	}

	files := genproject.Generate(genproject.DefaultConfig(*lines, *seed))
	total := genproject.Lines(files)
	fmt.Printf("generated %d files, %d lines\n", len(files), total)

	if *dir != "" {
		for name, data := range files {
			path := filepath.Join(*dir, name)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
		}
		fmt.Println("written to", *dir)
	}

	if *scan {
		specs := genproject.Patterns(*patterns)
		models, err := faultmodel.CompileAll(specs)
		if err != nil {
			return err
		}
		start := time.Now()
		points, err := scanner.ScanProject(files, models)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("scan: %d patterns over %d lines -> %d injectable locations in %v (%.0f lines/s)\n",
			len(specs), total, len(points), elapsed, float64(total)/elapsed.Seconds())
	}
	return nil
}
