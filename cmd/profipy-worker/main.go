// Command profipy-worker is a remote execution agent for profipyd.
// It registers with a control plane, heartbeats, pulls shard leases
// for remote campaigns, rebuilds each leased campaign from its
// serialized spec and streams experiment records back over HTTP.
//
//	profipy-worker -server http://controlplane:8080 -parallel 4
//
// Workers are stateless and disposable: killing one at any instant
// only delays the campaign — its lease expires on the control plane
// and the shard is re-dispatched to a surviving worker (or executed
// in-process by profipyd itself). Run as many as you like; shard
// leases spread across whoever is alive.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"profipy/internal/worker"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profipy-worker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("profipy-worker", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "control plane base URL")
	name := fs.String("name", "", "worker name shown in the fleet listing (default: hostname)")
	parallel := fs.Int("parallel", 2, "concurrent experiments per shard")
	batch := fs.Int("batch", 8, "records per ingest batch")
	poll := fs.Duration("poll", 0, "lease poll interval override (0 = control plane's suggestion)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logJSON := fs.Bool("log-json", false, "emit logs as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(strings.ToLower(*logLevel))); err != nil {
		return fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", *logLevel)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	slog.SetDefault(slog.New(h))

	wname := *name
	if wname == "" {
		if hn, err := os.Hostname(); err == nil {
			wname = hn
		} else {
			wname = "worker"
		}
	}
	ag := worker.New(worker.Config{
		Server:    strings.TrimRight(*server, "/"),
		Name:      wname,
		Parallel:  *parallel,
		BatchSize: *batch,
		Poll:      *poll,
	})
	slog.Info("profipy-worker starting", "server", *server, "name", wname, "parallel", *parallel)
	err := ag.Run(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("profipy-worker: shutting down")
		// Give the control plane a beat to observe the final state of
		// any in-flight HTTP exchange before the process exits.
		time.Sleep(50 * time.Millisecond)
		return nil
	}
	return err
}
