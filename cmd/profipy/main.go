// Command profipy is the ProFIPy command-line interface: compile and
// inspect fault models, scan targets for injection points, generate
// mutated versions, and run the built-in case-study campaigns.
//
// Usage:
//
//	profipy models                      list predefined fault models
//	profipy scan    -dir D -model M     scan *.go under D with model M
//	profipy mutate  -dir D -model M -index N [-o FILE]
//	                                    emit the N-th mutation
//	profipy demo    -campaign A|B|C|R   reproduce a §V campaign (R = mixed
//	                                    compile-time + runtime injection)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"profipy"
	"profipy/internal/kvclient"
	"profipy/internal/sandbox"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profipy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: profipy <models|scan|mutate|demo> [flags]")
	}
	switch args[0] {
	case "models":
		return runModels()
	case "scan":
		return runScan(args[1:])
	case "mutate":
		return runMutate(args[1:])
	case "demo":
		return runDemo(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runModels() error {
	reg := profipy.PredefinedModels()
	for _, name := range reg.Names() {
		m, _ := reg.Get(name)
		fmt.Printf("%s — %s\n", m.Name, m.Description)
		for _, s := range m.Specs {
			fmt.Printf("  %-8s %s\n", s.Name, s.Doc)
		}
	}
	return nil
}

func loadModelSpecs(name string) ([]profipy.Spec, error) {
	reg := profipy.PredefinedModels()
	if m, ok := reg.Get(name); ok {
		return m.Specs, nil
	}
	// Fall back to a JSON model file on disk.
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("no predefined model %q and cannot read it as a file: %w", name, err)
	}
	m, err := loadModelJSON(data)
	if err != nil {
		return nil, err
	}
	return m.Specs, nil
}

func loadTargetDir(dir string) (map[string][]byte, error) {
	files := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files under %s", dir)
	}
	return files, nil
}

func runScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	dir := fs.String("dir", ".", "target source directory")
	model := fs.String("model", "gswfit", "predefined model name or JSON model file")
	planOut := fs.String("plan", "", "write the injection plan JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := loadModelSpecs(*model)
	if err != nil {
		return err
	}
	files, err := loadTargetDir(*dir)
	if err != nil {
		return err
	}
	pl, err := profipy.Scan(files, specs)
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d files with %d specs: %d injection points\n", len(files), len(specs), pl.Len())
	for typ, n := range pl.CountByType() {
		fmt.Printf("  %-24s %d\n", typ, n)
	}
	if *planOut != "" {
		data, err := pl.Save()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			return err
		}
		fmt.Println("plan written to", *planOut)
	}
	return nil
}

func runMutate(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ContinueOnError)
	dir := fs.String("dir", ".", "target source directory")
	model := fs.String("model", "gswfit", "predefined model name or JSON model file")
	index := fs.Int("index", 0, "injection point index from the scan ordering")
	out := fs.String("o", "", "output file (default: stdout)")
	triggered := fs.Bool("triggered", true, "wrap the fault in the run-time trigger")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := loadModelSpecs(*model)
	if err != nil {
		return err
	}
	files, err := loadTargetDir(*dir)
	if err != nil {
		return err
	}
	pl, err := profipy.Scan(files, specs)
	if err != nil {
		return err
	}
	if *index < 0 || *index >= pl.Len() {
		return fmt.Errorf("index %d out of range (plan has %d points)", *index, pl.Len())
	}
	pt := pl.Points[*index]
	spec, ok := pl.Spec(pt.Spec)
	if !ok {
		return fmt.Errorf("spec %q not in plan", pt.Spec)
	}
	mut, err := profipy.Mutate(files[pt.File], spec, pt, profipy.MutateOptions{Triggered: *triggered})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "point %s (%s at %s:%d)\n  original: %s\n  mutated:  %s\n",
		pt.ID(), pt.Spec, pt.File, pt.Line, mut.Original, mut.Mutated)
	if *out == "" {
		fmt.Println(string(mut.Source))
		return nil
	}
	return os.WriteFile(*out, mut.Source, 0o644)
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	which := fs.String("campaign", "A", "which campaign to run: the §V campaigns A, B or C, or R (mixed compile-time + runtime injection)")
	seed := fs.Int64("seed", 101, "deterministic seed")
	cores := fs.Int("cores", 4, "simulated host cores (N-1 parallel containers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rt := sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: *cores, Seed: *seed})
	var c *profipy.Campaign
	switch strings.ToUpper(*which) {
	case "A":
		c = kvclient.CampaignA(rt, *seed)
	case "B":
		c = kvclient.CampaignB(rt, *seed)
	case "C":
		c = kvclient.CampaignC(rt, *seed)
	case "R":
		c = kvclient.CampaignR(rt, *seed)
	default:
		return fmt.Errorf("unknown campaign %q", *which)
	}
	res, err := c.Run()
	if err != nil {
		return err
	}
	fmt.Println(res.Report.Render(c.Name))
	fmt.Printf("scan %v, coverage %v, execution %v; containers: %+v\n",
		res.ScanTime, res.CovTime, res.ExecTime, rt.Stats())
	if res.Injected > 0 {
		fmt.Printf("experiments: %d source-mutated, %d runtime-injected (no recompilation)\n",
			res.Mutated, res.Injected)
	}
	return nil
}
