package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cliTarget = `package svc

func Teardown(c *Conn, node string) {
	flush(c)
	DeletePort(c, node)
	notify(c)
}
`

func writeTarget(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "svc.go"), []byte(cliTarget), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunModels(t *testing.T) {
	if err := run([]string{"models"}); err != nil {
		t.Fatalf("models: %v", err)
	}
}

func TestRunScanWithPredefinedModel(t *testing.T) {
	dir := writeTarget(t)
	planPath := filepath.Join(dir, "plan.json")
	if err := run([]string{"scan", "-dir", dir, "-model", "gswfit", "-plan", planPath}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	data, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatalf("plan not written: %v", err)
	}
	if !strings.Contains(string(data), "MFC") {
		t.Error("plan JSON missing MFC points")
	}
}

func TestRunScanWithModelFile(t *testing.T) {
	dir := writeTarget(t)
	model := `{
  "name": "custom",
  "specs": [
    {"name": "omit", "type": "MFC", "dsl": "change {\n\t$BLOCK{tag=b1; stmts=1,*}\n\t$CALL{name=Delete*}(...)\n\t$BLOCK{tag=b2; stmts=1,*}\n} into {\n\t$BLOCK{tag=b1}\n\t$BLOCK{tag=b2}\n}"}
  ]
}`
	modelPath := filepath.Join(dir, "model.json")
	if err := os.WriteFile(modelPath, []byte(model), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scan", "-dir", dir, "-model", modelPath}); err != nil {
		t.Fatalf("scan with model file: %v", err)
	}
}

func TestRunMutateWritesOutput(t *testing.T) {
	dir := writeTarget(t)
	out := filepath.Join(dir, "mutant.txt")
	if err := run([]string{"mutate", "-dir", dir, "-model", "gswfit", "-index", "0", "-o", out}); err != nil {
		t.Fatalf("mutate: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("mutant not written: %v", err)
	}
	if !strings.Contains(string(data), "__fault_enabled()") {
		t.Error("mutant missing trigger branch")
	}
}

func TestRunMutateIndexOutOfRange(t *testing.T) {
	dir := writeTarget(t)
	if err := run([]string{"mutate", "-dir", dir, "-model", "gswfit", "-index", "9999"}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
}

func TestRunScanErrors(t *testing.T) {
	if err := run([]string{"scan", "-dir", t.TempDir()}); err == nil {
		t.Fatal("scan of empty dir should fail")
	}
	dir := writeTarget(t)
	if err := run([]string{"scan", "-dir", dir, "-model", "no-such-model"}); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestRunDemoSampledCampaign(t *testing.T) {
	// The demo subcommand runs a full campaign; keep it snappy.
	if err := run([]string{"demo", "-campaign", "C", "-seed", "5", "-cores", "4"}); err != nil {
		t.Fatalf("demo: %v", err)
	}
	if err := run([]string{"demo", "-campaign", "Z"}); err == nil {
		t.Fatal("unknown campaign should fail")
	}
}
