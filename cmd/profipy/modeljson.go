package main

import (
	"profipy"
	"profipy/internal/faultmodel"
)

// loadModelJSON parses and validates a fault-model JSON file.
func loadModelJSON(data []byte) (*profipy.Model, error) {
	return faultmodel.Load(data)
}
