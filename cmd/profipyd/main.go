// Command profipyd serves ProFIPy as-a-service: an HTTP/JSON API for
// uploading target projects, registering fault models, running fault
// injection campaigns and retrieving failure-analysis reports.
// Campaigns are scheduled asynchronously on a bounded job queue drained
// by a worker pool; clients poll jobs for streaming progress.
//
//	profipyd -addr :8080 -cores 8 -workers 2 -queue 64 -retain 256
//
// Endpoints (see internal/saas):
//
//	POST   /api/v1/projects            upload a project
//	GET    /api/v1/projects            list projects
//	POST   /api/v1/faultmodels         register a fault model (JSON DSL)
//	GET    /api/v1/faultmodels         list models
//	GET    /api/v1/faultmodels/{name}  fetch a model
//	POST   /api/v1/campaigns           enqueue a campaign → 202 {job}
//	                                   (?wait=true blocks → 201 {id, report})
//	GET    /api/v1/campaigns           list finished campaigns
//	GET    /api/v1/campaigns/{id}      campaign report (JSON)
//	GET    /api/v1/campaigns/{id}/text campaign report (text)
//	GET    /api/v1/jobs                list campaign jobs
//	GET    /api/v1/jobs/{id}           job status + live progress
//	DELETE /api/v1/jobs/{id}           cancel a queued/running job
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"profipy/internal/saas"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profipyd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("profipyd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cores := fs.Int("cores", 4, "simulated host cores (experiments run N-1 in parallel)")
	workers := fs.Int("workers", 2, "campaign scheduler worker pool size")
	queue := fs.Int("queue", 64, "max queued campaign jobs before 503")
	retain := fs.Int("retain", 256, "finished jobs kept for polling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := saas.NewServerWithOptions(saas.Options{
		Cores: *cores, Workers: *workers, QueueDepth: *queue, RetainJobs: *retain,
	})
	defer srv.Close()
	fmt.Printf("profipyd listening on %s (demo project: %s, %d campaign workers)\n",
		*addr, saas.DemoProjectID, *workers)
	return http.ListenAndServe(*addr, srv.Handler())
}
