// Command profipyd serves ProFIPy as-a-service: an HTTP/JSON API for
// uploading target projects, registering fault models, running fault
// injection campaigns and retrieving failure-analysis reports.
//
//	profipyd -addr :8080 -cores 8
//
// Endpoints (see internal/saas):
//
//	POST /api/v1/projects            upload a project
//	GET  /api/v1/projects            list projects
//	POST /api/v1/faultmodels         register a fault model (JSON DSL)
//	GET  /api/v1/faultmodels         list models
//	GET  /api/v1/faultmodels/{name}  fetch a model
//	POST /api/v1/campaigns           run a campaign
//	GET  /api/v1/campaigns           list finished campaigns
//	GET  /api/v1/campaigns/{id}      campaign report (JSON)
//	GET  /api/v1/campaigns/{id}/text campaign report (text)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"profipy/internal/saas"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profipyd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("profipyd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cores := fs.Int("cores", 4, "simulated host cores (experiments run N-1 in parallel)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := saas.NewServer(*cores)
	fmt.Printf("profipyd listening on %s (demo project: %s)\n", *addr, saas.DemoProjectID)
	return http.ListenAndServe(*addr, srv.Handler())
}
