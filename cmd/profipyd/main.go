// Command profipyd serves ProFIPy as-a-service: an HTTP/JSON API for
// uploading target projects, registering fault models, running fault
// injection campaigns and retrieving failure-analysis reports.
// Campaigns are scheduled asynchronously on a bounded job queue drained
// by a worker pool; experiment records stream into a persistent result
// store as they complete, so clients can page and live-follow them, and
// a restarted daemon keeps serving campaigns a previous process
// finished. With -data-dir the daemon is also crash-consistent:
// accepted jobs are write-ahead journaled, so after a kill -9 the next
// boot re-enqueues queued jobs and resumes mid-flight campaigns from
// their stored records, re-executing only the missing experiments.
//
//	profipyd -addr :8080 -cores 8 -workers 2 -queue 64 -retain 256 -data-dir /var/lib/profipy
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the HTTP server
// stops accepting work and drains in-flight requests (bounded by
// -shutdown-timeout), running campaigns are canceled, and the result
// store flushes — no record that reached the store is lost.
//
// Endpoints (see internal/saas):
//
//	POST   /api/v1/projects                upload a project
//	GET    /api/v1/projects                list projects
//	POST   /api/v1/faultmodels             register a fault model (JSON DSL)
//	GET    /api/v1/faultmodels             list models
//	GET    /api/v1/faultmodels/{name}      fetch a model
//	POST   /api/v1/campaigns               enqueue a campaign → 202 {job}
//	                                       (?wait=true blocks → 201 {id, report})
//	GET    /api/v1/campaigns               list finished campaigns
//	GET    /api/v1/campaigns/{id}          campaign report (JSON)
//	GET    /api/v1/campaigns/{id}/text     campaign report (text)
//	GET    /api/v1/campaigns/{id}/records  record page (?after=<cursor>&limit=<n>)
//	GET    /api/v1/campaigns/{id}/stream   live NDJSON record stream (?after=<cursor>)
//	GET    /api/v1/jobs                    list campaign jobs
//	GET    /api/v1/jobs/{id}               job status + live progress
//	DELETE /api/v1/jobs/{id}               cancel a queued/running job
//	GET    /metrics                        Prometheus text exposition
//
// With -debug-addr the daemon additionally serves net/http/pprof on a
// separate listener (keep it off the public address):
//
//	profipyd -addr :8080 -debug-addr 127.0.0.1:6060
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"profipy/internal/saas"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profipyd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("profipyd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cores := fs.Int("cores", 4, "simulated host cores (experiments run N-1 in parallel)")
	workers := fs.Int("workers", 2, "campaign scheduler worker pool size")
	queue := fs.Int("queue", 64, "max queued campaign jobs before 429")
	retain := fs.Int("retain", 256, "finished jobs kept for polling")
	dataDir := fs.String("data-dir", "", "persistent result store directory (empty = in-memory only)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful HTTP drain deadline on SIGINT/SIGTERM")
	leaseTTL := fs.Duration("lease-ttl", 0, "remote worker shard lease TTL before re-dispatch (0 = 15s default)")
	heartbeat := fs.Duration("heartbeat", 0, "heartbeat cadence suggested to remote workers (0 = lease-ttl/3)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline for non-streaming API routes (0 = 30s default, negative disables)")
	engine := fs.String("engine", "", "default execution engine for campaigns that don't pick one: bytecode (default), closure or tree-walk")
	debugAddr := fs.String("debug-addr", "", "optional pprof listen address (e.g. 127.0.0.1:6060); empty disables")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logJSON := fs.Bool("log-json", false, "emit logs as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := setupLogging(*logLevel, *logJSON); err != nil {
		return err
	}
	srv, err := saas.NewServerWithOptions(saas.Options{
		Cores: *cores, Workers: *workers, QueueDepth: *queue, RetainJobs: *retain,
		DataDir: *dataDir, Engine: *engine,
		LeaseTTL: *leaseTTL, Heartbeat: *heartbeat, RequestTimeout: *reqTimeout,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	if *debugAddr != "" {
		stopDebug, derr := serveDebug(*debugAddr)
		if derr != nil {
			ln.Close()
			srv.Close()
			return derr
		}
		defer stopDebug()
	}
	persistence := "in-memory results"
	if *dataDir != "" {
		persistence = "data dir " + *dataDir
	}
	fmt.Printf("profipyd listening on %s (demo project: %s, %d campaign workers, %s)\n",
		ln.Addr(), saas.DemoProjectID, *workers, persistence)
	return serve(ctx, srv, ln, *shutdownTimeout)
}

// setupLogging installs the process-wide slog default the saas layer
// logs through (context-scoped loggers derive from it).
func setupLogging(level string, asJSON bool) error {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(strings.ToLower(level))); err != nil {
		return fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// serveDebug exposes net/http/pprof on its own listener, kept separate
// from the API address so profiling endpoints are never reachable
// through the public port. Returns a closer for shutdown.
func serveDebug(addr string) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	dbg := &http.Server{Handler: mux}
	go func() {
		if err := dbg.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Warn("debug server stopped", "err", err)
		}
	}()
	slog.Info("pprof debug server listening", "addr", ln.Addr().String())
	return func() { _ = dbg.Close() }, nil
}

// serve runs the HTTP server until ctx is canceled (SIGINT/SIGTERM),
// then shuts down in order: stop accepting connections and drain
// in-flight requests within the deadline, cancel the campaign
// scheduler, and flush/seal the result store. Records that reached the
// store before shutdown survive a subsequent restart.
func serve(ctx context.Context, srv *saas.Server, ln net.Listener, drain time.Duration) error {
	// No WriteTimeout: /stream responses are deliberately long-lived
	// and bounded by campaign lifecycle, not a wall clock. Reads are
	// bounded so a stalled or malicious client can't pin a connection:
	// headers must arrive promptly, bodies (project uploads, worker
	// record batches) within a generous minute.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("profipyd: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Start the HTTP drain (stops accepting connections immediately),
	// then close the service concurrently: canceling running campaigns
	// is what ends long-lived /stream followers, so ordinary requests
	// drain promptly instead of Shutdown stalling on live streams for
	// the whole deadline. Close also flushes and seals the result
	// store, so nothing that reached it is lost.
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- httpSrv.Shutdown(shCtx) }()
	srv.Close()
	shutdownErr := <-shutdownDone
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}
