package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"profipy/internal/saas"
)

// TestServeGracefulShutdown drives the daemon's lifecycle: serve
// requests, cancel the context (what SIGINT/SIGTERM do), and verify
// serve drains and returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	srv, err := saas.NewServerWithOptions(saas.Options{Cores: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln, 5*time.Second) }()

	// The server answers while running.
	url := "http://" + ln.Addr().String() + "/api/v1/projects"
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	var projects []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&projects); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(projects) == 0 {
		t.Fatal("no demo project listed")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	// The listener is released.
	if _, err := http.Get(url); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestRunFlagHandling covers the flag path: bad flags error out, and a
// canceled context stops a successfully started daemon.
func TestRunFlagHandling(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data-dir", t.TempDir(), "-workers", "1"})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}
