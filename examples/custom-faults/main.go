// custom-faults shows the programmability that motivates the paper: a
// user defines a project-specific fault model in the DSL (an injected
// exception type from a postmortem, a None/nil return, and an artificial
// delay), runs a sampled campaign against the etcd client, and inspects
// one failure with the Zipkin-style timeline visualization.
package main

import (
	"fmt"
	"log"

	"profipy"
	"profipy/internal/kvclient"
)

// A faultload a team might write after a production incident: the
// regression-test use case of §I ("introduce regression tests against
// the fault that caused the failure").
var customFaultload = []profipy.Spec{
	{
		Name: "postmortem-4812", Type: "ThrowException",
		Doc: "reproduce incident 4812: connection pool exhausted during member registration",
		DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.Request}($EXPR#m, $EXPR#u, $EXPR#p)
} into {
	$PANIC{type=PoolExhaustedError; msg=connection pool exhausted}
}`,
	},
	{
		Name: "nil-from-library", Type: "NilReturn",
		Doc: "library call returns nil instead of a response object",
		DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
} into {
	$VAR#v := $NIL
}`,
	},
	{
		Name: "slow-io", Type: "Delay",
		Doc: "file writes take five seconds",
		DSL: `
change {
	$CALL#c{name=osio.WriteFile}(...)
} into {
	$TIMEOUT{ms=5000}
	$CALL#c
}`,
	},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := profipy.NewRuntime(profipy.RuntimeConfig{Cores: 4, Seed: 7})

	c := kvclient.CampaignA(rt, 7)
	c.Name = "custom faultload: postmortem regression campaign"
	c.Faultload = customFaultload
	c.SampleN = 12 // enforce a bound on the number of experiments

	// Record transport spans in every experiment container so failures
	// can be visualised.
	recorders := map[string]*profipy.TraceRecorder{}
	c.TraceHook = func(ctr *profipy.Container) {
		recorders[ctr.ID] = kvclient.EnableTracing(ctr)
	}

	res, err := c.Run()
	if err != nil {
		return err
	}
	fmt.Println(res.Report.Render(c.Name))

	// Visualise the first failed experiment's API timeline.
	for _, rec := range res.Records {
		if !rec.Failed() {
			continue
		}
		fmt.Printf("failure visualization for %s (%s at %s:%d):\n",
			rec.FaultType, rec.Point.Spec, rec.Point.File, rec.Point.Line)
		// Find the recorder whose container ran this failed experiment:
		// the timeline below is from the most recently traced failure.
		for _, tr := range recorders {
			if tr.Len() > 0 {
				fmt.Println(profipy.Timeline(tr.Spans(), 60))
				break
			}
		}
		break
	}
	return nil
}
