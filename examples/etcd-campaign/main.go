// etcd-campaign reproduces the paper's case study (§V): three fault
// injection campaigns against the etcd client bindings — errors from
// external APIs, wrong inputs, and resource management bugs — printing
// the same analyses the paper reports (coverage, failures, failure modes,
// service availability).
package main

import (
	"fmt"
	"log"

	"profipy"
	"profipy/internal/kvclient"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := profipy.NewRuntime(profipy.RuntimeConfig{Cores: 4, Seed: 20})

	type paperRow struct {
		points, covered, failures int
	}
	campaigns := []struct {
		build func() *profipy.Campaign
		paper paperRow
	}{
		{func() *profipy.Campaign { return kvclient.CampaignA(rt, 101) }, paperRow{26, 13, 12}},
		{func() *profipy.Campaign { return kvclient.CampaignB(rt, 202) }, paperRow{66, 66, 29}},
		{func() *profipy.Campaign { return kvclient.CampaignC(rt, 303) }, paperRow{37, 37, 14}},
	}

	for _, entry := range campaigns {
		c := entry.build()
		res, err := c.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		fmt.Println(res.Report.Render(c.Name))
		fmt.Printf("paper reported: %d points, %d covered, %d failures\n",
			entry.paper.points, entry.paper.covered, entry.paper.failures)
		fmt.Printf("phase times: scan %v, coverage %v, execution %v\n\n",
			res.ScanTime, res.CovTime, res.ExecTime)
	}
	fmt.Printf("container runtime: %+v\n", rt.Stats())
	return nil
}
