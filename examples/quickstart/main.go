// Quickstart: compile a DSL bug specification, scan a target, and
// generate a fault-injected version — the Scan half of the ProFIPy
// workflow, against the Fig. 1a fault type (missing function call).
package main

import (
	"fmt"
	"log"

	"profipy"
)

// The software-under-injection: a resource-cleanup routine in the style
// of the OpenStack Neutron APIs the paper targets (delete_port & co).
const target = `package neutron

func ReleaseNetwork(c *Conn, tenant string) {
	ports := ListPorts(c, tenant)
	for _, p := range ports {
		logRelease(p)
		DeletePort(c, p)
		confirm(c, p)
	}
	DeleteSubnet(c, tenant)
	notifyQuota(c, tenant)
}
`

// Fig. 1a of the paper: omit calls to Delete* APIs that stand between
// other statements (so removal keeps the program well-formed).
const mfcSpec = `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Compile the bug specification into a meta-model.
	if _, err := profipy.Compile("MFC", mfcSpec); err != nil {
		return fmt.Errorf("compile spec: %w", err)
	}
	fmt.Println("spec MFC compiled")

	// 2. Scan the target for injection points.
	specs := []profipy.Spec{{Name: "MFC", Type: "MFC", Doc: "missing function call", DSL: mfcSpec}}
	files := map[string][]byte{"neutron.go": []byte(target)}
	plan, err := profipy.Scan(files, specs)
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	fmt.Printf("found %d injection points:\n", plan.Len())
	for i, pt := range plan.Points {
		fmt.Printf("  [%d] %s:%d in %s — %s\n", i, pt.File, pt.Line, pt.Func, pt.Snippet)
	}

	// 3. Generate the mutated version of the first point, with the
	//    run-time trigger so the fault can be switched on and off.
	spec, _ := plan.Spec("MFC")
	mut, err := profipy.Mutate(files["neutron.go"], spec, plan.Points[0], profipy.MutateOptions{Triggered: true})
	if err != nil {
		return fmt.Errorf("mutate: %w", err)
	}
	fmt.Printf("\noriginal statements: %s\n", mut.Original)
	fmt.Printf("injected statements: %s\n", mut.Mutated)
	fmt.Printf("\n--- mutated source ---\n%s\n", mut.Source)
	return nil
}
