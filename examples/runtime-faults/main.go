// runtime-faults demonstrates the runtime injection engine on a mixed
// faultload: classic compile-time mutations (§III source rewriting) run
// side by side with trigger-based runtime faults in one campaign plan.
// Runtime experiments attach an injector table to the campaign's base
// compiled program — same interp.Program, different injector table, no
// per-experiment recompilation — and fire probabilistically, after the
// Nth activation, on every Kth activation, or as injected latency.
package main

import (
	"fmt"
	"log"

	"profipy"
	"profipy/internal/kvclient"
)

// A mixed faultload: one compile-time mutation plus three runtime
// trigger/action faults. The runtime ones use the DSL's trigger/action
// clauses; "stale-backend" shows the equivalent Trigger/Action spec
// fields that the SaaS API exposes.
var mixedFaultload = []profipy.Spec{
	{
		Name: "drop-response", Type: "NilReturn",
		Doc: "compile-time: the HTTP layer returns nil instead of a response",
		DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
} into {
	$VAR#v := $NIL
}`,
	},
	{
		Name: "flaky-network", Type: "RuntimeFlaky",
		Doc: "runtime: functions doing HTTP I/O fail with probability 0.4 per activation",
		DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
} trigger {
	prob(0.4)
} action {
	raise(ConnectTimeoutError, "runtime fault: flaky network")
}`,
	},
	{
		Name: "wear-out", Type: "RuntimeWearOut",
		Doc: "runtime: the 4th and later activations of an I/O function fail",
		DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
} trigger {
	after(3)
} action {
	raise(EtcdConnectionFailed, "runtime fault: connection pool worn out")
}`,
	},
	{
		Name: "stale-backend", Type: "RuntimeLatency",
		Doc:     "runtime: every 2nd activation of an I/O function stalls for 20s of virtual time",
		Trigger: "every(2)",
		Action:  "delay(20s)",
		DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
}`,
	},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := profipy.NewRuntime(profipy.RuntimeConfig{Cores: 4, Seed: 11})

	c := kvclient.CampaignA(rt, 11)
	c.Name = "mixed faultload: compile-time mutations + runtime injectors"
	c.Faultload = mixedFaultload

	res, err := c.Run()
	if err != nil {
		return err
	}
	fmt.Println(res.Report.Render(c.Name))
	fmt.Printf("experiments: %d source-mutated, %d runtime-injected (no recompilation)\n\n",
		res.Mutated, res.Injected)

	// Per-experiment injector telemetry: how often each runtime fault's
	// site was entered while armed, and how often its trigger fired.
	shown := 0
	for _, rec := range res.Records {
		if len(rec.Injections) == 0 || !rec.Failed() {
			continue
		}
		act := rec.Injections[0]
		fmt.Printf("%-18s at %s (site %s): %d activations, %d fires -> %s\n",
			rec.FaultType, rec.Point.File, act.Site, act.Activations, act.Fires,
			rec.Result.Round1().Exception)
		shown++
		if shown == 5 {
			break
		}
	}
	return nil
}
