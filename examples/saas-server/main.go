// saas-server demonstrates the as-a-service workflow: it starts the
// profipyd API in-process, then acts as a client — registering a custom
// fault model, launching a campaign against the preloaded python-etcd
// demo project, and fetching the report — exactly the interaction a
// ProFIPy web user has with the service.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"profipy/internal/saas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Start the service (in-process listener; `profipyd -addr :8080`
	// serves the same handler over a real port).
	ts := httptest.NewServer(saas.NewServer(4).Handler())
	defer ts.Close()
	fmt.Println("profipyd serving at", ts.URL)

	// 1. Browse the predefined fault models.
	models, err := getText(ts.URL + "/api/v1/faultmodels")
	if err != nil {
		return err
	}
	fmt.Println("available fault models:", models)

	// 2. Register a custom fault model through the API.
	model := map[string]any{
		"name":        "lock-faults",
		"description": "lock-recipe omission faults",
		"specs": []map[string]string{
			{"name": "omit-lockfile", "type": "MFC", "dsl": `
change {
	$CALL{name=osio.WriteFile,osio.Remove}(...)
} into {
}`},
		},
	}
	if err := postJSON(ts.URL+"/api/v1/faultmodels", model, nil); err != nil {
		return fmt.Errorf("register model: %w", err)
	}
	fmt.Println("registered fault model lock-faults")

	// 3. Launch a campaign on the demo project with the custom model.
	req, err := saas.DemoCampaignRequest("A", 42)
	if err != nil {
		return err
	}
	req.Specs = nil
	req.Model = "lock-faults"
	var out struct {
		ID     string          `json:"id"`
		Report json.RawMessage `json:"report"`
	}
	if err := postJSON(ts.URL+"/api/v1/campaigns", req, &out); err != nil {
		return fmt.Errorf("run campaign: %w", err)
	}
	fmt.Println("campaign finished:", out.ID)

	// 4. Fetch the human-readable report.
	text, err := getText(ts.URL + "/api/v1/campaigns/" + out.ID + "/text")
	if err != nil {
		return err
	}
	fmt.Println(text)
	return nil
}

func postJSON(url string, body any, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, payload)
	}
	if out != nil {
		return json.Unmarshal(payload, out)
	}
	return nil
}

func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(data), nil
}
