// saas-server demonstrates the as-a-service workflow: it starts the
// profipyd API in-process, then acts as a client — registering a custom
// fault model, launching a campaign against the preloaded python-etcd
// demo project, and fetching the report — exactly the interaction a
// ProFIPy web user has with the service.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"profipy/internal/saas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Start the service (in-process listener; `profipyd -addr :8080`
	// serves the same handler over a real port).
	srv := saas.NewServer(4)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("profipyd serving at", ts.URL)

	// 1. Browse the predefined fault models.
	models, err := getText(ts.URL + "/api/v1/faultmodels")
	if err != nil {
		return err
	}
	fmt.Println("available fault models:", models)

	// 2. Register a custom fault model through the API.
	model := map[string]any{
		"name":        "lock-faults",
		"description": "lock-recipe omission faults",
		"specs": []map[string]string{
			{"name": "omit-lockfile", "type": "MFC", "dsl": `
change {
	$CALL{name=osio.WriteFile,osio.Remove}(...)
} into {
}`},
		},
	}
	if err := postJSON(ts.URL+"/api/v1/faultmodels", model, nil); err != nil {
		return fmt.Errorf("register model: %w", err)
	}
	fmt.Println("registered fault model lock-faults")

	// 3. Enqueue a campaign on the demo project with the custom model.
	// The API answers immediately with a job ID; the campaign runs on
	// the scheduler's worker pool.
	req, err := saas.DemoCampaignRequest("A", 42)
	if err != nil {
		return err
	}
	req.Specs = nil
	req.Model = "lock-faults"
	var submitted struct {
		Job string `json:"job"`
	}
	if err := postJSON(ts.URL+"/api/v1/campaigns", req, &submitted); err != nil {
		return fmt.Errorf("enqueue campaign: %w", err)
	}
	fmt.Println("campaign enqueued as", submitted.Job)

	// 4. Poll the job for streaming progress until it reaches a
	// terminal state.
	job, err := pollJob(ts.URL, submitted.Job)
	if err != nil {
		return err
	}
	if job.State != "done" {
		return fmt.Errorf("job %s ended %s: %s", job.ID, job.State, job.Error)
	}
	fmt.Println("campaign finished:", job.Campaign)

	// 5. Page through the persisted experiment records with the cursor
	// API (a live campaign can be followed the same way through
	// /api/v1/campaigns/{id}/stream, one NDJSON record per line).
	var cursor int64
	records := 0
	for {
		var page struct {
			Records []json.RawMessage `json:"records"`
			Next    int64             `json:"next"`
			Done    bool              `json:"done"`
		}
		body, err := getText(fmt.Sprintf("%s/api/v1/campaigns/%s/records?after=%d&limit=8",
			ts.URL, job.Campaign, cursor))
		if err != nil {
			return err
		}
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			return err
		}
		records += len(page.Records)
		cursor = page.Next
		if page.Done {
			break
		}
	}
	fmt.Printf("paged %d experiment records from the result store\n", records)

	// 6. Fetch the machine-readable phase timeline that rides along
	// with the report: where the campaign's wall time went, including
	// one span per executor shard.
	var view struct {
		Phases []struct {
			Name      string `json:"name"`
			Component string `json:"component"`
			StartNS   int64  `json:"startNs"`
			EndNS     int64  `json:"endNs"`
		} `json:"phases"`
	}
	body, err := getText(ts.URL + "/api/v1/campaigns/" + job.Campaign)
	if err != nil {
		return err
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		return err
	}
	fmt.Println("campaign phase timeline:")
	for _, p := range view.Phases {
		fmt.Printf("  %-10s %-9s %8.3f ms\n", p.Name, p.Component, float64(p.EndNS-p.StartNS)/1e6)
	}

	// 7. Scrape the Prometheus endpoint the whole pipeline reports
	// into — the same families an operator would dashboard.
	scrape, err := getText(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	fmt.Println("selected /metrics families:")
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, "profipy_campaign_experiments_total") ||
			strings.HasPrefix(line, "profipy_executor_records_total") ||
			strings.HasPrefix(line, "profipy_resultstore_appends_total") ||
			strings.HasPrefix(line, "profipy_scheduler_jobs_finished_total") {
			fmt.Println(" ", line)
		}
	}

	// 8. Fetch the human-readable report.
	text, err := getText(ts.URL + "/api/v1/campaigns/" + job.Campaign + "/text")
	if err != nil {
		return err
	}
	fmt.Println(text)
	return nil
}

// jobStatus mirrors the saas.JobStatus JSON shape.
type jobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Campaign string `json:"campaign"`
	Error    string `json:"error"`
	Progress struct {
		Phase string `json:"phase"`
		Done  int    `json:"done"`
		Total int    `json:"total"`
	} `json:"progress"`
}

// pollJob polls GET /api/v1/jobs/{id}, printing progress transitions,
// until the job is terminal.
func pollJob(base, id string) (jobStatus, error) {
	var last string
	for {
		var job jobStatus
		body, err := getText(base + "/api/v1/jobs/" + id)
		if err != nil {
			return job, err
		}
		if err := json.Unmarshal([]byte(body), &job); err != nil {
			return job, err
		}
		line := fmt.Sprintf("job %s: %s %s %d/%d experiments",
			job.ID, job.State, job.Progress.Phase, job.Progress.Done, job.Progress.Total)
		if line != last {
			fmt.Println(line)
			last = line
		}
		switch job.State {
		case "done", "failed", "canceled":
			return job, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postJSON(url string, body any, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, payload)
	}
	if out != nil {
		return json.Unmarshal(payload, out)
	}
	return nil
}

func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(data), nil
}
