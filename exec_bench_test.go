// End-to-end execute-phase benchmarks for the compile-once/run-many
// interpreter (PR "compile-once execute-many"): campaign throughput in
// experiments per second, compiled vs tree-walk, plus the equivalence
// gate asserting byte-identical campaign records between the two paths.
//
// TestEmitExecBenchJSON (gated by PROFIPY_BENCH_JSON) writes the
// machine-readable BENCH_exec.json consumed by `make bench` and CI, so
// the execute-phase perf trajectory is tracked from this PR on.
package profipy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"profipy/internal/campaign"
	"profipy/internal/faultmodel"
	"profipy/internal/interp"
	"profipy/internal/kvclient"
	"profipy/internal/runtimefault"
	"profipy/internal/sandbox"
	"profipy/internal/workload"
)

// campaignEngines are the three execution engines every campaign-level
// benchmark and equivalence gate below iterates: the lowered register
// bytecode (the default), the compiled closure tree and the per-round
// tree-walk baseline.
var campaignEngines = []string{"bytecode", "closure", "tree-walk"}

// applyEngine configures a campaign for one engine name.
func applyEngine(c *campaign.Campaign, engine string) {
	if engine == "tree-walk" {
		c.TreeWalk = true
		return
	}
	c.Engine = engine
}

// runCampaignMode runs one §V-A campaign on the given engine.
func runCampaignMode(tb testing.TB, engine string, seed int64) *campaign.Result {
	tb.Helper()
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignA(rt, seed)
	applyEngine(c, engine)
	res, err := c.Run()
	if err != nil {
		tb.Fatalf("campaign (engine=%s): %v", engine, err)
	}
	return res
}

// TestCompiledCampaignEquivalence runs the same campaigns through the
// compiled path and the tree-walk and asserts byte-identical records
// (rounds, exceptions, step counts, virtual clocks, logs) — the
// whole-system form of the interp equivalence suite.
func TestCompiledCampaignEquivalence(t *testing.T) {
	builds := []struct {
		name  string
		build func(rt *Runtime, seed int64) *campaign.Campaign
		seed  int64
	}{
		{"campaign-a", kvclient.CampaignA, 101},
		{"campaign-b", kvclient.CampaignB, 202},
		{"campaign-c", kvclient.CampaignC, 303},
		{"campaign-r", kvclient.CampaignR, 404},
		{"campaign-late", kvclient.CampaignLate, 707},
	}
	for _, bc := range builds {
		t.Run(bc.name, func(t *testing.T) {
			recs := make([][]byte, len(campaignEngines))
			reports := make([][]byte, len(campaignEngines))
			for i, engine := range campaignEngines {
				rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
				c := bc.build(rt, bc.seed)
				applyEngine(c, engine)
				res, err := c.Run()
				if err != nil {
					t.Fatalf("engine=%s: %v", engine, err)
				}
				r, err := json.Marshal(res.Records)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := json.Marshal(res.Report)
				if err != nil {
					t.Fatal(err)
				}
				recs[i] = r
				reports[i] = rep
			}
			for i := 1; i < len(campaignEngines); i++ {
				if !bytes.Equal(recs[0], recs[i]) {
					t.Errorf("records differ between %s and %s execution",
						campaignEngines[0], campaignEngines[i])
				}
				if !bytes.Equal(reports[0], reports[i]) {
					t.Errorf("reports differ between %s and %s execution",
						campaignEngines[0], campaignEngines[i])
				}
			}
		})
	}
}

// TestRuntimeCampaignDeterminism asserts the runtime-injection seed
// guarantee: the same campaign seed produces byte-identical records
// (trigger decisions, corruptions, activation counts included) across
// repeated runs.
func TestRuntimeCampaignDeterminism(t *testing.T) {
	var out [2][]byte
	for i := range out {
		rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
		res, err := kvclient.CampaignR(rt, 404).Run()
		if err != nil {
			t.Fatal(err)
		}
		recs, err := json.Marshal(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = recs
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Error("same seed must produce byte-identical records with runtime faults enabled")
	}
}

// runtimeOnlyFaultload filters the mixed §V-R faultload down to its
// runtime trigger/action specs.
func runtimeOnlyFaultload(tb testing.TB) []faultmodel.Spec {
	tb.Helper()
	var out []faultmodel.Spec
	for _, s := range kvclient.CampaignRFaultload() {
		if s.IsRuntime() {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		tb.Fatal("mixed faultload has no runtime specs")
	}
	return out
}

// TestRuntimeOnlySkipsRecompile asserts that a runtime-only faultload
// never takes the mutation path: every experiment runs as a runtime
// injection against the campaign's base program (no per-experiment
// source rewrite, no single-file program derivation).
func TestRuntimeOnlySkipsRecompile(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignR(rt, 404)
	c.Faultload = runtimeOnlyFaultload(t)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Len() == 0 {
		t.Fatal("runtime-only plan is empty")
	}
	if res.Mutated != 0 {
		t.Errorf("runtime-only campaign took the mutation path %d times", res.Mutated)
	}
	if res.Injected != len(res.Records) {
		t.Errorf("Injected = %d, want every experiment (%d)", res.Injected, len(res.Records))
	}
	for _, rec := range res.Records {
		if rec.Result != nil && len(rec.Injections) == 0 {
			t.Errorf("experiment %s has no injector report", rec.Point.ID())
		}
	}
}

// loweringAllowedEscapes are the only functions of the benchmark corpus
// permitted to escape statements to the closure path, with their exact
// escape counts. Anything else — a new name here, or a higher count —
// means the bytecode engine's coverage regressed and part of the corpus
// silently fell back to closure speed, which would quietly invalidate
// every bytecode-vs-closure row in BENCH_exec.json.
var loweringAllowedEscapes = map[string]int{
	"Client.tryOnce": 1, // defer-with-closure protection wrapper
	"runProtected":   1, // same construct on the workload side
}

// loweringMaxExprEscapes bounds expression escapes (subexpressions
// evaluated through the closure artifact inside otherwise-lowered
// statements) across the corpus. Raising it requires a deliberate edit
// here, not a silent fallback.
const loweringMaxExprEscapes = 18

// TestBytecodeLoweringCoverage is the no-silent-fallback gate of the
// benchmark suite: it compiles the benchmark corpus (both workload
// variants) and fails when the bytecode engine stops fully lowering it.
func TestBytecodeLoweringCoverage(t *testing.T) {
	variants := []struct {
		name     string
		workload []byte
		minFuncs int
	}{
		{"standard", []byte(kvclient.WorkloadSource), 40},
		{"late-site", []byte(kvclient.LateWorkloadSource), 30},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			files := kvclient.Sources()
			files[kvclient.FileWorkload] = v.workload
			cfg := kvclient.WorkloadConfig()
			units := make([]interp.SourceUnit, 0, len(cfg.Files))
			for _, f := range cfg.Files {
				units = append(units, interp.SourceUnit{Name: f, Src: files[f]})
			}
			prog, err := interp.CompileProgram(units)
			if err != nil {
				t.Fatal(err)
			}
			rep := prog.LoweringReport()
			if rep.Funcs < v.minFuncs {
				t.Fatalf("corpus shrank to %d compiled functions (want >= %d); the lowering gate expects the full kvclient corpus",
					rep.Funcs, v.minFuncs)
			}
			for name, n := range rep.Escapes {
				allowed, ok := loweringAllowedEscapes[name]
				if !ok {
					t.Errorf("function %s escapes %d statement(s) to the closure path; the corpus must stay fully lowered (known escapes: %v)",
						name, n, loweringAllowedEscapes)
				} else if n > allowed {
					t.Errorf("function %s escapes %d statement(s), up from %d; bytecode lowering coverage regressed", name, n, allowed)
				}
			}
			if want := rep.Funcs - len(loweringAllowedEscapes); rep.Fully < want {
				t.Errorf("only %d of %d functions fully lowered (want >= %d); report: %+v",
					rep.Fully, rep.Funcs, want, rep)
			}
			if rep.ExprEscapes > loweringMaxExprEscapes {
				t.Errorf("corpus has %d expression escapes (gate: %d); bytecode lowering coverage regressed",
					rep.ExprEscapes, loweringMaxExprEscapes)
			}
		})
	}
}

// lateSites are the lock/auth functions the late-site workload first
// reaches near the end of round 1 — the injection sites of
// campaign-late, and the sites the snapshot/fork microbenchmarks below
// build prefixes for.
var lateSites = []string{
	"Lock.Acquire", "Lock.Release",
	"Auth.AddUser", "Auth.ListUsers", "Auth.SaveToken", "Auth.RemoveUser",
}

// latePrefixSetup compiles the late-site corpus and returns everything
// the prefix microbenchmarks need: runtime, image with the file layer,
// and the workload config holding the compiled program.
func latePrefixSetup(tb testing.TB) (*Runtime, sandbox.Image, workload.Config) {
	tb.Helper()
	files := kvclient.Sources()
	files[kvclient.FileWorkload] = []byte(kvclient.LateWorkloadSource)
	cfg := kvclient.WorkloadConfig()
	units := make([]interp.SourceUnit, 0, len(cfg.Files))
	for _, f := range cfg.Files {
		units = append(units, interp.SourceUnit{Name: f, Src: files[f]})
	}
	prog, err := interp.CompileProgram(units)
	if err != nil {
		tb.Fatal(err)
	}
	cfg.Program = prog
	rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 7})
	img := kvclient.Image()
	img.Files = files
	return rt, img, cfg
}

// buildLatePrefixes runs one BuildPrefixes pass over the late-site
// corpus and asserts every site got a prefix — a partially covered set
// would let the fork microbenchmark silently measure a fallback.
func buildLatePrefixes(tb testing.TB, rt *Runtime, img sandbox.Image, cfg workload.Config) *workload.PrefixSet {
	tb.Helper()
	ctr := rt.CreateSeeded(img, 7)
	ps, err := workload.BuildPrefixes(ctr, cfg, lateSites)
	if err != nil {
		tb.Fatal(err)
	}
	if err := rt.Destroy(ctr); err != nil {
		tb.Fatal(err)
	}
	st := ps.Stats()
	if st.Covered != len(lateSites) {
		tb.Fatalf("prefix build covered %d of %d late sites (snapshots=%d)", st.Covered, len(lateSites), st.Snapshots)
	}
	return ps
}

// BenchmarkPrefixSnapshot measures the cost of one full BuildPrefixes
// pass over the late-site workload: the base round executed once with a
// boundary snapshot captured per top-level statement until all sites
// are assigned. AllocedBytes/op divided by the snapshot count is the
// per-snapshot memory footprint BENCH_exec.json reports.
func BenchmarkPrefixSnapshot(b *testing.B) {
	rt, img, cfg := latePrefixSetup(b)
	snapshots := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr := rt.CreateSeeded(img, 7)
		ps, err := workload.BuildPrefixes(ctr, cfg, lateSites)
		if err != nil {
			b.Fatal(err)
		}
		snapshots = ps.Stats().Snapshots
		if err := rt.Destroy(ctr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(snapshots), "snapshots")
}

// BenchmarkPrefixFork measures one forked experiment (round 1 resumed
// from a late-site snapshot, round 2 run in full) against the full
// two-round run of BenchmarkExperimentRound / experiment-two-rounds.
// The headroom between them is what campaign-late's fork on/off A/B
// realizes end to end.
func BenchmarkPrefixFork(b *testing.B) {
	rt, img, cfg := latePrefixSetup(b)
	ps := buildLatePrefixes(b, rt, img, cfg)
	pre := ps.For(lateSites[0])
	spec := workload.ForkSpec{Prefix: pre, BaseFiles: img.Files}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr := rt.CreateSeeded(img, 7)
		res, ok, err := workload.RunForked(ctr, cfg, spec)
		if err != nil {
			b.Fatal(err)
		}
		if !ok || res == nil {
			b.Fatal("fork fell back to a full run; the microbenchmark would measure the wrong path")
		}
		if err := rt.Destroy(ctr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeExperiment measures one runtime-injection experiment
// (engine build + two workload rounds) against a prebuilt base program:
// the path that skips per-experiment recompilation entirely. Compare
// with the mutated-experiment rows of BENCH_exec.json.
func BenchmarkRuntimeExperiment(b *testing.B) {
	files := kvclient.Sources()
	cfg := kvclient.WorkloadConfig()
	units := make([]interp.SourceUnit, 0, len(cfg.Files))
	for _, f := range cfg.Files {
		units = append(units, interp.SourceUnit{Name: f, Src: files[f]})
	}
	prog, err := interp.CompileProgram(units)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Program = prog
	fault := runtimefault.Fault{
		Name: "bench-flaky",
		Site: "Client.api",
		When: runtimefault.Trigger{Mode: runtimefault.TriggerProb, P: 0.5},
		Do:   runtimefault.Action{Kind: runtimefault.ActionRaise, ExcType: "ConnectTimeoutError", Message: "bench"},
	}
	rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 7})
	img := kvclient.Image()
	img.Files = files
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := runtimefault.NewEngine([]runtimefault.Fault{fault}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ecfg := cfg
		ecfg.Injector = eng
		ctr := rt.CreateSeeded(img, int64(i))
		if _, err := workload.Run(ctr, ecfg); err != nil {
			b.Fatal(err)
		}
		if err := rt.Destroy(ctr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignExecution measures end-to-end campaign throughput
// (scan + coverage + all experiments + analysis) in experiments per
// wall second, compiled vs the tree-walk baseline.
func BenchmarkCampaignExecution(b *testing.B) {
	for _, engine := range campaignEngines {
		b.Run(engine, func(b *testing.B) {
			experiments := 0
			for i := 0; i < b.N; i++ {
				res := runCampaignMode(b, engine, 101)
				experiments = len(res.Records)
			}
			b.ReportMetric(float64(experiments*b.N)/b.Elapsed().Seconds(), "experiments/s")
			b.ReportMetric(float64(experiments), "experiments")
		})
	}
}

// execBenchResult is one row of BENCH_exec.json.
type execBenchResult struct {
	Name             string  `json:"name"`
	NsPerOp          float64 `json:"nsPerOp"`
	AllocsPerOp      int64   `json:"allocsPerOp"`
	BytesPerOp       int64   `json:"bytesPerOp"`
	ExperimentsPerSc float64 `json:"experimentsPerSec,omitempty"`
	// Snapshots and BytesPerSnapshot describe the prefix-snapshot rows:
	// boundary snapshots captured per BuildPrefixes pass and the
	// allocation footprint of one snapshot (pass bytes / snapshots).
	Snapshots        int   `json:"snapshots,omitempty"`
	BytesPerSnapshot int64 `json:"bytesPerSnapshot,omitempty"`
}

// TestEmitExecBenchJSON measures the execute phase in both modes and
// writes machine-readable results to the path in PROFIPY_BENCH_JSON
// (skipped otherwise). `make bench` and the CI bench job run it and
// archive the artifact.
func TestEmitExecBenchJSON(t *testing.T) {
	path := os.Getenv("PROFIPY_BENCH_JSON")
	if path == "" {
		t.Skip("set PROFIPY_BENCH_JSON=<path> to emit the exec benchmark artifact")
	}

	var rows []execBenchResult
	measureCampaign := func(name, engine string) {
		experiments := 0
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCampaignMode(b, engine, 101)
				experiments = len(res.Records)
			}
		})
		row := execBenchResult{
			Name:        name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if br.NsPerOp() > 0 {
			row.ExperimentsPerSc = float64(experiments) * 1e9 / float64(br.NsPerOp())
		}
		rows = append(rows, row)
	}
	for _, engine := range campaignEngines {
		measureCampaign("campaign-exec/"+engine, engine)
	}

	measureRound := func(name, engine string) {
		files := kvclient.Sources()
		cfg := kvclient.WorkloadConfig()
		if engine != "tree-walk" {
			units := make([]interp.SourceUnit, 0, len(cfg.Files))
			for _, f := range cfg.Files {
				units = append(units, interp.SourceUnit{Name: f, Src: files[f]})
			}
			prog, err := interp.CompileProgram(units)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Program = prog
			cfg.Engine = engine
		}
		br := testing.Benchmark(func(b *testing.B) {
			rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 7})
			img := kvclient.Image()
			img.Files = files
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctr := rt.CreateSeeded(img, 7)
				if _, err := workload.Run(ctr, cfg); err != nil {
					b.Fatal(err)
				}
				if err := rt.Destroy(ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, execBenchResult{
			Name:        name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		})
	}
	for _, engine := range campaignEngines {
		measureRound("experiment-two-rounds/"+engine, engine)
	}

	// Fork on/off A/B on the late-site scenario: every injection site in
	// campaign-late is first reached near the end of round 1, so the
	// prefix-fork path skips almost a full round per experiment. The rows
	// are adjacent (fork first) so the speedup map reports on-vs-off.
	// The ForkHits assertion is the CI smoke that the fork path actually
	// engaged — a silent fallback to full runs would otherwise report a
	// ~1.00x row without failing anything.
	measureForkCampaign := func(name, engine string, fork bool) {
		experiments := 0
		snapshots, hits := 0, 0
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
				c := kvclient.CampaignLate(rt, 707)
				c.PrefixFork = fork
				applyEngine(c, engine)
				res, err := c.Run()
				if err != nil {
					b.Fatalf("campaign-late (fork=%v, engine=%s): %v", fork, engine, err)
				}
				experiments = len(res.Records)
				snapshots, hits = res.ForkSnapshots, res.ForkHits
			}
		})
		if fork && (snapshots == 0 || hits == 0) {
			t.Fatalf("prefix-fork (engine=%s) did not engage: snapshots=%d hits=%d", engine, snapshots, hits)
		}
		row := execBenchResult{
			Name:        name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if br.NsPerOp() > 0 {
			row.ExperimentsPerSc = float64(experiments) * 1e9 / float64(br.NsPerOp())
		}
		rows = append(rows, row)
	}
	measureForkCampaign("campaign-late/prefix-fork-bytecode", "bytecode", true)
	measureForkCampaign("campaign-late/prefix-fork-closure", "closure", true)
	measureForkCampaign("campaign-late/full-runs-bytecode", "bytecode", false)

	// Snapshot-size / fork-cost microbenchmark rows: what one
	// BuildPrefixes pass costs (time and per-snapshot memory), and one
	// forked experiment vs the same experiment run in full, both on the
	// late-site workload where the fork pays off most.
	{
		rt, img, cfg := latePrefixSetup(t)
		snapshots := 0
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctr := rt.CreateSeeded(img, 7)
				ps, err := workload.BuildPrefixes(ctr, cfg, lateSites)
				if err != nil {
					b.Fatal(err)
				}
				snapshots = ps.Stats().Snapshots
				if err := rt.Destroy(ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
		row := execBenchResult{
			Name:        "prefix-snapshot/build-pass",
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Snapshots:   snapshots,
		}
		if snapshots > 0 {
			row.BytesPerSnapshot = br.AllocedBytesPerOp() / int64(snapshots)
		}
		rows = append(rows, row)

		ps := buildLatePrefixes(t, rt, img, cfg)
		spec := workload.ForkSpec{Prefix: ps.For(lateSites[0]), BaseFiles: img.Files}
		forked := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctr := rt.CreateSeeded(img, 7)
				res, ok, err := workload.RunForked(ctr, cfg, spec)
				if err != nil || !ok || res == nil {
					b.Fatalf("fork fell back to a full run (ok=%v err=%v)", ok, err)
				}
				if err := rt.Destroy(ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, execBenchResult{
			Name:        "prefix-fork/forked-experiment",
			NsPerOp:     float64(forked.NsPerOp()),
			AllocsPerOp: forked.AllocsPerOp(),
			BytesPerOp:  forked.AllocedBytesPerOp(),
		})
		full := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctr := rt.CreateSeeded(img, 7)
				if _, err := workload.Run(ctr, cfg); err != nil {
					b.Fatal(err)
				}
				if err := rt.Destroy(ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, execBenchResult{
			Name:        "prefix-fork/full-experiment",
			NsPerOp:     float64(full.NsPerOp()),
			AllocsPerOp: full.AllocsPerOp(),
			BytesPerOp:  full.AllocedBytesPerOp(),
		})
	}

	// The speedup map pairs rows by name: each entry divides the
	// baseline row's ns/op by the subject row's, so >1.00x means the
	// subject is faster.
	ratio := func(subject, baseline string) (string, bool) {
		var num, den float64
		for _, r := range rows {
			if r.Name == subject {
				den = r.NsPerOp
			}
			if r.Name == baseline {
				num = r.NsPerOp
			}
		}
		if num <= 0 || den <= 0 {
			return "", false
		}
		return fmt.Sprintf("%.2fx", num/den), true
	}
	out := struct {
		Benchmarks []execBenchResult `json:"benchmarks"`
		Speedup    map[string]string `json:"speedup"`
	}{Benchmarks: rows, Speedup: map[string]string{}}
	for name, pair := range map[string][2]string{
		"campaign-exec bytecode-vs-closure":           {"campaign-exec/bytecode", "campaign-exec/closure"},
		"campaign-exec bytecode-vs-tree-walk":         {"campaign-exec/bytecode", "campaign-exec/tree-walk"},
		"campaign-exec closure-vs-tree-walk":          {"campaign-exec/closure", "campaign-exec/tree-walk"},
		"experiment-two-rounds bytecode-vs-closure":   {"experiment-two-rounds/bytecode", "experiment-two-rounds/closure"},
		"experiment-two-rounds bytecode-vs-tree-walk": {"experiment-two-rounds/bytecode", "experiment-two-rounds/tree-walk"},
		"campaign-late prefix-fork-vs-full-runs":      {"campaign-late/prefix-fork-bytecode", "campaign-late/full-runs-bytecode"},
		"campaign-late fork bytecode-vs-closure":      {"campaign-late/prefix-fork-bytecode", "campaign-late/prefix-fork-closure"},
		"late-experiment forked-vs-full":              {"prefix-fork/forked-experiment", "prefix-fork/full-experiment"},
	} {
		if v, ok := ratio(pair[0], pair[1]); ok {
			out.Speedup[name] = v
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, data)
}
