// End-to-end execute-phase benchmarks for the compile-once/run-many
// interpreter (PR "compile-once execute-many"): campaign throughput in
// experiments per second, compiled vs tree-walk, plus the equivalence
// gate asserting byte-identical campaign records between the two paths.
//
// TestEmitExecBenchJSON (gated by PROFIPY_BENCH_JSON) writes the
// machine-readable BENCH_exec.json consumed by `make bench` and CI, so
// the execute-phase perf trajectory is tracked from this PR on.
package profipy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"profipy/internal/campaign"
	"profipy/internal/faultmodel"
	"profipy/internal/interp"
	"profipy/internal/kvclient"
	"profipy/internal/runtimefault"
	"profipy/internal/workload"
)

// runCampaignMode runs one §V-A campaign in the given interpreter mode.
func runCampaignMode(tb testing.TB, treeWalk bool, seed int64) *campaign.Result {
	tb.Helper()
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignA(rt, seed)
	c.TreeWalk = treeWalk
	res, err := c.Run()
	if err != nil {
		tb.Fatalf("campaign (treeWalk=%v): %v", treeWalk, err)
	}
	return res
}

// TestCompiledCampaignEquivalence runs the same campaigns through the
// compiled path and the tree-walk and asserts byte-identical records
// (rounds, exceptions, step counts, virtual clocks, logs) — the
// whole-system form of the interp equivalence suite.
func TestCompiledCampaignEquivalence(t *testing.T) {
	builds := []struct {
		name  string
		build func(rt *Runtime, seed int64) *campaign.Campaign
		seed  int64
	}{
		{"campaign-a", kvclient.CampaignA, 101},
		{"campaign-b", kvclient.CampaignB, 202},
		{"campaign-c", kvclient.CampaignC, 303},
		{"campaign-r", kvclient.CampaignR, 404},
		{"campaign-late", kvclient.CampaignLate, 707},
	}
	for _, bc := range builds {
		t.Run(bc.name, func(t *testing.T) {
			var out [2][]byte
			var reports [2][]byte
			for i, treeWalk := range []bool{false, true} {
				rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
				c := bc.build(rt, bc.seed)
				c.TreeWalk = treeWalk
				res, err := c.Run()
				if err != nil {
					t.Fatalf("treeWalk=%v: %v", treeWalk, err)
				}
				recs, err := json.Marshal(res.Records)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := json.Marshal(res.Report)
				if err != nil {
					t.Fatal(err)
				}
				out[i] = recs
				reports[i] = rep
			}
			if !bytes.Equal(out[0], out[1]) {
				t.Errorf("records differ between compiled and tree-walk execution")
			}
			if !bytes.Equal(reports[0], reports[1]) {
				t.Errorf("reports differ between compiled and tree-walk execution")
			}
		})
	}
}

// TestRuntimeCampaignDeterminism asserts the runtime-injection seed
// guarantee: the same campaign seed produces byte-identical records
// (trigger decisions, corruptions, activation counts included) across
// repeated runs.
func TestRuntimeCampaignDeterminism(t *testing.T) {
	var out [2][]byte
	for i := range out {
		rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
		res, err := kvclient.CampaignR(rt, 404).Run()
		if err != nil {
			t.Fatal(err)
		}
		recs, err := json.Marshal(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = recs
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Error("same seed must produce byte-identical records with runtime faults enabled")
	}
}

// runtimeOnlyFaultload filters the mixed §V-R faultload down to its
// runtime trigger/action specs.
func runtimeOnlyFaultload(tb testing.TB) []faultmodel.Spec {
	tb.Helper()
	var out []faultmodel.Spec
	for _, s := range kvclient.CampaignRFaultload() {
		if s.IsRuntime() {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		tb.Fatal("mixed faultload has no runtime specs")
	}
	return out
}

// TestRuntimeOnlySkipsRecompile asserts that a runtime-only faultload
// never takes the mutation path: every experiment runs as a runtime
// injection against the campaign's base program (no per-experiment
// source rewrite, no single-file program derivation).
func TestRuntimeOnlySkipsRecompile(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignR(rt, 404)
	c.Faultload = runtimeOnlyFaultload(t)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Len() == 0 {
		t.Fatal("runtime-only plan is empty")
	}
	if res.Mutated != 0 {
		t.Errorf("runtime-only campaign took the mutation path %d times", res.Mutated)
	}
	if res.Injected != len(res.Records) {
		t.Errorf("Injected = %d, want every experiment (%d)", res.Injected, len(res.Records))
	}
	for _, rec := range res.Records {
		if rec.Result != nil && len(rec.Injections) == 0 {
			t.Errorf("experiment %s has no injector report", rec.Point.ID())
		}
	}
}

// BenchmarkRuntimeExperiment measures one runtime-injection experiment
// (engine build + two workload rounds) against a prebuilt base program:
// the path that skips per-experiment recompilation entirely. Compare
// with the mutated-experiment rows of BENCH_exec.json.
func BenchmarkRuntimeExperiment(b *testing.B) {
	files := kvclient.Sources()
	cfg := kvclient.WorkloadConfig()
	units := make([]interp.SourceUnit, 0, len(cfg.Files))
	for _, f := range cfg.Files {
		units = append(units, interp.SourceUnit{Name: f, Src: files[f]})
	}
	prog, err := interp.CompileProgram(units)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Program = prog
	fault := runtimefault.Fault{
		Name: "bench-flaky",
		Site: "Client.api",
		When: runtimefault.Trigger{Mode: runtimefault.TriggerProb, P: 0.5},
		Do:   runtimefault.Action{Kind: runtimefault.ActionRaise, ExcType: "ConnectTimeoutError", Message: "bench"},
	}
	rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 7})
	img := kvclient.Image()
	img.Files = files
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := runtimefault.NewEngine([]runtimefault.Fault{fault}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ecfg := cfg
		ecfg.Injector = eng
		ctr := rt.CreateSeeded(img, int64(i))
		if _, err := workload.Run(ctr, ecfg); err != nil {
			b.Fatal(err)
		}
		if err := rt.Destroy(ctr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignExecution measures end-to-end campaign throughput
// (scan + coverage + all experiments + analysis) in experiments per
// wall second, compiled vs the tree-walk baseline.
func BenchmarkCampaignExecution(b *testing.B) {
	for _, mode := range []struct {
		name     string
		treeWalk bool
	}{{"compiled", false}, {"tree-walk", true}} {
		b.Run(mode.name, func(b *testing.B) {
			experiments := 0
			for i := 0; i < b.N; i++ {
				res := runCampaignMode(b, mode.treeWalk, 101)
				experiments = len(res.Records)
			}
			b.ReportMetric(float64(experiments*b.N)/b.Elapsed().Seconds(), "experiments/s")
			b.ReportMetric(float64(experiments), "experiments")
		})
	}
}

// execBenchResult is one row of BENCH_exec.json.
type execBenchResult struct {
	Name             string  `json:"name"`
	NsPerOp          float64 `json:"nsPerOp"`
	AllocsPerOp      int64   `json:"allocsPerOp"`
	BytesPerOp       int64   `json:"bytesPerOp"`
	ExperimentsPerSc float64 `json:"experimentsPerSec,omitempty"`
}

// TestEmitExecBenchJSON measures the execute phase in both modes and
// writes machine-readable results to the path in PROFIPY_BENCH_JSON
// (skipped otherwise). `make bench` and the CI bench job run it and
// archive the artifact.
func TestEmitExecBenchJSON(t *testing.T) {
	path := os.Getenv("PROFIPY_BENCH_JSON")
	if path == "" {
		t.Skip("set PROFIPY_BENCH_JSON=<path> to emit the exec benchmark artifact")
	}

	var rows []execBenchResult
	measureCampaign := func(name string, treeWalk bool) {
		experiments := 0
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCampaignMode(b, treeWalk, 101)
				experiments = len(res.Records)
			}
		})
		row := execBenchResult{
			Name:        name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if br.NsPerOp() > 0 {
			row.ExperimentsPerSc = float64(experiments) * 1e9 / float64(br.NsPerOp())
		}
		rows = append(rows, row)
	}
	measureCampaign("campaign-exec/compiled", false)
	measureCampaign("campaign-exec/tree-walk", true)

	measureRound := func(name string, treeWalk bool) {
		files := kvclient.Sources()
		cfg := kvclient.WorkloadConfig()
		if !treeWalk {
			units := make([]interp.SourceUnit, 0, len(cfg.Files))
			for _, f := range cfg.Files {
				units = append(units, interp.SourceUnit{Name: f, Src: files[f]})
			}
			prog, err := interp.CompileProgram(units)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Program = prog
		}
		br := testing.Benchmark(func(b *testing.B) {
			rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 7})
			img := kvclient.Image()
			img.Files = files
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctr := rt.CreateSeeded(img, 7)
				if _, err := workload.Run(ctr, cfg); err != nil {
					b.Fatal(err)
				}
				if err := rt.Destroy(ctr); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, execBenchResult{
			Name:        name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		})
	}
	measureRound("experiment-two-rounds/compiled", false)
	measureRound("experiment-two-rounds/tree-walk", true)

	// Fork on/off A/B on the late-site scenario: every injection site in
	// campaign-late is first reached near the end of round 1, so the
	// prefix-fork path skips almost a full round per experiment. The rows
	// are adjacent (fork first) so the speedup map reports on-vs-off.
	// The ForkHits assertion is the CI smoke that the fork path actually
	// engaged — a silent fallback to full runs would otherwise report a
	// ~1.00x row without failing anything.
	measureForkCampaign := func(name string, fork bool) {
		experiments := 0
		snapshots, hits := 0, 0
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
				c := kvclient.CampaignLate(rt, 707)
				c.PrefixFork = fork
				res, err := c.Run()
				if err != nil {
					b.Fatalf("campaign-late (fork=%v): %v", fork, err)
				}
				experiments = len(res.Records)
				snapshots, hits = res.ForkSnapshots, res.ForkHits
			}
		})
		if fork && (snapshots == 0 || hits == 0) {
			t.Fatalf("prefix-fork did not engage: snapshots=%d hits=%d", snapshots, hits)
		}
		row := execBenchResult{
			Name:        name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if br.NsPerOp() > 0 {
			row.ExperimentsPerSc = float64(experiments) * 1e9 / float64(br.NsPerOp())
		}
		rows = append(rows, row)
	}
	measureForkCampaign("campaign-late/prefix-fork", true)
	measureForkCampaign("campaign-late/full-runs", false)

	out := struct {
		Benchmarks []execBenchResult `json:"benchmarks"`
		Speedup    map[string]string `json:"speedup"`
	}{Benchmarks: rows, Speedup: map[string]string{}}
	for i := 0; i+1 < len(rows); i += 2 {
		if rows[i].NsPerOp > 0 {
			out.Speedup[rows[i].Name] = fmt.Sprintf("%.2fx", rows[i+1].NsPerOp/rows[i].NsPerOp)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, data)
}
