module profipy

go 1.24
