// Prefix-fork equivalence against the golden fixtures: every campaign
// re-runs with Campaign.PrefixFork enabled — round 1 of most experiments
// resumes from a boundary snapshot instead of replaying the shared
// workload prefix — across both executor geometries, and the records
// must stay byte-for-byte identical to the fixtures recorded by straight
// execution. The test also asserts the fork path actually engaged
// (snapshots captured, experiments resumed), so a silently-disabled fork
// path cannot pass as "equivalent".
package profipy

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"profipy/internal/executor"
)

func TestGoldenCampaignRecordsPrefixFork(t *testing.T) {
	execs := []struct {
		name string
		exec executor.Executor // nil = default Local
	}{
		{"local", nil},
		{"sharded", executor.Sharded{Shards: 3, Workers: 2}},
	}
	for _, gc := range goldenCampaigns {
		want, err := os.ReadFile(filepath.Join("testdata", "golden", gc.name+".json"))
		if err != nil {
			t.Fatalf("missing golden fixture for %s (run `go test -run TestGoldenCampaignRecords -update .`): %v", gc.name, err)
		}
		for _, ex := range execs {
			t.Run(gc.name+"/"+ex.name, func(t *testing.T) {
				rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
				c := gc.build(rt, gc.seed)
				c.PrefixFork = true
				c.Executor = ex.exec
				res, err := c.Run()
				if err != nil {
					t.Fatalf("campaign: %v", err)
				}
				if res.ForkSnapshots == 0 {
					t.Error("PrefixFork captured no snapshots — fork path never engaged")
				}
				if res.ForkHits == 0 {
					t.Error("PrefixFork resumed no experiments — fork path never engaged")
				}
				got, err := json.MarshalIndent(res.Records, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				if !bytes.Equal(got, want) {
					t.Errorf("forked records drifted from the straight-execution fixture (%d vs %d bytes); forked and unforked execution must be byte-identical",
						len(got), len(want))
				}
			})
		}
	}
}
