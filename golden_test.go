// Golden-record regression tests: the three §V case-study campaigns
// (plus the mixed runtime-injection campaign) run with fixed seeds and
// their full experiment records are compared byte-for-byte against
// canonical JSON fixtures under testdata/golden/. Any drift — a changed
// failure mode, step count, virtual clock, log line, trigger decision
// or JSON encoding — fails the test.
//
// To regenerate the fixtures after an intentional behavior change:
//
//	go test -run TestGoldenCampaignRecords -update .
//
// then review the fixture diff like any other code change.
package profipy

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"profipy/internal/campaign"
	"profipy/internal/kvclient"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden campaign record fixtures under testdata/golden/")

// goldenCampaigns pins each campaign to the seed its fixture was
// recorded with. Runtime seeds (container PRNGs, trigger decisions,
// corruptions) all derive from it, so records are reproducible across
// machines and worker counts.
var goldenCampaigns = []struct {
	name  string
	build func(rt *Runtime, seed int64) *campaign.Campaign
	seed  int64
}{
	{"campaign-a", kvclient.CampaignA, 101},
	{"campaign-b", kvclient.CampaignB, 202},
	{"campaign-c", kvclient.CampaignC, 303},
	{"campaign-r", kvclient.CampaignR, 404},
	{"campaign-late", kvclient.CampaignLate, 707},
}

// goldenRecords produces the canonical JSON encoding of one campaign's
// records: indented, trailing newline, key order fixed by the struct
// and map encodings.
func goldenRecords(tb testing.TB, build func(rt *Runtime, seed int64) *campaign.Campaign, seed int64) []byte {
	tb.Helper()
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	res, err := build(rt, seed).Run()
	if err != nil {
		tb.Fatalf("campaign: %v", err)
	}
	data, err := json.MarshalIndent(res.Records, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	return append(data, '\n')
}

func TestGoldenCampaignRecords(t *testing.T) {
	for _, gc := range goldenCampaigns {
		t.Run(gc.name, func(t *testing.T) {
			got := goldenRecords(t, gc.build, gc.seed)
			path := filepath.Join("testdata", "golden", gc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture %s (run `go test -run TestGoldenCampaignRecords -update .`): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("campaign records drifted from %s (%d vs %d bytes);\n"+
					"if the change is intentional, regenerate with `go test -run TestGoldenCampaignRecords -update .` and review the diff",
					path, len(got), len(want))
			}
		})
	}
}
