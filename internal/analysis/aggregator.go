package analysis

import (
	"fmt"
	"regexp"
)

// Aggregator is the online form of the data analysis phase: records are
// folded in one at a time as experiments complete, partial aggregators
// from independent shards merge associatively, and Report materializes
// the same Report that BuildReport produces over the full record slice
// — byte-identical JSON, in any Add/Merge order. Every metric the
// report carries is either a counter sum or a ratio of counter sums, so
// campaign memory stays O(1) per aggregator instead of O(experiments).
type Aggregator struct {
	classes    []compiledClass
	errRE      *regexp.Regexp
	components map[string][]string
	fileToComp map[string]string

	total       int
	covered     int
	failures    int
	unavailable int
	available   int
	logged      int
	propagated  int
	watchdog    int
	modes       map[string]int
	byType      map[string]*TypeStats
	byComp      map[string]*TypeStats
	triggers    map[string]*TriggerStats // nil until a runtime injection is seen
}

// NewAggregator compiles the analysis configuration into an empty
// accumulator. Shard aggregators that will later Merge must be built
// from the same Config.
func NewAggregator(cfg Config) (*Aggregator, error) {
	classes := make([]compiledClass, 0, len(cfg.Classes))
	for _, cl := range cfg.Classes {
		re, err := regexp.Compile(cl.Pattern)
		if err != nil {
			return nil, fmt.Errorf("analysis: class %q: %w", cl.Name, err)
		}
		classes = append(classes, compiledClass{class: cl, re: re})
	}
	errPat := cfg.ErrorPattern
	if errPat == "" {
		errPat = "ERROR"
	}
	errRE, err := regexp.Compile(errPat)
	if err != nil {
		return nil, fmt.Errorf("analysis: error pattern: %w", err)
	}
	fileToComp := map[string]string{}
	for comp, files := range cfg.Components {
		for _, f := range files {
			fileToComp[f] = comp
		}
	}
	return &Aggregator{
		classes:    classes,
		errRE:      errRE,
		components: cfg.Components,
		fileToComp: fileToComp,
		modes:      map[string]int{},
		byType:     map[string]*TypeStats{},
		byComp:     map[string]*TypeStats{},
	}, nil
}

// Add folds one completed experiment into the aggregate. Not safe for
// concurrent use; give each concurrent producer its own Aggregator and
// Merge them.
func (a *Aggregator) Add(rec Record) {
	a.total++
	if rec.Covered {
		a.covered++
	}
	typeStats := statsFor(a.byType, rec.FaultType)
	comp := a.fileToComp[rec.Point.File]
	if comp == "" {
		comp = rec.Point.File
	}
	compStats := statsFor(a.byComp, comp)
	typeStats.Total++
	compStats.Total++
	if rec.Covered {
		typeStats.Covered++
		compStats.Covered++
	}
	if rec.Result != nil && !rec.Unavailable() {
		a.available++
	}
	if rec.WatchdogKilled() {
		a.watchdog++
	}
	for _, act := range rec.Injections {
		if a.triggers == nil {
			a.triggers = map[string]*TriggerStats{}
		}
		ts, ok := a.triggers[act.Fault]
		if !ok {
			ts = &TriggerStats{}
			a.triggers[act.Fault] = ts
		}
		ts.Experiments++
		ts.Activations += act.Activations
		ts.Fires += act.Fires
	}
	if !rec.Failed() {
		return
	}
	a.failures++
	typeStats.Failures++
	compStats.Failures++
	if rec.Unavailable() {
		a.unavailable++
		typeStats.Unavailable++
		compStats.Unavailable++
	}
	for _, mode := range ClassifyRecord(rec, a.classes) {
		a.modes[mode]++
	}
	if failureLogged(rec, a.errRE) {
		a.logged++
	}
	if propagated(rec, a.errRE, a.components) {
		a.propagated++
	}
}

// Count reports how many records have been folded in (including merges).
func (a *Aggregator) Count() int { return a.total }

// Merge folds another shard's aggregate into this one. Every field is a
// counter, so merging is commutative and associative; b must have been
// built from the same Config and must not be used afterwards.
func (a *Aggregator) Merge(b *Aggregator) {
	a.total += b.total
	a.covered += b.covered
	a.failures += b.failures
	a.unavailable += b.unavailable
	a.available += b.available
	a.logged += b.logged
	a.propagated += b.propagated
	a.watchdog += b.watchdog
	for k, v := range b.modes {
		a.modes[k] += v
	}
	mergeStats(a.byType, b.byType)
	mergeStats(a.byComp, b.byComp)
	for k, v := range b.triggers {
		if a.triggers == nil {
			a.triggers = map[string]*TriggerStats{}
		}
		ts, ok := a.triggers[k]
		if !ok {
			ts = &TriggerStats{}
			a.triggers[k] = ts
		}
		ts.Experiments += v.Experiments
		ts.Activations += v.Activations
		ts.Fires += v.Fires
	}
}

func mergeStats(dst, src map[string]*TypeStats) {
	for k, v := range src {
		st := statsFor(dst, k)
		st.Total += v.Total
		st.Covered += v.Covered
		st.Failures += v.Failures
		st.Unavailable += v.Unavailable
	}
}

// Report materializes the aggregate as a full analysis Report,
// byte-identical to BuildReport over the same records. The snapshot is
// deep-copied, so the aggregator can keep accumulating afterwards (live
// mid-campaign reports) without aliasing issues.
func (a *Aggregator) Report() *Report {
	rep := &Report{
		Total:              a.total,
		Covered:            a.covered,
		Failures:           a.failures,
		Unavailable:        a.unavailable,
		LoggedFailures:     a.logged,
		PropagatedFailures: a.propagated,
		WatchdogTimeouts:   a.watchdog,
		Modes:              make(map[string]int, len(a.modes)),
		ByType:             make(map[string]*TypeStats, len(a.byType)),
		ByComponent:        make(map[string]*TypeStats, len(a.byComp)),
	}
	for k, v := range a.modes {
		rep.Modes[k] = v
	}
	for k, v := range a.byType {
		cp := *v
		rep.ByType[k] = &cp
	}
	for k, v := range a.byComp {
		cp := *v
		rep.ByComponent[k] = &cp
	}
	if a.triggers != nil {
		rep.Triggers = make(map[string]*TriggerStats, len(a.triggers))
		for k, v := range a.triggers {
			cp := *v
			rep.Triggers[k] = &cp
		}
	}
	if rep.Total > 0 {
		rep.Availability = float64(a.available) / float64(rep.Total)
	}
	if rep.Failures > 0 {
		rep.LoggingRate = float64(rep.LoggedFailures) / float64(rep.Failures)
		rep.PropagationRate = float64(rep.PropagatedFailures) / float64(rep.Failures)
	}
	return rep
}
