package analysis

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// goldenRecordSets loads the §V campaign record fixtures (A, B, C and
// the mixed runtime campaign R) recorded under testdata/golden/ at the
// repository root — real crash/timeout/log-pattern outcomes, runtime
// injector activations, uncovered stubs, the works.
func goldenRecordSets(t *testing.T) map[string][]Record {
	t.Helper()
	sets := map[string][]Record{}
	for _, name := range []string{"campaign-a", "campaign-b", "campaign-c", "campaign-r"} {
		path := filepath.Join("..", "..", "testdata", "golden", name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("golden fixture %s: %v", path, err)
		}
		var recs []Record
		if err := json.Unmarshal(data, &recs); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		if len(recs) == 0 {
			t.Fatalf("fixture %s is empty", path)
		}
		sets[name] = recs
	}
	return sets
}

// aggregatorConfigs covers the config space the equivalence must hold
// over: no classes, log-pattern classes, custom error patterns, and
// component maps driving the propagation metric and drill-downs.
func aggregatorConfigs() map[string]Config {
	return map[string]Config{
		"empty": {},
		"classes": {Classes: []FailureClass{
			{Name: "value-error", Pattern: "ValueError"},
			{Name: "conn", Pattern: "Connect.*Error"},
			{Name: "etcd-log", Pattern: "ERROR", Logs: []string{"etcd"}},
		}},
		"error-pattern": {ErrorPattern: "WARN|ERROR"},
		"components": {Components: map[string][]string{
			"client": {"client.py"},
			"lock":   {"lock.py", "auth.py"},
			"etcd":   {"workload.py"},
		}},
	}
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAggregatorMatchesBatchReport is the satellite property test:
// every golden record set, under every config, must produce the same
// report bytes through (a) the batch BuildReport, (b) a single
// aggregator fed sequentially, (c) shard-partitioned aggregators merged
// in several shard counts, split shapes and merge orders. Record order
// within shards is shuffled too: analysis is order-free by design.
func TestAggregatorMatchesBatchReport(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for setName, recs := range goldenRecordSets(t) {
		for cfgName, cfg := range aggregatorConfigs() {
			t.Run(setName+"/"+cfgName, func(t *testing.T) {
				want, err := BuildReport(recs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				wantJSON := reportJSON(t, want)

				// (b) sequential online aggregation.
				agg, err := NewAggregator(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, rec := range recs {
					agg.Add(rec)
				}
				if got := reportJSON(t, agg.Report()); string(got) != string(wantJSON) {
					t.Errorf("sequential aggregator drifted from batch report:\n got %s\nwant %s", got, wantJSON)
				}
				if agg.Count() != len(recs) {
					t.Errorf("Count = %d, want %d", agg.Count(), len(recs))
				}

				// (c) sharded aggregation: contiguous and strided splits,
				// forward and reverse merge orders, shuffled shard feeds.
				for _, shards := range []int{1, 2, 3, 5, 8, len(recs)} {
					for _, strided := range []bool{false, true} {
						for _, reverseMerge := range []bool{false, true} {
							parts := splitRecords(recs, shards, strided, rng)
							got := mergeShards(t, cfg, parts, reverseMerge)
							if string(got) != string(wantJSON) {
								t.Errorf("shards=%d strided=%v reverse=%v drifted:\n got %s\nwant %s",
									shards, strided, reverseMerge, got, wantJSON)
							}
						}
					}
				}
			})
		}
	}
}

// splitRecords partitions records into shards (contiguous ranges or
// index-mod striding) and shuffles each shard's internal order.
func splitRecords(recs []Record, shards int, strided bool, rng *rand.Rand) [][]Record {
	parts := make([][]Record, shards)
	for i, rec := range recs {
		var s int
		if strided {
			s = i % shards
		} else {
			s = i * shards / len(recs)
		}
		parts[s] = append(parts[s], rec)
	}
	for _, p := range parts {
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}
	return parts
}

func mergeShards(t *testing.T, cfg Config, parts [][]Record, reverse bool) []byte {
	t.Helper()
	aggs := make([]*Aggregator, len(parts))
	for i, p := range parts {
		agg, err := NewAggregator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range p {
			agg.Add(rec)
		}
		aggs[i] = agg
	}
	if reverse {
		for i, j := 0, len(aggs)-1; i < j; i, j = i+1, j-1 {
			aggs[i], aggs[j] = aggs[j], aggs[i]
		}
	}
	root := aggs[0]
	for _, agg := range aggs[1:] {
		root.Merge(agg)
	}
	return reportJSON(t, root.Report())
}

// TestAggregatorReportSnapshotIsolation asserts Report returns a deep
// copy: mutating a snapshot or adding more records must not corrupt
// earlier snapshots.
func TestAggregatorReportSnapshotIsolation(t *testing.T) {
	recs := goldenRecordSets(t)["campaign-a"]
	agg, err := NewAggregator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:len(recs)/2] {
		agg.Add(rec)
	}
	mid := agg.Report()
	midJSON := reportJSON(t, mid)
	for _, rec := range recs[len(recs)/2:] {
		agg.Add(rec)
	}
	if got := reportJSON(t, mid); string(got) != string(midJSON) {
		t.Error("later Adds mutated an earlier snapshot")
	}
	for _, st := range mid.ByType {
		st.Total += 1000
	}
	full := agg.Report()
	want, err := BuildReport(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, full); string(got) != string(reportJSON(t, want)) {
		t.Error("snapshot mutation leaked back into the aggregator")
	}
}

// TestAggregatorRejectsBadConfig preserves BuildReport's error surface.
func TestAggregatorRejectsBadConfig(t *testing.T) {
	if _, err := NewAggregator(Config{Classes: []FailureClass{{Name: "bad", Pattern: "("}}}); err == nil {
		t.Error("bad class regex accepted")
	}
	if _, err := NewAggregator(Config{ErrorPattern: "("}); err == nil {
		t.Error("bad error pattern accepted")
	}
}
