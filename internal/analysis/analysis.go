// Package analysis implements ProFIPy's data analysis phase (§IV-C/D):
// classification of experiments into failure modes (crash, timeout and
// user-defined log-pattern classes), the statistical distribution of
// modes, drill-down by fault type and injected component, the service
// availability metric (round-2 outcomes), the failure logging metric and
// the failure propagation metric.
package analysis

import (
	"fmt"
	"regexp"
	"sort"

	"profipy/internal/runtimefault"
	"profipy/internal/scanner"
	"profipy/internal/workload"
)

// Built-in failure mode names.
const (
	ModeCrash   = "crash"
	ModeTimeout = "timeout"
	ModeOther   = "failure"
)

// FailureClass is a user-defined failure mode: a regex searched in the
// experiment's logs and outputs.
type FailureClass struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// Logs restricts the search to specific log streams; empty = all.
	Logs []string `json:"logs,omitempty"`
}

// Record is one completed experiment.
type Record struct {
	Point     scanner.InjectionPoint `json:"point"`
	FaultType string                 `json:"faultType"`
	Covered   bool                   `json:"covered"`
	Result    *workload.Result       `json:"result"`
	// Injections holds the runtime injector's per-fault trigger
	// activation counts; nil for compile-time mutation experiments.
	Injections []runtimefault.Activation `json:"injections,omitempty"`
}

// Failed reports a service failure in round 1 (fault enabled).
func (r Record) Failed() bool {
	return r.Result != nil && r.Result.Round1().Failed()
}

// Unavailable reports that the service also failed in round 2 (fault
// disabled): the error state persisted and was not recovered.
func (r Record) Unavailable() bool {
	return r.Result != nil && len(r.Result.Rounds) > 1 && r.Result.Round2().Failed()
}

// Config parameterises the analysis.
type Config struct {
	// Classes are the user-defined failure modes.
	Classes []FailureClass
	// ErrorPattern identifies error lines in logs (failure-logging and
	// propagation metrics); empty selects "ERROR".
	ErrorPattern string
	// Components maps component names to their source files; a
	// component's log stream shares its name. Used by the propagation
	// metric and the per-component drill-down.
	Components map[string][]string
}

// TypeStats aggregates experiments sharing a dimension value.
type TypeStats struct {
	Total       int `json:"total"`
	Covered     int `json:"covered"`
	Failures    int `json:"failures"`
	Unavailable int `json:"unavailable"`
}

// Report is the output of the data analysis phase.
type Report struct {
	Total       int `json:"total"`
	Covered     int `json:"covered"`
	Failures    int `json:"failures"`
	Unavailable int `json:"unavailable"`

	// Modes is the failure mode distribution (an experiment can exhibit
	// several log-pattern modes).
	Modes map[string]int `json:"modes"`
	// ByType and ByComponent are drill-downs (§IV-C).
	ByType      map[string]*TypeStats `json:"byType"`
	ByComponent map[string]*TypeStats `json:"byComponent"`

	// Availability is the fraction of experiments whose round 2 was
	// healthy again (the service availability metric).
	Availability float64 `json:"availability"`
	// LoggedFailures counts failures with at least one error log line;
	// LoggingRate = LoggedFailures / Failures (failure logging metric).
	LoggedFailures int     `json:"loggedFailures"`
	LoggingRate    float64 `json:"loggingRate"`
	// PropagatedFailures counts failures whose error lines span more
	// than one component (failure propagation metric).
	PropagatedFailures int     `json:"propagatedFailures"`
	PropagationRate    float64 `json:"propagationRate"`

	// Triggers aggregates runtime-injector activity per fault spec:
	// how often each runtime fault's site was entered while armed and
	// how often its trigger fired, summed over all experiments. Nil
	// for purely compile-time campaigns.
	Triggers map[string]*TriggerStats `json:"triggers,omitempty"`

	// WatchdogTimeouts counts experiments with at least one round
	// killed by the wall-clock watchdog (workload.Config.WallBudgetNS):
	// real hangs the virtual clock could not catch. Omitted when zero,
	// which keeps watchdog-free campaigns byte-identical to before.
	WatchdogTimeouts int `json:"watchdogTimeouts,omitempty"`
}

// WatchdogKilled reports whether any round of the experiment was ended
// by the wall-clock watchdog.
func (r Record) WatchdogKilled() bool {
	if r.Result == nil {
		return false
	}
	for _, rr := range r.Result.Rounds {
		if rr.Watchdog {
			return true
		}
	}
	return false
}

// TriggerStats is the aggregated runtime-injector activity of one
// fault spec across a campaign.
type TriggerStats struct {
	Experiments int   `json:"experiments"`
	Activations int64 `json:"activations"`
	Fires       int64 `json:"fires"`
}

// compiledClass pairs a class with its compiled regex.
type compiledClass struct {
	class FailureClass
	re    *regexp.Regexp
}

// BuildReport classifies all experiment records and computes the
// metrics. It is the batch form of Aggregator: one record at a time
// through the same online accumulator, so the two are equivalent by
// construction.
func BuildReport(records []Record, cfg Config) (*Report, error) {
	agg, err := NewAggregator(cfg)
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		agg.Add(rec)
	}
	return agg.Report(), nil
}

func statsFor(m map[string]*TypeStats, key string) *TypeStats {
	st, ok := m[key]
	if !ok {
		st = &TypeStats{}
		m[key] = st
	}
	return st
}

// ClassifyRecord returns the failure modes of a failed experiment: every
// matching user-defined class, plus the built-in crash/timeout modes when
// nothing more specific matched.
func ClassifyRecord(rec Record, classes []compiledClass) []string {
	var modes []string
	for _, cc := range classes {
		if classMatches(rec, cc) {
			modes = append(modes, cc.class.Name)
		}
	}
	if len(modes) == 0 {
		r1 := rec.Result.Round1()
		switch {
		case r1.Timeout:
			modes = append(modes, ModeTimeout)
		case r1.Crash:
			modes = append(modes, ModeCrash)
		default:
			modes = append(modes, ModeOther)
		}
	}
	return modes
}

// Classify is the exported form of ClassifyRecord for a single class set.
func Classify(rec Record, cfgClasses []FailureClass) ([]string, error) {
	classes := make([]compiledClass, 0, len(cfgClasses))
	for _, cl := range cfgClasses {
		re, err := regexp.Compile(cl.Pattern)
		if err != nil {
			return nil, fmt.Errorf("analysis: class %q: %w", cl.Name, err)
		}
		classes = append(classes, compiledClass{class: cl, re: re})
	}
	return ClassifyRecord(rec, classes), nil
}

func classMatches(rec Record, cc compiledClass) bool {
	searchLogs := cc.class.Logs
	if len(searchLogs) == 0 {
		for name := range rec.Result.Logs {
			searchLogs = append(searchLogs, name)
		}
		sort.Strings(searchLogs)
	}
	for _, name := range searchLogs {
		if cc.re.MatchString(rec.Result.Logs[name]) {
			return true
		}
	}
	for _, rr := range rec.Result.Rounds {
		if cc.re.MatchString(rr.Message) || cc.re.MatchString(rr.Exception) {
			return true
		}
	}
	return false
}

func failureLogged(rec Record, errRE *regexp.Regexp) bool {
	for _, content := range rec.Result.Logs {
		if errRE.MatchString(content) {
			return true
		}
	}
	return false
}

// propagated reports whether error lines appear in more than one
// configured component's log.
func propagated(rec Record, errRE *regexp.Regexp, components map[string][]string) bool {
	if len(components) == 0 {
		return false
	}
	impacted := 0
	for comp := range components {
		if errRE.MatchString(rec.Result.Logs[comp]) {
			impacted++
		}
	}
	return impacted >= 2
}

// Drill returns the failed records exhibiting the given failure mode.
func Drill(records []Record, cfgClasses []FailureClass, mode string) ([]Record, error) {
	var out []Record
	for _, rec := range records {
		if !rec.Failed() {
			continue
		}
		modes, err := Classify(rec, cfgClasses)
		if err != nil {
			return nil, err
		}
		for _, m := range modes {
			if m == mode {
				out = append(out, rec)
				break
			}
		}
	}
	return out, nil
}
