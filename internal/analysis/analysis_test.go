package analysis

import (
	"strings"
	"testing"

	"profipy/internal/scanner"
	"profipy/internal/workload"
)

func rec(faultType, file string, r1OK, r2OK bool, logs map[string]string) Record {
	res := &workload.Result{
		Rounds: []workload.RoundResult{{OK: r1OK}, {OK: r2OK}},
		Logs:   logs,
	}
	if !r1OK {
		res.Rounds[0].Crash = true
		res.Rounds[0].Message = "uncaught exception"
	}
	return Record{
		Point:     scanner.InjectionPoint{Spec: faultType, File: file},
		FaultType: faultType,
		Covered:   true,
		Result:    res,
	}
}

func TestBuildReportCountsAndMetrics(t *testing.T) {
	records := []Record{
		rec("T1", "client.go", true, true, map[string]string{}),
		rec("T1", "client.go", false, true, map[string]string{"client": "ERROR boom\n"}),
		rec("T2", "lock.go", false, false, map[string]string{"client": "ERROR a\n", "lock": "ERROR b\n"}),
	}
	rep, err := BuildReport(records, Config{
		Classes: []FailureClass{
			{Name: "boom", Pattern: "boom"},
		},
		Components: map[string][]string{
			"client": {"client.go"},
			"lock":   {"lock.go"},
		},
	})
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	if rep.Total != 3 || rep.Covered != 3 {
		t.Errorf("total/covered = %d/%d", rep.Total, rep.Covered)
	}
	if rep.Failures != 2 {
		t.Errorf("failures = %d, want 2", rep.Failures)
	}
	if rep.Unavailable != 1 {
		t.Errorf("unavailable = %d, want 1", rep.Unavailable)
	}
	// Availability: 2 of 3 experiments had a healthy round 2.
	if rep.Availability < 0.66 || rep.Availability > 0.67 {
		t.Errorf("availability = %f", rep.Availability)
	}
	if rep.Modes["boom"] != 1 {
		t.Errorf("modes = %v, want boom:1", rep.Modes)
	}
	// The second failure matched no class: built-in crash mode.
	if rep.Modes[ModeCrash] != 1 {
		t.Errorf("modes = %v, want crash:1", rep.Modes)
	}
	// Both failures logged errors.
	if rep.LoggedFailures != 2 || rep.LoggingRate != 1.0 {
		t.Errorf("logging = %d (%f)", rep.LoggedFailures, rep.LoggingRate)
	}
	// Only the T2 failure spans two components.
	if rep.PropagatedFailures != 1 {
		t.Errorf("propagated = %d, want 1", rep.PropagatedFailures)
	}
	// Drill-down by type.
	if st := rep.ByType["T1"]; st.Total != 2 || st.Failures != 1 {
		t.Errorf("T1 stats = %+v", st)
	}
	if st := rep.ByComponent["lock"]; st.Total != 1 || st.Failures != 1 || st.Unavailable != 1 {
		t.Errorf("lock stats = %+v", st)
	}
}

func TestClassifyTimeoutAndCrash(t *testing.T) {
	timeoutRec := Record{
		FaultType: "T",
		Result: &workload.Result{
			Rounds: []workload.RoundResult{{OK: false, Timeout: true}},
			Logs:   map[string]string{},
		},
	}
	modes, err := Classify(timeoutRec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 || modes[0] != ModeTimeout {
		t.Errorf("modes = %v, want [timeout]", modes)
	}
}

func TestClassifyMatchesExceptionType(t *testing.T) {
	r := Record{
		FaultType: "T",
		Result: &workload.Result{
			Rounds: []workload.RoundResult{{OK: false, Crash: true, Exception: "EtcdKeyNotFound"}},
			Logs:   map[string]string{},
		},
	}
	modes, err := Classify(r, []FailureClass{{Name: "knf", Pattern: "KeyNotFound"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 || modes[0] != "knf" {
		t.Errorf("modes = %v", modes)
	}
}

func TestClassRestrictedToLogStream(t *testing.T) {
	r := Record{
		FaultType: "T",
		Result: &workload.Result{
			Rounds: []workload.RoundResult{{OK: false, Crash: true}},
			Logs:   map[string]string{"server": "ERROR x\n", "client": "fine\n"},
		},
	}
	modes, err := Classify(r, []FailureClass{{Name: "client-err", Pattern: "ERROR", Logs: []string{"client"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 || modes[0] != ModeCrash {
		t.Errorf("modes = %v, want crash fallback (pattern restricted to client log)", modes)
	}
}

func TestBuildReportRejectsBadRegex(t *testing.T) {
	if _, err := BuildReport(nil, Config{Classes: []FailureClass{{Name: "bad", Pattern: "("}}}); err == nil {
		t.Error("bad class regex should fail")
	}
	if _, err := BuildReport(nil, Config{ErrorPattern: "("}); err == nil {
		t.Error("bad error pattern should fail")
	}
}

func TestDrill(t *testing.T) {
	records := []Record{
		rec("T1", "a.go", false, true, map[string]string{"l": "ERROR boom\n"}),
		rec("T1", "a.go", false, true, map[string]string{"l": "ERROR other\n"}),
		rec("T1", "a.go", true, true, map[string]string{}),
	}
	classes := []FailureClass{{Name: "boom", Pattern: "boom"}}
	out, err := Drill(records, classes, "boom")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("drill = %d records, want 1", len(out))
	}
}

func TestRenderContainsKeyFigures(t *testing.T) {
	rep := &Report{
		Total: 10, Covered: 5, Failures: 3, Unavailable: 1,
		Availability: 0.9, LoggingRate: 0.5,
		Modes:  map[string]int{"crash": 3},
		ByType: map[string]*TypeStats{"MFC": {Total: 10, Covered: 5, Failures: 3}},
	}
	out := rep.Render("Test Campaign")
	for _, want := range []string{"Test Campaign", "experiments:            10", "crash", "MFC", "90.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
