package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Render produces a human-readable text report in the style of §V.
func (r *Report) Render(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	fmt.Fprintf(&sb, "experiments:            %d\n", r.Total)
	fmt.Fprintf(&sb, "covered by workload:    %d\n", r.Covered)
	fmt.Fprintf(&sb, "failures (round 1):     %d\n", r.Failures)
	fmt.Fprintf(&sb, "unavailable (round 2):  %d\n", r.Unavailable)
	fmt.Fprintf(&sb, "service availability:   %.1f%%\n", 100*r.Availability)
	fmt.Fprintf(&sb, "failure logging rate:   %.1f%%\n", 100*r.LoggingRate)
	fmt.Fprintf(&sb, "failure propagation:    %.1f%%\n", 100*r.PropagationRate)

	if len(r.Modes) > 0 {
		sb.WriteString("\nfailure mode distribution:\n")
		for _, k := range sortedKeys(r.Modes) {
			fmt.Fprintf(&sb, "  %-28s %d\n", k, r.Modes[k])
		}
	}
	if len(r.ByType) > 0 {
		sb.WriteString("\nby fault type:            total  covered  failures  unavailable\n")
		for _, k := range sortedKeys(r.ByType) {
			st := r.ByType[k]
			fmt.Fprintf(&sb, "  %-24s %6d  %7d  %8d  %11d\n", k, st.Total, st.Covered, st.Failures, st.Unavailable)
		}
	}
	if len(r.ByComponent) > 0 {
		sb.WriteString("\nby injected component:    total  covered  failures  unavailable\n")
		for _, k := range sortedKeys(r.ByComponent) {
			st := r.ByComponent[k]
			fmt.Fprintf(&sb, "  %-24s %6d  %7d  %8d  %11d\n", k, st.Total, st.Covered, st.Failures, st.Unavailable)
		}
	}
	if len(r.Triggers) > 0 {
		sb.WriteString("\nruntime injectors:        exps  activations  fires\n")
		for _, k := range sortedKeys(r.Triggers) {
			ts := r.Triggers[k]
			fmt.Fprintf(&sb, "  %-24s %5d  %11d  %5d\n", k, ts.Experiments, ts.Activations, ts.Fires)
		}
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
