package analysis

import (
	"encoding/json"
	"testing"

	"profipy/internal/workload"
)

func watchdogRecord(killed bool) Record {
	rr := workload.RoundResult{Timeout: true}
	if killed {
		rr.Watchdog = true
	}
	return Record{
		FaultType: "T",
		Covered:   true,
		Result:    &workload.Result{Rounds: []workload.RoundResult{rr, {OK: true}}},
	}
}

func TestWatchdogTimeoutsCounted(t *testing.T) {
	agg, err := NewAggregator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	agg.Add(watchdogRecord(true))
	agg.Add(watchdogRecord(true))
	agg.Add(watchdogRecord(false))
	other, err := NewAggregator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	other.Add(watchdogRecord(true))
	agg.Merge(other)
	if got := agg.Report().WatchdogTimeouts; got != 3 {
		t.Fatalf("WatchdogTimeouts = %d, want 3 (merge included)", got)
	}
}

// TestWatchdogFieldOmittedWhenZero locks in the encoding contract that
// keeps watchdog-free campaigns byte-identical to fixtures recorded
// before the field existed.
func TestWatchdogFieldOmittedWhenZero(t *testing.T) {
	agg, err := NewAggregator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	agg.Add(watchdogRecord(false))
	data, err := json.Marshal(agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	if jsonHasKey(t, data, "watchdogTimeouts") {
		t.Fatalf("zero WatchdogTimeouts serialized: %s", data)
	}
	rr := workload.RoundResult{Timeout: true}
	line, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	if jsonHasKey(t, line, "watchdog") {
		t.Fatalf("false Watchdog serialized: %s", line)
	}
}

func jsonHasKey(t *testing.T, data []byte, key string) bool {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}
