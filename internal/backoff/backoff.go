// Package backoff computes retry delays for transient failures:
// exponential growth from a base delay, a hard cap, and proportional
// jitter so a fleet of retrying clients (remote workers hammering a
// briefly unavailable control plane, scheduler jobs hitting a flaky
// dependency) decorrelates instead of retrying in lockstep.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Delay returns the wait before retry attempt (0-based): base·2^attempt
// bounded by max, with ±jitterFrac proportional jitter drawn from rnd.
// A nil rnd uses the global math/rand source. Zero and negative inputs
// select safe defaults (100ms base, 30s max, no jitter).
func Delay(attempt int, base, max time.Duration, jitterFrac float64, rnd *rand.Rand) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	if jitterFrac > 0 {
		var f float64
		if rnd != nil {
			f = rnd.Float64()
		} else {
			f = rand.Float64()
		}
		// Spread across [1-jitterFrac, 1+jitterFrac).
		d = time.Duration(float64(d) * (1 - jitterFrac + 2*jitterFrac*f))
	}
	if d < 0 {
		d = base
	}
	return d
}

// Sleep waits for the attempt's delay or until ctx is canceled,
// reporting whether the full delay elapsed (false = canceled).
func Sleep(ctx context.Context, attempt int, base, max time.Duration, jitterFrac float64, rnd *rand.Rand) bool {
	t := time.NewTimer(Delay(attempt, base, max, jitterFrac, rnd))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
