// Tests for the scheduler-facing campaign surface: progress reporting
// and context cancellation threaded through RunContext.
package campaign_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"profipy/internal/campaign"
	"profipy/internal/kvclient"
)

func TestRunContextReportsPhaseOrderAndProgress(t *testing.T) {
	c := kvclient.CampaignA(newRuntime(), 808)
	c.SampleN = 5
	var mu sync.Mutex
	var snaps []campaign.Progress
	c.OnProgress = func(p campaign.Progress) {
		mu.Lock()
		snaps = append(snaps, p)
		mu.Unlock()
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress reported")
	}
	// Phases arrive in workflow order.
	order := map[string]int{
		campaign.PhaseScan: 0, campaign.PhaseCoverage: 1,
		campaign.PhaseExecute: 2, campaign.PhaseAnalyze: 3,
	}
	if snaps[0].Phase != campaign.PhaseScan {
		t.Errorf("first phase = %s, want scan", snaps[0].Phase)
	}
	if last := snaps[len(snaps)-1]; last.Phase != campaign.PhaseAnalyze {
		t.Errorf("last phase = %s, want analyze", last.Phase)
	}
	prev := 0
	execDone := -1
	for _, p := range snaps {
		rank, ok := order[p.Phase]
		if !ok {
			t.Fatalf("unknown phase %q", p.Phase)
		}
		if rank < prev {
			t.Fatalf("phase %s after rank %d: out of order", p.Phase, prev)
		}
		prev = rank
		if p.Phase == campaign.PhaseExecute {
			// Done counters of the execute phase are monotonic (the
			// callback serializes per experiment via the atomic add).
			if p.Done < execDone {
				t.Fatalf("execute progress went backwards: %d after %d", p.Done, execDone)
			}
			execDone = p.Done
			if p.Total != 5 {
				t.Errorf("execute total = %d, want 5 (sampled)", p.Total)
			}
		}
	}
	if execDone != 5 {
		t.Errorf("final execute done = %d, want 5", execDone)
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := kvclient.CampaignA(newRuntime(), 909)
	_, err := c.RunContext(ctx)
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCanceledMidExecution(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := kvclient.CampaignB(newRuntime(), 111)
	var once sync.Once
	c.OnProgress = func(p campaign.Progress) {
		// Cancel as soon as the first experiment completes; the
		// remaining ones must be skipped.
		if p.Phase == campaign.PhaseExecute && p.Done >= 1 {
			once.Do(cancel)
		}
	}
	_, err := c.RunContext(ctx)
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
