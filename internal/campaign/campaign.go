// Package campaign orchestrates the complete ProFIPy workflow of Fig. 2:
// Scan (DSL compile + source scan + plan), optional coverage analysis,
// Execution (per-experiment mutation, container deploy, two workload
// rounds, teardown — scheduled by an internal/executor engine: the
// local N−1 pool by default, deterministic shards on request), and Data
// Analysis. Records stream as experiments complete — into the online
// analysis.Aggregator, an optional caller Sink (result store, live
// NDJSON) and, unless discarded, the plan-ordered Result.Records slice
// — so the report exists the moment the last experiment lands and
// memory need not grow with the experiment count.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/coverage"
	"profipy/internal/executor"
	"profipy/internal/faultmodel"
	"profipy/internal/interp"
	"profipy/internal/obs"
	"profipy/internal/pattern"
	"profipy/internal/plan"
	"profipy/internal/runtimefault"
	"profipy/internal/sandbox"
	"profipy/internal/scanner"
	"profipy/internal/trace"
	"profipy/internal/workload"
)

// Campaign is a fully configured fault injection campaign.
type Campaign struct {
	// Name labels reports.
	Name string
	// Files holds every file deployed into experiment containers
	// (target software + workload scripts), keyed by container path.
	Files map[string][]byte
	// ScanFiles names the subset of Files to scan for injection points
	// (empty = scan everything).
	ScanFiles []string
	// Faultload is the set of bug specifications to inject.
	Faultload []faultmodel.Spec
	// Workload configures the two-round experiment execution.
	Workload workload.Config
	// Runtime is the container runtime; Image carries the resource
	// profile (files are filled in per experiment).
	Runtime *sandbox.Runtime
	Image   sandbox.Image
	// Seed drives per-experiment determinism.
	Seed int64
	// ReducePlan executes only workload-covered points (§IV-D coverage
	// optimization). When false, all points run and coverage is reported.
	ReducePlan bool
	// SampleN caps the number of experiments (0 = no cap); sampling is
	// deterministic under Seed.
	SampleN int
	// TreeWalk forces the per-round tree-walk interpreter instead of the
	// compile-once program (used by equivalence tests and benchmarks;
	// results are identical, execution is several times slower).
	TreeWalk bool
	// Engine selects the compiled path's execution engine: "" or
	// "bytecode" runs the lowered register bytecode (default),
	// "closure" the closure tree. Ignored under TreeWalk. Records and
	// reports are byte-identical across engines.
	Engine string

	// PrefixFork enables experiment-prefix snapshot/fork execution: the
	// base program's round 1 runs once, snapshotting at each injection
	// site's first reach, and every experiment resumes from its site's
	// snapshot instead of re-running the shared prefix. Executors get a
	// site-grouping order hook so a shard runs same-site experiments
	// back to back. Records and reports are byte-identical to unforked
	// execution at any geometry — an experiment that cannot be forked
	// faithfully falls back to a full run rather than approximating.
	// Requires the compiled path (ignored under TreeWalk) and a workload
	// environment that can capture/restore its state (Workload.CaptureEnv
	// and RestoreEnv); see Result.ForkHits/ForkMisses for engagement.
	PrefixFork bool
	// Analysis configures failure classification and metrics.
	Analysis analysis.Config
	// TraceHook, when set, is called on every experiment container to
	// enable span recording (the kvclient campaign passes
	// kvclient.EnableTracing).
	TraceHook func(c *sandbox.Container)
	// OnProgress, when set, is called as the workflow advances: once per
	// phase transition and once per completed experiment. Experiments run
	// in parallel, so the callback must be safe for concurrent use.
	OnProgress func(Progress)
	// Executor selects the execution engine. Nil picks executor.Local
	// sized by the runtime's N−1 rule; executor.Sharded partitions the
	// plan into deterministic shards with per-shard streams. Records
	// are byte-identical across engines and shard counts, because every
	// experiment's seed derives from its plan index.
	Executor executor.Executor
	// Sink, when set, receives every experiment record as it completes
	// (streaming consumers: the result store, live NDJSON feeds).
	// Records arrive from a single goroutine, tagged with their plan
	// index, in completion order.
	Sink executor.RecordSink
	// Resume seeds a restarted campaign with records a previous run
	// already produced (typically read back from the result store).
	// Matching plan indices are replayed into the aggregator and the
	// Result — but not re-executed and not re-emitted to Sink — so the
	// final report is byte-identical to an uninterrupted run while only
	// the missing experiments execute. Records whose injection point is
	// not in the current plan are ignored. Experiment seeds derive from
	// plan indices, which is what makes resumed and uninterrupted runs
	// indistinguishable in their record bytes.
	Resume []analysis.Record
	// DiscardRecords drops Result.Records: the report still comes from
	// the online aggregator and records still stream to Sink, but the
	// campaign stops materializing the full record slice — memory stays
	// O(shards) instead of O(experiments).
	DiscardRecords bool
	// Metrics, when set, instruments the run (experiment outcomes,
	// phase latency, compile-cache hits) and is forwarded to the
	// default Local executor; caller-supplied executors carry their own
	// registry reference.
	Metrics *obs.Registry
}

// Phase names reported through OnProgress, in workflow order.
const (
	PhaseScan     = "scan"
	PhaseCoverage = "coverage"
	PhaseExecute  = "execute"
	PhaseAnalyze  = "analyze"
)

// Progress is a point-in-time snapshot of campaign advancement. Done and
// Total count experiments of the execution phase; both are zero until the
// plan is built.
type Progress struct {
	Phase string `json:"phase"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

func (c *Campaign) progress(phase string, done, total int) {
	if c.OnProgress != nil {
		c.OnProgress(Progress{Phase: phase, Done: done, Total: total})
	}
}

// Result is the outcome of a campaign run.
type Result struct {
	Plan    *plan.Plan
	Covered map[string]bool
	// Records holds every experiment record in plan order; nil when the
	// campaign ran with DiscardRecords (streaming consumers read them
	// from the Sink instead).
	Records  []analysis.Record
	Report   *analysis.Report
	ScanTime time.Duration
	CovTime  time.Duration
	ExecTime time.Duration
	// Errors counts experiments aborted by infrastructure errors.
	Errors int
	// Replayed counts records seeded from Campaign.Resume instead of
	// executed (0 for a fresh run).
	Replayed int
	// Mutated counts experiments that ran the compile-time mutation
	// path (source rewrite + single-file program derivation); Injected
	// counts experiments that ran the runtime injection path, which
	// reuses the campaign's base program unchanged — no per-experiment
	// recompilation.
	Mutated  int
	Injected int
	// Prefix-fork accounting (Campaign.PrefixFork): snapshots captured
	// by the prefix build, experiments resumed from a snapshot, and
	// experiments that fell back to a full run after a fork attempt.
	ForkSnapshots int
	ForkHits      int
	ForkMisses    int
	// Phases is the campaign's own span timeline — the §IV-D recorder
	// turned on the workflow itself: one span per phase (scan, compile,
	// coverage, execute, aggregate) plus one per shard when the sharded
	// executor ran. Offsets are nanoseconds from campaign start;
	// ordering is deterministic (StartNS, then Name).
	Phases []trace.Span
}

// engineLabel names the interpretation engine the campaign's
// experiments execute on, for metrics: the bytecode VM by default.
func (c *Campaign) engineLabel() string {
	switch {
	case c.TreeWalk:
		return "tree-walk"
	case c.Engine == "":
		return "bytecode"
	default:
		return c.Engine
	}
}

// Run executes the full workflow.
func (c *Campaign) Run() (*Result, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the full workflow under ctx. Cancellation is
// honored between phases and between experiments: already-running
// experiments finish, pending ones are skipped, and the ctx error is
// returned.
func (c *Campaign) RunContext(ctx context.Context) (*Result, error) {
	met := newMetrics(c.Metrics, c.engineLabel())
	met.run("started")
	res, err := c.runContext(ctx, met)
	switch {
	case err == nil:
		met.run("completed")
	case errors.Is(err, context.Canceled):
		met.run("canceled")
	default:
		met.run("failed")
	}
	return res, err
}

func (c *Campaign) runContext(ctx context.Context, met *cmetrics) (*Result, error) {
	if len(c.Files) == 0 {
		return nil, fmt.Errorf("campaign %s: no target files", c.Name)
	}
	if c.Runtime == nil {
		return nil, fmt.Errorf("campaign %s: no runtime", c.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
	}

	// The phase recorder is the §IV-D span timeline pointed at the
	// workflow itself: every phase (and every shard, under the sharded
	// executor) lands as a span with nanosecond offsets from t0, so
	// the service can answer "where did this campaign's time go".
	t0 := time.Now()
	spans := trace.NewRecorder()
	phaseSpan := func(name string, from time.Time) {
		spans.Record(trace.Span{
			Name: name, Component: "campaign",
			StartNS: from.Sub(t0).Nanoseconds(), EndNS: time.Since(t0).Nanoseconds(),
		})
		met.phase(name, time.Since(from))
	}

	// --- Scan phase ---
	// The parse cache is the campaign's shared front-end: every file is
	// parsed once here and the same parses serve the coverage
	// instrumentation and every experiment's mutation below.
	c.progress(PhaseScan, 0, 0)
	scanStart := time.Now()
	cache := scanner.NewProjectCache(c.scanSubset())
	pl, err := plan.BuildFromCache(cache, c.Faultload)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: scan: %w", c.Name, err)
	}
	if c.SampleN > 0 {
		pl = pl.Sample(c.SampleN, c.Seed)
	}
	res := &Result{Plan: pl, ScanTime: time.Since(scanStart)}
	phaseSpan("scan", scanStart)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
	}

	// Compile the unmutated base files once for the whole campaign
	// (reusing the scan-phase parses); every round of every experiment
	// then runs compiled code, and each experiment recompiles only its
	// single mutated file. On any compile failure the workload falls
	// back to the per-round tree-walk with identical semantics.
	compileStart := time.Now()
	wcfg := c.Workload
	wcfg.Program = c.compileBase(cache)
	wcfg.Engine = c.Engine
	phaseSpan("compile", compileStart)

	// --- Coverage analysis (fault-free instrumented run) ---
	c.progress(PhaseCoverage, 0, len(pl.Points))
	covStart := time.Now()
	covered, err := coverage.AnalyzeCached(c.Runtime, c.Image, c.Files, cache, pl.Points, wcfg)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	res.Covered = covered
	res.CovTime = time.Since(covStart)
	phaseSpan("coverage", covStart)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
	}

	// --- Execution phase (streaming pipeline) ---
	// The Runner is the campaign's prepared execution state: reduced
	// plan, compiled faultload, coverage verdicts. Remote workers build
	// the very same Runner from the campaign spec, so experiments are
	// interchangeable between this process and the fleet. Records
	// stream once each into the online aggregator, the caller's sink
	// and (unless discarded) the plan-ordered collector.
	runner, err := c.buildRunner(cache, pl, covered, wcfg)
	if err != nil {
		return nil, err
	}
	execPoints := runner.Points()
	agg, err := analysis.NewAggregator(c.Analysis)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	exec := c.Executor
	if exec == nil {
		img := c.Image
		img.Files = c.Files
		exec = executor.Local{Workers: c.Runtime.MaxParallel(img), Reg: c.Metrics}
	}
	// Stamp the interpretation engine on whichever executor runs the
	// experiments, so executor metrics carry the engine label (same
	// value-copy discipline as Skip below).
	switch e := exec.(type) {
	case executor.Local:
		e.VM = c.engineLabel()
		exec = e
	case executor.Sharded:
		e.VM = c.engineLabel()
		exec = e
	case *executor.Remote:
		e.VM = c.engineLabel()
	}
	var collect *executor.Collect
	if !c.DiscardRecords {
		collect = executor.NewCollect(len(execPoints))
	}

	// --- Resume replay ---
	// Records a previous run already produced are folded straight into
	// the aggregator (and the collector), their plan indices marked done
	// in the skip mask, and their path kinds re-derived — without
	// executing anything — so the resumed run's Result and report are
	// byte-identical to what one uninterrupted run would have produced.
	// Stored records carry no plan index; the injection point's ID
	// (file, function, window, spec) identifies it uniquely within the
	// plan, so the bitmap is rebuilt by point identity.
	var skip *executor.Mask
	if len(c.Resume) > 0 {
		skip = executor.NewMask(len(execPoints))
		byID := make(map[string][]int, len(execPoints))
		for i, pt := range execPoints {
			byID[pt.ID()] = append(byID[pt.ID()], i)
		}
		for _, rec := range c.Resume {
			id := rec.Point.ID()
			idxs := byID[id]
			if len(idxs) == 0 {
				continue // not in this plan (stale or foreign record)
			}
			byID[id] = idxs[1:]
			i := idxs[0]
			skip.Set(i)
			res.Replayed++
			agg.Add(rec)
			if rec.Result == nil {
				res.Errors++
			}
			switch runner.KindOf(i) {
			case KindMutated:
				runner.mutated.Add(1)
			case KindInjected:
				runner.injected.Add(1)
			}
			if collect != nil {
				collect.Put(i, rec)
			}
		}
	}
	c.progress(PhaseExecute, res.Replayed, len(execPoints))
	execStart := time.Now()
	// The remote executor needs the resolved plan context — coverage
	// verdicts and the exec-point list — to complete the campaign spec
	// its workers rebuild their Runners from, and to fingerprint the
	// plan so a worker that derived a different plan refuses the shard.
	if rm, ok := exec.(*executor.Remote); ok {
		rm.SetPlanContext(covered, execPoints)
	}
	// Hand the completion bitmap to whichever engine runs the missing
	// indices. Value engines are copied (the caller's Executor field is
	// a template, not shared state).
	if skip != nil {
		switch e := exec.(type) {
		case executor.Local:
			e.Skip = skip
			exec = e
		case executor.Sharded:
			e.Skip = skip
			exec = e
		case *executor.Remote:
			e.Skip = skip
		}
	}
	// Prefix-fork site grouping: hand the executors the runner's order
	// hook so a shard runs same-site experiments back to back while the
	// site's snapshot is warm. Same value-copy discipline as Skip.
	if c.PrefixFork {
		switch e := exec.(type) {
		case executor.Local:
			e.Order = runner.SiteOrder
			exec = e
		case executor.Sharded:
			e.Order = runner.SiteOrder
			exec = e
		}
	}
	// Under the sharded engine, each shard contributes its own span to
	// the campaign timeline (offsets are rebased from Run start to
	// campaign start). The recorder is concurrency-safe, matching the
	// hook's per-shard-goroutine delivery.
	if sh, ok := exec.(executor.Sharded); ok {
		prev := sh.OnShardSpan
		execBase := execStart.Sub(t0).Nanoseconds()
		sh.OnShardSpan = func(shard int, startNS, endNS int64) {
			if prev != nil {
				prev(shard, startNS, endNS)
			}
			spans.Record(trace.Span{
				Name: fmt.Sprintf("shard-%d", shard), Component: "executor",
				StartNS: execBase + startNS, EndNS: execBase + endNS,
			})
		}
		exec = sh
	}
	experiment := func(i int) analysis.Record {
		if ctx.Err() != nil {
			return analysis.Record{Point: execPoints[i], FaultType: pl.TypeOf(execPoints[i])}
		}
		return runner.Experiment(i)
	}
	done := res.Replayed
	sink := executor.SinkFunc(func(idx int, rec analysis.Record) {
		agg.Add(rec)
		met.experiment(rec.Result == nil)
		if rec.Result == nil {
			res.Errors++
		}
		if collect != nil {
			collect.Put(idx, rec)
		}
		// Stop forwarding to the caller's sink once canceled: the
		// remaining records are skip stubs, not experiment outcomes, and
		// must not pollute a durable store.
		if c.Sink != nil && ctx.Err() == nil {
			c.Sink.Put(idx, rec)
		}
		done++
		c.progress(PhaseExecute, done, len(execPoints))
	})
	if err := exec.Run(ctx, len(execPoints), experiment, sink); err != nil {
		return nil, fmt.Errorf("campaign %s: execute: %w", c.Name, err)
	}
	res.ExecTime = time.Since(execStart)
	phaseSpan("execute", execStart)
	if collect != nil {
		res.Records = collect.Records()
	}
	res.Mutated, res.Injected = runner.Counts()
	res.ForkSnapshots, res.ForkHits, res.ForkMisses = runner.ForkStats()
	met.fork(res.ForkSnapshots, res.ForkHits, res.ForkMisses)
	// Remote execution runs experiments in worker processes; their path
	// kinds arrive with the record envelopes instead of this process's
	// Runner (which only counts locally executed fallback shards).
	if rm, ok := exec.(*executor.Remote); ok {
		rmMut, rmInj := rm.Counts()
		res.Mutated += rmMut
		res.Injected += rmInj
	}
	if prog := runner.Program(); prog != nil {
		hits, misses := prog.CacheStats()
		met.cache(hits, misses, prog.IncrementalRecompiles())
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
	}

	// --- Data analysis phase ---
	// The report is already aggregated: every record was folded in as
	// it completed, so finishing the phase is O(1) regardless of the
	// experiment count (and byte-identical to the batch BuildReport).
	c.progress(PhaseAnalyze, len(execPoints), len(execPoints))
	aggStart := time.Now()
	res.Report = agg.Report()
	phaseSpan("aggregate", aggStart)
	res.Phases = spans.Spans()
	return res, nil
}

// compileBase builds the campaign's compiled base program from the
// workload's file list, reusing the scan cache's parses when the scan
// covered those files (no re-parse in the container). Returns nil — the
// tree-walk fallback — when compilation is disabled or fails; the
// fallback is semantically identical, only slower.
func (c *Campaign) compileBase(scanCache *scanner.ProjectCache) *interp.Program {
	if c.TreeWalk || len(c.Workload.Files) == 0 {
		return nil
	}
	units := make([]interp.SourceUnit, 0, len(c.Workload.Files))
	for _, name := range c.Workload.Files {
		// Reuse the scan-phase parse when the file was scanned; files
		// outside the scan subset (workload scripts) are parsed by the
		// compiler itself.
		if pf, err := scanCache.Get(name); err == nil {
			units = append(units, interp.SourceUnit{Name: name, Src: pf.Src, AST: pf.File})
			continue
		}
		src, ok := c.Files[name]
		if !ok {
			return nil
		}
		units = append(units, interp.SourceUnit{Name: name, Src: src})
	}
	prog, err := interp.CompileProgram(units)
	if err != nil {
		return nil
	}
	return prog
}

func (c *Campaign) scanSubset() map[string][]byte {
	if len(c.ScanFiles) == 0 {
		return c.Files
	}
	out := make(map[string][]byte, len(c.ScanFiles))
	for _, name := range c.ScanFiles {
		if data, ok := c.Files[name]; ok {
			out[name] = data
		}
	}
	return out
}

// compileByName splits a faultload into its execution forms: mutation
// meta-models for compile-time specs and injector faults (site unbound)
// for runtime specs, compiling each spec once.
func compileByName(specs []faultmodel.Spec) (map[string]*pattern.MetaModel, map[string]*runtimefault.Fault, error) {
	models, rtFaults, err := faultmodel.CompileSplit(specs)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]*pattern.MetaModel, len(models))
	for _, mm := range models {
		if _, runtime := rtFaults[mm.Name]; !runtime {
			out[mm.Name] = mm
		}
	}
	return out, rtFaults, nil
}
