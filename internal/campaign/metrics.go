package campaign

import (
	"time"

	"profipy/internal/obs"
)

// cmetrics instruments campaign runs. A nil *cmetrics is valid and
// inert, so call sites stay unconditional.
type cmetrics struct {
	engine      string          // interpretation engine label value
	runs        *obs.CounterVec // status = started | completed | failed | canceled
	experiments *obs.CounterVec // result = ok | error, engine = bytecode | closure | tree-walk
	phaseDur    *obs.HistogramVec
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheIncr   *obs.Counter
	forkEvents  *obs.CounterVec // event = snapshot | hit | miss
}

// phaseBuckets cover millisecond scan phases through minute-scale
// execution phases.
var phaseBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 5, 15, 60, 300}

// newMetrics builds the campaign instrumentation. engine labels the
// interpretation engine the experiments run on ("bytecode", "closure"
// or "tree-walk").
func newMetrics(reg *obs.Registry, engine string) *cmetrics {
	if reg == nil {
		return nil
	}
	return &cmetrics{
		engine: engine,
		runs: reg.CounterVec("profipy_campaign_runs_total",
			"Campaign workflow runs, by lifecycle event.", "status"),
		experiments: reg.CounterVec("profipy_campaign_experiments_total",
			"Completed experiments, by outcome (error = infrastructure abort) and interpretation engine.", "result", "engine"),
		phaseDur: reg.HistogramVec("profipy_campaign_phase_seconds",
			"Wall-clock time per campaign workflow phase.", phaseBuckets, "phase"),
		cacheHits: reg.Counter("profipy_campaign_compile_cache_hits_total",
			"Per-experiment program derivations served from the content-hash unit cache."),
		cacheMisses: reg.Counter("profipy_campaign_compile_cache_misses_total",
			"Per-experiment program derivations that had to recompile the mutated file."),
		cacheIncr: reg.Counter("profipy_campaign_compile_incremental_total",
			"Compile-cache misses served by the declaration-level incremental recompile instead of a whole-file recompile."),
		forkEvents: reg.CounterVec("profipy_campaign_fork_events_total",
			"Prefix-fork activity: boundary snapshots captured, experiments resumed from a snapshot (hit), fork attempts that fell back to a full run (miss).", "event"),
	}
}

func (m *cmetrics) run(status string) {
	if m != nil {
		m.runs.With(status).Inc()
	}
}

func (m *cmetrics) phase(name string, d time.Duration) {
	if m != nil {
		m.phaseDur.With(name).Observe(d.Seconds())
	}
}

func (m *cmetrics) experiment(infraError bool) {
	if m == nil {
		return
	}
	if infraError {
		m.experiments.With("error", m.engine).Inc()
	} else {
		m.experiments.With("ok", m.engine).Inc()
	}
}

func (m *cmetrics) fork(snapshots, hits, misses int) {
	if m == nil {
		return
	}
	m.forkEvents.With("snapshot").Add(float64(snapshots))
	m.forkEvents.With("hit").Add(float64(hits))
	m.forkEvents.With("miss").Add(float64(misses))
}

func (m *cmetrics) cache(hits, misses, incremental uint64) {
	if m != nil {
		m.cacheHits.Add(float64(hits))
		m.cacheMisses.Add(float64(misses))
		m.cacheIncr.Add(float64(incremental))
	}
}
