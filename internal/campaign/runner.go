package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"

	"profipy/internal/analysis"
	"profipy/internal/coverage"
	"profipy/internal/interp"
	"profipy/internal/mutator"
	"profipy/internal/pattern"
	"profipy/internal/plan"
	"profipy/internal/remote"
	"profipy/internal/runtimefault"
	"profipy/internal/scanner"
	"profipy/internal/workload"
)

// Experiment kinds reported by Runner.ExperimentDetail, shared with
// the remote wire protocol so workers ship them verbatim.
const (
	KindMutated  = remote.KindMutated
	KindInjected = remote.KindInjected
	KindError    = remote.KindError
)

// Runner is a campaign's prepared execution state: the scanned plan,
// the compiled base program, the compiled faultload and the coverage
// verdicts — everything needed to run any experiment of the campaign by
// plan index, independently of the workflow that produced it. The
// campaign's own execute phase runs through a Runner, and so does a
// remote worker that received the campaign spec and a shard lease: both
// sides derive the Runner deterministically from the same inputs, which
// is what keeps records byte-identical across process boundaries.
//
// Experiment seeds derive from the campaign seed plus the plan index,
// never from scheduling, so any subset of indices can run anywhere, in
// any order, any number of times, and produce the same record bytes.
type Runner struct {
	c        *Campaign
	cache    *scanner.ProjectCache
	pl       *plan.Plan
	points   []scanner.InjectionPoint
	covered  map[string]bool
	wcfg     workload.Config
	models   map[string]*pattern.MetaModel
	rtFaults map[string]*runtimefault.Fault

	mutated  atomic.Int64
	injected atomic.Int64

	// Prefix-fork state (Campaign.PrefixFork): the site->snapshot map is
	// built lazily by the first experiment that wants one, off a single
	// base-program run in a scratch container.
	prefixOnce sync.Once
	prefixes   *workload.PrefixSet
	forkHits   atomic.Int64
	forkMisses atomic.Int64
}

// NewRunner prepares a campaign for execution without running its
// workflow: scan, plan, deterministic sampling, base-program compile
// and faultload compile. covered is the coverage verdict map produced
// by the campaign's coverage phase (remote workers receive it with the
// campaign spec; passing nil marks every point uncovered and, with
// ReducePlan, selects no points). The campaign's own workflow builds
// its Runner through the same code path, so a worker-side Runner is the
// control-plane Runner by construction.
func NewRunner(c *Campaign, covered map[string]bool) (*Runner, error) {
	if len(c.Files) == 0 {
		return nil, fmt.Errorf("campaign %s: no target files", c.Name)
	}
	if c.Runtime == nil {
		return nil, fmt.Errorf("campaign %s: no runtime", c.Name)
	}
	cache := scanner.NewProjectCache(c.scanSubset())
	pl, err := plan.BuildFromCache(cache, c.Faultload)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: scan: %w", c.Name, err)
	}
	if c.SampleN > 0 {
		pl = pl.Sample(c.SampleN, c.Seed)
	}
	return c.prepareRunner(cache, pl, covered)
}

// prepareRunner compiles the base program and builds the Runner from an
// already-scanned plan.
func (c *Campaign) prepareRunner(cache *scanner.ProjectCache, pl *plan.Plan, covered map[string]bool) (*Runner, error) {
	wcfg := c.Workload
	wcfg.Program = c.compileBase(cache)
	wcfg.Engine = c.Engine
	if wcfg.Metrics == nil {
		wcfg.Metrics = c.Metrics
	}
	return c.buildRunner(cache, pl, covered, wcfg)
}

// buildRunner assembles a Runner around an already-prepared workload
// config (the campaign workflow compiles the base program during its
// compile phase and reuses it here): reduce the plan to covered points
// when requested and compile the faultload into its execution forms.
func (c *Campaign) buildRunner(cache *scanner.ProjectCache, pl *plan.Plan, covered map[string]bool, wcfg workload.Config) (*Runner, error) {
	points := pl.Points
	if c.ReducePlan {
		points = coverage.Reduce(pl.Points, covered)
	}
	models, rtFaults, err := compileByName(c.Faultload)
	if err != nil {
		return nil, err
	}
	return &Runner{
		c: c, cache: cache, pl: pl, points: points, covered: covered,
		wcfg: wcfg, models: models, rtFaults: rtFaults,
	}, nil
}

// Len returns the number of experiments (post-reduction plan points).
func (r *Runner) Len() int { return len(r.points) }

// Points returns the experiments' injection points in plan order.
// Callers must not mutate the slice.
func (r *Runner) Points() []scanner.InjectionPoint { return r.points }

// Counts reports how many experiments ran the compile-time mutation
// path and the runtime injection path so far.
func (r *Runner) Counts() (mutated, injected int) {
	return int(r.mutated.Load()), int(r.injected.Load())
}

// ForkStats reports prefix-fork activity: snapshots captured by the
// prefix build, experiments resumed from a snapshot (hits) and
// experiments that attempted a fork but fell back to a full run
// (misses). All zero when PrefixFork is off or no experiment ran.
func (r *Runner) ForkStats() (snapshots, hits, misses int) {
	return r.prefixes.Stats().Snapshots, int(r.forkHits.Load()), int(r.forkMisses.Load())
}

// sitePrefix returns the shared prefix snapshot for a point's site
// function, building the campaign's prefix set on first use.
func (r *Runner) sitePrefix(pt scanner.InjectionPoint) *workload.Prefix {
	if !r.c.PrefixFork || r.wcfg.Program == nil || r.wcfg.FaultFree || pt.Func == "" {
		return nil
	}
	r.prefixOnce.Do(r.buildPrefixes)
	return r.prefixes.For(pt.Func)
}

// buildPrefixes runs the base program once in a scratch container and
// snapshots at each injection site's first reach. A build failure just
// leaves the prefix set empty: every experiment falls back to full runs.
func (r *Runner) buildPrefixes() {
	seen := make(map[string]bool)
	var sites []string
	for _, pt := range r.points {
		if pt.Func != "" && !seen[pt.Func] {
			seen[pt.Func] = true
			sites = append(sites, pt.Func)
		}
	}
	if len(sites) == 0 {
		return
	}
	img := r.c.Image
	img.Files = r.c.Files
	ctr := r.c.Runtime.CreateSeeded(img, r.c.Seed)
	defer func() { _ = r.c.Runtime.Destroy(ctr) }()
	if r.c.TraceHook != nil {
		r.c.TraceHook(ctr)
	}
	if ps, err := workload.BuildPrefixes(ctr, r.wcfg, sites); err == nil {
		r.prefixes = ps
	}
}

// SiteOrder permutes the plan indices of [lo, hi) so experiments sharing
// an injection site run back to back — the executors' site-aware
// scheduling hook. Grouping maximizes reuse of the site's prefix
// snapshot while it is warm; since records key on plan index and seeds
// derive from it, execution order never affects record bytes.
func (r *Runner) SiteOrder(lo, hi int) []int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.points) {
		hi = len(r.points)
	}
	groups := make(map[string][]int)
	var order []string
	for i := lo; i < hi; i++ {
		fn := r.points[i].Func
		if _, ok := groups[fn]; !ok {
			order = append(order, fn)
		}
		groups[fn] = append(groups[fn], i)
	}
	out := make([]int, 0, hi-lo)
	for _, fn := range order {
		out = append(out, groups[fn]...)
	}
	return out
}

// Experiment runs the experiment at plan index i and returns its
// record. Safe for concurrent calls.
func (r *Runner) Experiment(i int) analysis.Record {
	rec, _ := r.ExperimentDetail(i)
	return rec
}

// ExperimentDetail runs the experiment at plan index i and additionally
// reports which execution path it took (KindMutated, KindInjected or
// KindError) — remote workers ship the kind alongside the record so the
// control plane can account injection kinds without re-deriving them.
func (r *Runner) ExperimentDetail(i int) (analysis.Record, string) {
	pt := r.points[i]
	rec := analysis.Record{Point: pt, FaultType: r.pl.TypeOf(pt), Covered: r.covered[pt.ID()]}
	seed := r.c.Seed + int64(i) + 1
	wcfg := r.wcfg

	var eng *runtimefault.Engine
	img := r.c.Image
	img.Files = r.c.Files
	kind := KindError

	if rf, ok := r.rtFaults[pt.Spec]; ok {
		// Runtime injection: bind the fault's site selector to the
		// point's enclosing function (injection granularity is the
		// function entered at run time) and draw all trigger/corruption
		// randomness from this experiment's seed.
		fault := *rf
		fault.Site = pt.Func
		var err error
		eng, err = runtimefault.NewEngine([]runtimefault.Fault{fault}, seed)
		if err != nil {
			return rec, KindError
		}
		wcfg.Injector = eng
		r.injected.Add(1)
		kind = KindInjected
	} else {
		mm, ok := r.models[pt.Spec]
		if !ok {
			return rec, KindError
		}
		pf, err := r.cache.Get(pt.File)
		if err != nil {
			return rec, KindError
		}
		mut, err := mutator.ApplyParsed(pf, mm, pt, mutator.Options{Triggered: true})
		if err != nil {
			return rec, KindError
		}
		// Copy-on-write deploy: the container shares the campaign's
		// base file layer and shadows just the mutated file through the
		// overlay, instead of copying the whole file map per experiment.
		img.Overlay = map[string][]byte{pt.File: mut.Source}
		if wcfg.Program != nil {
			if prog, perr := wcfg.Program.WithFiles(map[string][]byte{pt.File: mut.Source}); perr == nil {
				wcfg.Program = prog
			} else {
				// A mutated source the compiler rejects would not
				// tree-walk load either; fall back so the error surfaces
				// the same way (an infrastructure error on this
				// experiment only).
				wcfg.Program = nil
			}
		}
		r.mutated.Add(1)
		kind = KindMutated
	}

	if wcfg.Program != nil {
		if pre := r.sitePrefix(pt); pre != nil {
			fctr := r.c.Runtime.CreateSeeded(img, seed)
			if r.c.TraceHook != nil {
				r.c.TraceHook(fctr)
			}
			result, ok, _ := workload.RunForked(fctr, wcfg, workload.ForkSpec{
				Prefix: pre, BaseFiles: r.c.Files, Overlay: img.Overlay,
			})
			_ = r.c.Runtime.Destroy(fctr)
			if ok {
				r.forkHits.Add(1)
				rec.Result = result
				if eng != nil {
					rec.Injections = eng.Report()
				}
				return rec, kind
			}
			r.forkMisses.Add(1)
			if eng != nil {
				// The aborted fork attempt may have advanced the engine
				// (BeginRound, partial execution); rebuild it from the
				// same deterministic inputs so the fallback run observes
				// exactly the state a straight run would.
				fault := *r.rtFaults[pt.Spec]
				fault.Site = pt.Func
				if neng, err := runtimefault.NewEngine([]runtimefault.Fault{fault}, seed); err == nil {
					eng = neng
					wcfg.Injector = eng
				}
			}
		}
	}

	ctr := r.c.Runtime.CreateSeeded(img, seed)
	defer func() { _ = r.c.Runtime.Destroy(ctr) }()
	if r.c.TraceHook != nil {
		r.c.TraceHook(ctr)
	}

	result, err := workload.Run(ctr, wcfg)
	if err != nil {
		return rec, kind
	}
	rec.Result = result
	if eng != nil {
		rec.Injections = eng.Report()
	}
	return rec, kind
}

// KindOf reports which execution path the experiment at plan index i
// takes — KindMutated, KindInjected or KindError — without running its
// workload. The path decision depends only on the faultload, the
// scanned sources and the plan-index-derived seed, all deterministic,
// so KindOf mirrors ExperimentDetail's kind exactly; a resumed campaign
// uses it to account replayed records the same way the original
// execution did (workload failures still count their kind, so a nil
// Result does not mean KindError).
func (r *Runner) KindOf(i int) string {
	pt := r.points[i]
	if rf, ok := r.rtFaults[pt.Spec]; ok {
		fault := *rf
		fault.Site = pt.Func
		seed := r.c.Seed + int64(i) + 1
		if _, err := runtimefault.NewEngine([]runtimefault.Fault{fault}, seed); err != nil {
			return KindError
		}
		return KindInjected
	}
	mm, ok := r.models[pt.Spec]
	if !ok {
		return KindError
	}
	pf, err := r.cache.Get(pt.File)
	if err != nil {
		return KindError
	}
	if _, err := mutator.ApplyParsed(pf, mm, pt, mutator.Options{Triggered: true}); err != nil {
		return KindError
	}
	return KindMutated
}

// Program exposes the compiled base program (nil when the campaign
// fell back to the tree-walk interpreter).
func (r *Runner) Program() *interp.Program { return r.wcfg.Program }
