// Workflow integration tests: the Fig. 2 pipeline (Scan -> Execution ->
// Data Analysis) end-to-end on the Python-etcd analog, reproducing the
// shape of the §V case study.
package campaign_test

import (
	"sync/atomic"
	"testing"

	"profipy/internal/kvclient"
	"profipy/internal/sandbox"
)

func newRuntime() *sandbox.Runtime {
	return sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: 4, Seed: 20})
}

func TestWorkflowCampaignA(t *testing.T) {
	res, err := kvclient.CampaignA(newRuntime(), 101).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := res.Report
	// Paper §V-A: 26 points, 13 covered, 12 failures, ~half of the
	// failures unavailable in round 2. Our analog: 27/15/12/6.
	if rep.Total < 24 || rep.Total > 30 {
		t.Errorf("points = %d, want ~26", rep.Total)
	}
	if rep.Covered < 12 || rep.Covered > 18 {
		t.Errorf("covered = %d, want ~13-15 (about half)", rep.Covered)
	}
	if rep.Failures < 10 || rep.Failures > 14 {
		t.Errorf("failures = %d, want ~12", rep.Failures)
	}
	// About half of the failures persist into round 2.
	if rep.Unavailable < rep.Failures/3 || rep.Unavailable > rep.Failures*2/3+1 {
		t.Errorf("unavailable = %d of %d failures, want about half", rep.Unavailable, rep.Failures)
	}
	// The paper's three failure modes must all be observed.
	if rep.Modes["reconnection-failure"] == 0 {
		t.Error("no reconnection failures observed")
	}
	if rep.Modes["member-bootstrapped"] == 0 {
		t.Error("no member-bootstrapped failures observed")
	}
	// Faults in the uncovered auth module must never fail.
	if st := rep.ByComponent["auth"]; st == nil || st.Failures != 0 || st.Covered != 0 {
		t.Errorf("auth component stats = %+v, want 0 covered / 0 failures", rep.ByComponent["auth"])
	}
	if res.Errors != 0 {
		t.Errorf("infrastructure errors = %d", res.Errors)
	}
}

func TestWorkflowCampaignB(t *testing.T) {
	res, err := kvclient.CampaignB(newRuntime(), 202).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := res.Report
	// Paper §V-B: 66 points, all covered, 29 failures with three modes:
	// nil AttributeError, key-not-found, 400 Bad Request.
	if rep.Total != 66 {
		t.Errorf("points = %d, want 66", rep.Total)
	}
	if rep.Covered != rep.Total {
		t.Errorf("covered = %d, want all %d", rep.Covered, rep.Total)
	}
	if rep.Failures < 25 || rep.Failures > 45 {
		t.Errorf("failures = %d, want in the 29-45 band", rep.Failures)
	}
	for _, mode := range []string{"nil-attribute-error", "key-not-found", "bad-request-400"} {
		if rep.Modes[mode] == 0 {
			t.Errorf("failure mode %q not observed", mode)
		}
	}
}

func TestWorkflowCampaignC(t *testing.T) {
	res, err := kvclient.CampaignC(newRuntime(), 303).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := res.Report
	// Paper §V-C: 37 points, all covered, 14 failures, mostly
	// UnboundLocalError crashes plus inconsistent (stale) reads.
	if rep.Total != 37 {
		t.Errorf("points = %d, want 37", rep.Total)
	}
	if rep.Covered != rep.Total {
		t.Errorf("covered = %d, want all", rep.Covered)
	}
	if rep.Failures < 10 || rep.Failures > 22 {
		t.Errorf("failures = %d, want ~14-19", rep.Failures)
	}
	if rep.Modes["unbound-local"] == 0 {
		t.Error("no UnboundLocalError crashes observed")
	}
	if rep.Modes["stale-read"] == 0 {
		t.Error("no stale reads observed")
	}
	// UnboundLocal must dominate stale reads (the paper's "most of these
	// failures forced a process termination").
	if rep.Modes["unbound-local"] < rep.Modes["stale-read"] {
		t.Errorf("unbound-local (%d) should dominate stale-read (%d)",
			rep.Modes["unbound-local"], rep.Modes["stale-read"])
	}
}

func TestWorkflowReducedPlanSkipsUncovered(t *testing.T) {
	c := kvclient.CampaignA(newRuntime(), 404)
	c.ReducePlan = true
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// With coverage pruning, only covered points become experiments.
	covered := 0
	for _, ok := range res.Covered {
		if ok {
			covered++
		}
	}
	if len(res.Records) != covered {
		t.Errorf("experiments = %d, want %d (covered only)", len(res.Records), covered)
	}
	if len(res.Records) >= res.Plan.Len() {
		t.Errorf("reduced plan (%d) should be smaller than full plan (%d)", len(res.Records), res.Plan.Len())
	}
}

func TestWorkflowSampling(t *testing.T) {
	c := kvclient.CampaignB(newRuntime(), 505)
	c.SampleN = 10
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Records) != 10 {
		t.Errorf("experiments = %d, want 10 (sampled)", len(res.Records))
	}
}

func TestWorkflowDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, int) {
		res, err := kvclient.CampaignC(newRuntime(), 99).Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Report.Failures, res.Report.Unavailable
	}
	f1, u1 := run()
	f2, u2 := run()
	if f1 != f2 || u1 != u2 {
		t.Errorf("non-deterministic campaign: (%d,%d) vs (%d,%d)", f1, u1, f2, u2)
	}
}

func TestWorkflowContainersAllDestroyed(t *testing.T) {
	rt := newRuntime()
	if _, err := kvclient.CampaignA(rt, 606).Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := rt.Stats()
	if st.Active != 0 {
		t.Errorf("active containers after campaign = %d, want 0", st.Active)
	}
	if st.Created != st.Destroyed {
		t.Errorf("created %d != destroyed %d", st.Created, st.Destroyed)
	}
}

func TestWorkflowTraceHook(t *testing.T) {
	c := kvclient.CampaignA(newRuntime(), 707)
	c.SampleN = 3
	var hooked atomic.Int32
	c.TraceHook = func(ctr *sandbox.Container) {
		hooked.Add(1)
		kvclient.EnableTracing(ctr)
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hooked.Load() != 3 {
		t.Errorf("trace hook called %d times, want 3", hooked.Load())
	}
}
