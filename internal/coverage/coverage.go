// Package coverage implements the coverage analysis of §IV-D: before
// running experiments, a single fault-free execution of the workload runs
// against an instrumented copy of the target (a logging hook at every
// injection point). Points the workload never reaches are pruned from the
// plan, since injecting there cannot have any effect.
package coverage

import (
	"fmt"

	"profipy/internal/mutator"
	"profipy/internal/sandbox"
	"profipy/internal/scanner"
	"profipy/internal/workload"
)

// Analyze performs the fault-free instrumented run and returns the set of
// covered injection-point IDs. Campaigns holding a parse cache should use
// AnalyzeCached, which reuses the scan-phase parses.
func Analyze(rt *sandbox.Runtime, img sandbox.Image, files map[string][]byte,
	points []scanner.InjectionPoint, cfg workload.Config) (map[string]bool, error) {
	return AnalyzeCached(rt, img, files, scanner.NewProjectCache(files), points, cfg)
}

// AnalyzeCached is Analyze against a per-campaign parse cache: files with
// injection points are instrumented from their cached parse, and the
// container image layers the instrumented copies over the untouched base
// file set instead of rebuilding the whole map.
func AnalyzeCached(rt *sandbox.Runtime, img sandbox.Image, files map[string][]byte,
	cache *scanner.ProjectCache, points []scanner.InjectionPoint, cfg workload.Config) (map[string]bool, error) {

	// Group points per file and instrument each file once.
	byFile := map[string][]scanner.InjectionPoint{}
	for _, p := range points {
		byFile[p.File] = append(byFile[p.File], p)
	}
	instrumented := make(map[string][]byte, len(byFile))
	for name, pts := range byFile {
		pf, err := cache.Get(name)
		if err != nil {
			return nil, fmt.Errorf("coverage: instrument %s: %w", name, err)
		}
		out, err := mutator.InstrumentParsed(pf, pts)
		if err != nil {
			return nil, fmt.Errorf("coverage: instrument %s: %w", name, err)
		}
		instrumented[name] = out
	}

	covImg := img
	covImg.Name = img.Name + "-coverage"
	covImg.Files = files
	covImg.Overlay = instrumented
	c := rt.CreateSeeded(covImg, 0)
	defer func() { _ = rt.Destroy(c) }()

	// One fault-free round: the trigger stays off.
	covCfg := cfg
	covCfg.Rounds = 1
	covCfg.FaultFree = true
	if covCfg.Program != nil {
		// Compiled execution: derive a program with the instrumented
		// units swapped in (unchanged units stay shared with the base).
		prog, err := covCfg.Program.WithFiles(instrumented)
		if err != nil {
			return nil, fmt.Errorf("coverage: compile instrumented: %w", err)
		}
		covCfg.Program = prog
	}
	res, err := workload.Run(c, covCfg)
	if err != nil {
		return nil, fmt.Errorf("coverage: fault-free run: %w", err)
	}
	if !res.Round1().OK {
		return nil, fmt.Errorf("coverage: fault-free run failed: %s", res.Round1().Message)
	}

	covered := make(map[string]bool)
	for _, id := range c.Covered() {
		covered[id] = true
	}
	return covered, nil
}

// Reduce filters points down to the covered ones (the reduced fault
// injection plan).
func Reduce(points []scanner.InjectionPoint, covered map[string]bool) []scanner.InjectionPoint {
	out := make([]scanner.InjectionPoint, 0, len(points))
	for _, p := range points {
		if covered[p.ID()] {
			out = append(out, p)
		}
	}
	return out
}
