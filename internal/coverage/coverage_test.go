package coverage

import (
	"testing"

	"profipy/internal/faultmodel"
	"profipy/internal/interp"
	"profipy/internal/plan"
	"profipy/internal/sandbox"
	"profipy/internal/workload"
)

// Target with one covered and one uncovered function.
const target = `package main

func used() any {
	a()
	b()
	return nil
}

func unused() any {
	a()
	b()
	return nil
}

func Workload() any {
	used()
	return "ok"
}`

func testEnv(it *interp.Interp, c *sandbox.Container) {
	sandbox.InstallHooks(it, c)
	it.RegisterHostFunc("a", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		return nil, nil
	})
	it.RegisterHostFunc("b", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		return nil, nil
	})
}

func TestAnalyzeFindsCoveredPoints(t *testing.T) {
	files := map[string][]byte{"t.go": []byte(target)}
	specs := []faultmodel.Spec{{Name: "calls", Type: "C", DSL: `
change {
	$CALL{name=a,b}(...)
} into {
}`}}
	pl, err := plan.Build(files, specs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if pl.Len() != 4 {
		t.Fatalf("points = %d, want 4", pl.Len())
	}

	rt := sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: 2})
	cfg := workload.Config{Entry: "Workload", Files: []string{"t.go"}, Env: testEnv}
	covered, err := Analyze(rt, sandbox.Image{Name: "t"}, files, pl.Points, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	reduced := Reduce(pl.Points, covered)
	if len(reduced) != 2 {
		t.Fatalf("reduced = %d points, want 2 (only the used() body)", len(reduced))
	}
	for _, p := range reduced {
		if p.Func != "used" {
			t.Errorf("covered point in %s, want used", p.Func)
		}
	}
	// The coverage container must be torn down.
	if rt.Stats().Active != 0 {
		t.Error("coverage container leaked")
	}
}

func TestAnalyzeFailsWhenWorkloadBroken(t *testing.T) {
	files := map[string][]byte{"t.go": []byte(`package main

func Workload() any {
	panic(__exc("Boom", "broken workload"))
}`)}
	rt := sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: 2})
	cfg := workload.Config{Entry: "Workload", Files: []string{"t.go"},
		Env: func(it *interp.Interp, c *sandbox.Container) { sandbox.InstallHooks(it, c) }}
	if _, err := Analyze(rt, sandbox.Image{Name: "t"}, files, nil, cfg); err == nil {
		t.Error("Analyze should fail when the fault-free run fails")
	}
}
