package dsl

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"

	"profipy/internal/pattern"
	"profipy/internal/runtimefault"
)

// CompiledSpec is the compiled form of one bug specification. Model is
// always set: the site pattern the scanner matches against target code.
// For compile-time specs the model also carries the replacement (the
// `into` block); for runtime specs Runtime holds the trigger/action
// pair instead and the model's Replace is empty (the scanner still
// enumerates injection points from the `change` pattern, but execution
// attaches an injector rather than mutating source).
type CompiledSpec struct {
	Model   *pattern.MetaModel
	Runtime *runtimefault.Fault
	// SiteOnly marks a spec whose DSL is a bare change{} block: a site
	// pattern with no injection behaviour of its own. Valid only when
	// the caller supplies the trigger/action out of band (the faultload
	// fields); dsl.Compile rejects it.
	SiteOnly bool
}

// IsRuntime reports whether the spec injects at run time.
func (cs *CompiledSpec) IsRuntime() bool { return cs.Runtime != nil }

// Compile compiles a compile-time bug specification written in the
// ProFIPy DSL into a meta-model. name is a human-readable identifier
// used in plans and reports; src is the `change { ... } into { ... }`
// text. Specs carrying runtime trigger/action clauses are rejected —
// use CompileFull for those.
func Compile(name, src string) (*pattern.MetaModel, error) {
	cs, err := CompileFull(name, src)
	if err != nil {
		return nil, err
	}
	if cs.IsRuntime() {
		return nil, fmt.Errorf("spec %q: runtime trigger/action spec where a compile-time spec is required", name)
	}
	if cs.SiteOnly {
		return nil, fmt.Errorf("spec %q: change block without into or trigger/action blocks", name)
	}
	return cs.Model, nil
}

// HasRuntimeClauses reports whether the spec text uses the runtime
// trigger/action form, from the section split alone — no preprocessing
// or pattern compilation. Malformed texts report false; CompileFull
// surfaces their errors.
func HasRuntimeClauses(src string) bool {
	sec, err := splitSections(src)
	return err == nil && sec.runtime
}

// CompileFull compiles a bug specification of either kind:
//
//	change { <pattern> } into { <replacement> }           // compile-time
//	change { <pattern> } trigger { <when> } action { <do> }  // runtime
//
// The runtime trigger clause is one of always, prob(p), every(k),
// after(n), round(r); the action clause is raise(Exc, "msg"),
// corrupt(bitflip|offbyone|null) or delay(duration). The trigger clause
// may be omitted (defaulting to always), the action clause may not.
func CompileFull(name, src string) (*CompiledSpec, error) {
	sec, err := splitSections(src)
	if err != nil {
		return nil, fmt.Errorf("spec %q: %w", name, err)
	}

	pre := newPreprocessor()
	patText, err := pre.rewrite(sec.change)
	if err != nil {
		return nil, fmt.Errorf("spec %q (change block): %w", name, err)
	}
	repText, err := pre.rewrite(sec.into)
	if err != nil {
		return nil, fmt.Errorf("spec %q (into block): %w", name, err)
	}

	fset := token.NewFileSet()
	patStmts, err := parseStmts(fset, patText)
	if err != nil {
		return nil, fmt.Errorf("spec %q: change block is not valid target syntax: %w", name, err)
	}
	repStmts, err := parseStmts(fset, repText)
	if err != nil {
		return nil, fmt.Errorf("spec %q: into block is not valid target syntax: %w", name, err)
	}
	if len(patStmts) == 0 {
		return nil, fmt.Errorf("spec %q: change block is empty", name)
	}

	mm := &pattern.MetaModel{
		Name:    name,
		Pattern: patStmts,
		Replace: repStmts,
		Holes:   pre.holes,
		Fset:    fset,
	}
	if err := attachArgExprs(mm); err != nil {
		return nil, fmt.Errorf("spec %q: %w", name, err)
	}
	if err := validate(mm); err != nil {
		return nil, fmt.Errorf("spec %q: %w", name, err)
	}

	cs := &CompiledSpec{Model: mm, SiteOnly: sec.siteOnly}
	if sec.runtime {
		rf, err := compileRuntimeClauses(name, sec)
		if err != nil {
			return nil, err
		}
		cs.Runtime = rf
	}
	return cs, nil
}

// compileRuntimeClauses builds the runtime fault of a trigger/action
// spec through the shared constructor (runtimefault.NewFault), so the
// DSL-clause spelling and the faultload-field spelling can never drift.
func compileRuntimeClauses(name string, sec sections) (*runtimefault.Fault, error) {
	rf, err := runtimefault.NewFault(name, sec.trigger, strings.TrimSpace(sec.action))
	if err != nil {
		return nil, fmt.Errorf("spec %q (trigger/action blocks): %w", name, err)
	}
	return rf, nil
}

// sections holds the raw block bodies of one spec.
type sections struct {
	change   string
	into     string
	trigger  string
	action   string
	runtime  bool
	siteOnly bool
}

// splitSections extracts the spec's block bodies, honouring nested
// braces and string literals. A spec is `change{...}` followed either
// by `into{...}` (compile-time) or by `[trigger{...}] action{...}`
// (runtime); the two forms are mutually exclusive. A bare `change{...}`
// is a site-only pattern, valid only with an out-of-band trigger/action
// (the faultload's Trigger/Action fields).
func splitSections(src string) (sections, error) {
	var sec sections
	i := skipSpaceAndComments(src, 0)
	if !strings.HasPrefix(src[i:], "change") {
		return sec, fmt.Errorf("dsl: expected 'change' keyword")
	}
	var err error
	i = skipSpaceAndComments(src, i+len("change"))
	sec.change, i, err = braceBlock(src, i)
	if err != nil {
		return sec, err
	}
	i = skipSpaceAndComments(src, i)
	switch {
	case strings.HasPrefix(src[i:], "into"):
		i = skipSpaceAndComments(src, i+len("into"))
		sec.into, i, err = braceBlock(src, i)
		if err != nil {
			return sec, err
		}
	case strings.HasPrefix(src[i:], "trigger"), strings.HasPrefix(src[i:], "action"):
		sec.runtime = true
		if strings.HasPrefix(src[i:], "trigger") {
			i = skipSpaceAndComments(src, i+len("trigger"))
			sec.trigger, i, err = braceBlock(src, i)
			if err != nil {
				return sec, err
			}
			i = skipSpaceAndComments(src, i)
		}
		if !strings.HasPrefix(src[i:], "action") {
			return sec, fmt.Errorf("dsl: expected 'action' block after trigger block")
		}
		i = skipSpaceAndComments(src, i+len("action"))
		sec.action, i, err = braceBlock(src, i)
		if err != nil {
			return sec, err
		}
	default:
		if strings.TrimSpace(src[i:]) == "" {
			sec.siteOnly = true
			return sec, nil
		}
		return sec, fmt.Errorf("dsl: expected 'into' (compile-time spec) or 'trigger'/'action' (runtime spec) after change block")
	}
	if rest := strings.TrimSpace(src[i:]); rest != "" {
		return sec, fmt.Errorf("dsl: unexpected trailing text %q", truncate(rest, 40))
	}
	return sec, nil
}

// braceBlock reads a balanced {...} block starting at src[at]=='{' and
// returns the inner text plus the offset after the closing brace.
func braceBlock(src string, at int) (string, int, error) {
	if at >= len(src) || src[at] != '{' {
		return "", 0, fmt.Errorf("dsl: expected '{' at offset %d", at)
	}
	depth := 0
	i := at
	for i < len(src) {
		switch src[i] {
		case '"', '`', '\'':
			end, err := skipString(src, i)
			if err != nil {
				return "", 0, err
			}
			i = end
			continue
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return src[at+1 : i], i + 1, nil
			}
		}
		i++
	}
	return "", 0, fmt.Errorf("dsl: unterminated block starting at offset %d", at)
}

func skipSpaceAndComments(src string, i int) int {
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			nl := strings.IndexByte(src[i:], '\n')
			if nl < 0 {
				return len(src)
			}
			i += nl + 1
		default:
			return i
		}
	}
	return i
}

// parseStmts parses a statement list fragment with the standard Go parser.
func parseStmts(fset *token.FileSet, body string) ([]ast.Stmt, error) {
	src := "package __p\nfunc __pat() {\n" + body + "\n}"
	f, err := parser.ParseFile(fset, "spec.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "__pat" {
			return fd.Body.List, nil
		}
	}
	return nil, fmt.Errorf("dsl: internal error: wrapper function not found")
}

// attachArgExprs parses the stashed argument-piece texts of directives
// that carry argument patterns ($CALL, $CORRUPT, ...) into expressions.
func attachArgExprs(mm *pattern.MetaModel) error {
	for _, d := range mm.Holes {
		for i := range d.Args {
			if d.Args[i].Ellipsis {
				continue
			}
			key := "__arg" + strconv.Itoa(i)
			text, ok := d.Attrs[key]
			if !ok {
				return fmt.Errorf("dsl: internal error: missing argument text for %s arg %d", d, i)
			}
			expr, err := parser.ParseExpr(text)
			if err != nil {
				return fmt.Errorf("dsl: bad argument pattern %q in %s: %w", text, d, err)
			}
			d.Args[i].Expr = expr
			delete(d.Attrs, key)
		}
	}
	return nil
}

// validate enforces structural rules: pattern-position directives must be
// matchable kinds, and tags referenced in the replacement must be bound by
// the pattern.
func validate(mm *pattern.MetaModel) error {
	bound := map[string]bool{}
	var err error
	walkHoles(mm, mm.Pattern, func(d *pattern.Directive) {
		switch d.Kind {
		case pattern.KindCorrupt, pattern.KindHog, pattern.KindTimeout, pattern.KindPanic:
			err = fmt.Errorf("dsl: $%s is a replacement-only directive and cannot appear in the change block", d.Kind)
		}
		if d.Tag != "" {
			bound[d.Tag] = true
		}
	})
	if err != nil {
		return err
	}
	walkHoles(mm, mm.Replace, func(d *pattern.Directive) {
		if d.Tag != "" && !bound[d.Tag] {
			switch d.Kind {
			case pattern.KindCorrupt, pattern.KindHog, pattern.KindTimeout, pattern.KindPanic:
				// These define behaviour, not references; tags are ignored.
			default:
				err = fmt.Errorf("dsl: replacement references tag %q which the change block never binds", d.Tag)
			}
		}
	})
	return err
}

// walkHoles visits every directive reachable from a statement list,
// including directives nested in argument patterns.
func walkHoles(mm *pattern.MetaModel, stmts []ast.Stmt, fn func(*pattern.Directive)) {
	var visitExpr func(e ast.Expr)
	var seen map[*pattern.Directive]bool
	seen = map[*pattern.Directive]bool{}
	var visitDirective func(d *pattern.Directive)
	visitDirective = func(d *pattern.Directive) {
		if d == nil || seen[d] {
			return
		}
		seen[d] = true
		fn(d)
		for _, a := range d.Args {
			if a.Expr != nil {
				visitExpr(a.Expr)
			}
		}
	}
	visitExpr = func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				visitDirective(mm.Holes[id.Name])
			}
			return true
		})
	}
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				visitDirective(mm.Holes[id.Name])
			}
			return true
		})
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
