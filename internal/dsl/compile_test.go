package dsl

import (
	"strings"
	"testing"

	"profipy/internal/pattern"
)

// The three bug specifications of Fig. 1 of the paper, transliterated to
// the Go-flavoured DSL.

// Fig. 1a — Missing function call (MFC).
const specMFC = `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`

// Fig. 1b — Missing IF construct plus statements (MIFS).
const specMIFS = `
change {
	if $EXPR{var=node} {
		$BLOCK{stmts=1,4}
		continue
	}
} into {
}`

// Fig. 1c — Wrong parameter in function call (WPF).
const specWPF = `
change {
	$CALL#c{name=utils.Execute}(..., $STRING#s{val=*-*}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`

func TestFig1aMFCCompiles(t *testing.T) {
	mm, err := Compile("MFC", specMFC)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(mm.Pattern) != 3 {
		t.Fatalf("pattern stmts = %d, want 3", len(mm.Pattern))
	}
	if len(mm.Replace) != 2 {
		t.Fatalf("replace stmts = %d, want 2", len(mm.Replace))
	}
	var blocks, calls int
	for _, d := range mm.Holes {
		switch d.Kind {
		case pattern.KindBlock:
			blocks++
			if d.MinStmts != 1 || d.MaxStmts != -1 {
				t.Errorf("block cardinality = %d,%d, want 1,*", d.MinStmts, d.MaxStmts)
			}
		case pattern.KindCall:
			calls++
			if got := d.NamePattern(); got != "Delete*" {
				t.Errorf("call name pattern = %q, want Delete*", got)
			}
			if !d.HasArgs || len(d.Args) != 1 || !d.Args[0].Ellipsis {
				t.Errorf("call args = %+v, want single ellipsis", d.Args)
			}
		}
	}
	if blocks != 4 || calls != 1 {
		t.Fatalf("directives: blocks=%d calls=%d, want 4 blocks (2 pattern + 2 replace) and 1 call", blocks, calls)
	}
}

func TestFig1bMIFSCompiles(t *testing.T) {
	mm, err := Compile("MIFS", specMIFS)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(mm.Pattern) != 1 {
		t.Fatalf("pattern stmts = %d, want 1 (the if)", len(mm.Pattern))
	}
	if len(mm.Replace) != 0 {
		t.Fatalf("replace stmts = %d, want 0 (omission)", len(mm.Replace))
	}
	var haveExpr, haveBlock bool
	for _, d := range mm.Holes {
		switch d.Kind {
		case pattern.KindExpr:
			haveExpr = true
			if d.Attrs["var"] != "node" {
				t.Errorf("expr var = %q, want node", d.Attrs["var"])
			}
		case pattern.KindBlock:
			haveBlock = true
			if d.MinStmts != 1 || d.MaxStmts != 4 {
				t.Errorf("block cardinality = %d,%d, want 1,4", d.MinStmts, d.MaxStmts)
			}
		}
	}
	if !haveExpr || !haveBlock {
		t.Fatalf("missing directives: expr=%v block=%v", haveExpr, haveBlock)
	}
}

func TestFig1cWPFCompiles(t *testing.T) {
	mm, err := Compile("WPF", specWPF)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var call, corrupt, str *pattern.Directive
	for _, d := range mm.Holes {
		switch d.Kind {
		case pattern.KindCall:
			if d.Attrs["name"] != "" {
				call = d
			}
		case pattern.KindCorrupt:
			corrupt = d
		case pattern.KindString:
			if d.Tag == "s" && d.Attrs["val"] != "" {
				str = d
			}
		}
	}
	if call == nil || call.Tag != "c" || call.NamePattern() != "utils.Execute" {
		t.Fatalf("pattern $CALL directive wrong: %+v", call)
	}
	if len(call.Args) != 3 || !call.Args[0].Ellipsis || call.Args[1].Ellipsis || !call.Args[2].Ellipsis {
		t.Fatalf("pattern $CALL args = %+v, want [..., expr, ...]", call.Args)
	}
	if str == nil || str.ValPattern() != "*-*" {
		t.Fatalf("pattern $STRING directive wrong: %+v", str)
	}
	if corrupt == nil || len(corrupt.Args) != 1 {
		t.Fatalf("replacement $CORRUPT directive wrong: %+v", corrupt)
	}
}

// TestCompileFullRuntimeClauses covers the runtime spec form: trigger
// and action blocks compile into a fault, the trigger block is optional
// (defaulting to always), and the site pattern scans like any other.
func TestCompileFullRuntimeClauses(t *testing.T) {
	cs, err := CompileFull("rt", `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
} trigger {
	prob(0.25)
} action {
	raise(ConnectTimeoutError, "flaky")
}`)
	if err != nil {
		t.Fatalf("CompileFull: %v", err)
	}
	if !cs.IsRuntime() || cs.SiteOnly {
		t.Fatalf("spec kind wrong: runtime=%v siteOnly=%v", cs.IsRuntime(), cs.SiteOnly)
	}
	if cs.Runtime.When.Mode != "prob" || cs.Runtime.When.P != 0.25 {
		t.Fatalf("trigger = %+v", cs.Runtime.When)
	}
	if cs.Runtime.Do.Kind != "raise" || cs.Runtime.Do.ExcType != "ConnectTimeoutError" || cs.Runtime.Do.Message != "flaky" {
		t.Fatalf("action = %+v", cs.Runtime.Do)
	}
	if cs.Runtime.Site != "" {
		t.Fatalf("site must stay unbound at compile time, got %q", cs.Runtime.Site)
	}
	if len(cs.Model.Pattern) == 0 || len(cs.Model.Replace) != 0 {
		t.Fatalf("runtime model shape: pattern=%d replace=%d", len(cs.Model.Pattern), len(cs.Model.Replace))
	}

	// Trigger block omitted → always.
	cs2, err := CompileFull("rt2", `change { f() } action { corrupt(offbyone) }`)
	if err != nil {
		t.Fatalf("CompileFull (no trigger): %v", err)
	}
	if cs2.Runtime.When.Mode != "always" || cs2.Runtime.Do.Corruption != "offbyone" {
		t.Fatalf("defaulted fault = %+v", cs2.Runtime)
	}

	// Site-only form compiles, flagged for the caller to resolve.
	cs3, err := CompileFull("rt3", `change { f() }`)
	if err != nil {
		t.Fatalf("CompileFull (site-only): %v", err)
	}
	if !cs3.SiteOnly || cs3.IsRuntime() {
		t.Fatalf("site-only kind wrong: %+v", cs3)
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"missing change", `into { }`, "expected 'change'"},
		{"missing into", `change { x() }`, "change block without into or trigger/action blocks"},
		{"trailing after change", `change { x() } junk`, "expected 'into'"},
		{"trigger without action", `change { x() } trigger { always }`, "expected 'action' block"},
		{"empty pattern", `change { } into { x() }`, "change block is empty"},
		{"unknown directive", `change { $BOGUS } into { }`, "unknown directive"},
		{"stray dollar", `change { $ } into { }`, "stray '$'"},
		{"bad stmts", `change { $BLOCK{stmts=z} } into { }`, "bad stmts"},
		{"inverted stmts", `change { $BLOCK{stmts=4,2} } into { }`, "bad stmts"},
		{"corrupt in pattern", `change { $CORRUPT(x) } into { }`, "replacement-only"},
		{"unbound tag", `change { $CALL{name=f}(...) } into { $BLOCK{tag=zz} }`, "never binds"},
		{"trailing text", `change { f() } into { } garbage`, "trailing text"},
		{"bad go syntax", `change { if if } into { }`, "not valid target syntax"},
		{"unterminated string", `change { Log("abc } into { }`, "unterminated"},
		{"malformed attr", `change { $CALL{name}(...) } into { }`, "malformed attribute"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("bad", tc.src)
			if err == nil {
				t.Fatalf("Compile succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestCompileTagSyntaxVariants(t *testing.T) {
	// Tag can be written as #tag or as {tag=...}; both in either order
	// relative to the attribute block.
	for _, src := range []string{
		`change { $CALL#c{name=f}(...) } into { $CALL#c }`,
		`change { $CALL{name=f}#c(...) } into { $CALL#c }`,
		`change { $CALL{name=f; tag=c}(...) } into { $CALL#c }`,
	} {
		mm, err := Compile("tags", src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		found := false
		for _, d := range mm.Holes {
			if d.Kind == pattern.KindCall && d.Tag == "c" && d.HasArgs {
				found = true
			}
		}
		if !found {
			t.Fatalf("Compile(%q): no tagged $CALL directive found", src)
		}
	}
}

func TestCompileConflictingTags(t *testing.T) {
	_, err := Compile("conflict", `change { $CALL#a{tag=b; name=f}(...) } into { }`)
	if err == nil || !strings.Contains(err.Error(), "conflicting tags") {
		t.Fatalf("err = %v, want conflicting tags", err)
	}
}

func TestCompileStringsWithBraces(t *testing.T) {
	// Braces and $ inside string literals must not confuse the splitter.
	mm, err := Compile("strs", `
change {
	Log("a { b } $ c")
} into {
	Log("mutated")
}`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(mm.Pattern) != 1 || len(mm.Replace) != 1 {
		t.Fatalf("unexpected shape: %d pattern, %d replace", len(mm.Pattern), len(mm.Replace))
	}
}

func TestCompilePanicHogTimeoutDirectives(t *testing.T) {
	mm, err := Compile("extras", `
change {
	$CALL#c{name=Do}(...)
} into {
	$PANIC{type=ConnectTimeoutError; msg=injected}
	$HOG{res=cpu; amount=3}
	$TIMEOUT{ms=500}
}`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	kinds := map[pattern.Kind]bool{}
	for _, d := range mm.Holes {
		kinds[d.Kind] = true
	}
	for _, k := range []pattern.Kind{pattern.KindPanic, pattern.KindHog, pattern.KindTimeout} {
		if !kinds[k] {
			t.Errorf("missing directive kind %v", k)
		}
	}
}
