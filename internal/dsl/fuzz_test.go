package dsl

import (
	"testing"
)

// FuzzCompile throws arbitrary spec texts at the DSL front end — the
// section splitter, preprocessor, Go-fragment parser, trigger/action
// clause parser and validator. The compiler must never panic: malformed
// input returns an error, well-formed input compiles deterministically
// (two compiles of the same text agree on kind and pattern size).
//
// Seed corpus: testdata/fuzz/FuzzCompile/ plus the inline f.Add seeds
// below (real specs from the predefined models and the runtime model,
// plus known-tricky fragments: nested braces, strings with braces,
// unterminated blocks, directive soup).
func FuzzCompile(f *testing.F) {
	seeds := []string{
		// Compile-time specs in the predefined models' style.
		"change {\n\t$BLOCK{tag=b1; stmts=1,*}\n\t$CALL{name=*}(...)\n\t$BLOCK{tag=b2; stmts=1,*}\n} into {\n\t$BLOCK{tag=b1}\n\t$BLOCK{tag=b2}\n}",
		"change {\n\tif $EXPR#e {\n\t\t$BLOCK{tag=body; stmts=1,4}\n\t}\n} into {\n}",
		"change {\n\t$VAR#x = $STRING#v\n} into {\n\t$VAR#x = $CORRUPT($STRING#v)\n}",
		"change {\n\t$VAR#v := $CALL#c{name=urllib.*,osio.*}(...)\n} into {\n\t$PANIC{type=E; msg=m}\n}",
		"change {\n\t$CALL#c{name=*.Set}($STRING#k, $STRING#v, ...)\n} into {\n\t$CALL#c($STRING#k, $NIL#v, ...)\n}",
		// Runtime trigger/action specs.
		"change {\n\t$VAR#v := $CALL#c{name=*}(...)\n} trigger {\n\tprob(0.5)\n} action {\n\traise(E, \"m\")\n}",
		"change {\n\t$VAR#v := $CALL#c{name=*}(...)\n} trigger {\n\tevery(2)\n} action {\n\tcorrupt(bitflip)\n}",
		"change {\n\t$VAR#v := $CALL#c{name=*}(...)\n} action {\n\tdelay(5s)\n}",
		"change {\n\t$CALL{name=*}(...)\n}",
		// Tricky shapes.
		"change { x := \"}\" } into { x := \"{\" }",
		"change { if a { b() } } into { /* comment } */ }",
		"change {",
		"into { } change { }",
		"change { $UNKNOWN#t } into { }",
		"change { $BLOCK{stmts=9,1} } into { }",
		"change { x() } trigger { round(0) } action { raise(E) }",
		"change { x() } trigger { always } action { corrupt(everything) }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cs, err := CompileFull("fuzz", src)
		if err != nil {
			return
		}
		if cs.Model == nil {
			t.Fatal("successful compile returned nil meta-model")
		}
		if len(cs.Model.Pattern) == 0 {
			t.Fatal("successful compile returned empty pattern")
		}
		// Determinism: recompiling the same text must agree.
		cs2, err2 := CompileFull("fuzz", src)
		if err2 != nil {
			t.Fatalf("recompile of accepted spec failed: %v", err2)
		}
		if cs.IsRuntime() != cs2.IsRuntime() || cs.SiteOnly != cs2.SiteOnly {
			t.Fatal("recompile disagreed on spec kind")
		}
		if len(cs.Model.Pattern) != len(cs2.Model.Pattern) || len(cs.Model.Replace) != len(cs2.Model.Replace) {
			t.Fatal("recompile disagreed on pattern shape")
		}
		if cs.IsRuntime() {
			if err := cs.Runtime.When.Validate(); err != nil {
				t.Fatalf("accepted runtime spec has invalid trigger: %v", err)
			}
			if err := cs.Runtime.Do.Validate(); err != nil {
				t.Fatalf("accepted runtime spec has invalid action: %v", err)
			}
		}
	})
}
