// Package dsl implements the ProFIPy fault-injection domain-specific
// language: `change { <code pattern> } into { <code replacement> }` blocks
// mixing target-language (Go) code fragments with $DIRECTIVES.
//
// Compilation happens in two stages. The pre-processor rewrites every
// directive occurrence ($CALL{name=Execute}#c(...), $BLOCK{stmts=1,4}, ...)
// into a unique placeholder identifier (__dsl_N) and records a directive
// descriptor for it; the resulting text is plain Go syntax, which the
// standard go/parser turns into the meta-model ASTs.
package dsl

import (
	"fmt"
	"strconv"
	"strings"

	"profipy/internal/pattern"
)

// preprocessor rewrites DSL directives in a code fragment into placeholder
// identifiers, accumulating the directive table shared by the pattern and
// replacement sections of a spec.
type preprocessor struct {
	holes map[string]*pattern.Directive
	next  int
}

func newPreprocessor() *preprocessor {
	return &preprocessor{holes: make(map[string]*pattern.Directive)}
}

func (p *preprocessor) fresh(d *pattern.Directive) string {
	name := "__dsl_" + strconv.Itoa(p.next)
	p.next++
	p.holes[name] = d
	return name
}

// argPiece is a raw argument fragment of a directive's parenthesised
// argument list: either the literal ellipsis "..." or pre-processed Go
// expression text.
type argPiece struct {
	ellipsis bool
	text     string
}

// rewrite substitutes all directives in src and returns Go-parseable text.
func (p *preprocessor) rewrite(src string) (string, error) {
	var out strings.Builder
	i := 0
	for i < len(src) {
		c := src[i]
		switch c {
		case '"', '`', '\'':
			end, err := skipString(src, i)
			if err != nil {
				return "", err
			}
			out.WriteString(src[i:end])
			i = end
		case '/':
			if i+1 < len(src) && src[i+1] == '/' {
				end := strings.IndexByte(src[i:], '\n')
				if end < 0 {
					end = len(src) - i
				}
				out.WriteString(src[i : i+end])
				i += end
			} else {
				out.WriteByte(c)
				i++
			}
		case '$':
			name, rest, ok := scanDirectiveName(src, i+1)
			if !ok {
				return "", fmt.Errorf("dsl: stray '$' at offset %d (expected directive name)", i)
			}
			kind, known := pattern.KindByName(name)
			if !known {
				return "", fmt.Errorf("dsl: unknown directive $%s at offset %d", name, i)
			}
			placeholder, end, err := p.consumeDirective(src, rest, kind)
			if err != nil {
				return "", err
			}
			out.WriteString(placeholder)
			i = end
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String(), nil
}

// consumeDirective parses the tag / attribute / argument suffix of a
// directive whose name ended at offset `at`, registers the directive, and
// returns the placeholder text plus the offset after the construct.
func (p *preprocessor) consumeDirective(src string, at int, kind pattern.Kind) (string, int, error) {
	d := &pattern.Directive{Kind: kind, Attrs: map[string]string{}, MinStmts: 1, MaxStmts: -1}
	i := at
	seenAttrs, seenTag := false, false
	for i < len(src) {
		switch src[i] {
		case '#':
			if seenTag {
				return "", 0, fmt.Errorf("dsl: duplicate tag on $%s at offset %d", kind, i)
			}
			tag, end, ok := scanIdent(src, i+1)
			if !ok {
				return "", 0, fmt.Errorf("dsl: missing tag name after '#' at offset %d", i)
			}
			d.Tag = tag
			seenTag = true
			i = end
			continue
		case '{':
			if seenAttrs {
				return "", 0, fmt.Errorf("dsl: duplicate attribute block on $%s at offset %d", kind, i)
			}
			end, err := p.parseAttrs(src, i, d)
			if err != nil {
				return "", 0, err
			}
			seenAttrs = true
			i = end
			continue
		}
		break
	}
	if tag, ok := d.Attrs["tag"]; ok {
		if d.Tag != "" && d.Tag != tag {
			return "", 0, fmt.Errorf("dsl: conflicting tags %q and %q on $%s", d.Tag, tag, kind)
		}
		d.Tag = tag
	}
	if takesArgs(kind) && i < len(src) && src[i] == '(' {
		pieces, end, err := splitArgs(src, i)
		if err != nil {
			return "", 0, err
		}
		d.HasArgs = true
		for _, piece := range pieces {
			if piece.ellipsis {
				d.Args = append(d.Args, pattern.ArgPat{Ellipsis: true})
				continue
			}
			text, err := p.rewrite(piece.text)
			if err != nil {
				return "", 0, err
			}
			// Expr is attached after the Go parse; stash the text in Attrs
			// under a reserved key consumed by the compiler.
			d.Args = append(d.Args, pattern.ArgPat{})
			d.Attrs["__arg"+strconv.Itoa(len(d.Args)-1)] = text
		}
		i = end
	}
	if kind == pattern.KindBlock {
		if err := parseStmtsAttr(d); err != nil {
			return "", 0, err
		}
	}
	name := p.fresh(d)
	if takesArgs(kind) {
		// Call-like directives are emitted as zero-argument calls so
		// they parse in call-only syntax positions (defer, go).
		name += "()"
	}
	return name, i, nil
}

// parseAttrs parses a `{k=v; k=v}` attribute block starting at src[open]=='{'.
func (p *preprocessor) parseAttrs(src string, open int, d *pattern.Directive) (int, error) {
	end := strings.IndexByte(src[open:], '}')
	if end < 0 {
		return 0, fmt.Errorf("dsl: unterminated attribute block at offset %d", open)
	}
	body := src[open+1 : open+end]
	for _, kv := range strings.Split(body, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return 0, fmt.Errorf("dsl: malformed attribute %q (expected key=value)", kv)
		}
		key := strings.TrimSpace(kv[:eq])
		val := strings.TrimSpace(kv[eq+1:])
		if key == "" {
			return 0, fmt.Errorf("dsl: empty attribute key in %q", kv)
		}
		d.Attrs[key] = val
	}
	return open + end + 1, nil
}

// parseStmtsAttr decodes a $BLOCK's stmts=min,max attribute.
func parseStmtsAttr(d *pattern.Directive) error {
	spec, ok := d.Attrs["stmts"]
	if !ok {
		return nil
	}
	lo, hi, found := strings.Cut(spec, ",")
	minStmts, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil || minStmts < 0 {
		return fmt.Errorf("dsl: bad stmts attribute %q", spec)
	}
	d.MinStmts = minStmts
	if !found {
		d.MaxStmts = minStmts
		return nil
	}
	hi = strings.TrimSpace(hi)
	if hi == "*" {
		d.MaxStmts = -1
		return nil
	}
	maxStmts, err := strconv.Atoi(hi)
	if err != nil || maxStmts < minStmts {
		return fmt.Errorf("dsl: bad stmts attribute %q", spec)
	}
	d.MaxStmts = maxStmts
	return nil
}

// takesArgs reports whether a directive kind consumes a following
// parenthesised argument list.
func takesArgs(k pattern.Kind) bool {
	switch k {
	case pattern.KindCall, pattern.KindCorrupt, pattern.KindHog, pattern.KindTimeout, pattern.KindPanic:
		return true
	}
	return false
}

// splitArgs splits a balanced parenthesised argument list starting at
// src[open]=='(' into top-level comma-separated pieces.
func splitArgs(src string, open int) ([]argPiece, int, error) {
	depth := 0
	var pieces []argPiece
	start := open + 1
	flush := func(end int) {
		text := strings.TrimSpace(src[start:end])
		if text == "" {
			return
		}
		pieces = append(pieces, argPiece{ellipsis: text == "...", text: text})
	}
	i := open
	for i < len(src) {
		switch src[i] {
		case '"', '`', '\'':
			end, err := skipString(src, i)
			if err != nil {
				return nil, 0, err
			}
			i = end
			continue
		case '(', '[', '{':
			depth++
		case ']', '}':
			depth--
		case ')':
			depth--
			if depth == 0 {
				flush(i)
				return pieces, i + 1, nil
			}
		case ',':
			if depth == 1 {
				flush(i)
				start = i + 1
			}
		}
		i++
	}
	return nil, 0, fmt.Errorf("dsl: unterminated argument list at offset %d", open)
}

// scanDirectiveName reads an upper-case directive name starting at `at`.
func scanDirectiveName(src string, at int) (string, int, bool) {
	i := at
	for i < len(src) && src[i] >= 'A' && src[i] <= 'Z' {
		i++
	}
	if i == at {
		return "", at, false
	}
	return src[at:i], i, true
}

// scanIdent reads a Go-style identifier starting at `at`.
func scanIdent(src string, at int) (string, int, bool) {
	i := at
	for i < len(src) {
		c := src[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > at && c >= '0' && c <= '9' {
			i++
			continue
		}
		break
	}
	if i == at {
		return "", at, false
	}
	return src[at:i], i, true
}

// skipString advances past a Go string/rune literal beginning at src[at].
func skipString(src string, at int) (int, error) {
	quote := src[at]
	i := at + 1
	for i < len(src) {
		switch src[i] {
		case '\\':
			if quote != '`' {
				i++ // skip escaped char
			}
		case quote:
			return i + 1, nil
		}
		i++
	}
	return 0, fmt.Errorf("dsl: unterminated string literal at offset %d", at)
}
