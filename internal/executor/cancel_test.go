package executor

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/fleet"
	"profipy/internal/remote"
	"profipy/internal/scanner"
)

// cancellingExp returns a ctx-honoring Experiment that cancels the
// context after `after` full experiments: later invocations observe the
// cancellation and return stubs, exactly like the campaign's experiment
// closure does.
func cancellingExp(ctx context.Context, cancel context.CancelFunc, after int) Experiment {
	var full atomic.Int32
	return func(idx int) analysis.Record {
		if ctx.Err() != nil {
			return analysis.Record{Point: scanner.InjectionPoint{Line: idx}, FaultType: "stub"}
		}
		if full.Add(1) == int32(after) {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return analysis.Record{Point: scanner.InjectionPoint{Line: idx}, FaultType: "full"}
	}
}

// verifyDrain checks the cancellation contract: Run returned having
// delivered all n records exactly once — some full, the canceled
// remainder as stubs — with every record at its own plan index.
func verifyDrain(t *testing.T, name string, recs []analysis.Record, n int) {
	t.Helper()
	fulls, stubs := 0, 0
	for i, rec := range recs {
		if rec.Point.Line != i {
			t.Fatalf("%s: record %d holds index %d", name, i, rec.Point.Line)
		}
		switch rec.FaultType {
		case "full":
			fulls++
		case "stub":
			stubs++
		default:
			t.Fatalf("%s: record %d missing (%q)", name, i, rec.FaultType)
		}
	}
	if fulls+stubs != n {
		t.Fatalf("%s: %d full + %d stub records, want %d total", name, fulls, stubs, n)
	}
	if stubs == 0 {
		t.Logf("%s: cancellation raced completion (0 stubs) — still a valid drain", name)
	}
}

// TestCancellationDrainsCleanly cancels the context mid-run for every
// engine and requires a complete, well-indexed record set anyway:
// cancellation is cooperative and must never lose or duplicate an
// index, only downgrade unexecuted experiments to stubs.
func TestCancellationDrainsCleanly(t *testing.T) {
	const n = 40
	engines := []func() Executor{
		func() Executor { return Local{} },
		func() Executor { return Local{Workers: 4} },
		func() Executor { return Sharded{Shards: 4, Workers: 2} },
		func() Executor { return &Remote{Shards: 4, LocalWorkers: 2} }, // nil Coord: pure local path
	}
	for _, mk := range engines {
		ex := mk()
		t.Run(ex.Name(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			col := NewCollect(n)
			if err := ex.Run(ctx, n, cancellingExp(ctx, cancel, 5), col); err != nil {
				t.Fatalf("run: %v", err)
			}
			verifyDrain(t, ex.Name(), col.Records(), n)
		})
	}
}

// TestRemoteCancellationRevokesLeasedShards cancels a Remote run whose
// coordinator has no workers and WaitForWorkers set, so every shard is
// still pending when the cancellation lands: Run must revoke them all
// and drain the full index range as stubs in-process.
func TestRemoteCancellationRevokesLeasedShards(t *testing.T) {
	const n = 24
	coord := fleet.New(fleet.Config{LeaseTTL: 50 * time.Millisecond})
	r := &Remote{
		Coord:          coord,
		CampaignID:     "cancel-test",
		Spec:           remote.CampaignSpec{Name: "cancel-test"},
		Shards:         4,
		LocalWorkers:   2,
		WaitForWorkers: true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	col := NewCollect(n)
	exp := func(idx int) analysis.Record {
		kind := "full"
		if ctx.Err() != nil {
			kind = "stub"
		}
		return analysis.Record{Point: scanner.InjectionPoint{Line: idx}, FaultType: kind}
	}
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx, n, exp, col) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Remote.Run did not drain after cancellation")
	}
	verifyDrain(t, r.Name(), col.Records(), n)
	stubs := 0
	for _, rec := range col.Records() {
		if rec.FaultType == "stub" {
			stubs++
		}
	}
	if stubs != n {
		t.Fatalf("%d stubs, want all %d (no worker ever ran an experiment)", stubs, n)
	}
}
