// Package executor owns the execution phase of a fault injection
// campaign: given a plan of n experiments, an Executor schedules them,
// bounds their parallelism and streams every completed record — exactly
// once, from a single goroutine — into a RecordSink. Splitting this out
// of the campaign workflow turns "collect a slice, then analyze" into a
// streaming pipeline: records flow to online aggregation and durable
// storage as experiments finish, and campaign memory no longer grows
// with the experiment count.
//
// Two engines are provided. Local preserves the paper's single-host
// N−1 parallel pool (§IV-B). Sharded partitions the plan into
// deterministic, seed-stable shards — shard membership depends only on
// the point index, never on timing — and fans them out with per-shard
// workers, per-shard progress and per-shard record streams merged by a
// single collector. Because every experiment derives its seed from its
// plan index, any shard count produces byte-identical records.
package executor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/obs"
)

// Experiment runs the experiment at plan index idx and returns its
// record. Implementations must be safe for concurrent calls and honor
// ctx by returning a stub record (Point and FaultType only) once the
// context is canceled.
type Experiment func(idx int) analysis.Record

// RecordSink receives completed experiment records. Executors call Put
// from a single collector goroutine, so implementations need no
// internal locking; idx is the experiment's plan index, which is not
// necessarily the arrival order.
type RecordSink interface {
	Put(idx int, rec analysis.Record)
}

// SinkFunc adapts a function to the RecordSink interface.
type SinkFunc func(idx int, rec analysis.Record)

// Put calls f.
func (f SinkFunc) Put(idx int, rec analysis.Record) { f(idx, rec) }

// Multi fans one record stream out to several sinks, in order.
func Multi(sinks ...RecordSink) RecordSink {
	return SinkFunc(func(idx int, rec analysis.Record) {
		for _, s := range sinks {
			if s != nil {
				s.Put(idx, rec)
			}
		}
	})
}

// Collect is a RecordSink that reassembles the stream into plan order,
// for callers that still need the full record slice (golden tests, the
// library API's Result.Records).
type Collect struct {
	records []analysis.Record
}

// NewCollect prepares a collector for n experiments.
func NewCollect(n int) *Collect { return &Collect{records: make([]analysis.Record, n)} }

// Put stores the record at its plan index.
func (c *Collect) Put(idx int, rec analysis.Record) { c.records[idx] = rec }

// Records returns the collected records in plan order.
func (c *Collect) Records() []analysis.Record { return c.records }

// Executor runs a plan of experiments and streams the records.
type Executor interface {
	// Name labels the engine in benchmarks and logs.
	Name() string
	// Run executes experiments [0, n), delivering every record exactly
	// once to sink (single-goroutine). Cancellation is cooperative: the
	// Experiment function is expected to observe ctx and return stub
	// records, so Run always delivers n records.
	Run(ctx context.Context, n int, exp Experiment, sink RecordSink) error
}

// indexed pairs a record with its plan index while in flight.
type indexed struct {
	idx int
	rec analysis.Record
}

// Local executes experiments on one host with a bounded worker pool —
// the direct extraction of the campaign's original in-process execution
// loop. The campaign sizes Workers from the sandbox runtime's
// MaxParallel (N−1 cores, reduced by memory/IO caps).
type Local struct {
	// Workers bounds parallel experiments (<1 runs sequentially).
	Workers int
	// Skip, when set, marks plan indices that already have records (a
	// resumed campaign's completion bitmap): they are neither executed
	// nor emitted. Nil runs the full plan.
	Skip *Mask
	// Reg, when set, instruments the run: completed records,
	// per-experiment latency and busy workers (see newMetrics).
	Reg *obs.Registry
	// VM labels the interpretation engine the experiments run on in
	// metrics ("bytecode", "closure", "tree-walk"; empty = bytecode).
	VM string
	// Order, when set, permutes the execution order of a pool's index
	// range (site-aware scheduling: the campaign groups experiments
	// sharing an injection site so a prefix snapshot is reused while
	// warm). Delivery stays exactly-once regardless of what Order
	// returns — out-of-range and duplicate entries are dropped and
	// missing indices appended in ascending order — and record bytes
	// never depend on execution order, because records key on plan
	// index and seeds derive from it.
	Order func(lo, hi int) []int
}

// Name implements Executor.
func (l Local) Name() string { return "local" }

// Run implements Executor.
func (l Local) Run(ctx context.Context, n int, exp Experiment, sink RecordSink) error {
	if n == 0 {
		return nil
	}
	m := newMetrics(l.Reg, l.VM, l.Name())
	exp = m.instrument(exp)
	runPool(0, n, l.Workers, l.Skip, l.Order, exp, func(r indexed) {
		m.record()
		sink.Put(r.idx, r.rec)
	})
	return nil
}

// missing counts the indices of [lo, hi) not marked done in skip.
func missing(lo, hi int, skip *Mask) int {
	n := hi - lo
	if skip != nil {
		for i := lo; i < hi; i++ {
			if skip.Has(i) {
				n--
			}
		}
	}
	return n
}

// poolOrder resolves the execution sequence of [lo, hi) minus skip. A
// nil order yields ascending indices. A caller-supplied order is
// validated defensively — entries outside the range, duplicates and
// skipped indices are dropped, and indices the permutation missed are
// appended in ascending order — so a buggy Order hook can reorder work
// but never break the exactly-once delivery contract.
func poolOrder(lo, hi int, skip *Mask, order func(int, int) []int) []int {
	out := make([]int, 0, hi-lo)
	if order == nil {
		for i := lo; i < hi; i++ {
			if !skip.Has(i) {
				out = append(out, i)
			}
		}
		return out
	}
	seen := make(map[int]bool, hi-lo)
	for _, i := range order(lo, hi) {
		if i < lo || i >= hi || seen[i] || skip.Has(i) {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	for i := lo; i < hi; i++ {
		if !seen[i] && !skip.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// runPool executes the experiments of [lo, hi) not masked by skip on a
// bounded worker pool, delivering each record to emit from the calling
// goroutine — the one pump shared by Local and Sharded's per-shard
// pools. A non-nil order permutes execution within the range.
func runPool(lo, hi, workers int, skip *Mask, order func(int, int) []int, exp Experiment, emit func(indexed)) {
	seq := poolOrder(lo, hi, skip, order)
	n := len(seq)
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, i := range seq {
			emit(indexed{i, exp(i)})
		}
		return
	}
	jobs := make(chan int)
	out := make(chan indexed, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				out <- indexed{i, exp(i)}
			}
		}()
	}
	go func() {
		for _, i := range seq {
			jobs <- i
		}
		close(jobs)
	}()
	for received := 0; received < n; received++ {
		emit(<-out)
	}
}

// ShardProgress is a live per-shard counter snapshot.
type ShardProgress struct {
	Shard int `json:"shard"`
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Sharded partitions the plan into deterministic contiguous shards and
// executes them concurrently, each with its own worker pool and its own
// record stream; a single collector merges the streams into the sink.
// Shard membership is a pure function of the point index and the shard
// count — never of timing or seeds — and experiment seeds derive from
// the plan index, so records are byte-identical to Local's at any shard
// count.
type Sharded struct {
	// Shards is the number of partitions (default 4).
	Shards int
	// Workers bounds parallel experiments per shard (default 1), so
	// total parallelism is Shards×Workers.
	Workers int
	// OnShard, when set, observes per-shard progress as experiments
	// complete. It is called from the collector goroutine.
	OnShard func(ShardProgress)
	// OnShardSpan, when set, observes each shard's wall-clock execution
	// window as nanosecond offsets from the start of Run — the
	// campaign's phase-timeline recorder hangs off this. Called from
	// the shard's own goroutine when the shard drains; must be safe for
	// concurrent use.
	OnShardSpan func(shard int, startNS, endNS int64)
	// Skip marks already-recorded plan indices of a resumed campaign.
	// Shard geometry is computed over the full plan — it must stay
	// identical to the uninterrupted run's — and the skipped indices are
	// simply not executed inside their shards.
	Skip *Mask
	// Reg, when set, instruments the run: completed records,
	// per-experiment latency, busy workers and shard latency.
	Reg *obs.Registry
	// VM labels the interpretation engine in metrics; see Local.VM.
	VM string
	// Order permutes execution order inside each shard's index range
	// (site-aware scheduling); see Local.Order. Shard geometry is
	// unaffected — grouping happens within a shard, never across.
	Order func(lo, hi int) []int
}

// Name implements Executor.
func (s Sharded) Name() string {
	return fmt.Sprintf("sharded(%d×%d)", s.shards(), s.workers())
}

func (s Sharded) shards() int {
	if s.Shards < 1 {
		return 4
	}
	return s.Shards
}

func (s Sharded) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

// Shard returns the half-open index range [lo, hi) of one shard of n
// experiments: contiguous ranges differing in size by at most one.
// Exported so stores and progress UIs can label shard boundaries the
// same way the executor cuts them.
func Shard(n, shards, i int) (lo, hi int) {
	lo = i * n / shards
	hi = (i + 1) * n / shards
	return lo, hi
}

// Run implements Executor.
func (s Sharded) Run(ctx context.Context, n int, exp Experiment, sink RecordSink) error {
	if n == 0 {
		return nil
	}
	shards := s.shards()
	if shards > n {
		shards = n
	}
	workers := s.workers()
	m := newMetrics(s.Reg, s.VM, s.Name())
	exp = m.instrument(exp)
	t0 := time.Now()

	// Each shard streams into its own bounded channel (per-shard
	// backpressure: a stalled collector never lets a shard run more
	// than its buffer ahead); forwarders tag records with their shard
	// and merge the streams, so a slow shard never blocks a fast one.
	// The collector below is the only goroutine touching the sink.
	type shardRec struct {
		shard int
		rec   indexed
	}
	merged := make(chan shardRec, shards)
	var open sync.WaitGroup
	totals := make([]int, shards)
	for si := 0; si < shards; si++ {
		lo, hi := Shard(n, shards, si)
		totals[si] = missing(lo, hi, s.Skip)
		stream := make(chan indexed, workers)
		go s.runShard(si, lo, hi, workers, exp, stream, m, t0)
		open.Add(1)
		go func(si int) {
			defer open.Done()
			for r := range stream {
				merged <- shardRec{si, r}
			}
		}(si)
	}
	go func() {
		open.Wait()
		close(merged)
	}()

	done := make([]int, shards)
	for r := range merged {
		m.record()
		sink.Put(r.rec.idx, r.rec.rec)
		done[r.shard]++
		if s.OnShard != nil {
			s.OnShard(ShardProgress{Shard: r.shard, Done: done[r.shard], Total: totals[r.shard]})
		}
	}
	return nil
}

// runShard executes one shard's index range with its own worker pool,
// writing records to the shard stream, and closes the stream when the
// shard drains. Shard timing (metrics histogram and the OnShardSpan
// offsets) is measured here, in the shard's own goroutine.
func (s Sharded) runShard(si, lo, hi, workers int, exp Experiment, stream chan<- indexed, m *emetrics, t0 time.Time) {
	start := time.Now()
	runPool(lo, hi, workers, s.Skip, s.Order, exp, func(r indexed) { stream <- r })
	end := time.Now()
	m.shard(end.Sub(start))
	if s.OnShardSpan != nil {
		s.OnShardSpan(si, start.Sub(t0).Nanoseconds(), end.Sub(t0).Nanoseconds())
	}
	close(stream)
}
