package executor

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/scanner"
)

// testExp builds a deterministic Experiment whose record content is a
// pure function of the index, and counts concurrent invocations.
func testExp(active *atomic.Int64, peak *atomic.Int64) Experiment {
	return func(idx int) analysis.Record {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return analysis.Record{
			Point:     scanner.InjectionPoint{File: fmt.Sprintf("f%d.py", idx), Line: idx},
			FaultType: "T",
		}
	}
}

func runAndCollect(t *testing.T, ex Executor, n int, exp Experiment) []analysis.Record {
	t.Helper()
	col := NewCollect(n)
	if err := ex.Run(context.Background(), n, exp, col); err != nil {
		t.Fatalf("%s: %v", ex.Name(), err)
	}
	return col.Records()
}

func TestExecutorsProduceIdenticalOrderedRecords(t *testing.T) {
	const n = 37
	var active, peak atomic.Int64
	exp := testExp(&active, &peak)
	want := runAndCollect(t, Local{Workers: 3}, n, exp)
	for i, rec := range want {
		if rec.Point.Line != i {
			t.Fatalf("record %d out of plan order: %+v", i, rec.Point)
		}
	}
	executors := []Executor{
		Local{},
		Local{Workers: 16},
		Sharded{Shards: 1},
		Sharded{Shards: 2, Workers: 3},
		Sharded{Shards: 5},
		Sharded{Shards: 16, Workers: 2},
		Sharded{Shards: 64}, // more shards than experiments
	}
	for _, ex := range executors {
		got := runAndCollect(t, ex, n, exp)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: records differ from Local baseline", ex.Name())
		}
	}
}

func TestLocalBoundsParallelism(t *testing.T) {
	var active, peak atomic.Int64
	runAndCollect(t, Local{Workers: 3}, 24, testExp(&active, &peak))
	if p := peak.Load(); p > 3 {
		t.Errorf("peak parallelism = %d, want <= 3", p)
	}
}

func TestShardedBoundsParallelism(t *testing.T) {
	var active, peak atomic.Int64
	runAndCollect(t, Sharded{Shards: 3, Workers: 2}, 24, testExp(&active, &peak))
	if p := peak.Load(); p > 6 {
		t.Errorf("peak parallelism = %d, want <= shards*workers = 6", p)
	}
}

func TestShardPartitionCoversPlan(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 37} {
		for shards := 1; shards <= 9; shards++ {
			next := 0
			for i := 0; i < shards; i++ {
				lo, hi := Shard(n, shards, i)
				if lo != next {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, i, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d empty-inverted [%d,%d)", n, shards, i, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: partition ends at %d", n, shards, next)
			}
		}
	}
}

func TestShardedReportsPerShardProgress(t *testing.T) {
	const n, shards = 20, 4
	var mu sync.Mutex
	final := map[int]ShardProgress{}
	ex := Sharded{Shards: shards, OnShard: func(p ShardProgress) {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := final[p.Shard]; ok && p.Done != prev.Done+1 {
			t.Errorf("shard %d progress jumped %d -> %d", p.Shard, prev.Done, p.Done)
		}
		final[p.Shard] = p
	}}
	var active, peak atomic.Int64
	runAndCollect(t, ex, n, testExp(&active, &peak))
	if len(final) != shards {
		t.Fatalf("progress from %d shards, want %d", len(final), shards)
	}
	sum := 0
	for si, p := range final {
		lo, hi := Shard(n, shards, si)
		if p.Done != p.Total || p.Total != hi-lo {
			t.Errorf("shard %d final progress %+v, want done == total == %d", si, p, hi-lo)
		}
		sum += p.Done
	}
	if sum != n {
		t.Errorf("shard progress sums to %d, want %d", sum, n)
	}
}

func TestSinkReceivesEveryIndexExactlyOnce(t *testing.T) {
	const n = 29
	seen := map[int]int{}
	sink := SinkFunc(func(idx int, rec analysis.Record) { seen[idx]++ })
	var active, peak atomic.Int64
	if err := (Sharded{Shards: 3, Workers: 2}).Run(context.Background(), n, testExp(&active, &peak), sink); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("sink saw %d distinct indices, want %d", len(seen), n)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("index %d delivered %d times", idx, c)
		}
	}
}

func TestMultiFansOutInOrder(t *testing.T) {
	var order []string
	a := SinkFunc(func(idx int, rec analysis.Record) { order = append(order, fmt.Sprintf("a%d", idx)) })
	b := SinkFunc(func(idx int, rec analysis.Record) { order = append(order, fmt.Sprintf("b%d", idx)) })
	m := Multi(a, nil, b)
	m.Put(1, analysis.Record{})
	m.Put(2, analysis.Record{})
	want := []string{"a1", "b1", "a2", "b2"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("fan-out order = %v, want %v", order, want)
	}
}

func TestRunZeroExperiments(t *testing.T) {
	for _, ex := range []Executor{Local{Workers: 4}, Sharded{Shards: 4}} {
		called := false
		err := ex.Run(context.Background(), 0, func(int) analysis.Record {
			called = true
			return analysis.Record{}
		}, SinkFunc(func(int, analysis.Record) { called = true }))
		if err != nil || called {
			t.Errorf("%s: n=0 must be a no-op (err=%v called=%v)", ex.Name(), err, called)
		}
	}
}

// TestOrderHookReordersExecutionNotRecords: the site-aware Order hook
// permutes execution within a pool's range, but delivery stays
// exactly-once and records land at their plan indices — byte-identical
// to an unordered run.
func TestOrderHookReordersExecutionNotRecords(t *testing.T) {
	const n = 23
	var active, peak atomic.Int64
	exp := testExp(&active, &peak)
	want := runAndCollect(t, Local{Workers: 2}, n, exp)

	reverse := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := hi - 1; i >= lo; i-- {
			out = append(out, i)
		}
		return out
	}
	executors := []Executor{
		Local{Order: reverse},
		Local{Workers: 4, Order: reverse},
		Sharded{Shards: 3, Workers: 2, Order: reverse},
	}
	for _, ex := range executors {
		got := runAndCollect(t, ex, n, exp)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s with Order hook: records differ from unordered run", ex.Name())
		}
	}

	// Sequential path: the hook's order is the execution order.
	var seen []int
	_ = Local{Order: reverse}.Run(context.Background(), n, func(idx int) analysis.Record {
		seen = append(seen, idx)
		return analysis.Record{}
	}, SinkFunc(func(int, analysis.Record) {}))
	if seen[0] != n-1 || seen[len(seen)-1] != 0 {
		t.Errorf("sequential execution order = %v, want descending", seen)
	}
}

// TestOrderHookValidatesDefensively: a buggy Order hook — duplicates,
// out-of-range entries, missing indices, skip-masked indices — cannot
// break the exactly-once contract.
func TestOrderHookValidatesDefensively(t *testing.T) {
	skip := NewMask(10)
	skip.Set(4)
	bogus := func(lo, hi int) []int {
		// Duplicates, out-of-range values, the masked index, and only
		// part of the range.
		return []int{7, 7, -3, 99, 4, 2}
	}
	got := poolOrder(0, 10, skip, bogus)
	want := []int{7, 2, 0, 1, 3, 5, 6, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("poolOrder = %v, want %v", got, want)
	}

	var mu sync.Mutex
	counts := make(map[int]int)
	ex := Local{Workers: 3, Skip: skip, Order: bogus}
	_ = ex.Run(context.Background(), 10, func(idx int) analysis.Record {
		mu.Lock()
		counts[idx]++
		mu.Unlock()
		return analysis.Record{}
	}, SinkFunc(func(int, analysis.Record) {}))
	for i := 0; i < 10; i++ {
		want := 1
		if i == 4 {
			want = 0 // masked
		}
		if counts[i] != want {
			t.Errorf("index %d executed %d times, want %d", i, counts[i], want)
		}
	}
}
