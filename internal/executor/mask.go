package executor

// Mask is a completion bitmap over a campaign's plan indices: bit i set
// means experiment i already has a durable record and must not be
// re-executed. Engines treat a set bit as "skip": the record was (or
// will be) replayed into the sinks by the campaign workflow, so the
// engine neither runs the experiment nor emits anything for it.
//
// A nil *Mask is valid and empty. Set is not safe for concurrent use;
// populate the mask before handing it to an engine, after which it is
// read-only.
type Mask struct {
	bits  []uint64
	n     int
	count int
}

// NewMask builds an empty mask over n plan indices.
func NewMask(n int) *Mask {
	return &Mask{bits: make([]uint64, (n+63)/64), n: n}
}

// Set marks index i complete. Out-of-range indices are ignored;
// setting a set bit is a no-op.
func (m *Mask) Set(i int) {
	if m == nil || i < 0 || i >= m.n || m.Has(i) {
		return
	}
	m.bits[i>>6] |= 1 << (uint(i) & 63)
	m.count++
}

// Has reports whether index i is marked complete.
func (m *Mask) Has(i int) bool {
	if m == nil || i < 0 || i >= m.n {
		return false
	}
	return m.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (m *Mask) Count() int {
	if m == nil {
		return 0
	}
	return m.count
}

// Len returns the mask's index range.
func (m *Mask) Len() int {
	if m == nil {
		return 0
	}
	return m.n
}
