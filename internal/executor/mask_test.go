package executor

import (
	"context"
	"sync/atomic"
	"testing"

	"profipy/internal/analysis"
	"profipy/internal/scanner"
)

func TestMaskSemantics(t *testing.T) {
	var nilMask *Mask
	if nilMask.Has(0) || nilMask.Count() != 0 || nilMask.Len() != 0 {
		t.Fatal("nil mask is not empty")
	}
	nilMask.Set(3) // must not panic

	m := NewMask(130)
	for _, i := range []int{0, 63, 64, 129} {
		m.Set(i)
	}
	m.Set(63)   // idempotent
	m.Set(-1)   // out of range
	m.Set(130)  // out of range
	m.Set(1000) // out of range
	if m.Count() != 4 {
		t.Fatalf("count = %d, want 4", m.Count())
	}
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 63 || i == 64 || i == 129
		if m.Has(i) != want {
			t.Fatalf("Has(%d) = %v, want %v", i, m.Has(i), want)
		}
	}
	if m.Has(-1) || m.Has(130) {
		t.Fatal("out-of-range Has reported true")
	}
	if m.Len() != 130 {
		t.Fatalf("len = %d, want 130", m.Len())
	}
}

// TestSkipMaskedIndicesNotExecuted drives every engine with a skip mask
// and asserts the masked experiments neither run nor emit, while the
// missing ones produce exactly the records an unmasked run would.
func TestSkipMaskedIndicesNotExecuted(t *testing.T) {
	const n = 41
	skip := NewMask(n)
	for i := 0; i < n; i += 3 {
		skip.Set(i)
	}
	engines := []Executor{
		Local{Skip: skip},
		Local{Workers: 4, Skip: skip},
		Sharded{Shards: 4, Workers: 2, Skip: skip},
		Sharded{Shards: 7, Skip: skip},
		&Remote{LocalWorkers: 3, Skip: skip}, // Coord==nil: local degradation path
	}
	for _, ex := range engines {
		var executed atomic.Int64
		var emitted atomic.Int64
		exp := func(idx int) analysis.Record {
			if skip.Has(idx) {
				t.Errorf("%s: executed masked index %d", ex.Name(), idx)
			}
			executed.Add(1)
			return analysis.Record{Point: scanner.InjectionPoint{Line: idx}}
		}
		col := NewCollect(n)
		sink := SinkFunc(func(idx int, rec analysis.Record) {
			emitted.Add(1)
			col.Put(idx, rec)
		})
		if err := ex.Run(context.Background(), n, exp, sink); err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
		wantRun := int64(n - skip.Count())
		if executed.Load() != wantRun || emitted.Load() != wantRun {
			t.Fatalf("%s: executed=%d emitted=%d, want %d",
				ex.Name(), executed.Load(), emitted.Load(), wantRun)
		}
		for i, rec := range col.Records() {
			if skip.Has(i) {
				if rec.Point.Line != 0 {
					t.Fatalf("%s: masked index %d got a record", ex.Name(), i)
				}
				continue
			}
			if rec.Point.Line != i {
				t.Fatalf("%s: record %d = %+v", ex.Name(), i, rec.Point)
			}
		}
	}
}

// TestSkipAllIndices covers the fully-replayed resume: nothing left to
// execute, Run returns without ever calling the experiment.
func TestSkipAllIndices(t *testing.T) {
	const n = 9
	skip := NewMask(n)
	for i := 0; i < n; i++ {
		skip.Set(i)
	}
	for _, ex := range []Executor{Local{Skip: skip}, Sharded{Shards: 3, Skip: skip}} {
		exp := func(idx int) analysis.Record {
			t.Fatalf("%s: executed index %d of a fully-masked plan", ex.Name(), idx)
			return analysis.Record{}
		}
		if err := ex.Run(context.Background(), n, exp, SinkFunc(func(int, analysis.Record) {
			t.Fatalf("%s: emitted a record for a fully-masked plan", ex.Name())
		})); err != nil {
			t.Fatal(err)
		}
	}
}
