package executor

import (
	"time"

	"profipy/internal/analysis"
	"profipy/internal/obs"
)

// emetrics instruments one engine's Run: completed records and
// experiment latency (both hot-path, resolved to atomic children once
// per Run), busy-worker gauge for utilization, and shard wall time.
// A nil *emetrics is valid and inert.
type emetrics struct {
	records *obs.Counter
	expDur  *obs.Histogram
	busy    *obs.Gauge
	shardH  *obs.Histogram
}

// expDurBuckets resolve the sub-millisecond experiments the compiled
// interpreter produces up to multi-second stragglers.
var expDurBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5}

// newMetrics resolves the hot-path vec children once per Run. engine is
// the interpretation engine the experiments execute on ("bytecode",
// "closure" or "tree-walk"; empty normalizes to the bytecode default),
// executor the engine-agnostic scheduler identity (Name()).
func newMetrics(reg *obs.Registry, engine, executor string) *emetrics {
	if reg == nil {
		return nil
	}
	if engine == "" {
		engine = "bytecode"
	}
	return &emetrics{
		records: reg.CounterVec("profipy_executor_records_total",
			"Experiment records delivered to the sink, by interpretation engine and executor.", "engine", "executor").With(engine, executor),
		expDur: reg.HistogramVec("profipy_executor_experiment_seconds",
			"Wall-clock latency of one experiment, by interpretation engine and executor.", expDurBuckets, "engine", "executor").With(engine, executor),
		busy: reg.Gauge("profipy_executor_workers_busy",
			"Workers currently inside an experiment (utilization numerator)."),
		shardH: reg.Histogram("profipy_executor_shard_seconds",
			"Wall-clock execution time of one shard.", nil),
	}
}

// instrument wraps an Experiment with busy-gauge and latency
// accounting; the no-metrics path returns exp untouched so the hot
// loop pays nothing.
func (m *emetrics) instrument(exp Experiment) Experiment {
	if m == nil {
		return exp
	}
	return func(idx int) analysis.Record {
		m.busy.Inc()
		start := time.Now()
		rec := exp(idx)
		m.expDur.ObserveSince(start)
		m.busy.Dec()
		return rec
	}
}

// record counts one delivered record.
func (m *emetrics) record() {
	if m != nil {
		m.records.Inc()
	}
}

// shard records one shard's wall time.
func (m *emetrics) shard(d time.Duration) {
	if m != nil {
		m.shardH.Observe(d.Seconds())
	}
}
