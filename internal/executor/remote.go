package executor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/fleet"
	"profipy/internal/obs"
	"profipy/internal/remote"
	"profipy/internal/scanner"
)

// Remote executes a campaign's experiments on a fleet of remote
// workers coordinated by fleet.Coordinator: the plan is cut into the
// same deterministic contiguous shards Sharded uses, workers pull
// shard leases over HTTP, execute them against their own rebuilt
// campaign Runner and stream records back; Run drains the job's
// deduplicated delivery channel as the single sink goroutine.
//
// Robustness is the point of this engine, not raw parallelism:
//   - a worker that dies mid-shard stops heartbeating, its lease
//     expires and the shard is re-dispatched (or claimed locally);
//   - record ingestion is idempotent per plan index, so overlapping
//     executions after a re-dispatch cannot duplicate records;
//   - with no live workers at all, Run degrades to in-process
//     execution of the pending shards — a fleet of zero is just Local
//     with extra bookkeeping.
//
// Because experiment seeds derive from plan indices, records are
// byte-identical to Local's at any worker count, through any number of
// mid-shard failures.
type Remote struct {
	// Coord is the fleet coordinator; nil degrades Run to pure local
	// execution.
	Coord *fleet.Coordinator
	// CampaignID keys the job, leases and record streams; the SaaS
	// layer sets it to the campaign's public ID.
	CampaignID string
	// Spec is the serialized campaign the workers rebuild. The plan
	// fields (Covered, PlanHash, NumExperiments) are completed by
	// SetPlanContext once the control-plane scan/coverage phases ran.
	Spec remote.CampaignSpec
	// Shards is the number of lease units (default 8). More shards
	// mean finer re-dispatch granularity after a worker failure.
	Shards int
	// LocalWorkers bounds parallelism of locally executed fallback
	// shards (<1 runs sequentially).
	LocalWorkers int
	// WaitForWorkers keeps pending shards reserved for the fleet even
	// while no worker is live (they would otherwise be claimed locally
	// after one sweep interval). Leases still expire and re-dispatch;
	// use it when workers are known to be coming.
	WaitForWorkers bool
	// Skip marks already-recorded plan indices of a resumed campaign:
	// they are pre-marked delivered on the fleet job (so neither workers
	// nor the local fallback produce records for them) and fully-covered
	// shards complete without ever being leased.
	Skip *Mask
	// Reg, when set, instruments the run like the other engines.
	Reg *obs.Registry
	// VM labels the interpretation engine in metrics; see Local.VM.
	VM string

	// mu guards the kind counters: written by Run's drain loop, read
	// by the campaign (Counts) after Run returns.
	mu       sync.Mutex
	mutated  int
	injected int
}

// Name implements Executor.
func (r *Remote) Name() string { return fmt.Sprintf("remote(%d shards)", r.shards()) }

func (r *Remote) shards() int {
	if r.Shards < 1 {
		return 8
	}
	return r.Shards
}

// SetPlanContext completes the campaign spec with the control plane's
// resolved plan: the coverage verdicts and the post-reduction exec
// points (hashed so workers can detect divergence). The campaign
// workflow calls this after its coverage phase, before Run.
func (r *Remote) SetPlanContext(covered map[string]bool, points []scanner.InjectionPoint) {
	r.Spec.Covered = covered
	r.Spec.PlanHash = remote.PlanHash(points)
	r.Spec.NumExperiments = len(points)
}

// Counts reports how many remotely executed experiments ran the
// compile-time mutation path and the runtime injection path, as
// accounted from the record envelopes workers shipped. Local fallback
// shards are excluded — the in-process Runner counts those itself.
func (r *Remote) Counts() (mutated, injected int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mutated, r.injected
}

// Run implements Executor. It opens a fleet job for the campaign,
// lets workers drain it via leases, claims shards back for local
// execution when the fleet is idle, and forwards every deduplicated
// delivery to sink. Run always delivers n records: on cancellation the
// remaining shards are revoked and executed locally, where exp returns
// stub records.
func (r *Remote) Run(ctx context.Context, n int, exp Experiment, sink RecordSink) error {
	if n == 0 {
		return nil
	}
	m := newMetrics(r.Reg, r.VM, "remote")
	exp = m.instrument(exp)
	if r.Coord == nil {
		// No coordinator: behave exactly like Local.
		runPool(0, n, r.LocalWorkers, r.Skip, nil, exp, func(rec indexed) {
			m.record()
			sink.Put(rec.idx, rec.rec)
		})
		return nil
	}

	shards := r.shards()
	if shards > n {
		shards = n
	}
	ranges := make([][2]int, shards)
	for i := 0; i < shards; i++ {
		lo, hi := Shard(n, shards, i)
		ranges[i] = [2]int{lo, hi}
	}
	campID := r.CampaignID
	if campID == "" {
		campID = r.Spec.Name
	}
	job := r.Coord.StartJob(campID, r.Spec, n, ranges)
	defer r.Coord.CloseJob(campID)
	if r.Skip.Count() > 0 {
		// Resumed campaign: retire the already-recorded indices before
		// anything executes. Shards they fully cover complete without a
		// lease; partially-covered shards still run whole on a worker,
		// whose duplicate records the per-index dedup discards.
		r.Coord.PredeliverJob(campID, r.Skip.Has)
	}

	// Local fallback executor: claims unfinished shards off the fleet
	// and runs them in-process, delivering through the same dedup path
	// as remote ingestion. It runs whenever the fleet cannot make
	// progress — no live workers (unless WaitForWorkers), or the
	// context was canceled and the remaining indices must drain as
	// stubs.
	var wg sync.WaitGroup
	localShard := func(lo, hi int) {
		defer wg.Done()
		runPool(lo, hi, r.LocalWorkers, r.Skip, nil, func(i int) analysis.Record {
			if job.IsDelivered(i) {
				// Another executor already delivered this index (a
				// worker finished it before losing its lease); the
				// duplicate run is skipped and its stub discarded by
				// the dedup below.
				return analysis.Record{}
			}
			return exp(i)
		}, func(rec indexed) {
			job.Deliver(rec.idx, remote.KindLocal, rec.rec)
		})
	}

	sweep := r.Coord.LeaseTTL() / 4
	if sweep < 10*time.Millisecond {
		sweep = 10 * time.Millisecond
	}
	ticker := time.NewTicker(sweep)
	defer ticker.Stop()

	// Graceful degradation, eagerly: with no live worker at Run time
	// (and none expected), the whole plan executes in-process straight
	// away instead of waiting out a sweep interval per shard.
	if !r.WaitForWorkers && r.Coord.LiveWorkers() == 0 {
		for {
			lo, hi, ok := job.ClaimLocal(false)
			if !ok {
				break
			}
			wg.Add(1)
			go localShard(lo, hi)
		}
	}

	canceled := false
	ctxDone := ctx.Done()
	deliveries := job.Deliveries()
	for {
		select {
		case d, ok := <-deliveries:
			if !ok {
				wg.Wait()
				return nil
			}
			m.record()
			r.account(d.Kind)
			sink.Put(d.Idx, d.Rec)
		case <-ctxDone:
			// Fires once (then nil-ed out so the select doesn't spin on
			// the closed channel): revoke every unfinished shard (leased
			// or pending) and drain it locally — exp observes the
			// canceled context and returns stub records, so Run still
			// delivers all n.
			ctxDone = nil
			canceled = true
			for {
				lo, hi, ok := job.ClaimLocal(true)
				if !ok {
					break
				}
				wg.Add(1)
				go localShard(lo, hi)
			}
		case <-ticker.C:
			r.Coord.Sweep()
			if canceled {
				continue
			}
			if r.Coord.LiveWorkers() == 0 && !r.WaitForWorkers {
				// Graceful degradation: nobody is pulling leases, so
				// take one pending shard in-process per sweep tick.
				if lo, hi, ok := job.ClaimLocal(false); ok {
					wg.Add(1)
					go localShard(lo, hi)
				}
			}
		}
	}
}

// account tallies experiment path kinds from record envelopes. Local
// fallback deliveries carry KindLocal and are counted by the campaign's
// own Runner instead.
func (r *Remote) account(kind string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch kind {
	case remote.KindMutated:
		r.mutated++
	case remote.KindInjected:
		r.injected++
	}
}
