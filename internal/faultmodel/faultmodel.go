// Package faultmodel manages bug specifications and fault models: named
// collections of DSL specs that can be saved and imported as JSON (§IV-A),
// plus the predefined fault models derived from previous fault injection
// studies (G-SWFIT [14] and the exception/resource fault types of §III).
package faultmodel

import (
	"encoding/json"
	"fmt"
	"sort"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
	"profipy/internal/runtimefault"
)

// Spec is one bug specification: a named DSL text with a fault-type
// label used to group experiments in reports. A compile-time spec is
// the paper's `change{}into{}` mutation; a runtime spec pairs the
// `change{}` site pattern with a trigger/action clause and injects
// while the program runs instead of mutating source. The trigger and
// action can be written either as DSL clauses (`change{} trigger{}
// action{}`) or through the Trigger/Action fields — the faultload
// fields the SaaS API and CLI expose — but not both.
type Spec struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Doc  string `json:"doc,omitempty"`
	DSL  string `json:"dsl"`
	// Trigger and Action turn the spec into a runtime fault without DSL
	// clauses: Trigger is e.g. "always", "prob(0.25)", "every(3)",
	// "after(5)" or "round(2)" (empty with a non-empty Action defaults
	// to "always"); Action is e.g. "raise(IOError, \"msg\")",
	// "corrupt(bitflip|offbyone|null)" or "delay(500ms)".
	Trigger string `json:"trigger,omitempty"`
	Action  string `json:"action,omitempty"`
}

// Compile compiles the spec's DSL into a meta-model.
func (s Spec) Compile() (*pattern.MetaModel, error) {
	if s.Trigger != "" || s.Action != "" {
		return nil, fmt.Errorf("faultmodel: spec %q: runtime trigger/action spec where a compile-time spec is required", s.Name)
	}
	return dsl.Compile(s.Name, s.DSL)
}

// CompileFull compiles the spec into its full form, resolving the
// trigger/action fields against any DSL clauses (the two sources are
// mutually exclusive).
func (s Spec) CompileFull() (*dsl.CompiledSpec, error) {
	cs, err := dsl.CompileFull(s.Name, s.DSL)
	if err != nil {
		return nil, err
	}
	if s.Trigger == "" && s.Action == "" {
		if cs.SiteOnly {
			return nil, fmt.Errorf("faultmodel: spec %q: site-only change block needs trigger/action fields or DSL blocks", s.Name)
		}
		return cs, nil
	}
	if cs.Runtime != nil {
		return nil, fmt.Errorf("faultmodel: spec %q: trigger/action given both as DSL clauses and as spec fields", s.Name)
	}
	if !cs.SiteOnly {
		// The spec wrote an into{} replacement AND trigger/action
		// fields; honoring the fields would silently discard the
		// mutation the user wrote.
		return nil, fmt.Errorf("faultmodel: spec %q: trigger/action fields require a site-only change block, not change{}into{}", s.Name)
	}
	if s.Action == "" {
		return nil, fmt.Errorf("faultmodel: spec %q: trigger field without an action field", s.Name)
	}
	rf, err := runtimefault.NewFault(s.Name, s.Trigger, s.Action)
	if err != nil {
		return nil, fmt.Errorf("faultmodel: spec %q: %w", s.Name, err)
	}
	cs.Runtime = rf
	return cs, nil
}

// IsRuntime reports whether the spec is a runtime trigger/action spec,
// from the spec fields and the DSL's section structure alone (no
// pattern compilation). Malformed specs report false; CompileFull
// surfaces their errors.
func (s Spec) IsRuntime() bool {
	return s.Trigger != "" || s.Action != "" || dsl.HasRuntimeClauses(s.DSL)
}

// CompileSplit compiles a faultload in one pass, failing on the first
// bad spec, and splits it into its execution forms: the site
// meta-models of every spec in faultload order (what the scanner
// matches — compile-time specs carry their replacement, runtime specs
// scan-only) and the runtime injector faults keyed by spec name (site
// selectors empty: campaigns bind them per injection point).
func CompileSplit(specs []Spec) ([]*pattern.MetaModel, map[string]*runtimefault.Fault, error) {
	models := make([]*pattern.MetaModel, 0, len(specs))
	runtime := make(map[string]*runtimefault.Fault)
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, nil, fmt.Errorf("faultmodel: spec with empty name")
		}
		if seen[s.Name] {
			return nil, nil, fmt.Errorf("faultmodel: duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		cs, err := s.CompileFull()
		if err != nil {
			return nil, nil, err
		}
		models = append(models, cs.Model)
		if cs.Runtime != nil {
			runtime[s.Name] = cs.Runtime
		}
	}
	return models, runtime, nil
}

// CompileAll compiles a faultload, returning the scanner-facing site
// meta-models (see CompileSplit).
func CompileAll(specs []Spec) ([]*pattern.MetaModel, error) {
	models, _, err := CompileSplit(specs)
	return models, err
}

// CompileRuntime compiles the runtime specs of a faultload into
// injector faults keyed by spec name (compile-time specs are skipped).
func CompileRuntime(specs []Spec) (map[string]*runtimefault.Fault, error) {
	_, runtime, err := CompileSplit(specs)
	return runtime, err
}

// Model is a named fault model: a set of specs with documentation.
type Model struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Specs       []Spec `json:"specs"`
}

// Validate compiles every spec in the model.
func (m *Model) Validate() error {
	_, err := CompileAll(m.Specs)
	return err
}

// Save serializes the model to JSON (the format users save and import
// across campaigns).
func (m *Model) Save() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Load parses a model from JSON and validates it.
func Load(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("faultmodel: parse model: %w", err)
	}
	if m.Name == "" {
		return nil, fmt.Errorf("faultmodel: model has no name")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Registry holds named fault models.
type Registry struct {
	models map[string]*Model
}

// NewRegistry creates a registry preloaded with the predefined models.
func NewRegistry() *Registry {
	r := &Registry{models: make(map[string]*Model)}
	r.Register(GSWFIT())
	r.Register(Extras())
	r.Register(Runtime())
	return r
}

// Register adds or replaces a model.
func (r *Registry) Register(m *Model) { r.models[m.Name] = m }

// Get looks a model up by name.
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := r.models[name]
	return m, ok
}

// Names lists registered model names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
