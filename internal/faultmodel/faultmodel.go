// Package faultmodel manages bug specifications and fault models: named
// collections of DSL specs that can be saved and imported as JSON (§IV-A),
// plus the predefined fault models derived from previous fault injection
// studies (G-SWFIT [14] and the exception/resource fault types of §III).
package faultmodel

import (
	"encoding/json"
	"fmt"
	"sort"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
)

// Spec is one bug specification: a named `change{}into{}` DSL text with a
// fault-type label used to group experiments in reports.
type Spec struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Doc  string `json:"doc,omitempty"`
	DSL  string `json:"dsl"`
}

// Compile compiles the spec's DSL into a meta-model.
func (s Spec) Compile() (*pattern.MetaModel, error) {
	return dsl.Compile(s.Name, s.DSL)
}

// CompileAll compiles a faultload, failing on the first bad spec.
func CompileAll(specs []Spec) ([]*pattern.MetaModel, error) {
	out := make([]*pattern.MetaModel, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("faultmodel: spec with empty name")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("faultmodel: duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		mm, err := s.Compile()
		if err != nil {
			return nil, err
		}
		out = append(out, mm)
	}
	return out, nil
}

// Model is a named fault model: a set of specs with documentation.
type Model struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Specs       []Spec `json:"specs"`
}

// Validate compiles every spec in the model.
func (m *Model) Validate() error {
	_, err := CompileAll(m.Specs)
	return err
}

// Save serializes the model to JSON (the format users save and import
// across campaigns).
func (m *Model) Save() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Load parses a model from JSON and validates it.
func Load(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("faultmodel: parse model: %w", err)
	}
	if m.Name == "" {
		return nil, fmt.Errorf("faultmodel: model has no name")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Registry holds named fault models.
type Registry struct {
	models map[string]*Model
}

// NewRegistry creates a registry preloaded with the predefined models.
func NewRegistry() *Registry {
	r := &Registry{models: make(map[string]*Model)}
	r.Register(GSWFIT())
	r.Register(Extras())
	return r
}

// Register adds or replaces a model.
func (r *Registry) Register(m *Model) { r.models[m.Name] = m }

// Get looks a model up by name.
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := r.models[name]
	return m, ok
}

// Names lists registered model names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
