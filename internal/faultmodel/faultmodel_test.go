package faultmodel

import (
	"strings"
	"testing"
)

func TestPredefinedModelsCompile(t *testing.T) {
	for _, m := range []*Model{GSWFIT(), Extras(), Runtime()} {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s does not compile: %v", m.Name, err)
		}
	}
}

// TestRuntimeModelIsRuntime asserts every spec of the predefined
// runtime model compiles to a trigger/action fault.
func TestRuntimeModelIsRuntime(t *testing.T) {
	m := Runtime()
	faults, err := CompileRuntime(m.Specs)
	if err != nil {
		t.Fatalf("CompileRuntime: %v", err)
	}
	if len(faults) != len(m.Specs) {
		t.Fatalf("runtime model compiled to %d faults, want %d", len(faults), len(m.Specs))
	}
	for _, s := range m.Specs {
		if !s.IsRuntime() {
			t.Errorf("spec %s should report IsRuntime", s.Name)
		}
		if faults[s.Name].Name != s.Name {
			t.Errorf("fault name %q does not match spec %q", faults[s.Name].Name, s.Name)
		}
	}
}

// TestSpecTriggerActionFields covers the non-DSL spelling of runtime
// specs: Trigger/Action fields over a site-only change block.
func TestSpecTriggerActionFields(t *testing.T) {
	s := Spec{Name: "f", DSL: "change { $CALL{name=*}(...) }", Trigger: "every(2)", Action: "delay(5s)"}
	cs, err := s.CompileFull()
	if err != nil {
		t.Fatalf("CompileFull: %v", err)
	}
	if cs.Runtime == nil || cs.Runtime.When.K != 2 || cs.Runtime.Do.DelayNS != 5_000_000_000 {
		t.Fatalf("compiled fault = %+v", cs.Runtime)
	}
	// Action without trigger defaults to always.
	s2 := Spec{Name: "g", DSL: "change { f() }", Action: "corrupt(null)"}
	cs2, err := s2.CompileFull()
	if err != nil {
		t.Fatalf("CompileFull: %v", err)
	}
	if cs2.Runtime == nil || cs2.Runtime.When.Mode != "always" {
		t.Fatalf("default trigger = %+v", cs2.Runtime)
	}
	// Invalid combinations.
	for name, bad := range map[string]Spec{
		"fields and clauses": {Name: "b1", DSL: "change { f() } trigger { always } action { raise(E) }", Action: "corrupt(null)"},
		"trigger only":       {Name: "b2", DSL: "change { f() }", Trigger: "always"},
		"site-only bare":     {Name: "b3", DSL: "change { f() }"},
		"bad trigger field":  {Name: "b4", DSL: "change { f() }", Trigger: "sometimes", Action: "corrupt(null)"},
		"bad action field":   {Name: "b5", DSL: "change { f() }", Action: "explode"},
		// Fields over a change{}into{} spec would silently discard the
		// written mutation, so they are rejected.
		"fields with into": {Name: "b6", DSL: "change { f() } into { g() }", Action: "delay(5s)"},
	} {
		if _, err := bad.CompileFull(); err == nil {
			t.Errorf("%s: CompileFull should fail", name)
		}
	}
	// Compile (the compile-time entry point) rejects runtime specs.
	if _, err := s.Compile(); err == nil {
		t.Error("Compile should reject a runtime spec")
	}
}

func TestGSWFITHasCoreFaultTypes(t *testing.T) {
	m := GSWFIT()
	want := []string{"MFC", "MIFS", "MIA", "MIEB", "MLAC", "MLOC", "WVAV", "MVIV", "WPFV", "WAEP"}
	have := map[string]bool{}
	for _, s := range m.Specs {
		have[s.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("G-SWFIT model missing fault type %s", name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := GSWFIT()
	data, err := m.Save()
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m2.Name != m.Name || len(m2.Specs) != len(m.Specs) {
		t.Fatalf("round trip mismatch: %s/%d vs %s/%d", m2.Name, len(m2.Specs), m.Name, len(m.Specs))
	}
}

func TestLoadRejectsBadModels(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"bad json", `{not json`},
		{"no name", `{"specs":[]}`},
		{"bad spec", `{"name":"x","specs":[{"name":"s","dsl":"change { $BOGUS } into { }"}]}`},
	}
	for _, tc := range tests {
		if _, err := Load([]byte(tc.data)); err == nil {
			t.Errorf("%s: Load should fail", tc.name)
		}
	}
}

func TestCompileAllRejectsDuplicatesAndEmpty(t *testing.T) {
	specs := []Spec{
		{Name: "a", DSL: "change { f() } into { }"},
		{Name: "a", DSL: "change { g() } into { }"},
	}
	if _, err := CompileAll(specs); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate error", err)
	}
	if _, err := CompileAll([]Spec{{Name: "", DSL: "change { f() } into { }"}}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) < 2 {
		t.Fatalf("registry names = %v, want gswfit and extras", names)
	}
	if _, ok := r.Get("gswfit"); !ok {
		t.Error("gswfit not registered")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("unexpected model")
	}
	r.Register(&Model{Name: "custom", Specs: nil})
	if _, ok := r.Get("custom"); !ok {
		t.Error("custom model not registered")
	}
}
