package faultmodel

import (
	"strings"
	"testing"
)

func TestPredefinedModelsCompile(t *testing.T) {
	for _, m := range []*Model{GSWFIT(), Extras()} {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s does not compile: %v", m.Name, err)
		}
	}
}

func TestGSWFITHasCoreFaultTypes(t *testing.T) {
	m := GSWFIT()
	want := []string{"MFC", "MIFS", "MIA", "MIEB", "MLAC", "MLOC", "WVAV", "MVIV", "WPFV", "WAEP"}
	have := map[string]bool{}
	for _, s := range m.Specs {
		have[s.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("G-SWFIT model missing fault type %s", name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := GSWFIT()
	data, err := m.Save()
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m2.Name != m.Name || len(m2.Specs) != len(m.Specs) {
		t.Fatalf("round trip mismatch: %s/%d vs %s/%d", m2.Name, len(m2.Specs), m.Name, len(m.Specs))
	}
}

func TestLoadRejectsBadModels(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"bad json", `{not json`},
		{"no name", `{"specs":[]}`},
		{"bad spec", `{"name":"x","specs":[{"name":"s","dsl":"change { $BOGUS } into { }"}]}`},
	}
	for _, tc := range tests {
		if _, err := Load([]byte(tc.data)); err == nil {
			t.Errorf("%s: Load should fail", tc.name)
		}
	}
}

func TestCompileAllRejectsDuplicatesAndEmpty(t *testing.T) {
	specs := []Spec{
		{Name: "a", DSL: "change { f() } into { }"},
		{Name: "a", DSL: "change { g() } into { }"},
	}
	if _, err := CompileAll(specs); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate error", err)
	}
	if _, err := CompileAll([]Spec{{Name: "", DSL: "change { f() } into { }"}}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) < 2 {
		t.Fatalf("registry names = %v, want gswfit and extras", names)
	}
	if _, ok := r.Get("gswfit"); !ok {
		t.Error("gswfit not registered")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("unexpected model")
	}
	r.Register(&Model{Name: "custom", Specs: nil})
	if _, ok := r.Get("custom"); !ok {
		t.Error("custom model not registered")
	}
}
