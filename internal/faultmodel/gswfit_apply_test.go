package faultmodel_test

import (
	"strings"
	"testing"

	"profipy/internal/faultmodel"
	"profipy/internal/mutator"
	"profipy/internal/pattern"
	"profipy/internal/scanner"
)

// A target exercising every G-SWFIT fault type at least once.
const gswfitTarget = `package svc

func Process(items []string, node string, limit int) {
	state := openState()
	record(state, node)
	closeState(state)

	if node != "" {
		audit(node)
	}

	if limit > 0 {
		shrink(limit)
	} else {
		grow(limit)
	}

	if node != "" && limit > 0 {
		refresh(node)
	}

	if node == "" || limit < 0 {
		reject(node)
	}

	mode := "fast"
	mode = "slow-path"
	submit(node, mode, 42)
}
`

func scanWith(t *testing.T, specName string) (*pattern.MetaModel, []scanner.InjectionPoint) {
	t.Helper()
	model := faultmodel.GSWFIT()
	var spec faultmodel.Spec
	for _, s := range model.Specs {
		if s.Name == specName {
			spec = s
		}
	}
	if spec.Name == "" {
		t.Fatalf("spec %s not in gswfit model", specName)
	}
	mm, err := spec.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", specName, err)
	}
	pts, err := scanner.ScanSource("svc.go", []byte(gswfitTarget), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return mm, pts
}

func applyFirst(t *testing.T, specName string) string {
	t.Helper()
	mm, pts := scanWith(t, specName)
	if len(pts) == 0 {
		t.Fatalf("%s: no injection points in target", specName)
	}
	res, err := mutator.Apply("svc.go", []byte(gswfitTarget), mm, pts[0], mutator.Options{})
	if err != nil {
		t.Fatalf("%s: apply: %v", specName, err)
	}
	// Every G-SWFIT mutant must still be valid target syntax.
	if _, err := scanner.ScanSource("svc.go", res.Source, nil); err != nil {
		t.Fatalf("%s: mutant does not parse: %v\n%s", specName, err, res.Source)
	}
	return string(res.Source)
}

func TestGSWFITMFCRemovesCall(t *testing.T) {
	out := applyFirst(t, "MFC")
	// The first MFC match is record() between openState and closeState.
	if strings.Contains(out, "record(state, node)") {
		t.Error("MFC mutant still contains the omitted call")
	}
	if !strings.Contains(out, "openState()") || !strings.Contains(out, "closeState(state)") {
		t.Error("MFC mutant lost surrounding statements")
	}
}

func TestGSWFITMIFSRemovesGuardedBlock(t *testing.T) {
	out := applyFirst(t, "MIFS")
	if strings.Contains(out, "audit(node)") {
		t.Error("MIFS mutant still contains the guarded block")
	}
}

func TestGSWFITMIAKeepsBodyDropsGuard(t *testing.T) {
	out := applyFirst(t, "MIA")
	if !strings.Contains(out, "audit(node)") {
		t.Error("MIA mutant lost the guarded body")
	}
	if strings.Contains(out, `if node != "" {
	audit(node)
}`) {
		t.Error("MIA mutant kept the guard")
	}
}

func TestGSWFITMIEBDropsElse(t *testing.T) {
	out := applyFirst(t, "MIEB")
	if strings.Contains(out, "grow(limit)") {
		t.Error("MIEB mutant still contains the else branch")
	}
	if !strings.Contains(out, "shrink(limit)") {
		t.Error("MIEB mutant lost the then branch")
	}
}

func TestGSWFITMLACDropsAndClause(t *testing.T) {
	out := applyFirst(t, "MLAC")
	if !strings.Contains(out, "refresh(node)") {
		t.Error("MLAC mutant lost the body")
	}
	if strings.Contains(out, `node != "" && limit > 0`) {
		t.Error("MLAC mutant kept the AND condition")
	}
}

func TestGSWFITMLOCDropsOrClause(t *testing.T) {
	out := applyFirst(t, "MLOC")
	if !strings.Contains(out, "reject(node)") {
		t.Error("MLOC mutant lost the body")
	}
	if strings.Contains(out, `node == "" || limit < 0`) {
		t.Error("MLOC mutant kept the OR condition")
	}
}

func TestGSWFITWVAVCorruptsAssignedString(t *testing.T) {
	out := applyFirst(t, "WVAV")
	if !strings.Contains(out, `__corrupt("slow-path")`) {
		t.Errorf("WVAV mutant missing corruption:\n%s", out)
	}
}

func TestGSWFITMVIVNilsInitializer(t *testing.T) {
	mm, pts := scanWith(t, "MVIV")
	// Find the mode := "fast" site specifically.
	var target *scanner.InjectionPoint
	for i := range pts {
		if strings.Contains(pts[i].Snippet, "mode") {
			target = &pts[i]
			break
		}
	}
	if target == nil {
		t.Fatal("MVIV did not match the mode initialization")
	}
	res, err := mutator.Apply("svc.go", []byte(gswfitTarget), mm, *target, mutator.Options{})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !strings.Contains(string(res.Source), "mode := nil") {
		t.Errorf("MVIV mutant missing nil initialization:\n%s", res.Source)
	}
}

func TestGSWFITWPFVNilsVariableParameter(t *testing.T) {
	mm, pts := scanWith(t, "WPFV")
	// Pick the submit(node, mode, 42) site.
	var target *scanner.InjectionPoint
	for i := range pts {
		if strings.Contains(pts[i].Snippet, "submit") {
			target = &pts[i]
			break
		}
	}
	if target == nil {
		t.Fatal("WPFV did not match the submit call")
	}
	res, err := mutator.Apply("svc.go", []byte(gswfitTarget), mm, *target, mutator.Options{})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !strings.Contains(string(res.Source), "submit(nil, mode, 42)") {
		t.Errorf("WPFV mutant should nil the first variable parameter:\n%s", res.Source)
	}
}

func TestGSWFITWAEPCorruptsIntParameter(t *testing.T) {
	mm, pts := scanWith(t, "WAEP")
	var target *scanner.InjectionPoint
	for i := range pts {
		if strings.Contains(pts[i].Snippet, "submit") {
			target = &pts[i]
			break
		}
	}
	if target == nil {
		t.Fatal("WAEP did not match the submit call")
	}
	res, err := mutator.Apply("svc.go", []byte(gswfitTarget), mm, *target, mutator.Options{})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !strings.Contains(string(res.Source), "__corrupt(42)") {
		t.Errorf("WAEP mutant should corrupt the int parameter:\n%s", res.Source)
	}
}

// Every spec of the predefined models must produce parseable mutants on
// every point it finds in the target — the structural safety property of
// print-and-reparse mutation.
func TestAllPredefinedSpecsProduceValidMutants(t *testing.T) {
	for _, model := range []*faultmodel.Model{faultmodel.GSWFIT(), faultmodel.Extras()} {
		for _, spec := range model.Specs {
			mm, err := spec.Compile()
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			pts, err := scanner.ScanSource("svc.go", []byte(gswfitTarget), []*pattern.MetaModel{mm})
			if err != nil {
				t.Fatalf("%s: scan: %v", spec.Name, err)
			}
			for _, pt := range pts {
				for _, triggered := range []bool{false, true} {
					res, err := mutator.Apply("svc.go", []byte(gswfitTarget), mm, pt, mutator.Options{Triggered: triggered})
					if err != nil {
						t.Fatalf("%s at %s (triggered=%v): %v", spec.Name, pt.ID(), triggered, err)
					}
					if _, err := scanner.ScanSource("svc.go", res.Source, nil); err != nil {
						t.Fatalf("%s at %s (triggered=%v): mutant does not parse: %v",
							spec.Name, pt.ID(), triggered, err)
					}
				}
			}
		}
	}
}
