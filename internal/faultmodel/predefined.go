package faultmodel

// GSWFIT returns the predefined fault model derived from the G-SWFIT
// field study [14]: the most frequent fault types found across open-source
// projects, transliterated to the Go-flavoured DSL. These are the
// "pre-defined fault models based on previous fault injection studies"
// that ProFIPy ships with (§IV-A).
func GSWFIT() *Model {
	return &Model{
		Name:        "gswfit",
		Description: "G-SWFIT generic software fault model (Duraes & Madeira, IEEE TSE 2006)",
		Specs: []Spec{
			{
				Name: "MFC", Type: "MFC",
				Doc: "Missing function call: omit a call whose return value is unused",
				DSL: `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`,
			},
			{
				Name: "MIFS", Type: "MIFS",
				Doc: "Missing if construct plus statements: remove a small guarded block",
				DSL: `
change {
	if $EXPR#e {
		$BLOCK{tag=body; stmts=1,4}
	}
} into {
}`,
			},
			{
				Name: "MIA", Type: "MIA",
				Doc: "Missing if construct around statements: keep the body, drop the guard",
				DSL: `
change {
	if $EXPR#e {
		$BLOCK{tag=body; stmts=1,4}
	}
} into {
	$BLOCK{tag=body}
}`,
			},
			{
				Name: "MIEB", Type: "MIEB",
				Doc: "Missing else branch: drop the else part of an if/else",
				DSL: `
change {
	if $EXPR#e {
		$BLOCK{tag=then; stmts=1,4}
	} else {
		$BLOCK{tag=other; stmts=1,4}
	}
} into {
	if $EXPR#e {
		$BLOCK{tag=then}
	}
}`,
			},
			{
				Name: "MLAC", Type: "MLAC",
				Doc: "Missing AND clause in a branch condition",
				DSL: `
change {
	if $EXPR#a && $EXPR#b {
		$BLOCK{tag=body; stmts=1,*}
	}
} into {
	if $EXPR#a {
		$BLOCK{tag=body}
	}
}`,
			},
			{
				Name: "MLOC", Type: "MLOC",
				Doc: "Missing OR clause in a branch condition",
				DSL: `
change {
	if $EXPR#a || $EXPR#b {
		$BLOCK{tag=body; stmts=1,*}
	}
} into {
	if $EXPR#a {
		$BLOCK{tag=body}
	}
}`,
			},
			{
				Name: "WVAV", Type: "WVAV",
				Doc: "Wrong value assigned to a variable (string corruption)",
				DSL: `
change {
	$VAR#x = $STRING#v
} into {
	$VAR#x = $CORRUPT($STRING#v)
}`,
			},
			{
				Name: "MVIV", Type: "MVIV",
				Doc: "Missing variable initialization using a value",
				DSL: `
change {
	$VAR#x := $EXPR#v
} into {
	$VAR#x := $NIL
}`,
			},
			{
				Name: "WPFV", Type: "WPFV",
				Doc: "Wrong variable used in a call parameter (replaced with nil)",
				DSL: `
change {
	$CALL#c{name=*}(..., $VAR#p, ...)
} into {
	$CALL#c(..., $NIL#p, ...)
}`,
			},
			{
				Name: "WAEP", Type: "WAEP",
				Doc: "Wrong arithmetic expression in a call parameter",
				DSL: `
change {
	$CALL#c{name=*}(..., $INT#n, ...)
} into {
	$CALL#c(..., $CORRUPT($INT#n), ...)
}`,
			},
		},
	}
}

// Runtime returns the predefined runtime fault model: trigger-based
// faults that fire while the program runs instead of mutating source —
// the scenario axis of runtime injectors like ZOFI (transient faults
// during execution) and InjectV (trigger-conditioned injection). Each
// spec's change block selects injection sites; execution attaches an
// injector to the site's enclosing function, so no per-experiment
// recompilation happens.
func Runtime() *Model {
	return &Model{
		Name:        "runtime",
		Description: "Runtime trigger-based faults: probabilistic/intermittent raises, return-value corruption, injected latency",
		Specs: []Spec{
			{
				Name: "RT-RAISE", Type: "RuntimeRaise",
				Doc: "Raise an I/O error on every call of a function that invokes an external API",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} trigger {
	always
} action {
	raise(InjectedIOError, "runtime fault: injected I/O error")
}`,
			},
			{
				Name: "RT-FLAKY", Type: "RuntimeFlaky",
				Doc: "Intermittent failure: raise with probability 0.5 per activation",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} trigger {
	prob(0.5)
} action {
	raise(InjectedFlakyError, "runtime fault: intermittent failure")
}`,
			},
			{
				Name: "RT-WEAROUT", Type: "RuntimeWearOut",
				Doc: "Wear-out failure: raise only after the 3rd activation",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} trigger {
	after(3)
} action {
	raise(InjectedWearOutError, "runtime fault: wear-out failure")
}`,
			},
			{
				Name: "RT-BITFLIP", Type: "RuntimeBitflip",
				Doc: "Transient data corruption: flip one bit of every 2nd return value",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} trigger {
	every(2)
} action {
	corrupt(bitflip)
}`,
			},
			{
				Name: "RT-NULLRET", Type: "RuntimeNilReturn",
				Doc: "Drop a function's return value to nil on every activation",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} trigger {
	always
} action {
	corrupt(null)
}`,
			},
			{
				Name: "RT-LATENCY", Type: "RuntimeLatency",
				Doc: "Inject 5s of virtual latency per activation (slow dependency)",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} trigger {
	always
} action {
	delay(5s)
}`,
			},
		},
	}
}

// Extras returns the additional fault types that §III reports being used
// in an industrial context: exception injection, None/nil returns from
// library calls, artificial delays and resource hogs.
func Extras() *Model {
	return &Model{
		Name:        "extras",
		Description: "Exception, nil-return, delay and resource-hog fault types (§III)",
		Specs: []Spec{
			{
				Name: "THROW", Type: "ThrowException",
				Doc: "Raise an exception in place of a call",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} into {
	$PANIC{type=InjectedException; msg=exception injected by fault model}
}`,
			},
			{
				Name: "NILRET", Type: "NilReturn",
				Doc: "A library call returns nil instead of an object",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} into {
	$VAR#v := $NIL
}`,
			},
			{
				Name: "DELAY", Type: "Delay",
				Doc: "Artificial time delay after a call",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} into {
	$VAR#v := $CALL#c
	$TIMEOUT{ms=5000}
}`,
			},
			{
				Name: "HOG", Type: "CPUHog",
				Doc: "CPU hog spawned after a call",
				DSL: `
change {
	$VAR#v := $CALL#c{name=*}(...)
} into {
	$VAR#v := $CALL#c
	$HOG{res=cpu; amount=2}
}`,
			},
		},
	}
}
