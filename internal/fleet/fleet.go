// Package fleet is the control-plane side of distributed campaign
// execution: a coordinator that registers remote workers, hands out
// shard leases with TTLs and fencing tokens, ingests their record
// streams idempotently, and re-dispatches shards whose workers stopped
// heartbeating.
//
// The coordinator is transport-agnostic state machine plus an HTTP
// facade (handlers.go). executor.Remote drives it in-process: it opens
// a Job per campaign, drains the job's delivery channel as the single
// record producer for the campaign sink, and claims shards back for
// local execution when no workers are alive. Failure handling is
// lease-based: a worker that dies mid-shard simply stops renewing its
// lease; Sweep expires the lease, returns the shard to the pending
// queue and the next lease poll (or the local fallback) re-runs it.
// Per-index deduplication makes the re-run safe — experiment seeds
// derive from plan indices, so a re-executed index reproduces the exact
// record bytes the dead worker would have shipped.
package fleet

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/obs"
	"profipy/internal/remote"
)

// Config parameterises the coordinator.
type Config struct {
	// LeaseTTL is how long a shard lease survives without a heartbeat;
	// 0 selects 15s.
	LeaseTTL time.Duration
	// Heartbeat is the cadence workers are told to heartbeat at;
	// 0 selects LeaseTTL/3.
	Heartbeat time.Duration
	// Poll is the lease-poll interval suggested to idle workers;
	// 0 selects 500ms.
	Poll time.Duration
	// Reg, when set, instruments the fleet.
	Reg *obs.Registry
	// Log, when set, records worker lifecycle and lease events.
	Log *slog.Logger
	// now overrides the clock in tests.
	now func() time.Time
}

// Coordinator tracks workers, campaign jobs and shard leases.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	workers map[string]*workerState
	jobs    map[string]*Job
	order   []string // job campaign IDs in insertion order
	nextID  int
	nextTok int

	met *fmetrics
}

type workerState struct {
	id       string
	name     string
	parallel int
	lastSeen time.Time
	leases   int
}

// shard lease lifecycle.
const (
	shardPending = iota // waiting for a worker (or local claim)
	shardLeased         // leased to a worker, TTL running
	shardDone           // all records delivered or completion reported
)

type shardState struct {
	lo, hi     int
	state      int
	worker     string
	token      string
	expires    time.Time
	dispatches int
}

// Delivery is one deduplicated experiment record surfaced to the job's
// single consumer (executor.Remote's drain loop).
type Delivery struct {
	Idx  int
	Kind string
	Rec  analysis.Record
}

// Job is the coordinator's state for one campaign's execution phase.
type Job struct {
	coord    *Coordinator
	campaign string
	spec     remote.CampaignSpec
	n        int
	shards   []shardState

	mu         sync.Mutex
	delivered  []bool
	remaining  int
	deliveries chan Delivery
	closed     bool
}

// New builds a coordinator.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 3
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	c := &Coordinator{
		cfg:     cfg,
		workers: map[string]*workerState{},
		jobs:    map[string]*Job{},
	}
	c.met = newMetrics(cfg.Reg, c)
	return c
}

// LeaseTTL reports the configured lease TTL.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// RegisterWorker admits a worker and assigns its identity.
func (c *Coordinator) RegisterWorker(req remote.RegisterRequest) remote.RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := fmt.Sprintf("w%04d", c.nextID)
	c.workers[id] = &workerState{
		id: id, name: req.Name, parallel: req.Parallel, lastSeen: c.cfg.now(),
	}
	c.cfg.Log.Info("fleet: worker registered", "worker", id, "name", req.Name, "parallel", req.Parallel)
	return remote.RegisterResponse{
		ID:          id,
		LeaseTTLMS:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: c.cfg.Heartbeat.Milliseconds(),
		PollMS:      c.cfg.Poll.Milliseconds(),
	}
}

// Heartbeat renews a worker's liveness and the expiry of every lease it
// holds. Unknown workers (e.g. registered before a coordinator restart)
// get false and must re-register.
func (c *Coordinator) Heartbeat(workerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return false
	}
	now := c.cfg.now()
	w.lastSeen = now
	for _, camp := range c.order {
		job := c.jobs[camp]
		for i := range job.shards {
			sh := &job.shards[i]
			if sh.state == shardLeased && sh.worker == workerID {
				sh.expires = now.Add(c.cfg.LeaseTTL)
			}
		}
	}
	return true
}

// Lease grants the oldest pending shard to the worker, or returns false
// when no shard is pending. Sweeps expired leases first, so a freshly
// orphaned shard is immediately re-dispatchable.
func (c *Coordinator) Lease(workerID string) (remote.Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return remote.Lease{}, false
	}
	now := c.cfg.now()
	w.lastSeen = now
	c.sweepLocked(now)
	for _, camp := range c.order {
		job := c.jobs[camp]
		for i := range job.shards {
			sh := &job.shards[i]
			if sh.state != shardPending {
				continue
			}
			c.nextTok++
			sh.state = shardLeased
			sh.worker = workerID
			sh.token = fmt.Sprintf("t%06d", c.nextTok)
			sh.expires = now.Add(c.cfg.LeaseTTL)
			sh.dispatches++
			w.leases++
			if sh.dispatches > 1 {
				c.met.redispatch()
				c.cfg.Log.Warn("fleet: shard re-dispatched",
					"campaign", camp, "shard", i, "worker", workerID, "dispatch", sh.dispatches)
			}
			return remote.Lease{
				Campaign: camp, Shard: i, Lo: sh.lo, Hi: sh.hi,
				Token: sh.token, PlanHash: job.spec.PlanHash,
				ExpiresMS: c.cfg.LeaseTTL.Milliseconds(),
			}, true
		}
	}
	return remote.Lease{}, false
}

// Spec returns the campaign spec a worker rebuilds its Runner from.
func (c *Coordinator) Spec(campaign string) (remote.CampaignSpec, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	job, ok := c.jobs[campaign]
	if !ok {
		return remote.CampaignSpec{}, false
	}
	return job.spec, true
}

// checkToken validates a (campaign, shard, token) triple against the
// current lease. A mismatch means the caller's lease expired and the
// shard moved on — the worker must abandon the shard.
func (c *Coordinator) checkToken(campaign string, shard int, token string) (*Job, bool) {
	job, ok := c.jobs[campaign]
	if !ok || shard < 0 || shard >= len(job.shards) {
		return nil, false
	}
	sh := &job.shards[shard]
	if sh.state != shardLeased || sh.token != token {
		return nil, false
	}
	return job, true
}

// Ingest folds a batch of record lines from a worker into the campaign,
// deduplicating by plan index. Returns false when the lease token is
// stale (the records of the batch are dropped — the shard's new owner
// will regenerate them byte-identically).
func (c *Coordinator) Ingest(campaign string, shard int, token string, lines []remote.RecordLine) bool {
	start := c.cfg.now()
	c.mu.Lock()
	job, ok := c.checkToken(campaign, shard, token)
	if ok {
		// Receiving records proves the worker is alive even if its
		// heartbeat goroutine is starved; renew the lease.
		job.shards[shard].expires = c.cfg.now().Add(c.cfg.LeaseTTL)
	}
	c.mu.Unlock()
	if !ok {
		c.met.staleBatch(len(lines))
		return false
	}
	fresh := 0
	for _, ln := range lines {
		if job.deliver(ln.Idx, ln.Kind, ln.Rec) {
			fresh++
		}
	}
	c.met.ingest(fresh, len(lines)-fresh, c.cfg.now().Sub(start))
	return true
}

// Complete marks a shard fully executed. Stale tokens return false.
func (c *Coordinator) Complete(campaign string, shard int, token string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	job, ok := c.checkToken(campaign, shard, token)
	if !ok {
		return false
	}
	sh := &job.shards[shard]
	sh.state = shardDone
	sh.token = ""
	if w, ok := c.workers[sh.worker]; ok && w.leases > 0 {
		w.leases--
	}
	return true
}

// Sweep expires leases whose TTL lapsed, returning their shards to the
// pending queue for re-dispatch. Returns the number of expired leases.
func (c *Coordinator) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweepLocked(c.cfg.now())
}

func (c *Coordinator) sweepLocked(now time.Time) int {
	expired := 0
	for _, camp := range c.order {
		job := c.jobs[camp]
		for i := range job.shards {
			sh := &job.shards[i]
			if sh.state != shardLeased || now.Before(sh.expires) {
				continue
			}
			c.cfg.Log.Warn("fleet: lease expired",
				"campaign", camp, "shard", i, "worker", sh.worker)
			if w, ok := c.workers[sh.worker]; ok && w.leases > 0 {
				w.leases--
			}
			sh.state = shardPending
			sh.worker = ""
			sh.token = ""
			expired++
			c.met.leaseExpired()
		}
	}
	return expired
}

// LiveWorkers counts workers whose last heartbeat is within the lease
// TTL.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked(c.cfg.now())
}

func (c *Coordinator) liveLocked(now time.Time) int {
	live := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.cfg.LeaseTTL {
			live++
		}
	}
	return live
}

// Workers snapshots the registered workers, sorted by ID.
func (c *Coordinator) Workers() []remote.WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	out := make([]remote.WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, remote.WorkerInfo{
			ID: w.id, Name: w.name, Parallel: w.parallel,
			Live:       now.Sub(w.lastSeen) <= c.cfg.LeaseTTL,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
			Shards:     w.leases,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StartJob opens a campaign job over n experiments partitioned into the
// given half-open [lo,hi) shard ranges (the caller computes them with
// executor.Shard so geometry stays single-sourced). The returned Job's
// Deliveries channel carries each plan index exactly once, in delivery
// order, and is closed when every index has been delivered.
func (c *Coordinator) StartJob(campaign string, spec remote.CampaignSpec, n int, ranges [][2]int) *Job {
	job := &Job{
		coord:      c,
		campaign:   campaign,
		spec:       spec,
		n:          n,
		shards:     make([]shardState, len(ranges)),
		delivered:  make([]bool, n),
		remaining:  n,
		deliveries: make(chan Delivery, n),
	}
	for i, r := range ranges {
		job.shards[i] = shardState{lo: r[0], hi: r[1], state: shardPending}
	}
	if n == 0 {
		close(job.deliveries)
		job.closed = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs[campaign] = job
	c.order = append(c.order, campaign)
	return job
}

// PredeliverJob marks plan indices that already have durable records
// (a resumed campaign's completion bitmap) as delivered without
// emitting them: workers and the local fallback will not produce fresh
// records for them, and pending shards they fully cover complete
// without ever being leased. Call right after StartJob, before the
// delivery channel is drained. Returns the number of indices retired.
// Lock order here is coordinator then job, matching Ingest's
// unlock-then-deliver sequence (Job methods never take the coordinator
// lock).
func (c *Coordinator) PredeliverJob(campaign string, done func(int) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	job, ok := c.jobs[campaign]
	if !ok {
		return 0
	}
	job.mu.Lock()
	marked := 0
	for i := 0; i < job.n; i++ {
		if !job.delivered[i] && done(i) {
			job.delivered[i] = true
			job.remaining--
			marked++
		}
	}
	if job.remaining == 0 && !job.closed {
		close(job.deliveries)
		job.closed = true
	}
	covered := func(lo, hi int) bool {
		for i := lo; i < hi; i++ {
			if !job.delivered[i] {
				return false
			}
		}
		return true
	}
	for i := range job.shards {
		sh := &job.shards[i]
		if sh.state == shardPending && covered(sh.lo, sh.hi) {
			sh.state = shardDone
		}
	}
	job.mu.Unlock()
	if marked > 0 {
		c.cfg.Log.Info("fleet: predelivered resumed indices",
			"campaign", campaign, "records", marked)
	}
	return marked
}

// CloseJob removes a finished campaign; outstanding leases become
// stale (their tokens stop validating).
func (c *Coordinator) CloseJob(campaign string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	job, ok := c.jobs[campaign]
	if !ok {
		return
	}
	for i := range job.shards {
		sh := &job.shards[i]
		if sh.state == shardLeased {
			if w, ok := c.workers[sh.worker]; ok && w.leases > 0 {
				w.leases--
			}
		}
	}
	delete(c.jobs, campaign)
	for i, camp := range c.order {
		if camp == campaign {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Deliveries is the job's record stream: every plan index exactly once,
// closed when all indices delivered. Drained by a single consumer.
func (j *Job) Deliveries() <-chan Delivery { return j.deliveries }

// deliver hands one record to the consumer unless its index was already
// delivered. Reports whether the record was fresh. The channel has
// capacity n and each index sends at most once, so the send can never
// block.
func (j *Job) deliver(idx int, kind string, rec analysis.Record) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if idx < 0 || idx >= j.n || j.delivered[idx] || j.closed {
		return false
	}
	j.delivered[idx] = true
	j.deliveries <- Delivery{Idx: idx, Kind: kind, Rec: rec}
	j.remaining--
	if j.remaining == 0 {
		close(j.deliveries)
		j.closed = true
	}
	return true
}

// Deliver is deliver for in-process producers (the local fallback path
// of executor.Remote).
func (j *Job) Deliver(idx int, kind string, rec analysis.Record) bool {
	return j.deliver(idx, kind, rec)
}

// IsDelivered reports whether the index already has a record.
func (j *Job) IsDelivered(idx int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return idx < 0 || idx >= j.n || j.delivered[idx]
}

// Remaining reports how many indices still lack a record.
func (j *Job) Remaining() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.remaining
}

// ClaimLocal atomically takes one unfinished shard away from the fleet
// for in-process execution: the oldest pending shard if any, else —
// when force is set — the oldest leased shard (revoking its lease, used
// for cancellation drains). Returns the shard's index range.
func (j *Job) ClaimLocal(force bool) (lo, hi int, ok bool) {
	c := j.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	for pass := 0; pass < 2; pass++ {
		if pass == 1 && !force {
			return 0, 0, false
		}
		for i := range j.shards {
			sh := &j.shards[i]
			if (pass == 0 && sh.state == shardPending) || (pass == 1 && sh.state == shardLeased) {
				if sh.state == shardLeased {
					if w, ok := c.workers[sh.worker]; ok && w.leases > 0 {
						w.leases--
					}
				}
				sh.state = shardDone
				sh.worker = ""
				sh.token = ""
				return sh.lo, sh.hi, true
			}
		}
	}
	return 0, 0, false
}
