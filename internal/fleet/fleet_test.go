package fleet

import (
	"sync"
	"testing"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/obs"
	"profipy/internal/remote"
	"profipy/internal/scanner"
)

// clock is a manually advanced time source injected via Config.now, so
// lease-expiry tests never sleep.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

const ttl = 10 * time.Second

func newTestCoordinator() (*Coordinator, *clock) {
	ck := newClock()
	return New(Config{LeaseTTL: ttl, now: ck.now}), ck
}

func startTestJob(c *Coordinator, camp string, n, shards int) *Job {
	ranges := make([][2]int, shards)
	for i := range ranges {
		ranges[i] = [2]int{i * n / shards, (i + 1) * n / shards}
	}
	return c.StartJob(camp, remote.CampaignSpec{Name: camp, PlanHash: "h", NumExperiments: n}, n, ranges)
}

func rec(i int) analysis.Record {
	return analysis.Record{FaultType: "T", Point: scanner.InjectionPoint{Line: i}}
}

func TestLeaseLifecycle(t *testing.T) {
	c, _ := newTestCoordinator()
	w := c.RegisterWorker(remote.RegisterRequest{Name: "a"})
	if w.ID == "" || w.LeaseTTLMS != ttl.Milliseconds() {
		t.Fatalf("bad registration: %+v", w)
	}
	job := startTestJob(c, "camp", 10, 2)

	l1, ok := c.Lease(w.ID)
	if !ok || l1.Shard != 0 || l1.Lo != 0 || l1.Hi != 5 {
		t.Fatalf("first lease = %+v, %v", l1, ok)
	}
	l2, ok := c.Lease(w.ID)
	if !ok || l2.Shard != 1 {
		t.Fatalf("second lease = %+v, %v", l2, ok)
	}
	if _, ok := c.Lease(w.ID); ok {
		t.Fatal("third lease granted with no pending shard")
	}

	lines := []remote.RecordLine{{Idx: 0, Kind: remote.KindMutated, Rec: rec(0)}}
	if !c.Ingest("camp", l1.Shard, l1.Token, lines) {
		t.Fatal("ingest with live token rejected")
	}
	if !c.Complete("camp", l1.Shard, l1.Token) {
		t.Fatal("complete with live token rejected")
	}
	if c.Complete("camp", l1.Shard, l1.Token) {
		t.Fatal("double complete accepted")
	}
	if job.Remaining() != 9 {
		t.Fatalf("remaining = %d, want 9", job.Remaining())
	}
}

func TestLeaseExpiryAndRedispatch(t *testing.T) {
	c, ck := newTestCoordinator()
	w1 := c.RegisterWorker(remote.RegisterRequest{Name: "w1"})
	startTestJob(c, "camp", 10, 1)

	l1, ok := c.Lease(w1.ID)
	if !ok {
		t.Fatal("no lease granted")
	}
	ck.advance(ttl + time.Second)
	if n := c.Sweep(); n != 1 {
		t.Fatalf("sweep expired %d leases, want 1", n)
	}

	// The stale token must be rejected everywhere.
	if c.Ingest("camp", l1.Shard, l1.Token, []remote.RecordLine{{Idx: 1, Rec: rec(1)}}) {
		t.Fatal("ingest with expired token accepted")
	}
	if c.Complete("camp", l1.Shard, l1.Token) {
		t.Fatal("complete with expired token accepted")
	}

	// The orphaned shard re-dispatches with a fresh fencing token.
	w2 := c.RegisterWorker(remote.RegisterRequest{Name: "w2"})
	l2, ok := c.Lease(w2.ID)
	if !ok || l2.Shard != l1.Shard {
		t.Fatalf("re-dispatch lease = %+v, %v", l2, ok)
	}
	if l2.Token == l1.Token {
		t.Fatal("re-dispatched lease reused the old fencing token")
	}
	if !c.Ingest("camp", l2.Shard, l2.Token, []remote.RecordLine{{Idx: 1, Rec: rec(1)}}) {
		t.Fatal("ingest with fresh token rejected")
	}
}

func TestHeartbeatRenewsLeases(t *testing.T) {
	c, ck := newTestCoordinator()
	w := c.RegisterWorker(remote.RegisterRequest{})
	startTestJob(c, "camp", 10, 1)
	if _, ok := c.Lease(w.ID); !ok {
		t.Fatal("no lease granted")
	}

	// Heartbeating every 80% of the TTL keeps the lease alive across
	// several would-be expiries.
	for i := 0; i < 3; i++ {
		ck.advance(ttl * 4 / 5)
		if !c.Heartbeat(w.ID) {
			t.Fatal("heartbeat for known worker rejected")
		}
		if n := c.Sweep(); n != 0 {
			t.Fatalf("lease expired despite heartbeats (sweep=%d)", n)
		}
	}
	if c.LiveWorkers() != 1 {
		t.Fatalf("live workers = %d, want 1", c.LiveWorkers())
	}

	// Silence kills it.
	ck.advance(ttl + time.Second)
	if n := c.Sweep(); n != 1 {
		t.Fatalf("sweep expired %d leases after silence, want 1", n)
	}
	if c.LiveWorkers() != 0 {
		t.Fatalf("live workers = %d after silence, want 0", c.LiveWorkers())
	}
}

func TestIngestRenewsLease(t *testing.T) {
	c, ck := newTestCoordinator()
	w := c.RegisterWorker(remote.RegisterRequest{})
	startTestJob(c, "camp", 10, 1)
	l, _ := c.Lease(w.ID)

	// A worker whose heartbeat goroutine starves but keeps shipping
	// records stays leased: receipt of records proves liveness.
	for i := 0; i < 3; i++ {
		ck.advance(ttl * 4 / 5)
		if !c.Ingest("camp", l.Shard, l.Token, []remote.RecordLine{{Idx: i, Rec: rec(i)}}) {
			t.Fatalf("ingest %d rejected", i)
		}
		if n := c.Sweep(); n != 0 {
			t.Fatalf("lease expired despite record flow (sweep=%d)", n)
		}
	}
}

func TestDeliveryDedupe(t *testing.T) {
	c, _ := newTestCoordinator()
	job := startTestJob(c, "camp", 3, 1)

	if !job.Deliver(0, remote.KindMutated, rec(0)) {
		t.Fatal("first delivery rejected")
	}
	if job.Deliver(0, remote.KindMutated, rec(0)) {
		t.Fatal("duplicate delivery accepted")
	}
	if !job.IsDelivered(0) || job.IsDelivered(1) {
		t.Fatal("IsDelivered wrong")
	}
	job.Deliver(1, remote.KindInjected, rec(1))
	job.Deliver(2, remote.KindLocal, rec(2))

	var got []Delivery
	for d := range job.Deliveries() {
		got = append(got, d)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d records, want 3 (channel must close after the last)", len(got))
	}
	if got[0].Idx != 0 || got[0].Kind != remote.KindMutated {
		t.Fatalf("first delivery = %+v", got[0])
	}
}

func TestClaimLocal(t *testing.T) {
	c, _ := newTestCoordinator()
	w := c.RegisterWorker(remote.RegisterRequest{})
	job := startTestJob(c, "camp", 10, 3)
	if _, ok := c.Lease(w.ID); !ok {
		t.Fatal("no lease granted")
	}

	// Non-forcing claims take only pending shards (1 and 2).
	var claimed int
	for {
		_, _, ok := job.ClaimLocal(false)
		if !ok {
			break
		}
		claimed++
	}
	if claimed != 2 {
		t.Fatalf("claimed %d pending shards, want 2", claimed)
	}
	// Forcing revokes the leased shard too (cancellation drain).
	if _, _, ok := job.ClaimLocal(true); !ok {
		t.Fatal("forced claim did not revoke the leased shard")
	}
	if _, _, ok := job.ClaimLocal(true); ok {
		t.Fatal("claim succeeded with no shards left")
	}
}

func TestUnknownWorkerMustReregister(t *testing.T) {
	c, _ := newTestCoordinator()
	startTestJob(c, "camp", 4, 1)
	if c.Heartbeat("w9999") {
		t.Fatal("heartbeat for unknown worker accepted")
	}
	if _, ok := c.Lease("w9999"); ok {
		t.Fatal("lease granted to unknown worker")
	}
}

func TestCloseJobInvalidatesTokens(t *testing.T) {
	c, _ := newTestCoordinator()
	w := c.RegisterWorker(remote.RegisterRequest{})
	startTestJob(c, "camp", 4, 1)
	l, _ := c.Lease(w.ID)
	c.CloseJob("camp")
	if c.Ingest("camp", l.Shard, l.Token, []remote.RecordLine{{Idx: 0, Rec: rec(0)}}) {
		t.Fatal("ingest accepted after job close")
	}
	if _, ok := c.Spec("camp"); ok {
		t.Fatal("spec served after job close")
	}
}

// TestIngestLatencyUsesInjectedClock pins the Ingest latency measurement
// to Config.now: with a clock that advances a fixed step per reading,
// the observed batch latency is exactly the injected steps elapsed
// between Ingest's first and last reading — a wall-clock measurement
// would record microseconds and break the determinism the injected
// clock exists for.
func TestIngestLatencyUsesInjectedClock(t *testing.T) {
	const step = 3 * time.Millisecond
	ck := newClock()
	reg := obs.NewRegistry()
	// Auto-advancing reader: every clock reading moves time forward by
	// one step, so durations measured on this clock are deterministic
	// multiples of step.
	now := func() time.Time {
		ck.advance(step)
		return ck.now()
	}
	c := New(Config{LeaseTTL: ttl, Reg: reg, now: now})
	w := c.RegisterWorker(remote.RegisterRequest{Name: "a"})
	startTestJob(c, "camp", 4, 1)
	l, ok := c.Lease(w.ID)
	if !ok {
		t.Fatal("no lease granted")
	}
	if !c.Ingest("camp", l.Shard, l.Token, []remote.RecordLine{{Idx: 0, Rec: rec(0)}}) {
		t.Fatal("ingest rejected")
	}
	// Ingest reads the clock twice after its start reading (lease
	// renewal, then the end of the measurement): exactly 2 steps.
	h := reg.Histogram("profipy_fleet_ingest_seconds", "", nil)
	if got, want := h.Sum(), (2 * step).Seconds(); got != want {
		t.Fatalf("ingest latency sum = %v, want %v (injected clock)", got, want)
	}
}
