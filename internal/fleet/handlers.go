package fleet

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"

	"profipy/internal/remote"
)

// Mount registers the worker-facing HTTP API on mux. All routes live
// under /api/v1/workers and speak the wire types of internal/remote.
//
//	POST /api/v1/workers                          register       → RegisterResponse
//	GET  /api/v1/workers                          list           → []WorkerInfo
//	POST /api/v1/workers/{id}/heartbeat           renew liveness → 204 (410 unknown worker)
//	POST /api/v1/workers/{id}/lease               pull a shard   → Lease or 204
//	GET  /api/v1/workers/campaigns/{camp}/spec    campaign spec  → CampaignSpec
//	POST /api/v1/workers/{id}/records             NDJSON batch   → 202 (410 stale lease)
//	POST /api/v1/workers/{id}/complete            shard done     → 204 (410 stale lease)
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v1/workers", c.handleRegister)
	mux.HandleFunc("GET /api/v1/workers", c.handleList)
	mux.HandleFunc("POST /api/v1/workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/workers/{id}/lease", c.handleLease)
	mux.HandleFunc("GET /api/v1/workers/campaigns/{camp}/spec", c.handleSpec)
	mux.HandleFunc("POST /api/v1/workers/{id}/records", c.handleRecords)
	mux.HandleFunc("POST /api/v1/workers/{id}/complete", c.handleComplete)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req remote.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad register request: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, c.RegisterWorker(req))
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Workers())
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !c.Heartbeat(r.PathValue("id")) {
		// 410: the worker is unknown (coordinator restarted); it must
		// re-register rather than keep heartbeating into the void.
		http.Error(w, "unknown worker", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	lease, ok := c.Lease(r.PathValue("id"))
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	spec, ok := c.Spec(r.PathValue("camp"))
	if !ok {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

// handleRecords ingests one NDJSON batch of remote.RecordLine. The
// campaign, shard and fencing token ride in query parameters so the
// body stays a pure record stream.
func (c *Coordinator) handleRecords(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	campaign := q.Get("campaign")
	token := q.Get("token")
	shard, err := strconv.Atoi(q.Get("shard"))
	if err != nil || campaign == "" || token == "" {
		http.Error(w, "records request needs campaign, shard and token", http.StatusBadRequest)
		return
	}
	var lines []remote.RecordLine
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ln remote.RecordLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			http.Error(w, "bad record line: "+err.Error(), http.StatusBadRequest)
			return
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, "reading record stream: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !c.Ingest(campaign, shard, token, lines) {
		http.Error(w, "stale lease", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req remote.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad complete request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !c.Complete(req.Campaign, req.Shard, req.Token) {
		http.Error(w, "stale lease", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
