package fleet

import (
	"time"

	"profipy/internal/obs"
)

// fmetrics instruments the fleet coordinator. All methods are nil-safe
// no-ops when no registry was configured.
type fmetrics struct {
	expiries  *obs.Counter
	redisp    *obs.Counter
	ingested  *obs.Counter
	duplicate *obs.Counter
	stale     *obs.Counter
	ingestH   *obs.Histogram
}

func newMetrics(reg *obs.Registry, c *Coordinator) *fmetrics {
	if reg == nil {
		return nil
	}
	reg.GaugeFunc("profipy_fleet_workers",
		"Registered workers with a heartbeat within the lease TTL.",
		func() float64 { return float64(c.LiveWorkers()) })
	return &fmetrics{
		expiries: reg.Counter("profipy_fleet_lease_expiries_total",
			"Shard leases expired because the holding worker stopped heartbeating."),
		redisp: reg.Counter("profipy_fleet_shard_redispatch_total",
			"Shards dispatched more than once after a lease expiry."),
		ingested: reg.Counter("profipy_fleet_records_ingested_total",
			"Experiment records accepted from remote workers (first delivery per index)."),
		duplicate: reg.Counter("profipy_fleet_records_duplicate_total",
			"Experiment records dropped as duplicates (index already delivered)."),
		stale: reg.Counter("profipy_fleet_records_stale_total",
			"Experiment records rejected because the shard lease token was stale."),
		ingestH: reg.Histogram("profipy_fleet_ingest_seconds",
			"Latency of ingesting one record batch from a worker.", nil),
	}
}

func (m *fmetrics) leaseExpired() {
	if m != nil {
		m.expiries.Inc()
	}
}

func (m *fmetrics) redispatch() {
	if m != nil {
		m.redisp.Inc()
	}
}

func (m *fmetrics) ingest(fresh, dup int, d time.Duration) {
	if m == nil {
		return
	}
	m.ingested.Add(float64(fresh))
	m.duplicate.Add(float64(dup))
	m.ingestH.Observe(d.Seconds())
}

func (m *fmetrics) staleBatch(n int) {
	if m != nil {
		m.stale.Add(float64(n))
	}
}
