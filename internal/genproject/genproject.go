// Package genproject generates deterministic synthetic projects for the
// performance evaluation of §V-D: the paper scans the three biggest
// OpenStack modules (~400K lines of Python) with 120 DSL patterns,
// finding 17,488 injectable locations. This generator produces corpora of
// configurable size with a realistic density of call statements, guarded
// blocks, assignments and string literals, plus a matching family of 120
// DSL patterns, so scan throughput can be measured at any scale.
package genproject

import (
	"fmt"
	"math/rand"
	"strings"

	"profipy/internal/faultmodel"
)

// Config sizes the generated project.
type Config struct {
	// Files is the number of source files.
	Files int
	// FuncsPerFile is the number of functions per file.
	FuncsPerFile int
	// StmtsPerFunc is the approximate statement count per function.
	StmtsPerFunc int
	// Seed drives deterministic generation.
	Seed int64
}

// DefaultConfig yields roughly the given number of source lines.
func DefaultConfig(lines int, seed int64) Config {
	// One 10-statement function renders to ~27 lines on average.
	funcs := lines / 27
	if funcs < 1 {
		funcs = 1
	}
	files := funcs / 20
	if files < 1 {
		files = 1
	}
	return Config{Files: files, FuncsPerFile: funcs / files, StmtsPerFunc: 10, Seed: seed}
}

// services are the fake subsystem prefixes used in generated call names;
// the generated DSL patterns target them by glob.
var services = []string{
	"compute", "network", "volume", "image", "identity",
	"scheduler", "metering", "baremetal", "dns", "queue",
}

var verbs = []string{"create", "delete", "update", "get", "list", "attach", "detach", "sync"}

// auditors are the guard-body call names; MIFS patterns key on them.
var auditors = []string{"audit", "trace", "mark"}

// Generate produces the synthetic source files, keyed by file name.
func Generate(cfg Config) map[string][]byte {
	if cfg.Files < 1 {
		cfg.Files = 1
	}
	if cfg.FuncsPerFile < 1 {
		cfg.FuncsPerFile = 1
	}
	if cfg.StmtsPerFunc < 3 {
		cfg.StmtsPerFunc = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	files := make(map[string][]byte, cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		files[fmt.Sprintf("gen/mod%03d.go", i)] = genFile(rng, i, cfg)
	}
	return files
}

// Lines counts the total source lines of a generated project.
func Lines(files map[string][]byte) int {
	total := 0
	for _, data := range files {
		total += strings.Count(string(data), "\n")
	}
	return total
}

func genFile(rng *rand.Rand, idx int, cfg Config) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "package mod%03d\n\n", idx)
	for f := 0; f < cfg.FuncsPerFile; f++ {
		genFunc(rng, &sb, idx, f, cfg.StmtsPerFunc)
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func genFunc(rng *rand.Rand, sb *strings.Builder, fileIdx, fnIdx, stmts int) {
	fmt.Fprintf(sb, "func handler%03d_%03d(node string, count int) any {\n", fileIdx, fnIdx)
	sb.WriteString("\tstate := prepare(node)\n")
	for s := 0; s < stmts; s++ {
		switch rng.Intn(6) {
		case 0: // bare service call (MFC-style target)
			fmt.Fprintf(sb, "\t%s(state, node)\n", callName(rng))
		case 1: // assignment from a call (throw/nil-return target)
			fmt.Fprintf(sb, "\tres%d := %s(state, count)\n", s, callName(rng))
			fmt.Fprintf(sb, "\tuse(res%d)\n", s)
		case 2: // guarded block (MIFS target, keyed by auditor + increment)
			fmt.Fprintf(sb, "\tif node != \"\" {\n\t\t%s(node)\n\t\tcount = count + %d\n\t}\n",
				auditors[rng.Intn(len(auditors))], rng.Intn(9)+1)
		case 3: // call with a flag-bearing string literal (WPF target)
			fmt.Fprintf(sb, "\texecuteTool(state, \"%s\", \"--%s-%s\")\n",
				verbs[rng.Intn(len(verbs))], services[rng.Intn(len(services))], verbs[rng.Intn(len(verbs))])
		case 4: // loop with body
			fmt.Fprintf(sb, "\tfor i := 0; i < count; i++ {\n\t\tstep(state, i)\n\t}\n")
		case 5: // string assignment (WVAV target)
			fmt.Fprintf(sb, "\tlabel%d := \"%s-%s\"\n\tuse(label%d)\n", s,
				services[rng.Intn(len(services))], verbs[rng.Intn(len(verbs))], s)
		}
	}
	sb.WriteString("\tfinish(state)\n")
	sb.WriteString("\treturn state\n")
	sb.WriteString("}\n")
}

func callName(rng *rand.Rand) string {
	return services[rng.Intn(len(services))] + "_" + verbs[rng.Intn(len(verbs))]
}

// Patterns generates n distinct DSL bug specifications targeting the
// synthetic corpus: the paper's "120 different DSL patterns" scenario uses
// n=120. Each pattern is specialised to one (service, verb) pair or one
// literal shape, like a user tailoring a faultload to subsystems, so each
// pattern matches a sparse subset of the corpus (densities comparable to
// the paper's 17,488 locations in ~400K lines).
func Patterns(n int) []faultmodel.Spec {
	shapes := []func(name, svc, verb string, k int) faultmodel.Spec{
		func(name, svc, verb string, k int) faultmodel.Spec {
			return faultmodel.Spec{Name: name, Type: "MFC", DSL: `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=` + svc + `_` + verb + `}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`}
		},
		func(name, svc, verb string, k int) faultmodel.Spec {
			return faultmodel.Spec{Name: name, Type: "ThrowException", DSL: `
change {
	$VAR#v := $CALL#c{name=` + svc + `_` + verb + `}(...)
} into {
	$PANIC{type=ServiceError; msg=injected ` + svc + ` failure}
}`}
		},
		func(name, svc, verb string, k int) faultmodel.Spec {
			return faultmodel.Spec{Name: name, Type: "WPF", DSL: `
change {
	$CALL#c{name=executeTool}(..., $STRING#s{val=--` + svc + `-` + verb + `}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`}
		},
		func(name, svc, verb string, k int) faultmodel.Spec {
			combo := k / 6 // distinct per MIFS instance
			return faultmodel.Spec{Name: name, Type: "MIFS", DSL: fmt.Sprintf(`
change {
	if $EXPR{var=node} {
		%s(node)
		count = count + $INT#n{val=%d}
	}
} into {
}`, auditors[combo%len(auditors)], (combo/len(auditors))%9+1)}
		},
		func(name, svc, verb string, k int) faultmodel.Spec {
			return faultmodel.Spec{Name: name, Type: "WVAV", DSL: `
change {
	$VAR#x := $STRING#v{val=` + svc + `-` + verb + `}
} into {
	$VAR#x := $CORRUPT($STRING#v)
}`}
		},
		func(name, svc, verb string, k int) faultmodel.Spec {
			return faultmodel.Spec{Name: name, Type: "NilReturn", DSL: `
change {
	$VAR#v := $CALL#c{name=` + svc + `_` + verb + `}(...)
	use($VAR#u)
} into {
	$VAR#v := $NIL
	use($VAR#u)
}`}
		},
	}
	specs := make([]faultmodel.Spec, 0, n)
	for i := 0; i < n; i++ {
		// Walk (shape, svc, verb) combinations without repeating.
		shape := shapes[i%len(shapes)]
		combo := i / len(shapes)
		svc := services[combo%len(services)]
		verb := verbs[(combo/len(services)+i)%len(verbs)]
		specs = append(specs, shape(fmt.Sprintf("gen-%03d-%s-%s", i, svc, verb), svc, verb, i))
	}
	return specs
}
