package genproject

import (
	"testing"

	"profipy/internal/faultmodel"
	"profipy/internal/scanner"
)

func TestGenerateIsDeterministicAndParseable(t *testing.T) {
	cfg := DefaultConfig(2000, 42)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("file counts differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if string(b[name]) != string(data) {
			t.Fatalf("file %s differs between runs", name)
		}
	}
	// Every generated file must be valid target syntax.
	for name, data := range a {
		if _, err := scanner.ScanSource(name, data, nil); err != nil {
			t.Fatalf("generated file %s does not parse: %v", name, err)
		}
	}
}

func TestGenerateApproximatesRequestedSize(t *testing.T) {
	for _, want := range []int{1000, 10000} {
		files := Generate(DefaultConfig(want, 1))
		got := Lines(files)
		if got < want/2 || got > want*2 {
			t.Errorf("Lines = %d, want within 2x of %d", got, want)
		}
	}
}

func TestPatternsCompileAndCount(t *testing.T) {
	specs := Patterns(120)
	if len(specs) != 120 {
		t.Fatalf("patterns = %d, want 120", len(specs))
	}
	if _, err := faultmodel.CompileAll(specs); err != nil {
		t.Fatalf("patterns do not compile: %v", err)
	}
}

func TestScanFindsInjectableLocationsAtScale(t *testing.T) {
	files := Generate(DefaultConfig(5000, 7))
	specs := Patterns(24)
	models, err := faultmodel.CompileAll(specs)
	if err != nil {
		t.Fatalf("CompileAll: %v", err)
	}
	points, err := scanner.ScanProject(files, models)
	if err != nil {
		t.Fatalf("ScanProject: %v", err)
	}
	if len(points) == 0 {
		t.Fatal("no injectable locations found in synthetic corpus")
	}
	// Density check: the paper found 17,488 locations in ~400K lines
	// with 120 patterns (~0.044 per line); with a fifth of the patterns
	// we still expect a non-trivial density.
	lines := Lines(files)
	density := float64(len(points)) / float64(lines)
	if density < 0.001 {
		t.Errorf("injection density = %f per line, suspiciously low", density)
	}
}
