package interp

import (
	"testing"
)

// benchSource is a representative workload round: request loops over
// maps and lists, string handling, helper calls, closures, defers and a
// recovered exception — the mix the kvclient workload exercises.
const benchSource = `package main

var calls = 0

func handle(key string, store any) any {
	calls = calls + 1
	if len(key) == 0 {
		throw("KeyError", "empty key")
	}
	v, ok := store[key]
	if !ok {
		store[key] = 0
		v = 0
	}
	store[key] = v + 1
	return store[key]
}

func batch(n int) any {
	store := map[string]any{}
	keys := []any{"alpha", "beta", "gamma", "delta"}
	total := 0
	for i := 0; i < n; i++ {
		for _, k := range keys {
			total += handle(k, store)
		}
	}
	return total
}

func guarded(n int) any {
	out := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				out = -1
			}
		}()
		out = batch(n)
	}()
	return out
}

func Workload() any {
	acc := 0
	for round := 0; round < 4; round++ {
		acc += guarded(8)
	}
	parts := []any{}
	for i := 0; i < 16; i++ {
		parts = append(parts, "k"+str(i%4))
	}
	s := ""
	for _, p := range parts {
		s = s + p
	}
	return str(acc) + ":" + s[0:8]
}
`

// BenchmarkRoundTreeWalk measures one full workload round on the
// tree-walk path: parse + load + execute, which is what every round of
// every experiment paid before the compile layer.
func BenchmarkRoundTreeWalk(b *testing.B) {
	src := []byte(benchSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := New(Config{})
		if err := it.LoadSource("w.go", src); err != nil {
			b.Fatal(err)
		}
		if _, err := it.Call("Workload"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundCompiled measures one full workload round on the
// compiled path: the program is compiled once per campaign, so a round
// costs NewRun + Boot + execute.
func BenchmarkRoundCompiled(b *testing.B) {
	prog, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: []byte(benchSource)}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewRun(prog, Config{})
		if err := it.Boot(); err != nil {
			b.Fatal(err)
		}
		if _, err := it.Call("Workload"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecTreeWalk / BenchmarkExecCompiled isolate pure execution
// (front-end work done once outside the loop) — the slot-frame runtime
// against the Scope-chain tree-walk.
func BenchmarkExecTreeWalk(b *testing.B) {
	it := New(Config{MaxSteps: 1 << 60})
	if err := it.LoadSource("w.go", []byte(benchSource)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := it.Call("Workload"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecCompiled(b *testing.B) {
	prog, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: []byte(benchSource)}})
	if err != nil {
		b.Fatal(err)
	}
	it := NewRun(prog, Config{MaxSteps: 1 << 60})
	if err := it.Boot(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := it.Call("Workload"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileProgram measures the one-time compile cost a campaign
// amortizes over all rounds and experiments.
func BenchmarkCompileProgram(b *testing.B) {
	src := []byte(benchSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: src}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledCallHotPath isolates the pooled slot-frame call path
// with small-int arithmetic (values stay in the runtime's small-value
// cache), so allocs/op reflects frame setup only.
func BenchmarkCompiledCallHotPath(b *testing.B) {
	prog, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: []byte(`package main
func Hot() any {
	count := 0
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			count++
		}
	}
	return count
}`)}})
	if err != nil {
		b.Fatal(err)
	}
	it := NewRun(prog, Config{MaxSteps: 1 << 60})
	if err := it.Boot(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := it.Call("Hot"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCompiledHotPathAllocs asserts the sync.Pool'd frame path: the
// compiled hot loop must allocate far less than the tree-walk (which
// builds a Scope map per block per iteration) and stay under a fixed
// small bound per call.
func TestCompiledHotPathAllocs(t *testing.T) {
	src := []byte(`package main
func Hot() any {
	count := 0
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			count++
		}
	}
	return count
}`)
	prog, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	crun := NewRun(prog, Config{MaxSteps: 1 << 60})
	if err := crun.Boot(); err != nil {
		t.Fatal(err)
	}
	compiled := testing.AllocsPerRun(200, func() {
		if _, err := crun.Call("Hot"); err != nil {
			t.Fatal(err)
		}
	})

	tw := New(Config{MaxSteps: 1 << 60})
	if err := tw.LoadSource("w.go", src); err != nil {
		t.Fatal(err)
	}
	tree := testing.AllocsPerRun(200, func() {
		if _, err := tw.Call("Hot"); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("allocs/call: compiled=%.1f tree-walk=%.1f", compiled, tree)
	if compiled > 8 {
		t.Errorf("compiled hot path allocates %.1f/call, want <= 8 (pooled frames)", compiled)
	}
	if compiled*20 > tree {
		t.Errorf("compiled hot path allocates %.1f/call vs tree-walk %.1f — expected >= 20x reduction",
			compiled, tree)
	}
}
