package interp

import (
	"testing"
)

// benchSource is a representative workload round: request loops over
// maps and lists, string handling, helper calls, closures, defers and a
// recovered exception — the mix the kvclient workload exercises.
const benchSource = `package main

var calls = 0

func handle(key string, store any) any {
	calls = calls + 1
	if len(key) == 0 {
		throw("KeyError", "empty key")
	}
	v, ok := store[key]
	if !ok {
		store[key] = 0
		v = 0
	}
	store[key] = v + 1
	return store[key]
}

func batch(n int) any {
	store := map[string]any{}
	keys := []any{"alpha", "beta", "gamma", "delta"}
	total := 0
	for i := 0; i < n; i++ {
		for _, k := range keys {
			total += handle(k, store)
		}
	}
	return total
}

func guarded(n int) any {
	out := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				out = -1
			}
		}()
		out = batch(n)
	}()
	return out
}

func Workload() any {
	acc := 0
	for round := 0; round < 4; round++ {
		acc += guarded(8)
	}
	parts := []any{}
	for i := 0; i < 16; i++ {
		parts = append(parts, "k"+str(i%4))
	}
	s := ""
	for _, p := range parts {
		s = s + p
	}
	return str(acc) + ":" + s[0:8]
}
`

// hotSource isolates the pooled slot-frame call path with small-int
// arithmetic (values stay in the runtime's small-value cache), so
// allocs/op reflects frame setup only.
const hotSource = `package main
func Hot() any {
	count := 0
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			count++
		}
	}
	return count
}`

// engineBench is one row of the per-engine benchmark table. New engines
// slot in here; every benchmark below iterates the table.
type engineBench struct {
	name     string
	treeWalk bool   // Scope-chain front end (New + LoadSource)
	engine   string // Config.Engine for the compiled front end
}

var engineBenches = []engineBench{
	{name: "tree-walk", treeWalk: true},
	{name: "closure", engine: "closure"},
	{name: "bytecode", engine: "bytecode"},
}

// newBenchInterp builds a ready-to-call interpreter for one engine row
// over the given source.
func newBenchInterp(tb testing.TB, eb engineBench, src string) *Interp {
	cfg := Config{MaxSteps: 1 << 60, Engine: eb.engine}
	if eb.treeWalk {
		it := New(cfg)
		if err := it.LoadSource("w.go", []byte(src)); err != nil {
			tb.Fatal(err)
		}
		return it
	}
	prog, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: []byte(src)}})
	if err != nil {
		tb.Fatal(err)
	}
	it := NewRun(prog, cfg)
	if err := it.Boot(); err != nil {
		tb.Fatal(err)
	}
	return it
}

// BenchmarkExec isolates pure execution per engine (front-end work done
// once outside the loop).
func BenchmarkExec(b *testing.B) {
	for _, eb := range engineBenches {
		b.Run(eb.name, func(b *testing.B) {
			it := newBenchInterp(b, eb, benchSource)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := it.Call("Workload"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRound measures one full workload round per engine: what one
// experiment round pays including interpreter setup. The compiled rows
// compile once outside the loop (a campaign compiles once and reuses the
// Program across all experiments), so a round is NewRun + Boot + execute;
// the tree-walk re-parses every round, as it must.
func BenchmarkRound(b *testing.B) {
	src := []byte(benchSource)
	prog, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: src}})
	if err != nil {
		b.Fatal(err)
	}
	for _, eb := range engineBenches {
		b.Run(eb.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if eb.treeWalk {
					it := New(Config{})
					if err := it.LoadSource("w.go", src); err != nil {
						b.Fatal(err)
					}
					if _, err := it.Call("Workload"); err != nil {
						b.Fatal(err)
					}
					continue
				}
				it := NewRun(prog, Config{Engine: eb.engine})
				if err := it.Boot(); err != nil {
					b.Fatal(err)
				}
				if _, err := it.Call("Workload"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCallHotPath runs the tight arithmetic loop per engine; the
// compiled rows must stay allocation-free in steady state.
func BenchmarkCallHotPath(b *testing.B) {
	for _, eb := range engineBenches {
		b.Run(eb.name, func(b *testing.B) {
			it := newBenchInterp(b, eb, hotSource)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := it.Call("Hot"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileProgram measures the one-time compile cost a campaign
// amortizes over all rounds and experiments (closure tree + lowered
// bytecode are built in the same pass).
func BenchmarkCompileProgram(b *testing.B) {
	src := []byte(benchSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileProgram([]SourceUnit{{Name: "w.go", Src: src}}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCompiledHotPathAllocs asserts the sync.Pool'd frame path on both
// compiled engines: the hot loop must allocate far less than the
// tree-walk (which builds a Scope map per block per iteration) and stay
// under a fixed small bound per call.
func TestCompiledHotPathAllocs(t *testing.T) {
	tw := New(Config{MaxSteps: 1 << 60})
	if err := tw.LoadSource("w.go", []byte(hotSource)); err != nil {
		t.Fatal(err)
	}
	tree := testing.AllocsPerRun(200, func() {
		if _, err := tw.Call("Hot"); err != nil {
			t.Fatal(err)
		}
	})

	for _, eb := range engineBenches {
		if eb.treeWalk {
			continue
		}
		crun := newBenchInterp(t, eb, hotSource)
		compiled := testing.AllocsPerRun(200, func() {
			if _, err := crun.Call("Hot"); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("allocs/call: %s=%.1f tree-walk=%.1f", eb.name, compiled, tree)
		if compiled > 8 {
			t.Errorf("%s hot path allocates %.1f/call, want <= 8 (pooled frames)", eb.name, compiled)
		}
		if compiled*20 > tree {
			t.Errorf("%s hot path allocates %.1f/call vs tree-walk %.1f — expected >= 20x reduction",
				eb.name, compiled, tree)
		}
	}
}
