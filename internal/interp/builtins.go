package interp

import (
	"fmt"
	"strconv"
	"strings"
)

// builtinFuncs is the single source of truth for the global builtins:
// registerBuiltins binds them and the compiler treats the names as
// statically known globals when deciding whether an assigned name is a
// function-root local, so the two can never drift apart.
var builtinFuncs = map[string]func(it *Interp, args []Value) (Value, error){
	"len":      builtinLen,
	"append":   builtinAppend,
	"delete":   builtinDelete,
	"print":    builtinPrint,
	"println":  builtinPrintln,
	"str":      builtinStr,
	"int":      builtinInt,
	"throw":    builtinThrow,
	"keys":     builtinKeys,
	"contains": builtinContains,
}

// registerBuiltins installs the global builtins and the standard host
// modules every minigo program can import: fmt and strlib.
func registerBuiltins(it *Interp) {
	for name, fn := range builtinFuncs {
		it.RegisterHostFunc(name, fn)
	}

	fmtMod := NewModule("fmt")
	fmtMod.Func("Sprintf", func(it *Interp, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		f, ok := args[0].(string)
		if !ok {
			return nil, it.throw("TypeError", "Sprintf format must be a string")
		}
		return FormatValue(f, args[1:]), nil
	})
	fmtMod.Func("Println", builtinPrintln)
	it.RegisterModule(fmtMod)

	strMod := NewModule("strlib")
	strMod.Func("HasPrefix", strFunc2(strings.HasPrefix))
	strMod.Func("HasSuffix", strFunc2(strings.HasSuffix))
	strMod.Func("Contains", strFunc2(strings.Contains))
	strMod.Func("ToUpper", strFunc1(strings.ToUpper))
	strMod.Func("ToLower", strFunc1(strings.ToLower))
	strMod.Func("TrimSpace", strFunc1(strings.TrimSpace))
	strMod.Func("TrimPrefix", func(it *Interp, args []Value) (Value, error) {
		a, b, err := twoStrings(it, "TrimPrefix", args)
		if err != nil {
			return nil, err
		}
		return strings.TrimPrefix(a, b), nil
	})
	strMod.Func("Replace", func(it *Interp, args []Value) (Value, error) {
		if len(args) != 3 {
			return nil, it.throw("TypeError", "Replace takes 3 arguments")
		}
		s, ok1 := args[0].(string)
		if !ok1 {
			if args[0] == nil {
				return nil, it.throw("AttributeError", "nil object has no attribute 'replace'")
			}
			return nil, it.throw("TypeError", "Replace first argument must be a string, not "+TypeName(args[0]))
		}
		old, ok2 := args[1].(string)
		nw, ok3 := args[2].(string)
		if !ok2 || !ok3 {
			return nil, it.throw("TypeError", "Replace arguments must be strings")
		}
		return strings.ReplaceAll(s, old, nw), nil
	})
	strMod.Func("Split", func(it *Interp, args []Value) (Value, error) {
		a, b, err := twoStrings(it, "Split", args)
		if err != nil {
			return nil, err
		}
		parts := strings.Split(a, b)
		out := NewList()
		for _, p := range parts {
			out.Elems = append(out.Elems, p)
		}
		return out, nil
	})
	strMod.Func("Join", func(it *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, it.throw("TypeError", "Join takes 2 arguments")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, it.throw("TypeError", "Join first argument must be a list, not "+TypeName(args[0]))
		}
		sep, ok := args[1].(string)
		if !ok {
			return nil, it.throw("TypeError", "Join separator must be a string")
		}
		parts := make([]string, len(l.Elems))
		for i, e := range l.Elems {
			s, ok := e.(string)
			if !ok {
				return nil, it.throw("TypeError", "Join list elements must be strings")
			}
			parts[i] = s
		}
		return strings.Join(parts, sep), nil
	})
	it.RegisterModule(strMod)
}

func strFunc1(f func(string) string) func(it *Interp, args []Value) (Value, error) {
	return func(it *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, it.throw("TypeError", "function takes 1 argument")
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, it.throw("TypeError", "argument must be a string, not "+TypeName(args[0]))
		}
		return f(s), nil
	}
}

func strFunc2(f func(string, string) bool) func(it *Interp, args []Value) (Value, error) {
	return func(it *Interp, args []Value) (Value, error) {
		a, b, err := twoStrings(it, "function", args)
		if err != nil {
			return nil, err
		}
		return f(a, b), nil
	}
}

func twoStrings(it *Interp, name string, args []Value) (string, string, error) {
	if len(args) != 2 {
		return "", "", it.throw("TypeError", name+" takes 2 arguments")
	}
	a, ok := args[0].(string)
	if !ok {
		// The AttributeError analog for string helpers hit with nil: the
		// message mirrors Python-etcd's missing input sanitization failure.
		if args[0] == nil {
			return "", "", it.throw("AttributeError", "nil object has no attribute 'startswith'")
		}
		return "", "", it.throw("TypeError", name+" first argument must be a string, not "+TypeName(args[0]))
	}
	b, ok := args[1].(string)
	if !ok {
		return "", "", it.throw("TypeError", name+" second argument must be a string, not "+TypeName(args[1]))
	}
	return a, b, nil
}

func builtinLen(it *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, it.throw("TypeError", "len takes 1 argument")
	}
	switch v := args[0].(type) {
	case string:
		return int64(len(v)), nil
	case *List:
		return int64(len(v.Elems)), nil
	case *Map:
		return int64(v.Len()), nil
	case nil:
		return nil, it.throw("TypeError", "object of type 'nil' has no len()")
	default:
		return nil, it.throw("TypeError", "object of type '"+TypeName(v)+"' has no len()")
	}
}

func builtinAppend(it *Interp, args []Value) (Value, error) {
	if len(args) == 0 {
		return nil, it.throw("TypeError", "append takes at least 1 argument")
	}
	l, ok := args[0].(*List)
	if !ok {
		if args[0] == nil {
			l = NewList()
		} else {
			return nil, it.throw("TypeError", "append first argument must be a list, not "+TypeName(args[0]))
		}
	}
	out := NewList(append(append([]Value(nil), l.Elems...), args[1:]...)...)
	return out, nil
}

func builtinDelete(it *Interp, args []Value) (Value, error) {
	if len(args) != 2 {
		return nil, it.throw("TypeError", "delete takes 2 arguments")
	}
	m, ok := args[0].(*Map)
	if !ok {
		return nil, it.throw("TypeError", "delete first argument must be a map, not "+TypeName(args[0]))
	}
	m.Delete(args[1])
	return nil, nil
}

func builtinPrint(it *Interp, args []Value) (Value, error) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Repr(a)
	}
	fmt.Fprint(it.stdout, strings.Join(parts, " "))
	return nil, nil
}

func builtinPrintln(it *Interp, args []Value) (Value, error) {
	if _, err := builtinPrint(it, args); err != nil {
		return nil, err
	}
	fmt.Fprintln(it.stdout)
	return nil, nil
}

func builtinStr(it *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, it.throw("TypeError", "str takes 1 argument")
	}
	return Repr(args[0]), nil
}

func builtinInt(it *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, it.throw("TypeError", "int takes 1 argument")
	}
	switch v := args[0].(type) {
	case int64:
		return v, nil
	case float64:
		return int64(v), nil
	case string:
		n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return nil, it.throw("ValueError", "invalid literal for int(): '"+v+"'")
		}
		return n, nil
	case bool:
		if v {
			return int64(1), nil
		}
		return int64(0), nil
	default:
		return nil, it.throw("TypeError", "int() argument must be a number or string, not '"+TypeName(v)+"'")
	}
}

// builtinThrow raises an exception: throw("EtcdKeyNotFound", "message").
func builtinThrow(it *Interp, args []Value) (Value, error) {
	excType := "Error"
	msg := ""
	if len(args) > 0 {
		if s, ok := args[0].(string); ok {
			excType = s
		}
	}
	if len(args) > 1 {
		msg = Repr(args[1])
	}
	return nil, it.throw(excType, msg)
}

func builtinKeys(it *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, it.throw("TypeError", "keys takes 1 argument")
	}
	m, ok := args[0].(*Map)
	if !ok {
		return nil, it.throw("TypeError", "keys argument must be a map, not "+TypeName(args[0]))
	}
	return NewList(m.Keys()...), nil
}

func builtinContains(it *Interp, args []Value) (Value, error) {
	if len(args) != 2 {
		return nil, it.throw("TypeError", "contains takes 2 arguments")
	}
	switch c := args[0].(type) {
	case *Map:
		_, ok := c.Get(args[1])
		return ok, nil
	case *List:
		for _, e := range c.Elems {
			if Equal(e, args[1]) {
				return true, nil
			}
		}
		return false, nil
	case string:
		s, ok := args[1].(string)
		if !ok {
			return nil, it.throw("TypeError", "contains needle must be a string")
		}
		return strings.Contains(c, s), nil
	default:
		return nil, it.throw("TypeError", "contains container must be map, list or string")
	}
}
