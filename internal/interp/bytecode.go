// Register-bytecode lowering of the compiled path. Alongside the
// closure tree (compile.go), every function is also lowered to a flat
// instruction array over a contiguous register frame: locals keep their
// compile.go slot numbers, expression temporaries live above them, and
// structured control flow (if/for/range/break/continue) becomes
// jump-target branches instead of closure recursion. The dispatch loop
// lives in vm.go.
//
// Lowering is fused into the closure compile: the same single AST walk
// that builds cstmt/cexpr closures also emits instructions, so slot
// resolution, capture analysis and constant folding are shared — the
// two artifacts can never disagree about where a variable lives or
// which subexpressions fold. Constructs the lowerer does not translate
// natively escape into the closure artifact at the finest possible
// granularity:
//
//   - statement escapes (opStmt) wrap the statement's compiled closure
//     and translate its control result into jumps (switch, defer, go,
//     labeled statements, parallel assignment);
//   - expression escapes (opExpr) evaluate one compiled subexpression
//     into a register (slices, composite literals, rare forms).
//
// Escaped code runs against the same frame as native instructions —
// registers below nslots are exactly the closure path's slots — so the
// mix is seamless and observable semantics (step counts, virtual clock,
// exception values, hook firing points) stay byte-identical with both
// the closure path and the tree-walk.
package interp

import (
	"go/ast"
	"go/token"
)

// Opcodes. Operand conventions are documented per op; a/b/c hold
// register indices, small immediates or jump targets, x holds the
// resolved operand that does not fit an int32 (bindings, names,
// escaped closures).
const (
	opStep        = iota // charge one interpreter step
	opConst              // a=dst, b=const pool index
	opLoadLocal          // a=dst, x=*vbind (cell-aware, unbound check)
	opStoreLocal         // a=src, x=*vbind (cell-aware)
	opStoreDecl          // a=src, x=*vbind (block decl: fresh cell per execution)
	opLoadCap            // a=dst, b=capture index, x=name
	opStoreCap           // a=src, b=capture index
	opLoadGlobal         // a=dst, b=global slot, x=name
	opStoreGlobal        // a=src, b=global slot
	opAdd                // a=l, b=r, c=dst — int fast path, else binop
	opSub                //
	opMul                //
	opLss                //
	opLeq                //
	opGtr                //
	opGeq                //
	opEql                //
	opNeq                //
	opBinOther           // a=l, b=r, c=dst, x=token.Token — no fast path
	opNot                // a=src, b=dst — !Truthy
	opNeg                // a=src, b=dst — unary minus
	opTruthy             // a=src, b=dst — Truthy coercion (&&/|| results)
	opJmp                // c=target
	opJmpFalse           // a=cond, c=target — jump when !Truthy
	opJmpTrue            // a=cond, c=target — jump when Truthy
	opJmpCmpF            // a=l, b=r, c=target, x=token — fused compare, jump when false
	opIncLocal           // a=delta, x=*vbind — i++/i-- on a local
	opCall               // a=fn reg (args at a+1..a+b), b=nargs, c=dst
	opRet                // a=result reg, or <0 for nil return
	opRetTuple           // a=first reg, b=count — multi-value return
	opIndex              // a=container, b=key, c=dst
	opAttr               // a=base, b=dst, x=name — selector read
	opStmt               // x=cstmt escape; a=break target, b=continue target
	opExpr               // a=dst, x=cexpr escape
	opAssign             // a=src, x=cassign escape (lvalue store)
	opPanic              // a=val — raise *PanicError (no step: expression form)
	opRecover            // a=dst
	opMakeMap            // a=dst
	opMakeList           // a=dst
	opNewObj             // a=dst, x=type name
	opMakeClosure        // a=dst, x=*compiledFunc — build closure + captures
	opUnwrap1            // a=reg — single-target assign keeps Tuple's first elem
	opRangeInit          // a=collection reg, b=state base (data, index)
	opRangeNext          // a=state base, b=kv base (key, value), c=exhausted target

	// Specialized forms, rewritten in finish() / emitted by the
	// const-operand lowerings. They change dispatch cost only, never
	// semantics.
	opLoadSlot  // a=dst, b=slot, x=name — non-cell local load
	opStoreSlot // a=src, b=slot — non-cell local store
	opIncSlot   // a=delta, b=slot, x=name — i++/i-- on a non-cell local
	opArithC    // a=l, b=token.Token, c=dst, x=const rhs — binary op with folded RHS
	opJmpCmpCF  // a=l, b=token.Token, c=target, x=const rhs — fused compare, jump when false
	nOpcodes
)

// regFields marks which of a/b/c hold register indices per opcode, for
// the temp-relocation pass in finish (bit0=a, bit1=b, bit2=c).
var regFields = [nOpcodes]uint8{
	opConst: 1, opLoadLocal: 1, opStoreLocal: 1, opStoreDecl: 1,
	opLoadCap: 1, opStoreCap: 1, opLoadGlobal: 1, opStoreGlobal: 1,
	opAdd: 7, opSub: 7, opMul: 7, opLss: 7, opLeq: 7, opGtr: 7,
	opGeq: 7, opEql: 7, opNeq: 7, opBinOther: 7,
	opNot: 3, opNeg: 3, opTruthy: 3,
	opJmpFalse: 1, opJmpTrue: 1, opJmpCmpF: 3,
	opCall: 5, opRet: 1, opRetTuple: 1,
	opIndex: 7, opAttr: 3, opExpr: 1, opAssign: 1,
	opPanic: 1, opRecover: 1, opMakeMap: 1, opMakeList: 1, opNewObj: 1,
	opMakeClosure: 1, opUnwrap1: 1, opRangeInit: 3, opRangeNext: 3,
	opLoadSlot: 1, opStoreSlot: 1, opArithC: 5, opJmpCmpCF: 1,
}

// instr is one VM instruction (32 bytes: hot operands inline, cold or
// wide operands behind x).
type instr struct {
	op      uint8
	a, b, c int32
	x       any
}

// code is the lowered form of one function body.
type code struct {
	ins []instr
	// nframe is the register frame size: nslots locals + the peak
	// temporary watermark.
	nframe int
	// stmtPC maps top-level body statement index -> first instruction,
	// letting Fork resume a snapshot at a statement boundary.
	stmtPC []int
	// escapes counts opStmt instructions (statements running through
	// the closure artifact); exprEscapes counts opExpr.
	escapes     int
	exprEscapes int
}

// tempBase offsets temporary registers during emission; finish
// relocates them above the function's final slot count (which grows
// while the body compiles, so temps cannot be placed eagerly).
const tempBase = 1 << 20

// patchRef is a deferred operand fix-up (field 'a', 'b' or 'c' of the
// instruction at pc).
type patchRef struct {
	pc    int
	field uint8
}

type asmLoop struct {
	breaks []patchRef
	conts  []patchRef
}

// assembler accumulates instructions for one function. All methods are
// nil-receiver safe: a nil assembler (lowering disabled while compiling
// an escaped statement's closure) turns emission into a no-op.
type assembler struct {
	ins    []instr
	ntmp   int
	maxTmp int
	loops  []asmLoop
	stmtPC []int
}

func newAssembler() *assembler {
	return &assembler{}
}

func (A *assembler) pc() int {
	if A == nil {
		return 0
	}
	return len(A.ins)
}

func (A *assembler) emit(op uint8, a, b, c int, x any) int {
	if A == nil {
		return 0
	}
	A.ins = append(A.ins, instr{op: op, a: int32(a), b: int32(b), c: int32(c), x: x})
	return len(A.ins) - 1
}

func (A *assembler) step() { A.emit(opStep, 0, 0, 0, nil) }

// markStmt records the next instruction as the start of a top-level
// body statement (the Fork resume points).
func (A *assembler) markStmt() {
	if A != nil {
		A.stmtPC = append(A.stmtPC, len(A.ins))
	}
}

// tmp allocates the next temporary register (stack discipline: callers
// snapshot the watermark with tmpMark and restore it with rel).
func (A *assembler) tmp() int {
	if A == nil {
		return 0
	}
	t := tempBase + A.ntmp
	A.ntmp++
	if A.ntmp > A.maxTmp {
		A.maxTmp = A.ntmp
	}
	return t
}

func (A *assembler) tmpMark() int {
	if A == nil {
		return 0
	}
	return A.ntmp
}

func (A *assembler) rel(mark int) {
	if A != nil {
		A.ntmp = mark
	}
}

// constOp emits dst = v with the value carried in the instruction
// itself (folded values are small scalars; no pool indirection).
func (A *assembler) constOp(dst int, v Value) {
	A.emit(opConst, dst, 0, 0, v)
}

// jump emits a branch with an unresolved target; patch resolves it to
// the current pc.
func (A *assembler) jump(op uint8, a, b int, x any) int {
	return A.emit(op, a, b, -1, x)
}

func (A *assembler) patch(pc int) {
	if A != nil && pc >= 0 {
		A.ins[pc].c = int32(len(A.ins))
	}
}

func (A *assembler) pushLoop() {
	if A != nil {
		A.loops = append(A.loops, asmLoop{})
	}
}

// popLoop resolves every break/continue recorded inside the loop.
func (A *assembler) popLoop(breakPC, contPC int) {
	if A == nil {
		return
	}
	l := A.loops[len(A.loops)-1]
	A.loops = A.loops[:len(A.loops)-1]
	for _, p := range l.breaks {
		A.setField(p, breakPC)
	}
	for _, p := range l.conts {
		A.setField(p, contPC)
	}
}

func (A *assembler) setField(p patchRef, v int) {
	switch p.field {
	case 'a':
		A.ins[p.pc].a = int32(v)
	case 'b':
		A.ins[p.pc].b = int32(v)
	default:
		A.ins[p.pc].c = int32(v)
	}
}

// breakJump / contJump register a pending branch with the innermost
// loop; outside any loop the target stays -1 and finish resolves it to
// the function end (a break/continue escaping the function returns nil,
// exactly like a ctlBreak reaching callCompiled).
func (A *assembler) breakJump(pc int, field uint8) {
	if A == nil {
		return
	}
	if n := len(A.loops); n > 0 {
		A.loops[n-1].breaks = append(A.loops[n-1].breaks, patchRef{pc, field})
	}
}

func (A *assembler) contJump(pc int, field uint8) {
	if A == nil {
		return
	}
	if n := len(A.loops); n > 0 {
		A.loops[n-1].conts = append(A.loops[n-1].conts, patchRef{pc, field})
	}
}

// escape emits a statement escape: the closure runs as-is and its
// control result is translated into jumps.
func (A *assembler) escape(cs cstmt) {
	if A == nil {
		return
	}
	pc := A.emit(opStmt, -1, -1, 0, cs)
	A.breakJump(pc, 'a')
	A.contJump(pc, 'b')
}

func (A *assembler) exprEscape(x cexpr, dst int) {
	A.emit(opExpr, dst, 0, 0, x)
}

// finish relocates temporaries above the final slot count, resolves
// function-end jump targets and seals the code object.
func (A *assembler) finish(nslots int) *code {
	if A == nil {
		return nil
	}
	end := len(A.ins)
	cd := &code{ins: A.ins, nframe: nslots + A.maxTmp, stmtPC: A.stmtPC}
	for i := range A.ins {
		in := &A.ins[i]
		if m := regFields[in.op]; m != 0 {
			if m&1 != 0 && in.a >= tempBase {
				in.a = int32(nslots) + in.a - tempBase
			}
			if m&2 != 0 && in.b >= tempBase {
				in.b = int32(nslots) + in.b - tempBase
			}
			if m&4 != 0 && in.c >= tempBase {
				in.c = int32(nslots) + in.c - tempBase
			}
		}
		switch in.op {
		case opJmp, opJmpFalse, opJmpTrue, opJmpCmpF, opJmpCmpCF, opRangeNext:
			if in.c < 0 {
				in.c = int32(end)
			}
		// Capture analysis is complete once the whole body (nested
		// literals included) has compiled, so cell flags are final here:
		// accesses to never-captured locals rewrite into direct slot
		// forms that skip the cell and binding indirection.
		case opLoadLocal:
			if b := in.x.(*vbind); !b.cell {
				in.op, in.b, in.x = opLoadSlot, int32(b.slot), b.name
			}
		case opStoreLocal:
			if b := in.x.(*vbind); !b.cell {
				in.op, in.b, in.x = opStoreSlot, int32(b.slot), nil
			}
		case opIncLocal:
			if b := in.x.(*vbind); !b.cell {
				in.op, in.b, in.x = opIncSlot, int32(b.slot), b.name
			}
		case opStmt:
			cd.escapes++
			if in.a < 0 {
				in.a = int32(end)
			}
			if in.b < 0 {
				in.b = int32(end)
			}
		case opExpr:
			cd.exprEscapes++
		}
	}
	return cd
}

// rangeList / rangePairs hold materialized iteration state in a
// register; they never escape the frame's temp slots.
type rangeList struct{ elems []Value }
type rangePairs struct{ keys, vals []Value }

// ---------------------------------------------------------------------------
// Fold mirror

// foldOf reproduces compileExprF's constant-folding decisions without
// building closures, so the lowered code folds exactly the same
// subexpressions (this matters for semantics, not just speed: a folded
// `false && f()` must never evaluate f on either engine).
func (c *compiler) foldOf(e ast.Expr) (Value, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Name {
		case "nil":
			return nil, true
		case "true":
			return true, true
		case "false":
			return false, true
		}
	case *ast.BasicLit:
		if v, err := evalLit(x); err == nil {
			return v, true
		}
	case *ast.ParenExpr:
		return c.foldOf(x.X)
	case *ast.StarExpr:
		return c.foldOf(x.X)
	case *ast.TypeAssertExpr:
		return c.foldOf(x.X)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			if v, ok := c.foldOf(x.X); ok {
				switch n := v.(type) {
				case int64:
					return -n, true
				case float64:
					return -n, true
				}
			}
		case token.ADD, token.AND:
			return c.foldOf(x.X)
		case token.NOT:
			if v, ok := c.foldOf(x.X); ok {
				return !Truthy(v), true
			}
		}
	case *ast.BinaryExpr:
		lv, lok := c.foldOf(x.X)
		switch x.Op {
		case token.LAND:
			if lok && !Truthy(lv) {
				return false, true
			}
			if rv, rok := c.foldOf(x.Y); lok && rok {
				return Truthy(rv), true
			}
			return nil, false
		case token.LOR:
			if lok && Truthy(lv) {
				return true, true
			}
			if rv, rok := c.foldOf(x.Y); lok && rok {
				return Truthy(rv), true
			}
			return nil, false
		}
		if rv, rok := c.foldOf(x.Y); lok && rok {
			if v, err := (&Interp{}).binop(x.Op, lv, rv); err == nil {
				return v, true
			}
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Expression lowering

// arithOps maps the int-fast-path operator set to specialized opcodes;
// every other operator goes through opBinOther (plain binop), matching
// compileBinary's fast-path coverage exactly.
var arithOps = map[token.Token]uint8{
	token.ADD: opAdd, token.SUB: opSub, token.MUL: opMul,
	token.LSS: opLss, token.LEQ: opLeq, token.GTR: opGtr,
	token.GEQ: opGeq, token.EQL: opEql, token.NEQ: opNeq,
}

func isCmpTok(t token.Token) bool {
	switch t {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// lowerExpr emits instructions computing e into register dst. It never
// fails: any form without a native translation evaluates through an
// opExpr escape (recompiling a subexpression closure is safe — slot
// resolution is idempotent and function literals are memoized).
func (c *compiler) lowerExpr(fc *fnCtx, e ast.Expr, dst int) {
	A := fc.asm
	if A == nil {
		return
	}
	if v, ok := c.foldOf(e); ok {
		A.constOp(dst, v)
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		acc := c.resolve(fc, x.Name)
		switch acc.kind {
		case accLocal:
			A.emit(opLoadLocal, dst, 0, 0, acc.b)
		case accCap:
			A.emit(opLoadCap, dst, acc.cap, 0, x.Name)
		default:
			A.emit(opLoadGlobal, dst, acc.gidx, 0, x.Name)
		}

	case *ast.ParenExpr:
		c.lowerExpr(fc, x.X, dst)
	case *ast.StarExpr:
		c.lowerExpr(fc, x.X, dst)
	case *ast.TypeAssertExpr:
		c.lowerExpr(fc, x.X, dst)

	case *ast.SelectorExpr:
		tm := A.tmpMark()
		t := A.tmp()
		c.lowerExpr(fc, x.X, t)
		A.emit(opAttr, t, dst, 0, x.Sel.Name)
		A.rel(tm)

	case *ast.IndexExpr:
		tm := A.tmpMark()
		t1, t2 := A.tmp(), A.tmp()
		c.lowerExpr(fc, x.X, t1)
		c.lowerExpr(fc, x.Index, t2)
		A.emit(opIndex, t1, t2, dst, nil)
		A.rel(tm)

	case *ast.BinaryExpr:
		c.lowerBinary(fc, x, dst)

	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			tm := A.tmpMark()
			t := A.tmp()
			c.lowerExpr(fc, x.X, t)
			A.emit(opNeg, t, dst, 0, nil)
			A.rel(tm)
		case token.NOT:
			tm := A.tmpMark()
			t := A.tmp()
			c.lowerExpr(fc, x.X, t)
			A.emit(opNot, t, dst, 0, nil)
			A.rel(tm)
		case token.ADD, token.AND:
			c.lowerExpr(fc, x.X, dst)
		default:
			A.exprEscape(c.compileExpr(fc, e), dst)
		}

	case *ast.CallExpr:
		c.lowerCall(fc, x, dst)

	case *ast.FuncLit:
		fn := c.litFns[x]
		if fn == nil {
			fn = c.compileFunc(fc, "<func>", x.Type, x.Body, "")
			if c.litFns == nil {
				c.litFns = make(map[*ast.FuncLit]*compiledFunc)
			}
			c.litFns[x] = fn
		}
		A.emit(opMakeClosure, dst, 0, 0, fn)

	default:
		// Slices, composite literals and anything else run through the
		// compiled closure for that one subexpression.
		A.exprEscape(c.compileExpr(fc, e), dst)
	}
}

func (c *compiler) lowerBinary(fc *fnCtx, x *ast.BinaryExpr, dst int) {
	A := fc.asm
	switch x.Op {
	case token.LAND:
		// dst = X; if !Truthy(dst) -> dst=false; else dst = Truthy(Y)
		c.lowerExpr(fc, x.X, dst)
		jf := A.jump(opJmpFalse, dst, 0, nil)
		c.lowerExpr(fc, x.Y, dst)
		A.emit(opTruthy, dst, dst, 0, nil)
		jend := A.jump(opJmp, 0, 0, nil)
		A.patch(jf)
		A.constOp(dst, false)
		A.patch(jend)
		return
	case token.LOR:
		c.lowerExpr(fc, x.X, dst)
		jt := A.jump(opJmpTrue, dst, 0, nil)
		c.lowerExpr(fc, x.Y, dst)
		A.emit(opTruthy, dst, dst, 0, nil)
		jend := A.jump(opJmp, 0, 0, nil)
		A.patch(jt)
		A.constOp(dst, true)
		A.patch(jend)
		return
	}
	// A foldable right operand fuses into the instruction (x + 1,
	// i % 2): one dispatch instead of const-load plus generic op. Only
	// the RHS fuses — swapping operands would flip the operand order in
	// binop's TypeError message.
	if rv, rok := c.foldOf(x.Y); rok {
		tm := A.tmpMark()
		t1 := A.tmp()
		c.lowerExpr(fc, x.X, t1)
		A.emit(opArithC, t1, int(x.Op), dst, rv)
		A.rel(tm)
		return
	}
	tm := A.tmpMark()
	t1, t2 := A.tmp(), A.tmp()
	c.lowerExpr(fc, x.X, t1)
	c.lowerExpr(fc, x.Y, t2)
	if op, ok := arithOps[x.Op]; ok {
		A.emit(op, t1, t2, dst, nil)
	} else {
		A.emit(opBinOther, t1, t2, dst, x.Op)
	}
	A.rel(tm)
}

// lowerCall emits a call, handling the language-level special forms the
// closure compiler matches syntactically by identifier name.
func (c *compiler) lowerCall(fc *fnCtx, x *ast.CallExpr, dst int) {
	A := fc.asm
	if id, ok := x.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			if len(x.Args) != 1 {
				A.exprEscape(c.compileExpr(fc, x), dst)
				return
			}
			tm := A.tmpMark()
			t := A.tmp()
			c.lowerExpr(fc, x.Args[0], t)
			A.emit(opPanic, t, 0, 0, nil)
			A.rel(tm)
			return
		case "recover":
			A.emit(opRecover, dst, 0, 0, nil)
			return
		case "make":
			if len(x.Args) > 0 {
				switch x.Args[0].(type) {
				case *ast.MapType:
					A.emit(opMakeMap, dst, 0, 0, nil)
					return
				case *ast.ArrayType:
					A.emit(opMakeList, dst, 0, 0, nil)
					return
				}
			}
			A.exprEscape(c.compileExpr(fc, x), dst)
			return
		case "new":
			if len(x.Args) == 1 {
				if tid, ok := x.Args[0].(*ast.Ident); ok {
					A.emit(opNewObj, dst, 0, 0, tid.Name)
					return
				}
			}
			A.exprEscape(c.compileExpr(fc, x), dst)
			return
		}
	}
	// General call: callee and arguments evaluate into contiguous
	// temporaries; opCall passes the frame subslice with no per-call
	// allocation.
	tm := A.tmpMark()
	base := A.tmp()
	c.lowerExpr(fc, x.Fun, base)
	for _, a := range x.Args {
		t := A.tmp()
		c.lowerExpr(fc, a, t)
	}
	A.emit(opCall, base, len(x.Args), dst, nil)
	A.rel(tm)
}

// lowerCond emits condition evaluation ending in a jump-when-false with
// an unresolved target (returned for patching). Comparison conditions
// fuse into a single compare-and-branch.
func (c *compiler) lowerCond(fc *fnCtx, e ast.Expr) int {
	A := fc.asm
	if A == nil {
		return -1
	}
	cond := e
	for {
		if p, ok := cond.(*ast.ParenExpr); ok {
			cond = p.X
			continue
		}
		break
	}
	if be, ok := cond.(*ast.BinaryExpr); ok && isCmpTok(be.Op) {
		if _, folded := c.foldOf(cond); !folded {
			tm := A.tmpMark()
			if rv, rok := c.foldOf(be.Y); rok {
				t1 := A.tmp()
				c.lowerExpr(fc, be.X, t1)
				pc := A.emit(opJmpCmpCF, t1, int(be.Op), -1, rv)
				A.rel(tm)
				return pc
			}
			t1, t2 := A.tmp(), A.tmp()
			c.lowerExpr(fc, be.X, t1)
			c.lowerExpr(fc, be.Y, t2)
			pc := A.jump(opJmpCmpF, t1, t2, be.Op)
			A.rel(tm)
			return pc
		}
	}
	tm := A.tmpMark()
	t := A.tmp()
	c.lowerExpr(fc, e, t)
	pc := A.jump(opJmpFalse, t, 0, nil)
	A.rel(tm)
	return pc
}

// lowerStore emits a store of register src through an lvalue.
// Identifiers store natively; other targets (obj.field, m[k]) run the
// compiled cassign, which evaluates container and key at store time —
// the same order the closure path uses.
func (c *compiler) lowerStore(fc *fnCtx, lhs ast.Expr, src int) {
	A := fc.asm
	if A == nil {
		return
	}
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		acc := c.resolve(fc, id.Name)
		switch acc.kind {
		case accLocal:
			A.emit(opStoreLocal, src, 0, 0, acc.b)
		case accCap:
			A.emit(opStoreCap, src, acc.cap, 0, nil)
		default:
			A.emit(opStoreGlobal, src, acc.gidx, 0, nil)
		}
		return
	}
	A.emit(opAssign, src, 0, 0, c.compileAssignTarget(fc, lhs))
}

// lowerableStmt reports whether compileStmt lowers this statement
// natively; everything else compiles its closure with lowering disabled
// and runs through an opStmt escape.
func lowerableStmt(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ExprStmt, *ast.ReturnStmt, *ast.IfStmt, *ast.BlockStmt,
		*ast.ForStmt, *ast.RangeStmt, *ast.EmptyStmt, *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE
	case *ast.AssignStmt:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
			return true
		}
		_, ok := compoundOp(st.Tok)
		return ok
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		return ok && (gd.Tok == token.VAR || gd.Tok == token.CONST)
	}
	return false
}
