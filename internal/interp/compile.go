// Closure compilation of minigo sources (the compile-once / execute-many
// front end). A one-time pass lowers each parsed file into a tree of Go
// closures (compiled statements and expressions) with lexical slot
// resolution done at compile time: locals become indexed slots in a flat
// frame array instead of map-based Scope chains, globals and builtins
// bind once through an interned symbol table, and constant literals fold.
//
// The compiled path preserves the tree-walk semantics EXACTLY, including
// step counts, virtual-clock advancement, error messages and the
// Python-style scoping quirks (":=" binds at function root; assignment
// walks the dynamic scope chain up to the globals). Unsupported
// constructs compile to thunks that raise the tree-walk's error when
// executed, never at compile time, so a program that the tree-walk would
// load-and-crash keeps the same observable behavior.
//
// Known (intentional) divergence: the tree-walk resolves bindings against
// the runtime scope chain, so a name assigned inside a function becomes a
// function-root local only if no enclosing binding exists *at that
// moment*. Compilation decides this statically from lexical structure,
// which matches the dynamic behavior for every program whose enclosing
// bindings are created before the nested code runs (all realistic
// targets; the equivalence suite in equiv_test.go locks this in).
package interp

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// cstmt is a compiled statement; cexpr a compiled expression. Both close
// over their resolved operands and execute against an interpreter (clock,
// steps, frames, globals) and the current slot frame.
type cstmt func(it *Interp, fr *cframe) (control, Value, error)
type cexpr func(it *Interp, fr *cframe) (Value, error)

// cassign stores a value through a compiled lvalue.
type cassign func(it *Interp, fr *cframe, v Value) error

// cell boxes a local variable captured by a nested function literal, so
// inner and outer frames share one mutable binding.
type cell struct{ v Value }

// unboundMarker is the sentinel occupying slots of locals that are
// declared (statically) but not yet assigned (dynamically); reading one
// raises UnboundLocalError, matching the tree-walk's missing-name path.
type unboundMarker struct{}

var unbound Value = unboundMarker{}

// vbind is one resolved local binding (function-root or block-scoped).
// cell is set when any nested function literal captures the binding; it
// is written during compilation and only read at run time, after the
// whole compile finished, so plain field access is safe.
type vbind struct {
	name string
	slot int
	cell bool
}

// capSource tells a closure where to fetch one captured cell from the
// creating frame: either a local slot of that frame or one of its own
// captures (for transitive capture).
type capSource struct {
	fromSlot int // >= 0: enclosing frame slot holding the *cell
	fromCap  int // >= 0: index into the enclosing frame's captures
}

// compiledFunc is the compile-once form of a function: parameters and
// receiver resolved to slots, the body lowered to closures, and the
// capture recipe for building closure values.
type compiledFunc struct {
	name      string
	params    []*vbind
	recv      *vbind // nil for plain functions
	nslots    int
	rootCells []int // slots that get a fresh *cell at frame setup
	caps      []capSource
	body      []cstmt
	// code is the lowered register-bytecode form of the body (vm.go);
	// built alongside body by the same compile walk.
	code *code
}

// compiledClosure is the runtime value of a compiled function, optionally
// bound to captured cells and a method receiver. It plays the role of
// *Closure on the compiled path.
type compiledClosure struct {
	fn   *compiledFunc
	caps []*cell
	recv Value
}

// cframe is the flat slot frame of one compiled call.
type cframe struct {
	slots []Value
	caps  []*cell
}

// runCstmts executes a compiled statement list (the analog of execBlock).
func runCstmts(it *Interp, fr *cframe, list []cstmt) (control, Value, error) {
	for _, s := range list {
		ctl, v, err := s(it, fr)
		if err != nil || ctl != ctlNone {
			return ctl, v, err
		}
	}
	return ctlNone, nil, nil
}

// ---------------------------------------------------------------------------
// Compilation context

// fnCtx is the per-function compile context: the slot scopes of one
// function being compiled, linked to its lexical parent.
type fnCtx struct {
	parent *fnCtx
	fn     *compiledFunc
	// blocks is the scope stack; blocks[0] is the function root scope.
	blocks []map[string]*vbind
	capIdx map[*vbind]int
	// asm receives the function's lowered instructions; set to nil while
	// an escaped statement's closure compiles, which disables emission
	// (the assembler methods are nil-receiver safe).
	asm *assembler
}

func (fc *fnCtx) newSlot(name string) *vbind {
	b := &vbind{name: name, slot: fc.fn.nslots}
	fc.fn.nslots++
	return b
}

// compiler compiles one source unit against the program-wide symbol
// table and the set of statically known global names.
type compiler struct {
	file    string
	syms    *linker
	globals map[string]bool // top-level decls + builtins + import names
	// fns collects every compiledFunc produced while compiling the unit
	// (top-level functions, methods and nested literals); snapshot/fork
	// uses it as the unit's provenance set when translating closures
	// between a base program and a derived one.
	fns []*compiledFunc
	// litFns memoizes function-literal compilation: the fused walk can
	// visit one literal twice (closure artifact + lowered emission) and
	// must produce a single compiledFunc for it.
	litFns map[*ast.FuncLit]*compiledFunc
}

// access is a resolved variable reference.
type access struct {
	kind int // accLocal, accCap, accGlobal
	b    *vbind
	cap  int
	gidx int
	name string
}

const (
	accLocal = iota
	accCap
	accGlobal
)

// lookupLocal finds a binding in the function's own scope stack.
func lookupLocal(fc *fnCtx, name string) (*vbind, bool) {
	for i := len(fc.blocks) - 1; i >= 0; i-- {
		if b, ok := fc.blocks[i][name]; ok {
			return b, true
		}
	}
	return nil, false
}

// capFor returns the capture index of an ancestor-owned binding in fc,
// threading the capture through every intermediate function.
func capFor(fc *fnCtx, b *vbind, owner *fnCtx) int {
	if idx, ok := fc.capIdx[b]; ok {
		return idx
	}
	var src capSource
	if fc.parent == owner {
		src = capSource{fromSlot: b.slot, fromCap: -1}
	} else {
		src = capSource{fromSlot: -1, fromCap: capFor(fc.parent, b, owner)}
	}
	idx := len(fc.fn.caps)
	fc.fn.caps = append(fc.fn.caps, src)
	fc.capIdx[b] = idx
	return idx
}

// resolve resolves a name at the current lexical position: own scopes,
// then enclosing functions (becoming a capture), then a global slot.
func (c *compiler) resolve(fc *fnCtx, name string) access {
	if fc != nil {
		if b, ok := lookupLocal(fc, name); ok {
			return access{kind: accLocal, b: b, name: name}
		}
		for anc := fc.parent; anc != nil; anc = anc.parent {
			if b, ok := lookupLocal(anc, name); ok {
				b.cell = true
				return access{kind: accCap, cap: capFor(fc, b, anc), name: name}
			}
		}
	}
	return access{kind: accGlobal, gidx: c.syms.intern(name), name: name}
}

// loadVar compiles a variable read.
func (c *compiler) loadVar(fc *fnCtx, name string) cexpr {
	acc := c.resolve(fc, name)
	switch acc.kind {
	case accLocal:
		b := acc.b
		slot := b.slot
		return func(it *Interp, fr *cframe) (Value, error) {
			v := fr.slots[slot]
			if b.cell {
				if cl, ok := v.(*cell); ok {
					v = cl.v
				}
			}
			if v == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+name+"' referenced before assignment")
			}
			return v, nil
		}
	case accCap:
		idx := acc.cap
		return func(it *Interp, fr *cframe) (Value, error) {
			v := fr.caps[idx].v
			if v == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+name+"' referenced before assignment")
			}
			return v, nil
		}
	default:
		gidx := acc.gidx
		return func(it *Interp, fr *cframe) (Value, error) {
			v := it.gslots[gidx]
			if v == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+name+"' referenced before assignment")
			}
			return v, nil
		}
	}
}

// storeVar compiles a variable write. Both "=" and ":=" behave
// identically at run time in the tree-walk (assign if bound anywhere,
// else define at function root), which static resolution reproduces.
func (c *compiler) storeVar(fc *fnCtx, name string) cassign {
	if name == "_" {
		return func(it *Interp, fr *cframe, v Value) error { return nil }
	}
	acc := c.resolve(fc, name)
	switch acc.kind {
	case accLocal:
		b := acc.b
		slot := b.slot
		return func(it *Interp, fr *cframe, v Value) error {
			if b.cell {
				if cl, ok := fr.slots[slot].(*cell); ok {
					cl.v = v
				} else {
					fr.slots[slot] = &cell{v: v}
				}
			} else {
				fr.slots[slot] = v
			}
			return nil
		}
	case accCap:
		idx := acc.cap
		return func(it *Interp, fr *cframe, v Value) error {
			fr.caps[idx].v = v
			return nil
		}
	default:
		gidx := acc.gidx
		return func(it *Interp, fr *cframe, v Value) error {
			it.gslots[gidx] = v
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Assigned-name collection (pass 1)

// collectAssigned gathers every identifier that a function body assigns
// (":=", "=", op-assign, ++/--, range binds, var/const decls), without
// descending into nested function literals: those names are the
// function-root binding candidates.
func collectAssigned(list []ast.Stmt, out map[string]bool) {
	var stmt func(ast.Stmt)
	addExpr := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	stmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.AssignStmt:
			for _, l := range st.Lhs {
				addExpr(l)
			}
		case *ast.IncDecStmt:
			addExpr(st.X)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, n := range vs.Names {
							if n.Name != "_" {
								out[n.Name] = true
							}
						}
					}
				}
			}
		case *ast.RangeStmt:
			if st.Key != nil {
				addExpr(st.Key)
			}
			if st.Value != nil {
				addExpr(st.Value)
			}
			collectAssigned(st.Body.List, out)
		case *ast.IfStmt:
			if st.Init != nil {
				stmt(st.Init)
			}
			collectAssigned(st.Body.List, out)
			if st.Else != nil {
				stmt(st.Else)
			}
		case *ast.ForStmt:
			if st.Init != nil {
				stmt(st.Init)
			}
			if st.Post != nil {
				stmt(st.Post)
			}
			collectAssigned(st.Body.List, out)
		case *ast.BlockStmt:
			collectAssigned(st.List, out)
		case *ast.SwitchStmt:
			if st.Init != nil {
				stmt(st.Init)
			}
			for _, raw := range st.Body.List {
				if cc, ok := raw.(*ast.CaseClause); ok {
					collectAssigned(cc.Body, out)
				}
			}
		case *ast.LabeledStmt:
			stmt(st.Stmt)
		}
	}
	for _, s := range list {
		stmt(s)
	}
}

// resolvableAbove reports whether a name is bound in an enclosing
// function's scopes at the current lexical position.
func resolvableAbove(fc *fnCtx, name string) bool {
	for anc := fc; anc != nil; anc = anc.parent {
		if _, ok := lookupLocal(anc, name); ok {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Function compilation

// compileFunc lowers one function (top-level, method or literal).
func (c *compiler) compileFunc(parent *fnCtx, name string, ft *ast.FuncType,
	body *ast.BlockStmt, recvName string) *compiledFunc {

	fn := &compiledFunc{name: name}
	c.fns = append(c.fns, fn)
	fc := &fnCtx{
		parent: parent,
		fn:     fn,
		blocks: []map[string]*vbind{make(map[string]*vbind)},
		capIdx: make(map[*vbind]int),
		asm:    newAssembler(),
	}
	root := fc.blocks[0]

	if recvName != "" && recvName != "_" {
		b := fc.newSlot(recvName)
		root[recvName] = b
		fn.recv = b
	}
	for _, p := range paramNames(ft) {
		if p == "_" {
			// Anonymous params still consume an argument position; bind a
			// throwaway slot so arity bookkeeping stays aligned.
			b := fc.newSlot("_")
			fn.params = append(fn.params, b)
			continue
		}
		if b, ok := root[p]; ok {
			fn.params = append(fn.params, b)
			continue
		}
		b := fc.newSlot(p)
		root[p] = b
		fn.params = append(fn.params, b)
	}

	// Function-root candidates: every assigned name that neither an
	// enclosing function scope nor a statically known global claims.
	assigned := make(map[string]bool)
	collectAssigned(body.List, assigned)
	names := make([]string, 0, len(assigned))
	for n := range assigned {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, ok := root[n]; ok {
			continue
		}
		if parent != nil && resolvableAbove(parent, n) {
			continue
		}
		if c.globals[n] {
			continue
		}
		root[n] = fc.newSlot(n)
	}

	fn.body = c.compileStmts(fc, body.List)
	fn.code = fc.asm.finish(fn.nslots)

	for _, b := range root {
		if b.cell {
			fn.rootCells = append(fn.rootCells, b.slot)
		}
	}
	sort.Ints(fn.rootCells)
	return fn
}

// ---------------------------------------------------------------------------
// Statement compilation

func (c *compiler) compileStmts(fc *fnCtx, list []ast.Stmt) []cstmt {
	// At function root (block depth 1) each statement start is a Fork
	// resume point; record its instruction offset.
	atRoot := len(fc.blocks) == 1
	out := make([]cstmt, len(list))
	for i, s := range list {
		if atRoot {
			fc.asm.markStmt()
		}
		out[i] = c.compileStmt(fc, s)
	}
	return out
}

// compileBlockStmts compiles a nested statement list in its own block
// scope (the analog of execBlock with a fresh Scope: only var/const
// declarations are block-scoped).
func (c *compiler) compileBlockStmts(fc *fnCtx, list []ast.Stmt) []cstmt {
	fc.blocks = append(fc.blocks, make(map[string]*vbind))
	out := c.compileStmts(fc, list)
	fc.blocks = fc.blocks[:len(fc.blocks)-1]
	return out
}

// errStmt compiles to a statement that raises a plain error when
// executed, matching the tree-walk's lazily-reported unsupported forms.
func errStmt(format string, args ...any) cstmt {
	err := fmt.Errorf(format, args...)
	return func(it *Interp, fr *cframe) (control, Value, error) {
		if serr := it.step(); serr != nil {
			return ctlNone, nil, serr
		}
		return ctlNone, nil, err
	}
}

// compileStmt compiles one statement into its closure form and, when
// lowering is active, emits the equivalent instructions. Statements the
// lowerer does not translate natively compile their closure with
// emission disabled and run through an opStmt escape.
func (c *compiler) compileStmt(fc *fnCtx, s ast.Stmt) cstmt {
	if A := fc.asm; A != nil && !lowerableStmt(s) {
		fc.asm = nil
		cs := c.compileStmtInner(fc, s)
		fc.asm = A
		A.escape(cs)
		return cs
	}
	return c.compileStmtInner(fc, s)
}

func (c *compiler) compileStmtInner(fc *fnCtx, s ast.Stmt) cstmt {
	A := fc.asm
	switch st := s.(type) {
	case *ast.ExprStmt:
		x := c.compileExpr(fc, st.X)
		A.step()
		tm := A.tmpMark()
		c.lowerExpr(fc, st.X, A.tmp())
		A.rel(tm)
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			_, err := x(it, fr)
			return ctlNone, nil, err
		}

	case *ast.AssignStmt:
		return c.compileAssign(fc, st)

	case *ast.IncDecStmt:
		x := c.compileExpr(fc, st.X)
		asn := c.compileAssignTarget(fc, st.X)
		delta := int64(1)
		if st.Tok == token.DEC {
			delta = -1
		}
		A.step()
		emitted := false
		if id, ok := st.X.(*ast.Ident); ok && A != nil {
			if acc := c.resolve(fc, id.Name); acc.kind == accLocal {
				A.emit(opIncLocal, int(delta), 0, 0, acc.b)
				emitted = true
			}
		}
		if A != nil && !emitted {
			tm := A.tmpMark()
			t1, t2 := A.tmp(), A.tmp()
			c.lowerExpr(fc, st.X, t1)
			A.constOp(t2, delta)
			A.emit(opAdd, t1, t2, t1, nil)
			c.lowerStore(fc, st.X, t1)
			A.rel(tm)
		}
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			cur, err := x(it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
			nv, err := it.binop(token.ADD, cur, delta)
			if err != nil {
				return ctlNone, nil, err
			}
			return ctlNone, nil, asn(it, fr, nv)
		}

	case *ast.ReturnStmt:
		A.step()
		switch len(st.Results) {
		case 0:
			A.emit(opRet, -1, 0, 0, nil)
			return func(it *Interp, fr *cframe) (control, Value, error) {
				if err := it.step(); err != nil {
					return ctlNone, nil, err
				}
				return ctlReturn, nil, nil
			}
		case 1:
			x := c.compileExpr(fc, st.Results[0])
			tm := A.tmpMark()
			t := A.tmp()
			c.lowerExpr(fc, st.Results[0], t)
			A.emit(opRet, t, 0, 0, nil)
			A.rel(tm)
			return func(it *Interp, fr *cframe) (control, Value, error) {
				if err := it.step(); err != nil {
					return ctlNone, nil, err
				}
				v, err := x(it, fr)
				return ctlReturn, v, err
			}
		default:
			xs := make([]cexpr, len(st.Results))
			for i, r := range st.Results {
				xs[i] = c.compileExpr(fc, r)
			}
			// Contiguous temporaries so opRetTuple can slice the frame.
			tm := A.tmpMark()
			ts := make([]int, len(st.Results))
			for i := range ts {
				ts[i] = A.tmp()
			}
			for i, r := range st.Results {
				c.lowerExpr(fc, r, ts[i])
			}
			A.emit(opRetTuple, ts[0], len(st.Results), 0, nil)
			A.rel(tm)
			return func(it *Interp, fr *cframe) (control, Value, error) {
				if err := it.step(); err != nil {
					return ctlNone, nil, err
				}
				vals := make([]Value, len(xs))
				for i, x := range xs {
					v, err := x(it, fr)
					if err != nil {
						return ctlNone, nil, err
					}
					vals[i] = v
				}
				return ctlReturn, &Tuple{Elems: vals}, nil
			}
		}

	case *ast.IfStmt:
		A.step()
		var initS cstmt
		if st.Init != nil {
			initS = c.compileStmt(fc, st.Init)
		}
		cond := c.compileExpr(fc, st.Cond)
		jz := c.lowerCond(fc, st.Cond)
		body := c.compileBlockStmts(fc, st.Body.List)
		var elseList []cstmt
		var elseS cstmt
		if st.Else != nil {
			jend := A.jump(opJmp, 0, 0, nil)
			A.patch(jz)
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				elseList = c.compileBlockStmts(fc, blk.List)
			} else {
				elseS = c.compileStmt(fc, st.Else)
			}
			A.patch(jend)
		} else {
			A.patch(jz)
		}
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			if initS != nil {
				if ctl, v, err := initS(it, fr); err != nil || ctl != ctlNone {
					return ctl, v, err
				}
			}
			cv, err := cond(it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
			if Truthy(cv) {
				return runCstmts(it, fr, body)
			}
			if elseList != nil {
				return runCstmts(it, fr, elseList)
			}
			if elseS != nil {
				return elseS(it, fr)
			}
			return ctlNone, nil, nil
		}

	case *ast.BlockStmt:
		A.step()
		body := c.compileBlockStmts(fc, st.List)
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			return runCstmts(it, fr, body)
		}

	case *ast.ForStmt:
		A.step()
		var initS, postS cstmt
		if st.Init != nil {
			initS = c.compileStmt(fc, st.Init)
		}
		head := A.pc()
		A.step() // per-iteration step, matching the closure loop head
		var cond cexpr
		jz := -1
		if st.Cond != nil {
			cond = c.compileExpr(fc, st.Cond)
			jz = c.lowerCond(fc, st.Cond)
		}
		A.pushLoop()
		body := c.compileBlockStmts(fc, st.Body.List)
		contPC := A.pc()
		if st.Post != nil {
			postS = c.compileStmt(fc, st.Post)
		}
		A.emit(opJmp, 0, 0, head, nil)
		A.patch(jz)
		A.popLoop(A.pc(), contPC)
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			if initS != nil {
				if ctl, v, err := initS(it, fr); err != nil || ctl != ctlNone {
					return ctl, v, err
				}
			}
			for {
				if err := it.step(); err != nil {
					return ctlNone, nil, err
				}
				if cond != nil {
					cv, err := cond(it, fr)
					if err != nil {
						return ctlNone, nil, err
					}
					if !Truthy(cv) {
						break
					}
				}
				ctl, v, err := runCstmts(it, fr, body)
				if err != nil {
					return ctlNone, nil, err
				}
				if ctl == ctlBreak {
					break
				}
				if ctl == ctlReturn {
					return ctl, v, nil
				}
				if postS != nil {
					if _, _, err := postS(it, fr); err != nil {
						return ctlNone, nil, err
					}
				}
			}
			return ctlNone, nil, nil
		}

	case *ast.RangeStmt:
		return c.compileRange(fc, st)

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			A.step()
			A.breakJump(A.jump(opJmp, 0, 0, nil), 'c')
			return func(it *Interp, fr *cframe) (control, Value, error) {
				if err := it.step(); err != nil {
					return ctlNone, nil, err
				}
				return ctlBreak, nil, nil
			}
		case token.CONTINUE:
			A.step()
			A.contJump(A.jump(opJmp, 0, 0, nil), 'c')
			return func(it *Interp, fr *cframe) (control, Value, error) {
				if err := it.step(); err != nil {
					return ctlNone, nil, err
				}
				return ctlContinue, nil, nil
			}
		default:
			return errStmt("interp: unsupported branch %s", st.Tok)
		}

	case *ast.SwitchStmt:
		return c.compileSwitch(fc, st)

	case *ast.DeclStmt:
		return c.compileDecl(fc, st)

	case *ast.DeferStmt:
		fnx := c.compileExpr(fc, st.Call.Fun)
		argxs := make([]cexpr, len(st.Call.Args))
		for i, a := range st.Call.Args {
			argxs[i] = c.compileExpr(fc, a)
		}
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			frm := it.currentFrame()
			if frm == nil {
				return ctlNone, nil, fmt.Errorf("interp: defer outside a function")
			}
			fn, err := fnx(it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
			args := make([]Value, len(argxs))
			for i, ax := range argxs {
				args[i], err = ax(it, fr)
				if err != nil {
					return ctlNone, nil, err
				}
			}
			frm.defers = append(frm.defers, deferredCall{fn: fn, args: args})
			return ctlNone, nil, nil
		}

	case *ast.GoStmt:
		// Goroutines run synchronously for determinism (see tree-walk).
		call := c.compileExpr(fc, st.Call)
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			_, err := call(it, fr)
			return ctlNone, nil, err
		}

	case *ast.LabeledStmt:
		inner := c.compileStmt(fc, st.Stmt)
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			return inner(it, fr)
		}

	case *ast.EmptyStmt:
		A.step()
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			return ctlNone, nil, nil
		}

	default:
		return errStmt("interp: unsupported statement %T", s)
	}
}

// compileDecl compiles var/const declarations. Top-of-body declarations
// bind at the function root (same scope the tree-walk defines them in);
// declarations inside nested blocks are block-scoped and shadow.
func (c *compiler) compileDecl(fc *fnCtx, st *ast.DeclStmt) cstmt {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || (gd.Tok != token.VAR && gd.Tok != token.CONST) {
		return errStmt("interp: unsupported declaration")
	}
	type declOne struct {
		init  cexpr // nil means zero-value nil
		store cassign
	}
	var ops []declOne
	atRoot := len(fc.blocks) == 1
	A := fc.asm
	A.step()
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var init cexpr
			if i < len(vs.Values) {
				init = c.compileExpr(fc, vs.Values[i])
			}
			tm := A.tmpMark()
			t := A.tmp()
			if i < len(vs.Values) {
				c.lowerExpr(fc, vs.Values[i], t)
			} else {
				A.constOp(t, nil)
			}
			var store cassign
			if name.Name == "_" {
				store = func(it *Interp, fr *cframe, v Value) error { return nil }
			} else if atRoot {
				// Root-level decl: same binding the pre-pass allocated.
				store = c.storeVar(fc, name.Name)
				c.lowerStore(fc, name, t)
			} else {
				// Block-scoped: fresh binding shadowing outer ones. A
				// captured block variable gets a fresh cell every time the
				// declaration executes (per-iteration capture semantics).
				top := fc.blocks[len(fc.blocks)-1]
				b, exists := top[name.Name]
				if !exists {
					b = fc.newSlot(name.Name)
					top[name.Name] = b
				}
				slot := b.slot
				store = func(it *Interp, fr *cframe, v Value) error {
					if b.cell {
						fr.slots[slot] = &cell{v: v}
					} else {
						fr.slots[slot] = v
					}
					return nil
				}
				A.emit(opStoreDecl, t, 0, 0, b)
			}
			A.rel(tm)
			ops = append(ops, declOne{init: init, store: store})
		}
	}
	return func(it *Interp, fr *cframe) (control, Value, error) {
		if err := it.step(); err != nil {
			return ctlNone, nil, err
		}
		for _, op := range ops {
			var v Value
			if op.init != nil {
				var err error
				v, err = op.init(it, fr)
				if err != nil {
					return ctlNone, nil, err
				}
			}
			if err := op.store(it, fr, v); err != nil {
				return ctlNone, nil, err
			}
		}
		return ctlNone, nil, nil
	}
}

func (c *compiler) compileRange(fc *fnCtx, st *ast.RangeStmt) cstmt {
	A := fc.asm
	A.step()
	collx := c.compileExpr(fc, st.X)
	// Iterator state lives in four contiguous temporaries that stay
	// reserved across the body: materialized data, index, key, value.
	tm := A.tmpMark()
	ct := A.tmp()
	c.lowerExpr(fc, st.X, ct)
	state := A.tmp()
	A.tmp() // index register at state+1
	kv := A.tmp()
	A.tmp() // value register at kv+1
	A.emit(opRangeInit, ct, state, 0, nil)
	loop := A.pc()
	jend := A.jump(opRangeNext, state, kv, nil)
	A.step() // per-iteration step, matching runIter
	var bindKey, bindVal cassign
	if st.Key != nil {
		bindKey = c.compileAssignTarget(fc, st.Key)
		c.lowerStore(fc, st.Key, kv)
	}
	if st.Value != nil {
		bindVal = c.compileAssignTarget(fc, st.Value)
		c.lowerStore(fc, st.Value, kv+1)
	}
	A.pushLoop()
	body := c.compileBlockStmts(fc, st.Body.List)
	A.emit(opJmp, 0, 0, loop, nil)
	A.patch(jend)
	A.popLoop(A.pc(), loop)
	A.rel(tm)

	runIter := func(it *Interp, fr *cframe, k, v Value) (control, Value, bool, error) {
		if err := it.step(); err != nil {
			return ctlNone, nil, false, err
		}
		if bindKey != nil {
			if err := bindKey(it, fr, k); err != nil {
				return ctlNone, nil, false, err
			}
		}
		if bindVal != nil {
			if err := bindVal(it, fr, v); err != nil {
				return ctlNone, nil, false, err
			}
		}
		ctl, rv, err := runCstmts(it, fr, body)
		if err != nil {
			return ctlNone, nil, false, err
		}
		if ctl == ctlBreak {
			return ctlNone, nil, true, nil
		}
		if ctl == ctlReturn {
			return ctl, rv, true, nil
		}
		return ctlNone, nil, false, nil
	}

	return func(it *Interp, fr *cframe) (control, Value, error) {
		if err := it.step(); err != nil {
			return ctlNone, nil, err
		}
		coll, err := collx(it, fr)
		if err != nil {
			return ctlNone, nil, err
		}
		switch cv := coll.(type) {
		case *List:
			// Snapshot the elements up front: mutation during iteration is
			// invisible, exactly like the tree-walk's pair materialization.
			elems := append([]Value(nil), cv.Elems...)
			for i, e := range elems {
				ctl, rv, stop, err := runIter(it, fr, int64(i), e)
				if err != nil || ctl == ctlReturn {
					return ctl, rv, err
				}
				if stop {
					break
				}
			}
		case *Map:
			keys := cv.Keys()
			vals := make([]Value, len(keys))
			for i, k := range keys {
				vals[i], _ = cv.Get(k)
			}
			for i, k := range keys {
				ctl, rv, stop, err := runIter(it, fr, k, vals[i])
				if err != nil || ctl == ctlReturn {
					return ctl, rv, err
				}
				if stop {
					break
				}
			}
		case string:
			for i := 0; i < len(cv); i++ {
				ctl, rv, stop, err := runIter(it, fr, int64(i), string(cv[i]))
				if err != nil || ctl == ctlReturn {
					return ctl, rv, err
				}
				if stop {
					break
				}
			}
		case int64:
			for i := int64(0); i < cv; i++ {
				ctl, rv, stop, err := runIter(it, fr, i, nil)
				if err != nil || ctl == ctlReturn {
					return ctl, rv, err
				}
				if stop {
					break
				}
			}
		case nil:
			return ctlNone, nil, it.throw("TypeError", "nil object is not iterable")
		default:
			return ctlNone, nil, it.throw("TypeError", TypeName(coll)+" object is not iterable")
		}
		return ctlNone, nil, nil
	}
}

func (c *compiler) compileSwitch(fc *fnCtx, st *ast.SwitchStmt) cstmt {
	var initS cstmt
	if st.Init != nil {
		initS = c.compileStmt(fc, st.Init)
	}
	var tagx cexpr
	if st.Tag != nil {
		tagx = c.compileExpr(fc, st.Tag)
	}
	type clause struct {
		exprs []cexpr
		body  []cstmt
	}
	var clauses []clause
	var defaultBody []cstmt
	hasDefault := false
	for _, raw := range st.Body.List {
		cc, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultBody = c.compileBlockStmts(fc, cc.Body)
			hasDefault = true
			continue
		}
		cl := clause{body: c.compileBlockStmts(fc, cc.Body)}
		for _, ce := range cc.List {
			cl.exprs = append(cl.exprs, c.compileExpr(fc, ce))
		}
		clauses = append(clauses, cl)
	}
	hasTag := st.Tag != nil
	return func(it *Interp, fr *cframe) (control, Value, error) {
		if err := it.step(); err != nil {
			return ctlNone, nil, err
		}
		if initS != nil {
			if ctl, v, err := initS(it, fr); err != nil || ctl != ctlNone {
				return ctl, v, err
			}
		}
		var tag Value
		if tagx != nil {
			var err error
			tag, err = tagx(it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
		}
		for _, cl := range clauses {
			for _, cx := range cl.exprs {
				cv, err := cx(it, fr)
				if err != nil {
					return ctlNone, nil, err
				}
				hit := false
				if hasTag {
					hit = Equal(tag, cv)
				} else {
					hit = Truthy(cv)
				}
				if hit {
					ctl, v, err := runCstmts(it, fr, cl.body)
					if ctl == ctlBreak {
						ctl = ctlNone
					}
					return ctl, v, err
				}
			}
		}
		if hasDefault {
			ctl, v, err := runCstmts(it, fr, defaultBody)
			if ctl == ctlBreak {
				ctl = ctlNone
			}
			return ctl, v, err
		}
		return ctlNone, nil, nil
	}
}
