package interp

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
)

// ---------------------------------------------------------------------------
// Assignment compilation

// compileAssignTarget compiles an lvalue (the analog of assignTo).
func (c *compiler) compileAssignTarget(fc *fnCtx, lhs ast.Expr) cassign {
	switch l := lhs.(type) {
	case *ast.Ident:
		return c.storeVar(fc, l.Name)
	case *ast.SelectorExpr:
		basex := c.compileExpr(fc, l.X)
		name := l.Sel.Name
		return func(it *Interp, fr *cframe, v Value) error {
			base, err := basex(it, fr)
			if err != nil {
				return err
			}
			obj, ok := base.(*Object)
			if !ok {
				if base == nil {
					return it.throw("AttributeError", "nil object has no attribute '"+name+"'")
				}
				return it.throw("TypeError", "cannot set attribute on "+TypeName(base))
			}
			obj.Fields[name] = v
			return nil
		}
	case *ast.IndexExpr:
		contx := c.compileExpr(fc, l.X)
		keyx := c.compileExpr(fc, l.Index)
		return func(it *Interp, fr *cframe, v Value) error {
			container, err := contx(it, fr)
			if err != nil {
				return err
			}
			key, err := keyx(it, fr)
			if err != nil {
				return err
			}
			switch cv := container.(type) {
			case *List:
				i, ok := key.(int64)
				if !ok {
					return it.throw("TypeError", "list index must be int, not "+TypeName(key))
				}
				if i < 0 || int(i) >= len(cv.Elems) {
					return it.throw("IndexError", "list index out of range")
				}
				cv.Elems[i] = v
				return nil
			case *Map:
				if !hashable(key) {
					return it.throw("TypeError", "unhashable map key type "+TypeName(key))
				}
				cv.Set(key, v)
				return nil
			case nil:
				return it.throw("TypeError", "nil object does not support item assignment")
			default:
				return it.throw("TypeError", TypeName(container)+" object does not support item assignment")
			}
		}
	case *ast.StarExpr:
		return c.compileAssignTarget(fc, l.X)
	default:
		err := fmt.Errorf("interp: unsupported assignment target %T", lhs)
		return func(it *Interp, fr *cframe, v Value) error { return err }
	}
}

func (c *compiler) compileAssign(fc *fnCtx, st *ast.AssignStmt) cstmt {
	// Compound assignment: x op= y.
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return errStmt("interp: invalid compound assignment")
		}
		curx := c.compileExpr(fc, st.Lhs[0])
		rhsx := c.compileExpr(fc, st.Rhs[0])
		op, opOK := compoundOp(st.Tok)
		asn := c.compileAssignTarget(fc, st.Lhs[0])
		tok := st.Tok
		if A := fc.asm; A != nil && opOK {
			A.step()
			tm := A.tmpMark()
			t1, t2 := A.tmp(), A.tmp()
			c.lowerExpr(fc, st.Lhs[0], t1)
			c.lowerExpr(fc, st.Rhs[0], t2)
			if aop, ok := arithOps[op]; ok {
				A.emit(aop, t1, t2, t1, nil)
			} else {
				A.emit(opBinOther, t1, t2, t1, op)
			}
			c.lowerStore(fc, st.Lhs[0], t1)
			A.rel(tm)
		}
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			cur, err := curx(it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
			rhs, err := rhsx(it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
			if !opOK {
				return ctlNone, nil, fmt.Errorf("interp: unsupported assignment operator %s", tok)
			}
			nv, err := it.binop(op, cur, rhs)
			if err != nil {
				return ctlNone, nil, err
			}
			return ctlNone, nil, asn(it, fr, nv)
		}
	}

	// Plain and parallel assignment; compile all targets up front.
	targets := make([]cassign, len(st.Lhs))
	for i, l := range st.Lhs {
		targets[i] = c.compileAssignTarget(fc, l)
	}

	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Tuple unpack (multi-return) or comma-ok map read.
		nl := len(st.Lhs)
		fullx := c.compileExpr(fc, st.Rhs[0])
		var contx, keyx cexpr
		if idx, ok := st.Rhs[0].(*ast.IndexExpr); ok && nl == 2 {
			contx = c.compileExpr(fc, idx.X)
			keyx = c.compileExpr(fc, idx.Index)
		}
		return func(it *Interp, fr *cframe) (control, Value, error) {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			var vals []Value
			if contx != nil {
				container, err := contx(it, fr)
				if err != nil {
					return ctlNone, nil, err
				}
				if m, ok := container.(*Map); ok {
					key, err := keyx(it, fr)
					if err != nil {
						return ctlNone, nil, err
					}
					v, found := m.Get(key)
					vals = []Value{v, found}
				}
			}
			if vals == nil {
				// Generic path re-evaluates the full RHS, container
				// included — the tree-walk does the same.
				v, err := fullx(it, fr)
				if err != nil {
					return ctlNone, nil, err
				}
				t, ok := v.(*Tuple)
				if !ok {
					return ctlNone, nil, it.throw("TypeError", "cannot unpack "+TypeName(v)+" into "+
						strconv.Itoa(nl)+" variables")
				}
				if len(t.Elems) != nl {
					return ctlNone, nil, it.throw("ValueError",
						fmt.Sprintf("expected %d values, got %d", nl, len(t.Elems)))
				}
				vals = t.Elems
			}
			for i, asn := range targets {
				if err := asn(it, fr, vals[i]); err != nil {
					return ctlNone, nil, err
				}
			}
			return ctlNone, nil, nil
		}
	}

	if len(st.Lhs) != len(st.Rhs) {
		return errStmt("interp: assignment arity mismatch")
	}
	rhsxs := make([]cexpr, len(st.Rhs))
	for i, r := range st.Rhs {
		rhsxs[i] = c.compileExpr(fc, r)
	}
	single := len(st.Lhs) == 1
	if single {
		A := fc.asm
		A.step()
		tm := A.tmpMark()
		t := A.tmp()
		c.lowerExpr(fc, st.Rhs[0], t)
		A.emit(opUnwrap1, t, 0, 0, nil)
		c.lowerStore(fc, st.Lhs[0], t)
		A.rel(tm)
	}
	return func(it *Interp, fr *cframe) (control, Value, error) {
		if err := it.step(); err != nil {
			return ctlNone, nil, err
		}
		if single {
			v, err := rhsxs[0](it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
			if t, ok := v.(*Tuple); ok && len(t.Elems) > 0 {
				// Single-target assignment of a multi-return keeps the
				// first value.
				v = t.Elems[0]
			}
			return ctlNone, nil, targets[0](it, fr, v)
		}
		vals := make([]Value, len(rhsxs))
		for i, rx := range rhsxs {
			v, err := rx(it, fr)
			if err != nil {
				return ctlNone, nil, err
			}
			vals[i] = v
		}
		for i, asn := range targets {
			if err := asn(it, fr, vals[i]); err != nil {
				return ctlNone, nil, err
			}
		}
		return ctlNone, nil, nil
	}
}

// ---------------------------------------------------------------------------
// Expression compilation

// constExpr wraps a compile-time constant.
func constExpr(v Value) cexpr {
	return func(it *Interp, fr *cframe) (Value, error) { return v, nil }
}

// errExpr compiles to an expression that raises a plain error when
// evaluated (lazy unsupported-form reporting, like the tree-walk).
func errExpr(format string, args ...any) cexpr {
	err := fmt.Errorf(format, args...)
	return func(it *Interp, fr *cframe) (Value, error) { return nil, err }
}

// constOf reports whether a compiled expression is a foldable constant.
// Only leaves produced by constExpr qualify; the compiler tracks them in
// the konst side table keyed by the closure it just built.
type foldInfo struct {
	ok  bool
	val Value
}

func (c *compiler) compileExprF(fc *fnCtx, e ast.Expr) (cexpr, foldInfo) {
	switch x := e.(type) {
	case *ast.Ident:
		// Keyword literals resolve before any scope lookup.
		switch x.Name {
		case "nil":
			return constExpr(nil), foldInfo{ok: true, val: nil}
		case "true":
			return constExpr(true), foldInfo{ok: true, val: true}
		case "false":
			return constExpr(false), foldInfo{ok: true, val: false}
		}
		return c.loadVar(fc, x.Name), foldInfo{}

	case *ast.BasicLit:
		v, err := evalLit(x)
		if err != nil {
			return func(it *Interp, fr *cframe) (Value, error) { return nil, err }, foldInfo{}
		}
		return constExpr(v), foldInfo{ok: true, val: v}

	case *ast.ParenExpr:
		return c.compileExprF(fc, x.X)

	case *ast.SelectorExpr:
		return c.compileSelector(fc, x), foldInfo{}

	case *ast.CallExpr:
		return c.compileCall(fc, x), foldInfo{}

	case *ast.BinaryExpr:
		return c.compileBinary(fc, x)

	case *ast.UnaryExpr:
		return c.compileUnary(fc, x)

	case *ast.IndexExpr:
		contx := c.compileExpr(fc, x.X)
		keyx := c.compileExpr(fc, x.Index)
		return func(it *Interp, fr *cframe) (Value, error) {
			container, err := contx(it, fr)
			if err != nil {
				return nil, err
			}
			key, err := keyx(it, fr)
			if err != nil {
				return nil, err
			}
			return indexValue(it, container, key)
		}, foldInfo{}

	case *ast.SliceExpr:
		return c.compileSlice(fc, x), foldInfo{}

	case *ast.CompositeLit:
		return c.compileComposite(fc, x), foldInfo{}

	case *ast.FuncLit:
		// Memoized: the fused walk can visit one literal from both the
		// closure build and the lowering emitter; they must share one
		// compiledFunc (and compile the literal's body exactly once).
		fn := c.litFns[x]
		if fn == nil {
			fn = c.compileFunc(fc, "<func>", x.Type, x.Body, "")
			if c.litFns == nil {
				c.litFns = make(map[*ast.FuncLit]*compiledFunc)
			}
			c.litFns[x] = fn
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			cl := &compiledClosure{fn: fn}
			if len(fn.caps) > 0 {
				caps := make([]*cell, len(fn.caps))
				for i, src := range fn.caps {
					if src.fromSlot >= 0 {
						caps[i] = fr.slots[src.fromSlot].(*cell)
					} else {
						caps[i] = fr.caps[src.fromCap]
					}
				}
				cl.caps = caps
			}
			return cl, nil
		}, foldInfo{}

	case *ast.StarExpr:
		return c.compileExprF(fc, x.X)

	case *ast.TypeAssertExpr:
		return c.compileExprF(fc, x.X)

	default:
		return errExpr("interp: unsupported expression %T", e), foldInfo{}
	}
}

func (c *compiler) compileExpr(fc *fnCtx, e ast.Expr) cexpr {
	x, _ := c.compileExprF(fc, e)
	return x
}

func (c *compiler) compileSelector(fc *fnCtx, x *ast.SelectorExpr) cexpr {
	basex := c.compileExpr(fc, x.X)
	name := x.Sel.Name
	return func(it *Interp, fr *cframe) (Value, error) {
		base, err := basex(it, fr)
		if err != nil {
			return nil, err
		}
		switch b := base.(type) {
		case *Module:
			v, ok := b.Member[name]
			if !ok {
				return nil, it.throw("AttributeError", "module '"+b.Name+"' has no attribute '"+name+"'")
			}
			return v, nil
		case *Object:
			if v, ok := b.Fields[name]; ok {
				return v, nil
			}
			if it.prog != nil {
				if mfn, ok := it.prog.methods[b.TypeName][name]; ok {
					return &compiledClosure{fn: mfn, recv: b}, nil
				}
			}
			return nil, it.throw("AttributeError", "'"+b.TypeName+"' object has no attribute '"+name+"'")
		case *Exc:
			switch name {
			case "Type":
				return b.Type, nil
			case "Msg":
				return b.Msg, nil
			}
			return nil, it.throw("AttributeError", "exception has no attribute '"+name+"'")
		case nil:
			return nil, it.throw("AttributeError", "nil object has no attribute '"+name+"'")
		default:
			return nil, it.throw("AttributeError", "'"+TypeName(base)+"' object has no attribute '"+name+"'")
		}
	}
}

func (c *compiler) compileCall(fc *fnCtx, x *ast.CallExpr) cexpr {
	// Language-level special forms, matched syntactically by identifier
	// name exactly like the tree-walk (even when shadowed).
	if id, ok := x.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			if len(x.Args) != 1 {
				return errExpr("interp: panic takes one argument")
			}
			argx := c.compileExpr(fc, x.Args[0])
			return func(it *Interp, fr *cframe) (Value, error) {
				v, err := argx(it, fr)
				if err != nil {
					return nil, err
				}
				return nil, &PanicError{Val: v, Stack: it.stackNames()}
			}
		case "recover":
			// Arguments are not evaluated (tree-walk parity).
			return func(it *Interp, fr *cframe) (Value, error) {
				return it.evalRecover(), nil
			}
		case "make":
			if len(x.Args) == 0 {
				return errExpr("interp: make requires a type argument")
			}
			switch x.Args[0].(type) {
			case *ast.MapType:
				return func(it *Interp, fr *cframe) (Value, error) { return NewMap(), nil }
			case *ast.ArrayType:
				return func(it *Interp, fr *cframe) (Value, error) { return NewList(), nil }
			default:
				return errExpr("interp: unsupported make() type")
			}
		case "new":
			if len(x.Args) == 1 {
				if tid, ok := x.Args[0].(*ast.Ident); ok {
					name := tid.Name
					return func(it *Interp, fr *cframe) (Value, error) {
						return NewObject(name), nil
					}
				}
			}
			return errExpr("interp: unsupported new() form")
		}
	}
	fnx := c.compileExpr(fc, x.Fun)
	argxs := make([]cexpr, len(x.Args))
	for i, a := range x.Args {
		argxs[i] = c.compileExpr(fc, a)
	}
	return func(it *Interp, fr *cframe) (Value, error) {
		fn, err := fnx(it, fr)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(argxs))
		for i, ax := range argxs {
			args[i], err = ax(it, fr)
			if err != nil {
				return nil, err
			}
		}
		return it.call(fn, args)
	}
}

func (c *compiler) compileBinary(fc *fnCtx, x *ast.BinaryExpr) (cexpr, foldInfo) {
	lx, lf := c.compileExprF(fc, x.X)
	switch x.Op {
	case token.LAND:
		if lf.ok && !Truthy(lf.val) {
			return constExpr(false), foldInfo{ok: true, val: false}
		}
		rx, rf := c.compileExprF(fc, x.Y)
		if lf.ok && rf.ok {
			v := Truthy(rf.val)
			return constExpr(v), foldInfo{ok: true, val: v}
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			l, err := lx(it, fr)
			if err != nil {
				return nil, err
			}
			if !Truthy(l) {
				return false, nil
			}
			r, err := rx(it, fr)
			if err != nil {
				return nil, err
			}
			return Truthy(r), nil
		}, foldInfo{}
	case token.LOR:
		if lf.ok && Truthy(lf.val) {
			return constExpr(true), foldInfo{ok: true, val: true}
		}
		rx, rf := c.compileExprF(fc, x.Y)
		if lf.ok && rf.ok {
			v := Truthy(rf.val)
			return constExpr(v), foldInfo{ok: true, val: v}
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			l, err := lx(it, fr)
			if err != nil {
				return nil, err
			}
			if Truthy(l) {
				return true, nil
			}
			r, err := rx(it, fr)
			if err != nil {
				return nil, err
			}
			return Truthy(r), nil
		}, foldInfo{}
	}
	rx, rf := c.compileExprF(fc, x.Y)
	if lf.ok && rf.ok {
		// Fold only when the operation succeeds; failing operations keep
		// their run-time error (with the proper interpreter stack).
		if v, err := (&Interp{}).binop(x.Op, lf.val, rf.val); err == nil {
			return constExpr(v), foldInfo{ok: true, val: v}
		}
	}
	op := x.Op
	return func(it *Interp, fr *cframe) (Value, error) {
		l, err := lx(it, fr)
		if err != nil {
			return nil, err
		}
		r, err := rx(it, fr)
		if err != nil {
			return nil, err
		}
		// Fast path for the dominant int/int case; every operator with an
		// error branch (division, shifts, mixed types) falls through to
		// the shared binop, so semantics are byte-identical.
		if a, ok := l.(int64); ok {
			if b, ok := r.(int64); ok {
				switch op {
				case token.ADD:
					return a + b, nil
				case token.SUB:
					return a - b, nil
				case token.MUL:
					return a * b, nil
				case token.LSS:
					return a < b, nil
				case token.LEQ:
					return a <= b, nil
				case token.GTR:
					return a > b, nil
				case token.GEQ:
					return a >= b, nil
				case token.EQL:
					return a == b, nil
				case token.NEQ:
					return a != b, nil
				}
			}
		}
		return it.binop(op, l, r)
	}, foldInfo{}
}

func (c *compiler) compileUnary(fc *fnCtx, x *ast.UnaryExpr) (cexpr, foldInfo) {
	vx, vf := c.compileExprF(fc, x.X)
	switch x.Op {
	case token.SUB:
		if vf.ok {
			switch n := vf.val.(type) {
			case int64:
				return constExpr(-n), foldInfo{ok: true, val: -n}
			case float64:
				return constExpr(-n), foldInfo{ok: true, val: -n}
			}
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			v, err := vx(it, fr)
			if err != nil {
				return nil, err
			}
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, it.throw("TypeError", "bad operand type for unary -: '"+TypeName(v)+"'")
		}, foldInfo{}
	case token.ADD:
		return vx, vf
	case token.NOT:
		if vf.ok {
			v := !Truthy(vf.val)
			return constExpr(v), foldInfo{ok: true, val: v}
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			v, err := vx(it, fr)
			if err != nil {
				return nil, err
			}
			return !Truthy(v), nil
		}, foldInfo{}
	case token.AND:
		// &expr — minigo objects are reference values already.
		return vx, vf
	default:
		return errExpr("interp: unsupported unary operator %s", x.Op), foldInfo{}
	}
}

// indexValue implements subscript reads for both execution paths.
func indexValue(it *Interp, container, key Value) (Value, error) {
	switch cv := container.(type) {
	case *List:
		i, ok := key.(int64)
		if !ok {
			return nil, it.throw("TypeError", "list index must be int, not "+TypeName(key))
		}
		if i < 0 || int(i) >= len(cv.Elems) {
			return nil, it.throw("IndexError", "list index out of range")
		}
		return cv.Elems[i], nil
	case *Map:
		v, _ := cv.Get(key)
		return v, nil
	case string:
		i, ok := key.(int64)
		if !ok {
			return nil, it.throw("TypeError", "string index must be int, not "+TypeName(key))
		}
		if i < 0 || int(i) >= len(cv) {
			return nil, it.throw("IndexError", "string index out of range")
		}
		return string(cv[i]), nil
	case nil:
		return nil, it.throw("TypeError", "nil object is not subscriptable")
	default:
		return nil, it.throw("TypeError", TypeName(container)+" object is not subscriptable")
	}
}

func (c *compiler) compileSlice(fc *fnCtx, x *ast.SliceExpr) cexpr {
	contx := c.compileExpr(fc, x.X)
	var lox, hix cexpr
	if x.Low != nil {
		lox = c.compileExpr(fc, x.Low)
	}
	if x.High != nil {
		hix = c.compileExpr(fc, x.High)
	}
	return func(it *Interp, fr *cframe) (Value, error) {
		container, err := contx(it, fr)
		if err != nil {
			return nil, err
		}
		length := 0
		switch cv := container.(type) {
		case *List:
			length = len(cv.Elems)
		case string:
			length = len(cv)
		case nil:
			return nil, it.throw("TypeError", "nil object is not subscriptable")
		default:
			return nil, it.throw("TypeError", TypeName(container)+" object is not sliceable")
		}
		lo, hi := int64(0), int64(length)
		if lox != nil {
			v, err := lox(it, fr)
			if err != nil {
				return nil, err
			}
			n, ok := v.(int64)
			if !ok {
				return nil, it.throw("TypeError", "slice bound must be int")
			}
			lo = n
		}
		if hix != nil {
			v, err := hix(it, fr)
			if err != nil {
				return nil, err
			}
			n, ok := v.(int64)
			if !ok {
				return nil, it.throw("TypeError", "slice bound must be int")
			}
			hi = n
		}
		if lo < 0 || hi > int64(length) || lo > hi {
			return nil, it.throw("IndexError", "slice bounds out of range")
		}
		switch cv := container.(type) {
		case *List:
			return NewList(append([]Value(nil), cv.Elems[lo:hi]...)...), nil
		case string:
			return cv[lo:hi], nil
		}
		return nil, nil
	}
}

func (c *compiler) compileComposite(fc *fnCtx, x *ast.CompositeLit) cexpr {
	switch t := x.Type.(type) {
	case *ast.Ident:
		typeName := t.Name
		type fieldInit struct {
			name string
			val  cexpr
		}
		var fields []fieldInit
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return errExpr("interp: struct literals require field: value elements")
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				return errExpr("interp: struct literal keys must be identifiers")
			}
			fields = append(fields, fieldInit{name: key.Name, val: c.compileExpr(fc, kv.Value)})
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			obj := NewObject(typeName)
			for _, f := range fields {
				v, err := f.val(it, fr)
				if err != nil {
					return nil, err
				}
				obj.Fields[f.name] = v
			}
			return obj, nil
		}
	case *ast.MapType:
		type kvInit struct{ k, v cexpr }
		var pairs []kvInit
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return errExpr("interp: map literals require key: value elements")
			}
			pairs = append(pairs, kvInit{k: c.compileExpr(fc, kv.Key), v: c.compileExpr(fc, kv.Value)})
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			m := NewMap()
			for _, p := range pairs {
				k, err := p.k(it, fr)
				if err != nil {
					return nil, err
				}
				if !hashable(k) {
					return nil, it.throw("TypeError", "unhashable map key type "+TypeName(k))
				}
				v, err := p.v(it, fr)
				if err != nil {
					return nil, err
				}
				m.Set(k, v)
			}
			return m, nil
		}
	case *ast.ArrayType:
		elts := make([]cexpr, len(x.Elts))
		for i, elt := range x.Elts {
			elts[i] = c.compileExpr(fc, elt)
		}
		return func(it *Interp, fr *cframe) (Value, error) {
			l := &List{Elems: make([]Value, 0, len(elts))}
			for _, ex := range elts {
				v, err := ex(it, fr)
				if err != nil {
					return nil, err
				}
				l.Elems = append(l.Elems, v)
			}
			return l, nil
		}
	default:
		return errExpr("interp: unsupported composite literal type %T", x.Type)
	}
}
