// Dual-path equivalence suite for the runtime fault injection engine:
// every program runs through the tree-walk and the compiled path with an
// identical injector table attached (fresh engine per path, same faults
// and seed) and must produce identical results, errors, step counts,
// virtual clocks, stdout and injector activation reports — the
// acceptance gate extending equiv_test.go to runtime injectors. The
// suite lives in the external test package so it can drive the real
// runtimefault.Engine (which itself imports interp).
package interp_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"profipy/internal/interp"
	"profipy/internal/runtimefault"
)

// runtimeEquivCase is one dual-path program with an injector table.
type runtimeEquivCase struct {
	name   string
	src    string
	entry  string
	faults []runtimefault.Fault
	seed   int64
	// disarm simulates round 2: the engine is disarmed before the call.
	disarm bool
	// round overrides the 1-based round reported to round-scoped
	// triggers (0 keeps the engine default of round 1).
	round int
	cfg   interp.Config
}

// runBothPathsWithEngine executes the case through both paths and
// asserts identical observable behavior including the injector report.
func runBothPathsWithEngine(t *testing.T, tc runtimeEquivCase) {
	t.Helper()
	files := map[string]string{"t.go": "package main\n" + tc.src}

	mkEngine := func() *runtimefault.Engine {
		eng, err := runtimefault.NewEngine(tc.faults, tc.seed)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if tc.round > 0 {
			eng.BeginRound(tc.round-1, !tc.disarm)
		} else if tc.disarm {
			eng.BeginRound(1, false)
		}
		return eng
	}

	// Tree-walk path.
	var treeOut bytes.Buffer
	tcfg := tc.cfg
	tcfg.Stdout = &treeOut
	treeEng := mkEngine()
	tcfg.Hook = treeEng
	tree := interp.New(tcfg)
	if err := tree.LoadSource("t.go", []byte(files["t.go"])); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	treeVal, treeErr := tree.Call(tc.entry)

	// Compiled path.
	prog, err := interp.CompileProgram([]interp.SourceUnit{{Name: "t.go", Src: []byte(files["t.go"])}})
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
	var compOut bytes.Buffer
	ccfg := tc.cfg
	ccfg.Stdout = &compOut
	compEng := mkEngine()
	ccfg.Hook = compEng
	run := interp.NewRun(prog, ccfg)
	if err := run.Boot(); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	compVal, compErr := run.Call(tc.entry)

	if interp.Repr(treeVal) != interp.Repr(compVal) {
		t.Errorf("result mismatch:\n tree: %s\n comp: %s", interp.Repr(treeVal), interp.Repr(compVal))
	}
	if fmt.Sprint(treeErr) != fmt.Sprint(compErr) {
		t.Errorf("error mismatch:\n tree: %v\n comp: %v", treeErr, compErr)
	}
	if tree.Steps() != run.Steps() {
		t.Errorf("step count mismatch: tree=%d compiled=%d", tree.Steps(), run.Steps())
	}
	if tree.Clock() != run.Clock() {
		t.Errorf("virtual clock mismatch: tree=%d compiled=%d", tree.Clock(), run.Clock())
	}
	if treeOut.String() != compOut.String() {
		t.Errorf("stdout mismatch:\n tree: %q\n comp: %q", treeOut.String(), compOut.String())
	}
	if !reflect.DeepEqual(treeEng.Report(), compEng.Report()) {
		t.Errorf("injector report mismatch:\n tree: %+v\n comp: %+v", treeEng.Report(), compEng.Report())
	}
}

func raiseFault(site, mode string, p float64, k, n int64, round int) runtimefault.Fault {
	return runtimefault.Fault{
		Name: "rt-raise-" + site,
		Site: site,
		When: runtimefault.Trigger{Mode: mode, P: p, K: k, N: n, Round: round},
		Do:   runtimefault.Action{Kind: runtimefault.ActionRaise, ExcType: "InjectedFault", Message: "runtime fault"},
	}
}

func corruptFault(site, corruption string, when runtimefault.Trigger) runtimefault.Fault {
	return runtimefault.Fault{
		Name: "rt-corrupt-" + site,
		Site: site,
		When: when,
		Do:   runtimefault.Action{Kind: runtimefault.ActionCorrupt, Corruption: corruption},
	}
}

func delayFault(site string, ns int64, when runtimefault.Trigger) runtimefault.Fault {
	return runtimefault.Fault{
		Name: "rt-delay-" + site,
		Site: site,
		When: when,
		Do:   runtimefault.Action{Kind: runtimefault.ActionDelay, DelayNS: ns},
	}
}

var always = runtimefault.Trigger{Mode: runtimefault.TriggerAlways}

// The probe program shape most cases share: call a hooked function in a
// loop, swallowing injected exceptions, and fold the outcomes into a
// string so every divergence (which iterations fired, what the
// corrupted values were) shows up in the result.
const probeLoop = `
func hooked(i int) any { return i * 10 }
func F() any {
	out := ""
	for i := 0; i < 8; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					out = out + "!" + r.Type
				}
			}()
			out = out + ":" + str(hooked(i))
		}()
	}
	return out
}`

var runtimeEquivCorpus = []runtimeEquivCase{
	{
		name:   "raise-always-uncaught",
		src:    `func hooked() any { return 1 }` + "\n" + `func F() any { return hooked() }`,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerAlways, 0, 0, 0, 0)},
		seed:   1,
	},
	{
		name: "raise-always-recovered",
		src: `
func hooked() any { return 1 }
func F() any {
	r := "none"
	func() {
		defer func() {
			if e := recover(); e != nil {
				r = e.Type + ":" + e.Msg
			}
		}()
		hooked()
	}()
	return r
}`,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerAlways, 0, 0, 0, 0)},
		seed:   2,
	},
	{
		name:   "raise-prob-half",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerProb, 0.5, 0, 0, 0)},
		seed:   42,
	},
	{
		name:   "raise-prob-different-seed",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerProb, 0.5, 0, 0, 0)},
		seed:   1337,
	},
	{
		name:   "raise-every-3rd",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerEvery, 0, 3, 0, 0)},
		seed:   3,
	},
	{
		name:   "raise-after-5th",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerAfter, 0, 0, 5, 0)},
		seed:   4,
	},
	{
		name:   "raise-round-1-scoped",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerRound, 0, 0, 0, 1)},
		seed:   5,
	},
	{
		name:   "raise-round-2-never-fires-in-round-1",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerRound, 0, 0, 0, 2)},
		seed:   6,
	},
	{
		name:   "raise-round-2-fires-in-round-2",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerRound, 0, 0, 0, 2)},
		seed:   7,
		round:  2,
	},
	{
		name:   "disarmed-engine-never-fires",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerAlways, 0, 0, 0, 0)},
		seed:   8,
		disarm: true,
	},
	{
		name: "corrupt-null-propagates-attribute-error",
		src: `
func hooked() any { return &Box{v: 1} }
func F() any {
	b := hooked()
	return b.v
}`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptNull, always)},
		seed:   9,
	},
	{
		name:   "corrupt-bitflip-int",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptBitflip, always)},
		seed:   10,
	},
	{
		name: "corrupt-bitflip-string",
		src: `
func hooked(s string) any { return s + "-suffix" }
func F() any { return hooked("payload") + "|" + hooked("other") }`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptBitflip, always)},
		seed:   11,
	},
	{
		name:   "corrupt-offbyone-int",
		src:    probeLoop,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptOffByOne, always)},
		seed:   12,
	},
	{
		name: "corrupt-offbyone-string-truncates",
		src: `
func hooked() any { return "abcdef" }
func F() any { return hooked() + "|" + str(len(hooked())) }`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptOffByOne, always)},
		seed:   13,
	},
	{
		name: "corrupt-offbyone-list-drops-tail",
		src: `
func hooked() any { return []any{1, 2, 3} }
func F() any {
	xs := hooked()
	total := 0
	for _, x := range xs {
		total += x
	}
	return str(total) + ":" + str(len(xs))
}`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptOffByOne, always)},
		seed:   14,
	},
	{
		name: "corrupt-bool-flips-branch",
		src: `
func hooked() any { return true }
func F() any {
	if hooked() {
		return "taken"
	}
	return "skipped"
}`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptBitflip, always)},
		seed:   15,
	},
	{
		name: "corrupt-float-offbyone",
		src: `
func hooked() any { return 2.5 }
func F() any { return hooked() * 4 }`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptOffByOne, always)},
		seed:   16,
	},
	{
		name: "corrupt-every-2nd-only",
		src: `
func hooked(i int) any { return i }
func F() any {
	out := ""
	for i := 0; i < 6; i++ {
		out = out + ":" + str(hooked(i))
	}
	return out
}`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptOffByOne, runtimefault.Trigger{Mode: runtimefault.TriggerEvery, K: 2})},
		seed:   17,
	},
	{
		name: "corrupt-type-error-downstream",
		src: `
func hooked() any { return "12" }
func F() any { return hooked() + 1 }`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptNull, always)},
		seed:   18,
	},
	{
		name: "delay-advances-virtual-clock",
		src: `
func hooked() any { return 1 }
func F() any { return hooked() + hooked() }`,
		entry:  "F",
		faults: []runtimefault.Fault{delayFault("hooked", 7_000_000_000, always)},
		seed:   19,
	},
	{
		name: "delay-breaches-deadline",
		src: `
func hooked() any { return 1 }
func F() any {
	total := 0
	for i := 0; i < 100; i++ {
		total += hooked()
	}
	return total
}`,
		entry:  "F",
		faults: []runtimefault.Fault{delayFault("hooked", 1_000_000_000, always)},
		seed:   20,
		cfg:    interp.Config{DeadlineNS: 5_500_000_000},
	},
	{
		name: "delay-every-2nd-accumulates",
		src: `
func hooked() any { return 1 }
func F() any {
	total := 0
	for i := 0; i < 9; i++ {
		total += hooked()
	}
	return total
}`,
		entry:  "F",
		faults: []runtimefault.Fault{delayFault("hooked", 3_000_000_000, runtimefault.Trigger{Mode: runtimefault.TriggerEvery, K: 2})},
		seed:   21,
	},
	{
		name: "method-site",
		src: `
type Counter struct{}
func (c *Counter) Add(d int) any { c.n = c.n + d; return c.n }
func F() any {
	c := &Counter{n: 0}
	out := ""
	for i := 0; i < 4; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					out = out + "!"
				}
			}()
			out = out + ":" + str(c.Add(1))
		}()
	}
	return out
}`,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("Counter.Add", runtimefault.TriggerEvery, 0, 2, 0, 0)},
		seed:   22,
	},
	{
		name: "site-glob-matches-many",
		src: `
func GetA() any { return "a" }
func GetB() any { return "b" }
func Put() any { return "p" }
func F() any {
	out := ""
	func() {
		defer func() { recover(); out = out + "!" }()
		out = out + GetA()
	}()
	func() {
		defer func() { recover(); out = out + "!" }()
		out = out + GetB()
	}()
	out = out + Put()
	return out
}`,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("Get*", runtimefault.TriggerAlways, 0, 0, 0, 0)},
		seed:   23,
	},
	{
		name: "funclit-site",
		src: `
func F() any {
	g := func() any { return 5 }
	out := 0
	func() {
		defer func() {
			if recover() != nil {
				out = -1
			}
		}()
		out = g()
	}()
	return out
}`,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("<func>", runtimefault.TriggerAfter, 0, 0, 1, 0)},
		seed:   24,
	},
	{
		name: "two-faults-one-site-delay-then-raise",
		src: `
func hooked(i int) any { return i }
func F() any {
	out := ""
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					out = out + "!" + r.Type
				}
			}()
			out = out + ":" + str(hooked(i))
		}()
	}
	return out
}`,
		entry: "F",
		faults: []runtimefault.Fault{
			delayFault("hooked", 2_000_000_000, always),
			raiseFault("hooked", runtimefault.TriggerAfter, 0, 0, 3, 0),
		},
		seed: 25,
	},
	{
		name: "raise-and-corrupt-different-sites",
		src: `
func source() any { return 100 }
func sink(v any) any { return v }
func F() any {
	out := ""
	for i := 0; i < 4; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					out = out + "!"
				}
			}()
			out = out + ":" + str(sink(source()))
		}()
	}
	return out
}`,
		entry: "F",
		faults: []runtimefault.Fault{
			corruptFault("source", runtimefault.CorruptOffByOne, runtimefault.Trigger{Mode: runtimefault.TriggerEvery, K: 2}),
			raiseFault("sink", runtimefault.TriggerProb, 0.4, 0, 0, 0),
		},
		seed: 26,
	},
	{
		name: "recursive-site-corrupts-each-return",
		src: `
func rec(n int) any {
	if n <= 0 {
		return 0
	}
	return rec(n-1) + 1
}
func F() any { return rec(4) }`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("rec", runtimefault.CorruptOffByOne, always)},
		seed:   27,
	},
	{
		name: "deep-stack-raise-names",
		src: `
func inner() any { return 1 }
func middle() any { return inner() }
func outer() any { return middle() }`,
		entry:  "outer",
		faults: []runtimefault.Fault{raiseFault("inner", runtimefault.TriggerAlways, 0, 0, 0, 0)},
		seed:   28,
	},
	{
		name: "corrupt-does-not-fire-on-raising-call",
		src: `
func hooked() any {
	throw("AppError", "own failure")
	return 1
}
func F() any {
	r := ""
	func() {
		defer func() {
			if e := recover(); e != nil {
				r = e.Type
			}
		}()
		hooked()
	}()
	return r
}`,
		entry:  "F",
		faults: []runtimefault.Fault{corruptFault("hooked", runtimefault.CorruptNull, always)},
		seed:   29,
	},
	{
		name: "raise-skips-body-side-effects",
		src: `
var touched = 0
func hooked() any { touched = touched + 1; return touched }
func F() any {
	func() {
		defer func() { recover() }()
		hooked()
	}()
	return touched
}`,
		entry:  "F",
		faults: []runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerAlways, 0, 0, 0, 0)},
		seed:   30,
	},
	{
		name: "globals-entry-not-hooked-site",
		src: `
func hooked() any { return 7 }
func F() any { return hooked() + 1 }`,
		entry:  "F",
		faults: []runtimefault.Fault{delayFault("nomatch*", 1_000_000_000, always)},
		seed:   31,
	},
}

// TestRuntimeInjectorEquivalence is the runtime-injector extension of
// TestCompiledEquivalence: ≥20 dual-path programs exercising triggers,
// corruptions and latency, asserting identical results, step counts,
// clocks and exceptions on both execution paths.
func TestRuntimeInjectorEquivalence(t *testing.T) {
	if len(runtimeEquivCorpus) < 20 {
		t.Fatalf("runtime equivalence corpus has %d programs, want >= 20", len(runtimeEquivCorpus))
	}
	for _, tc := range runtimeEquivCorpus {
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.MaxSteps == 0 {
				tc.cfg.MaxSteps = 200_000
			}
			runBothPathsWithEngine(t, tc)
		})
	}
}

// TestRuntimeInjectorDeterminism re-runs one probabilistic corpus entry
// twice per path with the same seed and once with a different seed: the
// same seed must reproduce the exact outcome, a different seed is
// allowed (and here, chosen) to differ.
func TestRuntimeInjectorDeterminism(t *testing.T) {
	run := func(seed int64) (string, string) {
		eng, err := runtimefault.NewEngine(
			[]runtimefault.Fault{raiseFault("hooked", runtimefault.TriggerProb, 0.5, 0, 0, 0)}, seed)
		if err != nil {
			t.Fatal(err)
		}
		it := interp.New(interp.Config{Hook: eng, MaxSteps: 200_000})
		if err := it.LoadSource("t.go", []byte("package main\n"+probeLoop)); err != nil {
			t.Fatal(err)
		}
		v, err := it.Call("F")
		return interp.Repr(v), fmt.Sprint(err)
	}
	v1, e1 := run(42)
	v2, e2 := run(42)
	if v1 != v2 || e1 != e2 {
		t.Errorf("same seed diverged: (%s, %s) vs (%s, %s)", v1, e1, v2, e2)
	}
	v3, _ := run(43)
	if v1 == v3 {
		t.Logf("note: seeds 42 and 43 happened to produce the same outcome (%s)", v1)
	}
}
