package interp

import (
	"bytes"
	"fmt"
	"testing"
)

// equivSetup installs host state on an interpreter (either path).
type equivSetup func(it *Interp)

// runBothPaths executes the same program through the tree-walk and the
// compiled path and asserts identical observable behavior: result value,
// error rendering, step count, virtual clock and stdout bytes.
func runBothPaths(t *testing.T, cfg Config, files map[string]string, order []string,
	setup equivSetup, entry string, args ...Value) (Value, error) {
	t.Helper()

	var treeOut bytes.Buffer
	tcfg := cfg
	tcfg.Stdout = &treeOut
	tree := New(tcfg)
	if setup != nil {
		setup(tree)
	}
	var loadErr error
	for _, name := range order {
		if err := tree.LoadSource(name, []byte(files[name])); err != nil {
			loadErr = err
			break
		}
	}
	var treeVal Value
	var treeErr error
	if loadErr == nil {
		treeVal, treeErr = tree.Call(entry, args...)
	}

	var units []SourceUnit
	for _, name := range order {
		units = append(units, SourceUnit{Name: name, Src: []byte(files[name])})
	}
	prog, cerr := CompileProgram(units)
	if loadErr != nil {
		// Load-time failures must fail the compiled path too (at compile
		// or boot); exact wording may name the same file and cause.
		if cerr != nil {
			return nil, loadErr
		}
		ccfg := cfg
		ccfg.Stdout = &bytes.Buffer{}
		run := NewRun(prog, ccfg)
		if setup != nil {
			setup(run)
		}
		berr := run.Boot()
		if berr == nil {
			t.Fatalf("tree-walk failed to load (%v) but compiled booted fine", loadErr)
		}
		if berr.Error() != loadErr.Error() {
			t.Fatalf("load error mismatch:\n tree: %v\n comp: %v", loadErr, berr)
		}
		return nil, loadErr
	}
	if cerr != nil {
		t.Fatalf("CompileProgram: %v (tree-walk loaded fine)", cerr)
	}

	var compOut bytes.Buffer
	ccfg := cfg
	ccfg.Stdout = &compOut
	run := NewRun(prog, ccfg)
	if setup != nil {
		setup(run)
	}
	if err := run.Boot(); err != nil {
		t.Fatalf("Boot: %v (tree-walk loaded fine)", err)
	}
	compVal, compErr := run.Call(entry, args...)

	if Repr(treeVal) != Repr(compVal) {
		t.Errorf("result mismatch:\n tree: %s\n comp: %s", Repr(treeVal), Repr(compVal))
	}
	if fmt.Sprint(treeErr) != fmt.Sprint(compErr) {
		t.Errorf("error mismatch:\n tree: %v\n comp: %v", treeErr, compErr)
	}
	if tree.Steps() != run.Steps() {
		t.Errorf("step count mismatch: tree=%d compiled=%d", tree.Steps(), run.Steps())
	}
	if tree.Clock() != run.Clock() {
		t.Errorf("virtual clock mismatch: tree=%d compiled=%d", tree.Clock(), run.Clock())
	}
	if treeOut.String() != compOut.String() {
		t.Errorf("stdout mismatch:\n tree: %q\n comp: %q", treeOut.String(), compOut.String())
	}
	return compVal, compErr
}

func equivOne(t *testing.T, src, entry string, args ...Value) (Value, error) {
	t.Helper()
	return runBothPaths(t, Config{}, map[string]string{"t.go": "package main\n" + src},
		[]string{"t.go"}, nil, entry, args...)
}

// equivCorpus is the shared program corpus: every language feature the
// interpreter supports, plus the failure modes fault injection relies
// on. Each entry runs through both execution paths.
var equivCorpus = []struct {
	name  string
	src   string
	entry string
	args  []Value
}{
	{"arith", `func F() any { return 1 + 2*3 + 10/3 + 10%3 + (7-10) + 1<<4 + (255&15) }`, "F", nil},
	{"float-mix", `func F() any { return 2.5 + 1 - 0.5*2 + 3/2.0 }`, "F", nil},
	{"string-ops", `func F() any { return "a" + "b" + str(1 < 2) + str("abc" < "abd") }`, "F", nil},
	{"zero-div", `func F(n int) any { return 1 / n }`, "F", []Value{int64(0)}},
	{"zero-mod", `func F(n int) any { return 1 % n }`, "F", []Value{int64(0)}},
	{"type-error", `func F(s string) any { return s + 1 }`, "F", []Value{"x"}},
	{"nil-attr", `func F(k any) any { return k.Name }`, "F", []Value{nil}},
	{"unbound", `func F() any { return undefinedVar }`, "F", nil},
	{"unbound-after-branch", `func F(b any) any { if b { x := 1; _ = x }; return x }`, "F", []Value{false}},
	{"lists-maps", `
func F() any {
	xs := []any{1, 2, 3}
	xs = append(xs, 4)
	m := map[string]any{"a": 1}
	m["b"] = 2
	total := 0
	for _, x := range xs {
		total += x
	}
	for _, k := range keys(m) {
		total += m[k]
	}
	return total
}`, "F", nil},
	{"map-comma-ok", `
func F() any {
	m := map[string]any{"x": 10}
	v, ok := m["x"]
	_, missing := m["y"]
	if ok && !missing {
		return v
	}
	return -1
}`, "F", nil},
	{"comma-ok-non-map", `
func F() any {
	xs := []any{1, 2}
	a, b := xs[0]
	return a + b
}`, "F", nil},
	{"structs-methods", `
type Counter struct{}
func NewCounter(start int) any { return &Counter{n: start} }
func (c *Counter) Add(d int) any { c.n = c.n + d; return c.n }
func (c *Counter) Value() any { return c.n }
func F() any {
	c := NewCounter(5)
	c.Add(3)
	c.Add(2)
	return c.Value()
}`, "F", nil},
	{"closures", `
func Adder(n int) any { return func(x int) any { return x + n } }
func F() any {
	add5 := Adder(5)
	return add5(37)
}`, "F", nil},
	{"closure-mutates-outer", `
func F() any {
	total := 0
	bump := func(d int) any { total += d; return total }
	bump(3)
	bump(4)
	return total
}`, "F", nil},
	{"closure-capture-before-assign", `
func F() any {
	g := func() any { return x + 1 }
	x := 41
	return g()
}`, "F", nil},
	{"closure-loop-shared-var", `
func F() any {
	fs := []any{}
	for i := 0; i < 3; i++ {
		fs = append(fs, func() any { return i })
	}
	out := 0
	for _, f := range fs {
		out = out*10 + f()
	}
	return out
}`, "F", nil},
	{"nested-closure-transitive-capture", `
func F() any {
	x := 1
	outer := func() any {
		inner := func() any { x = x + 10; return x }
		return inner() + inner()
	}
	r := outer()
	return r*100 + x
}`, "F", nil},
	{"multi-return", `
func divmod(a int, b int) (any, any) { return a / b, a % b }
func F() any {
	q, r := divmod(17, 5)
	return q*10 + r
}`, "F", nil},
	{"single-target-multi-return", `
func two() (any, any) { return 7, 9 }
func F() any {
	x := two()
	return x
}`, "F", nil},
	{"unpack-arity-error", `
func two() (any, any) { return 1, 2 }
func F() any {
	a, b, c := two()
	return a + b + c
}`, "F", nil},
	{"unpack-non-tuple", `func F() any { a, b := 5; return a + b }`, "F", nil},
	{"switch-tag", `
func F(n int) any {
	switch n {
	case 1:
		return "one"
	case 2, 3:
		return "few"
	default:
		return "many"
	}
}`, "F", []Value{int64(3)}},
	{"switch-tagless-init", `
func F(n int) any {
	switch v := n * 2; {
	case v < 0:
		return "neg"
	case v == 0:
		return "zero"
	}
	return "pos"
}`, "F", []Value{int64(0)}},
	{"switch-break", `
func F() any {
	out := 0
	switch {
	case true:
		out = 1
		break
		out = 2
	}
	return out
}`, "F", nil},
	{"range-string", `
func F() any {
	s := ""
	for i, ch := range "abc" {
		s = s + str(i) + ch
	}
	return s
}`, "F", nil},
	{"range-int", `
func F() any {
	total := 0
	for i := range 5 {
		total += i
	}
	return total
}`, "F", nil},
	{"range-map-order", `
func F() any {
	m := map[string]any{"b": 2, "a": 1, "c": 3}
	s := ""
	for k, v := range m {
		s = s + k + str(v)
	}
	return s
}`, "F", nil},
	{"range-nil", `func F(xs any) any { for _, x := range xs { _ = x }; return nil }`, "F", []Value{nil}},
	{"range-mutation-snapshot", `
func F() any {
	xs := []any{1, 2, 3}
	total := 0
	for i, x := range xs {
		xs[i] = 100
		total += x
	}
	return total
}`, "F", nil},
	{"for-break-continue", `
func F() any {
	total := 0
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			continue
		}
		if i > 6 {
			break
		}
		total += i
	}
	return total
}`, "F", nil},
	{"infinite-for-budget", `func F() any { for { } ; return nil }`, "F", nil},
	{"panic-recover", `
func risky() any { panic(__mkexc()) }
func F() any {
	result := "none"
	func() {
		defer func() {
			if r := recover(); r != nil {
				result = "recovered: " + r.Type
			}
		}()
		risky()
	}()
	return result
}`, "F", nil},
	{"uncaught-panic-stack", `
func inner() any { return missing.Field }
func outer() any { return inner() }`, "outer", nil},
	{"throw-builtin", `func F() any { throw("EtcdKeyNotFound", "key missing"); return nil }`, "F", nil},
	{"defer-order", `
func F() any {
	func() {
		defer println("deferred")
		println("body")
	}()
	return nil
}`, "F", nil},
	{"defer-args-at-defer-time", `
func F() any {
	x := 1
	func() {
		defer println(x)
		x = 2
		println(x)
	}()
	return x
}`, "F", nil},
	{"panic-in-defer-replaces", `
func failAgain() any { panic(__mkexc()) }
func F() any {
	defer failAgain()
	panic("original")
}`, "F", nil},
	{"globals-persist", `
var counter = 0
func Bump() any { counter = counter + 1; return counter }
func F() any {
	Bump()
	Bump()
	return Bump()
}`, "F", nil},
	{"define-assigns-global-quirk", `
var g = 5
func F() any {
	g := 2
	return g + g2()
}
func g2() any { return g * 10 }`, "F", nil},
	{"block-var-shadowing", `
var x = 100
func F() any {
	out := 0
	{
		var x = 1
		out += x
	}
	out += x
	return out
}`, "F", nil},
	{"block-var-does-not-leak", `
func F() any {
	{
		var y = 1
		_ = y
	}
	return y
}`, "F", nil},
	{"recursion-limit", `func F() any { return F() }`, "F", nil},
	{"missing-args-default-nil", `
func G(a any, b any) any {
	if b == nil {
		return "default"
	}
	return b
}
func F() any { return G(1) }`, "F", nil},
	{"extra-args-dropped", `
func G(a any) any { return a }
func F() any { return G(1, 2, 3) }`, "F", nil},
	{"string-slice-index", `
func F() any {
	s := "hello world"
	return s[0:5] + "-" + s[6:11] + "-" + s[0] + str(len(s))
}`, "F", nil},
	{"slice-bounds-error", `func F() any { xs := []any{1}; return xs[0:9] }`, "F", nil},
	{"index-errors", `func F() any { xs := []any{1}; return xs[5] }`, "F", nil},
	{"composites", `
func F() any {
	obj := &Thing{a: 1, b: "x"}
	m := map[string]any{"k": obj.a}
	l := []any{m["k"], obj.b}
	return str(l)
}`, "F", nil},
	{"incdec-compound", `
func F() any {
	x := 10
	x += 5
	x -= 3
	x *= 2
	x /= 4
	x++
	x--
	return x
}`, "F", nil},
	{"compound-on-index", `
func F() any {
	m := map[string]any{"n": 1}
	m["n"] += 41
	xs := []any{5}
	xs[0] *= 3
	return m["n"] + xs[0]
}`, "F", nil},
	{"logical-ops-return-bool", `
func F() any {
	a := 1 && "x"
	b := 0 || ""
	return str(a) + str(b)
}`, "F", nil},
	{"unary-ops", `
func F(v any) any {
	return str(-(3)) + str(!v) + str(+4) + str(-2.5)
}`, "F", []Value{nil}},
	{"go-stmt-synchronous", `
var ran = 0
func bump() any { ran = 1; return nil }
func F() any {
	go bump()
	return ran
}`, "F", nil},
	{"labeled-stmt", `
func F() any {
	x := 0
loop:
	for i := 0; i < 3; i++ {
		x += i
	}
	_ = loopDummy
	return x
}
var loopDummy = "unused"`, "F", nil},
	{"method-chains", `
type Inner struct{}
func (i *Inner) Get() any { return i.val }
type Outer struct{}
func F() any {
	inner := &Inner{val: 42}
	outer := &Outer{child: inner}
	return outer.child.Get()
}`, "F", nil},
	{"new-builtin", `
func F() any {
	o := new(Box)
	o.v = 7
	return o.v
}`, "F", nil},
	{"make-builtin", `
func F() any {
	m := make(map[string]any)
	m["a"] = 1
	l := make([]any)
	l = append(l, 2)
	return m["a"] + l[0]
}`, "F", nil},
	{"exc-fields", `
func F() any {
	r := "none"
	func() {
		defer func() {
			e := recover()
			r = e.Type + ":" + e.Msg
		}()
		throw("Boom", "msg")
	}()
	return r
}`, "F", nil},
	{"fault-trigger-shape", `
func get(k any) any {
	if __fault_enabled() {
		return nil
	} else {
		return k
	}
}
func F() any {
	v := get("key")
	return v.missing
}`, "F", nil},
	{"var-init-order", `
var a = 1
var b = a + 1
var c = b * b
func F() any { return c }`, "F", nil},
	{"var-init-forward-ref-fails", `
var a = b + 1
var b = 1
func F() any { return a }`, "F", nil},
	{"const-decl", `
func F() any {
	const k = 3
	return k * 2
}`, "F", nil},
	{"else-if-chain", `
func F(n int) any {
	if n < 0 {
		return "neg"
	} else if n == 0 {
		return "zero"
	} else if n < 10 {
		return "small"
	} else {
		return "big"
	}
}`, "F", []Value{int64(5)}},
	{"funclit-in-expr-stmt", `
func F() any {
	x := 0
	func() { x = 9 }()
	return x
}`, "F", nil},
	{"strlib-fmt-modules", `
import "strlib"
import "fmt"

func F() any {
	s := "hello-world"
	parts := strlib.Split(s, "-")
	return fmt.Sprintf("%s_%d_%v", parts[1], len(s), strlib.HasPrefix(s, "hello"))
}`, "F", nil},
	{"nil-not-callable", `func F(f any) any { return f() }`, "F", []Value{nil}},
	{"int-not-callable", `func F() any { x := 3; return x() }`, "F", nil},
}

func equivHostSetup(it *Interp) {
	it.RegisterHostFunc("__mkexc", func(it *Interp, args []Value) (Value, error) {
		return &Exc{Type: "EtcdException", Msg: "boom"}, nil
	})
	it.RegisterHostFunc("__fault_enabled", func(it *Interp, args []Value) (Value, error) {
		return true, nil
	})
}

// TestCompiledEquivalence runs the corpus through the tree-walk and the
// compiled path, asserting identical results, exceptions, step counts,
// virtual clocks and stdout (the acceptance gate of the compile layer).
func TestCompiledEquivalence(t *testing.T) {
	for _, tc := range equivCorpus {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{MaxSteps: 200_000}
			runBothPaths(t, cfg, map[string]string{"t.go": "package main\n" + tc.src},
				[]string{"t.go"}, equivHostSetup, tc.entry, tc.args...)
		})
	}
}

// TestCompiledEquivalenceMultiFile covers cross-file globals, functions
// and methods loaded in order.
func TestCompiledEquivalenceMultiFile(t *testing.T) {
	files := map[string]string{
		"a.go": `package main
var shared = 10
func helper(n int) any { return n + shared }
type T struct{}
func (t *T) Scale(n int) any { return t.k * n }
`,
		"b.go": `package main
func F() any {
	t := &T{k: 3}
	shared = shared + 1
	return helper(2) + t.Scale(4)
}`,
	}
	v, err := runBothPaths(t, Config{}, files, []string{"a.go", "b.go"}, nil, "F")
	if err != nil {
		t.Fatalf("F: %v", err)
	}
	if v != int64(25) {
		t.Fatalf("F() = %v, want 25", Repr(v))
	}
}

// TestCompiledEquivalenceTimeout checks deadline and budget behavior:
// identical ErrTimeout/ErrSteps and non-recoverability through defers.
func TestCompiledEquivalenceTimeout(t *testing.T) {
	src := `package main
func F() any {
	defer func() { recover() }()
	for {
	}
	return nil
}`
	_, err := runBothPaths(t, Config{DeadlineNS: 1_000_000},
		map[string]string{"t.go": src}, []string{"t.go"}, nil, "F")
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	_, err = runBothPaths(t, Config{MaxSteps: 500},
		map[string]string{"t.go": src}, []string{"t.go"}, nil, "F")
	if err != ErrSteps {
		t.Fatalf("err = %v, want ErrSteps", err)
	}
}

// TestCompiledEquivalenceUnknownImport asserts that an unknown module
// fails the boot with the tree-walk's load error.
func TestCompiledEquivalenceUnknownImport(t *testing.T) {
	runBothPaths(t, Config{}, map[string]string{"t.go": "package main\nimport \"nosuch\"\n"},
		[]string{"t.go"}, nil, "F")
}

// TestCompiledEquivalenceMutatedSource runs a trigger-wrapped mutated
// shape (the mutator's output format) through both paths with the
// trigger on and off.
func TestCompiledEquivalenceMutatedSource(t *testing.T) {
	src := `package main
func process(key any) any {
	if __fault_enabled() {
		key = nil
	} else {
		key = key
	}
	if key == nil {
		throw("KeyError", "nil key")
	}
	return "ok:" + key
}
func F() any { return process("k1") }`
	for _, enabled := range []bool{true, false} {
		setup := func(it *Interp) {
			it.RegisterHostFunc("__fault_enabled", func(it *Interp, args []Value) (Value, error) {
				return enabled, nil
			})
		}
		runBothPaths(t, Config{}, map[string]string{"t.go": src}, []string{"t.go"}, setup, "F")
	}
}

// countingHook is a minimal CallHook: it records the sequence of enter
// and leave events, raises on a configured function, delays on another
// and rewrites the result of a third — the in-package probe for the
// hook mechanics the runtime fault engine builds on (the full engine is
// exercised dual-path in equiv_runtime_test.go).
type countingHook struct {
	events    []string
	raiseOn   string
	delayOn   string
	rewriteOn string
}

func (h *countingHook) EnterCall(it *Interp, fn string) error {
	h.events = append(h.events, "enter:"+fn)
	if fn == h.raiseOn {
		return it.Throw("HookError", "injected by hook")
	}
	if fn == h.delayOn {
		it.AdvanceClock(1_000_000_000)
	}
	return nil
}

func (h *countingHook) LeaveCall(it *Interp, fn string, result Value) (Value, error) {
	h.events = append(h.events, "leave:"+fn)
	if fn == h.rewriteOn {
		return "rewritten", nil
	}
	return result, nil
}

// TestCallHookEquivalence asserts that both execution paths drive the
// call hook through an identical event sequence, with identical raise,
// delay and result-rewrite effects.
func TestCallHookEquivalence(t *testing.T) {
	src := `
func a() any { return b() }
func b() any { return c() + 1 }
func c() any { return 1 }
func F() any {
	out := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				out = r.Type
			}
		}()
		out = str(a())
	}()
	return out + ":" + str(b())
}`
	for _, mode := range []struct {
		name string
		hook countingHook
	}{
		{"observe-only", countingHook{}},
		{"raise-on-c", countingHook{raiseOn: "c"}},
		{"delay-on-b", countingHook{delayOn: "b"}},
		{"rewrite-a", countingHook{rewriteOn: "a"}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var pathHooks []*countingHook
			setup := func(it *Interp) {
				// runBothPaths creates one interpreter per path; give
				// each its own hook instance so event logs stay separate.
				h := mode.hook
				pathHooks = append(pathHooks, &h)
				it.SetCallHook(&h)
			}
			runBothPaths(t, Config{}, map[string]string{"t.go": "package main\n" + src},
				[]string{"t.go"}, setup, "F")
			if len(pathHooks) != 2 {
				t.Fatalf("expected 2 interpreters, saw %d", len(pathHooks))
			}
			tr, cp := pathHooks[0], pathHooks[1]
			if fmt.Sprint(tr.events) != fmt.Sprint(cp.events) {
				t.Errorf("hook event sequence mismatch:\n tree: %v\n comp: %v", tr.events, cp.events)
			}
		})
	}
}

// TestProgramReuseAcrossRuns checks that one compiled Program serves many
// runs with independent global state (the execute-many contract).
func TestProgramReuseAcrossRuns(t *testing.T) {
	prog, err := CompileProgram([]SourceUnit{{Name: "t.go", Src: []byte(`package main
var n = 0
func Bump() any { n = n + 1; return n }`)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		run := NewRun(prog, Config{})
		if err := run.Boot(); err != nil {
			t.Fatal(err)
		}
		if v, err := run.Call("Bump"); err != nil || v != int64(1) {
			t.Fatalf("run %d: Bump = %v, %v (globals must reset per run)", i, v, err)
		}
	}
}

// TestWithFilesRecompilesOneUnit checks the single-file derivation used
// by experiments: shared base units, swapped mutated unit, content-hash
// memoization.
func TestWithFilesRecompilesOneUnit(t *testing.T) {
	base, err := CompileProgram([]SourceUnit{
		{Name: "lib.go", Src: []byte("package main\nfunc helper() any { return 1 }")},
		{Name: "main.go", Src: []byte("package main\nfunc F() any { return helper() }")},
	})
	if err != nil {
		t.Fatal(err)
	}
	mutated := []byte("package main\nfunc helper() any { return 42 }")
	p2, err := base.WithFiles(map[string][]byte{"lib.go": mutated})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := base.WithFiles(map[string][]byte{"lib.go": mutated})
	if err != nil {
		t.Fatal(err)
	}
	if p2.units[0] != p3.units[0] {
		t.Error("identical mutated sources should share one compiled unit (hash memoization)")
	}
	if p2.units[1] != base.units[1] {
		t.Error("unchanged units must be shared with the base program")
	}
	run := NewRun(p2, Config{})
	if err := run.Boot(); err != nil {
		t.Fatal(err)
	}
	if v, _ := run.Call("F"); v != int64(42) {
		t.Fatalf("mutated F = %v, want 42", Repr(v))
	}
	baseRun := NewRun(base, Config{})
	if err := baseRun.Boot(); err != nil {
		t.Fatal(err)
	}
	if v, _ := baseRun.Call("F"); v != int64(1) {
		t.Fatalf("base F = %v, want 1 (base program must be untouched)", Repr(v))
	}
	// Overlay naming a file outside the program is ignored.
	p4, err := base.WithFiles(map[string][]byte{"ghost.go": []byte("package main")})
	if err != nil {
		t.Fatal(err)
	}
	if p4 != base {
		t.Error("overlay of an unknown file should return the base program")
	}
}
