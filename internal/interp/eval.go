package interp

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

type control int

const (
	ctlNone control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// execBlock executes a statement list in the given scope.
func (it *Interp) execBlock(list []ast.Stmt, sc *Scope) (control, Value, error) {
	for _, s := range list {
		ctl, v, err := it.execStmt(s, sc)
		if err != nil || ctl != ctlNone {
			return ctl, v, err
		}
	}
	return ctlNone, nil, nil
}

func (it *Interp) execStmt(s ast.Stmt, sc *Scope) (control, Value, error) {
	if err := it.step(); err != nil {
		return ctlNone, nil, err
	}
	switch st := s.(type) {
	case *ast.ExprStmt:
		_, err := it.evalExpr(st.X, sc)
		return ctlNone, nil, err
	case *ast.AssignStmt:
		return ctlNone, nil, it.execAssign(st, sc)
	case *ast.IncDecStmt:
		cur, err := it.evalExpr(st.X, sc)
		if err != nil {
			return ctlNone, nil, err
		}
		delta := int64(1)
		if st.Tok == token.DEC {
			delta = -1
		}
		nv, err := it.binop(token.ADD, cur, delta)
		if err != nil {
			return ctlNone, nil, err
		}
		return ctlNone, nil, it.assignTo(st.X, nv, sc)
	case *ast.ReturnStmt:
		switch len(st.Results) {
		case 0:
			return ctlReturn, nil, nil
		case 1:
			v, err := it.evalExpr(st.Results[0], sc)
			return ctlReturn, v, err
		default:
			vals := make([]Value, len(st.Results))
			for i, r := range st.Results {
				v, err := it.evalExpr(r, sc)
				if err != nil {
					return ctlNone, nil, err
				}
				vals[i] = v
			}
			return ctlReturn, &Tuple{Elems: vals}, nil
		}
	case *ast.IfStmt:
		isc := NewScope(sc)
		if st.Init != nil {
			if ctl, v, err := it.execStmt(st.Init, isc); err != nil || ctl != ctlNone {
				return ctl, v, err
			}
		}
		cond, err := it.evalExpr(st.Cond, isc)
		if err != nil {
			return ctlNone, nil, err
		}
		if Truthy(cond) {
			return it.execBlock(st.Body.List, NewScope(isc))
		}
		if st.Else != nil {
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				return it.execBlock(blk.List, NewScope(isc))
			}
			return it.execStmt(st.Else, isc)
		}
		return ctlNone, nil, nil
	case *ast.BlockStmt:
		return it.execBlock(st.List, NewScope(sc))
	case *ast.ForStmt:
		fsc := NewScope(sc)
		if st.Init != nil {
			if ctl, v, err := it.execStmt(st.Init, fsc); err != nil || ctl != ctlNone {
				return ctl, v, err
			}
		}
		for {
			if err := it.step(); err != nil {
				return ctlNone, nil, err
			}
			if st.Cond != nil {
				cond, err := it.evalExpr(st.Cond, fsc)
				if err != nil {
					return ctlNone, nil, err
				}
				if !Truthy(cond) {
					break
				}
			}
			ctl, v, err := it.execBlock(st.Body.List, NewScope(fsc))
			if err != nil {
				return ctlNone, nil, err
			}
			if ctl == ctlBreak {
				break
			}
			if ctl == ctlReturn {
				return ctl, v, nil
			}
			if st.Post != nil {
				if _, _, err := it.execStmt(st.Post, fsc); err != nil {
					return ctlNone, nil, err
				}
			}
		}
		return ctlNone, nil, nil
	case *ast.RangeStmt:
		return it.execRange(st, sc)
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			return ctlBreak, nil, nil
		case token.CONTINUE:
			return ctlContinue, nil, nil
		default:
			return ctlNone, nil, fmt.Errorf("interp: unsupported branch %s", st.Tok)
		}
	case *ast.SwitchStmt:
		return it.execSwitch(st, sc)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || (gd.Tok != token.VAR && gd.Tok != token.CONST) {
			return ctlNone, nil, fmt.Errorf("interp: unsupported declaration")
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var v Value
				if i < len(vs.Values) {
					var err error
					v, err = it.evalExpr(vs.Values[i], sc)
					if err != nil {
						return ctlNone, nil, err
					}
				}
				sc.Define(name.Name, v)
			}
		}
		return ctlNone, nil, nil
	case *ast.DeferStmt:
		fr := it.currentFrame()
		if fr == nil {
			return ctlNone, nil, fmt.Errorf("interp: defer outside a function")
		}
		fn, err := it.evalExpr(st.Call.Fun, sc)
		if err != nil {
			return ctlNone, nil, err
		}
		args := make([]Value, len(st.Call.Args))
		for i, a := range st.Call.Args {
			args[i], err = it.evalExpr(a, sc)
			if err != nil {
				return ctlNone, nil, err
			}
		}
		fr.defers = append(fr.defers, deferredCall{fn: fn, args: args})
		return ctlNone, nil, nil
	case *ast.GoStmt:
		// minigo executes goroutines synchronously for determinism;
		// concurrency effects (CPU hogs) are modelled by the virtual clock.
		_, err := it.evalExpr(st.Call, sc)
		return ctlNone, nil, err
	case *ast.LabeledStmt:
		return it.execStmt(st.Stmt, sc)
	case *ast.EmptyStmt:
		return ctlNone, nil, nil
	default:
		return ctlNone, nil, fmt.Errorf("interp: unsupported statement %T", s)
	}
}

func (it *Interp) execRange(st *ast.RangeStmt, sc *Scope) (control, Value, error) {
	coll, err := it.evalExpr(st.X, sc)
	if err != nil {
		return ctlNone, nil, err
	}
	var pairs [][2]Value
	switch c := coll.(type) {
	case *List:
		for i, e := range c.Elems {
			pairs = append(pairs, [2]Value{int64(i), e})
		}
	case *Map:
		for _, k := range c.Keys() {
			v, _ := c.Get(k)
			pairs = append(pairs, [2]Value{k, v})
		}
	case string:
		for i := 0; i < len(c); i++ {
			pairs = append(pairs, [2]Value{int64(i), string(c[i])})
		}
	case int64:
		for i := int64(0); i < c; i++ {
			pairs = append(pairs, [2]Value{i, nil})
		}
	case nil:
		return ctlNone, nil, it.throw("TypeError", "nil object is not iterable")
	default:
		return ctlNone, nil, it.throw("TypeError", TypeName(coll)+" object is not iterable")
	}
	for _, kv := range pairs {
		if err := it.step(); err != nil {
			return ctlNone, nil, err
		}
		rsc := NewScope(sc)
		if st.Key != nil {
			if err := it.bindRangeVar(st.Key, kv[0], st.Tok, rsc); err != nil {
				return ctlNone, nil, err
			}
		}
		if st.Value != nil {
			if err := it.bindRangeVar(st.Value, kv[1], st.Tok, rsc); err != nil {
				return ctlNone, nil, err
			}
		}
		ctl, v, err := it.execBlock(st.Body.List, rsc)
		if err != nil {
			return ctlNone, nil, err
		}
		if ctl == ctlBreak {
			break
		}
		if ctl == ctlReturn {
			return ctl, v, nil
		}
	}
	return ctlNone, nil, nil
}

func (it *Interp) bindRangeVar(e ast.Expr, v Value, tok token.Token, sc *Scope) error {
	id, ok := e.(*ast.Ident)
	if !ok {
		return it.assignTo(e, v, sc)
	}
	if id.Name == "_" {
		return nil
	}
	if tok == token.DEFINE {
		// Loop variables are function-scoped (Python semantics).
		if !sc.Assign(id.Name, v) {
			sc.DefineAtFuncRoot(id.Name, v)
		}
		return nil
	}
	return it.assignTo(id, v, sc)
}

func (it *Interp) execSwitch(st *ast.SwitchStmt, sc *Scope) (control, Value, error) {
	ssc := NewScope(sc)
	if st.Init != nil {
		if ctl, v, err := it.execStmt(st.Init, ssc); err != nil || ctl != ctlNone {
			return ctl, v, err
		}
	}
	var tag Value
	hasTag := st.Tag != nil
	if hasTag {
		var err error
		tag, err = it.evalExpr(st.Tag, ssc)
		if err != nil {
			return ctlNone, nil, err
		}
	}
	var defaultCase *ast.CaseClause
	for _, raw := range st.Body.List {
		cc, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultCase = cc
			continue
		}
		for _, ce := range cc.List {
			cv, err := it.evalExpr(ce, ssc)
			if err != nil {
				return ctlNone, nil, err
			}
			hit := false
			if hasTag {
				hit = Equal(tag, cv)
			} else {
				hit = Truthy(cv)
			}
			if hit {
				ctl, v, err := it.execBlock(cc.Body, NewScope(ssc))
				if ctl == ctlBreak {
					ctl = ctlNone
				}
				return ctl, v, err
			}
		}
	}
	if defaultCase != nil {
		ctl, v, err := it.execBlock(defaultCase.Body, NewScope(ssc))
		if ctl == ctlBreak {
			ctl = ctlNone
		}
		return ctl, v, err
	}
	return ctlNone, nil, nil
}

func (it *Interp) execAssign(st *ast.AssignStmt, sc *Scope) error {
	// Compound assignment: x op= y.
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return fmt.Errorf("interp: invalid compound assignment")
		}
		cur, err := it.evalExpr(st.Lhs[0], sc)
		if err != nil {
			return err
		}
		rhs, err := it.evalExpr(st.Rhs[0], sc)
		if err != nil {
			return err
		}
		op, ok := compoundOp(st.Tok)
		if !ok {
			return fmt.Errorf("interp: unsupported assignment operator %s", st.Tok)
		}
		nv, err := it.binop(op, cur, rhs)
		if err != nil {
			return err
		}
		return it.assignTo(st.Lhs[0], nv, sc)
	}

	// Evaluate RHS values first (parallel assignment semantics).
	var vals []Value
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Tuple unpack (multi-return) or comma-ok map read.
		if idx, ok := st.Rhs[0].(*ast.IndexExpr); ok && len(st.Lhs) == 2 {
			container, err := it.evalExpr(idx.X, sc)
			if err != nil {
				return err
			}
			if m, ok := container.(*Map); ok {
				key, err := it.evalExpr(idx.Index, sc)
				if err != nil {
					return err
				}
				v, found := m.Get(key)
				vals = []Value{v, found}
			}
		}
		if vals == nil {
			v, err := it.evalExpr(st.Rhs[0], sc)
			if err != nil {
				return err
			}
			t, ok := v.(*Tuple)
			if !ok {
				return it.throw("TypeError", "cannot unpack "+TypeName(v)+" into "+
					strconv.Itoa(len(st.Lhs))+" variables")
			}
			if len(t.Elems) != len(st.Lhs) {
				return it.throw("ValueError", fmt.Sprintf("expected %d values, got %d", len(st.Lhs), len(t.Elems)))
			}
			vals = t.Elems
		}
	} else {
		if len(st.Lhs) != len(st.Rhs) {
			return fmt.Errorf("interp: assignment arity mismatch")
		}
		vals = make([]Value, len(st.Rhs))
		for i, r := range st.Rhs {
			v, err := it.evalExpr(r, sc)
			if err != nil {
				return err
			}
			vals[i] = v
		}
	}

	for i, lhs := range st.Lhs {
		v := vals[i]
		if t, ok := v.(*Tuple); ok && len(st.Lhs) == 1 && len(t.Elems) > 0 {
			// Single-target assignment of a multi-return keeps the first value.
			v = t.Elems[0]
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			if st.Tok == token.DEFINE {
				// minigo uses Python scoping: := binds at function scope,
				// not block scope. This is what makes trigger-wrapped
				// mutations (`if __fault_enabled() { x := ... } else
				// { x := ... }`) behave like EDFI's switchable faults in
				// Python — the binding survives the branch.
				if !sc.Assign(id.Name, v) {
					sc.DefineAtFuncRoot(id.Name, v)
				}
				continue
			}
			if !sc.Assign(id.Name, v) {
				// Writing an undeclared name defines it at function scope
				// (Python semantics); reading one raises UnboundLocalError
				// (see evalIdent).
				sc.DefineAtFuncRoot(id.Name, v)
			}
			continue
		}
		if err := it.assignTo(lhs, v, sc); err != nil {
			return err
		}
	}
	return nil
}

func compoundOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.AND_ASSIGN:
		return token.AND, true
	}
	return token.ILLEGAL, false
}

// assignTo stores a value through an lvalue expression.
func (it *Interp) assignTo(lhs ast.Expr, v Value, sc *Scope) error {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return nil
		}
		if !sc.Assign(l.Name, v) {
			sc.DefineAtFuncRoot(l.Name, v)
		}
		return nil
	case *ast.SelectorExpr:
		base, err := it.evalExpr(l.X, sc)
		if err != nil {
			return err
		}
		obj, ok := base.(*Object)
		if !ok {
			if base == nil {
				return it.throw("AttributeError", "nil object has no attribute '"+l.Sel.Name+"'")
			}
			return it.throw("TypeError", "cannot set attribute on "+TypeName(base))
		}
		obj.Fields[l.Sel.Name] = v
		return nil
	case *ast.IndexExpr:
		container, err := it.evalExpr(l.X, sc)
		if err != nil {
			return err
		}
		key, err := it.evalExpr(l.Index, sc)
		if err != nil {
			return err
		}
		switch c := container.(type) {
		case *List:
			i, ok := key.(int64)
			if !ok {
				return it.throw("TypeError", "list index must be int, not "+TypeName(key))
			}
			if i < 0 || int(i) >= len(c.Elems) {
				return it.throw("IndexError", "list index out of range")
			}
			c.Elems[i] = v
			return nil
		case *Map:
			if !hashable(key) {
				return it.throw("TypeError", "unhashable map key type "+TypeName(key))
			}
			c.Set(key, v)
			return nil
		case nil:
			return it.throw("TypeError", "nil object does not support item assignment")
		default:
			return it.throw("TypeError", TypeName(container)+" object does not support item assignment")
		}
	case *ast.StarExpr:
		return it.assignTo(l.X, v, sc)
	default:
		return fmt.Errorf("interp: unsupported assignment target %T", lhs)
	}
}

func hashable(v Value) bool {
	switch v.(type) {
	case nil, bool, int64, float64, string:
		return true
	}
	return false
}

// evalExpr evaluates an expression in the given scope.
func (it *Interp) evalExpr(e ast.Expr, sc *Scope) (Value, error) {
	switch x := e.(type) {
	case *ast.Ident:
		return it.evalIdent(x, sc)
	case *ast.BasicLit:
		return evalLit(x)
	case *ast.ParenExpr:
		return it.evalExpr(x.X, sc)
	case *ast.SelectorExpr:
		return it.evalSelector(x, sc)
	case *ast.CallExpr:
		return it.evalCall(x, sc)
	case *ast.BinaryExpr:
		return it.evalBinary(x, sc)
	case *ast.UnaryExpr:
		return it.evalUnary(x, sc)
	case *ast.IndexExpr:
		return it.evalIndex(x, sc)
	case *ast.SliceExpr:
		return it.evalSlice(x, sc)
	case *ast.CompositeLit:
		return it.evalComposite(x, sc)
	case *ast.FuncLit:
		return &Closure{
			Name:   "<func>",
			Params: paramNames(x.Type),
			Body:   x.Body,
			Env:    sc,
		}, nil
	case *ast.StarExpr:
		return it.evalExpr(x.X, sc)
	case *ast.TypeAssertExpr:
		return it.evalExpr(x.X, sc)
	default:
		return nil, fmt.Errorf("interp: unsupported expression %T", e)
	}
}

func (it *Interp) evalIdent(x *ast.Ident, sc *Scope) (Value, error) {
	switch x.Name {
	case "nil":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	v, ok := sc.Lookup(x.Name)
	if !ok {
		return nil, it.throw("UnboundLocalError",
			"local variable '"+x.Name+"' referenced before assignment")
	}
	return v, nil
}

func evalLit(x *ast.BasicLit) (Value, error) {
	switch x.Kind {
	case token.INT:
		n, err := strconv.ParseInt(x.Value, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("interp: bad int literal %q", x.Value)
		}
		return n, nil
	case token.FLOAT:
		f, err := strconv.ParseFloat(x.Value, 64)
		if err != nil {
			return nil, fmt.Errorf("interp: bad float literal %q", x.Value)
		}
		return f, nil
	case token.STRING:
		s, err := strconv.Unquote(x.Value)
		if err != nil {
			return nil, fmt.Errorf("interp: bad string literal %s", x.Value)
		}
		return s, nil
	case token.CHAR:
		s, err := strconv.Unquote(x.Value)
		if err != nil || len(s) == 0 {
			return nil, fmt.Errorf("interp: bad char literal %s", x.Value)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("interp: unsupported literal kind %s", x.Kind)
	}
}

func (it *Interp) evalSelector(x *ast.SelectorExpr, sc *Scope) (Value, error) {
	base, err := it.evalExpr(x.X, sc)
	if err != nil {
		return nil, err
	}
	name := x.Sel.Name
	switch b := base.(type) {
	case *Module:
		v, ok := b.Member[name]
		if !ok {
			return nil, it.throw("AttributeError", "module '"+b.Name+"' has no attribute '"+name+"'")
		}
		return v, nil
	case *Object:
		if v, ok := b.Fields[name]; ok {
			return v, nil
		}
		if decl, ok := it.methods[b.TypeName][name]; ok {
			_, recvName := recvInfo(decl)
			return &Closure{
				Name:   b.TypeName + "." + name,
				Params: paramNames(decl.Type),
				Body:   decl.Body,
				Env:    it.globals,
				Recv:   b,
				RecvN:  recvName,
			}, nil
		}
		return nil, it.throw("AttributeError", "'"+b.TypeName+"' object has no attribute '"+name+"'")
	case *Exc:
		switch name {
		case "Type":
			return b.Type, nil
		case "Msg":
			return b.Msg, nil
		}
		return nil, it.throw("AttributeError", "exception has no attribute '"+name+"'")
	case nil:
		// The Python "AttributeError: 'NoneType' object has no attribute"
		// analog — the key failure mode of wrong-input injections (§V-B).
		return nil, it.throw("AttributeError", "nil object has no attribute '"+name+"'")
	default:
		return nil, it.throw("AttributeError", "'"+TypeName(base)+"' object has no attribute '"+name+"'")
	}
}

func (it *Interp) evalCall(x *ast.CallExpr, sc *Scope) (Value, error) {
	// Language-level special forms.
	if id, ok := x.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("interp: panic takes one argument")
			}
			v, err := it.evalExpr(x.Args[0], sc)
			if err != nil {
				return nil, err
			}
			return nil, &PanicError{Val: v, Stack: it.stackNames()}
		case "recover":
			return it.evalRecover(), nil
		case "make":
			return it.evalMake(x)
		case "new":
			if len(x.Args) == 1 {
				if tid, ok := x.Args[0].(*ast.Ident); ok {
					return NewObject(tid.Name), nil
				}
			}
			return nil, fmt.Errorf("interp: unsupported new() form")
		}
	}
	fn, err := it.evalExpr(x.Fun, sc)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		args[i], err = it.evalExpr(a, sc)
		if err != nil {
			return nil, err
		}
	}
	return it.call(fn, args)
}

func (it *Interp) evalRecover() Value {
	// recover() is valid when called (directly or transitively) from a
	// deferred function: the frame below the deferred call chain holds
	// the in-flight panic.
	for i := len(it.frames) - 2; i >= 0; i-- {
		if it.frames[i].panicking != nil {
			v := it.frames[i].panicking.Val
			it.frames[i].panicking = nil
			return v
		}
	}
	return nil
}

func (it *Interp) evalMake(x *ast.CallExpr) (Value, error) {
	if len(x.Args) == 0 {
		return nil, fmt.Errorf("interp: make requires a type argument")
	}
	switch x.Args[0].(type) {
	case *ast.MapType:
		return NewMap(), nil
	case *ast.ArrayType:
		return NewList(), nil
	default:
		return nil, fmt.Errorf("interp: unsupported make() type")
	}
}

func (it *Interp) evalBinary(x *ast.BinaryExpr, sc *Scope) (Value, error) {
	// Short-circuit logicals.
	switch x.Op {
	case token.LAND:
		l, err := it.evalExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if !Truthy(l) {
			return false, nil
		}
		r, err := it.evalExpr(x.Y, sc)
		if err != nil {
			return nil, err
		}
		return Truthy(r), nil
	case token.LOR:
		l, err := it.evalExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if Truthy(l) {
			return true, nil
		}
		r, err := it.evalExpr(x.Y, sc)
		if err != nil {
			return nil, err
		}
		return Truthy(r), nil
	}
	l, err := it.evalExpr(x.X, sc)
	if err != nil {
		return nil, err
	}
	r, err := it.evalExpr(x.Y, sc)
	if err != nil {
		return nil, err
	}
	return it.binop(x.Op, l, r)
}

func (it *Interp) binop(op token.Token, l, r Value) (Value, error) {
	switch op {
	case token.EQL:
		return Equal(l, r), nil
	case token.NEQ:
		return !Equal(l, r), nil
	}

	switch lv := l.(type) {
	case int64:
		switch rv := r.(type) {
		case int64:
			return intOp(it, op, lv, rv)
		case float64:
			return floatOp(it, op, float64(lv), rv)
		}
	case float64:
		switch rv := r.(type) {
		case int64:
			return floatOp(it, op, lv, float64(rv))
		case float64:
			return floatOp(it, op, lv, rv)
		}
	case string:
		if rv, ok := r.(string); ok {
			return stringOp(it, op, lv, rv)
		}
	case *List:
		if rv, ok := r.(*List); ok && op == token.ADD {
			out := NewList()
			out.Elems = append(out.Elems, lv.Elems...)
			out.Elems = append(out.Elems, rv.Elems...)
			return out, nil
		}
	}
	return nil, it.throw("TypeError", fmt.Sprintf(
		"unsupported operand types for %s: '%s' and '%s'", op, TypeName(l), TypeName(r)))
}

func intOp(it *Interp, op token.Token, a, b int64) (Value, error) {
	switch op {
	case token.ADD:
		return a + b, nil
	case token.SUB:
		return a - b, nil
	case token.MUL:
		return a * b, nil
	case token.QUO:
		if b == 0 {
			return nil, it.throw("ZeroDivisionError", "integer division by zero")
		}
		return a / b, nil
	case token.REM:
		if b == 0 {
			return nil, it.throw("ZeroDivisionError", "integer modulo by zero")
		}
		return a % b, nil
	case token.LSS:
		return a < b, nil
	case token.LEQ:
		return a <= b, nil
	case token.GTR:
		return a > b, nil
	case token.GEQ:
		return a >= b, nil
	case token.AND:
		return a & b, nil
	case token.OR:
		return a | b, nil
	case token.XOR:
		return a ^ b, nil
	case token.SHL:
		return a << uint(b), nil
	case token.SHR:
		return a >> uint(b), nil
	}
	return nil, fmt.Errorf("interp: unsupported int operator %s", op)
}

func floatOp(it *Interp, op token.Token, a, b float64) (Value, error) {
	switch op {
	case token.ADD:
		return a + b, nil
	case token.SUB:
		return a - b, nil
	case token.MUL:
		return a * b, nil
	case token.QUO:
		if b == 0 {
			return nil, it.throw("ZeroDivisionError", "float division by zero")
		}
		return a / b, nil
	case token.LSS:
		return a < b, nil
	case token.LEQ:
		return a <= b, nil
	case token.GTR:
		return a > b, nil
	case token.GEQ:
		return a >= b, nil
	}
	return nil, fmt.Errorf("interp: unsupported float operator %s", op)
}

func stringOp(it *Interp, op token.Token, a, b string) (Value, error) {
	switch op {
	case token.ADD:
		return a + b, nil
	case token.LSS:
		return a < b, nil
	case token.LEQ:
		return a <= b, nil
	case token.GTR:
		return a > b, nil
	case token.GEQ:
		return a >= b, nil
	}
	return nil, fmt.Errorf("interp: unsupported string operator %s", op)
}

func (it *Interp) evalUnary(x *ast.UnaryExpr, sc *Scope) (Value, error) {
	v, err := it.evalExpr(x.X, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case token.SUB:
		switch n := v.(type) {
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		}
		return nil, it.throw("TypeError", "bad operand type for unary -: '"+TypeName(v)+"'")
	case token.ADD:
		return v, nil
	case token.NOT:
		return !Truthy(v), nil
	case token.AND:
		// &expr — minigo objects are reference values already.
		return v, nil
	default:
		return nil, fmt.Errorf("interp: unsupported unary operator %s", x.Op)
	}
}

func (it *Interp) evalIndex(x *ast.IndexExpr, sc *Scope) (Value, error) {
	container, err := it.evalExpr(x.X, sc)
	if err != nil {
		return nil, err
	}
	key, err := it.evalExpr(x.Index, sc)
	if err != nil {
		return nil, err
	}
	return indexValue(it, container, key)
}

func (it *Interp) evalSlice(x *ast.SliceExpr, sc *Scope) (Value, error) {
	container, err := it.evalExpr(x.X, sc)
	if err != nil {
		return nil, err
	}
	length := 0
	switch c := container.(type) {
	case *List:
		length = len(c.Elems)
	case string:
		length = len(c)
	case nil:
		return nil, it.throw("TypeError", "nil object is not subscriptable")
	default:
		return nil, it.throw("TypeError", TypeName(container)+" object is not sliceable")
	}
	lo, hi := int64(0), int64(length)
	if x.Low != nil {
		v, err := it.evalExpr(x.Low, sc)
		if err != nil {
			return nil, err
		}
		n, ok := v.(int64)
		if !ok {
			return nil, it.throw("TypeError", "slice bound must be int")
		}
		lo = n
	}
	if x.High != nil {
		v, err := it.evalExpr(x.High, sc)
		if err != nil {
			return nil, err
		}
		n, ok := v.(int64)
		if !ok {
			return nil, it.throw("TypeError", "slice bound must be int")
		}
		hi = n
	}
	if lo < 0 || hi > int64(length) || lo > hi {
		return nil, it.throw("IndexError", "slice bounds out of range")
	}
	switch c := container.(type) {
	case *List:
		return NewList(append([]Value(nil), c.Elems[lo:hi]...)...), nil
	case string:
		return c[lo:hi], nil
	}
	return nil, nil
}

func (it *Interp) evalComposite(x *ast.CompositeLit, sc *Scope) (Value, error) {
	switch t := x.Type.(type) {
	case *ast.Ident:
		obj := NewObject(t.Name)
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return nil, fmt.Errorf("interp: struct literals require field: value elements")
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				return nil, fmt.Errorf("interp: struct literal keys must be identifiers")
			}
			v, err := it.evalExpr(kv.Value, sc)
			if err != nil {
				return nil, err
			}
			obj.Fields[key.Name] = v
		}
		return obj, nil
	case *ast.MapType:
		m := NewMap()
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return nil, fmt.Errorf("interp: map literals require key: value elements")
			}
			k, err := it.evalExpr(kv.Key, sc)
			if err != nil {
				return nil, err
			}
			if !hashable(k) {
				return nil, it.throw("TypeError", "unhashable map key type "+TypeName(k))
			}
			v, err := it.evalExpr(kv.Value, sc)
			if err != nil {
				return nil, err
			}
			m.Set(k, v)
		}
		return m, nil
	case *ast.ArrayType:
		l := NewList()
		for _, elt := range x.Elts {
			v, err := it.evalExpr(elt, sc)
			if err != nil {
				return nil, err
			}
			l.Elems = append(l.Elems, v)
		}
		return l, nil
	default:
		return nil, fmt.Errorf("interp: unsupported composite literal type %T", x.Type)
	}
}

// FormatValue renders a value using a printf-like verb subset; exposed for
// the fmt host module.
func FormatValue(format string, args []Value) string {
	var sb strings.Builder
	argi := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			sb.WriteByte(c)
			continue
		}
		i++
		verb := format[i]
		if verb == '%' {
			sb.WriteByte('%')
			continue
		}
		var arg Value
		if argi < len(args) {
			arg = args[argi]
			argi++
		}
		switch verb {
		case 'd', 's', 'v', 'q', 'f', 't':
			if verb == 'q' {
				sb.WriteString(strconv.Quote(Repr(arg)))
			} else {
				sb.WriteString(Repr(arg))
			}
		default:
			sb.WriteByte('%')
			sb.WriteByte(verb)
		}
	}
	return sb.String()
}
