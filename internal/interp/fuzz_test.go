package interp

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzEngineEquivalence is the differential fuzz target over the three
// execution engines: every program the tree-walk loads must behave
// identically on the closure-compiled path and the bytecode VM —
// same result rendering, same error text, same step count, same
// virtual clock, same stdout bytes. This is the property the golden
// campaigns rest on (records are byte-identical across engines), so
// any divergence the fuzzer finds here is a record-corrupting bug.
//
// Programs that fail to parse or load are skipped: the front end is
// shared, so there is nothing differential to check. MaxSteps bounds
// runaway loops the fuzzer invents.
func FuzzEngineEquivalence(f *testing.F) {
	seeds := []string{
		// Arithmetic, comparisons, truthiness.
		"func F() any { s := 0\nfor i := 0; i < 10; i++ { s = s + i*i }\nreturn s }",
		"func F() any { if 0.5 + 0.25 > 0.7 { return \"y\" }\nreturn \"n\" }",
		"func F() any { return 7 / 2 + 7 % 2 }",
		// Exceptions: div by zero, type errors, explicit panic/recover.
		"func F() any { return 1 / 0 }",
		"func F() any { return \"a\" - 1 }",
		"func F() any { defer func() { recover() }()\npanic(\"boom\") }",
		"func G() { panic(\"deep\") }\nfunc F() any { G()\nreturn 1 }",
		// UnboundLocalError and scoping quirks.
		"func F() any { if false { x := 1\n_ = x }\nreturn x }",
		"var g = 10\nfunc F() any { g = g + 1\nreturn g }",
		// Closures, captures, cells.
		"func F() any { n := 0\ninc := func() { n = n + 1 }\ninc()\ninc()\nreturn n }",
		"func F() any { fs := []any{}\nfor i := 0; i < 3; i++ { j := i\nfs = append(fs, func() any { return j }) }\nreturn fs[2]() }",
		// Collections and ranges.
		"func F() any { m := map[string]any{\"a\": 1, \"b\": 2}\ns := 0\nfor _, v := range m { s = s + v }\nreturn s }",
		"func F() any { xs := []any{1, 2, 3}\nxs[1] = 9\nreturn xs[0] + xs[1] + xs[2] }",
		"func F() any { s := \"hello\"\nreturn s[1:4] + s[0:1] }",
		// Methods and structs.
		"type P struct{}\nfunc (p P) Add(a any, b any) any { return a + b }\nfunc F() any { p := P{}\nreturn p.Add(2, 3) }",
		// Defer ordering and virtual clock.
		"func F() any { r := []any{}\ndefer func() { r = append(r, 1) }()\ndefer func() { r = append(r, 2) }()\nreturn len(r) }",
		"func F() any { sleep(5)\nreturn now() }",
		// Deep recursion (bounded) and step budget pressure.
		"func R(n any) any { if n <= 0 { return 0 }\nreturn R(n-1) + 1 }\nfunc F() any { return R(50) }",
		"func F() any { for { } }",
		// Builtins.
		"func F() any { return len(str(123)) + int(\"42\") }",
		"import \"fmt\"\nfunc F() any { fmt.Println(\"x\", 1)\nreturn fmt.Sprintf(\"%d\", 9) }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := []byte("package main\n" + body)
		const maxSteps = 50_000

		var treeOut bytes.Buffer
		tree := New(Config{MaxSteps: maxSteps, Stdout: &treeOut})
		if err := tree.LoadSource("fuzz.go", src); err != nil {
			return // front end rejected it; nothing differential to run
		}
		treeVal, treeErr := tree.Call("F")

		prog, err := CompileProgram([]SourceUnit{{Name: "fuzz.go", Src: src}})
		if err != nil {
			t.Fatalf("tree-walk loaded but CompileProgram failed: %v\nsource:\n%s", err, src)
		}
		for _, engine := range []string{"closure", "bytecode"} {
			var out bytes.Buffer
			run := NewRun(prog, Config{MaxSteps: maxSteps, Stdout: &out, Engine: engine})
			if err := run.Boot(); err != nil {
				t.Fatalf("%s: tree-walk loaded but Boot failed: %v\nsource:\n%s", engine, err, src)
			}
			val, cerr := run.Call("F")
			if Repr(treeVal) != Repr(val) {
				t.Errorf("%s: result mismatch:\n tree: %s\n  got: %s\nsource:\n%s",
					engine, Repr(treeVal), Repr(val), src)
			}
			if fmt.Sprint(treeErr) != fmt.Sprint(cerr) {
				t.Errorf("%s: error mismatch:\n tree: %v\n  got: %v\nsource:\n%s",
					engine, treeErr, cerr, src)
			}
			if tree.Steps() != run.Steps() {
				t.Errorf("%s: step count mismatch: tree=%d got=%d\nsource:\n%s",
					engine, tree.Steps(), run.Steps(), src)
			}
			if tree.Clock() != run.Clock() {
				t.Errorf("%s: clock mismatch: tree=%d got=%d\nsource:\n%s",
					engine, tree.Clock(), run.Clock(), src)
			}
			if !bytes.Equal(treeOut.Bytes(), out.Bytes()) {
				t.Errorf("%s: stdout mismatch:\n tree: %q\n  got: %q\nsource:\n%s",
					engine, treeOut.String(), out.String(), src)
			}
		}
	})
}
