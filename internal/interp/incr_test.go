package interp

import (
	"bytes"
	"strings"
	"testing"
)

// Incremental WithFiles recompilation: campaigns derive hundreds of
// programs that differ from the base in one byte window inside one
// function, so WithFiles recompiles just that declaration. These tests
// pin the fast path's engagement, its equivalence with a full
// recompile, and every fallback rule.

const incrBase = `package main

import "fmt"

var limit = 3

func helper(x any) any {
	return x + 1
}

type Box struct{}

func (b Box) Get(n any) any {
	s := 0
	for i := 0; i < n; i++ {
		s = s + helper(i)
	}
	return s
}

func Entry(n any) any {
	b := Box{}
	fmt.Sprintf("%v", limit)
	return b.Get(n) + limit
}
`

func incrProgram(t *testing.T, src string) *Program {
	t.Helper()
	p, err := CompileProgram([]SourceUnit{{Name: "t.go", Src: []byte(src)}})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func incrCall(t *testing.T, p *Program, engine string, fn string, args ...Value) (Value, error) {
	t.Helper()
	it := NewRun(p, Config{Engine: engine})
	if err := it.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	return it.Call(fn, args...)
}

// mutate splices old->new once, failing if the needle is absent.
func mutate(t *testing.T, src, old, new string) []byte {
	t.Helper()
	if !strings.Contains(src, old) {
		t.Fatalf("needle %q not in source", old)
	}
	return []byte(strings.Replace(src, old, new, 1))
}

func TestIncrementalRecompileEngages(t *testing.T) {
	cases := []struct {
		name string
		old  string
		new  string
	}{
		{"plain function body", "return x + 1", "return x + 2"},
		{"method body", "s = s + helper(i)", "s = s - helper(i)"},
		{"shrinking edit", "s := 0\n\tfor i := 0; i < n; i++ {\n\t\ts = s + helper(i)\n\t}\n\treturn s", "return n"},
		{"growing edit", "return b.Get(n) + limit", "x := b.Get(n)\n\tx = x * 2\n\treturn x + limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := incrProgram(t, incrBase)
			mutated := mutate(t, incrBase, tc.old, tc.new)
			np, err := base.WithFiles(map[string][]byte{"t.go": mutated})
			if err != nil {
				t.Fatalf("WithFiles: %v", err)
			}
			if got := base.IncrementalRecompiles(); got != 1 {
				t.Fatalf("incremental recompiles = %d, want 1 (fast path did not engage)", got)
			}
			// The spliced program must behave exactly like a from-scratch
			// compile of the mutated source, on every engine.
			want := incrProgram(t, string(mutated))
			for _, engine := range []string{"bytecode", "closure"} {
				gv, ge := incrCall(t, np, engine, "Entry", int64(4))
				wv, we := incrCall(t, want, engine, "Entry", int64(4))
				if gv != wv || (ge == nil) != (we == nil) {
					t.Errorf("%s: spliced Entry(4) = (%v, %v), full recompile = (%v, %v)",
						engine, gv, ge, wv, we)
				}
			}
		})
	}
}

// TestIncrementalRecompileRepeated drives a chain of derivations off one
// base, the way a campaign does, and checks each splice lands on the
// declaration the edit touched — including decls after an earlier edit
// shifted byte offsets.
func TestIncrementalRecompileRepeated(t *testing.T) {
	base := incrProgram(t, incrBase)
	edits := []struct{ old, new string }{
		{"return x + 1", "return x + 100"},
		{"s = s + helper(i)", "s = s + helper(i) + 1"},
		{"return b.Get(n) + limit", "return b.Get(n) - limit"},
	}
	for i, e := range edits {
		mutated := mutate(t, incrBase, e.old, e.new)
		np, err := base.WithFiles(map[string][]byte{"t.go": mutated})
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		want := incrProgram(t, string(mutated))
		gv, _ := incrCall(t, np, "bytecode", "Entry", int64(5))
		wv, _ := incrCall(t, want, "bytecode", "Entry", int64(5))
		if gv != wv {
			t.Errorf("edit %d: Entry(5) = %v, want %v", i, gv, wv)
		}
	}
	if got := base.IncrementalRecompiles(); got != uint64(len(edits)) {
		t.Errorf("incremental recompiles = %d, want %d", got, len(edits))
	}
}

// TestIncrementalRecompileFallbacks enumerates the diffs the fast path
// must refuse: anything that is not one window inside one function.
func TestIncrementalRecompileFallbacks(t *testing.T) {
	cases := []struct {
		name string
		src  func() []byte
	}{
		{"edit outside any function", func() []byte {
			return mutate(t, incrBase, "var limit = 3", "var limit = 4")
		}},
		{"renamed function", func() []byte {
			return mutate(t, incrBase, "func helper(x any) any {\n\treturn x + 1",
				"func helper2(x any) any {\n\treturn x + 9")
		}},
		{"window spanning two decls", func() []byte {
			return mutate(t, incrBase, "return x + 1\n}\n\ntype Box struct{}\n\nfunc (b Box) Get(n any) any {\n\ts := 0",
				"return x + 7\n}\n\ntype Box struct{}\n\nfunc (b Box) Get(n any) any {\n\ts := 9")
		}},
		{"appended declaration", func() []byte {
			return []byte(incrBase + "\nfunc extra() any { return 1 }\n")
		}},
		{"syntax error in body", func() []byte {
			return mutate(t, incrBase, "return x + 1", "return x +")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := incrProgram(t, incrBase)
			mutated := tc.src()
			np, err := base.WithFiles(map[string][]byte{"t.go": mutated})
			wantErr := bytes.Contains(mutated, []byte("return x +\n"))
			if wantErr {
				if err == nil {
					t.Fatalf("expected parse error from full path")
				}
				return
			}
			if err != nil {
				t.Fatalf("WithFiles: %v", err)
			}
			if got := base.IncrementalRecompiles(); got != 0 {
				t.Fatalf("incremental recompiles = %d, want 0 (fallback expected)", got)
			}
			want := incrProgram(t, string(mutated))
			gv, _ := incrCall(t, np, "bytecode", "Entry", int64(3))
			wv, _ := incrCall(t, want, "bytecode", "Entry", int64(3))
			if gv != wv {
				t.Errorf("Entry(3) = %v, want %v", gv, wv)
			}
		})
	}
}
