package interp

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"math"
	"strings"
	"sync/atomic"
)

// Sentinel errors for abnormal terminations of interpreted code.
var (
	// ErrTimeout is returned when the virtual deadline is exceeded
	// (the analog of a hung experiment killed by the workload timeout).
	ErrTimeout = errors.New("interp: virtual deadline exceeded")
	// ErrSteps is returned when the hard step budget is exhausted
	// (a backstop against real non-termination of interpreted code).
	ErrSteps = errors.New("interp: step budget exhausted")
	// ErrInterrupted is returned when Interrupt was called from another
	// goroutine — the workload watchdog killing a wall-clock-hung
	// experiment so it cannot stall its whole shard.
	ErrInterrupted = errors.New("interp: interrupted")
)

// PanicError is an uncaught exception escaping interpreted code — the
// analog of an unhandled Python exception crashing the client process.
type PanicError struct {
	Val   Value
	Stack []string
}

func (e *PanicError) Error() string {
	return "uncaught exception: " + Repr(e.Val) + " (in " + strings.Join(e.Stack, " < ") + ")"
}

// Exception returns the panic value as an *Exc when it is one.
func (e *PanicError) Exception() (*Exc, bool) {
	x, ok := e.Val.(*Exc)
	return x, ok
}

// Config parameterises an interpreter instance.
type Config struct {
	// StepNS is the virtual nanoseconds charged per interpreter step.
	StepNS int64
	// DeadlineNS aborts execution with ErrTimeout once the virtual clock
	// passes it; 0 means no deadline.
	DeadlineNS int64
	// MaxSteps is the hard step budget; 0 selects a large default.
	MaxSteps int64
	// Stdout receives print/println output; nil discards it.
	Stdout io.Writer
	// Hook observes (and may perturb) every interpreted function call;
	// nil disables the mechanism. See CallHook.
	Hook CallHook
	// Engine selects how compiled functions execute: "" or "bytecode"
	// runs the lowered register code (the default), "closure" forces the
	// closure-tree path. Both are observably identical; the knob exists
	// for A/B benchmarking and as an escape hatch. The tree-walk is not
	// an Engine value — it is a different front end (New + LoadSource
	// instead of NewRun).
	Engine string
}

// CallHook interposes on interpreted function calls — the runtime fault
// injection surface. Both execution paths (tree-walk and compiled)
// invoke the hook at exactly the same points with exactly the same
// function names, so a deterministic hook observes an identical call
// sequence on either path:
//
//   - EnterCall runs after the callee's frame is pushed and parameters
//     are bound, before the first body statement. A non-nil error aborts
//     the call as if its body had failed (a *PanicError is recoverable
//     by outer defers, like any interpreted panic).
//   - LeaveCall runs after the body and its defers complete without an
//     error; the returned value replaces the call's result.
//
// Function names are the interpreter's display names: top-level
// functions by declaration name, methods as "Type.Method", function
// literals as "<func>". Host functions and builtins are not hooked.
type CallHook interface {
	EnterCall(it *Interp, fn string) error
	LeaveCall(it *Interp, fn string, result Value) (Value, error)
}

// Interp executes a loaded minigo program.
type Interp struct {
	fset    *token.FileSet
	globals *Scope
	methods map[string]map[string]*ast.FuncDecl
	modules map[string]*Module

	clockNS    int64
	stepNS     int64
	deadlineNS int64
	steps      int64
	maxSteps   int64
	// interrupted is the only cross-goroutine channel into the
	// interpreter: a watchdog sets it, the step loop polls it.
	interrupted atomic.Bool

	stdout io.Writer
	hook   CallHook
	engine uint8
	frames []*frame

	// Compiled-execution state (NewRun): the program, the flat global
	// slot array indexed by the program's symbol table, and the side
	// table for host-registered names compiled code never references.
	prog   *Program
	gslots []Value
	extras map[string]Value

	// hostVals records every host-registered value by a stable
	// registration key ("g:name" for globals, "m:name" for modules).
	// Snapshot/fork uses the keys to translate host references between
	// the capturing interpreter and a forked one, whose environment
	// registers equivalent values under the same keys.
	hostVals map[string]Value

	// Checkpoint context, non-nil only while a CallPrefix checkpoint
	// callback runs: the paused entry frame Snapshot captures.
	cpFrame *cframe
	cpEntry *compiledClosure
	cpMeta  *frame
	cpStmt  int
}

type frame struct {
	name      string
	defers    []deferredCall
	panicking *PanicError
}

type deferredCall struct {
	fn   Value
	args []Value
}

// withDefaults normalizes a Config; New and NewRun must share it so the
// tree-walk and compiled paths always run under the same budgets.
func (cfg Config) withDefaults() Config {
	if cfg.StepNS <= 0 {
		cfg.StepNS = 1000 // 1µs of virtual time per step
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 50_000_000
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	return cfg
}

// New creates an interpreter with the given configuration.
func New(cfg Config) *Interp {
	cfg = cfg.withDefaults()
	it := &Interp{
		fset:       token.NewFileSet(),
		globals:    NewScope(nil),
		methods:    make(map[string]map[string]*ast.FuncDecl),
		modules:    make(map[string]*Module),
		stepNS:     cfg.StepNS,
		deadlineNS: cfg.DeadlineNS,
		maxSteps:   cfg.MaxSteps,
		stdout:     cfg.Stdout,
		hook:       cfg.Hook,
		engine:     engineOf(cfg.Engine),
	}
	registerBuiltins(it)
	return it
}

// SetCallHook installs (or clears, with nil) the call hook. Install it
// before the first Call; swapping hooks mid-execution is not supported.
func (it *Interp) SetCallHook(h CallHook) { it.hook = h }

// Throw raises an interpreted exception from host code (hook or host
// function): the error is a *PanicError carrying an *Exc, recoverable by
// deferred recover() like any interpreted panic.
func (it *Interp) Throw(excType, msg string) error {
	return it.throw(excType, msg)
}

// RegisterModule makes a host module importable by target sources.
func (it *Interp) RegisterModule(m *Module) {
	it.modules[m.Name] = m
	it.noteHost("m:"+m.Name, m)
}

// RegisterGlobal binds a name in the global scope (used for fault hooks
// such as __fault_enabled and __corrupt).
func (it *Interp) RegisterGlobal(name string, v Value) {
	it.noteHost("g:"+name, v)
	if it.prog != nil {
		it.defineGlobal(name, v)
		return
	}
	it.globals.Define(name, v)
}

// noteHost records a host registration for snapshot/fork translation.
func (it *Interp) noteHost(key string, v Value) {
	if it.hostVals == nil {
		it.hostVals = make(map[string]Value)
	}
	it.hostVals[key] = v
}

// RegisterHostFunc binds a global host function.
func (it *Interp) RegisterHostFunc(name string, fn func(it *Interp, args []Value) (Value, error)) {
	it.RegisterGlobal(name, &HostFunc{Name: name, Fn: fn})
}

// Clock returns the current virtual time in nanoseconds.
func (it *Interp) Clock() int64 { return it.clockNS }

// Steps returns the number of interpreter steps executed so far.
func (it *Interp) Steps() int64 { return it.steps }

// AdvanceClock adds virtual time; host functions emulating slow
// operations (sleeps, CPU hogs, network latency) call this. The clock
// is monotone: negative deltas (a corrupt `delay` action, for example)
// are dropped rather than rewinding the clock past DeadlineNS checks,
// and additions saturate instead of overflowing to a negative clock.
func (it *Interp) AdvanceClock(ns int64) {
	if ns <= 0 {
		return
	}
	if it.clockNS > math.MaxInt64-ns {
		it.clockNS = math.MaxInt64
		return
	}
	it.clockNS += ns
}

// SetDeadline replaces the virtual deadline (absolute nanoseconds).
func (it *Interp) SetDeadline(ns int64) { it.deadlineNS = ns }

// Interrupt asks the interpreter to abort execution with ErrInterrupted
// at the next interrupt poll. It is the only method safe to call from
// another goroutine while the interpreter runs; the workload watchdog
// uses it to kill experiments that exhaust their wall-clock budget.
func (it *Interp) Interrupt() { it.interrupted.Store(true) }

// interruptPollMask throttles the atomic interrupt check to one load
// every 1024 steps, keeping the hot step loop branch-cheap while still
// bounding watchdog reaction time to microseconds of real work.
const interruptPollMask = 1<<10 - 1

// step charges one interpreter step and enforces deadline and budget.
func (it *Interp) step() error {
	it.steps++
	it.clockNS += it.stepNS
	if it.deadlineNS > 0 && it.clockNS > it.deadlineNS {
		return ErrTimeout
	}
	if it.steps > it.maxSteps {
		return ErrSteps
	}
	if it.steps&interruptPollMask == 0 && it.interrupted.Load() {
		return ErrInterrupted
	}
	return nil
}

// LoadSource parses and loads one target source file: top-level functions,
// methods, constants and vars become available for execution. Imports are
// resolved against registered host modules.
func (it *Interp) LoadSource(filename string, src []byte) error {
	f, err := parser.ParseFile(it.fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return fmt.Errorf("interp: parse %s: %w", filename, err)
	}
	// Resolve imports first so top-level vars can use modules.
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		mod, ok := it.modules[path]
		if !ok {
			return fmt.Errorf("interp: %s imports unknown module %q", filename, path)
		}
		name := mod.Name
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		it.globals.Define(name, mod)
	}
	// Declarations.
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			if decl.Body == nil {
				// A declaration without a body is legal Go syntax (an
				// external function) but meaningless in minigo; calling
				// one can only crash, so reject it at load time. The
				// compiled path raises the identical error.
				return fmt.Errorf("interp: %s: function %s has no body", filename, decl.Name.Name)
			}
			if decl.Recv != nil && len(decl.Recv.List) > 0 {
				typeName, recvName := recvInfo(decl)
				if typeName == "" {
					return fmt.Errorf("interp: %s: unsupported receiver on %s", filename, decl.Name.Name)
				}
				if it.methods[typeName] == nil {
					it.methods[typeName] = make(map[string]*ast.FuncDecl)
				}
				it.methods[typeName][decl.Name.Name] = decl
				_ = recvName
				continue
			}
			it.globals.Define(decl.Name.Name, &Closure{
				Name:   decl.Name.Name,
				Params: paramNames(decl.Type),
				Body:   decl.Body,
				Env:    it.globals,
			})
		case *ast.GenDecl:
			if decl.Tok == token.VAR || decl.Tok == token.CONST {
				for _, spec := range decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var v Value
						if i < len(vs.Values) {
							var err error
							v, err = it.evalExpr(vs.Values[i], it.globals)
							if err != nil {
								return fmt.Errorf("interp: %s: init %s: %w", filename, name.Name, err)
							}
						}
						it.globals.Define(name.Name, v)
					}
				}
			}
			// Type declarations carry no runtime information in minigo;
			// struct literals create dynamic Objects by name.
		}
	}
	return nil
}

func recvInfo(decl *ast.FuncDecl) (typeName, recvName string) {
	recv := decl.Recv.List[0]
	t := recv.Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(recv.Names) > 0 {
		recvName = recv.Names[0].Name
	}
	return id.Name, recvName
}

func paramNames(ft *ast.FuncType) []string {
	var names []string
	if ft.Params == nil {
		return names
	}
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			names = append(names, "_")
			continue
		}
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

// Global returns the value bound to a global name.
func (it *Interp) Global(name string) (Value, bool) {
	if it.prog != nil {
		return it.lookupGlobal(name)
	}
	return it.globals.Lookup(name)
}

// Call invokes a loaded function by name with the given arguments.
func (it *Interp) Call(name string, args ...Value) (Value, error) {
	fn, ok := it.Global(name)
	if !ok {
		return nil, fmt.Errorf("interp: undefined function %q", name)
	}
	return it.call(fn, args)
}

// call dispatches a call on a callable value.
func (it *Interp) call(fn Value, args []Value) (Value, error) {
	if err := it.step(); err != nil {
		return nil, err
	}
	switch f := fn.(type) {
	case *HostFunc:
		return f.Fn(it, args)
	case *Closure:
		return it.callClosure(f, args)
	case *compiledClosure:
		if it.engine != engineClosure && f.fn.code != nil {
			return it.callBytecode(f, args)
		}
		return it.callCompiled(f, args)
	case nil:
		return nil, it.throw("AttributeError", "nil object is not callable")
	default:
		return nil, it.throw("TypeError", TypeName(fn)+" object is not callable")
	}
}

// callClosure executes a user function with defer/recover semantics.
func (it *Interp) callClosure(f *Closure, args []Value) (result Value, err error) {
	if len(it.frames) > 200 {
		return nil, it.throw("RecursionError", "maximum call depth exceeded in "+f.Name)
	}
	fr := &frame{name: f.Name}
	it.frames = append(it.frames, fr)
	defer func() { it.frames = it.frames[:len(it.frames)-1] }()

	scope := NewScope(f.Env)
	scope.funcRoot = true
	if f.RecvN != "" {
		scope.Define(f.RecvN, f.Recv)
	}
	for i, p := range f.Params {
		var v Value
		if i < len(args) {
			v = args[i]
		}
		scope.Define(p, v)
	}
	// Extra args beyond declared params are dropped (emulating the
	// paper's "omitted parameters use defaults" semantics in reverse).

	var cerr error
	if it.hook != nil {
		cerr = it.hook.EnterCall(it, f.Name)
	}
	if cerr == nil {
		var ctl control
		var ret Value
		ctl, ret, cerr = it.execBlock(f.Body.List, scope)
		if ctl == ctlReturn {
			result = ret
		}
	}
	// Run defers (LIFO); a deferred recover() may squash a panic.
	err = it.runDefers(fr, cerr)
	if err == nil && it.hook != nil {
		result, err = it.hook.LeaveCall(it, f.Name, result)
	}
	return result, err
}

// runDefers executes the frame's deferred calls; if execution was
// panicking and a deferred call recovers, the error is cleared.
func (it *Interp) runDefers(fr *frame, callErr error) error {
	if len(fr.defers) == 0 {
		return callErr
	}
	var pe *PanicError
	if errors.As(callErr, &pe) {
		fr.panicking = pe
	} else if callErr != nil {
		// Timeouts and budget exhaustion are not recoverable.
		return callErr
	}
	for i := len(fr.defers) - 1; i >= 0; i-- {
		d := fr.defers[i]
		if _, derr := it.call(d.fn, d.args); derr != nil {
			// A panic raised inside a defer replaces the current one.
			var dpe *PanicError
			if errors.As(derr, &dpe) {
				fr.panicking = dpe
			} else {
				return derr
			}
		}
	}
	if fr.panicking != nil {
		return fr.panicking
	}
	return nil
}

// throw raises an exception from host code.
func (it *Interp) throw(excType, msg string) error {
	return &PanicError{Val: &Exc{Type: excType, Msg: msg}, Stack: it.stackNames()}
}

func (it *Interp) stackNames() []string {
	names := make([]string, 0, len(it.frames))
	for i := len(it.frames) - 1; i >= 0; i-- {
		names = append(names, it.frames[i].name)
	}
	if len(names) == 0 {
		names = append(names, "<toplevel>")
	}
	return names
}

// currentFrame returns the innermost frame, or nil at top level.
func (it *Interp) currentFrame() *frame {
	if len(it.frames) == 0 {
		return nil
	}
	return it.frames[len(it.frames)-1]
}
