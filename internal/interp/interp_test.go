package interp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func run(t *testing.T, src string, entry string, args ...Value) (Value, error) {
	t.Helper()
	it := New(Config{})
	if err := it.LoadSource("test.go", []byte("package main\n"+src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	return it.Call(entry, args...)
}

func mustRun(t *testing.T, src, entry string, args ...Value) Value {
	t.Helper()
	v, err := run(t, src, entry, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", entry, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"1 + 2*3", int64(7)},
		{"10 / 3", int64(3)},
		{"10 % 3", int64(1)},
		{"2.5 + 1", float64(3.5)},
		{"7 - 10", int64(-3)},
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{`"a" + "b"`, "ab"},
		{`"abc" < "abd"`, true},
		{"1 == 1.0", true},
		{"-5 + 2", int64(-3)},
		{"!true", false},
		{"1<<4", int64(16)},
		{"255 & 15", int64(15)},
	}
	for _, tc := range tests {
		got := mustRun(t, "func F() any { return "+tc.expr+" }", "F")
		if !Equal(got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.expr, Repr(got), Repr(tc.want))
		}
	}
}

func TestDivisionByZeroRaises(t *testing.T) {
	_, err := run(t, "func F(n int) any { return 1 / n }", "F", int64(0))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	exc, ok := pe.Exception()
	if !ok || exc.Type != "ZeroDivisionError" {
		t.Fatalf("exception = %v, want ZeroDivisionError", pe.Val)
	}
}

func TestTypeErrorOnMixedOperands(t *testing.T) {
	_, err := run(t, `func F(s string) any { return s + 1 }`, "F", "x")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if exc, _ := pe.Exception(); exc.Type != "TypeError" {
		t.Fatalf("exception = %v, want TypeError", pe.Val)
	}
}

func TestNilAttributeError(t *testing.T) {
	// The AttributeError analog of Python-etcd's missing nil checks.
	_, err := run(t, `func F(k any) any { return k.Name }`, "F", nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	exc, _ := pe.Exception()
	if exc.Type != "AttributeError" || !strings.Contains(exc.Msg, "nil object") {
		t.Fatalf("exception = %v, want nil AttributeError", pe.Val)
	}
}

func TestUnboundLocalError(t *testing.T) {
	_, err := run(t, `func F() any { return undefinedVar }`, "F")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	exc, _ := pe.Exception()
	if exc.Type != "UnboundLocalError" {
		t.Fatalf("exception = %v, want UnboundLocalError", pe.Val)
	}
}

func TestListsAndMaps(t *testing.T) {
	src := `
func F() any {
	xs := []any{1, 2, 3}
	xs = append(xs, 4)
	m := map[string]any{"a": 1}
	m["b"] = 2
	total := 0
	for _, x := range xs {
		total += x
	}
	for _, k := range keys(m) {
		total += m[k]
	}
	return total
}`
	got := mustRun(t, src, "F")
	if got != int64(13) {
		t.Fatalf("F() = %v, want 13", got)
	}
}

func TestMapCommaOk(t *testing.T) {
	src := `
func F() any {
	m := map[string]any{"x": 10}
	v, ok := m["x"]
	_, missing := m["y"]
	if ok && !missing {
		return v
	}
	return -1
}`
	if got := mustRun(t, src, "F"); got != int64(10) {
		t.Fatalf("F() = %v, want 10", got)
	}
}

func TestStructsAndMethods(t *testing.T) {
	src := `
type Counter struct{}

func NewCounter(start int) any {
	return &Counter{n: start}
}

func (c *Counter) Add(d int) any {
	c.n = c.n + d
	return c.n
}

func (c *Counter) Value() any {
	return c.n
}

func F() any {
	c := NewCounter(5)
	c.Add(3)
	c.Add(2)
	return c.Value()
}`
	if got := mustRun(t, src, "F"); got != int64(10) {
		t.Fatalf("F() = %v, want 10", got)
	}
}

func TestClosures(t *testing.T) {
	src := `
func Adder(n int) any {
	return func(x int) any { return x + n }
}

func F() any {
	add5 := Adder(5)
	return add5(37)
}`
	if got := mustRun(t, src, "F"); got != int64(42) {
		t.Fatalf("F() = %v, want 42", got)
	}
}

func TestMultiReturnAndUnpack(t *testing.T) {
	src := `
func divmod(a int, b int) (any, any) {
	return a / b, a % b
}

func F() any {
	q, r := divmod(17, 5)
	return q*10 + r
}`
	if got := mustRun(t, src, "F"); got != int64(32) {
		t.Fatalf("F() = %v, want 32", got)
	}
}

func TestPanicRecover(t *testing.T) {
	src := `
func risky() any {
	panic(__mkexc())
}

func F() any {
	result := "none"
	func() {
		defer func() {
			if r := recover(); r != nil {
				result = "recovered: " + r.Type
			}
		}()
		risky()
	}()
	return result
}`
	it := New(Config{})
	it.RegisterHostFunc("__mkexc", func(it *Interp, args []Value) (Value, error) {
		return &Exc{Type: "EtcdException", Msg: "boom"}, nil
	})
	if err := it.LoadSource("t.go", []byte("package main\n"+src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	got, err := it.Call("F")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != "recovered: EtcdException" {
		t.Fatalf("F() = %v, want recovered: EtcdException", got)
	}
}

func TestUncaughtPanicPropagates(t *testing.T) {
	src := `
func inner() any { return missing.Field }
func outer() any { return inner() }
`
	_, err := run(t, src, "outer")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if len(pe.Stack) == 0 || pe.Stack[0] != "inner" {
		t.Fatalf("stack = %v, want innermost frame first", pe.Stack)
	}
}

func TestThrowBuiltin(t *testing.T) {
	_, err := run(t, `func F() any { throw("EtcdKeyNotFound", "key missing"); return nil }`, "F")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	exc, _ := pe.Exception()
	if exc.Type != "EtcdKeyNotFound" || exc.Msg != "key missing" {
		t.Fatalf("exception = %v", pe.Val)
	}
}

func TestDeferRunsOnNormalReturn(t *testing.T) {
	src := `
func F() any {
	log := []any{}
	func() {
		defer func() { __note("deferred") }()
		__note("body")
	}()
	return log
}`
	var notes []string
	it := New(Config{})
	it.RegisterHostFunc("__note", func(it *Interp, args []Value) (Value, error) {
		notes = append(notes, Repr(args[0]))
		return nil, nil
	})
	if err := it.LoadSource("t.go", []byte("package main\n"+src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	if _, err := it.Call("F"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if len(notes) != 2 || notes[0] != "body" || notes[1] != "deferred" {
		t.Fatalf("notes = %v, want [body deferred]", notes)
	}
}

func TestVirtualDeadline(t *testing.T) {
	it := New(Config{DeadlineNS: 1_000_000}) // 1ms of virtual time
	src := `package main
func F() any {
	for {
		x := 1
		_ = x
	}
	return nil
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	_, err := it.Call("F")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestStepBudget(t *testing.T) {
	it := New(Config{MaxSteps: 1000})
	src := `package main
func F() any {
	for {
	}
	return nil
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	_, err := it.Call("F")
	if !errors.Is(err, ErrSteps) {
		t.Fatalf("err = %v, want ErrSteps", err)
	}
}

func TestTimeoutNotRecoverable(t *testing.T) {
	// A deferred recover must not squash a virtual timeout.
	it := New(Config{DeadlineNS: 1_000_000})
	src := `package main
func F() any {
	defer func() { recover() }()
	for {
	}
	return nil
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	_, err := it.Call("F")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestModulesAndImports(t *testing.T) {
	it := New(Config{})
	mod := NewModule("urllib")
	mod.Func("Get", func(it *Interp, args []Value) (Value, error) {
		return "response:" + Repr(args[0]), nil
	})
	it.RegisterModule(mod)
	src := `package main

import "urllib"

func F() any {
	return urllib.Get("/key")
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	got, err := it.Call("F")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != "response:/key" {
		t.Fatalf("F() = %v", got)
	}
}

func TestUnknownImportFails(t *testing.T) {
	it := New(Config{})
	err := it.LoadSource("t.go", []byte("package main\nimport \"nosuch\"\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown module") {
		t.Fatalf("err = %v, want unknown module", err)
	}
}

func TestSwitch(t *testing.T) {
	src := `
func F(n int) any {
	switch n {
	case 1:
		return "one"
	case 2, 3:
		return "few"
	default:
		return "many"
	}
}`
	for _, tc := range []struct {
		n    int64
		want string
	}{{1, "one"}, {2, "few"}, {3, "few"}, {9, "many"}} {
		if got := mustRun(t, src, "F", tc.n); got != tc.want {
			t.Errorf("F(%d) = %v, want %s", tc.n, got, tc.want)
		}
	}
}

func TestTaglessSwitch(t *testing.T) {
	src := `
func F(n int) any {
	switch {
	case n < 0:
		return "neg"
	case n == 0:
		return "zero"
	default:
		return "pos"
	}
}`
	if got := mustRun(t, src, "F", int64(-5)); got != "neg" {
		t.Errorf("F(-5) = %v", got)
	}
	if got := mustRun(t, src, "F", int64(0)); got != "zero" {
		t.Errorf("F(0) = %v", got)
	}
}

func TestStringHelpersAndSlices(t *testing.T) {
	src := `
import "strlib"

func F() any {
	s := "hello-world"
	if !strlib.HasPrefix(s, "hello") {
		return "bad prefix"
	}
	parts := strlib.Split(s, "-")
	return parts[1] + s[0:5] + str(len(s))
}`
	if got := mustRun(t, src, "F"); got != "worldhello11" {
		t.Fatalf("F() = %v", got)
	}
}

func TestStrlibNilRaisesAttributeError(t *testing.T) {
	src := `
import "strlib"

func F(k any) any {
	return strlib.HasPrefix(k, "/")
}`
	_, err := run(t, src, "F", nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	exc, _ := pe.Exception()
	if exc.Type != "AttributeError" || !strings.Contains(exc.Msg, "startswith") {
		t.Fatalf("exception = %v, want startswith AttributeError", pe.Val)
	}
}

func TestPrintGoesToStdout(t *testing.T) {
	var buf bytes.Buffer
	it := New(Config{Stdout: &buf})
	src := `package main
func F() any {
	println("hello", 42)
	return nil
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	if _, err := it.Call("F"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := buf.String(); got != "hello 42\n" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestGlobalsAndVirtualClock(t *testing.T) {
	it := New(Config{StepNS: 1000})
	src := `package main

var counter = 0

func Bump() any {
	counter = counter + 1
	return counter
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	before := it.Clock()
	if _, err := it.Call("Bump"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got, _ := it.Call("Bump"); got != int64(2) {
		t.Fatalf("Bump = %v, want 2 (globals persist across calls)", got)
	}
	if it.Clock() <= before {
		t.Error("virtual clock did not advance")
	}
}

func TestRecursionDepthLimited(t *testing.T) {
	_, err := run(t, `func F() any { return F() }`, "F")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	exc, _ := pe.Exception()
	if exc.Type != "RecursionError" {
		t.Fatalf("exception = %v, want RecursionError", pe.Val)
	}
}

func TestFmtSprintf(t *testing.T) {
	src := `
import "fmt"

func F() any {
	return fmt.Sprintf("key=%s n=%d ok=%v", "a", 7, true)
}`
	if got := mustRun(t, src, "F"); got != "key=a n=7 ok=true" {
		t.Fatalf("F() = %v", got)
	}
}

func TestIndexErrors(t *testing.T) {
	_, err := run(t, `func F() any { xs := []any{1}; return xs[5] }`, "F")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if exc, _ := pe.Exception(); exc.Type != "IndexError" {
		t.Fatalf("exception = %v, want IndexError", pe.Val)
	}
}

func TestRangeOverNilRaises(t *testing.T) {
	_, err := run(t, `func F(xs any) any { for _, x := range xs { _ = x }; return nil }`, "F", nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if exc, _ := pe.Exception(); exc.Type != "TypeError" {
		t.Fatalf("exception = %v, want TypeError", pe.Val)
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	src := `
func F() any {
	x := 10
	x += 5
	x -= 3
	x *= 2
	x++
	x--
	return x
}`
	if got := mustRun(t, src, "F"); got != int64(24) {
		t.Fatalf("F() = %v, want 24", got)
	}
}

func TestMissingArgumentsDefaultToNil(t *testing.T) {
	// Omitted-parameter faults rely on missing args becoming nil.
	src := `
func G(a any, b any) any {
	if b == nil {
		return "default"
	}
	return b
}

func F() any {
	return G(1)
}`
	if got := mustRun(t, src, "F"); got != "default" {
		t.Fatalf("F() = %v, want default", got)
	}
}

func TestDeferArgsEvaluatedAtDeferTime(t *testing.T) {
	src := `
func F() any {
	log := []any{}
	x := 1
	func() {
		defer __note(x)
		x = 2
		__note(x)
	}()
	_ = log
	return nil
}`
	var notes []Value
	it := New(Config{})
	it.RegisterHostFunc("__note", func(it *Interp, args []Value) (Value, error) {
		notes = append(notes, args[0])
		return nil, nil
	})
	if err := it.LoadSource("t.go", []byte("package main\n"+src)); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Call("F"); err != nil {
		t.Fatal(err)
	}
	// Go semantics: deferred args are captured when the defer runs, so
	// the deferred note sees x=1 even though x became 2.
	if len(notes) != 2 || notes[0] != int64(2) || notes[1] != int64(1) {
		t.Fatalf("notes = %v, want [2 1]", notes)
	}
}

func TestGoStatementRunsSynchronously(t *testing.T) {
	src := `
func F() any {
	total := 0
	go bump()
	return total
}`
	it := New(Config{})
	bumped := false
	it.RegisterHostFunc("bump", func(it *Interp, args []Value) (Value, error) {
		bumped = true
		return nil, nil
	})
	if err := it.LoadSource("t.go", []byte("package main\n"+src)); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Call("F"); err != nil {
		t.Fatal(err)
	}
	if !bumped {
		t.Error("go statement body did not run (minigo runs goroutines synchronously)")
	}
}

func TestMethodChainsThroughFields(t *testing.T) {
	src := `
type Inner struct{}

func (i *Inner) Get() any { return i.val }

type Outer struct{}

func F() any {
	inner := &Inner{val: 42}
	outer := &Outer{child: inner}
	return outer.child.Get()
}`
	if got := mustRun(t, src, "F"); got != int64(42) {
		t.Fatalf("F() = %v, want 42", got)
	}
}

func TestSwitchWithInitAndIfInit(t *testing.T) {
	src := `
func classify(n int) any {
	switch v := n * 2; v {
	case 4:
		return "four"
	default:
		return "other"
	}
}

func F() any {
	if w := classify(2); w == "four" {
		return "ok"
	}
	return "bad"
}`
	if got := mustRun(t, src, "F"); got != "ok" {
		t.Fatalf("F() = %v", got)
	}
}

func TestPanicInsideDeferReplacesPanic(t *testing.T) {
	src := `
func F() any {
	defer failAgain()
	panic(__exc2("First", "original"))
}

func failAgain() any {
	panic(__exc2("Second", "from defer"))
}`
	it := New(Config{})
	it.RegisterHostFunc("__exc2", func(it *Interp, args []Value) (Value, error) {
		return &Exc{Type: Repr(args[0]), Msg: Repr(args[1])}, nil
	})
	if err := it.LoadSource("t.go", []byte("package main\n"+src)); err != nil {
		t.Fatal(err)
	}
	_, err := it.Call("F")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if exc, _ := pe.Exception(); exc.Type != "Second" {
		t.Fatalf("exception = %v, want the defer's panic to win", pe.Val)
	}
}

func TestStringSliceAndIndexChaining(t *testing.T) {
	src := `
func F() any {
	s := "hello world"
	head := s[0:5]
	return head + "-" + s[6:11] + "-" + s[0]
}`
	if got := mustRun(t, src, "F"); got != "hello-world-h" {
		t.Fatalf("F() = %v", got)
	}
}
