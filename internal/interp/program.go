package interp

import (
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"sync"
	"sync/atomic"
)

// SourceUnit is one target file handed to the compiler. When AST is set
// it is used as-is (the campaign passes the scanner's cached parse, so a
// file is parsed once per campaign); otherwise Src is parsed. The AST is
// treated as read-only and may be shared across goroutines.
type SourceUnit struct {
	Name string
	Src  []byte
	AST  *ast.File
}

// linker is the program-wide symbol table plus the content-hash unit
// cache shared by a base program and every derived (mutated) program of
// a campaign. Interning happens at compile time under the lock; compiled
// code carries baked indices and never touches the linker at run time.
type linker struct {
	mu    sync.Mutex
	names []string
	idx   map[string]int
	units map[[sha256.Size]byte]*unit
	// hits/misses count WithFiles derivations served from the unit
	// cache vs recompiled — the campaign layer reports them as
	// compile-cache metrics.
	hits   atomic.Uint64
	misses atomic.Uint64
	// incremental counts the subset of misses served by the
	// declaration-level recompile fast path (see incrRecompile).
	incremental atomic.Uint64
}

func newLinker() *linker {
	return &linker{idx: make(map[string]int), units: make(map[[sha256.Size]byte]*unit)}
}

func (l *linker) intern(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i, ok := l.idx[name]; ok {
		return i
	}
	i := len(l.names)
	l.names = append(l.names, name)
	l.idx[name] = i
	return i
}

func (l *linker) lookup(name string) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.idx[name]
	return i, ok
}

func (l *linker) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.names)
}

func (l *linker) cachedUnit(key [sha256.Size]byte) (*unit, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	u, ok := l.units[key]
	return u, ok
}

func (l *linker) storeUnit(key [sha256.Size]byte, u *unit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.units[key] = u
}

// importBind records one import declaration: at boot the registered
// module for path is stored into the bound global slot.
type importBind struct {
	gidx int
	path string
	name string
}

// initOp is one top-level declaration, executed at boot in source order:
// either a function binding or a var/const initializer.
type initOp struct {
	gidx int
	name string
	fn   *compiledClosure // function binding when non-nil
	init cexpr            // var initializer; nil means zero value (nil)
}

// unit is the compiled form of one source file.
type unit struct {
	name     string
	imports  []importBind
	ops      []initOp
	methods  map[string]map[string]*compiledFunc
	topNames []string
	// allFns is every compiledFunc the unit's compile produced, nested
	// function literals included — the provenance set snapshot/fork
	// consults when deciding whether a captured closure belongs to a
	// unit that was swapped out by WithFiles.
	allFns []*compiledFunc
	// incr is the incremental-recompile index: the unit's source bytes
	// plus the byte span and provenance range of every top-level
	// function, so WithFiles can recompile just the one declaration a
	// mutation touched. Nil (or ok=false) disables the fast path.
	incr *incrInfo
}

// Incremental recompilation: a fault-injection campaign derives hundreds
// of programs that each differ from the base in one contiguous byte
// window inside one function body. Reparsing and recompiling the whole
// file per experiment is the single largest shared cost of the execute
// phase, so WithFiles first tries a declaration-level fast path: diff
// the new source against the unit's recorded source, and when the
// changed window falls inside exactly one top-level function, reparse
// and recompile only that declaration, splicing the fresh artifact into
// a copy of the unit. Compiled functions are position-free and resolve
// globals through the shared interned symbol table, so the spliced unit
// is observably identical to a full recompile. Anything unusual — a
// window spanning declarations, a renamed function, a changed receiver
// type, a parse error — falls back to the full path.

const (
	siteFunc   = iota // top-level plain function
	siteMethod        // method declaration
)

// declSite records where one top-level function declaration sits in the
// unit's source and which artifacts it produced.
type declSite struct {
	start, end int    // byte offsets of the decl ("func" .. closing brace)
	kind       int    // siteFunc or siteMethod
	name       string // function or method name
	typeName   string // receiver type for methods
	opIdx      int    // index into unit.ops (siteFunc only)
	fnsLo      int    // provenance range [fnsLo,fnsHi) into allFns:
	fnsHi      int    // the decl's compiledFunc plus its nested literals
}

type incrInfo struct {
	src   []byte
	sites []declSite
	ok    bool // offsets validated against src
}

// Program is a compiled, immutable minigo program: safe for concurrent
// use, one compile serves unlimited rounds and experiments. Derived
// programs (WithFiles) share unchanged units and the symbol table.
type Program struct {
	ln      *linker
	units   []*unit
	methods map[string]map[string]*compiledFunc
	globals map[string]bool
}

// CompileProgram compiles an ordered file set (the workload's load
// order) into a Program. Compilation errors mirror the tree-walk's
// LoadSource errors; constructs the tree-walk reports lazily stay lazy.
func CompileProgram(files []SourceUnit) (*Program, error) {
	ln := newLinker()

	// Phase 1: parse everything and collect the statically known global
	// names (top-level declarations of every file, import-bound names and
	// builtins). Function bodies resolve names against this set.
	asts := make([]*ast.File, len(files))
	globals := make(map[string]bool)
	for b := range builtinFuncs {
		globals[b] = true
	}
	for i, su := range files {
		f := su.AST
		if f == nil {
			var err error
			f, err = parser.ParseFile(token.NewFileSet(), su.Name, su.Src, parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("interp: parse %s: %w", su.Name, err)
			}
		}
		asts[i] = f
		for _, n := range topLevelNames(f) {
			globals[n] = true
		}
	}

	// Phase 2: compile each unit against the shared table.
	p := &Program{ln: ln, globals: globals}
	for i, su := range files {
		c := &compiler{file: su.Name, syms: ln, globals: globals}
		u, err := compileUnit(c, su.Name, su.Src, asts[i])
		if err != nil {
			return nil, err
		}
		if len(su.Src) > 0 {
			ln.storeUnit(unitKey(su.Name, su.Src), u)
		}
		p.units = append(p.units, u)
	}
	p.methods = mergeMethods(p.units)
	return p, nil
}

// Files returns the unit names in load order.
func (p *Program) Files() []string {
	out := make([]string, len(p.units))
	for i, u := range p.units {
		out[i] = u.name
	}
	return out
}

// WithFiles derives a program with the named units recompiled from new
// sources — the per-experiment "recompile only the mutated file" path.
// Unchanged units and the symbol table are shared; recompiles are
// memoized by content hash, so identical mutations compile once per
// campaign. Overlay entries naming files outside the program are
// ignored (the tree-walk never loads them either).
func (p *Program) WithFiles(overlay map[string][]byte) (*Program, error) {
	byName := make(map[string]int, len(p.units))
	for i, u := range p.units {
		byName[u.name] = i
	}
	np := &Program{ln: p.ln, globals: p.globals, units: append([]*unit(nil), p.units...)}
	changed := false
	for name, src := range overlay {
		i, ok := byName[name]
		if !ok {
			continue
		}
		key := unitKey(name, src)
		u, ok := p.ln.cachedUnit(key)
		if ok {
			p.ln.hits.Add(1)
		} else if nu, ok := p.incrRecompile(p.units[i], src); ok {
			p.ln.misses.Add(1)
			p.ln.incremental.Add(1)
			u = nu
			p.ln.storeUnit(key, u)
		} else {
			p.ln.misses.Add(1)
			f, err := parser.ParseFile(token.NewFileSet(), name, src, parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("interp: parse %s: %w", name, err)
			}
			globals := p.globals
			if extra := topLevelNames(f); hasNew(globals, extra) {
				globals = cloneWith(globals, extra)
			}
			c := &compiler{file: name, syms: p.ln, globals: globals}
			u, err = compileUnit(c, name, src, f)
			if err != nil {
				return nil, err
			}
			p.ln.storeUnit(key, u)
		}
		np.units[i] = u
		changed = true
	}
	if !changed {
		return p, nil
	}
	np.methods = mergeMethods(np.units)
	return np, nil
}

// CacheStats reports how many WithFiles unit derivations were served
// from the content-hash cache (hits) vs freshly compiled (misses),
// accumulated across the program and everything derived from it —
// base and derived programs share one linker, so a campaign reads its
// whole compile-cache history off its base program. Cached units carry
// their lowered bytecode alongside the closure trees (both artifacts
// are built by one fused compile walk), so a hit serves both engines.
func (p *Program) CacheStats() (hits, misses uint64) {
	return p.ln.hits.Load(), p.ln.misses.Load()
}

// IncrementalRecompiles reports how many of the CacheStats misses were
// served by the declaration-level fast path (one decl reparsed and
// recompiled) instead of a whole-file recompile.
func (p *Program) IncrementalRecompiles() uint64 {
	return p.ln.incremental.Load()
}

// incrRecompile attempts the declaration-level WithFiles fast path:
// when src differs from base's recorded source in one contiguous
// window inside a single top-level function, recompile only that
// declaration and splice it into a copy of the unit. Returns false
// whenever the diff is not provably that shape — the caller then takes
// the full reparse+recompile path, which handles everything.
func (p *Program) incrRecompile(base *unit, src []byte) (*unit, bool) {
	inc := base.incr
	if inc == nil || !inc.ok {
		return nil, false
	}
	old := inc.src
	delta := len(src) - len(old)

	// Changed window: common prefix, then common suffix of the rest.
	n := min(len(old), len(src))
	a := 0
	for a < n && old[a] == src[a] {
		a++
	}
	if a == len(old) && delta == 0 {
		return nil, false // identical bytes; the unit cache already covers this
	}
	b := 0
	for b < n-a && old[len(old)-1-b] == src[len(src)-1-b] {
		b++
	}
	lo, hi := a, len(old)-b // changed window in old's coordinates

	// The window must fall inside exactly one recorded function decl.
	var site *declSite
	for i := range inc.sites {
		s := &inc.sites[i]
		if lo >= s.start && hi <= s.end {
			site = s
			break
		}
	}
	if site == nil {
		return nil, false
	}

	// Reparse just that declaration. A standalone parse needs a package
	// clause; compiled artifacts are position-free, so the shifted
	// offsets don't matter. Parse errors fall back to the full path,
	// which reports them with the file's real context.
	text := src[site.start : site.end+delta]
	pf, err := parser.ParseFile(token.NewFileSet(), base.name,
		append([]byte("package p\n"), text...), parser.SkipObjectResolution)
	if err != nil || len(pf.Decls) != 1 || len(pf.Imports) != 0 {
		return nil, false
	}
	fd, ok := pf.Decls[0].(*ast.FuncDecl)
	if !ok || fd.Name.Name != site.name || fd.Body == nil {
		return nil, false
	}

	// Compile the one declaration against the shared symbol table and
	// the program's global name set (unchanged: the name check above
	// rules out new top-level bindings).
	c := &compiler{file: base.name, syms: p.ln, globals: p.globals}
	var newFn *compiledFunc
	var newOp initOp
	switch site.kind {
	case siteMethod:
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return nil, false
		}
		typeName, recvName := recvInfo(fd)
		if typeName != site.typeName {
			return nil, false
		}
		newFn = c.compileFunc(nil, typeName+"."+fd.Name.Name, fd.Type, fd.Body, recvName)
	default:
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			return nil, false
		}
		newFn = c.compileFunc(nil, fd.Name.Name, fd.Type, fd.Body, "")
		newOp = initOp{gidx: p.ln.intern(fd.Name.Name), name: fd.Name.Name,
			fn: &compiledClosure{fn: newFn}}
	}

	// Splice: copy the unit, swap the one artifact, rebuild provenance
	// and the incremental index (byte spans and provenance ranges after
	// the changed decl shift by the respective deltas).
	nu := &unit{name: base.name, imports: base.imports, topNames: base.topNames}
	nu.ops = append([]initOp(nil), base.ops...)
	nu.methods = base.methods
	if site.kind == siteMethod {
		nu.methods = make(map[string]map[string]*compiledFunc, len(base.methods))
		for tn, ms := range base.methods {
			nu.methods[tn] = ms
		}
		ms := make(map[string]*compiledFunc, len(base.methods[site.typeName]))
		for mn, fn := range base.methods[site.typeName] {
			ms[mn] = fn
		}
		ms[site.name] = newFn
		nu.methods[site.typeName] = ms
	} else {
		nu.ops[site.opIdx] = newOp
	}
	newFns := c.fns
	dn := len(newFns) - (site.fnsHi - site.fnsLo)
	nu.allFns = make([]*compiledFunc, 0, len(base.allFns)+dn)
	nu.allFns = append(nu.allFns, base.allFns[:site.fnsLo]...)
	nu.allFns = append(nu.allFns, newFns...)
	nu.allFns = append(nu.allFns, base.allFns[site.fnsHi:]...)

	sites := append([]declSite(nil), inc.sites...)
	for i := range sites {
		s := &sites[i]
		switch {
		case s.start >= site.end: // strictly after the changed decl
			s.start += delta
			s.end += delta
			s.fnsLo += dn
			s.fnsHi += dn
		case s.start == site.start: // the changed decl itself
			s.end += delta
			s.fnsHi = s.fnsLo + len(newFns)
		}
	}
	nu.incr = &incrInfo{src: src, sites: sites, ok: true}
	return nu, true
}

// LoweringReport summarizes how completely a program lowered to
// register bytecode. Functions whose bodies contain statements without
// a native lowering run those statements through closure escapes —
// correct but closure-speed — so benchmarks gate on this report to
// catch silent regressions of the bytecode engine's coverage.
type LoweringReport struct {
	// Funcs counts compiled functions, nested literals included.
	Funcs int
	// Fully counts functions whose bodies lowered with zero statement
	// escapes.
	Fully int
	// Escapes maps function name -> escaped statement count, for
	// functions that have any (names repeat across units are summed).
	Escapes map[string]int
	// ExprEscapes totals expression escapes (subexpressions evaluated
	// through the closure artifact) across all functions.
	ExprEscapes int
}

// LoweringReport reports bytecode lowering coverage across every
// function of the program's units.
func (p *Program) LoweringReport() LoweringReport {
	rep := LoweringReport{Escapes: map[string]int{}}
	for _, u := range p.units {
		for _, fn := range u.allFns {
			if fn.code == nil {
				continue
			}
			rep.Funcs++
			rep.ExprEscapes += fn.code.exprEscapes
			if fn.code.escapes == 0 {
				rep.Fully++
			} else {
				rep.Escapes[fn.name] += fn.code.escapes
			}
		}
	}
	return rep
}

func unitKey(name string, src []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(src)
	var key [sha256.Size]byte
	copy(key[:], h.Sum(nil))
	return key
}

func hasNew(set map[string]bool, names []string) bool {
	for _, n := range names {
		if !set[n] {
			return true
		}
	}
	return false
}

func cloneWith(set map[string]bool, names []string) map[string]bool {
	out := make(map[string]bool, len(set)+len(names))
	for k := range set {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func mergeMethods(units []*unit) map[string]map[string]*compiledFunc {
	out := make(map[string]map[string]*compiledFunc)
	for _, u := range units {
		for tn, ms := range u.methods {
			if out[tn] == nil {
				out[tn] = make(map[string]*compiledFunc, len(ms))
			}
			for mn, fn := range ms {
				out[tn][mn] = fn
			}
		}
	}
	return out
}

// topLevelNames lists the global names a file contributes: import-bound
// names, function names and var/const names.
func topLevelNames(f *ast.File) []string {
	var out []string
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out = append(out, name)
	}
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			if decl.Recv == nil || len(decl.Recv.List) == 0 {
				out = append(out, decl.Name.Name)
			}
		case *ast.GenDecl:
			if decl.Tok == token.VAR || decl.Tok == token.CONST {
				for _, spec := range decl.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, n := range vs.Names {
							out = append(out, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// compileUnit lowers one parsed file, mirroring LoadSource's declaration
// walk (imports, then declarations in source order). src, when
// non-empty, is the file's source bytes; it feeds the incremental
// recompile index (declaration byte spans validated against it).
func compileUnit(c *compiler, name string, src []byte, f *ast.File) (*unit, error) {
	u := &unit{name: name, topNames: topLevelNames(f)}
	defer func() { u.allFns = c.fns }()
	if len(src) > 0 {
		u.incr = &incrInfo{src: src, ok: true}
	}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		bound := path
		if i := strings.LastIndex(bound, "/"); i >= 0 {
			bound = bound[i+1:]
		}
		if imp.Name != nil {
			bound = imp.Name.Name
		}
		u.imports = append(u.imports, importBind{gidx: c.syms.intern(bound), path: path, name: bound})
	}
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			if decl.Body == nil {
				// Same load-time rejection as the tree-walk's LoadSource.
				return nil, fmt.Errorf("interp: %s: function %s has no body", name, decl.Name.Name)
			}
			site := declSite{opIdx: -1, fnsLo: len(c.fns)}
			if u.incr != nil {
				// Offsets are fset-independent: positions relative to the
				// file's own start. Validate against the bytes so an AST
				// parsed from a different source can never mislead the
				// incremental differ.
				site.start = int(decl.Pos() - f.FileStart)
				site.end = int(decl.End() - f.FileStart)
				if site.start < 0 || site.end <= site.start || site.end > len(src) ||
					!strings.HasPrefix(string(src[site.start:min(site.start+4, len(src))]), "func") {
					u.incr.ok = false
				}
			}
			if decl.Recv != nil && len(decl.Recv.List) > 0 {
				typeName, recvName := recvInfo(decl)
				if typeName == "" {
					return nil, fmt.Errorf("interp: %s: unsupported receiver on %s", name, decl.Name.Name)
				}
				fn := c.compileFunc(nil, typeName+"."+decl.Name.Name, decl.Type, decl.Body, recvName)
				if u.methods == nil {
					u.methods = make(map[string]map[string]*compiledFunc)
				}
				if u.methods[typeName] == nil {
					u.methods[typeName] = make(map[string]*compiledFunc)
				}
				u.methods[typeName][decl.Name.Name] = fn
				if u.incr != nil {
					site.kind, site.name, site.typeName = siteMethod, decl.Name.Name, typeName
					site.fnsHi = len(c.fns)
					u.incr.sites = append(u.incr.sites, site)
				}
				continue
			}
			fn := c.compileFunc(nil, decl.Name.Name, decl.Type, decl.Body, "")
			u.ops = append(u.ops, initOp{
				gidx: c.syms.intern(decl.Name.Name),
				name: decl.Name.Name,
				fn:   &compiledClosure{fn: fn},
			})
			if u.incr != nil {
				site.kind, site.name, site.opIdx = siteFunc, decl.Name.Name, len(u.ops)-1
				site.fnsHi = len(c.fns)
				u.incr.sites = append(u.incr.sites, site)
			}
		case *ast.GenDecl:
			if decl.Tok == token.VAR || decl.Tok == token.CONST {
				for _, spec := range decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, vn := range vs.Names {
						op := initOp{gidx: c.syms.intern(vn.Name), name: vn.Name}
						if i < len(vs.Values) {
							op.init = c.compileExpr(nil, vs.Values[i])
						}
						u.ops = append(u.ops, op)
					}
				}
			}
		}
	}
	return u, nil
}

// ---------------------------------------------------------------------------
// Run-time side: NewRun / Boot / compiled calls / pools

// NewRun creates an interpreter executing a compiled program: the
// compile-once / run-many counterpart of New+LoadSource. Register host
// modules and hooks as usual, then call Boot once before Call.
func NewRun(p *Program, cfg Config) *Interp {
	cfg = cfg.withDefaults()
	it := &Interp{
		globals:    NewScope(nil), // unused on the compiled path
		modules:    make(map[string]*Module),
		stepNS:     cfg.StepNS,
		deadlineNS: cfg.DeadlineNS,
		maxSteps:   cfg.MaxSteps,
		stdout:     cfg.Stdout,
		hook:       cfg.Hook,
		engine:     engineOf(cfg.Engine),
		prog:       p,
	}
	it.gslots = make([]Value, p.ln.size())
	for i := range it.gslots {
		it.gslots[i] = unbound
	}
	registerBuiltins(it)
	return it
}

// Boot resolves imports against the registered modules and executes the
// top-level declarations (function bindings and var initializers) in
// load order — the compiled analog of LoadSource's load-time work. Call
// it after installing the environment and before the first Call.
func (it *Interp) Boot() error {
	if it.prog == nil {
		return fmt.Errorf("interp: Boot on a non-compiled interpreter")
	}
	for _, u := range it.prog.units {
		for _, imp := range u.imports {
			mod, ok := it.modules[imp.path]
			if !ok {
				return fmt.Errorf("interp: %s imports unknown module %q", u.name, imp.path)
			}
			it.gslots[imp.gidx] = mod
		}
		for _, op := range u.ops {
			if op.fn != nil {
				it.gslots[op.gidx] = op.fn
				continue
			}
			var v Value
			if op.init != nil {
				var err error
				v, err = op.init(it, nil)
				if err != nil {
					return fmt.Errorf("interp: %s: init %s: %w", u.name, op.name, err)
				}
			}
			it.gslots[op.gidx] = v
		}
	}
	return nil
}

// defineGlobal binds a host-registered name on the compiled path: into
// its interned slot when compiled code references the name, else into
// the side table consulted by Global and Call.
func (it *Interp) defineGlobal(name string, v Value) {
	if idx, ok := it.prog.ln.lookup(name); ok && idx < len(it.gslots) {
		it.gslots[idx] = v
		return
	}
	if it.extras == nil {
		it.extras = make(map[string]Value)
	}
	it.extras[name] = v
}

func (it *Interp) lookupGlobal(name string) (Value, bool) {
	if idx, ok := it.prog.ln.lookup(name); ok && idx < len(it.gslots) {
		if v := it.gslots[idx]; v != unbound {
			return v, true
		}
		return nil, false
	}
	v, ok := it.extras[name]
	return v, ok
}

// callCompiled executes a compiled function with defer/recover semantics
// identical to callClosure, against a pooled slot frame.
func (it *Interp) callCompiled(f *compiledClosure, args []Value) (result Value, err error) {
	fn := f.fn
	if len(it.frames) > 200 {
		return nil, it.throw("RecursionError", "maximum call depth exceeded in "+fn.name)
	}
	fr := getFrame(fn.name)
	it.frames = append(it.frames, fr)
	cf := getCframe(fn.nslots)
	cf.caps = f.caps

	for _, s := range fn.rootCells {
		cf.slots[s] = &cell{v: unbound}
	}
	if fn.recv != nil {
		bindSlot(cf, fn.recv, f.recv)
	}
	for i, p := range fn.params {
		var v Value
		if i < len(args) {
			v = args[i]
		}
		bindSlot(cf, p, v)
	}
	// Extra args beyond declared params are dropped (tree-walk parity).

	var cerr error
	if it.hook != nil {
		cerr = it.hook.EnterCall(it, fn.name)
	}
	if cerr == nil {
		var ctl control
		var ret Value
		ctl, ret, cerr = runCstmts(it, cf, fn.body)
		if ctl == ctlReturn {
			result = ret
		}
	}
	err = it.runDefers(fr, cerr)
	if err == nil && it.hook != nil {
		result, err = it.hook.LeaveCall(it, fn.name, result)
	}
	it.frames = it.frames[:len(it.frames)-1]
	putCframe(cf)
	putFrame(fr)
	return result, err
}

func bindSlot(cf *cframe, b *vbind, v Value) {
	if b.cell {
		cf.slots[b.slot].(*cell).v = v
	} else {
		cf.slots[b.slot] = v
	}
}

// Frame and slot-frame pools: the per-call allocations that survive
// compilation are recycled so the slot-frame hot path stays allocation
// free (see BenchmarkCompiledCallAllocs).
var framePool = sync.Pool{New: func() any { return &frame{} }}

func getFrame(name string) *frame {
	fr := framePool.Get().(*frame)
	fr.name = name
	return fr
}

func putFrame(fr *frame) {
	for i := range fr.defers {
		fr.defers[i] = deferredCall{}
	}
	fr.defers = fr.defers[:0]
	fr.panicking = nil
	fr.name = ""
	framePool.Put(fr)
}

var cframePool = sync.Pool{New: func() any { return &cframe{} }}

func getCframe(n int) *cframe {
	cf := cframePool.Get().(*cframe)
	if cap(cf.slots) < n {
		cf.slots = make([]Value, n)
	} else {
		cf.slots = cf.slots[:n]
	}
	for i := range cf.slots {
		cf.slots[i] = unbound
	}
	return cf
}

// getCframeVM sizes a frame for the bytecode engine: the local region
// [0,nslots) gets the unbound sentinel exactly like getCframe, while the
// temp region [nslots,nframe) stays nil — temps are written before they
// are read (stack discipline in the lowering), so the fill would be pure
// per-call overhead. Slots beyond a pooled frame's previous length are
// nil by construction: putCframe nils its length and fresh allocations
// are zeroed.
func getCframeVM(nframe, nslots int) *cframe {
	cf := cframePool.Get().(*cframe)
	if cap(cf.slots) < nframe {
		cf.slots = make([]Value, nframe)
	} else {
		cf.slots = cf.slots[:nframe]
	}
	for i := 0; i < nslots; i++ {
		cf.slots[i] = unbound
	}
	return cf
}

func putCframe(cf *cframe) {
	for i := range cf.slots {
		cf.slots[i] = nil
	}
	cf.slots = cf.slots[:0]
	cf.caps = nil
	cframePool.Put(cf)
}
