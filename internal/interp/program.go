package interp

import (
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"sync"
	"sync/atomic"
)

// SourceUnit is one target file handed to the compiler. When AST is set
// it is used as-is (the campaign passes the scanner's cached parse, so a
// file is parsed once per campaign); otherwise Src is parsed. The AST is
// treated as read-only and may be shared across goroutines.
type SourceUnit struct {
	Name string
	Src  []byte
	AST  *ast.File
}

// linker is the program-wide symbol table plus the content-hash unit
// cache shared by a base program and every derived (mutated) program of
// a campaign. Interning happens at compile time under the lock; compiled
// code carries baked indices and never touches the linker at run time.
type linker struct {
	mu    sync.Mutex
	names []string
	idx   map[string]int
	units map[[sha256.Size]byte]*unit
	// hits/misses count WithFiles derivations served from the unit
	// cache vs recompiled — the campaign layer reports them as
	// compile-cache metrics.
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newLinker() *linker {
	return &linker{idx: make(map[string]int), units: make(map[[sha256.Size]byte]*unit)}
}

func (l *linker) intern(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i, ok := l.idx[name]; ok {
		return i
	}
	i := len(l.names)
	l.names = append(l.names, name)
	l.idx[name] = i
	return i
}

func (l *linker) lookup(name string) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.idx[name]
	return i, ok
}

func (l *linker) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.names)
}

func (l *linker) cachedUnit(key [sha256.Size]byte) (*unit, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	u, ok := l.units[key]
	return u, ok
}

func (l *linker) storeUnit(key [sha256.Size]byte, u *unit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.units[key] = u
}

// importBind records one import declaration: at boot the registered
// module for path is stored into the bound global slot.
type importBind struct {
	gidx int
	path string
	name string
}

// initOp is one top-level declaration, executed at boot in source order:
// either a function binding or a var/const initializer.
type initOp struct {
	gidx int
	name string
	fn   *compiledClosure // function binding when non-nil
	init cexpr            // var initializer; nil means zero value (nil)
}

// unit is the compiled form of one source file.
type unit struct {
	name     string
	imports  []importBind
	ops      []initOp
	methods  map[string]map[string]*compiledFunc
	topNames []string
	// allFns is every compiledFunc the unit's compile produced, nested
	// function literals included — the provenance set snapshot/fork
	// consults when deciding whether a captured closure belongs to a
	// unit that was swapped out by WithFiles.
	allFns []*compiledFunc
}

// Program is a compiled, immutable minigo program: safe for concurrent
// use, one compile serves unlimited rounds and experiments. Derived
// programs (WithFiles) share unchanged units and the symbol table.
type Program struct {
	ln      *linker
	units   []*unit
	methods map[string]map[string]*compiledFunc
	globals map[string]bool
}

// CompileProgram compiles an ordered file set (the workload's load
// order) into a Program. Compilation errors mirror the tree-walk's
// LoadSource errors; constructs the tree-walk reports lazily stay lazy.
func CompileProgram(files []SourceUnit) (*Program, error) {
	ln := newLinker()

	// Phase 1: parse everything and collect the statically known global
	// names (top-level declarations of every file, import-bound names and
	// builtins). Function bodies resolve names against this set.
	asts := make([]*ast.File, len(files))
	globals := make(map[string]bool)
	for b := range builtinFuncs {
		globals[b] = true
	}
	for i, su := range files {
		f := su.AST
		if f == nil {
			var err error
			f, err = parser.ParseFile(token.NewFileSet(), su.Name, su.Src, parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("interp: parse %s: %w", su.Name, err)
			}
		}
		asts[i] = f
		for _, n := range topLevelNames(f) {
			globals[n] = true
		}
	}

	// Phase 2: compile each unit against the shared table.
	p := &Program{ln: ln, globals: globals}
	for i, su := range files {
		c := &compiler{file: su.Name, syms: ln, globals: globals}
		u, err := compileUnit(c, su.Name, asts[i])
		if err != nil {
			return nil, err
		}
		if len(su.Src) > 0 {
			ln.storeUnit(unitKey(su.Name, su.Src), u)
		}
		p.units = append(p.units, u)
	}
	p.methods = mergeMethods(p.units)
	return p, nil
}

// Files returns the unit names in load order.
func (p *Program) Files() []string {
	out := make([]string, len(p.units))
	for i, u := range p.units {
		out[i] = u.name
	}
	return out
}

// WithFiles derives a program with the named units recompiled from new
// sources — the per-experiment "recompile only the mutated file" path.
// Unchanged units and the symbol table are shared; recompiles are
// memoized by content hash, so identical mutations compile once per
// campaign. Overlay entries naming files outside the program are
// ignored (the tree-walk never loads them either).
func (p *Program) WithFiles(overlay map[string][]byte) (*Program, error) {
	byName := make(map[string]int, len(p.units))
	for i, u := range p.units {
		byName[u.name] = i
	}
	np := &Program{ln: p.ln, globals: p.globals, units: append([]*unit(nil), p.units...)}
	changed := false
	for name, src := range overlay {
		i, ok := byName[name]
		if !ok {
			continue
		}
		key := unitKey(name, src)
		u, ok := p.ln.cachedUnit(key)
		if ok {
			p.ln.hits.Add(1)
		} else {
			p.ln.misses.Add(1)
			f, err := parser.ParseFile(token.NewFileSet(), name, src, parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("interp: parse %s: %w", name, err)
			}
			globals := p.globals
			if extra := topLevelNames(f); hasNew(globals, extra) {
				globals = cloneWith(globals, extra)
			}
			c := &compiler{file: name, syms: p.ln, globals: globals}
			u, err = compileUnit(c, name, f)
			if err != nil {
				return nil, err
			}
			p.ln.storeUnit(key, u)
		}
		np.units[i] = u
		changed = true
	}
	if !changed {
		return p, nil
	}
	np.methods = mergeMethods(np.units)
	return np, nil
}

// CacheStats reports how many WithFiles unit derivations were served
// from the content-hash cache (hits) vs freshly compiled (misses),
// accumulated across the program and everything derived from it —
// base and derived programs share one linker, so a campaign reads its
// whole compile-cache history off its base program.
func (p *Program) CacheStats() (hits, misses uint64) {
	return p.ln.hits.Load(), p.ln.misses.Load()
}

func unitKey(name string, src []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(src)
	var key [sha256.Size]byte
	copy(key[:], h.Sum(nil))
	return key
}

func hasNew(set map[string]bool, names []string) bool {
	for _, n := range names {
		if !set[n] {
			return true
		}
	}
	return false
}

func cloneWith(set map[string]bool, names []string) map[string]bool {
	out := make(map[string]bool, len(set)+len(names))
	for k := range set {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func mergeMethods(units []*unit) map[string]map[string]*compiledFunc {
	out := make(map[string]map[string]*compiledFunc)
	for _, u := range units {
		for tn, ms := range u.methods {
			if out[tn] == nil {
				out[tn] = make(map[string]*compiledFunc, len(ms))
			}
			for mn, fn := range ms {
				out[tn][mn] = fn
			}
		}
	}
	return out
}

// topLevelNames lists the global names a file contributes: import-bound
// names, function names and var/const names.
func topLevelNames(f *ast.File) []string {
	var out []string
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out = append(out, name)
	}
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			if decl.Recv == nil || len(decl.Recv.List) == 0 {
				out = append(out, decl.Name.Name)
			}
		case *ast.GenDecl:
			if decl.Tok == token.VAR || decl.Tok == token.CONST {
				for _, spec := range decl.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, n := range vs.Names {
							out = append(out, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// compileUnit lowers one parsed file, mirroring LoadSource's declaration
// walk (imports, then declarations in source order).
func compileUnit(c *compiler, name string, f *ast.File) (*unit, error) {
	u := &unit{name: name, topNames: topLevelNames(f)}
	defer func() { u.allFns = c.fns }()
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		bound := path
		if i := strings.LastIndex(bound, "/"); i >= 0 {
			bound = bound[i+1:]
		}
		if imp.Name != nil {
			bound = imp.Name.Name
		}
		u.imports = append(u.imports, importBind{gidx: c.syms.intern(bound), path: path, name: bound})
	}
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			if decl.Recv != nil && len(decl.Recv.List) > 0 {
				typeName, recvName := recvInfo(decl)
				if typeName == "" {
					return nil, fmt.Errorf("interp: %s: unsupported receiver on %s", name, decl.Name.Name)
				}
				fn := c.compileFunc(nil, typeName+"."+decl.Name.Name, decl.Type, decl.Body, recvName)
				if u.methods == nil {
					u.methods = make(map[string]map[string]*compiledFunc)
				}
				if u.methods[typeName] == nil {
					u.methods[typeName] = make(map[string]*compiledFunc)
				}
				u.methods[typeName][decl.Name.Name] = fn
				continue
			}
			fn := c.compileFunc(nil, decl.Name.Name, decl.Type, decl.Body, "")
			u.ops = append(u.ops, initOp{
				gidx: c.syms.intern(decl.Name.Name),
				name: decl.Name.Name,
				fn:   &compiledClosure{fn: fn},
			})
		case *ast.GenDecl:
			if decl.Tok == token.VAR || decl.Tok == token.CONST {
				for _, spec := range decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, vn := range vs.Names {
						op := initOp{gidx: c.syms.intern(vn.Name), name: vn.Name}
						if i < len(vs.Values) {
							op.init = c.compileExpr(nil, vs.Values[i])
						}
						u.ops = append(u.ops, op)
					}
				}
			}
		}
	}
	return u, nil
}

// ---------------------------------------------------------------------------
// Run-time side: NewRun / Boot / compiled calls / pools

// NewRun creates an interpreter executing a compiled program: the
// compile-once / run-many counterpart of New+LoadSource. Register host
// modules and hooks as usual, then call Boot once before Call.
func NewRun(p *Program, cfg Config) *Interp {
	cfg = cfg.withDefaults()
	it := &Interp{
		globals:    NewScope(nil), // unused on the compiled path
		modules:    make(map[string]*Module),
		stepNS:     cfg.StepNS,
		deadlineNS: cfg.DeadlineNS,
		maxSteps:   cfg.MaxSteps,
		stdout:     cfg.Stdout,
		hook:       cfg.Hook,
		prog:       p,
	}
	it.gslots = make([]Value, p.ln.size())
	for i := range it.gslots {
		it.gslots[i] = unbound
	}
	registerBuiltins(it)
	return it
}

// Boot resolves imports against the registered modules and executes the
// top-level declarations (function bindings and var initializers) in
// load order — the compiled analog of LoadSource's load-time work. Call
// it after installing the environment and before the first Call.
func (it *Interp) Boot() error {
	if it.prog == nil {
		return fmt.Errorf("interp: Boot on a non-compiled interpreter")
	}
	for _, u := range it.prog.units {
		for _, imp := range u.imports {
			mod, ok := it.modules[imp.path]
			if !ok {
				return fmt.Errorf("interp: %s imports unknown module %q", u.name, imp.path)
			}
			it.gslots[imp.gidx] = mod
		}
		for _, op := range u.ops {
			if op.fn != nil {
				it.gslots[op.gidx] = op.fn
				continue
			}
			var v Value
			if op.init != nil {
				var err error
				v, err = op.init(it, nil)
				if err != nil {
					return fmt.Errorf("interp: %s: init %s: %w", u.name, op.name, err)
				}
			}
			it.gslots[op.gidx] = v
		}
	}
	return nil
}

// defineGlobal binds a host-registered name on the compiled path: into
// its interned slot when compiled code references the name, else into
// the side table consulted by Global and Call.
func (it *Interp) defineGlobal(name string, v Value) {
	if idx, ok := it.prog.ln.lookup(name); ok && idx < len(it.gslots) {
		it.gslots[idx] = v
		return
	}
	if it.extras == nil {
		it.extras = make(map[string]Value)
	}
	it.extras[name] = v
}

func (it *Interp) lookupGlobal(name string) (Value, bool) {
	if idx, ok := it.prog.ln.lookup(name); ok && idx < len(it.gslots) {
		if v := it.gslots[idx]; v != unbound {
			return v, true
		}
		return nil, false
	}
	v, ok := it.extras[name]
	return v, ok
}

// callCompiled executes a compiled function with defer/recover semantics
// identical to callClosure, against a pooled slot frame.
func (it *Interp) callCompiled(f *compiledClosure, args []Value) (result Value, err error) {
	fn := f.fn
	if len(it.frames) > 200 {
		return nil, it.throw("RecursionError", "maximum call depth exceeded in "+fn.name)
	}
	fr := getFrame(fn.name)
	it.frames = append(it.frames, fr)
	cf := getCframe(fn.nslots)
	cf.caps = f.caps

	for _, s := range fn.rootCells {
		cf.slots[s] = &cell{v: unbound}
	}
	if fn.recv != nil {
		bindSlot(cf, fn.recv, f.recv)
	}
	for i, p := range fn.params {
		var v Value
		if i < len(args) {
			v = args[i]
		}
		bindSlot(cf, p, v)
	}
	// Extra args beyond declared params are dropped (tree-walk parity).

	var cerr error
	if it.hook != nil {
		cerr = it.hook.EnterCall(it, fn.name)
	}
	if cerr == nil {
		var ctl control
		var ret Value
		ctl, ret, cerr = runCstmts(it, cf, fn.body)
		if ctl == ctlReturn {
			result = ret
		}
	}
	err = it.runDefers(fr, cerr)
	if err == nil && it.hook != nil {
		result, err = it.hook.LeaveCall(it, fn.name, result)
	}
	it.frames = it.frames[:len(it.frames)-1]
	putCframe(cf)
	putFrame(fr)
	return result, err
}

func bindSlot(cf *cframe, b *vbind, v Value) {
	if b.cell {
		cf.slots[b.slot].(*cell).v = v
	} else {
		cf.slots[b.slot] = v
	}
}

// Frame and slot-frame pools: the per-call allocations that survive
// compilation are recycled so the slot-frame hot path stays allocation
// free (see BenchmarkCompiledCallAllocs).
var framePool = sync.Pool{New: func() any { return &frame{} }}

func getFrame(name string) *frame {
	fr := framePool.Get().(*frame)
	fr.name = name
	return fr
}

func putFrame(fr *frame) {
	for i := range fr.defers {
		fr.defers[i] = deferredCall{}
	}
	fr.defers = fr.defers[:0]
	fr.panicking = nil
	fr.name = ""
	framePool.Put(fr)
}

var cframePool = sync.Pool{New: func() any { return &cframe{} }}

func getCframe(n int) *cframe {
	cf := cframePool.Get().(*cframe)
	if cap(cf.slots) < n {
		cf.slots = make([]Value, n)
	} else {
		cf.slots = cf.slots[:n]
	}
	for i := range cf.slots {
		cf.slots[i] = unbound
	}
	return cf
}

func putCframe(cf *cframe) {
	for i := range cf.slots {
		cf.slots[i] = nil
	}
	cf.slots = cf.slots[:0]
	cf.caps = nil
	cframePool.Put(cf)
}
