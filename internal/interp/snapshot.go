package interp

// Experiment-prefix snapshot/fork execution. A campaign re-executes the
// same workload prefix for every experiment until the fault site is
// first reached; for late sites that is nearly the whole run, duplicated
// thousands of times. CallPrefix pauses the entry function before each
// top-level body statement so the caller can Snapshot the paused state;
// Fork resumes a snapshot on a fresh interpreter sharing the same
// (immutable, compile-once) Program family, skipping the prefix.
//
// Snapshots are value-deep copies: interpreted state (globals, slots,
// cells, captures, pending defers, step count, virtual clock) is copied
// with aliasing preserved, while host values (modules, host functions)
// are recorded by registration key and translated to the forked
// interpreter's equivalents at fork time. Closures compiled from a unit
// that a derived program replaced are translated function-by-function;
// anything that cannot be translated faithfully makes the snapshot
// unforkable for that experiment (the caller falls back to a full run),
// never silently different.

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnforkable reports that a snapshot cannot resume on this
// interpreter — the program diverged in a way translation cannot bridge
// (a mutated function literal was captured, a host value is gone, the
// entry function changed shape). Callers fall back to straight
// execution; the error never fires after interpreted code has run.
var ErrUnforkable = errors.New("interp: snapshot not forkable on this interpreter")

// errNotCheckpoint guards Snapshot misuse outside a CallPrefix pause.
var errNotCheckpoint = errors.New("interp: Snapshot is only valid inside a CallPrefix checkpoint")

// Snapshot is a frozen copy of an interpreter paused at a top-level
// statement boundary of its entry function. It is immutable after
// capture and may seed any number of forks concurrently.
type Snapshot struct {
	prog    *Program
	entry   string
	stmt    int // next body statement to execute
	bodyLen int
	nslots  int

	slots  []Value
	caps   []*cell
	recv   Value
	defers []deferredCall

	steps   int64
	clockNS int64

	gslots  []Value
	extras  map[string]Value
	hostKey map[any]string // host value identity -> registration key
}

// Stmt returns the entry-body statement index the snapshot resumes at.
func (s *Snapshot) Stmt() int { return s.stmt }

// CallPrefix invokes a compiled entry function like Call, pausing before
// each top-level statement of its body to run checkpoint(stmt). While
// checkpoint executes, Snapshot may capture the paused state; checkpoint
// returning false stops further checkpointing (execution continues to
// completion either way). The entry's EnterCall hook fires before
// checkpoint(0), so a hook observing the entry itself sees it with no
// snapshot boundary preceding it.
func (it *Interp) CallPrefix(entry string, checkpoint func(stmt int) bool, args ...Value) (Value, error) {
	if it.prog == nil {
		return nil, fmt.Errorf("interp: CallPrefix requires a compiled program")
	}
	fn, ok := it.Global(entry)
	if !ok {
		return nil, fmt.Errorf("interp: undefined function %q", entry)
	}
	f, isCompiled := fn.(*compiledClosure)
	if !isCompiled || checkpoint == nil {
		return it.call(fn, args)
	}
	if err := it.step(); err != nil {
		return nil, err
	}
	return it.callCompiledPrefix(f, args, checkpoint)
}

// callCompiledPrefix is callCompiled with a per-statement checkpoint on
// the outer frame. Everything observable (steps, clock, hooks, defers)
// matches callCompiled exactly; the checkpoint itself charges nothing.
func (it *Interp) callCompiledPrefix(f *compiledClosure, args []Value, checkpoint func(int) bool) (result Value, err error) {
	fn := f.fn
	if len(it.frames) > 200 {
		return nil, it.throw("RecursionError", "maximum call depth exceeded in "+fn.name)
	}
	fr := getFrame(fn.name)
	it.frames = append(it.frames, fr)
	cf := getCframe(fn.nslots)
	cf.caps = f.caps

	for _, s := range fn.rootCells {
		cf.slots[s] = &cell{v: unbound}
	}
	if fn.recv != nil {
		bindSlot(cf, fn.recv, f.recv)
	}
	for i, p := range fn.params {
		var v Value
		if i < len(args) {
			v = args[i]
		}
		bindSlot(cf, p, v)
	}

	var cerr error
	if it.hook != nil {
		cerr = it.hook.EnterCall(it, fn.name)
	}
	if cerr == nil {
		var ctl control
		var ret Value
		for si := 0; si < len(fn.body); si++ {
			if checkpoint != nil {
				it.cpFrame, it.cpEntry, it.cpMeta, it.cpStmt = cf, f, fr, si
				keep := checkpoint(si)
				it.cpFrame, it.cpEntry, it.cpMeta = nil, nil, nil
				if !keep {
					checkpoint = nil
				}
			}
			ctl, ret, cerr = fn.body[si](it, cf)
			if cerr != nil || ctl != ctlNone {
				break
			}
		}
		if ctl == ctlReturn {
			result = ret
		}
	}
	err = it.runDefers(fr, cerr)
	if err == nil && it.hook != nil {
		result, err = it.hook.LeaveCall(it, fn.name, result)
	}
	it.frames = it.frames[:len(it.frames)-1]
	putCframe(cf)
	putFrame(fr)
	return result, err
}

// Snapshot captures the interpreter state paused at the current
// CallPrefix checkpoint: entry frame slots, captured cells, pending
// defers, the global slot array and side table, step count and virtual
// clock. Valid only while a checkpoint callback runs.
func (it *Interp) Snapshot() (*Snapshot, error) {
	if it.cpFrame == nil {
		return nil, errNotCheckpoint
	}
	fn := it.cpEntry.fn
	sn := &Snapshot{
		prog:    it.prog,
		entry:   fn.name,
		stmt:    it.cpStmt,
		bodyLen: len(fn.body),
		nslots:  fn.nslots,
		steps:   it.steps,
		clockNS: it.clockNS,
	}
	cp := &valCopier{memo: make(map[any]Value)}
	sn.slots = make([]Value, len(it.cpFrame.slots))
	for i, v := range it.cpFrame.slots {
		sn.slots[i] = cp.copyVal(v)
	}
	if len(it.cpFrame.caps) > 0 {
		sn.caps = make([]*cell, len(it.cpFrame.caps))
		for i, c := range it.cpFrame.caps {
			sn.caps[i] = cp.copyCell(c)
		}
	}
	sn.recv = cp.copyVal(it.cpEntry.recv)
	for _, d := range it.cpMeta.defers {
		nd := deferredCall{fn: cp.copyVal(d.fn), args: make([]Value, len(d.args))}
		for i, a := range d.args {
			nd.args[i] = cp.copyVal(a)
		}
		sn.defers = append(sn.defers, nd)
	}
	sn.gslots = make([]Value, len(it.gslots))
	for i, v := range it.gslots {
		sn.gslots[i] = cp.copyVal(v)
	}
	if len(it.extras) > 0 {
		sn.extras = make(map[string]Value, len(it.extras))
		for k, v := range it.extras {
			sn.extras[k] = cp.copyVal(v)
		}
	}
	if cp.err != nil {
		return nil, cp.err
	}
	byVal, _ := it.hostIndex()
	sn.hostKey = byVal
	return sn, nil
}

// Fork resumes a snapshot on this interpreter, which must be a fresh
// NewRun (no Boot, no steps) over a program sharing the snapshot
// program's linker, with the host environment already registered.
// Function bindings and imports are bound program-side (a mini-boot
// that, unlike Boot, runs no var initializers and charges no steps);
// all mutable state then comes from the snapshot, translated into this
// interpreter's program and host values. The entry function's remaining
// body statements run to completion under normal semantics — including
// the LeaveCall hook, but not EnterCall, which fired during the prefix.
func (it *Interp) Fork(snap *Snapshot) (Value, error) {
	if it.prog == nil {
		return nil, fmt.Errorf("interp: Fork requires a compiled program")
	}
	if it.steps != 0 || len(it.frames) != 0 {
		return nil, fmt.Errorf("interp: Fork requires a fresh interpreter")
	}
	// Mini-boot: imports and function bindings only. Var initializers
	// already ran in the prefix; their results arrive via gslots below.
	for _, u := range it.prog.units {
		for _, imp := range u.imports {
			mod, ok := it.modules[imp.path]
			if !ok {
				return nil, fmt.Errorf("interp: %s imports unknown module %q", u.name, imp.path)
			}
			it.gslots[imp.gidx] = mod
		}
		for _, op := range u.ops {
			if op.fn != nil {
				it.gslots[op.gidx] = op.fn
			}
		}
	}

	fk, err := newForkCtx(snap, it)
	if err != nil {
		return nil, err
	}
	cp := &valCopier{memo: make(map[any]Value), fk: fk}

	// Globals: restore every snapshot slot that was bound. Slots unbound
	// at capture stay at whatever this interpreter's own registrations
	// put there — the straight run's state is registrations plus Boot,
	// and the snapshot carries the Boot-and-beyond part.
	n := len(snap.gslots)
	if n > len(it.gslots) {
		n = len(it.gslots)
	}
	for i := 0; i < n; i++ {
		if snap.gslots[i] == unbound {
			continue
		}
		it.gslots[i] = cp.copyVal(snap.gslots[i])
	}
	for _, k := range sortedKeys(snap.extras) {
		it.defineGlobal(k, cp.copyVal(snap.extras[k]))
	}
	if cp.err != nil {
		return nil, cp.err
	}

	// Entry frame: the fork-side entry function must have the shape the
	// snapshot recorded (same slot count, same body length).
	ev, ok := it.lookupGlobal(snap.entry)
	if !ok {
		return nil, fmt.Errorf("%w: entry %q not bound", ErrUnforkable, snap.entry)
	}
	ec, ok := ev.(*compiledClosure)
	if !ok {
		return nil, fmt.Errorf("%w: entry %q is not a compiled function", ErrUnforkable, snap.entry)
	}
	nf := ec.fn
	if nf.nslots != snap.nslots || len(nf.body) != snap.bodyLen || snap.stmt > len(nf.body) {
		return nil, fmt.Errorf("%w: entry %q changed shape", ErrUnforkable, snap.entry)
	}

	it.steps = snap.steps
	it.clockNS = snap.clockNS

	fr := getFrame(nf.name)
	for _, d := range snap.defers {
		nd := deferredCall{fn: cp.copyVal(d.fn), args: make([]Value, len(d.args))}
		for i, a := range d.args {
			nd.args[i] = cp.copyVal(a)
		}
		fr.defers = append(fr.defers, nd)
	}
	// Resume on the lowered code when this interpreter runs the bytecode
	// engine: statement boundaries map 1:1 via stmtPC, and the frame is
	// sized for registers (temporaries above nslots are dead at every
	// top-level statement boundary, so the snapshot never carries them).
	useCode := it.engine != engineClosure && nf.code != nil && len(nf.code.stmtPC) == len(nf.body)
	nframe := nf.nslots
	if useCode {
		nframe = nf.code.nframe
	}
	cf := getCframe(nframe)
	for i, v := range snap.slots {
		cf.slots[i] = cp.copyVal(v)
	}
	if len(snap.caps) > 0 {
		caps := make([]*cell, len(snap.caps))
		for i, c := range snap.caps {
			caps[i] = cp.copyCell(c)
		}
		cf.caps = caps
	}
	if cp.err != nil {
		putCframe(cf)
		putFrame(fr)
		return nil, cp.err
	}

	it.frames = append(it.frames, fr)
	var result Value
	var cerr error
	if useCode {
		pc := len(nf.code.ins)
		if snap.stmt < len(nf.code.stmtPC) {
			pc = nf.code.stmtPC[snap.stmt]
		}
		result, cerr = it.runCode(nf.code, cf, pc)
	} else {
		var ctl control
		var ret Value
		ctl, ret, cerr = runCstmts(it, cf, nf.body[snap.stmt:])
		if ctl == ctlReturn {
			result = ret
		}
	}
	err = it.runDefers(fr, cerr)
	if err == nil && it.hook != nil {
		result, err = it.hook.LeaveCall(it, nf.name, result)
	}
	it.frames = it.frames[:len(it.frames)-1]
	putCframe(cf)
	putFrame(fr)
	return result, err
}

// hostIndex maps host-registered values both ways: by identity to their
// registration key (capture side) and by key to the value (fork side).
// Module members get compound keys so a captured reference to a member
// function translates to the fork module's member. Only reference
// values (host functions, modules) are indexed; scalars copy as-is.
func (it *Interp) hostIndex() (byVal map[any]string, byKey map[string]Value) {
	byVal = make(map[any]string)
	byKey = make(map[string]Value)
	note := func(key string, v Value) {
		switch v.(type) {
		case *HostFunc, *Module:
			if _, dup := byKey[key]; !dup {
				byKey[key] = v
			}
			if _, dup := byVal[v]; !dup {
				byVal[v] = key
			}
		}
	}
	for _, key := range sortedKeys(it.hostVals) {
		v := it.hostVals[key]
		note(key, v)
		if m, ok := v.(*Module); ok {
			for _, mk := range sortedKeys(m.Member) {
				note(key+"\x00"+mk, m.Member[mk])
			}
		}
	}
	return byVal, byKey
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// forkCtx translates snapshot values into a fork interpreter: compiled
// functions across program derivations, host values across containers.
type forkCtx struct {
	// funcMap pairs each compiled function of a replaced unit with its
	// counterpart in the fork program's unit (matched by name).
	funcMap map[*compiledFunc]*compiledFunc
	// replaced holds every compiled function originating from a unit the
	// fork program swapped out — including nested literals, which have
	// no nameable counterpart and make a snapshot unforkable if captured.
	replaced map[*compiledFunc]bool
	hostOld  map[any]string
	hostNew  map[string]Value
}

func newForkCtx(snap *Snapshot, it *Interp) (*forkCtx, error) {
	op, np := snap.prog, it.prog
	if op.ln != np.ln || len(op.units) != len(np.units) {
		return nil, fmt.Errorf("%w: fork program does not derive from the snapshot program", ErrUnforkable)
	}
	fk := &forkCtx{
		funcMap:  make(map[*compiledFunc]*compiledFunc),
		replaced: make(map[*compiledFunc]bool),
		hostOld:  snap.hostKey,
	}
	_, fk.hostNew = it.hostIndex()
	for i := range op.units {
		ou, nu := op.units[i], np.units[i]
		if ou == nu {
			continue
		}
		newTop := make(map[string]*compiledFunc)
		for _, nop := range nu.ops {
			if nop.fn != nil {
				newTop[nop.name] = nop.fn.fn
			}
		}
		for _, oop := range ou.ops {
			if oop.fn == nil {
				continue
			}
			if nfn, ok := newTop[oop.name]; ok {
				fk.funcMap[oop.fn.fn] = nfn
			}
		}
		for tn, ms := range ou.methods {
			for mn, ofn := range ms {
				if nfn, ok := nu.methods[tn][mn]; ok {
					fk.funcMap[ofn] = nfn
				}
			}
		}
		for _, fn := range ou.allFns {
			if _, mapped := fk.funcMap[fn]; !mapped {
				fk.replaced[fn] = true
			}
		}
	}
	return fk, nil
}

// valCopier deep-copies interpreter values, preserving aliasing through
// memo and (when fk is set) translating compiled functions and host
// references into the fork interpreter's world. The first failure
// sticks in err; subsequent copies return nil.
type valCopier struct {
	memo map[any]Value
	fk   *forkCtx
	err  error
}

func (vc *valCopier) fail(format string, args ...any) Value {
	if vc.err == nil {
		vc.err = fmt.Errorf("%w: %s", ErrUnforkable, fmt.Sprintf(format, args...))
	}
	return nil
}

func (vc *valCopier) copyCell(c *cell) *cell {
	if c == nil {
		return nil
	}
	if got, ok := vc.memo[c]; ok {
		return got.(*cell)
	}
	nc := &cell{}
	vc.memo[c] = nc
	nc.v = vc.copyVal(c.v)
	return nc
}

func (vc *valCopier) copyVal(v Value) Value {
	switch x := v.(type) {
	case nil, bool, int64, float64, string, unboundMarker:
		return v
	case *List:
		if got, ok := vc.memo[x]; ok {
			return got
		}
		nl := &List{}
		vc.memo[x] = nl
		if x.Elems != nil {
			nl.Elems = make([]Value, len(x.Elems))
			for i, e := range x.Elems {
				nl.Elems[i] = vc.copyVal(e)
			}
		}
		return nl
	case *Map:
		if got, ok := vc.memo[x]; ok {
			return got
		}
		nm := &Map{m: make(map[Value]Value, len(x.m))}
		vc.memo[x] = nm
		// Keys are hashable scalars; copying preserves insertion order.
		if x.keys != nil {
			nm.keys = make([]Value, len(x.keys))
			copy(nm.keys, x.keys)
		}
		for k, e := range x.m {
			nm.m[k] = vc.copyVal(e)
		}
		return nm
	case *Tuple:
		if got, ok := vc.memo[x]; ok {
			return got
		}
		nt := &Tuple{}
		vc.memo[x] = nt
		if x.Elems != nil {
			nt.Elems = make([]Value, len(x.Elems))
			for i, e := range x.Elems {
				nt.Elems[i] = vc.copyVal(e)
			}
		}
		return nt
	case *Object:
		if got, ok := vc.memo[x]; ok {
			return got
		}
		no := &Object{TypeName: x.TypeName, Fields: make(map[string]Value, len(x.Fields))}
		vc.memo[x] = no
		for _, k := range sortedKeys(x.Fields) {
			no.Fields[k] = vc.copyVal(x.Fields[k])
		}
		return no
	case *Exc:
		if got, ok := vc.memo[x]; ok {
			return got
		}
		ne := &Exc{Type: x.Type, Msg: x.Msg}
		vc.memo[x] = ne
		return ne
	case *cell:
		return vc.copyCell(x)
	case *compiledClosure:
		if got, ok := vc.memo[x]; ok {
			return got
		}
		fn := x.fn
		if vc.fk != nil {
			if nfn, ok := vc.fk.funcMap[fn]; ok {
				if len(nfn.caps) != len(fn.caps) {
					return vc.fail("function %s changed capture shape", fn.name)
				}
				fn = nfn
			} else if vc.fk.replaced[fn] {
				return vc.fail("captured closure %s comes from a mutated file", fn.name)
			}
		}
		nc := &compiledClosure{fn: fn}
		vc.memo[x] = nc
		if x.caps != nil {
			nc.caps = make([]*cell, len(x.caps))
			for i, c := range x.caps {
				nc.caps[i] = vc.copyCell(c)
			}
		}
		nc.recv = vc.copyVal(x.recv)
		return nc
	case *HostFunc, *Module:
		// Host values are owned by the environment, not the snapshot:
		// capture keeps the reference, fork maps it to the equivalent
		// registration in the destination interpreter.
		if vc.fk == nil {
			return v
		}
		key, ok := vc.fk.hostOld[v]
		if !ok {
			return vc.fail("unregistered host value %s", TypeName(v))
		}
		nv, ok := vc.fk.hostNew[key]
		if !ok {
			return vc.fail("host value %q not registered in fork environment", key)
		}
		return nv
	default:
		// *Closure/*Scope (tree-walk values) and anything unknown.
		return vc.fail("unsupported value type %s", TypeName(v))
	}
}
