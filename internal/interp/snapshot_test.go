package interp

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestAdvanceClockClampAndSaturate pins the clock arithmetic fixed
// alongside the snapshot work: negative advances are ignored (a buggy
// host function must not rewind virtual time and break deadline
// monotonicity) and advances near the int64 ceiling saturate at
// MaxInt64 instead of wrapping negative, which would un-expire every
// deadline.
func TestAdvanceClockClampAndSaturate(t *testing.T) {
	it := New(Config{})
	it.AdvanceClock(100)
	if got := it.Clock(); got != 100 {
		t.Fatalf("clock = %d, want 100", got)
	}
	it.AdvanceClock(-50)
	if got := it.Clock(); got != 100 {
		t.Errorf("negative advance moved the clock: %d, want 100", got)
	}
	it.AdvanceClock(0)
	if got := it.Clock(); got != 100 {
		t.Errorf("zero advance moved the clock: %d, want 100", got)
	}
	it.AdvanceClock(math.MaxInt64 - 10)
	if got := it.Clock(); got != math.MaxInt64 {
		t.Errorf("overflowing advance = %d, want saturation at MaxInt64", got)
	}
	it.AdvanceClock(1)
	if got := it.Clock(); got != math.MaxInt64 {
		t.Errorf("advance past saturation = %d, want MaxInt64", got)
	}
}

// forkSetup registers host state; it runs on every interpreter of a
// fork-equivalence test (straight, prefix and each fork), mirroring how
// the workload installs its environment before Boot or Fork.
type forkSetup func(it *Interp)

// runForkVsStraight is the snapshot/fork analogue of runBothPaths: the
// program runs straight once, then through CallPrefix snapshotting at
// EVERY entry-body boundary, then each snapshot forks on a fresh
// interpreter. All paths must agree on result, error rendering, step
// count, virtual clock and stdout bytes (prefix-so-far + fork output
// must equal the straight run's output).
func runForkVsStraight(t *testing.T, files map[string]string, order []string,
	setup forkSetup, entry string, args ...Value) {
	t.Helper()

	var units []SourceUnit
	for _, name := range order {
		units = append(units, SourceUnit{Name: name, Src: []byte(files[name])})
	}
	prog, err := CompileProgram(units)
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}

	newInterp := func(out *bytes.Buffer) *Interp {
		it := NewRun(prog, Config{Stdout: out})
		if setup != nil {
			setup(it)
		}
		return it
	}

	// Straight run: the reference behavior.
	var straightOut bytes.Buffer
	straight := newInterp(&straightOut)
	if err := straight.Boot(); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	wantVal, wantErr := straight.Call(entry, args...)

	// Prefix run: capture a snapshot at every boundary, remembering how
	// much stdout the prefix had produced at each.
	var prefixOut bytes.Buffer
	prefix := newInterp(&prefixOut)
	if err := prefix.Boot(); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	type boundary struct {
		snap   *Snapshot
		outLen int
	}
	var bounds []boundary
	checkpoint := func(stmt int) bool {
		snap, err := prefix.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot at stmt %d: %v", stmt, err)
		}
		if snap.Stmt() != stmt {
			t.Fatalf("snapshot stmt = %d, want %d", snap.Stmt(), stmt)
		}
		bounds = append(bounds, boundary{snap, prefixOut.Len()})
		return true
	}
	preVal, preErr := prefix.CallPrefix(entry, checkpoint, args...)

	// CallPrefix itself must be observation-identical to Call.
	if Repr(preVal) != Repr(wantVal) || fmt.Sprint(preErr) != fmt.Sprint(wantErr) {
		t.Fatalf("CallPrefix diverged from Call:\n prefix: %s / %v\n straight: %s / %v",
			Repr(preVal), preErr, Repr(wantVal), wantErr)
	}
	if prefix.Steps() != straight.Steps() || prefix.Clock() != straight.Clock() {
		t.Fatalf("CallPrefix accounting diverged: steps %d/%d clock %d/%d",
			prefix.Steps(), straight.Steps(), prefix.Clock(), straight.Clock())
	}
	if prefixOut.String() != straightOut.String() {
		t.Fatalf("CallPrefix stdout diverged:\n prefix: %q\n straight: %q",
			prefixOut.String(), straightOut.String())
	}
	if len(bounds) == 0 {
		t.Fatalf("no snapshot boundaries captured for entry %s", entry)
	}

	prefixBytes := prefixOut.String()
	for _, b := range bounds {
		var forkOut bytes.Buffer
		fork := newInterp(&forkOut)
		gotVal, gotErr := fork.Fork(b.snap)
		if Repr(gotVal) != Repr(wantVal) {
			t.Errorf("fork@%d result mismatch:\n fork: %s\n straight: %s",
				b.snap.Stmt(), Repr(gotVal), Repr(wantVal))
		}
		if fmt.Sprint(gotErr) != fmt.Sprint(wantErr) {
			t.Errorf("fork@%d error mismatch:\n fork: %v\n straight: %v",
				b.snap.Stmt(), gotErr, wantErr)
		}
		if fork.Steps() != straight.Steps() {
			t.Errorf("fork@%d step count mismatch: fork=%d straight=%d",
				b.snap.Stmt(), fork.Steps(), straight.Steps())
		}
		if fork.Clock() != straight.Clock() {
			t.Errorf("fork@%d clock mismatch: fork=%d straight=%d",
				b.snap.Stmt(), fork.Clock(), straight.Clock())
		}
		if got := prefixBytes[:b.outLen] + forkOut.String(); got != straightOut.String() {
			t.Errorf("fork@%d stdout mismatch:\n prefix+fork: %q\n straight: %q",
				b.snap.Stmt(), got, straightOut.String())
		}
	}
}

func forkOne(t *testing.T, src, entry string, args ...Value) {
	t.Helper()
	runForkVsStraight(t, map[string]string{"t.go": "package main\n" + src},
		[]string{"t.go"}, nil, entry, args...)
}

// forkCorpus exercises snapshot/fork over the state shapes a workload
// prefix actually accumulates: locals of every value kind, aliasing,
// closures and cells, pending defers, global mutation, stdout, virtual
// steps, and failures after the boundary.
var forkCorpus = []struct {
	name  string
	src   string
	entry string
	args  []Value
}{
	{"locals-arith", `
func F(n int) any {
	a := n * 2
	b := a + 3
	c := b * b
	return a + b + c
}`, "F", []Value{int64(7)}},
	{"list-aliasing", `
func F() any {
	xs := []any{1, 2, 3}
	ys := xs
	ys = append(ys, 4)
	xs = append(xs, 5)
	m := map[string]any{"xs": xs}
	m["xs2"] = xs
	total := 0
	for _, x := range xs {
		total += x
	}
	for _, y := range ys {
		total += y
	}
	return total
}`, "F", nil},
	{"closure-cell", `
func F() any {
	total := 0
	bump := func(d int) any { total += d; return total }
	bump(3)
	bump(4)
	g := func() any { return total * 10 }
	bump(5)
	return g()
}`, "F", nil},
	{"object-graph", `
type Node struct{}
func F() any {
	a := &Node{v: 1}
	b := &Node{v: 2, next: a}
	a.next = b
	a.v = a.v + b.next.v
	s := a.v * 10
	return s + b.next.v
}`, "F", nil},
	{"pending-defers", `
func F() any {
	out := []any{}
	push := func(x int) any { out = append(out, x); return nil }
	defer push(1)
	x := 10
	defer push(x)
	x = 20
	defer push(x)
	print(len(out))
	return x
}`, "F", nil},
	{"global-mutation", `
var counter = 0
var log = []any{}
func bump(d int) any {
	counter = counter + d
	log = append(log, counter)
	return counter
}
func F() any {
	bump(1)
	bump(2)
	bump(3)
	return counter * len(log)
}`, "F", nil},
	{"stdout-interleaved", `
func F() any {
	print("one")
	x := 1
	print("two", x)
	x = x + 1
	print("three", x)
	return x
}`, "F", nil},
	{"exception-after-boundary", `
func F(n int) any {
	a := 10
	b := a - 10
	print("before")
	return n / b
}`, "F", []Value{int64(3)}},
	{"throw-after-boundary", `
func helper(tag string) any { return throw("WorkloadError", tag) }
func F() any {
	ok := "start"
	print(ok)
	return helper(ok + "-boom")
}`, "F", nil},
	{"method-receiver-state", `
type Counter struct{}
func (c *Counter) Add(d int) any { c.n = c.n + d; return c.n }
func F() any {
	c := &Counter{n: 5}
	c.Add(3)
	d := c
	d.Add(2)
	return c.n
}`, "F", nil},
	{"tuple-multi-assign", `
func pair() (any, any) { return 4, 9 }
func F() any {
	a, b := pair()
	c := a + b
	a, b = b, a
	return a*100 + b*10 + c
}`, "F", nil},
	{"loop-heavy-prefix", `
func F() any {
	total := 0
	for i := 0; i < 50; i++ {
		total += i
	}
	squares := []any{}
	for i := 0; i < 10; i++ {
		squares = append(squares, i*i)
	}
	last := squares[len(squares)-1]
	return total + last
}`, "F", nil},
}

func TestForkEquivalenceCorpus(t *testing.T) {
	for _, tc := range forkCorpus {
		t.Run(tc.name, func(t *testing.T) {
			forkOne(t, tc.src, tc.entry, tc.args...)
		})
	}
}

// TestForkEquivalenceHostEnv forks snapshots holding references to host
// functions and module members, which must translate to the fork
// interpreter's own registrations (fresh environment, same keys).
func TestForkEquivalenceHostEnv(t *testing.T) {
	src := `package main
import "ctr"
func F() any {
	a := ctr.Incr()
	f := ctr.Incr
	b := f()
	c := hostDouble(a + b)
	print(a, b, c)
	return c + ctr.Incr()
}`
	// Host state is not snapshotted (capturing it is the workload layer's
	// CaptureEnv job), so the module is stateless: the test exercises
	// reference-identity translation — the snapshot's ctr.Incr and
	// hostDouble references must resolve to the fork interpreter's own
	// registrations — not host-state capture.
	pure := func(it *Interp) {
		mod := &Module{Name: "ctr", Member: map[string]Value{}}
		mod.Member["Incr"] = &HostFunc{Name: "ctr.Incr", Fn: func(it *Interp, args []Value) (Value, error) {
			return int64(7), nil
		}}
		it.RegisterModule(mod)
		it.RegisterHostFunc("hostDouble", func(it *Interp, args []Value) (Value, error) {
			return args[0].(int64) * 2, nil
		})
	}
	runForkVsStraight(t, map[string]string{"t.go": src}, []string{"t.go"}, pure, "F")
}

// TestForkOntoMutatedProgram is the campaign scenario: snapshot the base
// program's prefix, then fork onto a WithFiles-derived program whose
// site function was mutated. The fork must behave exactly like a
// straight run of the mutated program — the prefix never executes the
// mutated function, so the snapshot is valid for both.
func TestForkOntoMutatedProgram(t *testing.T) {
	base := `package main
func site(x int) any { return x + 1 }
func F() any {
	a := 10
	b := a * 2
	c := site(b)
	return a + b + c
}`
	mutated := `package main
func site(x int) any { return x - 1 }
func F() any {
	a := 10
	b := a * 2
	c := site(b)
	return a + b + c
}`
	prog, err := CompileProgram([]SourceUnit{{Name: "t.go", Src: []byte(base)}})
	if err != nil {
		t.Fatal(err)
	}
	mprog, err := prog.WithFiles(map[string][]byte{"t.go": []byte(mutated)})
	if err != nil {
		t.Fatal(err)
	}

	// Straight run of the mutated program: the reference.
	ms := NewRun(mprog, Config{})
	if err := ms.Boot(); err != nil {
		t.Fatal(err)
	}
	wantVal, wantErr := ms.Call("F")
	if wantErr != nil {
		t.Fatal(wantErr)
	}

	// Prefix the BASE program, snapshotting before the site call (the
	// boundary discipline: statement 2 is `c := site(b)`).
	pre := NewRun(prog, Config{})
	if err := pre.Boot(); err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	_, err = pre.CallPrefix("F", func(stmt int) bool {
		s, serr := pre.Snapshot()
		if serr != nil {
			t.Fatalf("Snapshot: %v", serr)
		}
		snaps = append(snaps, s)
		return stmt < 2 // stop after the boundary preceding the site call
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("captured %d snapshots, want 3", len(snaps))
	}

	for _, snap := range snaps {
		fork := NewRun(mprog, Config{})
		gotVal, gotErr := fork.Fork(snap)
		if gotErr != nil {
			t.Fatalf("fork@%d: %v", snap.Stmt(), gotErr)
		}
		if Repr(gotVal) != Repr(wantVal) {
			t.Errorf("fork@%d onto mutated program = %s, want %s", snap.Stmt(), Repr(gotVal), Repr(wantVal))
		}
		if fork.Steps() != ms.Steps() {
			t.Errorf("fork@%d steps = %d, want %d", snap.Stmt(), fork.Steps(), ms.Steps())
		}
	}
}

// TestForkRejectsCapturedMutatedClosure: a snapshot holding a closure
// literal from the mutated file has no faithful translation — the
// literal has no nameable counterpart — and must report ErrUnforkable
// instead of resuming with stale code.
func TestForkRejectsCapturedMutatedClosure(t *testing.T) {
	base := `package main
func site() any { return func() any { return 1 } }
func F() any {
	g := site()
	h := g
	return h() + g()
}`
	mutated := `package main
func site() any { return func() any { return 2 } }
func F() any {
	g := site()
	h := g
	return h() + g()
}`
	prog, err := CompileProgram([]SourceUnit{{Name: "t.go", Src: []byte(base)}})
	if err != nil {
		t.Fatal(err)
	}
	mprog, err := prog.WithFiles(map[string][]byte{"t.go": []byte(mutated)})
	if err != nil {
		t.Fatal(err)
	}
	pre := NewRun(prog, Config{})
	if err := pre.Boot(); err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	if _, err := pre.CallPrefix("F", func(stmt int) bool {
		s, serr := pre.Snapshot()
		if serr != nil {
			t.Fatalf("Snapshot: %v", serr)
		}
		snaps = append(snaps, s)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// The boundary after `g := site()` holds the base literal in a slot.
	holding := snaps[1]
	fork := NewRun(mprog, Config{})
	if _, err := fork.Fork(holding); !errors.Is(err, ErrUnforkable) {
		t.Fatalf("fork with captured mutated closure: err = %v, want ErrUnforkable", err)
	}
	// The boundary before anything ran is still forkable.
	fork2 := NewRun(mprog, Config{})
	got, err := fork2.Fork(snaps[0])
	if err != nil {
		t.Fatalf("fork@0: %v", err)
	}
	if Repr(got) != "4" {
		t.Errorf("fork@0 onto mutated program = %s, want 4", Repr(got))
	}
}

// TestSnapshotOutsideCheckpoint pins the misuse guard.
func TestSnapshotOutsideCheckpoint(t *testing.T) {
	prog, err := CompileProgram([]SourceUnit{{Name: "t.go", Src: []byte("package main\nfunc F() any { return 1 }")}})
	if err != nil {
		t.Fatal(err)
	}
	it := NewRun(prog, Config{})
	if err := it.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Snapshot(); err == nil {
		t.Fatal("Snapshot outside a checkpoint succeeded")
	}
}

// TestForkRequiresFreshInterp: forking onto an interpreter that already
// ran is a caller bug, not a fallback condition.
func TestForkRequiresFreshInterp(t *testing.T) {
	src := "package main\nfunc F() any {\n\tx := 1\n\treturn x\n}"
	prog, err := CompileProgram([]SourceUnit{{Name: "t.go", Src: []byte(src)}})
	if err != nil {
		t.Fatal(err)
	}
	pre := NewRun(prog, Config{})
	if err := pre.Boot(); err != nil {
		t.Fatal(err)
	}
	var snap *Snapshot
	if _, err := pre.CallPrefix("F", func(int) bool {
		snap, _ = pre.Snapshot()
		return false
	}); err != nil {
		t.Fatal(err)
	}
	used := NewRun(prog, Config{})
	if err := used.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, _ = used.Call("F"); used.Steps() == 0 {
		t.Fatal("expected steps after Call")
	}
	if _, err := used.Fork(snap); err == nil {
		t.Fatal("Fork on a used interpreter succeeded")
	}
}

// TestForkMissingHostValue: a snapshot referencing a host registration
// the fork environment lacks must be unforkable, not nil-dereference.
func TestForkMissingHostValue(t *testing.T) {
	src := `package main
func F() any {
	f := hostFn
	return f()
}`
	prog, err := CompileProgram([]SourceUnit{{Name: "t.go", Src: []byte(src)}})
	if err != nil {
		t.Fatal(err)
	}
	reg := func(it *Interp) {
		it.RegisterHostFunc("hostFn", func(it *Interp, args []Value) (Value, error) {
			return int64(42), nil
		})
	}
	pre := NewRun(prog, Config{})
	reg(pre)
	if err := pre.Boot(); err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	if _, err := pre.CallPrefix("F", func(stmt int) bool {
		s, serr := pre.Snapshot()
		if serr != nil {
			t.Fatalf("Snapshot: %v", serr)
		}
		snaps = append(snaps, s)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// snaps[1] holds hostFn in a slot. Fork without registering it.
	bare := NewRun(prog, Config{})
	if _, err := bare.Fork(snaps[1]); !errors.Is(err, ErrUnforkable) {
		t.Fatalf("fork without host registration: err = %v, want ErrUnforkable", err)
	}
	// With the registration present, the fork translates the reference.
	good := NewRun(prog, Config{})
	reg(good)
	got, err := good.Fork(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if Repr(got) != "42" {
		t.Errorf("fork = %s, want 42", Repr(got))
	}
}
