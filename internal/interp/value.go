// Package interp implements the execution substrate that plays the role
// of the Python runtime in the original ProFIPy: a small AST interpreter
// for a dynamically-typed, Go-syntax target language ("minigo").
//
// Mutated target sources are parsed with go/parser and executed directly.
// The interpreter provides Python-analog dynamic semantics — panics as
// exceptions with defer/recover handlers, nil-attribute errors, type
// errors at run time — plus a virtual clock and step budget so injected
// hangs and CPU hogs are deterministic and fast to simulate.
package interp

import (
	"fmt"
	"go/ast"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value: nil, bool, int64, float64, string, *List,
// *Map, *Object, *Closure, *HostFunc, *Tuple or *Exc.
type Value any

// List is a mutable sequence (the analog of a Python list / Go slice).
type List struct {
	Elems []Value
}

// NewList builds a list from elements.
func NewList(elems ...Value) *List { return &List{Elems: elems} }

// Map is a mutable mapping with deterministic (insertion) iteration order.
// Keys must be hashable scalars: string, int64, float64 or bool.
type Map struct {
	m    map[Value]Value
	keys []Value
}

// NewMap returns an empty map.
func NewMap() *Map { return &Map{m: make(map[Value]Value)} }

// Get returns the value for key and whether it was present.
func (m *Map) Get(k Value) (Value, bool) {
	v, ok := m.m[k]
	return v, ok
}

// Set inserts or updates a key.
func (m *Map) Set(k, v Value) {
	if _, ok := m.m[k]; !ok {
		m.keys = append(m.keys, k)
	}
	m.m[k] = v
}

// Delete removes a key if present.
func (m *Map) Delete(k Value) {
	if _, ok := m.m[k]; !ok {
		return
	}
	delete(m.m, k)
	for i, kk := range m.keys {
		if kk == k {
			m.keys = append(m.keys[:i], m.keys[i+1:]...)
			break
		}
	}
}

// Len returns the number of entries.
func (m *Map) Len() int { return len(m.keys) }

// Keys returns the keys in insertion order (a copy).
func (m *Map) Keys() []Value { return append([]Value(nil), m.keys...) }

// Object is a dynamic record with a type name; structs of the target
// language become Objects, and methods dispatch on TypeName.
type Object struct {
	TypeName string
	Fields   map[string]Value
}

// NewObject creates an object of the given dynamic type.
func NewObject(typeName string) *Object {
	return &Object{TypeName: typeName, Fields: make(map[string]Value)}
}

// Closure is a user-defined function or method bound to its environment.
type Closure struct {
	Name   string
	Params []string
	Body   *ast.BlockStmt
	Env    *Scope
	Recv   Value  // bound receiver for methods, nil otherwise
	RecvN  string // receiver parameter name
}

// HostFunc is a function implemented by the embedding environment
// (standard modules, fault hooks, the kvstore transport, ...).
type HostFunc struct {
	Name string
	Fn   func(it *Interp, args []Value) (Value, error)
}

// Module is a named collection of host functions and constants, resolved
// from import declarations in target sources.
type Module struct {
	Name   string
	Member map[string]Value
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Member: make(map[string]Value)}
}

// Func registers a host function on the module.
func (m *Module) Func(name string, fn func(it *Interp, args []Value) (Value, error)) *Module {
	m.Member[name] = &HostFunc{Name: m.Name + "." + name, Fn: fn}
	return m
}

// Tuple carries multiple return values between calls and assignments.
type Tuple struct {
	Elems []Value
}

// Exc is an exception value (the analog of a Python exception instance).
type Exc struct {
	Type string
	Msg  string
}

func (e *Exc) String() string { return e.Type + ": " + e.Msg }

// Truthy reports Python-style truthiness of a value.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Elems) > 0
	case *Map:
		return x.Len() > 0
	default:
		return true
	}
}

// Equal reports deep equality between two values.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case bool, string:
		return a == b
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case float64:
			return float64(x) == y
		}
		return false
	case float64:
		switch y := b.(type) {
		case int64:
			return x == float64(y)
		case float64:
			return x == y
		}
		return false
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !Equal(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *Map:
		y, ok := b.(*Map)
		if !ok || x.Len() != y.Len() {
			return false
		}
		for _, k := range x.keys {
			yv, ok := y.Get(k)
			if !ok || !Equal(x.m[k], yv) {
				return false
			}
		}
		return true
	case *Exc:
		y, ok := b.(*Exc)
		return ok && x.Type == y.Type && x.Msg == y.Msg
	default:
		return a == b
	}
}

// Repr renders a value for logs and workload output, deterministically.
func Repr(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		return strconv.FormatBool(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case *List:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			parts[i] = Repr(e)
		}
		return "[" + strings.Join(parts, " ") + "]"
	case *Map:
		parts := make([]string, 0, x.Len())
		for _, k := range x.keys {
			parts = append(parts, Repr(k)+":"+Repr(x.m[k]))
		}
		sort.Strings(parts)
		return "map[" + strings.Join(parts, " ") + "]"
	case *Object:
		return "<" + x.TypeName + ">"
	case *Closure:
		return "<func " + x.Name + ">"
	case *compiledClosure:
		return "<func " + x.fn.name + ">"
	case *HostFunc:
		return "<hostfunc " + x.Name + ">"
	case *Module:
		return "<module " + x.Name + ">"
	case *Tuple:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			parts[i] = Repr(e)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *Exc:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// TypeName returns the dynamic type name of a value, used in TypeError
// messages.
func TypeName(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "string"
	case *List:
		return "list"
	case *Map:
		return "map"
	case *Object:
		return x.TypeName
	case *Closure, *HostFunc, *compiledClosure:
		return "func"
	case *Tuple:
		return "tuple"
	case *Exc:
		return "exception"
	case *Module:
		return "module"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// Scope is a lexical scope chain for variables. Function-body scopes are
// marked as funcRoot: plain assignment to an undeclared name defines it at
// the function root (Python-style), which is what makes the paper's
// "UnboundLocalError: local variable referenced before assignment" failure
// mode reproducible (§V-C).
type Scope struct {
	vars     map[string]Value
	parent   *Scope
	funcRoot bool
}

// NewScope returns a scope with the given parent (nil for globals).
func NewScope(parent *Scope) *Scope {
	return &Scope{vars: make(map[string]Value), parent: parent}
}

// Lookup finds a variable, walking the parent chain.
func (s *Scope) Lookup(name string) (Value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a name in this scope.
func (s *Scope) Define(name string, v Value) { s.vars[name] = v }

// DefineAtFuncRoot binds a name at the nearest enclosing function-root
// scope (or locally when there is none).
func (s *Scope) DefineAtFuncRoot(name string, v Value) {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.funcRoot {
			sc.vars[name] = v
			return
		}
	}
	s.vars[name] = v
}

// Assign updates an existing binding, searching the parent chain; it
// reports whether the name was found.
func (s *Scope) Assign(name string, v Value) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			sc.vars[name] = v
			return true
		}
	}
	return false
}
