package interp

import (
	"testing"
	"testing/quick"
)

func TestMapInsertionOrderAndDelete(t *testing.T) {
	m := NewMap()
	m.Set("b", int64(1))
	m.Set("a", int64(2))
	m.Set("c", int64(3))
	m.Set("a", int64(4)) // update must not change order
	keys := m.Keys()
	if len(keys) != 3 || keys[0] != "b" || keys[1] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v, want insertion order [b a c]", keys)
	}
	if v, ok := m.Get("a"); !ok || v != int64(4) {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	m.Delete("a")
	if _, ok := m.Get("a"); ok {
		t.Fatal("a still present after delete")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	m.Delete("zz") // deleting a missing key is a no-op
	if m.Len() != 2 {
		t.Fatal("deleting missing key changed the map")
	}
}

// Property: for any key/value sequence, a Map behaves like a Go map with
// stable iteration (set-then-get returns the value; delete removes it).
func TestMapQuickProperties(t *testing.T) {
	setGet := func(keys []string, val int64) bool {
		m := NewMap()
		for _, k := range keys {
			m.Set(k, val)
			if got, ok := m.Get(k); !ok || got != val {
				return false
			}
		}
		return m.Len() <= len(keys)
	}
	if err := quick.Check(setGet, nil); err != nil {
		t.Error(err)
	}
	deleteAll := func(keys []string) bool {
		m := NewMap()
		for _, k := range keys {
			m.Set(k, true)
		}
		for _, k := range keys {
			m.Delete(k)
		}
		return m.Len() == 0 && len(m.Keys()) == 0
	}
	if err := quick.Check(deleteAll, nil); err != nil {
		t.Error(err)
	}
}

func TestTruthiness(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{nil, false},
		{false, false},
		{true, true},
		{int64(0), false},
		{int64(-1), true},
		{float64(0), false},
		{float64(0.5), true},
		{"", false},
		{"x", true},
		{NewList(), false},
		{NewList(int64(1)), true},
		{NewMap(), false},
		{NewObject("T"), true},
	}
	for _, tc := range tests {
		if got := Truthy(tc.v); got != tc.want {
			t.Errorf("Truthy(%v) = %v, want %v", Repr(tc.v), got, tc.want)
		}
	}
}

func TestEqualMixedNumerics(t *testing.T) {
	if !Equal(int64(3), float64(3)) {
		t.Error("3 == 3.0 should hold")
	}
	if Equal(int64(3), "3") {
		t.Error("3 == \"3\" should not hold")
	}
	if !Equal(NewList(int64(1), "a"), NewList(int64(1), "a")) {
		t.Error("deep list equality failed")
	}
	if Equal(NewList(int64(1)), NewList(int64(2))) {
		t.Error("lists with different elements compare equal")
	}
	a := NewMap()
	a.Set("k", int64(1))
	b := NewMap()
	b.Set("k", int64(1))
	if !Equal(a, b) {
		t.Error("deep map equality failed")
	}
	b.Set("k2", int64(2))
	if Equal(a, b) {
		t.Error("maps of different size compare equal")
	}
	if !Equal(&Exc{Type: "E", Msg: "m"}, &Exc{Type: "E", Msg: "m"}) {
		t.Error("exception equality failed")
	}
}

// Property: Equal is reflexive for scalar values, and Repr is stable.
func TestEqualReprQuickProperties(t *testing.T) {
	reflexive := func(i int64, f float64, s string, b bool) bool {
		return Equal(i, i) && Equal(f, f) && Equal(s, s) && Equal(b, b)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
	stableRepr := func(i int64, s string) bool {
		l := NewList(i, s)
		return Repr(l) == Repr(l)
	}
	if err := quick.Check(stableRepr, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeNames(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{nil, "nil"},
		{true, "bool"},
		{int64(1), "int"},
		{1.5, "float"},
		{"s", "string"},
		{NewList(), "list"},
		{NewMap(), "map"},
		{NewObject("Client"), "Client"},
		{&Exc{}, "exception"},
		{&Tuple{}, "tuple"},
		{NewModule("m"), "module"},
		{&HostFunc{}, "func"},
	}
	for _, tc := range tests {
		if got := TypeName(tc.v); got != tc.want {
			t.Errorf("TypeName(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestScopeChainAndFuncRoot(t *testing.T) {
	root := NewScope(nil)
	root.funcRoot = true
	inner := NewScope(root)
	deeper := NewScope(inner)

	deeper.DefineAtFuncRoot("x", int64(1))
	if _, ok := root.vars["x"]; !ok {
		t.Error("DefineAtFuncRoot should bind at the function root")
	}
	if v, ok := deeper.Lookup("x"); !ok || v != int64(1) {
		t.Error("lookup through the chain failed")
	}
	if !inner.Assign("x", int64(2)) {
		t.Error("Assign should find the binding in an ancestor")
	}
	if v, _ := root.Lookup("x"); v != int64(2) {
		t.Error("Assign did not update the root binding")
	}
	if deeper.Assign("missing", int64(3)) {
		t.Error("Assign of an unknown name should fail")
	}

	// Without a funcRoot in the chain, DefineAtFuncRoot binds locally.
	orphan := NewScope(nil)
	orphan.DefineAtFuncRoot("y", true)
	if _, ok := orphan.vars["y"]; !ok {
		t.Error("orphan DefineAtFuncRoot should bind locally")
	}
}

func TestReprFormats(t *testing.T) {
	m := NewMap()
	m.Set("b", int64(2))
	m.Set("a", int64(1))
	// Repr sorts map entries for determinism regardless of insertion.
	if got := Repr(m); got != "map[a:1 b:2]" {
		t.Errorf("Repr(map) = %q", got)
	}
	if got := Repr(NewList(int64(1), "x", nil)); got != "[1 x nil]" {
		t.Errorf("Repr(list) = %q", got)
	}
	if got := Repr(&Tuple{Elems: []Value{int64(1), int64(2)}}); got != "(1, 2)" {
		t.Errorf("Repr(tuple) = %q", got)
	}
	if got := Repr(&Exc{Type: "E", Msg: "m"}); got != "E: m" {
		t.Errorf("Repr(exc) = %q", got)
	}
}

func TestFormatValueVerbs(t *testing.T) {
	got := FormatValue("a=%s b=%d c=%v pct=%% q=%q", []Value{"x", int64(3), true, "z"})
	if got != `a=x b=3 c=true pct=% q="z"` {
		t.Errorf("FormatValue = %q", got)
	}
	// Missing arguments render as nil; unknown verbs pass through.
	if got := FormatValue("%s %Z", []Value{}); got != "nil %Z" {
		t.Errorf("FormatValue = %q", got)
	}
}
