// The bytecode dispatch loop (see bytecode.go for the IR and lowering).
// runCode executes a lowered function body against a register frame;
// callBytecode is the call-boundary twin of callCompiled — frame pools,
// recursion guard, capture cells, parameter binding, EnterCall/LeaveCall
// hook points and defer handling are identical, so the two engines are
// observably indistinguishable.
package interp

import "go/token"

// engine selects how compiled closures execute.
const (
	engineBytecode uint8 = iota // lowered instructions (default)
	engineClosure               // closure tree only
)

func engineOf(name string) uint8 {
	if name == "closure" {
		return engineClosure
	}
	return engineBytecode
}

// EngineName reports the engine a Config selects on the compiled path.
func (cfg Config) EngineName() string {
	if cfg.Engine == "closure" {
		return "closure"
	}
	return "bytecode"
}

// callBytecode executes a lowered function with defer/recover semantics
// identical to callCompiled, against a pooled register frame sized for
// locals plus temporaries.
func (it *Interp) callBytecode(f *compiledClosure, args []Value) (result Value, err error) {
	fn := f.fn
	if len(it.frames) > 200 {
		return nil, it.throw("RecursionError", "maximum call depth exceeded in "+fn.name)
	}
	fr := getFrame(fn.name)
	it.frames = append(it.frames, fr)
	cf := getCframeVM(fn.code.nframe, fn.nslots)
	cf.caps = f.caps

	for _, s := range fn.rootCells {
		cf.slots[s] = &cell{v: unbound}
	}
	if fn.recv != nil {
		bindSlot(cf, fn.recv, f.recv)
	}
	for i, p := range fn.params {
		var v Value
		if i < len(args) {
			v = args[i]
		}
		bindSlot(cf, p, v)
	}
	// Extra args beyond declared params are dropped (tree-walk parity).

	var cerr error
	if it.hook != nil {
		cerr = it.hook.EnterCall(it, fn.name)
	}
	if cerr == nil {
		result, cerr = it.runCode(fn.code, cf, 0)
	}
	err = it.runDefers(fr, cerr)
	if err == nil && it.hook != nil {
		result, err = it.hook.LeaveCall(it, fn.name, result)
	}
	it.frames = it.frames[:len(it.frames)-1]
	putCframe(cf)
	putFrame(fr)
	return result, err
}

// runCode is the dispatch loop. Falling off the end (or a break/continue
// resolved to the function end) returns nil, matching a closure body
// that completes without ctlReturn.
func (it *Interp) runCode(cd *code, fr *cframe, pc int) (Value, error) {
	ins := cd.ins
	n := len(ins)
	slots := fr.slots
	for pc < n {
		in := &ins[pc]
		switch in.op {
		case opStep:
			if err := it.step(); err != nil {
				return nil, err
			}

		case opConst:
			slots[in.a] = in.x

		case opLoadSlot:
			v := slots[in.b]
			if v == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+in.x.(string)+"' referenced before assignment")
			}
			slots[in.a] = v

		case opStoreSlot:
			slots[in.b] = slots[in.a]

		case opLoadLocal:
			b := in.x.(*vbind)
			v := slots[b.slot]
			if b.cell {
				if cl, ok := v.(*cell); ok {
					v = cl.v
				}
			}
			if v == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+b.name+"' referenced before assignment")
			}
			slots[in.a] = v

		case opStoreLocal:
			b := in.x.(*vbind)
			v := slots[in.a]
			if b.cell {
				if cl, ok := slots[b.slot].(*cell); ok {
					cl.v = v
				} else {
					slots[b.slot] = &cell{v: v}
				}
			} else {
				slots[b.slot] = v
			}

		case opStoreDecl:
			// Block-scoped declaration: a captured variable gets a fresh
			// cell every time the declaration executes.
			b := in.x.(*vbind)
			if b.cell {
				slots[b.slot] = &cell{v: slots[in.a]}
			} else {
				slots[b.slot] = slots[in.a]
			}

		case opLoadCap:
			v := fr.caps[in.b].v
			if v == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+in.x.(string)+"' referenced before assignment")
			}
			slots[in.a] = v

		case opStoreCap:
			fr.caps[in.b].v = slots[in.a]

		case opLoadGlobal:
			v := it.gslots[in.b]
			if v == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+in.x.(string)+"' referenced before assignment")
			}
			slots[in.a] = v

		case opStoreGlobal:
			it.gslots[in.b] = slots[in.a]

		case opAdd:
			l, r := slots[in.a], slots[in.b]
			if li, ok := l.(int64); ok {
				if ri, ok := r.(int64); ok {
					slots[in.c] = li + ri
					break
				}
			}
			v, err := it.binop(token.ADD, l, r)
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opSub:
			l, r := slots[in.a], slots[in.b]
			if li, ok := l.(int64); ok {
				if ri, ok := r.(int64); ok {
					slots[in.c] = li - ri
					break
				}
			}
			v, err := it.binop(token.SUB, l, r)
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opMul:
			l, r := slots[in.a], slots[in.b]
			if li, ok := l.(int64); ok {
				if ri, ok := r.(int64); ok {
					slots[in.c] = li * ri
					break
				}
			}
			v, err := it.binop(token.MUL, l, r)
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opLss, opLeq, opGtr, opGeq, opEql, opNeq:
			l, r := slots[in.a], slots[in.b]
			if li, ok := l.(int64); ok {
				if ri, ok := r.(int64); ok {
					var t bool
					switch in.op {
					case opLss:
						t = li < ri
					case opLeq:
						t = li <= ri
					case opGtr:
						t = li > ri
					case opGeq:
						t = li >= ri
					case opEql:
						t = li == ri
					default:
						t = li != ri
					}
					slots[in.c] = t
					break
				}
			}
			v, err := it.binop(cmpTok(in.op), l, r)
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opBinOther:
			v, err := it.binop(in.x.(token.Token), slots[in.a], slots[in.b])
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opNot:
			slots[in.b] = !Truthy(slots[in.a])

		case opNeg:
			switch v := slots[in.a].(type) {
			case int64:
				slots[in.b] = -v
			case float64:
				slots[in.b] = -v
			default:
				return nil, it.throw("TypeError",
					"bad operand type for unary -: '"+TypeName(slots[in.a])+"'")
			}

		case opTruthy:
			slots[in.b] = Truthy(slots[in.a])

		case opJmp:
			pc = int(in.c)
			continue

		case opJmpFalse:
			if !Truthy(slots[in.a]) {
				pc = int(in.c)
				continue
			}

		case opJmpTrue:
			if Truthy(slots[in.a]) {
				pc = int(in.c)
				continue
			}

		case opJmpCmpF:
			l, r := slots[in.a], slots[in.b]
			tok := in.x.(token.Token)
			var t bool
			if li, ok := l.(int64); ok {
				if ri, ok := r.(int64); ok {
					switch tok {
					case token.LSS:
						t = li < ri
					case token.LEQ:
						t = li <= ri
					case token.GTR:
						t = li > ri
					case token.GEQ:
						t = li >= ri
					case token.EQL:
						t = li == ri
					default:
						t = li != ri
					}
					if !t {
						pc = int(in.c)
						continue
					}
					pc++
					continue
				}
			}
			v, err := it.binop(tok, l, r)
			if err != nil {
				return nil, err
			}
			if !Truthy(v) {
				pc = int(in.c)
				continue
			}

		case opIncSlot:
			cur := slots[in.b]
			if cur == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+in.x.(string)+"' referenced before assignment")
			}
			if ci, ok := cur.(int64); ok {
				slots[in.b] = ci + int64(in.a)
			} else {
				nv, err := it.binop(token.ADD, cur, int64(in.a))
				if err != nil {
					return nil, err
				}
				slots[in.b] = nv
			}

		case opArithC:
			l := slots[in.a]
			tok := token.Token(in.b)
			if li, ok := l.(int64); ok {
				if ri, ok := in.x.(int64); ok {
					switch tok {
					case token.ADD:
						slots[in.c] = li + ri
					case token.SUB:
						slots[in.c] = li - ri
					case token.MUL:
						slots[in.c] = li * ri
					case token.REM:
						if ri == 0 {
							return nil, it.throw("ZeroDivisionError", "integer modulo by zero")
						}
						slots[in.c] = li % ri
					case token.QUO:
						if ri == 0 {
							return nil, it.throw("ZeroDivisionError", "integer division by zero")
						}
						slots[in.c] = li / ri
					case token.LSS:
						slots[in.c] = li < ri
					case token.LEQ:
						slots[in.c] = li <= ri
					case token.GTR:
						slots[in.c] = li > ri
					case token.GEQ:
						slots[in.c] = li >= ri
					case token.EQL:
						slots[in.c] = li == ri
					case token.NEQ:
						slots[in.c] = li != ri
					default:
						v, err := it.binop(tok, l, in.x)
						if err != nil {
							return nil, err
						}
						slots[in.c] = v
					}
					pc++
					continue
				}
			}
			v, err := it.binop(tok, l, in.x)
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opJmpCmpCF:
			l := slots[in.a]
			if li, ok := l.(int64); ok {
				if ri, ok := in.x.(int64); ok {
					var t bool
					switch token.Token(in.b) {
					case token.LSS:
						t = li < ri
					case token.LEQ:
						t = li <= ri
					case token.GTR:
						t = li > ri
					case token.GEQ:
						t = li >= ri
					case token.EQL:
						t = li == ri
					default:
						t = li != ri
					}
					if !t {
						pc = int(in.c)
						continue
					}
					pc++
					continue
				}
			}
			v, err := it.binop(token.Token(in.b), l, in.x)
			if err != nil {
				return nil, err
			}
			if !Truthy(v) {
				pc = int(in.c)
				continue
			}

		case opIncLocal:
			b := in.x.(*vbind)
			cur := slots[b.slot]
			var cl *cell
			if b.cell {
				if cc, ok := cur.(*cell); ok {
					cl = cc
					cur = cc.v
				}
			}
			if cur == unbound {
				return nil, it.throw("UnboundLocalError",
					"local variable '"+b.name+"' referenced before assignment")
			}
			var nv Value
			if ci, ok := cur.(int64); ok {
				nv = ci + int64(in.a)
			} else {
				var err error
				nv, err = it.binop(token.ADD, cur, int64(in.a))
				if err != nil {
					return nil, err
				}
			}
			if cl != nil {
				cl.v = nv
			} else if b.cell {
				slots[b.slot] = &cell{v: nv}
			} else {
				slots[b.slot] = nv
			}

		case opCall:
			v, err := it.call(slots[in.a], slots[in.a+1:in.a+1+in.b])
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opRet:
			if in.a < 0 {
				return nil, nil
			}
			return slots[in.a], nil

		case opRetTuple:
			vals := make([]Value, in.b)
			copy(vals, slots[in.a:in.a+in.b])
			return &Tuple{Elems: vals}, nil

		case opIndex:
			v, err := indexValue(it, slots[in.a], slots[in.b])
			if err != nil {
				return nil, err
			}
			slots[in.c] = v

		case opAttr:
			v, err := it.attrValue(slots[in.a], in.x.(string))
			if err != nil {
				return nil, err
			}
			slots[in.b] = v

		case opStmt:
			ctl, v, err := in.x.(cstmt)(it, fr)
			if err != nil {
				return nil, err
			}
			switch ctl {
			case ctlBreak:
				pc = int(in.a)
				continue
			case ctlContinue:
				pc = int(in.b)
				continue
			case ctlReturn:
				return v, nil
			}

		case opExpr:
			v, err := in.x.(cexpr)(it, fr)
			if err != nil {
				return nil, err
			}
			slots[in.a] = v

		case opAssign:
			if err := in.x.(cassign)(it, fr, slots[in.a]); err != nil {
				return nil, err
			}

		case opPanic:
			return nil, &PanicError{Val: slots[in.a], Stack: it.stackNames()}

		case opRecover:
			slots[in.a] = it.evalRecover()

		case opMakeMap:
			slots[in.a] = NewMap()

		case opMakeList:
			slots[in.a] = NewList()

		case opNewObj:
			slots[in.a] = NewObject(in.x.(string))

		case opMakeClosure:
			fn := in.x.(*compiledFunc)
			cl := &compiledClosure{fn: fn}
			if len(fn.caps) > 0 {
				caps := make([]*cell, len(fn.caps))
				for i, src := range fn.caps {
					if src.fromSlot >= 0 {
						caps[i] = slots[src.fromSlot].(*cell)
					} else {
						caps[i] = fr.caps[src.fromCap]
					}
				}
				cl.caps = caps
			}
			slots[in.a] = cl

		case opUnwrap1:
			if t, ok := slots[in.a].(*Tuple); ok && len(t.Elems) > 0 {
				slots[in.a] = t.Elems[0]
			}

		case opRangeInit:
			coll := slots[in.a]
			switch cv := coll.(type) {
			case *List:
				// Snapshot the elements up front (mutation during
				// iteration is invisible, like the closure path).
				slots[in.b] = &rangeList{elems: append([]Value(nil), cv.Elems...)}
			case *Map:
				keys := cv.Keys()
				vals := make([]Value, len(keys))
				for i, k := range keys {
					vals[i], _ = cv.Get(k)
				}
				slots[in.b] = &rangePairs{keys: keys, vals: vals}
			case string, int64:
				slots[in.b] = cv
			case nil:
				return nil, it.throw("TypeError", "nil object is not iterable")
			default:
				return nil, it.throw("TypeError", TypeName(coll)+" object is not iterable")
			}
			slots[in.b+1] = int64(0)

		case opRangeNext:
			i := slots[in.a+1].(int64)
			switch d := slots[in.a].(type) {
			case *rangeList:
				if int(i) >= len(d.elems) {
					pc = int(in.c)
					continue
				}
				slots[in.b] = i
				slots[in.b+1] = d.elems[i]
			case *rangePairs:
				if int(i) >= len(d.keys) {
					pc = int(in.c)
					continue
				}
				slots[in.b] = d.keys[i]
				slots[in.b+1] = d.vals[i]
			case string:
				if int(i) >= len(d) {
					pc = int(in.c)
					continue
				}
				slots[in.b] = i
				slots[in.b+1] = string(d[i])
			case int64:
				if i >= d {
					pc = int(in.c)
					continue
				}
				slots[in.b] = i
				slots[in.b+1] = nil
			}
			slots[in.a+1] = i + 1
		}
		pc++
	}
	return nil, nil
}

func cmpTok(op uint8) token.Token {
	switch op {
	case opLss:
		return token.LSS
	case opLeq:
		return token.LEQ
	case opGtr:
		return token.GTR
	case opGeq:
		return token.GEQ
	case opEql:
		return token.EQL
	default:
		return token.NEQ
	}
}

// attrValue implements selector reads for the bytecode path, matching
// compileSelector's semantics exactly.
func (it *Interp) attrValue(base Value, name string) (Value, error) {
	switch b := base.(type) {
	case *Module:
		v, ok := b.Member[name]
		if !ok {
			return nil, it.throw("AttributeError", "module '"+b.Name+"' has no attribute '"+name+"'")
		}
		return v, nil
	case *Object:
		if v, ok := b.Fields[name]; ok {
			return v, nil
		}
		if it.prog != nil {
			if mfn, ok := it.prog.methods[b.TypeName][name]; ok {
				return &compiledClosure{fn: mfn, recv: b}, nil
			}
		}
		return nil, it.throw("AttributeError", "'"+b.TypeName+"' object has no attribute '"+name+"'")
	case *Exc:
		switch name {
		case "Type":
			return b.Type, nil
		case "Msg":
			return b.Msg, nil
		}
		return nil, it.throw("AttributeError", "exception has no attribute '"+name+"'")
	case nil:
		return nil, it.throw("AttributeError", "nil object has no attribute '"+name+"'")
	default:
		return nil, it.throw("AttributeError", "'"+TypeName(base)+"' object has no attribute '"+name+"'")
	}
}
