package kvclient

import (
	"profipy/internal/analysis"
	"profipy/internal/campaign"
	"profipy/internal/faultmodel"
	"profipy/internal/interp"
	"profipy/internal/sandbox"
	"profipy/internal/workload"
)

// WorkloadTimeoutNS is the per-round virtual deadline. The paper's
// experiments took 10–120s, the worst case being a hang killed by the
// timeout; virtual time reproduces that scale deterministically.
const WorkloadTimeoutNS = 240_000_000_000 // 240s virtual

// WorkloadConfig returns the §V workload configuration: deploy the etcd
// server, upload and query key-value pairs of different kinds (dirs,
// sub-keys, TTL, CAS), with consistency checks.
func WorkloadConfig() workload.Config {
	return workload.Config{
		Entry:     "Workload",
		Files:     []string{FileClient, FileLock, FileAuth, FileWorkload},
		TimeoutNS: WorkloadTimeoutNS,
		MaxSteps:  20_000_000,
		Env: func(it *interp.Interp, c *sandbox.Container) {
			InstallEnv(it, c)
		},
		CaptureEnv: CaptureEnv,
		RestoreEnv: RestoreEnv,
	}
}

// AnalysisConfig returns the failure classification of §V: the failure
// modes the paper discusses, as log/exception patterns, plus the
// component map for the propagation metric.
func AnalysisConfig() analysis.Config {
	return analysis.Config{
		ErrorPattern: "ERROR",
		Classes: []analysis.FailureClass{
			{Name: "reconnection-failure", Pattern: "address already in use"},
			{Name: "member-bootstrapped", Pattern: "already been bootstrapped"},
			{Name: "bad-request-400", Pattern: "400 Bad Request"},
			{Name: "key-not-found", Pattern: "EtcdKeyNotFound|Key not found"},
			{Name: "nil-attribute-error", Pattern: "AttributeError"},
			{Name: "unbound-local", Pattern: "UnboundLocalError"},
			{Name: "stale-read", Pattern: "stale read"},
			{Name: "value-mismatch", Pattern: "mismatch|not swapped|not updated"},
			{Name: "hang-timeout", Pattern: "workload timeout"},
		},
		Components: map[string][]string{
			"client":   {FileClient},
			"lock":     {FileLock},
			"auth":     {FileAuth},
			"workload": {FileWorkload},
			"server":   nil, // server logs come from the kvstore substrate
		},
	}
}

// Image returns the container image profile for Python-etcd experiments.
func Image() sandbox.Image {
	return sandbox.Image{Name: "python-etcd", MemMB: 256, IOMBps: 10}
}

// newCampaign assembles the shared configuration of the three campaigns.
func newCampaign(name string, rt *sandbox.Runtime, scan []string,
	faultload []faultmodel.Spec, seed int64) *campaign.Campaign {
	return &campaign.Campaign{
		Name:      name,
		Files:     Sources(),
		ScanFiles: scan,
		Faultload: faultload,
		Workload:  WorkloadConfig(),
		Runtime:   rt,
		Image:     Image(),
		Seed:      seed,
		Analysis:  AnalysisConfig(),
	}
}

// CampaignA builds the §V-A campaign: errors from external APIs, injected
// into the client library modules.
func CampaignA(rt *sandbox.Runtime, seed int64) *campaign.Campaign {
	return newCampaign("campaign-A: errors from external APIs", rt,
		[]string{FileClient, FileLock, FileAuth}, CampaignAFaultload(), seed)
}

// CampaignB builds the §V-B campaign: wrong inputs to the client API,
// injected at the workload's call sites.
func CampaignB(rt *sandbox.Runtime, seed int64) *campaign.Campaign {
	return newCampaign("campaign-B: wrong inputs", rt,
		[]string{FileWorkload}, CampaignBFaultload(), seed)
}

// CampaignC builds the §V-C campaign: resource management bugs (CPU hogs
// after client API calls).
func CampaignC(rt *sandbox.Runtime, seed int64) *campaign.Campaign {
	return newCampaign("campaign-C: resource management bugs", rt,
		[]string{FileWorkload}, CampaignCFaultload(), seed)
}

// CampaignLate builds the late-site benchmark campaign: the §V-A
// faultload restricted to the lock and auth modules, driven by a
// workload whose lock/auth traffic happens only after a long
// ingest-and-verify prefix. Every injection site is therefore first
// reached near the end of round 1 — the case prefix-snapshot fork
// execution (ROADMAP item 1) exists for, and the scenario behind the
// fork on/off row of BENCH_exec.json.
func CampaignLate(rt *sandbox.Runtime, seed int64) *campaign.Campaign {
	c := newCampaign("campaign-late: late-site lock/auth faults", rt,
		[]string{FileLock, FileAuth}, CampaignAFaultload(), seed)
	files := Sources()
	files[FileWorkload] = []byte(LateWorkloadSource)
	c.Files = files
	return c
}

// CampaignR builds the mixed compile-time + runtime campaign: §V-A
// style mutations alongside trigger-based runtime injectors (flaky,
// wear-out, corruption and latency faults) over the client modules.
// Runtime experiments execute the campaign's base compiled program
// unchanged — only the injector table differs per experiment.
func CampaignR(rt *sandbox.Runtime, seed int64) *campaign.Campaign {
	return newCampaign("campaign-R: runtime trigger-based faults", rt,
		[]string{FileClient, FileLock, FileAuth}, CampaignRFaultload(), seed)
}
