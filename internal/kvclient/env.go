package kvclient

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"profipy/internal/interp"
	"profipy/internal/kvstore"
	"profipy/internal/sandbox"
	"profipy/internal/trace"
)

// EnvByName resolves a named host environment for experiment
// interpreters: "" and "kvclient" select the etcd case-study
// environment (InstallEnv), "plain" the bare sandbox hooks. The name
// travels in campaign specs and API requests where a function cannot —
// remote workers and the SaaS layer resolve it through this single
// table. Unknown names return ok=false.
func EnvByName(name string) (fn func(it *interp.Interp, c *sandbox.Container), ok bool) {
	switch name {
	case "", "kvclient":
		return func(it *interp.Interp, c *sandbox.Container) { InstallEnv(it, c) }, true
	case "plain":
		return func(it *interp.Interp, c *sandbox.Container) { sandbox.InstallHooks(it, c) }, true
	default:
		return nil, false
	}
}

// EnvCaptureByName resolves the capture/restore pair matching
// EnvByName's environment: prefix-snapshot forking needs both to
// checkpoint and replay host state at entry-body boundaries. "plain"
// installs stateless hooks, so it captures nothing (nil pair, ok=true);
// unknown names return ok=false.
func EnvCaptureByName(name string) (capture func(c *sandbox.Container) (any, bool), restore func(c *sandbox.Container, state any) bool, ok bool) {
	switch name {
	case "", "kvclient":
		return CaptureEnv, RestoreEnv, true
	case "plain":
		return nil, nil, true
	default:
		return nil, nil, false
	}
}

// Transport behaviour constants.
const (
	// requestLatencyNS is the virtual time one HTTP request costs.
	requestLatencyNS = 2_000_000 // 2ms
	// contentionLatencyNS is the extra virtual latency per contention unit.
	contentionLatencyNS = 200_000_000 // 200ms
	// stallPermille is the per-request probability (out of 1000) that CPU
	// contention triggers a scheduling stall. A stall times out the
	// current request and the next stallBurst requests, so a client
	// api() call usually burns all of its retries at once and crashes
	// with UnboundLocalError — the dominant §V-C failure — while most
	// hog experiments stay benign (≈14/37 fail).
	stallPermille = 22
	// stallBurst is how many follow-up requests a stall swallows.
	stallBurst = 2
)

// envKey* are the container env-bag keys holding per-container state that
// must survive across workload rounds.
const (
	envKeyServer = "kvclient.server"
	envKeyClock  = "kvclient.clock"
	envKeyRNG    = "kvclient.rng"
	envKeyTracer = "kvclient.tracer"
	envKeyStall  = "kvclient.stall"
)

// stallState tracks an in-progress scheduling stall (see stallPermille).
type stallState struct {
	mu   sync.Mutex
	left int
}

// EnableTracing attaches a span recorder to a container; every transport
// request is then recorded for the failure visualization (§IV-D).
func EnableTracing(c *sandbox.Container) *trace.Recorder {
	rec := trace.NewRecorder()
	c.PutEnv(envKeyTracer, rec)
	return rec
}

// Tracer returns the container's span recorder, if tracing was enabled.
func Tracer(c *sandbox.Container) (*trace.Recorder, bool) {
	v, ok := c.GetEnv(envKeyTracer)
	if !ok {
		return nil, false
	}
	rec, ok := v.(*trace.Recorder)
	return rec, ok
}

// clockRef adapts the per-round interpreter's virtual clock into a
// container-lifetime monotonic clock (round 2 continues after round 1).
type clockRef struct {
	mu   sync.Mutex
	base int64
	it   *interp.Interp
}

// Now returns container virtual time in nanoseconds.
func (r *clockRef) Now() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.it == nil {
		return r.base
	}
	return r.base + r.it.Clock()
}

// attach switches the clock to a new interpreter, folding the previous
// interpreter's elapsed virtual time into the base.
func (r *clockRef) attach(it *interp.Interp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.it != nil {
		r.base += r.it.Clock()
	}
	r.it = it
}

// baseNS reads the folded-in base (prefix-state capture).
func (r *clockRef) baseNS() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base
}

// setBase overwrites the folded-in base (prefix-state restore; the
// attached interpreter's own clock is restored separately by Fork).
func (r *clockRef) setBase(ns int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.base = ns
}

// InstallEnv wires a fresh interpreter (one workload round) to a
// container: the etcd-like server, the urllib/osio/etcdsrv/logx host
// modules, the check() assertion builtin, and the fault hooks. Server
// and clock state persist across rounds within the same container.
func InstallEnv(it *interp.Interp, c *sandbox.Container) *kvstore.Server {
	sandbox.InstallHooks(it, c)

	var ref *clockRef
	if v, ok := c.GetEnv(envKeyClock); ok {
		ref = v.(*clockRef)
	} else {
		ref = &clockRef{}
		c.PutEnv(envKeyClock, ref)
	}
	ref.attach(it)

	var srv *kvstore.Server
	if v, ok := c.GetEnv(envKeyServer); ok {
		srv = v.(*kvstore.Server)
	} else {
		srv = kvstore.New(kvstore.Config{
			Now:        ref.Now,
			Contention: c.Contention,
			Seed:       c.Seed(),
			Log:        c.Log("server"),
		})
		c.PutEnv(envKeyServer, srv)
	}

	var rng *rand.Rand
	if v, ok := c.GetEnv(envKeyRNG); ok {
		rng = v.(*rand.Rand)
	} else {
		rng = rand.New(rand.NewSource(c.Seed() + 1))
		c.PutEnv(envKeyRNG, rng)
	}

	var stall *stallState
	if v, ok := c.GetEnv(envKeyStall); ok {
		stall = v.(*stallState)
	} else {
		stall = &stallState{}
		c.PutEnv(envKeyStall, stall)
	}

	it.RegisterModule(urllibModule(c, srv, rng, stall))
	it.RegisterModule(osioModule(c))
	it.RegisterModule(etcdsrvModule(srv))
	it.RegisterModule(logxModule(c))

	it.RegisterHostFunc("check", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		msg := "assertion failed"
		if len(args) > 1 {
			if s, ok := args[1].(string); ok {
				msg = s
			}
		}
		if len(args) == 0 || !interp.Truthy(args[0]) {
			return nil, throwExc(it, "AssertionError", msg)
		}
		return nil, nil
	})

	return srv
}

// throwExc raises an exception from host-module code.
func throwExc(it *interp.Interp, excType, msg string) error {
	return &interp.PanicError{Val: &interp.Exc{Type: excType, Msg: msg}}
}

// urllibModule is the HTTP transport between the interpreted client and
// the kvstore server — the injection target of campaign A.
func urllibModule(c *sandbox.Container, srv *kvstore.Server, rng *rand.Rand, stall *stallState) *interp.Module {
	m := interp.NewModule("urllib")
	m.Func("Request", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		var method, url interp.Value
		var params interp.Value
		if len(args) > 0 {
			method = args[0]
		}
		if len(args) > 1 {
			url = args[1]
		}
		if len(args) > 2 {
			params = args[2]
		}
		ms, ok := method.(string)
		if !ok {
			return nil, throwExc(it, "TypeError", "request method must be a string, not "+interp.TypeName(method))
		}
		if url == nil {
			return nil, throwExc(it, "AttributeError", "nil object has no attribute 'startswith'")
		}
		us, ok := url.(string)
		if !ok {
			return nil, throwExc(it, "TypeError", "request url must be a string, not "+interp.TypeName(url))
		}
		var pm *interp.Map
		if params != nil {
			pm, ok = params.(*interp.Map)
			if !ok {
				return nil, throwExc(it, "TypeError", "request params must be a map, not "+interp.TypeName(params))
			}
		}

		it.AdvanceClock(requestLatencyNS)
		if lvl := c.Contention(); lvl > 0 {
			it.AdvanceClock(int64(lvl) * contentionLatencyNS)
			stall.mu.Lock()
			stalled := false
			if stall.left > 0 {
				stall.left--
				stalled = true
			} else if rng.Intn(1000) < stallPermille {
				stall.left = stallBurst
				stalled = true
			}
			stall.mu.Unlock()
			if stalled {
				it.AdvanceClock(1_000_000_000)
				return nil, throwExc(it, "RequestTimeout", "connection timed out under load")
			}
		}

		path, err := urlPath(us)
		if err != nil {
			return nil, throwExc(it, "InvalidURL", err.Error())
		}
		startNS := it.Clock()
		out, rerr := route(it, srv, ms, path, pm)
		if rec, ok := Tracer(c); ok {
			span := trace.Span{
				Name: ms + " " + path, Component: "urllib",
				StartNS: startNS, EndNS: it.Clock(),
			}
			if rerr != nil {
				span.Err = rerr.Error()
			} else if obj, ok := out.(*interp.Object); ok {
				if st, ok := obj.Fields["Status"].(int64); ok && st >= 400 {
					span.Err = fmt.Sprintf("status %d", st)
				}
			}
			rec.Record(span)
		}
		return out, rerr
	})
	m.Func("Quote", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 || args[0] == nil {
			return nil, throwExc(it, "AttributeError", "nil object has no attribute 'startswith'")
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, throwExc(it, "TypeError", "Quote argument must be a string")
		}
		return strings.ReplaceAll(s, " ", "%20"), nil
	})
	return m
}

func urlPath(url string) (string, error) {
	i := strings.Index(url, "://")
	if i < 0 {
		return "", fmt.Errorf("malformed url: %s", url)
	}
	rest := url[i+3:]
	j := strings.IndexByte(rest, '/')
	if j < 0 {
		return "/", nil
	}
	return rest[j:], nil
}

// route dispatches a parsed request to the server API and converts the
// reply into a minigo Response object.
func route(it *interp.Interp, srv *kvstore.Server, method, path string, params *interp.Map) (interp.Value, error) {
	switch {
	case path == "/health":
		obj := newResponse(200, 0, "ok", "", 0)
		if getStr(params, "detail") == "true" {
			obj.Fields["Detail"] = "true"
		}
		return obj, nil
	case path == "/v2/stats/self":
		obj := newResponse(200, 0, "ok", "", 0)
		obj.Fields["Name"] = "etcd-sim"
		return obj, nil
	case path == "/v2/members":
		if method == "POST" || method == "PUT" {
			id := getStr(params, "id")
			if err := srv.RegisterMember(id); err != nil {
				return newResponse(500, kvstore.CodeRaftInternal, err.Error(), "", srv.Index()), nil
			}
			return newResponse(200, 0, "", "add", srv.Index()), nil
		}
		obj := newResponse(200, 0, "", "get", srv.Index())
		return obj, nil
	case strings.HasPrefix(path, "/v2/auth/users"):
		return newResponse(200, 0, "", "auth", srv.Index()), nil
	case strings.HasPrefix(path, "/v2/keys"):
		key := strings.TrimPrefix(path, "/v2/keys")
		if key == "" {
			key = "/"
		}
		req := kvstore.Request{Method: method, Key: key}
		req.Value = getStr(params, "value")
		if v := getVal(params, "prevValue"); v != nil {
			req.HasPrev = true
			if s, ok := v.(string); ok {
				req.PrevValue = s
			}
		}
		if getStr(params, "dir") == "true" {
			req.Dir = true
		}
		if getStr(params, "recursive") == "true" {
			req.Recursive = true
		}
		if ttl := getVal(params, "ttl"); ttl != nil {
			switch t := ttl.(type) {
			case int64:
				req.TTLSec = t
			case string:
				n, err := strconv.ParseInt(t, 10, 64)
				if err != nil {
					return newResponse(400, kvstore.CodeInvalidField, "Bad Request: invalid ttl", "", srv.Index()), nil
				}
				req.TTLSec = n
			default:
				return newResponse(400, kvstore.CodeInvalidField, "Bad Request: invalid ttl", "", srv.Index()), nil
			}
		}
		// prevExist=false emulates the lock recipe's create-only PUT.
		if method == "PUT" && getStr(params, "prevExist") == "false" {
			if probe := srv.Do(kvstore.Request{Method: "GET", Key: key}); probe.Status == 200 {
				return newResponse(412, kvstore.CodeNodeExist, "Node exist", "", srv.Index()), nil
			}
		}
		resp := srv.Do(req)
		return respToObject(resp), nil
	default:
		return newResponse(404, 0, "not found: "+path, "", srv.Index()), nil
	}
}

func newResponse(status int, code int, msg, action string, index int64) *interp.Object {
	obj := interp.NewObject("Response")
	obj.Fields["Status"] = int64(status)
	obj.Fields["ErrorCode"] = int64(code)
	obj.Fields["Message"] = msg
	obj.Fields["Action"] = action
	obj.Fields["Index"] = index
	obj.Fields["Node"] = nil
	obj.Fields["PrevNode"] = nil
	obj.Fields["Nodes"] = interp.NewList()
	return obj
}

func respToObject(r kvstore.Response) *interp.Object {
	obj := newResponse(r.Status, r.ErrorCode, r.Message, r.Action, r.Index)
	if r.Node != nil {
		obj.Fields["Node"] = nodeToObject(*r.Node)
	}
	if r.PrevNode != nil {
		obj.Fields["PrevNode"] = nodeToObject(*r.PrevNode)
	}
	nodes := interp.NewList()
	for _, n := range r.Nodes {
		nodes.Elems = append(nodes.Elems, nodeToObject(n))
	}
	obj.Fields["Nodes"] = nodes
	return obj
}

func nodeToObject(n kvstore.NodeInfo) *interp.Object {
	obj := interp.NewObject("Node")
	obj.Fields["Key"] = n.Key
	obj.Fields["Value"] = n.Value
	obj.Fields["Dir"] = n.Dir
	obj.Fields["TTL"] = n.TTL
	obj.Fields["Created"] = n.Created
	obj.Fields["Modified"] = n.Modified
	return obj
}

func getVal(m *interp.Map, key string) interp.Value {
	if m == nil {
		return nil
	}
	v, _ := m.Get(key)
	return v
}

func getStr(m *interp.Map, key string) string {
	v := getVal(m, key)
	if v == nil {
		return ""
	}
	if s, ok := v.(string); ok {
		return s
	}
	return interp.Repr(v)
}

// osioModule exposes file I/O over the container filesystem — the second
// injection target of campaign A (the paper's os module).
func osioModule(c *sandbox.Container) *interp.Module {
	m := interp.NewModule("osio")
	pathArg := func(it *interp.Interp, args []interp.Value) (string, error) {
		if len(args) == 0 || args[0] == nil {
			return "", throwExc(it, "AttributeError", "nil object has no attribute 'startswith'")
		}
		s, ok := args[0].(string)
		if !ok {
			return "", throwExc(it, "TypeError", "path must be a string, not "+interp.TypeName(args[0]))
		}
		return s, nil
	}
	m.Func("WriteFile", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		p, err := pathArg(it, args)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 || args[1] == nil {
			return nil, throwExc(it, "TypeError", "write data must be a string")
		}
		data, ok := args[1].(string)
		if !ok {
			return nil, throwExc(it, "TypeError", "write data must be a string, not "+interp.TypeName(args[1]))
		}
		it.AdvanceClock(1_000_000)
		c.FS.Write(p, []byte(data))
		return nil, nil
	})
	m.Func("AppendFile", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		p, err := pathArg(it, args)
		if err != nil {
			return nil, err
		}
		line := ""
		if len(args) > 1 {
			line = interp.Repr(args[1])
		}
		prev, _ := c.FS.Read(p)
		it.AdvanceClock(1_000_000)
		c.FS.Write(p, append(prev, []byte(line+"\n")...))
		return nil, nil
	})
	m.Func("ReadFile", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		p, err := pathArg(it, args)
		if err != nil {
			return nil, err
		}
		it.AdvanceClock(1_000_000)
		data, rerr := c.FS.Read(p)
		if rerr != nil {
			return nil, throwExc(it, "IOError", "no such file: "+p)
		}
		return string(data), nil
	})
	m.Func("Remove", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		p, err := pathArg(it, args)
		if err != nil {
			return nil, err
		}
		it.AdvanceClock(1_000_000)
		if rerr := c.FS.Remove(p); rerr != nil {
			return nil, throwExc(it, "IOError", "no such file: "+p)
		}
		return nil, nil
	})
	m.Func("Exists", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		p, err := pathArg(it, args)
		if err != nil {
			return nil, err
		}
		_, rerr := c.FS.Read(p)
		return rerr == nil, nil
	})
	return m
}

// etcdsrvModule lets the workload deploy and tear down the etcd server.
func etcdsrvModule(srv *kvstore.Server) *interp.Module {
	m := interp.NewModule("etcdsrv")
	m.Func("Start", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		it.AdvanceClock(500_000_000) // server boot: 0.5s
		if err := srv.Start(); err != nil {
			return nil, throwExc(it, "ServerStartError", err.Error())
		}
		return true, nil
	})
	m.Func("Stop", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		srv.Stop(true)
		return nil, nil
	})
	m.Func("Running", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		return srv.Running(), nil
	})
	return m
}

// logxModule gives target code per-component log streams (the input of
// the failure-logging and propagation analyses).
func logxModule(c *sandbox.Container) *interp.Module {
	m := interp.NewModule("logx")
	write := func(level string) func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		return func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
			if len(args) < 2 {
				return nil, throwExc(it, "TypeError", "logx takes component and message")
			}
			comp, _ := args[0].(string)
			if comp == "" {
				comp = "misc"
			}
			fmt.Fprintf(c.Log(comp), "%s %s\n", level, interp.Repr(args[1]))
			return nil, nil
		}
	}
	m.Func("Error", write("ERROR"))
	m.Func("Warn", write("WARN"))
	m.Func("Info", write("INFO"))
	return m
}
