package kvclient

import (
	"profipy/internal/kvstore"
	"profipy/internal/sandbox"
	"profipy/internal/trace"
)

// envState is the frozen form of the InstallEnv container environment at
// a prefix-snapshot boundary: the etcd-like server's datastore, the
// cross-round clock base and any recorded trace spans. The environment
// RNG and stall state are deliberately absent — both only advance under
// CPU contention, and the prefix driver refuses to snapshot contended
// prefixes, so a forked container's freshly seeded equivalents are in
// exactly the state a straight run's would be at the boundary.
type envState struct {
	server    *kvstore.ServerState
	clockBase int64
	hasTracer bool
	spans     []trace.Span
}

// CaptureEnv freezes the kvclient environment of a container for
// prefix-fork execution. It reports ok=false when the env bag holds
// anything it does not know how to capture faithfully.
func CaptureEnv(c *sandbox.Container) (any, bool) {
	for _, k := range c.EnvKeys() {
		switch k {
		case envKeyServer, envKeyClock, envKeyRNG, envKeyStall, envKeyTracer:
		default:
			return nil, false
		}
	}
	st := &envState{}
	if v, ok := c.GetEnv(envKeyServer); ok {
		srv, ok := v.(*kvstore.Server)
		if !ok {
			return nil, false
		}
		st.server = srv.CaptureState()
	}
	if v, ok := c.GetEnv(envKeyClock); ok {
		ref, ok := v.(*clockRef)
		if !ok {
			return nil, false
		}
		st.clockBase = ref.baseNS()
	}
	if rec, ok := Tracer(c); ok {
		st.hasTracer = true
		st.spans = rec.Spans()
	}
	return st, true
}

// RestoreEnv applies a CaptureEnv state to a freshly installed kvclient
// environment (InstallEnv must already have run for the round, so the
// server, clock and tracer objects to restore into exist). It reports
// ok=false on any shape mismatch; the caller then falls back to a full
// run.
func RestoreEnv(c *sandbox.Container, state any) bool {
	st, ok := state.(*envState)
	if !ok {
		return false
	}
	if st.server != nil {
		v, ok := c.GetEnv(envKeyServer)
		if !ok {
			return false
		}
		srv, ok := v.(*kvstore.Server)
		if !ok {
			return false
		}
		srv.RestoreState(st.server)
	}
	if v, ok := c.GetEnv(envKeyClock); ok {
		ref, ok := v.(*clockRef)
		if !ok {
			return false
		}
		ref.setBase(st.clockBase)
	}
	rec, traced := Tracer(c)
	if traced != st.hasTracer {
		// A fork must see exactly the spans a straight run would have
		// recorded over the prefix — tracing on one side only cannot.
		return false
	}
	if traced {
		for _, sp := range st.spans {
			rec.Record(sp)
		}
	}
	return true
}
