package kvclient

import "profipy/internal/faultmodel"

// CampaignAFaultload returns the faultload of §V-A (Table I, row 1):
// failures when calling external library APIs (the urllib and osio
// modules): thrown exceptions, omitted calls, omitted parameters.
func CampaignAFaultload() []faultmodel.Spec {
	return []faultmodel.Spec{
		{
			Name: "ext-throw-exception",
			Type: "ThrowException",
			Doc:  "Raise an exception at a call to an external library API",
			DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*,osio.*}(...)
} into {
	$PANIC{type=ConnectTimeoutError; msg=injected exception at external API call}
}`,
		},
		{
			Name: "ext-missing-call",
			Type: "MissingFunctionCall",
			Doc:  "Omit a fire-and-forget call to an external library API",
			DSL: `
change {
	$CALL{name=urllib.*,osio.*}(...)
} into {
}`,
		},
		{
			Name: "ext-missing-params",
			Type: "MissingParameters",
			Doc:  "Invoke an external API with trailing parameters omitted (defaults used instead)",
			DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.Request}($EXPR#m, $EXPR#u, $EXPR#p)
} into {
	$VAR#v := $CALL#c($EXPR#m, $EXPR#u)
}`,
		},
	}
}

// kvWriteNames are the client API methods taking (key, value, ...) input.
const kvWriteNames = "*.Set,*.SetWithTTL,*.TestAndSet,*.Update"

// kvKeyOnlyNames are the client API methods taking only a key.
const kvKeyOnlyNames = "*.Get,*.Delete,*.Ls"

// kvDirNames are the directory-oriented client API methods.
const kvDirNames = "*.Mkdir,*.Rmdir"

// kvAllNames covers every data-path client API method plus Health.
const kvAllNames = kvWriteNames + "," + kvKeyOnlyNames + "," + kvDirNames + ",*.Refresh,*.Health"

// CampaignBFaultload returns the faultload of §V-B (Table I, row 2):
// wrong inputs to the client API — string corruptions, nil values,
// negative integers. Each fault type has a statement-position variant
// (bare calls) and an assignment-position variant (result captured).
func CampaignBFaultload() []faultmodel.Spec {
	specs := []faultmodel.Spec{
		{
			Name: "input-corrupt-key/s", Type: "CorruptKey",
			Doc: "Corrupt the key argument of a client API call (bare call)",
			DSL: `
change {
	$CALL#c{name=` + kvWriteNames + "," + kvDirNames + `}($STRING#k, ...)
} into {
	$CALL#c($CORRUPT($STRING#k), ...)
}`,
		},
		{
			Name: "input-corrupt-key/a", Type: "CorruptKey",
			Doc: "Corrupt the key argument of a client API call (assigned result)",
			DSL: `
change {
	$VAR#r := $CALL#c{name=` + kvWriteNames + "," + kvDirNames + `}($STRING#k, ...)
} into {
	$VAR#r := $CALL#c($CORRUPT($STRING#k), ...)
}`,
		},
		{
			Name: "input-nil-value/s", Type: "NilValue",
			Doc: "Replace the value argument with nil (bare call)",
			DSL: `
change {
	$CALL#c{name=` + kvWriteNames + `}($STRING#k, $STRING#v, ...)
} into {
	$CALL#c($STRING#k, $NIL#v, ...)
}`,
		},
		{
			Name: "input-nil-value/a", Type: "NilValue",
			Doc: "Replace the value argument with nil (assigned result)",
			DSL: `
change {
	$VAR#r := $CALL#c{name=` + kvWriteNames + `}($STRING#k, $STRING#v, ...)
} into {
	$VAR#r := $CALL#c($STRING#k, $NIL#v, ...)
}`,
		},
		{
			Name: "input-corrupt-value/s", Type: "CorruptValue",
			Doc: "Corrupt the value argument of a client API call (bare call)",
			DSL: `
change {
	$CALL#c{name=` + kvWriteNames + `}($STRING#k, $STRING#v, ...)
} into {
	$CALL#c($STRING#k, $CORRUPT($STRING#v), ...)
}`,
		},
		{
			Name: "input-corrupt-value/a", Type: "CorruptValue",
			Doc: "Corrupt the value argument of a client API call (assigned result)",
			DSL: `
change {
	$VAR#r := $CALL#c{name=` + kvWriteNames + `}($STRING#k, $STRING#v, ...)
} into {
	$VAR#r := $CALL#c($STRING#k, $CORRUPT($STRING#v), ...)
}`,
		},
		{
			Name: "input-nil-key/s", Type: "NilKey",
			Doc: "Replace the key argument with nil (bare call)",
			DSL: `
change {
	$CALL#c{name=` + kvKeyOnlyNames + `}($STRING#k, ...)
} into {
	$CALL#c($NIL#k, ...)
}`,
		},
		{
			Name: "input-nil-key/a", Type: "NilKey",
			Doc: "Replace the key argument with nil (assigned result)",
			DSL: `
change {
	$VAR#r := $CALL#c{name=` + kvKeyOnlyNames + `}($STRING#k, ...)
} into {
	$VAR#r := $CALL#c($NIL#k, ...)
}`,
		},
		{
			Name: "input-negative-int/s", Type: "NegativeInteger",
			Doc: "Replace an integer argument with a negative value (bare call)",
			DSL: `
change {
	$CALL#c{name=*.SetWithTTL,*.Refresh}(..., $INT#t)
} into {
	$CALL#c(..., $CORRUPT($INT#t))
}`,
		},
		{
			Name: "input-negative-int/a", Type: "NegativeInteger",
			Doc: "Replace an integer argument with a negative value (assigned result)",
			DSL: `
change {
	$VAR#r := $CALL#c{name=*.SetWithTTL,*.Refresh}(..., $INT#t)
} into {
	$VAR#r := $CALL#c(..., $CORRUPT($INT#t))
}`,
		},
	}
	return specs
}

// CampaignRFaultload returns the mixed faultload of the runtime
// injection campaign: compile-time mutations (a §V-A style exception at
// external API calls) alongside runtime trigger/action faults that fire
// while the client runs — flaky I/O raised with probability ½, a
// wear-out failure after the 3rd activation, every-2nd return-value
// corruption and injected latency. Runtime experiments reuse the
// campaign's base compiled program unchanged (no per-experiment
// recompilation); compile-time ones mutate as usual, in one plan.
func CampaignRFaultload() []faultmodel.Spec {
	return []faultmodel.Spec{
		{
			Name: "ext-throw-exception",
			Type: "ThrowException",
			Doc:  "Compile-time: raise an exception at a call to an external library API",
			DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*,osio.*}(...)
} into {
	$PANIC{type=ConnectTimeoutError; msg=injected exception at external API call}
}`,
		},
		{
			Name: "rt-flaky-io",
			Type: "RuntimeFlakyIO",
			Doc:  "Runtime: a function calling the HTTP layer fails with probability 0.5 per activation",
			DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
} trigger {
	prob(0.5)
} action {
	raise(ConnectTimeoutError, "runtime fault: flaky connection")
}`,
		},
		{
			Name: "rt-wearout",
			Type: "RuntimeWearOut",
			Doc:  "Runtime: a function calling the HTTP layer wears out after its 3rd activation",
			DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
} trigger {
	after(3)
} action {
	raise(EtcdConnectionFailed, "runtime fault: connection pool exhausted")
}`,
		},
		{
			Name: "rt-corrupt-every-2nd",
			Type: "RuntimeCorrupt",
			Doc:  "Runtime: every 2nd return value of a key-normalizing function is bit-flipped",
			DSL: `
change {
	$VAR#v := $CALL#c{name=*.normalize,*.encode}(...)
} trigger {
	every(2)
} action {
	corrupt(bitflip)
}`,
		},
		{
			// The trigger/action spelling through the Spec fields (the
			// faultload fields the SaaS API and CLI expose) rather than
			// DSL clauses — both forms compile to the same fault.
			Name:    "rt-slow-dependency",
			Type:    "RuntimeLatency",
			Doc:     "Runtime: 30s of virtual latency per HTTP-layer activation (slow dependency)",
			Trigger: "always",
			Action:  "delay(30s)",
			DSL: `
change {
	$VAR#v := $CALL#c{name=urllib.*}(...)
}`,
		},
	}
}

// CampaignCFaultload returns the faultload of §V-C (Table I, row 3):
// resource management bugs — CPU hogs injected right after client API
// calls (stale threads generating high CPU load).
func CampaignCFaultload() []faultmodel.Spec {
	return []faultmodel.Spec{
		{
			Name: "hog-after-call/s", Type: "CPUHog",
			Doc: "Spawn a CPU hog after a client API call (bare call)",
			DSL: `
change {
	$CALL#c{name=` + kvAllNames + `}(...)
} into {
	$CALL#c
	$HOG{res=cpu; amount=1}
}`,
		},
		{
			Name: "hog-after-call/a", Type: "CPUHog",
			Doc: "Spawn a CPU hog after a client API call (assigned result)",
			DSL: `
change {
	$VAR#r := $CALL#c{name=` + kvAllNames + `}(...)
} into {
	$VAR#r := $CALL#c
	$HOG{res=cpu; amount=1}
}`,
		},
	}
}
