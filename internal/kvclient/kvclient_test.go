package kvclient

import (
	"strings"
	"testing"

	"profipy/internal/interp"
	"profipy/internal/plan"
	"profipy/internal/sandbox"
)

func newEnv(t *testing.T) (*sandbox.Container, *interp.Interp) {
	t.Helper()
	rt := sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: 2, Seed: 7})
	c := rt.Create(sandbox.Image{Name: "kv", Files: Sources()})
	it := interp.New(interp.Config{DeadlineNS: WorkloadTimeoutNS})
	InstallEnv(it, c)
	for _, f := range []string{FileClient, FileLock, FileAuth, FileWorkload} {
		src, err := c.FS.Read(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		if err := it.LoadSource(f, src); err != nil {
			t.Fatalf("load %s: %v", f, err)
		}
	}
	return c, it
}

func TestFaultFreeWorkloadSucceeds(t *testing.T) {
	_, it := newEnv(t)
	v, err := it.Call("Workload")
	if err != nil {
		t.Fatalf("Workload: %v", err)
	}
	if v != "ok" {
		t.Fatalf("Workload = %v, want ok", v)
	}
}

func TestClientBasicOperations(t *testing.T) {
	c, it := newEnv(t)
	srv := mustServer(t, c)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl, err := it.Call("NewClient", "http://127.0.0.1:2379", int64(3))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	obj, ok := cl.(*interp.Object)
	if !ok {
		t.Fatalf("NewClient returned %T", cl)
	}
	if connected, _ := obj.Fields["connected"].(bool); !connected {
		t.Fatal("client did not connect")
	}

	// Exercise the client through interpreted method dispatch.
	src := `package driver

func Drive(c any) any {
	c.Set("/x", "1")
	r := c.Get("/x")
	if r.Node.Value != "1" {
		throw("TestFailed", "read-back mismatch")
	}
	c.Delete("/x")
	return "done"
}`
	if err := it.LoadSource("driver.go", []byte(src)); err != nil {
		t.Fatalf("load driver: %v", err)
	}
	out, err := it.Call("Drive", cl)
	if err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if out != "done" {
		t.Fatalf("Drive = %v", out)
	}
}

func mustServer(t *testing.T, c *sandbox.Container) serverIface {
	t.Helper()
	v, ok := c.GetEnv("kvclient.server")
	if !ok {
		t.Fatal("server not installed")
	}
	srv, ok := v.(serverIface)
	if !ok {
		t.Fatal("unexpected server type")
	}
	return srv
}

type serverIface interface {
	Start() error
	Stop(clean bool)
	Running() bool
}

func TestCampaignPointCounts(t *testing.T) {
	// The scan-phase counts of the three §V campaigns. B and C match the
	// paper exactly (66 and 37); A is within one point of the paper's 26.
	tests := []struct {
		name  string
		files map[string][]byte
		specs int
		want  int
	}{
		{"A", ClientFiles(), len(CampaignAFaultload()), 27},
		{"B", WorkloadFiles(), len(CampaignBFaultload()), 66},
		{"C", WorkloadFiles(), len(CampaignCFaultload()), 37},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var p *plan.Plan
			var err error
			switch tc.name {
			case "A":
				p, err = plan.Build(tc.files, CampaignAFaultload())
			case "B":
				p, err = plan.Build(tc.files, CampaignBFaultload())
			case "C":
				p, err = plan.Build(tc.files, CampaignCFaultload())
			}
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if p.Len() != tc.want {
				t.Fatalf("points = %d, want %d", p.Len(), tc.want)
			}
		})
	}
}

func TestNilKeyRaisesAttributeError(t *testing.T) {
	c, it := newEnv(t)
	srv := mustServer(t, c)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl, err := it.Call("NewClient", "http://127.0.0.1:2379", int64(3))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	src := `package driver

func DriveNil(c any) any {
	return c.Get(nil)
}`
	if err := it.LoadSource("driver2.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	_, err = it.Call("DriveNil", cl)
	if err == nil || !strings.Contains(err.Error(), "AttributeError") {
		t.Fatalf("err = %v, want AttributeError (the §V-B nil-input failure)", err)
	}
}

func TestTracingRecordsSpans(t *testing.T) {
	rt := sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: 2, Seed: 9})
	c := rt.Create(sandbox.Image{Name: "kv", Files: Sources()})
	rec := EnableTracing(c)
	it := interp.New(interp.Config{DeadlineNS: WorkloadTimeoutNS})
	InstallEnv(it, c)
	for _, f := range []string{FileClient, FileLock, FileAuth, FileWorkload} {
		src, _ := c.FS.Read(f)
		if err := it.LoadSource(f, src); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := it.Call("Workload"); err != nil {
		t.Fatalf("Workload: %v", err)
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	spans := rec.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNS < spans[i-1].StartNS {
			t.Fatal("spans not ordered by start time")
		}
	}
}

func TestCorruptedValueRejectedByServer(t *testing.T) {
	c, it := newEnv(t)
	srv := mustServer(t, c)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl, err := it.Call("NewClient", "http://127.0.0.1:2379", int64(3))
	if err != nil {
		t.Fatal(err)
	}
	src := `package driver

func DriveBad(c any) any {
	return c.Set("/k\xff", "v")
}`
	if err := it.LoadSource("driver3.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	_, err = it.Call("DriveBad", cl)
	if err == nil || !strings.Contains(err.Error(), "400 Bad Request") {
		t.Fatalf("err = %v, want 400 Bad Request (the §V-B non-ASCII failure)", err)
	}
}
