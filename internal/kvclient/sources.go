// Package kvclient provides the software-under-test of the paper's case
// study (§V): client bindings for the etcd-like kvstore, written in the
// interpreted minigo subset — the analog of Python-etcd 0.4.5 — plus the
// workload derived from its integration tests, the host modules (urllib,
// osio, etcdsrv, logx) that connect interpreted code to the sandbox, and
// the three campaign faultloads of Table I.
//
// The client intentionally mirrors Python-etcd's failure-relevant
// behaviour: no sanitization of nil or non-ASCII inputs, a retry loop
// whose result variable is only assigned on success (the UnboundLocalError
// pattern), and member registration that corrupts the cluster when
// repeated.
package kvclient

// FileClient is the container path of the core client module.
const FileClient = "etcdclient/client.go"

// FileLock is the container path of the lock recipe module.
const FileLock = "etcdclient/lock.go"

// FileAuth is the container path of the auth module.
const FileAuth = "etcdclient/auth.go"

// FileWorkload is the container path of the workload program.
const FileWorkload = "workload/workload.go"

// ClientSource is the core client module (the primary injection target of
// campaign A).
const ClientSource = `package etcdclient

import "urllib"
import "osio"
import "strlib"
import "logx"

type Client struct{}

func NewClient(base string, retries int) any {
	c := &Client{base: base, retries: retries, connected: false,
		statePath: "/var/cache/etcd-client.state",
		auditPath: "/var/log/etcd-client.log",
		memberID:  "member-1"}
	c.connect()
	return c
}

func (c *Client) connect() any {
	if c.connected {
		return true
	}
	resp := urllib.Request("POST", c.base+"/v2/members", map[string]any{"id": c.memberID})
	if resp.Status != 200 {
		logx.Error("client", "cannot register member: "+resp.Message)
		throw("EtcdConnectionFailed", resp.Message)
	}
	verify := urllib.Request("GET", c.base+"/v2/members", nil)
	if verify.Status != 200 {
		logx.Error("client", "member list failed: "+verify.Message)
		throw("EtcdConnectionFailed", verify.Message)
	}
	osio.WriteFile(c.statePath, "connected")
	c.connected = true
	return true
}

func (c *Client) normalize(key string) any {
	if !strlib.HasPrefix(key, "/") {
		key = "/" + key
	}
	return key
}

func (c *Client) encode(value string) any {
	if value == nil {
		return ""
	}
	return strlib.Replace(value, "\n", " ")
}

func (c *Client) keysURL(key string) any {
	return c.base + "/v2/keys" + key
}

func (c *Client) api(method string, url string, params any) any {
	attempt := 0
	for attempt < c.retries {
		out := map[string]any{"resp": nil, "err": nil}
		c.tryOnce(out, method, url, params)
		if out["err"] == nil {
			result = out["resp"]
			break
		}
		logx.Error("client", "request failed (attempt "+str(attempt)+"): "+str(out["err"]))
		attempt = attempt + 1
	}
	return result
}

func (c *Client) tryOnce(out any, method string, url string, params any) any {
	defer c.captureErr(out)
	resp := urllib.Request(method, url, params)
	out["resp"] = resp
	return nil
}

func (c *Client) captureErr(out any) any {
	r := recover()
	if r != nil {
		out["err"] = r
	}
	return nil
}

func (c *Client) handleResponse(resp any) any {
	if resp.Status == 200 {
		return resp
	}
	if resp.ErrorCode == 100 {
		logx.Error("client", "key not found: "+resp.Message)
		throw("EtcdKeyNotFound", resp.Message)
	}
	if resp.ErrorCode == 101 {
		logx.Error("client", "compare failed: "+resp.Message)
		throw("EtcdCompareFailed", resp.Message)
	}
	if resp.Status == 400 {
		logx.Error("client", "bad request: "+resp.Message)
		throw("EtcdException", "Bad response: 400 Bad Request")
	}
	logx.Error("client", "bad response: "+str(resp.Status)+" "+resp.Message)
	throw("EtcdException", "Bad response: "+str(resp.Status))
	return nil
}

func (c *Client) Set(key string, value string) any {
	k := c.normalize(key)
	v := c.encode(value)
	resp := c.api("PUT", c.keysURL(k), map[string]any{"value": v})
	return c.handleResponse(resp)
}

func (c *Client) SetWithTTL(key string, value string, ttl int) any {
	k := c.normalize(key)
	v := c.encode(value)
	resp := c.api("PUT", c.keysURL(k), map[string]any{"value": v, "ttl": ttl})
	return c.handleResponse(resp)
}

func (c *Client) Get(key string) any {
	k := c.normalize(key)
	resp := c.api("GET", c.keysURL(k), nil)
	return c.handleResponse(resp)
}

func (c *Client) Delete(key string) any {
	k := c.normalize(key)
	resp := c.api("DELETE", c.keysURL(k), nil)
	return c.handleResponse(resp)
}

func (c *Client) TestAndSet(key string, value string, old string) any {
	k := c.normalize(key)
	v := c.encode(value)
	resp := c.api("PUT", c.keysURL(k), map[string]any{"value": v, "prevValue": old})
	return c.handleResponse(resp)
}

func (c *Client) Update(key string, value string) any {
	k := c.normalize(key)
	v := c.encode(value)
	resp := c.api("PUT", c.keysURL(k), map[string]any{"value": v})
	return c.handleResponse(resp)
}

func (c *Client) Mkdir(path string) any {
	k := c.normalize(path)
	resp := c.api("PUT", c.keysURL(k), map[string]any{"dir": "true"})
	return c.handleResponse(resp)
}

func (c *Client) Ls(path string) any {
	k := c.normalize(path)
	resp := c.api("GET", c.keysURL(k), map[string]any{"recursive": "true"})
	return c.handleResponse(resp)
}

func (c *Client) Rmdir(path string, recursive bool) any {
	k := c.normalize(path)
	params := map[string]any{}
	if recursive {
		params["recursive"] = "true"
	}
	resp := c.api("DELETE", c.keysURL(k), params)
	return c.handleResponse(resp)
}

func (c *Client) Refresh(key string, ttl int) any {
	k := c.normalize(key)
	cur := c.Get(k)
	resp := c.api("PUT", c.keysURL(k), map[string]any{"value": cur.Node.Value, "ttl": ttl})
	return c.handleResponse(resp)
}

func (c *Client) Health() any {
	resp := urllib.Request("GET", c.base+"/health", map[string]any{"detail": "true"})
	if resp.Status != 200 {
		return false
	}
	return resp.Detail == "true"
}

func (c *Client) Stats() any {
	resp := urllib.Request("GET", c.base+"/v2/stats/self", nil)
	if resp.Status != 200 {
		throw("EtcdException", "stats unavailable")
	}
	return resp
}

func (c *Client) LoadState() any {
	data := osio.ReadFile(c.statePath)
	return data
}

func (c *Client) Close() any {
	osio.Remove(c.statePath)
	osio.AppendFile(c.auditPath, "client closed")
	c.connected = false
	return nil
}
`

// LockSource is the distributed-lock recipe module (partially covered by
// the workload, like Python-etcd's lock module).
const LockSource = `package etcdclient

import "urllib"
import "osio"
import "logx"

type Lock struct{}

func NewLock(c any, name string) any {
	return &Lock{client: c, name: name, held: false}
}

func (l *Lock) Acquire(owner string) any {
	c := l.client
	resp := urllib.Request("PUT", c.base+"/v2/keys/_locks/"+l.name,
		map[string]any{"value": owner, "prevExist": "false"})
	if resp.Status != 200 {
		logx.Error("lock", "acquire failed: "+resp.Message)
		throw("LockFailed", resp.Message)
	}
	if resp.Node.Value != owner {
		logx.Error("lock", "acquire race: owner mismatch")
		throw("LockFailed", "owner mismatch after acquire")
	}
	osio.WriteFile("/var/run/lock-"+l.name, owner)
	l.held = true
	return true
}

func (l *Lock) Release() any {
	c := l.client
	resp := urllib.Request("DELETE", c.base+"/v2/keys/_locks/"+l.name, map[string]any{})
	if resp.Status != 200 {
		logx.Error("lock", "release failed: "+resp.Message)
		throw("LockFailed", resp.Message)
	}
	osio.Remove("/var/run/lock-" + l.name)
	if osio.Exists("/var/run/lock-" + l.name) {
		logx.Error("lock", "lock file leaked")
		throw("LockLeaked", "lock file still present after release")
	}
	l.held = false
	return true
}
`

// AuthSource is the auth/users module (not covered by the workload; its
// injection points are the ones coverage analysis prunes).
const AuthSource = `package etcdclient

import "urllib"
import "osio"
import "logx"

type Auth struct{}

func NewAuth(c any) any {
	return &Auth{client: c}
}

func (a *Auth) ListUsers() any {
	c := a.client
	resp := urllib.Request("GET", c.base+"/v2/auth/users", nil)
	if resp.Status != 200 {
		logx.Error("auth", "list users failed: "+resp.Message)
		throw("EtcdException", resp.Message)
	}
	return resp.Nodes
}

func (a *Auth) AddUser(name string, password string) any {
	c := a.client
	resp := urllib.Request("PUT", c.base+"/v2/auth/users/"+name, map[string]any{"password": password})
	if resp.Status != 200 {
		logx.Error("auth", "add user failed: "+resp.Message)
		throw("EtcdException", resp.Message)
	}
	return true
}

func (a *Auth) RemoveUser(name string) any {
	c := a.client
	resp := urllib.Request("DELETE", c.base+"/v2/auth/users/"+name, nil)
	if resp.Status != 200 {
		logx.Error("auth", "remove user failed: "+resp.Message)
		throw("EtcdException", resp.Message)
	}
	return true
}

func (a *Auth) SaveToken(token string) any {
	osio.WriteFile("/etc/etcd/token", token)
	return nil
}
`

// WorkloadSource is the workload program derived from the client's
// integration tests: it deploys the etcd server, uploads and queries
// key-value pairs of different kinds (directories, sub-keys, TTLs, CAS),
// and checks consistency with assertions (§V). Each test case runs under
// a recover guard so one failing case does not abort the run; the server
// is stopped cleanly at the end (leaving the port bound when the workload
// crashes earlier — the reconnection-failure mode).
const WorkloadSource = `package workload

import "etcdsrv"
import "logx"

func Workload() any {
	etcdsrv.Start()
	c := NewClient("http://127.0.0.1:2379", 3)
	probe := c.Get("/")
	if probe.Status != 200 {
		throw("WorkloadSetupFailed", "probe of key space root failed")
	}
	ready := c.Health()
	if ready != true {
		throw("WorkloadSetupFailed", "server not healthy at startup")
	}

	failed := 0
	failed = failed + runCase("basic", caseBasic, c)
	failed = failed + runCase("dirs", caseDirs, c)
	failed = failed + runCase("ttl", caseTTL, c)
	failed = failed + runCase("cas", caseCAS, c)
	failed = failed + runCase("update", caseUpdate, c)
	failed = failed + runCase("subkeys", caseSubKeys, c)
	failed = failed + runCase("push", casePushMetrics, c)
	failed = failed + runCase("health", caseHealth, c)
	failed = failed + runCase("lock", caseLock, c)
	failed = failed + runCase("cleanup", caseCleanup, c)

	final := c.Health()
	if final != true {
		failed = failed + 1
		logx.Error("workload", "server unhealthy at shutdown")
	}
	etcdsrv.Stop()
	if failed > 0 {
		logx.Error("workload", str(failed)+" test cases failed")
		throw("WorkloadFailed", str(failed)+" test cases failed")
	}
	return "ok"
}

func runCase(name string, fn any, c any) any {
	status := map[string]any{"failed": 0}
	runProtected(status, name, fn, c)
	return status["failed"]
}

func runProtected(status any, name string, fn any, c any) any {
	defer noteFailure(status, name)
	fn(c)
	return nil
}

func noteFailure(status any, name string) any {
	r := recover()
	if r != nil {
		logx.Error("workload", "case "+name+" failed: "+str(r))
		status["failed"] = 1
	}
	return nil
}

func caseBasic(c any) any {
	c.Set("/app/name", "demo")
	r := c.Get("/app/name")
	check(r.Node.Value == "demo", "basic: read-back mismatch")
	c.Delete("/app/name")
	return nil
}

func caseDirs(c any) any {
	c.Mkdir("/cfg")
	c.Set("/cfg/a", "1")
	c.Set("/cfg/b", "2")
	ls := c.Ls("/cfg")
	check(len(ls.Nodes) == 2, "dirs: expected two children")
	c.Rmdir("/cfg", true)
	return nil
}

func caseTTL(c any) any {
	c.SetWithTTL("/tmp/session", "tok", 30)
	r := c.Get("/tmp/session")
	check(r.Node.TTL > 0, "ttl: missing ttl on node")
	c.Refresh("/tmp/session", 60)
	return nil
}

func caseCAS(c any) any {
	c.Set("/cas/slot", "old")
	c.TestAndSet("/cas/slot", "new", "old")
	r := c.Get("/cas/slot")
	check(r.Node.Value == "new", "cas: value not swapped")
	c.TestAndSet("/cas/slot", "final", "new")
	return nil
}

func caseUpdate(c any) any {
	c.Set("/upd/x", "one")
	c.Update("/upd/x", "two")
	r := c.Get("/upd/x")
	check(r.Node.Value == "two", "update: value not updated")
	return nil
}

func caseSubKeys(c any) any {
	c.Set("/deep/a/b/c", "leaf")
	r := c.Get("/deep/a/b/c")
	check(r.Node.Value == "leaf", "subkeys: deep read-back mismatch")
	ls := c.Ls("/deep")
	check(len(ls.Nodes) > 0, "subkeys: deep listing empty")
	return nil
}

func casePushMetrics(c any) any {
	c.Set("/metrics/cpu", "12")
	c.Set("/metrics/mem", "934")
	c.Set("/metrics/io", "77")
	c.Set("/heartbeat/node-1", "alive")
	r := c.Get("/metrics/cpu")
	check(r.Status == 200, "push: metrics unreadable")
	return nil
}

func caseHealth(c any) any {
	h := c.Health()
	check(h == true, "health: server reports unhealthy")
	again := c.Health()
	check(again == true, "health: second probe failed")
	return nil
}

func caseLock(c any) any {
	l := NewLock(c, "job-42")
	l.Acquire("worker-a")
	l.Release()
	return nil
}

func caseCleanup(c any) any {
	c.Set("/gc/temp1", "x")
	c.Set("/gc/temp2", "y")
	c.Delete("/gc/temp1")
	c.Delete("/gc/temp2")
	r := c.Ls("/gc")
	check(len(r.Nodes) == 0, "cleanup: keys leaked")
	c.Delete("/heartbeat/node-1")
	return nil
}
`

// LateWorkloadSource is the late-site workload variant: a long
// ingest-and-verify prefix on the core client, with lock and auth
// traffic only in the final stretch of the round. Scanning the lock and
// auth modules against it yields injection sites that are first reached
// after ~90% of the round — the scenario where prefix-snapshot fork
// execution approaches its ceiling (round 2 still runs in full), and
// the one BENCH_exec.json's fork on/off row measures.
const LateWorkloadSource = `package workload

import "etcdsrv"
import "logx"

func Workload() any {
	etcdsrv.Start()
	c := NewClient("http://127.0.0.1:2379", 3)
	ready := c.Health()
	if ready != true {
		throw("WorkloadSetupFailed", "server not healthy at startup")
	}

	i := 0
	for i < 48 {
		key := "/bulk/item-" + str(i)
		c.Set(key, "payload-"+str(i))
		got := c.Get(key)
		if got.Node.Value != "payload-"+str(i) {
			throw("WorkloadFailed", "ingest mismatch at "+key)
		}
		i = i + 1
	}
	listing := c.Ls("/bulk")
	if len(listing.Nodes) != 48 {
		throw("WorkloadFailed", "ingest incomplete: "+str(len(listing.Nodes)))
	}

	sweep := 0
	for sweep < 3 {
		i = 0
		for i < 48 {
			key := "/bulk/item-" + str(i)
			got := c.Get(key)
			if got.Node.Value != "payload-"+str(i) {
				throw("WorkloadFailed", "stale read at "+key)
			}
			i = i + 1
		}
		sweep = sweep + 1
	}

	locks := 0
	for locks < 3 {
		l := NewLock(c, "job-"+str(locks))
		l.Acquire("worker-" + str(locks))
		l.Release()
		locks = locks + 1
	}

	a := NewAuth(c)
	a.AddUser("operator", "hunter2")
	a.ListUsers()
	a.SaveToken("tok-operator")
	a.RemoveUser("operator")

	final := c.Health()
	if final != true {
		logx.Error("workload", "server unhealthy at shutdown")
	}
	etcdsrv.Stop()
	return "ok"
}
`

// Sources returns all target files (client modules + workload), keyed by
// container path.
func Sources() map[string][]byte {
	return map[string][]byte{
		FileClient:   []byte(ClientSource),
		FileLock:     []byte(LockSource),
		FileAuth:     []byte(AuthSource),
		FileWorkload: []byte(WorkloadSource),
	}
}

// ClientFiles returns just the client library files (campaign A's scan
// target).
func ClientFiles() map[string][]byte {
	return map[string][]byte{
		FileClient: []byte(ClientSource),
		FileLock:   []byte(LockSource),
		FileAuth:   []byte(AuthSource),
	}
}

// WorkloadFiles returns just the workload file (campaign B/C's scan
// target).
func WorkloadFiles() map[string][]byte {
	return map[string][]byte{
		FileWorkload: []byte(WorkloadSource),
	}
}

// Components maps component names (for the failure-propagation analysis)
// to their source files.
func Components() map[string][]string {
	return map[string][]string{
		"client":   {FileClient},
		"lock":     {FileLock},
		"auth":     {FileAuth},
		"workload": {FileWorkload},
	}
}
