package kvstore

import (
	"fmt"
	"io"
	"math/rand"
)

// Request is an etcd-v2-style API request, as produced by the client's
// HTTP layer (the urllib transport host module).
type Request struct {
	Method    string // GET, PUT, POST, DELETE
	Key       string
	Value     string
	PrevValue string // compare-and-swap guard ("" = unconditional)
	HasPrev   bool
	TTLSec    int64
	Dir       bool
	Recursive bool
}

// Response is the server's reply, mirroring the etcd v2 JSON body plus the
// HTTP status code.
type Response struct {
	Status    int        `json:"status"`
	Action    string     `json:"action,omitempty"`
	Node      *NodeInfo  `json:"node,omitempty"`
	PrevNode  *NodeInfo  `json:"prevNode,omitempty"`
	Nodes     []NodeInfo `json:"nodes,omitempty"`
	ErrorCode int        `json:"errorCode,omitempty"`
	Message   string     `json:"message,omitempty"`
	Index     int64      `json:"index"`
}

// Config parameterises a Server.
type Config struct {
	// Now returns the current virtual time in nanoseconds (for TTLs).
	Now func() int64
	// Contention returns the current CPU contention level (0 = idle);
	// levels >= 1 enable stale reads, modelling the race conditions the
	// resource-hog campaign provokes (§V-C).
	Contention func() int
	// Seed drives the deterministic stale-read choice.
	Seed int64
	// Log receives server-side error log lines; nil discards them.
	Log io.Writer
}

// Server is the in-memory etcd-like server.
type Server struct {
	cfg   Config
	store *store
	rng   *rand.Rand

	bound        bool
	running      bool
	bootstrapped bool
	inconsistent bool
	memberID     string
}

// New creates a stopped server.
func New(cfg Config) *Server {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return 0 }
	}
	if cfg.Contention == nil {
		cfg.Contention = func() int { return 0 }
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return &Server{cfg: cfg, store: newStore(), rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Start binds the server port and boots the member. It fails when the
// port is still bound from a previous run that was never cleanly stopped
// (the "reconnection failure" mode of §V-A) or when the member state was
// corrupted (the "member has already been bootstrapped" mode).
func (s *Server) Start() error {
	if s.inconsistent {
		s.logf("ERROR member has already been bootstrapped")
		return fmt.Errorf("member has already been bootstrapped")
	}
	if s.bound {
		s.logf("ERROR bind: address already in use")
		return fmt.Errorf("bind: address already in use")
	}
	// Each start is a fresh deployment with an empty datastore; what
	// persists across runs is OS- and cluster-level state (the bound
	// port, the member registration).
	s.store = newStore()
	s.bound = true
	s.running = true
	s.bootstrapped = true
	return nil
}

// Stop shuts the server down. A clean stop releases the port; an unclean
// stop (client crash, experiment timeout) leaves it bound.
func (s *Server) Stop(clean bool) {
	s.running = false
	if clean {
		s.bound = false
		// The member deregisters on clean shutdown, so a later run can
		// register again without corrupting the cluster.
		s.memberID = ""
	}
}

// Running reports whether the server is serving requests.
func (s *Server) Running() bool { return s.running }

// Bound reports whether the TCP port is held.
func (s *Server) Bound() bool { return s.bound }

// Inconsistent reports whether the member state was corrupted.
func (s *Server) Inconsistent() bool { return s.inconsistent }

// RegisterMember adds a cluster member. Registering a member that already
// exists corrupts the cluster state permanently (until the container is
// torn down), reproducing the paper's bootstrap failure mode.
func (s *Server) RegisterMember(id string) error {
	if id == "" {
		s.inconsistent = true
		s.logf("ERROR invalid member id")
		return fmt.Errorf("invalid member id")
	}
	if s.memberID == id {
		s.inconsistent = true
		s.logf("ERROR member %s has already been bootstrapped", id)
		return fmt.Errorf("member has already been bootstrapped")
	}
	if s.memberID == "" {
		s.memberID = id
	}
	return nil
}

// Do serves one API request.
func (s *Server) Do(req Request) Response {
	now := s.cfg.Now()
	if !s.running {
		s.logf("ERROR connection refused (server not running)")
		return Response{Status: 503, ErrorCode: CodeRaftInternal, Message: "connection refused"}
	}
	if s.inconsistent {
		s.logf("ERROR member has already been bootstrapped")
		return Response{Status: 500, ErrorCode: CodeRaftInternal, Message: "member has already been bootstrapped"}
	}

	key, err := normalize(req.Key)
	if err != nil {
		s.logf("ERROR 400 Bad Request: %v", err)
		return Response{Status: 400, ErrorCode: CodeInvalidField, Message: "Bad Request: " + err.Error()}
	}
	if req.Method == "PUT" && !asciiOK(req.Value) {
		s.logf("ERROR 400 Bad Request: invalid value")
		return Response{Status: 400, ErrorCode: CodeInvalidField, Message: "Bad Request: invalid value"}
	}

	switch req.Method {
	case "GET":
		return s.doGet(key, req, now)
	case "PUT":
		return s.doPut(key, req, now)
	case "DELETE":
		return s.doDelete(key, req, now)
	default:
		s.logf("ERROR 405 method not allowed: %s", req.Method)
		return Response{Status: 405, Message: "method not allowed"}
	}
}

func (s *Server) doGet(key string, req Request, now int64) Response {
	n := s.store.lookup(key, now)
	if n == nil {
		return Response{Status: 404, ErrorCode: CodeKeyNotFound, Message: "Key not found", Index: s.store.index}
	}
	info := n.info(now)
	// Under CPU contention reads may observe the previous value — the
	// deterministic analog of the races the hog campaign triggered.
	if !n.dir && s.cfg.Contention() > 0 && n.prevValue != n.value && s.rng.Intn(6) == 0 {
		s.logf("WARN stale read of %s under contention", key)
		info.Value = n.prevValue
	}
	resp := Response{Status: 200, Action: "get", Node: &info, Index: s.store.index}
	if n.dir && req.Recursive || n.dir {
		for _, c := range n.sortedChildren() {
			resp.Nodes = append(resp.Nodes, c.info(now))
		}
	}
	return resp
}

func (s *Server) doPut(key string, req Request, now int64) Response {
	if key == "/" {
		return Response{Status: 403, ErrorCode: CodeRootReadOnly, Message: "Root is read only"}
	}
	parent, err := s.store.ensureDirs(key, now)
	if err != nil {
		s.logf("ERROR not a directory for %s", key)
		return Response{Status: 400, ErrorCode: CodeNotADir, Message: "Not a directory"}
	}
	name := leafName(key)
	existing := parent.children[name]
	if existing != nil && existing.expireNS > 0 && now >= existing.expireNS {
		delete(parent.children, name)
		existing = nil
	}

	if req.HasPrev {
		if existing == nil {
			return Response{Status: 404, ErrorCode: CodeKeyNotFound, Message: "Key not found", Index: s.store.index}
		}
		if existing.dir {
			return Response{Status: 403, ErrorCode: CodeNotAFile, Message: "Not a file"}
		}
		if existing.value != req.PrevValue {
			s.logf("WARN compare failed on %s", key)
			return Response{
				Status: 412, ErrorCode: CodeCompareFailed,
				Message: fmt.Sprintf("Compare failed ([%s != %s])", req.PrevValue, existing.value),
				Index:   s.store.index,
			}
		}
	}
	if existing != nil && existing.dir && !req.Dir {
		return Response{Status: 403, ErrorCode: CodeNotAFile, Message: "Not a file"}
	}
	if req.Dir && existing != nil {
		return Response{Status: 403, ErrorCode: CodeNodeExist, Message: "Node exist"}
	}
	if req.TTLSec < 0 {
		s.logf("ERROR invalid negative ttl for %s", key)
		return Response{Status: 400, ErrorCode: CodeInvalidField, Message: "Bad Request: invalid ttl"}
	}

	s.store.index++
	action := "set"
	var prev *NodeInfo
	n := existing
	if n == nil {
		n = &node{key: key, created: s.store.index}
		if req.Dir {
			n.dir = true
			n.children = map[string]*node{}
		}
		// A freshly created node has no older version to read stale.
		n.prevValue = req.Value
		parent.children[name] = n
		action = "create"
	} else {
		pi := n.info(now)
		prev = &pi
		n.prevValue = n.value
	}
	n.value = req.Value
	n.modified = s.store.index
	if req.TTLSec > 0 {
		n.expireNS = now + req.TTLSec*1_000_000_000
	} else {
		n.expireNS = 0
	}
	info := n.info(now)
	return Response{Status: 200, Action: action, Node: &info, PrevNode: prev, Index: s.store.index}
}

func (s *Server) doDelete(key string, req Request, now int64) Response {
	if key == "/" {
		return Response{Status: 403, ErrorCode: CodeRootReadOnly, Message: "Root is read only"}
	}
	parent, err := s.store.ensureDirs(key, now)
	if err != nil {
		return Response{Status: 400, ErrorCode: CodeNotADir, Message: "Not a directory"}
	}
	name := leafName(key)
	n, ok := parent.children[name]
	if !ok || (n.expireNS > 0 && now >= n.expireNS) {
		delete(parent.children, name)
		return Response{Status: 404, ErrorCode: CodeKeyNotFound, Message: "Key not found", Index: s.store.index}
	}
	if n.dir && len(n.children) > 0 && !req.Recursive {
		return Response{Status: 403, ErrorCode: CodeDirNotEmpty, Message: "Directory not empty"}
	}
	s.store.index++
	pi := n.info(now)
	delete(parent.children, name)
	return Response{Status: 200, Action: "delete", PrevNode: &pi, Index: s.store.index}
}

// Index returns the current modification index.
func (s *Server) Index() int64 { return s.store.index }

func (s *Server) logf(format string, args ...any) {
	fmt.Fprintf(s.cfg.Log, "[etcd-server] "+format+"\n", args...)
}

func asciiOK(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x09 || s[i] > 0x7e {
			return false
		}
	}
	return true
}
