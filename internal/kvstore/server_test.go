package kvstore

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func newRunning(t *testing.T) *Server {
	t.Helper()
	s := New(Config{})
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s
}

func TestSetGetDelete(t *testing.T) {
	s := newRunning(t)
	resp := s.Do(Request{Method: "PUT", Key: "/a", Value: "1"})
	if resp.Status != 200 || resp.Action != "create" {
		t.Fatalf("put = %+v", resp)
	}
	resp = s.Do(Request{Method: "GET", Key: "/a"})
	if resp.Status != 200 || resp.Node == nil || resp.Node.Value != "1" {
		t.Fatalf("get = %+v", resp)
	}
	resp = s.Do(Request{Method: "DELETE", Key: "/a"})
	if resp.Status != 200 || resp.Action != "delete" {
		t.Fatalf("delete = %+v", resp)
	}
	resp = s.Do(Request{Method: "GET", Key: "/a"})
	if resp.Status != 404 || resp.ErrorCode != CodeKeyNotFound {
		t.Fatalf("get after delete = %+v", resp)
	}
}

func TestUpdateReportsPrevNode(t *testing.T) {
	s := newRunning(t)
	s.Do(Request{Method: "PUT", Key: "/a", Value: "1"})
	resp := s.Do(Request{Method: "PUT", Key: "/a", Value: "2"})
	if resp.Action != "set" || resp.PrevNode == nil || resp.PrevNode.Value != "1" {
		t.Fatalf("update = %+v", resp)
	}
}

func TestDirectoriesAndSubKeys(t *testing.T) {
	s := newRunning(t)
	s.Do(Request{Method: "PUT", Key: "/dir/x", Value: "1"})
	s.Do(Request{Method: "PUT", Key: "/dir/y", Value: "2"})
	resp := s.Do(Request{Method: "GET", Key: "/dir"})
	if resp.Status != 200 || !resp.Node.Dir || len(resp.Nodes) != 2 {
		t.Fatalf("ls = %+v", resp)
	}
	if resp.Nodes[0].Key != "/dir/x" || resp.Nodes[1].Key != "/dir/y" {
		t.Fatalf("children = %+v (want sorted)", resp.Nodes)
	}
	// Setting a value over a directory must fail.
	resp = s.Do(Request{Method: "PUT", Key: "/dir", Value: "z"})
	if resp.Status != 403 || resp.ErrorCode != CodeNotAFile {
		t.Fatalf("put over dir = %+v", resp)
	}
	// Deleting a non-empty dir requires recursive.
	resp = s.Do(Request{Method: "DELETE", Key: "/dir"})
	if resp.ErrorCode != CodeDirNotEmpty {
		t.Fatalf("delete non-empty = %+v", resp)
	}
	resp = s.Do(Request{Method: "DELETE", Key: "/dir", Recursive: true})
	if resp.Status != 200 {
		t.Fatalf("recursive delete = %+v", resp)
	}
}

func TestMkdirConflict(t *testing.T) {
	s := newRunning(t)
	if resp := s.Do(Request{Method: "PUT", Key: "/d", Dir: true}); resp.Status != 200 {
		t.Fatalf("mkdir = %+v", resp)
	}
	if resp := s.Do(Request{Method: "PUT", Key: "/d", Dir: true}); resp.ErrorCode != CodeNodeExist {
		t.Fatalf("mkdir again = %+v", resp)
	}
}

func TestTTLExpiryOnVirtualClock(t *testing.T) {
	now := int64(0)
	s := New(Config{Now: func() int64 { return now }})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Do(Request{Method: "PUT", Key: "/tmp", Value: "v", TTLSec: 5})
	if resp := s.Do(Request{Method: "GET", Key: "/tmp"}); resp.Status != 200 {
		t.Fatalf("get before expiry = %+v", resp)
	}
	now = 6_000_000_000
	if resp := s.Do(Request{Method: "GET", Key: "/tmp"}); resp.Status != 404 {
		t.Fatalf("get after expiry = %+v", resp)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := newRunning(t)
	s.Do(Request{Method: "PUT", Key: "/k", Value: "old"})
	resp := s.Do(Request{Method: "PUT", Key: "/k", Value: "new", PrevValue: "wrong", HasPrev: true})
	if resp.Status != 412 || resp.ErrorCode != CodeCompareFailed {
		t.Fatalf("cas mismatch = %+v", resp)
	}
	resp = s.Do(Request{Method: "PUT", Key: "/k", Value: "new", PrevValue: "old", HasPrev: true})
	if resp.Status != 200 {
		t.Fatalf("cas = %+v", resp)
	}
	if resp := s.Do(Request{Method: "GET", Key: "/k"}); resp.Node.Value != "new" {
		t.Fatalf("after cas = %+v", resp)
	}
	// CAS on a missing key reports key-not-found.
	resp = s.Do(Request{Method: "PUT", Key: "/nope", Value: "x", PrevValue: "y", HasPrev: true})
	if resp.ErrorCode != CodeKeyNotFound {
		t.Fatalf("cas missing = %+v", resp)
	}
}

func TestBadRequestOnNonASCII(t *testing.T) {
	s := newRunning(t)
	resp := s.Do(Request{Method: "PUT", Key: "/k\xff", Value: "v"})
	if resp.Status != 400 {
		t.Fatalf("non-ascii key = %+v", resp)
	}
	resp = s.Do(Request{Method: "PUT", Key: "/k", Value: "v\xc3\x28"})
	if resp.Status != 400 {
		t.Fatalf("non-ascii value = %+v", resp)
	}
	if resp := s.Do(Request{Method: "PUT", Key: "", Value: "v"}); resp.Status != 400 {
		t.Fatalf("empty key = %+v", resp)
	}
}

func TestNegativeTTLRejected(t *testing.T) {
	s := newRunning(t)
	resp := s.Do(Request{Method: "PUT", Key: "/k", Value: "v", TTLSec: -3})
	if resp.Status != 400 {
		t.Fatalf("negative ttl = %+v", resp)
	}
}

func TestPortLeakOnUncleanStop(t *testing.T) {
	s := newRunning(t)
	s.Stop(false) // crash: port stays bound
	if err := s.Start(); err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Fatalf("restart after crash = %v, want bind failure", err)
	}
	// A clean stop releases the port.
	s2 := newRunning(t)
	s2.Stop(true)
	if err := s2.Start(); err != nil {
		t.Fatalf("restart after clean stop: %v", err)
	}
}

func TestMemberBootstrapCorruption(t *testing.T) {
	s := newRunning(t)
	if err := s.RegisterMember("m1"); err != nil {
		t.Fatalf("first register: %v", err)
	}
	if err := s.RegisterMember("m1"); err == nil {
		t.Fatal("duplicate register must fail")
	}
	if !s.Inconsistent() {
		t.Fatal("duplicate register must corrupt member state")
	}
	resp := s.Do(Request{Method: "GET", Key: "/a"})
	if resp.Status != 500 || !strings.Contains(resp.Message, "bootstrapped") {
		t.Fatalf("op on inconsistent member = %+v", resp)
	}
	s.Stop(true)
	if err := s.Start(); err == nil {
		t.Fatal("restart of inconsistent member must fail")
	}
}

func TestRequestsRefusedWhenStopped(t *testing.T) {
	s := New(Config{})
	resp := s.Do(Request{Method: "GET", Key: "/a"})
	if resp.Status != 503 {
		t.Fatalf("stopped server = %+v", resp)
	}
}

func TestStaleReadsUnderContention(t *testing.T) {
	level := 0
	s := New(Config{Contention: func() int { return level }, Seed: 42})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Do(Request{Method: "PUT", Key: "/k", Value: "v1"})
	s.Do(Request{Method: "PUT", Key: "/k", Value: "v2"})

	// Without contention reads are always fresh.
	for i := 0; i < 20; i++ {
		if resp := s.Do(Request{Method: "GET", Key: "/k"}); resp.Node.Value != "v2" {
			t.Fatalf("fresh read = %+v", resp)
		}
	}
	// Under contention some reads return the previous value.
	level = 2
	stale := 0
	for i := 0; i < 50; i++ {
		if resp := s.Do(Request{Method: "GET", Key: "/k"}); resp.Node.Value == "v1" {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("expected stale reads under contention")
	}
}

func TestServerLogCapturesErrors(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{Log: &buf})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Do(Request{Method: "PUT", Key: "/bad\xff", Value: "v"})
	if !strings.Contains(buf.String(), "400 Bad Request") {
		t.Fatalf("log = %q, want 400 entry", buf.String())
	}
}

func TestNormalizeProperties(t *testing.T) {
	// Property: normalized keys always start with "/" and contain no "//",
	// or normalization fails.
	prop := func(key string) bool {
		norm, err := normalize(key)
		if err != nil {
			return true
		}
		return strings.HasPrefix(norm, "/") && !strings.Contains(norm, "//")
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// Property: normalization is idempotent.
	idem := func(key string) bool {
		a, err := normalize(key)
		if err != nil {
			return true
		}
		b, err := normalize(a)
		return err == nil && a == b
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexMonotonicallyIncreases(t *testing.T) {
	s := newRunning(t)
	last := s.Index()
	for i := 0; i < 10; i++ {
		s.Do(Request{Method: "PUT", Key: "/k", Value: strings.Repeat("x", i+1)})
		if s.Index() <= last {
			t.Fatalf("index did not advance: %d <= %d", s.Index(), last)
		}
		last = s.Index()
	}
}
