package kvstore

// ServerState is a frozen copy of a server's datastore and lifecycle
// flags, captured at a prefix-snapshot boundary. It is immutable after
// capture and may be restored into any number of forked servers. The
// RNG is deliberately not part of the state: the stale-read RNG only
// draws under CPU contention, and the prefix driver refuses to snapshot
// contended prefixes, so a fork's freshly seeded RNG is provably in the
// same (undrawn) state as the straight run's at the boundary.
type ServerState struct {
	root         *node
	index        int64
	bound        bool
	running      bool
	bootstrapped bool
	inconsistent bool
	memberID     string
}

// CaptureState deep-copies the server's datastore and lifecycle flags.
func (s *Server) CaptureState() *ServerState {
	return &ServerState{
		root:         s.store.root.clone(),
		index:        s.store.index,
		bound:        s.bound,
		running:      s.running,
		bootstrapped: s.bootstrapped,
		inconsistent: s.inconsistent,
		memberID:     s.memberID,
	}
}

// RestoreState replaces the server's datastore and lifecycle flags with
// a deep copy of the captured state (the state itself stays pristine for
// further restores). Configuration and RNG are untouched.
func (s *Server) RestoreState(st *ServerState) {
	s.store = &store{root: st.root.clone(), index: st.index}
	s.bound = st.bound
	s.running = st.running
	s.bootstrapped = st.bootstrapped
	s.inconsistent = st.inconsistent
	s.memberID = st.memberID
}

// clone deep-copies a keyspace subtree.
func (n *node) clone() *node {
	if n == nil {
		return nil
	}
	nn := &node{
		key:       n.key,
		value:     n.value,
		prevValue: n.prevValue,
		dir:       n.dir,
		created:   n.created,
		modified:  n.modified,
		expireNS:  n.expireNS,
	}
	if n.children != nil {
		nn.children = make(map[string]*node, len(n.children))
		for k, c := range n.children {
			nn.children[k] = c.clone()
		}
	}
	return nn
}
