// Package kvstore implements the etcd-like key-value server substrate that
// plays the role of the etcd datastore in the paper's case study (§V).
//
// It models the behaviours the fault injection campaigns depend on:
// hierarchical keys with directories and TTLs, compare-and-swap, HTTP-style
// status/error codes (400 Bad Request on non-ASCII input, 404/100 on
// missing keys, 412/101 on failed compares), port-binding state that leaks
// when a client crashes before cleanup, member-bootstrap state that can be
// corrupted into a "member has already been bootstrapped" condition, and
// stale reads under CPU contention (the resource-hog campaign).
package kvstore

import (
	"fmt"
	"sort"
	"strings"
)

// Error codes mirroring the etcd v2 API.
const (
	CodeKeyNotFound   = 100
	CodeCompareFailed = 101
	CodeNotAFile      = 102
	CodeNotADir       = 104
	CodeNodeExist     = 105
	CodeRootReadOnly  = 107
	CodeDirNotEmpty   = 108
	CodeInvalidField  = 209
	CodeRaftInternal  = 300
)

// node is one entry in the hierarchical keyspace.
type node struct {
	key       string
	value     string
	prevValue string
	dir       bool
	children  map[string]*node
	created   int64
	modified  int64
	expireNS  int64 // virtual-clock expiry; 0 = no TTL
}

func newDir(key string, index int64) *node {
	return &node{key: key, dir: true, children: map[string]*node{}, created: index, modified: index}
}

// NodeInfo is the externally visible form of a node.
type NodeInfo struct {
	Key      string `json:"key"`
	Value    string `json:"value,omitempty"`
	Dir      bool   `json:"dir,omitempty"`
	TTL      int64  `json:"ttl,omitempty"`
	Created  int64  `json:"createdIndex"`
	Modified int64  `json:"modifiedIndex"`
}

// store is the keyspace with TTL handling on a virtual clock.
type store struct {
	root  *node
	index int64
}

func newStore() *store {
	return &store{root: newDir("/", 0)}
}

// normalize validates and canonicalises a key. Non-ASCII or empty keys are
// rejected — the source of the paper's "400 Bad Request" failure mode.
func normalize(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("empty key")
	}
	for i := 0; i < len(key); i++ {
		if key[i] < 0x20 || key[i] > 0x7e {
			return "", fmt.Errorf("invalid character in key")
		}
	}
	if !strings.HasPrefix(key, "/") {
		key = "/" + key
	}
	for strings.Contains(key, "//") {
		key = strings.ReplaceAll(key, "//", "/")
	}
	if key != "/" {
		key = strings.TrimSuffix(key, "/")
	}
	return key, nil
}

func splitKey(key string) []string {
	if key == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(key, "/"), "/")
}

// lookup walks to a node, pruning expired entries against now.
func (s *store) lookup(key string, now int64) *node {
	cur := s.root
	for _, part := range splitKey(key) {
		if !cur.dir {
			return nil
		}
		next, ok := cur.children[part]
		if !ok {
			return nil
		}
		if next.expireNS > 0 && now >= next.expireNS {
			delete(cur.children, part)
			return nil
		}
		cur = next
	}
	return cur
}

// ensureDirs walks to the parent of key, creating intermediate dirs.
func (s *store) ensureDirs(key string, now int64) (*node, error) {
	parts := splitKey(key)
	if len(parts) == 0 {
		return nil, fmt.Errorf("root")
	}
	cur := s.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur.children[part]
		if ok && next.expireNS > 0 && now >= next.expireNS {
			delete(cur.children, part)
			ok = false
		}
		if !ok {
			s.index++
			next = newDir(cur.key+"/"+part, s.index)
			if cur.key == "/" {
				next.key = "/" + part
			}
			cur.children[part] = next
		}
		if !next.dir {
			return nil, fmt.Errorf("not a directory: %s", next.key)
		}
		cur = next
	}
	return cur, nil
}

func leafName(key string) string {
	parts := splitKey(key)
	if len(parts) == 0 {
		return ""
	}
	return parts[len(parts)-1]
}

func (n *node) info(now int64) NodeInfo {
	ttl := int64(0)
	if n.expireNS > 0 {
		ttl = (n.expireNS - now) / 1_000_000_000
		if ttl < 1 {
			ttl = 1
		}
	}
	return NodeInfo{Key: n.key, Value: n.value, Dir: n.dir, TTL: ttl, Created: n.created, Modified: n.modified}
}

func (n *node) sortedChildren() []*node {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*node, 0, len(names))
	for _, name := range names {
		out = append(out, n.children[name])
	}
	return out
}
