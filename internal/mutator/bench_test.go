package mutator_test

import (
	"testing"

	"profipy/internal/dsl"
	"profipy/internal/faultmodel"
	"profipy/internal/genproject"
	"profipy/internal/mutator"
	"profipy/internal/pattern"
	"profipy/internal/scanner"
)

// benchTarget builds a realistic single-file mutation workload: one
// generated ~500-line file, an MFC-style spec, and its first injection
// point.
func benchTarget(b *testing.B) (string, []byte, *pattern.MetaModel, scanner.InjectionPoint) {
	b.Helper()
	files := genproject.Generate(genproject.Config{Files: 1, FuncsPerFile: 20, StmtsPerFunc: 10, Seed: 7})
	var name string
	var src []byte
	for n, s := range files {
		name, src = n, s
	}
	mm, err := dsl.Compile("mfc", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=compute_*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	if err != nil {
		b.Fatal(err)
	}
	pts, err := scanner.ScanSource(name, src, []*pattern.MetaModel{mm})
	if err != nil {
		b.Fatal(err)
	}
	if len(pts) == 0 {
		b.Fatal("no injection points in generated corpus")
	}
	return name, src, mm, pts[0]
}

// BenchmarkMutateCached measures one experiment's mutation cost when the
// campaign parse cache is warm: ApplyParsed re-establishes the match and
// splices the rendered replacement into the source bytes, with no parse
// and no whole-file re-print. Compare against BenchmarkMutateFresh (the
// per-experiment cost before the cache; the committed baseline ran
// ~682µs/op and 3230 allocs/op on the kvclient target).
func BenchmarkMutateCached(b *testing.B) {
	name, src, mm, pt := benchTarget(b)
	pf, err := scanner.ParseFileOnce(name, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mutator.ApplyParsed(pf, mm, pt, mutator.Options{Triggered: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutateFresh is the uncached path: every experiment re-parses
// its target file from scratch, as the engine did before the campaign
// parse cache.
func BenchmarkMutateFresh(b *testing.B) {
	name, src, mm, pt := benchTarget(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mutator.Apply(name, src, mm, pt, mutator.Options{Triggered: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentCached measures coverage instrumentation of a whole
// file from a warm parse (text insertion at cached offsets).
func BenchmarkInstrumentCached(b *testing.B) {
	files := genproject.Generate(genproject.Config{Files: 1, FuncsPerFile: 20, StmtsPerFunc: 10, Seed: 7})
	var name string
	var src []byte
	for n, s := range files {
		name, src = n, s
	}
	models, err := faultmodel.CompileAll(genproject.Patterns(24))
	if err != nil {
		b.Fatal(err)
	}
	pts, err := scanner.ScanSource(name, src, models)
	if err != nil {
		b.Fatal(err)
	}
	pf, err := scanner.ParseFileOnce(name, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mutator.InstrumentParsed(pf, pts); err != nil {
			b.Fatal(err)
		}
	}
}
