package mutator

import (
	"bytes"
	"strings"
	"testing"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
	"profipy/internal/scanner"
)

// TestApplyParsedMatchesApply: the cached path and the parse-per-call path
// must produce identical mutated sources.
func TestApplyParsedMatchesApply(t *testing.T) {
	mm, pts := compileAndScan(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	pf, err := scanner.ParseFileOnce("client.go", []byte(target))
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {Triggered: true}} {
		fresh, err := Apply("client.go", []byte(target), mm, pts[0], opts)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		cached, err := ApplyParsed(pf, mm, pts[0], opts)
		if err != nil {
			t.Fatalf("ApplyParsed: %v", err)
		}
		if !bytes.Equal(fresh.Source, cached.Source) {
			t.Errorf("triggered=%v: cached and fresh mutation differ:\n--- fresh\n%s\n--- cached\n%s",
				opts.Triggered, fresh.Source, cached.Source)
		}
	}
}

// TestApplyParsedIsReadOnly: the same cached parse serves many experiments
// (concurrently, in a real campaign), so applying a mutation must not
// disturb the shared AST — a second application of the same point yields
// byte-identical output, and other points still resolve.
func TestApplyParsedIsReadOnly(t *testing.T) {
	mm, err := dsl.Compile("calls", `
change {
	$CALL{name=Delete*}(...)
} into {
}`)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := scanner.ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	pf, err := scanner.ParseFileOnce("client.go", []byte(target))
	if err != nil {
		t.Fatal(err)
	}
	first, err := ApplyParsed(pf, mm, pts[0], Options{Triggered: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := ApplyParsed(pf, mm, pts[0], Options{Triggered: true})
	if err != nil {
		t.Fatalf("second application on shared parse: %v", err)
	}
	if !bytes.Equal(first.Source, second.Source) {
		t.Error("repeated application on a shared parse must be idempotent")
	}
	if !bytes.Equal(pf.Src, []byte(target)) {
		t.Error("shared source bytes were mutated")
	}
}

// TestApplyParsedPreservesSurroundingBytes: text outside the mutated
// statement window survives byte-for-byte (the splice touches only the
// window), so unrelated formatting and content cannot drift per
// experiment.
func TestApplyParsedPreservesSurroundingBytes(t *testing.T) {
	mm, pts := compileAndScan(t, "WPF", `
change {
	$CALL#c{name=utils.Execute}(..., $STRING#s{val=*-*}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := string(res.Source)
	// Everything before the mutated function's body line is untouched.
	head := target[:strings.Index(target, "func Provision")]
	if !strings.HasPrefix(out, head) {
		t.Error("bytes before the mutation window changed")
	}
	if !strings.HasSuffix(out, "teardown(c)\n}\n") {
		t.Errorf("bytes after the mutation window changed:\n%s", out)
	}
}

// TestInstrumentParsedKeepsLineNumbers: hooks are inserted on the target
// statement's own line, so the instrumented file reports the same line
// numbers as the original — coverage output stays comparable to the plan.
func TestInstrumentParsedKeepsLineNumbers(t *testing.T) {
	mm, err := dsl.Compile("calls", `
change {
	$CALL{name=*}(...)
} into {
}`)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := scanner.ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := Instrument("client.go", []byte(target), pts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bytes.Count(instr, []byte("\n")), bytes.Count([]byte(target), []byte("\n")); got != want {
		t.Errorf("instrumented line count = %d, want %d (hooks must not add lines)", got, want)
	}
	if got := bytes.Count(instr, []byte(HookCover+"(")); got != len(pts) {
		t.Errorf("hooks = %d, want %d", got, len(pts))
	}
}

// TestApplyZeroWidthPoint: a pattern that consumes no statements (a
// 0-minimum block) produces N=0 injection points; applying one is a pure
// insertion before the statement at Start, not a panic (regression: the
// first text-splice implementation indexed an empty window).
func TestApplyZeroWidthPoint(t *testing.T) {
	mm, err := dsl.Compile("zw", `
change {
	$BLOCK{stmts=0,0}
} into {
	injected()
}`)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := scanner.ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || pts[0].N != 0 {
		t.Fatalf("expected zero-width points, got %+v", pts)
	}
	for _, opts := range []Options{{}, {Triggered: true}} {
		res, err := Apply("client.go", []byte(target), mm, pts[0], opts)
		if err != nil {
			t.Fatalf("triggered=%v: %v", opts.Triggered, err)
		}
		out := string(res.Source)
		if !strings.Contains(out, "injected()") {
			t.Errorf("triggered=%v: insertion missing:\n%s", opts.Triggered, out)
		}
		if !strings.Contains(out, "prepare(c)") {
			t.Errorf("triggered=%v: statement at Start must survive:\n%s", opts.Triggered, out)
		}
		if _, err := scanner.ScanSource("client.go", res.Source, nil); err != nil {
			t.Errorf("triggered=%v: mutated source does not parse: %v\n%s", opts.Triggered, err, out)
		}
	}
}

func TestInstrumentParsedRejectsForeignPoint(t *testing.T) {
	pf, err := scanner.ParseFileOnce("client.go", []byte(target))
	if err != nil {
		t.Fatal(err)
	}
	bad := scanner.InjectionPoint{Spec: "x", File: "other.go"}
	if _, err := InstrumentParsed(pf, []scanner.InjectionPoint{bad}); err == nil {
		t.Error("point from another file must be rejected")
	}
	stale := scanner.InjectionPoint{Spec: "x", File: "client.go", ListIndex: 99}
	if _, err := InstrumentParsed(pf, []scanner.InjectionPoint{stale}); err == nil {
		t.Error("stale list index must be rejected")
	}
}
