package mutator

import (
	"fmt"
	"go/ast"
)

// clonePlainExpr deep-copies a target-program expression with all
// positions zeroed. Bound nodes are cloned before being spliced into a
// replacement so the same subtree never appears twice in the output AST.
func clonePlainExpr(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Ident:
		return ast.NewIdent(x.Name)
	case *ast.BasicLit:
		return &ast.BasicLit{Kind: x.Kind, Value: x.Value}
	case *ast.SelectorExpr:
		return &ast.SelectorExpr{X: clonePlainExpr(x.X), Sel: ast.NewIdent(x.Sel.Name)}
	case *ast.CallExpr:
		return &ast.CallExpr{Fun: clonePlainExpr(x.Fun), Args: clonePlainExprs(x.Args)}
	case *ast.BinaryExpr:
		return &ast.BinaryExpr{X: clonePlainExpr(x.X), Op: x.Op, Y: clonePlainExpr(x.Y)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, X: clonePlainExpr(x.X)}
	case *ast.ParenExpr:
		return &ast.ParenExpr{X: clonePlainExpr(x.X)}
	case *ast.IndexExpr:
		return &ast.IndexExpr{X: clonePlainExpr(x.X), Index: clonePlainExpr(x.Index)}
	case *ast.SliceExpr:
		return &ast.SliceExpr{
			X: clonePlainExpr(x.X), Low: clonePlainExpr(x.Low),
			High: clonePlainExpr(x.High), Max: clonePlainExpr(x.Max), Slice3: x.Slice3,
		}
	case *ast.StarExpr:
		return &ast.StarExpr{X: clonePlainExpr(x.X)}
	case *ast.KeyValueExpr:
		return &ast.KeyValueExpr{Key: clonePlainExpr(x.Key), Value: clonePlainExpr(x.Value)}
	case *ast.CompositeLit:
		return &ast.CompositeLit{Type: clonePlainExpr(x.Type), Elts: clonePlainExprs(x.Elts)}
	case *ast.FuncLit:
		return &ast.FuncLit{Type: cloneFuncType(x.Type), Body: clonePlainBlock(x.Body)}
	case *ast.ArrayType:
		return &ast.ArrayType{Len: clonePlainExpr(x.Len), Elt: clonePlainExpr(x.Elt)}
	case *ast.MapType:
		return &ast.MapType{Key: clonePlainExpr(x.Key), Value: clonePlainExpr(x.Value)}
	case *ast.InterfaceType:
		return &ast.InterfaceType{Methods: &ast.FieldList{}}
	case *ast.Ellipsis:
		return &ast.Ellipsis{Elt: clonePlainExpr(x.Elt)}
	case *ast.TypeAssertExpr:
		return &ast.TypeAssertExpr{X: clonePlainExpr(x.X), Type: clonePlainExpr(x.Type)}
	default:
		// Unknown node kinds are returned as-is; they will print with
		// their original positions, which is harmless for single use.
		return e
	}
}

func clonePlainExprs(es []ast.Expr) []ast.Expr {
	if es == nil {
		return nil
	}
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		out[i] = clonePlainExpr(e)
	}
	return out
}

func cloneFuncType(ft *ast.FuncType) *ast.FuncType {
	if ft == nil {
		return nil
	}
	return &ast.FuncType{Params: cloneFieldList(ft.Params), Results: cloneFieldList(ft.Results)}
}

func cloneFieldList(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		nf := &ast.Field{Type: clonePlainExpr(f.Type)}
		for _, n := range f.Names {
			nf.Names = append(nf.Names, ast.NewIdent(n.Name))
		}
		out.List = append(out.List, nf)
	}
	return out
}

func clonePlainBlock(b *ast.BlockStmt) *ast.BlockStmt {
	if b == nil {
		return nil
	}
	return &ast.BlockStmt{List: clonePlainStmts(b.List)}
}

func clonePlainStmts(list []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, len(list))
	for i, s := range list {
		out[i] = clonePlainStmt(s)
	}
	return out
}

// clonePlainStmt deep-copies a target-program statement.
func clonePlainStmt(s ast.Stmt) ast.Stmt {
	if s == nil {
		return nil
	}
	switch x := s.(type) {
	case *ast.ExprStmt:
		return &ast.ExprStmt{X: clonePlainExpr(x.X)}
	case *ast.AssignStmt:
		return &ast.AssignStmt{Lhs: clonePlainExprs(x.Lhs), Tok: x.Tok, Rhs: clonePlainExprs(x.Rhs)}
	case *ast.ReturnStmt:
		return &ast.ReturnStmt{Results: clonePlainExprs(x.Results)}
	case *ast.IfStmt:
		return &ast.IfStmt{
			Init: clonePlainStmt(x.Init), Cond: clonePlainExpr(x.Cond),
			Body: clonePlainBlock(x.Body), Else: clonePlainStmt(x.Else),
		}
	case *ast.BlockStmt:
		return clonePlainBlock(x)
	case *ast.ForStmt:
		return &ast.ForStmt{
			Init: clonePlainStmt(x.Init), Cond: clonePlainExpr(x.Cond),
			Post: clonePlainStmt(x.Post), Body: clonePlainBlock(x.Body),
		}
	case *ast.RangeStmt:
		return &ast.RangeStmt{
			Key: clonePlainExpr(x.Key), Value: clonePlainExpr(x.Value),
			Tok: x.Tok, X: clonePlainExpr(x.X), Body: clonePlainBlock(x.Body),
		}
	case *ast.BranchStmt:
		ns := &ast.BranchStmt{Tok: x.Tok}
		if x.Label != nil {
			ns.Label = ast.NewIdent(x.Label.Name)
		}
		return ns
	case *ast.DeferStmt:
		call, _ := clonePlainExpr(x.Call).(*ast.CallExpr)
		return &ast.DeferStmt{Call: call}
	case *ast.GoStmt:
		call, _ := clonePlainExpr(x.Call).(*ast.CallExpr)
		return &ast.GoStmt{Call: call}
	case *ast.IncDecStmt:
		return &ast.IncDecStmt{X: clonePlainExpr(x.X), Tok: x.Tok}
	case *ast.SwitchStmt:
		body := &ast.BlockStmt{}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				body.List = append(body.List, &ast.CaseClause{
					List: clonePlainExprs(cc.List), Body: clonePlainStmts(cc.Body),
				})
			}
		}
		return &ast.SwitchStmt{Init: clonePlainStmt(x.Init), Tag: clonePlainExpr(x.Tag), Body: body}
	case *ast.LabeledStmt:
		return &ast.LabeledStmt{Label: ast.NewIdent(x.Label.Name), Stmt: clonePlainStmt(x.Stmt)}
	case *ast.EmptyStmt:
		return &ast.EmptyStmt{}
	case *ast.DeclStmt:
		return x // var decls are rare inside windows; reuse is acceptable
	default:
		return s
	}
}

// mustCall asserts that an expression is a call; used when expanding
// $CALL tag references.
func mustCall(e ast.Expr) (*ast.CallExpr, error) {
	c, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, fmt.Errorf("mutator: bound node is not a call expression")
	}
	return c, nil
}
