package mutator

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"

	"profipy/internal/pattern"
)

// Runtime hook names inserted by replacement directives. The sandbox
// registers these as host builtins in the interpreted target program.
const (
	HookTrigger = "__fault_enabled"
	HookCorrupt = "__corrupt"
	HookHog     = "__hog"
	HookDelay   = "__delay"
	HookExc     = "__exc"
	HookCover   = "__cover"
)

// expander instantiates a meta-model's replacement template against the
// bindings captured by a match.
type expander struct {
	mm *pattern.MetaModel
	b  pattern.Bindings
}

// expandStmts expands a replacement statement list; block-directive
// placeholders splice multiple statements.
func (x *expander) expandStmts(list []ast.Stmt) ([]ast.Stmt, error) {
	out := make([]ast.Stmt, 0, len(list))
	for _, s := range list {
		ex, err := x.expandStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ex...)
	}
	return out, nil
}

func (x *expander) expandStmt(s ast.Stmt) ([]ast.Stmt, error) {
	// Bare directive in statement position.
	if es, ok := s.(*ast.ExprStmt); ok {
		if d := x.mm.HoleFor(es.X); d != nil {
			return x.expandStmtDirective(d)
		}
	}
	one, err := x.expandSingleStmt(s)
	if err != nil {
		return nil, err
	}
	return []ast.Stmt{one}, nil
}

func (x *expander) expandStmtDirective(d *pattern.Directive) ([]ast.Stmt, error) {
	switch d.Kind {
	case pattern.KindBlock, pattern.KindAny:
		bound, ok := x.b[d.Tag]
		if !ok {
			return nil, fmt.Errorf("mutator: replacement $%s references unbound tag %q", d.Kind, d.Tag)
		}
		return clonePlainStmts(bound.Stmts), nil
	case pattern.KindCall:
		call, err := x.expandCallRef(d)
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{&ast.ExprStmt{X: call}}, nil
	case pattern.KindCorrupt, pattern.KindHog, pattern.KindTimeout, pattern.KindPanic, pattern.KindNil:
		e, err := x.expandDirectiveExpr(d)
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{&ast.ExprStmt{X: e}}, nil
	default:
		return nil, fmt.Errorf("mutator: directive $%s cannot appear in statement position of a replacement", d.Kind)
	}
}

// expandExpr expands a replacement expression template.
func (x *expander) expandExpr(e ast.Expr) (ast.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if d := x.mm.HoleFor(e); d != nil {
		return x.expandDirectiveExpr(d)
	}
	switch n := e.(type) {
	case *ast.Ident:
		return ast.NewIdent(n.Name), nil
	case *ast.BasicLit:
		return &ast.BasicLit{Kind: n.Kind, Value: n.Value}, nil
	case *ast.SelectorExpr:
		xe, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &ast.SelectorExpr{X: xe, Sel: ast.NewIdent(n.Sel.Name)}, nil
	case *ast.CallExpr:
		fun, err := x.expandExpr(n.Fun)
		if err != nil {
			return nil, err
		}
		args, err := x.expandExprs(n.Args)
		if err != nil {
			return nil, err
		}
		return &ast.CallExpr{Fun: fun, Args: args}, nil
	case *ast.BinaryExpr:
		xe, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		ye, err := x.expandExpr(n.Y)
		if err != nil {
			return nil, err
		}
		return &ast.BinaryExpr{X: xe, Op: n.Op, Y: ye}, nil
	case *ast.UnaryExpr:
		xe, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: n.Op, X: xe}, nil
	case *ast.ParenExpr:
		xe, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &ast.ParenExpr{X: xe}, nil
	case *ast.IndexExpr:
		xe, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		idx, err := x.expandExpr(n.Index)
		if err != nil {
			return nil, err
		}
		return &ast.IndexExpr{X: xe, Index: idx}, nil
	case *ast.CompositeLit:
		elts, err := x.expandExprs(n.Elts)
		if err != nil {
			return nil, err
		}
		typ, err := x.expandExpr(n.Type)
		if err != nil {
			return nil, err
		}
		return &ast.CompositeLit{Type: typ, Elts: elts}, nil
	case *ast.KeyValueExpr:
		k, err := x.expandExpr(n.Key)
		if err != nil {
			return nil, err
		}
		v, err := x.expandExpr(n.Value)
		if err != nil {
			return nil, err
		}
		return &ast.KeyValueExpr{Key: k, Value: v}, nil
	default:
		return clonePlainExpr(e), nil
	}
}

func (x *expander) expandExprs(es []ast.Expr) ([]ast.Expr, error) {
	if es == nil {
		return nil, nil
	}
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		var err error
		out[i], err = x.expandExpr(e)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (x *expander) expandDirectiveExpr(d *pattern.Directive) (ast.Expr, error) {
	switch d.Kind {
	case pattern.KindNil:
		return ast.NewIdent("nil"), nil
	case pattern.KindCorrupt:
		args, err := x.expandDirectiveArgs(d)
		if err != nil {
			return nil, err
		}
		return hookCall(HookCorrupt, args...), nil
	case pattern.KindHog:
		if d.HasArgs {
			args, err := x.expandDirectiveArgs(d)
			if err != nil {
				return nil, err
			}
			return hookCall(HookHog, args...), nil
		}
		res := attrOr(d, "res", "cpu")
		amount := attrOr(d, "amount", "1")
		return hookCall(HookHog, strLit(res), intLit(amount)), nil
	case pattern.KindTimeout:
		if d.HasArgs {
			args, err := x.expandDirectiveArgs(d)
			if err != nil {
				return nil, err
			}
			return hookCall(HookDelay, args...), nil
		}
		return hookCall(HookDelay, intLit(attrOr(d, "ms", "1000"))), nil
	case pattern.KindPanic:
		if d.HasArgs {
			args, err := x.expandDirectiveArgs(d)
			if err != nil {
				return nil, err
			}
			return hookCall("panic", hookCall(HookExc, args...)), nil
		}
		excType := attrOr(d, "type", "Error")
		msg := attrOr(d, "msg", "injected fault")
		return hookCall("panic", hookCall(HookExc, strLit(excType), strLit(msg))), nil
	case pattern.KindCall:
		return x.expandCallRef(d)
	case pattern.KindExpr, pattern.KindVar, pattern.KindString, pattern.KindInt, pattern.KindAny:
		bound, ok := x.b[d.Tag]
		if !ok || bound.Expr == nil {
			return nil, fmt.Errorf("mutator: replacement $%s references unbound tag %q", d.Kind, d.Tag)
		}
		return clonePlainExpr(bound.Expr), nil
	default:
		return nil, fmt.Errorf("mutator: directive $%s cannot appear in expression position of a replacement", d.Kind)
	}
}

func (x *expander) expandDirectiveArgs(d *pattern.Directive) ([]ast.Expr, error) {
	out := make([]ast.Expr, 0, len(d.Args))
	for _, a := range d.Args {
		if a.Ellipsis {
			return nil, fmt.Errorf("mutator: '...' is not allowed in $%s replacement arguments", d.Kind)
		}
		e, err := x.expandExpr(a.Expr)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// expandCallRef rebuilds a call bound to a $CALL tag, applying per-argument
// transformations written in the replacement (e.g. `$CALL#c(...,
// $CORRUPT($STRING#s), ...)` replaces the argument bound to tag s with a
// corruption of it, keeping all other arguments intact).
func (x *expander) expandCallRef(d *pattern.Directive) (*ast.CallExpr, error) {
	bound, ok := x.b[d.Tag]
	if !ok || bound.Expr == nil {
		return nil, fmt.Errorf("mutator: replacement $CALL references unbound tag %q", d.Tag)
	}
	orig, err := mustCall(bound.Expr)
	if err != nil {
		return nil, err
	}
	cloned, err := mustCall(clonePlainExpr(orig))
	if err != nil {
		return nil, err
	}
	if !d.HasArgs {
		return cloned, nil
	}
	// Without an ellipsis the replacement arg list is exhaustive: the call
	// is rebuilt with exactly those arguments (this is how "missing
	// parameter" faults drop trailing arguments).
	hasEllipsis := false
	for _, a := range d.Args {
		if a.Ellipsis {
			hasEllipsis = true
			break
		}
	}
	if !hasEllipsis {
		args, err := x.expandDirectiveArgs(d)
		if err != nil {
			return nil, err
		}
		cloned.Args = args
		return cloned, nil
	}
	for _, a := range d.Args {
		if a.Ellipsis {
			continue
		}
		anchor := x.anchorTag(a.Expr)
		if anchor == "" {
			return nil, fmt.Errorf("mutator: replacement $CALL#%s argument pattern must reference a tagged directive", d.Tag)
		}
		boundArg, ok := x.b[anchor]
		if !ok || boundArg.Expr == nil {
			return nil, fmt.Errorf("mutator: replacement references unbound argument tag %q", anchor)
		}
		idx := -1
		for i, arg := range orig.Args {
			if containsNode(arg, boundArg.Expr) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("mutator: tag %q is not bound to an argument of $CALL#%s", anchor, d.Tag)
		}
		ne, err := x.expandExpr(a.Expr)
		if err != nil {
			return nil, err
		}
		cloned.Args[idx] = ne
	}
	return cloned, nil
}

// anchorTag finds the first tagged directive reachable from a replacement
// argument pattern; its binding identifies which original argument the
// pattern transforms.
func (x *expander) anchorTag(e ast.Expr) string {
	tag := ""
	var visit func(ast.Expr)
	visit = func(e ast.Expr) {
		if tag != "" || e == nil {
			return
		}
		if d := x.mm.HoleFor(e); d != nil {
			if d.Tag != "" && d.Kind != pattern.KindCorrupt && d.Kind != pattern.KindHog &&
				d.Kind != pattern.KindTimeout && d.Kind != pattern.KindPanic {
				tag = d.Tag
				return
			}
			for _, a := range d.Args {
				if a.Expr != nil {
					visit(a.Expr)
				}
			}
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if tag != "" {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if d := x.mm.Holes[id.Name]; d != nil {
					visit(id)
					return false
				}
				_ = id
			}
			return true
		})
	}
	visit(e)
	return tag
}

// containsNode reports whether needle appears within the subtree rooted
// at hay (pointer identity).
func containsNode(hay ast.Node, needle ast.Node) bool {
	if hay == nil {
		return false
	}
	found := false
	ast.Inspect(hay, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == needle {
			found = true
			return false
		}
		return true
	})
	return found
}

func (x *expander) expandSingleStmt(s ast.Stmt) (ast.Stmt, error) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		e, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &ast.ExprStmt{X: e}, nil
	case *ast.AssignStmt:
		lhs, err := x.expandExprs(n.Lhs)
		if err != nil {
			return nil, err
		}
		rhs, err := x.expandExprs(n.Rhs)
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{Lhs: lhs, Tok: n.Tok, Rhs: rhs}, nil
	case *ast.ReturnStmt:
		res, err := x.expandExprs(n.Results)
		if err != nil {
			return nil, err
		}
		return &ast.ReturnStmt{Results: res}, nil
	case *ast.IfStmt:
		cond, err := x.expandExpr(n.Cond)
		if err != nil {
			return nil, err
		}
		body, err := x.expandStmts(n.Body.List)
		if err != nil {
			return nil, err
		}
		out := &ast.IfStmt{Cond: cond, Body: &ast.BlockStmt{List: body}}
		if n.Init != nil {
			if out.Init, err = x.expandSingleStmt(n.Init); err != nil {
				return nil, err
			}
		}
		if n.Else != nil {
			if out.Else, err = x.expandSingleStmt(n.Else); err != nil {
				return nil, err
			}
		}
		return out, nil
	case *ast.BlockStmt:
		body, err := x.expandStmts(n.List)
		if err != nil {
			return nil, err
		}
		return &ast.BlockStmt{List: body}, nil
	case *ast.ForStmt:
		out := &ast.ForStmt{}
		var err error
		if n.Init != nil {
			if out.Init, err = x.expandSingleStmt(n.Init); err != nil {
				return nil, err
			}
		}
		if n.Cond != nil {
			if out.Cond, err = x.expandExpr(n.Cond); err != nil {
				return nil, err
			}
		}
		if n.Post != nil {
			if out.Post, err = x.expandSingleStmt(n.Post); err != nil {
				return nil, err
			}
		}
		body, err := x.expandStmts(n.Body.List)
		if err != nil {
			return nil, err
		}
		out.Body = &ast.BlockStmt{List: body}
		return out, nil
	case *ast.RangeStmt:
		ke, err := x.expandExpr(n.Key)
		if err != nil {
			return nil, err
		}
		ve, err := x.expandExpr(n.Value)
		if err != nil {
			return nil, err
		}
		xe, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		body, err := x.expandStmts(n.Body.List)
		if err != nil {
			return nil, err
		}
		return &ast.RangeStmt{Key: ke, Value: ve, Tok: n.Tok, X: xe, Body: &ast.BlockStmt{List: body}}, nil
	case *ast.BranchStmt, *ast.EmptyStmt:
		return clonePlainStmt(s), nil
	case *ast.DeferStmt:
		e, err := x.expandExpr(n.Call)
		if err != nil {
			return nil, err
		}
		call, err := mustCall(e)
		if err != nil {
			return nil, err
		}
		return &ast.DeferStmt{Call: call}, nil
	case *ast.IncDecStmt:
		e, err := x.expandExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &ast.IncDecStmt{X: e, Tok: n.Tok}, nil
	default:
		return clonePlainStmt(s), nil
	}
}

func hookCall(name string, args ...ast.Expr) *ast.CallExpr {
	return &ast.CallExpr{Fun: ast.NewIdent(name), Args: args}
}

func strLit(s string) ast.Expr {
	return &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(s)}
}

func intLit(s string) ast.Expr {
	if _, err := strconv.Atoi(s); err != nil {
		s = "0"
	}
	return &ast.BasicLit{Kind: token.INT, Value: s}
}

func attrOr(d *pattern.Directive, key, def string) string {
	if v, ok := d.Attrs[key]; ok && v != "" {
		return v
	}
	return def
}
