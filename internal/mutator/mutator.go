// Package mutator implements ProFIPy's source-code mutator: given a
// compiled bug specification and one injection point found by the scanner,
// it produces a mutated version of the target source file.
//
// Mutations are wrapped in a run-time trigger (EDFI-style): the mutated
// code has the shape
//
//	if __fault_enabled() { <faulty statements> } else { <original> }
//
// so the sandbox can enable the fault during round 1 of the workload and
// disable it during round 2 without redeploying, which is what powers the
// service-availability analysis (§IV-B of the paper).
package mutator

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strconv"

	"profipy/internal/pattern"
	"profipy/internal/scanner"
)

// Options controls how a mutation is applied.
type Options struct {
	// Triggered wraps the faulty code in the run-time trigger branch.
	// When false the faulty code replaces the original unconditionally.
	Triggered bool
}

// Result is a mutated source file plus diagnostics about the change.
type Result struct {
	Source   []byte // full mutated file
	Original string // source text of the replaced statements
	Mutated  string // source text of the injected statements
}

// Apply mutates one injection point in a source file: the file is parsed,
// the match is re-established (scan ordering is deterministic), the
// replacement template is instantiated against the match bindings, and the
// mutated file is produced. Callers holding a campaign parse cache should
// prefer ApplyParsed, which skips the per-experiment parse.
func Apply(filename string, src []byte, mm *pattern.MetaModel, point scanner.InjectionPoint, opts Options) (*Result, error) {
	pf, err := scanner.ParseFileOnce(filename, src)
	if err != nil {
		return nil, err
	}
	return ApplyParsed(pf, mm, point, opts)
}

// ApplyParsed mutates one injection point against a cached parse. The
// cached AST is strictly read-only — the same ParsedFile is shared by
// every parallel experiment of a campaign — so instead of rewriting the
// tree and re-printing the whole file, the rendered replacement text is
// spliced into a copy of the source bytes at the statement window's byte
// offsets. Source outside the window is preserved byte-for-byte.
func ApplyParsed(pf *scanner.ParsedFile, mm *pattern.MetaModel, point scanner.InjectionPoint, opts Options) (*Result, error) {
	if point.Spec != mm.Name {
		return nil, fmt.Errorf("mutator: injection point is for spec %q, not %q", point.Spec, mm.Name)
	}
	lists := pf.Lists
	if point.ListIndex < 0 || point.ListIndex >= len(lists) {
		return nil, fmt.Errorf("mutator: stale injection point: list index %d out of range", point.ListIndex)
	}
	stmts := *lists[point.ListIndex].Ptr
	if point.Start < 0 || point.Start >= len(stmts) {
		return nil, fmt.Errorf("mutator: stale injection point: start %d out of range", point.Start)
	}

	n, bindings, ok := mm.MatchPrefix(stmts, point.Start)
	if !ok || n != point.N {
		return nil, fmt.Errorf("mutator: stale injection point: pattern no longer matches at %s", point.ID())
	}

	ex := &expander{mm: mm, b: bindings}
	faulty, err := ex.expandStmts(mm.Replace)
	if err != nil {
		return nil, err
	}

	originals := stmts[point.Start : point.Start+n]
	origText := renderStmts(pf.Fset, originals)

	var injected []ast.Stmt
	if opts.Triggered {
		// Keep a pristine copy of the originals in the else branch so the
		// fault can be disabled at run time.
		injected = []ast.Stmt{&ast.IfStmt{
			Cond: &ast.CallExpr{Fun: ast.NewIdent(HookTrigger)},
			Body: &ast.BlockStmt{List: faulty},
			Else: &ast.BlockStmt{List: clonePlainStmts(originals)},
		}}
	} else {
		injected = faulty
	}
	mutText := renderStmts(pf.Fset, injected)

	// Zero-width matches (a pattern that consumes no statements, e.g. a
	// 0-minimum block) insert before the statement at Start instead of
	// replacing a window.
	startOff := pf.Offset(stmts[point.Start].Pos())
	endOff := startOff
	if n > 0 {
		endOff = pf.Offset(originals[n-1].End())
	}
	spliceFrom, indent := spliceAnchor(pf.Src, startOff)
	rendered, err := renderIndented(injected, indent)
	if err != nil {
		return nil, err
	}

	out := make([]byte, 0, len(pf.Src)-(endOff-spliceFrom)+len(rendered)+1)
	out = append(out, pf.Src[:spliceFrom]...)
	out = append(out, rendered...)
	if n == 0 {
		// Pure insertion: the statement at Start survives on its own
		// line (endOff sits at spliceFrom or just past the indent, so
		// the indent bytes cut by the anchor are restored too).
		out = append(out, '\n')
		out = append(out, pf.Src[spliceFrom:startOff]...)
	}
	out = append(out, pf.Src[endOff:]...)
	return &Result{Source: out, Original: origText, Mutated: mutText}, nil
}

// spliceAnchor decides where a statement-window splice begins. When the
// window's first statement has only whitespace before it on its line, the
// splice starts at the line start and the replacement is re-indented to
// the same depth; when code precedes it (single-line blocks like
// `if x { g() }`), the splice starts at the statement itself, unindented —
// still valid Go, just less pretty.
func spliceAnchor(src []byte, startOff int) (from, indent int) {
	lineStart := startOff
	for lineStart > 0 && src[lineStart-1] != '\n' {
		lineStart--
	}
	tabs, spaces := 0, 0
	for _, ch := range src[lineStart:startOff] {
		switch ch {
		case '\t':
			tabs++
		case ' ':
			spaces++
		default:
			return startOff, 0
		}
	}
	return lineStart, tabs + spaces/8
}

// renderIndented renders statements at the given indent depth. The
// go/printer protects raw string literals from the indentation pass, so
// multi-line literals inside the window survive unchanged.
func renderIndented(stmts []ast.Stmt, indent int) ([]byte, error) {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8, Indent: indent}
	fset := token.NewFileSet()
	for i, s := range stmts {
		if i > 0 {
			buf.WriteByte('\n')
		}
		if err := cfg.Fprint(&buf, fset, s); err != nil {
			return nil, fmt.Errorf("mutator: render mutated statements: %w", err)
		}
	}
	return buf.Bytes(), nil
}

// Instrument inserts a coverage hook call (__cover(id)) before the first
// statement of every injection point in a file, producing a single
// instrumented version used by the coverage analysis (§IV-D). Points must
// all belong to this file.
func Instrument(filename string, src []byte, points []scanner.InjectionPoint) ([]byte, error) {
	pf, err := scanner.ParseFileOnce(filename, src)
	if err != nil {
		return nil, err
	}
	return InstrumentParsed(pf, points)
}

// InstrumentParsed instruments against a cached parse without touching the
// shared AST: each hook is rendered as text and inserted at the byte
// offset of its point's first statement, on the same line, so the
// instrumented file keeps the original's line numbers (coverage and
// injection-point line reports stay comparable).
func InstrumentParsed(pf *scanner.ParsedFile, points []scanner.InjectionPoint) ([]byte, error) {
	lists := pf.Lists
	offsets := make([]int, 0, len(points))
	hooks := make([]string, 0, len(points))
	for _, p := range points {
		if p.File != pf.Name {
			return nil, fmt.Errorf("mutator: point %s does not belong to file %s", p.ID(), pf.Name)
		}
		if p.ListIndex < 0 || p.ListIndex >= len(lists) {
			return nil, fmt.Errorf("mutator: stale injection point %s", p.ID())
		}
		stmts := *lists[p.ListIndex].Ptr
		if p.Start < 0 || p.Start >= len(stmts) {
			return nil, fmt.Errorf("mutator: stale injection point %s", p.ID())
		}
		offsets = append(offsets, pf.Offset(stmts[p.Start].Pos()))
		hooks = append(hooks, HookCover+"("+strconv.Quote(p.ID())+"); ")
	}

	// Insert in ascending offset order while walking the source once.
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return offsets[order[a]] < offsets[order[b]] })

	var buf bytes.Buffer
	buf.Grow(len(pf.Src) + 48*len(points))
	prev := 0
	for _, i := range order {
		buf.Write(pf.Src[prev:offsets[i]])
		buf.WriteString(hooks[i])
		prev = offsets[i]
	}
	buf.Write(pf.Src[prev:])
	return buf.Bytes(), nil
}

func renderStmts(fset *token.FileSet, stmts []ast.Stmt) string {
	var buf bytes.Buffer
	for i, s := range stmts {
		if i > 0 {
			buf.WriteString("; ")
		}
		buf.WriteString(pattern.StmtString(fset, s))
	}
	return buf.String()
}
