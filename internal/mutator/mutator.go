// Package mutator implements ProFIPy's source-code mutator: given a
// compiled bug specification and one injection point found by the scanner,
// it produces a mutated version of the target source file.
//
// Mutations are wrapped in a run-time trigger (EDFI-style): the mutated
// code has the shape
//
//	if __fault_enabled() { <faulty statements> } else { <original> }
//
// so the sandbox can enable the fault during round 1 of the workload and
// disable it during round 2 without redeploying, which is what powers the
// service-availability analysis (§IV-B of the paper).
package mutator

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"

	"profipy/internal/pattern"
	"profipy/internal/scanner"
)

// Options controls how a mutation is applied.
type Options struct {
	// Triggered wraps the faulty code in the run-time trigger branch.
	// When false the faulty code replaces the original unconditionally.
	Triggered bool
}

// Result is a mutated source file plus diagnostics about the change.
type Result struct {
	Source   []byte // full mutated file
	Original string // source text of the replaced statements
	Mutated  string // source text of the injected statements
}

// Apply mutates one injection point in a source file. The file is parsed
// fresh, the match is re-established (scan ordering is deterministic), the
// replacement template is instantiated against the match bindings, and the
// mutated file is rendered back to source.
func Apply(filename string, src []byte, mm *pattern.MetaModel, point scanner.InjectionPoint, opts Options) (*Result, error) {
	if point.Spec != mm.Name {
		return nil, fmt.Errorf("mutator: injection point is for spec %q, not %q", point.Spec, mm.Name)
	}
	fset := token.NewFileSet()
	f, err := scanner.ParseSource(fset, filename, src)
	if err != nil {
		return nil, err
	}
	lists := scanner.CollectLists(f)
	if point.ListIndex < 0 || point.ListIndex >= len(lists) {
		return nil, fmt.Errorf("mutator: stale injection point: list index %d out of range", point.ListIndex)
	}
	listPtr := lists[point.ListIndex].Ptr
	stmts := *listPtr
	if point.Start < 0 || point.Start >= len(stmts) {
		return nil, fmt.Errorf("mutator: stale injection point: start %d out of range", point.Start)
	}

	n, bindings, ok := mm.MatchPrefix(stmts, point.Start)
	if !ok || n != point.N {
		return nil, fmt.Errorf("mutator: stale injection point: pattern no longer matches at %s", point.ID())
	}

	ex := &expander{mm: mm, b: bindings}
	faulty, err := ex.expandStmts(mm.Replace)
	if err != nil {
		return nil, err
	}

	originals := stmts[point.Start : point.Start+n]
	origText := renderStmts(fset, originals)

	var injected []ast.Stmt
	if opts.Triggered {
		// Keep a pristine copy of the originals in the else branch so the
		// fault can be disabled at run time.
		injected = []ast.Stmt{&ast.IfStmt{
			Cond: &ast.CallExpr{Fun: ast.NewIdent(HookTrigger)},
			Body: &ast.BlockStmt{List: faulty},
			Else: &ast.BlockStmt{List: clonePlainStmts(originals)},
		}}
	} else {
		injected = faulty
	}
	mutText := renderStmts(fset, injected)

	newList := make([]ast.Stmt, 0, len(stmts)-n+len(injected))
	newList = append(newList, stmts[:point.Start]...)
	newList = append(newList, injected...)
	newList = append(newList, stmts[point.Start+n:]...)
	*listPtr = newList

	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, f); err != nil {
		return nil, fmt.Errorf("mutator: render mutated file: %w", err)
	}
	return &Result{Source: buf.Bytes(), Original: origText, Mutated: mutText}, nil
}

// Instrument inserts a coverage hook call (__cover(id)) before the first
// statement of every injection point in a file, producing a single
// instrumented version used by the coverage analysis (§IV-D). Points must
// all belong to this file. Points are applied in descending statement
// order so earlier indexes stay valid.
func Instrument(filename string, src []byte, points []scanner.InjectionPoint) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := scanner.ParseSource(fset, filename, src)
	if err != nil {
		return nil, err
	}
	lists := scanner.CollectLists(f)

	// Group insertions per list, then apply from the highest start first.
	byList := map[int][]scanner.InjectionPoint{}
	for _, p := range points {
		if p.File != filename {
			return nil, fmt.Errorf("mutator: point %s does not belong to file %s", p.ID(), filename)
		}
		if p.ListIndex < 0 || p.ListIndex >= len(lists) {
			return nil, fmt.Errorf("mutator: stale injection point %s", p.ID())
		}
		byList[p.ListIndex] = append(byList[p.ListIndex], p)
	}
	for li, pts := range byList {
		// Sort descending by start (insertion keeps earlier offsets valid).
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && pts[j].Start > pts[j-1].Start; j-- {
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
		listPtr := lists[li].Ptr
		for _, p := range pts {
			stmts := *listPtr
			if p.Start > len(stmts) {
				return nil, fmt.Errorf("mutator: stale injection point %s", p.ID())
			}
			hook := &ast.ExprStmt{X: hookCall(HookCover, strLit(p.ID()))}
			newList := make([]ast.Stmt, 0, len(stmts)+1)
			newList = append(newList, stmts[:p.Start]...)
			newList = append(newList, hook)
			newList = append(newList, stmts[p.Start:]...)
			*listPtr = newList
		}
	}

	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, f); err != nil {
		return nil, fmt.Errorf("mutator: render instrumented file: %w", err)
	}
	return buf.Bytes(), nil
}

func renderStmts(fset *token.FileSet, stmts []ast.Stmt) string {
	var buf bytes.Buffer
	for i, s := range stmts {
		if i > 0 {
			buf.WriteString("; ")
		}
		buf.WriteString(pattern.StmtString(fset, s))
	}
	return buf.String()
}
