package mutator

import (
	"strings"
	"testing"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
	"profipy/internal/scanner"
)

const target = `package client

func Cleanup(c *Conn, node string) {
	prepare(c)
	DeletePort(c, node)
	finish(c)
}

func Sweep(nodes []string) {
	for _, node := range nodes {
		if node == "" {
			logSkip(node)
			continue
		}
		process(node)
	}
}

func Provision(c *Conn) {
	setup(c)
	utils.Execute("iptables", "-A INPUT", "allow")
	teardown(c)
}
`

func compileAndScan(t *testing.T, name, spec string) (*pattern.MetaModel, []scanner.InjectionPoint) {
	t.Helper()
	mm, err := dsl.Compile(name, spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pts, err := scanner.ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	if len(pts) == 0 {
		t.Fatalf("no injection points for %s", name)
	}
	return mm, pts
}

func TestApplyMFCRemovesCall(t *testing.T) {
	mm, pts := compileAndScan(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	out := string(res.Source)
	if strings.Contains(out, "DeletePort") {
		t.Error("mutated source still contains the omitted call")
	}
	if !strings.Contains(out, "prepare(c)") || !strings.Contains(out, "finish(c)") {
		t.Error("mutated source lost the surrounding blocks")
	}
	// The mutated file must still be parseable.
	if _, err := scanner.ScanSource("client.go", res.Source, nil); err != nil {
		t.Fatalf("mutated source does not parse: %v", err)
	}
}

func TestApplyMFCTriggered(t *testing.T) {
	mm, pts := compileAndScan(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{Triggered: true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	out := string(res.Source)
	if !strings.Contains(out, HookTrigger+"()") {
		t.Error("triggered mutation must branch on the trigger hook")
	}
	// The original call must survive in the else branch.
	if !strings.Contains(out, "DeletePort") {
		t.Error("triggered mutation must keep the original statements")
	}
	if _, err := scanner.ScanSource("client.go", res.Source, nil); err != nil {
		t.Fatalf("mutated source does not parse: %v", err)
	}
}

func TestApplyMIFSRemovesIf(t *testing.T) {
	mm, pts := compileAndScan(t, "MIFS", `
change {
	if $EXPR{var=node} {
		$BLOCK{stmts=1,4}
		continue
	}
} into {
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	out := string(res.Source)
	if strings.Contains(out, "logSkip") || strings.Contains(out, "continue") {
		t.Errorf("if construct was not removed:\n%s", out)
	}
	if !strings.Contains(out, "process(node)") {
		t.Error("statements outside the if must survive")
	}
}

func TestApplyWPFCorruptsParameter(t *testing.T) {
	mm, pts := compileAndScan(t, "WPF", `
change {
	$CALL#c{name=utils.Execute}(..., $STRING#s{val=*-*}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	out := string(res.Source)
	if !strings.Contains(out, HookCorrupt+`("-A INPUT")`) {
		t.Errorf("corrupted parameter missing:\n%s", out)
	}
	// Other arguments intact.
	if !strings.Contains(out, `"iptables"`) || !strings.Contains(out, `"allow"`) {
		t.Error("untouched arguments must survive")
	}
}

func TestApplyPanicReplacement(t *testing.T) {
	mm, pts := compileAndScan(t, "THROW", `
change {
	$CALL#c{name=utils.Execute}(...)
} into {
	$PANIC{type=ConnectTimeoutError; msg=injected timeout}
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	out := string(res.Source)
	if !strings.Contains(out, `panic(`+HookExc+`("ConnectTimeoutError", "injected timeout"))`) {
		t.Errorf("panic replacement missing:\n%s", out)
	}
}

func TestApplyHogAndTimeout(t *testing.T) {
	mm, pts := compileAndScan(t, "HOG", `
change {
	$CALL#c{name=utils.Execute}(...)
} into {
	$CALL#c
	$HOG{res=cpu; amount=2}
	$TIMEOUT{ms=250}
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	out := string(res.Source)
	if !strings.Contains(out, HookHog+`("cpu", 2)`) {
		t.Errorf("hog hook missing:\n%s", out)
	}
	if !strings.Contains(out, HookDelay+`(250)`) {
		t.Errorf("delay hook missing:\n%s", out)
	}
	// $CALL#c without args re-emits the original call verbatim.
	if !strings.Contains(out, `utils.Execute("iptables", "-A INPUT", "allow")`) {
		t.Errorf("original call not re-emitted:\n%s", out)
	}
}

func TestApplyStalePointFails(t *testing.T) {
	mm, pts := compileAndScan(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	stale := pts[0]
	stale.Start = 99
	if _, err := Apply("client.go", []byte(target), mm, stale, Options{}); err == nil {
		t.Fatal("Apply with stale point should fail")
	}
	wrongSpec := pts[0]
	wrongSpec.Spec = "OTHER"
	if _, err := Apply("client.go", []byte(target), mm, wrongSpec, Options{}); err == nil {
		t.Fatal("Apply with mismatched spec should fail")
	}
}

func TestInstrumentInsertsCoverageHooks(t *testing.T) {
	mm, err := dsl.Compile("calls", `
change {
	$CALL{name=*}(...)
} into {
}`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pts, err := scanner.ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	instr, err := Instrument("client.go", []byte(target), pts)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	out := string(instr)
	if got := strings.Count(out, HookCover+"("); got != len(pts) {
		t.Errorf("coverage hooks = %d, want %d\n%s", got, len(pts), out)
	}
	if _, err := scanner.ScanSource("client.go", instr, nil); err != nil {
		t.Fatalf("instrumented source does not parse: %v", err)
	}
}

func TestMutatedSourceReScannable(t *testing.T) {
	// The tool re-scans mutated sources in the container; a triggered
	// mutation must not create new matches of the same spec ad infinitum.
	mm, pts := compileAndScan(t, "WPF", `
change {
	$CALL#c{name=utils.Execute}(..., $STRING#s{val=*-*}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`)
	res, err := Apply("client.go", []byte(target), mm, pts[0], Options{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	again, err := scanner.ScanSource("client.go", res.Source, []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("re-scan: %v", err)
	}
	if len(again) != 0 {
		t.Errorf("mutated source still matches the spec %d times", len(again))
	}
}
