package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// families sort by name, children by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// write renders one family; takes the family's read lock.
func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ)
	w.WriteByte('\n')

	f.mu.RLock()
	fn := f.fn
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]metric, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()

	if fn != nil {
		writeSample(w, f.name, "", f.labels, nil, fn())
		return
	}
	for _, m := range children {
		switch c := m.(type) {
		case *Counter:
			writeSample(w, f.name, "", f.labels, c.values, c.Value())
		case *Gauge:
			writeSample(w, f.name, "", f.labels, c.values, c.Value())
		case *Histogram:
			// Buckets are stored non-cumulative; render the cumulative
			// counts the format requires, ending at the +Inf bucket,
			// which always equals _count.
			var cum uint64
			for i, bound := range c.buckets {
				cum += c.counts[i].Load()
				writeSample(w, f.name, "_bucket", append(f.labels, "le"),
					append(append([]string(nil), c.values...), formatFloat(bound)), float64(cum))
			}
			cum += c.inf.Load()
			writeSample(w, f.name, "_bucket", append(f.labels, "le"),
				append(append([]string(nil), c.values...), "+Inf"), float64(cum))
			writeSample(w, f.name, "_sum", f.labels, c.values, c.Sum())
			writeSample(w, f.name, "_count", f.labels, c.values, float64(cum))
		}
	}
}

// writeSample renders one `name{labels} value` line.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// Handler serves the registry in the text exposition format — mount it
// at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
