package obs

import (
	"context"
	"log/slog"
)

// logKey carries a *slog.Logger through a context.
type logKey struct{}

// WithLog derives a context whose logger carries the given attributes
// in addition to everything already attached — the way job, campaign
// and shard identity accumulate as work descends through the pipeline
// (saas attaches job+campaign, campaign attaches shard, and so on).
func WithLog(ctx context.Context, args ...any) context.Context {
	return context.WithValue(ctx, logKey{}, Log(ctx).With(args...))
}

// Log returns the context's logger, falling back to slog.Default for
// contexts that never passed through WithLog.
func Log(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(logKey{}).(*slog.Logger); ok {
			return l
		}
	}
	return slog.Default()
}
