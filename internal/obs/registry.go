// Package obs is the observability substrate of the service: a
// dependency-free, concurrent-safe metrics registry (counters, gauges
// and histograms, optionally labeled) that renders the Prometheus text
// exposition format, plus log/slog context helpers so every layer of
// the pipeline logs with its job/campaign/shard identity attached.
//
// ProFIPy's product is observing failures in other programs; the
// service itself must not be a black box. Every pipeline layer —
// scheduler, executor, campaign, result store, HTTP front end —
// registers its families against one Registry (get-or-create
// semantics, so layers need no registration ceremony) and the daemon
// serves the whole catalog at GET /metrics.
//
// The hot-path cost is one atomic add per event: metric children are
// resolved once (With) and cached by the instrumented layer, so
// per-record instrumentation stays allocation-free.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric type names used in TYPE lines and consistency checks.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefBuckets are the default histogram buckets, in seconds — the
// conventional Prometheus latency ladder.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds metric families. All methods are safe for concurrent
// use. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultReg = NewRegistry()

// Default returns the process-wide registry, for layers that are not
// handed an explicit one.
func Default() *Registry { return defaultReg }

// family is one named metric family: a type, a label schema, and a set
// of children keyed by their label values.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]metric // key = joined label values
	fn       func() float64    // callback gauge (GaugeFunc), children nil
}

// metric is the render-side view of a child.
type metric interface {
	labelValues() []string
}

// getOrCreate returns the named family, creating it on first use.
// Re-registering with a different type or label schema is a programming
// error and panics — the same family cannot be two things.
func (r *Registry) getOrCreate(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.fams[name]
		if !ok {
			f = &family{
				name: name, help: help, typ: typ,
				labels:   append([]string(nil), labels...),
				buckets:  append([]float64(nil), buckets...),
				children: make(map[string]metric),
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %s registered with labels %v, requested with %v", name, f.labels, labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %s registered with labels %v, requested with %v", name, f.labels, labels))
		}
	}
	return f
}

// child returns the family's child for the given label values, creating
// it on first use via mk.
func (f *family) child(values []string, mk func(values []string) metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.children[key]; ok {
		return m
	}
	m = mk(append([]string(nil), values...))
	f.children[key] = m
	return m
}

// ---- Counter ----

// Counter is a monotonically increasing value.
type Counter struct {
	bits   atomic.Uint64 // float64 bits
	values []string
}

func (c *Counter) labelValues() []string { return c.values }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (negative v is ignored — counters
// never go down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func(vals []string) metric { return &Counter{values: vals} }).(*Counter)
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.getOrCreate(name, help, typeCounter, labels, nil)}
}

// ---- Gauge ----

// Gauge is a value that can go up and down.
type Gauge struct {
	bits   atomic.Uint64 // float64 bits
	values []string
}

func (g *Gauge) labelValues() []string { return g.values }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increases (or with negative v decreases) the gauge.
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func(vals []string) metric { return &Gauge{values: vals} }).(*Gauge)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.getOrCreate(name, help, typeGauge, labels, nil)}
}

// GaugeFunc registers a callback gauge: fn is evaluated at scrape time.
// Registering the same name again replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.getOrCreate(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// ---- Histogram ----

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	counts  []atomic.Uint64 // per-bucket (non-cumulative), one per upper bound
	inf     atomic.Uint64   // observations above the last bound
	sumBits atomic.Uint64   // float64 bits
	buckets []float64
	values  []string
}

func (h *Histogram) labelValues() []string { return h.values }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bound >= v
	if i < len(h.buckets) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	addFloat(&h.sumBits, v)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func(vals []string) metric {
		return &Histogram{
			counts:  make([]atomic.Uint64, len(v.f.buckets)),
			buckets: v.f.buckets,
			values:  vals,
		}
	}).(*Histogram)
}

// Histogram registers (or finds) an unlabeled histogram. A nil buckets
// slice selects DefBuckets; bounds must be sorted ascending. The bucket
// schema is fixed by the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %s buckets not sorted: %v", name, buckets))
	}
	return &HistogramVec{f: r.getOrCreate(name, help, typeHistogram, labels, buckets)}
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}
