package obs

import (
	"context"
	"log/slog"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Total jobs.").Add(3)
	r.CounterVec("requests_total", "Requests.", "route", "status").With("/api", "200").Inc()
	r.Gauge("queue_depth", "Queued jobs.").Set(7)
	g := r.Gauge("queue_depth", "Queued jobs.") // get-or-create returns the same child
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# HELP jobs_total Total jobs.\n# TYPE jobs_total counter\njobs_total 3\n",
		`requests_total{route="/api",status="200"} 1`,
		"# TYPE queue_depth gauge\nqueue_depth 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "jobs_total") > strings.Index(out, "queue_depth") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird_total", "help with \\ and\nnewline", "path").
		With("a\\b\"c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `# HELP weird_total help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{path="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	// No raw newlines may survive inside a sample line.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Errorf("empty line in exposition:\n%q", out)
		}
	}
}

func TestHistogramCumulativeInvariant(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-102.65) > 1e-9 {
		t.Fatalf("Sum = %v, want 102.65", got)
	}

	out := render(t, r)
	// le="0.1" includes values <= 0.1 (0.05 and 0.1 itself).
	wantLines := []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	}
	cum := -1.0
	re := regexp.MustCompile(`latency_seconds_bucket\{le="[^"]+"\} (\d+)`)
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < cum {
			t.Fatalf("bucket counts not cumulative: %v after %v\n%s", v, cum, out)
		}
		cum = v
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentIncAndObserve(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve children concurrently too: With must be safe.
			c := r.CounterVec("hits_total", "Hits.", "k").With("x")
			g := r.Gauge("busy", "Busy.")
			h := r.Histogram("obs_seconds", "Obs.", []float64{1, 2})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := r.CounterVec("hits_total", "Hits.", "k").With("x").Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("busy", "Busy.").Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := r.Histogram("obs_seconds", "Obs.", []float64{1, 2}).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %d", got, workers*perWorker)
	}
	// Scrape concurrently with writes to flush out render races.
	var wg2 sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
				r.CounterVec("hits_total", "Hits.", "k").With("y").Inc()
			}
		}()
	}
	wg2.Wait()
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 41
	r.GaugeFunc("live_things", "Things.", func() float64 { n++; return float64(n) })
	out := render(t, r)
	if !strings.Contains(out, "live_things 42") {
		t.Errorf("callback gauge not evaluated at scrape:\n%s", out)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "OK.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ok_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestWithLog(t *testing.T) {
	var sb strings.Builder
	base := slog.New(slog.NewTextHandler(&sb, &slog.HandlerOptions{}))
	old := slog.Default()
	slog.SetDefault(base)
	defer slog.SetDefault(old)

	ctx := WithLog(context.Background(), "job", "job-7")
	ctx = WithLog(ctx, "campaign", "camp-7") // attributes accumulate
	Log(ctx).Info("hello")
	out := sb.String()
	if !strings.Contains(out, "job=job-7") || !strings.Contains(out, "campaign=camp-7") {
		t.Errorf("log line missing accumulated attrs: %q", out)
	}
	// A bare context falls back to the default logger.
	if Log(context.Background()) == nil {
		t.Error("Log(bare ctx) = nil")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("bench_total", "Bench.", "k").With("v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "Bench.", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
