package pattern_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
)

// benchStmts builds a long mixed statement list (calls, assignments,
// guarded blocks, loops) resembling one function of the synthetic corpus.
func benchStmts(b *testing.B) []ast.Stmt {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("package p\nfunc f(node string, count int) {\n")
	for i := 0; i < 64; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "\tcompute_delete(state, node)\n")
		case 1:
			fmt.Fprintf(&sb, "\tres%d := volume_get(state, count)\n\tuse(res%d)\n", i, i)
		case 2:
			fmt.Fprintf(&sb, "\tif node != \"\" {\n\t\taudit(node)\n\t\tcount = count + %d\n\t}\n", i%9+1)
		case 3:
			fmt.Fprintf(&sb, "\tfor i := 0; i < count; i++ {\n\t\tstep(state, i)\n\t}\n")
		}
	}
	sb.WriteString("}\n")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "b.go", sb.String(), parser.SkipObjectResolution)
	if err != nil {
		b.Fatal(err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body.List
}

func benchModel(b *testing.B, name, spec string) *pattern.MetaModel {
	b.Helper()
	mm, err := dsl.Compile(name, spec)
	if err != nil {
		b.Fatal(err)
	}
	return mm
}

// BenchmarkMatchPrefixIfHead sweeps an if-headed pattern (MIFS flavor)
// over every start position: the first-statement pre-filter rejects ~3/4
// of the positions with a single type comparison.
func BenchmarkMatchPrefixIfHead(b *testing.B) {
	stmts := benchStmts(b)
	mm := benchModel(b, "mifs", `
change {
	if $EXPR{var=node} {
		audit(node)
		$BLOCK{stmts=1,2}
	}
} into {
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for start := range stmts {
			mm.MatchPrefix(stmts, start)
		}
	}
}

// BenchmarkMatchPrefixBlockHead sweeps an MFC-flavor pattern whose
// leading $BLOCK defeats the pre-filter: this is the backtracking-heavy
// worst case, exercising the reduced-clone bindings path.
func BenchmarkMatchPrefixBlockHead(b *testing.B) {
	stmts := benchStmts(b)
	mm := benchModel(b, "mfc", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=compute_*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for start := range stmts {
			mm.MatchPrefix(stmts, start)
		}
	}
}

// BenchmarkMatchPrefixCallHead sweeps a $CALL-headed pattern with an
// argument ellipsis (WPF flavor): the pre-filter narrows starts to
// expression statements and the argument matcher backtracks clone-free.
func BenchmarkMatchPrefixCallHead(b *testing.B) {
	stmts := benchStmts(b)
	mm := benchModel(b, "wpf", `
change {
	$CALL#c{name=compute_*}(..., $VAR#v{name=node}, ...)
} into {
	$CALL#c(..., $CORRUPT($VAR#v), ...)
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for start := range stmts {
			mm.MatchPrefix(stmts, start)
		}
	}
}
