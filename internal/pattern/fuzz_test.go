// Fuzz coverage for the matching engine, in the external test package
// so the fixed meta-models can be compiled through the DSL front end
// (dsl imports pattern, so the in-package test cannot).
package pattern_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
)

// fuzzModels is a fixed panel of meta-models covering the matcher's
// directive kinds: calls with argument patterns and globs, blocks with
// cardinalities, expression/variable/literal holes.
func fuzzModels(tb testing.TB) []*pattern.MetaModel {
	tb.Helper()
	specs := []struct{ name, src string }{
		{"mfc", "change {\n\t$BLOCK{tag=b1; stmts=0,*}\n\t$CALL{name=*}(...)\n\t$BLOCK{tag=b2; stmts=0,*}\n} into {\n\t$BLOCK{tag=b1}\n\t$BLOCK{tag=b2}\n}"},
		{"mia", "change {\n\tif $EXPR#e {\n\t\t$BLOCK{tag=body; stmts=1,4}\n\t}\n} into {\n\t$BLOCK{tag=body}\n}"},
		{"wvav", "change {\n\t$VAR#x = $STRING#v\n} into {\n\t$VAR#x = $CORRUPT($STRING#v)\n}"},
		{"assign-call", "change {\n\t$VAR#v := $CALL#c{name=u*.*}($EXPR#a, ...)\n} into {\n\t$VAR#v := $NIL\n}"},
		{"int-arg", "change {\n\t$CALL#c{name=*}(..., $INT#n)\n} into {\n\t$CALL#c(..., $CORRUPT($INT#n))\n}"},
	}
	models := make([]*pattern.MetaModel, 0, len(specs))
	for _, s := range specs {
		mm, err := dsl.Compile(s.name, s.src)
		if err != nil {
			tb.Fatalf("fixed model %s failed to compile: %v", s.name, err)
		}
		models = append(models, mm)
	}
	return models
}

// parseFuzzBody parses fuzzed text as a Go function body and returns
// its statements (nil when the fragment does not parse).
func parseFuzzBody(src string) []ast.Stmt {
	f, err := parser.ParseFile(token.NewFileSet(), "fuzz.go",
		"package p\nfunc fuzzTarget() {\n"+src+"\n}", parser.SkipObjectResolution)
	if err != nil {
		return nil
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "fuzzTarget" && fd.Body != nil {
			return fd.Body.List
		}
	}
	return nil
}

// FuzzMatchPrefix throws arbitrary Go statement fragments at the
// matcher with the fixed model panel. The matcher must never panic and
// every reported match must satisfy the window invariants: a
// non-negative statement count that stays inside the list, a rematch at
// the same start reproducing the same window, and the pre-filter never
// rejecting a start the matcher accepts.
//
// Seed corpus: testdata/fuzz/FuzzMatchPrefix/ plus the inline seeds.
func FuzzMatchPrefix(f *testing.F) {
	seeds := []string{
		"x := f(1)\ng(x)\nreturn",
		"a = \"s\"\nb = `raw`",
		"if cond {\n\tf()\n}",
		"if a && b {\n\tg(1, 2)\n}",
		"v := urllib.Request(\"GET\", url, params)",
		"for i := 0; i < 10; i++ {\n\th(i)\n}",
		"switch v {\ncase 1:\n\tf()\ndefault:\n\tg()\n}",
		"defer f()\ngo g()",
		"x, y := f(), g()\nx = y",
		"f(g(h(1)), []any{1, 2}, map[string]any{\"k\": v})",
		"s.Set(key, value, 7)",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	models := fuzzModels(f)
	f.Fuzz(func(t *testing.T, src string) {
		stmts := parseFuzzBody(src)
		if stmts == nil {
			return
		}
		for _, mm := range models {
			for start := 0; start <= len(stmts); start++ {
				n, bindings, ok := mm.MatchPrefix(stmts, start)
				if !ok {
					continue
				}
				if n < 0 || start+n > len(stmts) {
					t.Fatalf("%s: match window [%d,+%d) escapes list of %d statements", mm.Name, start, n, len(stmts))
				}
				if start < len(stmts) && !mm.CanStartWith(stmts[start]) {
					t.Fatalf("%s: pre-filter rejects a start the matcher accepts (stmt %d)", mm.Name, start)
				}
				n2, _, ok2 := mm.MatchPrefix(stmts, start)
				if !ok2 || n2 != n {
					t.Fatalf("%s: rematch at %d diverged: (%d,%v) vs (%d,%v)", mm.Name, start, n, ok, n2, ok2)
				}
				for tag, b := range bindings {
					if b.Expr == nil && b.Stmts == nil {
						t.Fatalf("%s: binding %q captured nothing", mm.Name, tag)
					}
				}
			}
		}
	})
}
