package pattern

// Glob reports whether s matches the glob pattern pat. The pattern
// supports '*' (any run of characters, including empty) and '?' (exactly
// one character); all other characters match literally. Matching is
// case-sensitive, mirroring identifier matching in the target language.
func Glob(pat, s string) bool {
	// Iterative glob with single-star backtracking: O(len(s)*len(pat)).
	var (
		pi, si         int
		starPi, starSi = -1, 0
	)
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '?' || pat[pi] == s[si]):
			pi++
			si++
		case pi < len(pat) && pat[pi] == '*':
			starPi, starSi = pi, si
			pi++
		case starPi >= 0:
			starSi++
			pi, si = starPi+1, starSi
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '*' {
		pi++
	}
	return pi == len(pat)
}

// GlobAny reports whether s matches any of the comma-separated glob
// alternatives in pat (e.g. "delete_*,remove_*").
func GlobAny(pat, s string) bool {
	start := 0
	for i := 0; i <= len(pat); i++ {
		if i == len(pat) || pat[i] == ',' {
			if Glob(pat[start:i], s) {
				return true
			}
			start = i + 1
		}
	}
	return false
}
