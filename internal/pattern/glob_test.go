package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGlob(t *testing.T) {
	tests := []struct {
		pat, s string
		want   bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"Delete*", "DeletePort", true},
		{"Delete*", "Delete", true},
		{"Delete*", "delete", false},
		{"*-*", "a-b", true},
		{"*-*", "ab", false},
		{"*-*", "-", true},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"utils.Execute", "utils.Execute", true},
		{"utils.Execute", "utils.Executor", false},
		{"*.Set", "c.Set", true},
		{"*.Set", "Set", false},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "aXXcYYb", false},
		{"**", "x", true},
	}
	for _, tc := range tests {
		if got := Glob(tc.pat, tc.s); got != tc.want {
			t.Errorf("Glob(%q, %q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
}

func TestGlobAny(t *testing.T) {
	if !GlobAny("delete_*,remove_*", "remove_port") {
		t.Error("GlobAny should match second alternative")
	}
	if GlobAny("delete_*,remove_*", "create_port") {
		t.Error("GlobAny should not match")
	}
	if !GlobAny("exact", "exact") {
		t.Error("GlobAny should match single alternative")
	}
}

// Property: any string matches itself as a literal pattern (when it has no
// metacharacters), and always matches "*".
func TestGlobProperties(t *testing.T) {
	selfMatch := func(s string) bool {
		if strings.ContainsAny(s, "*?,") {
			return true // skip metacharacter inputs
		}
		return Glob(s, s) && Glob("*", s)
	}
	if err := quick.Check(selfMatch, nil); err != nil {
		t.Error(err)
	}

	// Property: a prefix pattern "p*" matches any string with that prefix.
	prefixMatch := func(p, rest string) bool {
		if strings.ContainsAny(p, "*?,") {
			return true
		}
		return Glob(p+"*", p+rest)
	}
	if err := quick.Check(prefixMatch, nil); err != nil {
		t.Error(err)
	}

	// Property: glob matching never panics and is deterministic.
	deterministic := func(pat, s string) bool {
		return Glob(pat, s) == Glob(pat, s)
	}
	if err := quick.Check(deterministic, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindCall.String() != "CALL" {
		t.Errorf("KindCall = %q", KindCall.String())
	}
	if got := Kind(99).String(); !strings.Contains(got, "UNKNOWN") {
		t.Errorf("unknown kind = %q", got)
	}
	k, ok := KindByName("BLOCK")
	if !ok || k != KindBlock {
		t.Errorf("KindByName(BLOCK) = %v, %v", k, ok)
	}
	if _, ok := KindByName("NOPE"); ok {
		t.Error("KindByName(NOPE) should fail")
	}
}
