package pattern

import (
	"go/ast"
	"go/token"
	"strconv"
)

// MatchPrefix tries to match the meta-model's code pattern against a prefix
// of stmts[start:]. On success it returns the number of target statements
// the pattern consumed and the tag bindings captured along the way.
//
// Block directives ($BLOCK{stmts=min,max}) are matched lazily (shortest run
// first) so that each concrete fault site yields exactly one canonical
// match instead of one match per possible block extent.
func (m *MetaModel) MatchPrefix(stmts []ast.Stmt, start int) (int, Bindings, bool) {
	if start < 0 || start > len(stmts) {
		return 0, nil, false
	}
	// Fast reject: most start positions die on the pattern's first
	// element, so a one-comparison kind check beats a full unify.
	if start < len(stmts) && !m.CanStartWith(stmts[start]) {
		return 0, nil, false
	}
	// Internally, bindings thread through the matcher as a persistent
	// linked list: extending costs one small node, failed trials leave no
	// garbage, and nothing is cloned on the backtracking paths. The map
	// form the public API promises is materialized only here, once per
	// successful match.
	n, b, ok := m.matchSeq(m.Pattern, stmts[start:], false, nil)
	if !ok {
		return 0, nil, false
	}
	return n, b.bindings(), true
}

// bindNode is one link of the matcher-internal persistent bindings list.
// Prepending shadows earlier entries for the same tag, which is how a
// backtracking block trial rebinds its tag per extent.
type bindNode struct {
	tag  string
	val  Bound
	next *bindNode
}

// with returns the list extended by one binding; the receiver (which may
// be nil) is shared, not copied.
func (n *bindNode) with(tag string, v Bound) *bindNode {
	return &bindNode{tag: tag, val: v, next: n}
}

// bindings converts the list to the public map form; the most recent
// binding of a tag wins. A nil list yields nil.
func (n *bindNode) bindings() Bindings {
	if n == nil {
		return nil
	}
	out := make(Bindings)
	for c := n; c != nil; c = c.next {
		if _, ok := out[c.tag]; !ok {
			out[c.tag] = c.val
		}
	}
	return out
}

// matchSeq matches a pattern statement sequence against target statements.
// When anchored, the pattern must consume the entire target list (used for
// nested bodies such as if/for blocks); otherwise a prefix match suffices.
func (m *MetaModel) matchSeq(pat, tgt []ast.Stmt, anchored bool, b *bindNode) (int, *bindNode, bool) {
	if len(pat) == 0 {
		if anchored && len(tgt) != 0 {
			return 0, nil, false
		}
		return 0, b, true
	}

	// Block directives get sequence-level treatment with backtracking.
	if d := m.stmtDirective(pat[0]); d != nil && d.Kind == KindBlock {
		maxK := d.MaxStmts
		if maxK < 0 || maxK > len(tgt) {
			maxK = len(tgt)
		}
		for k := d.MinStmts; k <= maxK; k++ {
			// Lookahead prune: skip extents whose follow-up statement
			// cannot possibly unify with the next pattern element.
			if len(pat) > 1 && k < len(tgt) && !m.canOpen(pat[1], tgt[k]) {
				continue
			}
			trial := b
			if d.Tag != "" {
				// Full slice expression: consumers treat bound statement
				// runs as read-only, so aliasing the target list avoids a
				// copy per backtracking step; the cap guard keeps an
				// appending consumer from clobbering the target.
				trial = b.with(d.Tag, Bound{Stmts: tgt[:k:k]})
			}
			rest, out, ok := m.matchSeq(pat[1:], tgt[k:], anchored, trial)
			if ok {
				return k + rest, out, true
			}
		}
		return 0, nil, false
	}

	if len(tgt) == 0 {
		return 0, nil, false
	}
	out, ok := m.matchStmt(pat[0], tgt[0], b)
	if !ok {
		return 0, nil, false
	}
	rest, out, ok := m.matchSeq(pat[1:], tgt[1:], anchored, out)
	if !ok {
		return 0, nil, false
	}
	return 1 + rest, out, true
}

// stmtDirective returns the directive when the pattern statement is a bare
// placeholder expression statement, else nil.
func (m *MetaModel) stmtDirective(s ast.Stmt) *Directive {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	return m.HoleFor(es.X)
}

// matchStmt matches a single pattern statement against a single target
// statement, returning the (possibly extended) bindings.
func (m *MetaModel) matchStmt(p, t ast.Stmt, b *bindNode) (*bindNode, bool) {
	// A bare directive in statement position.
	if d := m.stmtDirective(p); d != nil {
		switch d.Kind {
		case KindCall:
			// Statement-position $CALL matches only statements whose
			// outermost expression is the call itself (G-SWFIT MFC rule:
			// the return value must be unused).
			es, ok := t.(*ast.ExprStmt)
			if !ok {
				return nil, false
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return nil, false
			}
			return m.matchCallDirective(d, call, b)
		case KindAny:
			if d.Tag != "" {
				b = b.with(d.Tag, Bound{Stmts: []ast.Stmt{t}})
			}
			return b, true
		default:
			return nil, false
		}
	}

	switch ps := p.(type) {
	case *ast.ExprStmt:
		ts, ok := t.(*ast.ExprStmt)
		if !ok {
			return nil, false
		}
		return m.matchExpr(ps.X, ts.X, b)
	case *ast.AssignStmt:
		ts, ok := t.(*ast.AssignStmt)
		if !ok || ps.Tok != ts.Tok || len(ps.Lhs) != len(ts.Lhs) || len(ps.Rhs) != len(ts.Rhs) {
			return nil, false
		}
		// Sides matched separately: concatenating with append would
		// allocate two scratch slices per unify attempt on this hot path.
		if b, ok = m.matchExprLists(ps.Lhs, ts.Lhs, b); !ok {
			return nil, false
		}
		return m.matchExprLists(ps.Rhs, ts.Rhs, b)
	case *ast.ReturnStmt:
		ts, ok := t.(*ast.ReturnStmt)
		if !ok || len(ps.Results) != len(ts.Results) {
			return nil, false
		}
		return m.matchExprLists(ps.Results, ts.Results, b)
	case *ast.IfStmt:
		ts, ok := t.(*ast.IfStmt)
		if !ok {
			return nil, false
		}
		if (ps.Init == nil) != (ts.Init == nil) {
			return nil, false
		}
		if ps.Init != nil {
			var okInit bool
			b, okInit = m.matchStmt(ps.Init, ts.Init, b)
			if !okInit {
				return nil, false
			}
		}
		b, ok = m.matchExpr(ps.Cond, ts.Cond, b)
		if !ok {
			return nil, false
		}
		_, b, ok = m.matchSeq(ps.Body.List, ts.Body.List, true, b)
		if !ok {
			return nil, false
		}
		if (ps.Else == nil) != (ts.Else == nil) {
			return nil, false
		}
		if ps.Else != nil {
			return m.matchStmt(ps.Else, ts.Else, b)
		}
		return b, true
	case *ast.BlockStmt:
		ts, ok := t.(*ast.BlockStmt)
		if !ok {
			return nil, false
		}
		_, b, ok = m.matchSeq(ps.List, ts.List, true, b)
		return b, ok
	case *ast.ForStmt:
		ts, ok := t.(*ast.ForStmt)
		if !ok {
			return nil, false
		}
		if (ps.Init == nil) != (ts.Init == nil) || (ps.Cond == nil) != (ts.Cond == nil) || (ps.Post == nil) != (ts.Post == nil) {
			return nil, false
		}
		if ps.Init != nil {
			if b, ok = m.matchStmt(ps.Init, ts.Init, b); !ok {
				return nil, false
			}
		}
		if ps.Cond != nil {
			if b, ok = m.matchExpr(ps.Cond, ts.Cond, b); !ok {
				return nil, false
			}
		}
		if ps.Post != nil {
			if b, ok = m.matchStmt(ps.Post, ts.Post, b); !ok {
				return nil, false
			}
		}
		_, b, ok = m.matchSeq(ps.Body.List, ts.Body.List, true, b)
		return b, ok
	case *ast.RangeStmt:
		ts, ok := t.(*ast.RangeStmt)
		if !ok || ps.Tok != ts.Tok {
			return nil, false
		}
		if (ps.Key == nil) != (ts.Key == nil) || (ps.Value == nil) != (ts.Value == nil) {
			return nil, false
		}
		if ps.Key != nil {
			if b, ok = m.matchExpr(ps.Key, ts.Key, b); !ok {
				return nil, false
			}
		}
		if ps.Value != nil {
			if b, ok = m.matchExpr(ps.Value, ts.Value, b); !ok {
				return nil, false
			}
		}
		if b, ok = m.matchExpr(ps.X, ts.X, b); !ok {
			return nil, false
		}
		_, b, ok = m.matchSeq(ps.Body.List, ts.Body.List, true, b)
		return b, ok
	case *ast.BranchStmt:
		ts, ok := t.(*ast.BranchStmt)
		if !ok || ps.Tok != ts.Tok {
			return nil, false
		}
		if (ps.Label == nil) != (ts.Label == nil) {
			return nil, false
		}
		if ps.Label != nil && ps.Label.Name != ts.Label.Name {
			return nil, false
		}
		return b, true
	case *ast.DeferStmt:
		ts, ok := t.(*ast.DeferStmt)
		if !ok {
			return nil, false
		}
		return m.matchExpr(ps.Call, ts.Call, b)
	case *ast.GoStmt:
		ts, ok := t.(*ast.GoStmt)
		if !ok {
			return nil, false
		}
		return m.matchExpr(ps.Call, ts.Call, b)
	case *ast.IncDecStmt:
		ts, ok := t.(*ast.IncDecStmt)
		if !ok || ps.Tok != ts.Tok {
			return nil, false
		}
		return m.matchExpr(ps.X, ts.X, b)
	case *ast.SwitchStmt:
		ts, ok := t.(*ast.SwitchStmt)
		if !ok {
			return nil, false
		}
		if (ps.Tag == nil) != (ts.Tag == nil) {
			return nil, false
		}
		if ps.Tag != nil {
			if b, ok = m.matchExpr(ps.Tag, ts.Tag, b); !ok {
				return nil, false
			}
		}
		if len(ps.Body.List) != len(ts.Body.List) {
			return nil, false
		}
		for i := range ps.Body.List {
			pc, okP := ps.Body.List[i].(*ast.CaseClause)
			tc, okT := ts.Body.List[i].(*ast.CaseClause)
			if !okP || !okT || len(pc.List) != len(tc.List) {
				return nil, false
			}
			if b, ok = m.matchExprLists(pc.List, tc.List, b); !ok {
				return nil, false
			}
			if _, b, ok = m.matchSeq(pc.Body, tc.Body, true, b); !ok {
				return nil, false
			}
		}
		return b, true
	case *ast.LabeledStmt:
		ts, ok := t.(*ast.LabeledStmt)
		if !ok || ps.Label.Name != ts.Label.Name {
			return nil, false
		}
		return m.matchStmt(ps.Stmt, ts.Stmt, b)
	case *ast.EmptyStmt:
		_, ok := t.(*ast.EmptyStmt)
		if !ok {
			return nil, false
		}
		return b, true
	default:
		return nil, false
	}
}

func (m *MetaModel) matchExprLists(ps, ts []ast.Expr, b *bindNode) (*bindNode, bool) {
	if len(ps) != len(ts) {
		return nil, false
	}
	for i := range ps {
		var ok bool
		b, ok = m.matchExpr(ps[i], ts[i], b)
		if !ok {
			return nil, false
		}
	}
	return b, true
}

// matchExpr matches a pattern expression (which may be a directive
// placeholder) against a target expression.
func (m *MetaModel) matchExpr(p, t ast.Expr, b *bindNode) (*bindNode, bool) {
	for {
		if pp, ok := p.(*ast.ParenExpr); ok {
			p = pp.X
			continue
		}
		break
	}
	for {
		if tp, ok := t.(*ast.ParenExpr); ok {
			t = tp.X
			continue
		}
		break
	}

	if d := m.HoleFor(p); d != nil {
		return m.matchDirectiveExpr(d, t, b)
	}

	switch pe := p.(type) {
	case *ast.Ident:
		te, ok := t.(*ast.Ident)
		if !ok || pe.Name != te.Name {
			return nil, false
		}
		return b, true
	case *ast.BasicLit:
		te, ok := t.(*ast.BasicLit)
		if !ok || pe.Kind != te.Kind || pe.Value != te.Value {
			return nil, false
		}
		return b, true
	case *ast.SelectorExpr:
		te, ok := t.(*ast.SelectorExpr)
		if !ok || pe.Sel.Name != te.Sel.Name {
			return nil, false
		}
		return m.matchExpr(pe.X, te.X, b)
	case *ast.CallExpr:
		te, ok := t.(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		b, ok = m.matchExpr(pe.Fun, te.Fun, b)
		if !ok {
			return nil, false
		}
		return m.matchRawArgs(pe.Args, te.Args, b)
	case *ast.BinaryExpr:
		te, ok := t.(*ast.BinaryExpr)
		if !ok || pe.Op != te.Op {
			return nil, false
		}
		b, ok = m.matchExpr(pe.X, te.X, b)
		if !ok {
			return nil, false
		}
		return m.matchExpr(pe.Y, te.Y, b)
	case *ast.UnaryExpr:
		te, ok := t.(*ast.UnaryExpr)
		if !ok || pe.Op != te.Op {
			return nil, false
		}
		return m.matchExpr(pe.X, te.X, b)
	case *ast.IndexExpr:
		te, ok := t.(*ast.IndexExpr)
		if !ok {
			return nil, false
		}
		b, ok = m.matchExpr(pe.X, te.X, b)
		if !ok {
			return nil, false
		}
		return m.matchExpr(pe.Index, te.Index, b)
	case *ast.SliceExpr:
		te, ok := t.(*ast.SliceExpr)
		if !ok {
			return nil, false
		}
		pairs := [][2]ast.Expr{{pe.Low, te.Low}, {pe.High, te.High}, {pe.Max, te.Max}}
		b, ok = m.matchExpr(pe.X, te.X, b)
		if !ok {
			return nil, false
		}
		for _, pr := range pairs {
			if (pr[0] == nil) != (pr[1] == nil) {
				return nil, false
			}
			if pr[0] != nil {
				if b, ok = m.matchExpr(pr[0], pr[1], b); !ok {
					return nil, false
				}
			}
		}
		return b, true
	case *ast.StarExpr:
		te, ok := t.(*ast.StarExpr)
		if !ok {
			return nil, false
		}
		return m.matchExpr(pe.X, te.X, b)
	case *ast.KeyValueExpr:
		te, ok := t.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		b, ok = m.matchExpr(pe.Key, te.Key, b)
		if !ok {
			return nil, false
		}
		return m.matchExpr(pe.Value, te.Value, b)
	case *ast.CompositeLit:
		te, ok := t.(*ast.CompositeLit)
		if !ok || len(pe.Elts) != len(te.Elts) {
			return nil, false
		}
		if (pe.Type == nil) != (te.Type == nil) {
			return nil, false
		}
		if pe.Type != nil {
			if b, ok = m.matchExpr(pe.Type, te.Type, b); !ok {
				return nil, false
			}
		}
		return m.matchExprLists(pe.Elts, te.Elts, b)
	case *ast.MapType:
		te, ok := t.(*ast.MapType)
		if !ok {
			return nil, false
		}
		b, ok = m.matchExpr(pe.Key, te.Key, b)
		if !ok {
			return nil, false
		}
		return m.matchExpr(pe.Value, te.Value, b)
	case *ast.ArrayType:
		te, ok := t.(*ast.ArrayType)
		if !ok || (pe.Len == nil) != (te.Len == nil) {
			return nil, false
		}
		if pe.Len != nil {
			if b, ok = m.matchExpr(pe.Len, te.Len, b); !ok {
				return nil, false
			}
		}
		return m.matchExpr(pe.Elt, te.Elt, b)
	default:
		return nil, false
	}
}

// matchRawArgs matches a raw-Go argument list (exact arity) but still
// honours placeholder patterns inside individual arguments.
func (m *MetaModel) matchRawArgs(ps, ts []ast.Expr, b *bindNode) (*bindNode, bool) {
	return m.matchExprLists(ps, ts, b)
}

// matchDirectiveExpr matches a directive placeholder in expression context.
func (m *MetaModel) matchDirectiveExpr(d *Directive, t ast.Expr, b *bindNode) (*bindNode, bool) {
	bind := func(b *bindNode) *bindNode {
		if d.Tag == "" {
			return b
		}
		return b.with(d.Tag, Bound{Expr: t})
	}
	switch d.Kind {
	case KindCall:
		call, ok := t.(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		return m.matchCallDirective(d, call, b)
	case KindExpr:
		if v, ok := d.Attrs["var"]; ok && !MentionsIdent(t, v) {
			return nil, false
		}
		return bind(b), true
	case KindVar:
		id, ok := t.(*ast.Ident)
		if !ok || id.Name == "nil" {
			return nil, false
		}
		if v, ok := d.Attrs["name"]; ok && !GlobAny(v, id.Name) {
			return nil, false
		}
		return bind(b), true
	case KindString:
		lit, ok := t.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return nil, false
		}
		val, err := strconv.Unquote(lit.Value)
		if err != nil {
			return nil, false
		}
		if !GlobAny(d.ValPattern(), val) {
			return nil, false
		}
		return bind(b), true
	case KindInt:
		lit, ok := t.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			return nil, false
		}
		if !GlobAny(d.ValPattern(), lit.Value) {
			return nil, false
		}
		return bind(b), true
	case KindNil:
		id, ok := t.(*ast.Ident)
		if !ok || id.Name != "nil" {
			return nil, false
		}
		return b, true
	case KindAny:
		return bind(b), true
	default:
		// Replacement-only directives never match in pattern position.
		return nil, false
	}
}

// matchCallDirective matches a $CALL directive against a call expression:
// the callee name must match the name glob (against either the full dotted
// path or its final segment) and, when an argument pattern was written,
// the arguments must match it.
func (m *MetaModel) matchCallDirective(d *Directive, call *ast.CallExpr, b *bindNode) (*bindNode, bool) {
	name := CalleeName(call.Fun)
	if name == "" {
		return nil, false
	}
	pat := d.NamePattern()
	last := name
	if i := lastDot(name); i >= 0 {
		last = name[i+1:]
	}
	if !GlobAny(pat, name) && !GlobAny(pat, last) {
		return nil, false
	}
	if d.HasArgs {
		var ok bool
		b, ok = m.matchArgSeq(d.Args, call.Args, b)
		if !ok {
			return nil, false
		}
	}
	if d.Tag != "" {
		b = b.with(d.Tag, Bound{Expr: call})
	}
	return b, true
}

// matchArgSeq matches a $CALL argument pattern (with "..." wildcards)
// against concrete call arguments, lazily and with backtracking.
func (m *MetaModel) matchArgSeq(pats []ArgPat, args []ast.Expr, b *bindNode) (*bindNode, bool) {
	if len(pats) == 0 {
		if len(args) != 0 {
			return nil, false
		}
		return b, true
	}
	p0 := pats[0]
	if p0.Ellipsis {
		// No clone per extent: downstream matchers copy-on-write, so a
		// failed trial leaves b untouched.
		for k := 0; k <= len(args); k++ {
			if out, ok := m.matchArgSeq(pats[1:], args[k:], b); ok {
				return out, true
			}
		}
		return nil, false
	}
	if len(args) == 0 {
		return nil, false
	}
	out, ok := m.matchExpr(p0.Expr, args[0], b)
	if !ok {
		return nil, false
	}
	return m.matchArgSeq(pats[1:], args[1:], out)
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
