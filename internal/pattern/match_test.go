package pattern_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
)

// matchCount compiles a spec and counts prefix matches over the top-level
// statement list of a single-function target body.
func matchCount(t *testing.T, specSrc, body string) int {
	t.Helper()
	mm, err := dsl.Compile("spec", specSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse target: %v", err)
	}
	count := 0
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		stmts := fd.Body.List
		for start := range stmts {
			if _, _, ok := mm.MatchPrefix(stmts, start); ok {
				count++
			}
		}
	}
	return count
}

func TestMatchReturnStatements(t *testing.T) {
	n := matchCount(t, `
change {
	return $EXPR#e
} into {
	return $NIL
}`, `
	if cond() {
		return compute()
	}
	return fallback()
`)
	// Only the top-level return is visible to a prefix scan of the
	// outer list; the nested one lives in the if body's list.
	if n != 1 {
		t.Fatalf("matches = %d, want 1", n)
	}
}

func TestMatchForLoopShape(t *testing.T) {
	n := matchCount(t, `
change {
	for $VAR#i := 0; $EXPR#c; $VAR#j++ {
		$BLOCK{tag=b; stmts=1,*}
	}
} into {
	$BLOCK{tag=b}
}`, `
	for i := 0; i < n; i++ {
		work(i)
	}
	for j := 0; j < n; j++ {
		other(j)
	}
	for k := 1; k < n; k++ {
		other(k)
	}
`)
	if n != 2 {
		t.Fatalf("matches = %d, want 2", n)
	}
}

func TestMatchRangeShape(t *testing.T) {
	n := matchCount(t, `
change {
	for _, $VAR#v := range $EXPR#xs {
		$BLOCK{stmts=1,*}
	}
} into {
}`, `
	for _, x := range items {
		use(x)
	}
	for i := range items {
		use(i)
	}
`)
	// The key-only range must not match the key/value pattern.
	if n != 1 {
		t.Fatalf("matches = %d, want 1", n)
	}
}

func TestMatchDeferAndGo(t *testing.T) {
	n := matchCount(t, `
change {
	defer $CALL#c{name=cleanup}(...)
} into {
}`, `
	defer cleanup(x)
	defer other(x)
	cleanup(y)
`)
	if n != 1 {
		t.Fatalf("matches = %d, want 1 (only the deferred cleanup)", n)
	}
}

func TestMatchSwitchShape(t *testing.T) {
	n := matchCount(t, `
change {
	switch $EXPR#x {
	case 1:
		$BLOCK{stmts=1,*}
	default:
		$BLOCK{stmts=1,*}
	}
} into {
}`, `
	switch mode {
	case 1:
		fast()
	default:
		slow()
	}
	switch mode {
	case 2:
		fast()
	default:
		slow()
	}
`)
	// The second switch has case 2, not case 1.
	if n != 1 {
		t.Fatalf("matches = %d, want 1", n)
	}
}

func TestMatchArgBacktracking(t *testing.T) {
	// Two wildcard runs around a middle string: the engine must find the
	// matching split even when several strings are present.
	n := matchCount(t, `
change {
	$CALL#c{name=run}(..., $STRING#s{val=-v}, ...)
} into {
}`, `
	run("a", "-v", "b")
	run("-v")
	run("a", "b")
`)
	if n != 2 {
		t.Fatalf("matches = %d, want 2", n)
	}
}

func TestMatchCompositeAndIndex(t *testing.T) {
	n := matchCount(t, `
change {
	$VAR#m = map[string]any{"mode": $STRING#v}
} into {
}`, `
	cfg = map[string]any{"mode": "fast"}
	cfg = map[string]any{"level": "high"}
	cfg = map[string]any{"mode": "fast", "extra": "x"}
`)
	if n != 1 {
		t.Fatalf("matches = %d, want 1 (exact composite shape)", n)
	}
}

func TestMatchIncDec(t *testing.T) {
	n := matchCount(t, `
change {
	$VAR#x++
} into {
	$VAR#x--
}`, `
	count++
	count--
	total++
`)
	if n != 2 {
		t.Fatalf("matches = %d, want 2", n)
	}
}

func TestBlockCardinalityBounds(t *testing.T) {
	// stmts=2,3 must reject single-statement and four-statement bodies.
	spec := `
change {
	if $EXPR#e {
		$BLOCK{stmts=2,3}
	}
} into {
}`
	if n := matchCount(t, spec, "if a { one() }"); n != 0 {
		t.Errorf("1-stmt body matched stmts=2,3 (n=%d)", n)
	}
	if n := matchCount(t, spec, "if a { one(); two() }"); n != 1 {
		t.Errorf("2-stmt body should match (n=%d)", n)
	}
	if n := matchCount(t, spec, "if a { one(); two(); three(); four() }"); n != 0 {
		t.Errorf("4-stmt body matched stmts=2,3 (n=%d)", n)
	}
}

func TestMentionsIdentGlob(t *testing.T) {
	fset := token.NewFileSet()
	expr, err := parser.ParseExpr("node.Status + retries")
	if err != nil {
		t.Fatal(err)
	}
	_ = fset
	if !pattern.MentionsIdent(expr, "node") {
		t.Error("should mention node")
	}
	if !pattern.MentionsIdent(expr, "retr*") {
		t.Error("should mention retr* glob")
	}
	if pattern.MentionsIdent(expr, "missing") {
		t.Error("should not mention missing")
	}
}

func TestCalleeNameShapes(t *testing.T) {
	for _, tc := range []struct {
		expr string
		want string
	}{
		{"f(x)", "f"},
		{"pkg.F(x)", "pkg.F"},
		{"a.b.C(x)", "a.b.C"},
		{"(pkg.F)(x)", "pkg.F"},
		{"funcs[0](x)", ""},
	} {
		e, err := parser.ParseExpr(tc.expr)
		if err != nil {
			t.Fatal(err)
		}
		call, ok := e.(*ast.CallExpr)
		if !ok {
			t.Fatalf("%s is not a call", tc.expr)
		}
		if got := pattern.CalleeName(call.Fun); got != tc.want {
			t.Errorf("CalleeName(%s) = %q, want %q", tc.expr, got, tc.want)
		}
	}
}
