// Package pattern implements the meta-model that the ProFIPy DSL compiles
// into, and the engine that matches a meta-model against a target Go AST.
//
// A meta-model is a pair of statement lists — the code pattern and the code
// replacement — expressed as ordinary Go AST fragments in which special
// placeholder identifiers stand for DSL directives ($CALL, $BLOCK, $EXPR,
// $STRING, ...). The matching engine walks target statement windows and
// unifies directive placeholders with concrete AST nodes, producing a set
// of tag bindings that the mutator later splices into the replacement.
package pattern

import (
	"fmt"
	"go/ast"
	"go/token"
	"reflect"
	"strconv"
	"strings"
	"sync"
)

// Kind identifies a DSL directive.
type Kind int

// Directive kinds. KindCall matches call expressions, KindBlock matches a
// run of consecutive statements, and so on. The remaining kinds (KindCorrupt,
// KindHog, KindTimeout, KindPanic) are replacement-only directives that
// expand into runtime hook calls.
const (
	KindCall Kind = iota + 1
	KindBlock
	KindExpr
	KindVar
	KindString
	KindInt
	KindAny
	KindNil
	KindCorrupt
	KindHog
	KindTimeout
	KindPanic
)

var kindNames = map[Kind]string{
	KindCall:    "CALL",
	KindBlock:   "BLOCK",
	KindExpr:    "EXPR",
	KindVar:     "VAR",
	KindString:  "STRING",
	KindInt:     "INT",
	KindAny:     "ANY",
	KindNil:     "NIL",
	KindCorrupt: "CORRUPT",
	KindHog:     "HOG",
	KindTimeout: "TIMEOUT",
	KindPanic:   "PANIC",
}

// String returns the DSL spelling of the directive kind (without the $).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "UNKNOWN(" + strconv.Itoa(int(k)) + ")"
}

// KindByName maps a DSL directive name (e.g. "CALL") to its Kind.
// The second return value reports whether the name is known.
func KindByName(name string) (Kind, bool) {
	for k, s := range kindNames {
		if s == name {
			return k, true
		}
	}
	return 0, false
}

// ArgPat is one element of a $CALL argument pattern. Either Ellipsis is
// true (matches zero or more arguments) or Expr holds an expression pattern
// (which may itself contain directive placeholders).
type ArgPat struct {
	Ellipsis bool
	Expr     ast.Expr
}

// Directive is the compiled form of one DSL directive occurrence.
type Directive struct {
	Kind  Kind
	Tag   string            // binding tag ("" when untagged)
	Attrs map[string]string // raw key=value attributes
	Args  []ArgPat          // for KindCall: argument patterns; nil = no parens

	// Block cardinality, for KindBlock. MaxStmts < 0 means unbounded (*).
	MinStmts int
	MaxStmts int

	// HasArgs records whether an argument list was written at all. A bare
	// $CALL{...} with no parentheses matches a call with any arguments.
	HasArgs bool
}

// NamePattern returns the glob the directive's name attribute holds
// ("*" when absent).
func (d *Directive) NamePattern() string {
	if v, ok := d.Attrs["name"]; ok {
		return v
	}
	return "*"
}

// ValPattern returns the glob for literal-value matching ("*" when absent).
func (d *Directive) ValPattern() string {
	if v, ok := d.Attrs["val"]; ok {
		return v
	}
	return "*"
}

// String renders the directive roughly in DSL syntax, for diagnostics.
func (d *Directive) String() string {
	var sb strings.Builder
	sb.WriteByte('$')
	sb.WriteString(d.Kind.String())
	if d.Tag != "" {
		sb.WriteByte('#')
		sb.WriteString(d.Tag)
	}
	if len(d.Attrs) > 0 {
		sb.WriteByte('{')
		first := true
		for k, v := range d.Attrs {
			if !first {
				sb.WriteString("; ")
			}
			first = false
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(v)
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

// MetaModel is a compiled bug specification: the code pattern to search
// for and the code replacement to inject, plus the directive table keyed
// by placeholder identifier (__dsl_N).
type MetaModel struct {
	Name    string
	Pattern []ast.Stmt
	Replace []ast.Stmt
	Holes   map[string]*Directive
	Fset    *token.FileSet

	// First-statement pre-filter index, computed lazily (and race-free)
	// on first match: when the pattern's leading element can only match
	// one concrete statement kind, MatchPrefix rejects every other start
	// position with a single type comparison instead of a full unify.
	startOnce sync.Once
	startAny  bool
	startType reflect.Type
}

// initStartFilter computes the pre-filter index from the pattern head.
//
//   - empty pattern, leading $BLOCK, or leading $ANY: any statement (or
//     none at all) can open a match, so the filter stays permissive;
//   - leading bare $CALL: only an expression statement can open a match
//     (statement-position $CALL requires the call's value to be unused);
//   - leading concrete statement: only the same statement kind can open a
//     match, since matchStmt unifies like-with-like.
func (m *MetaModel) initStartFilter() {
	if len(m.Pattern) == 0 {
		m.startAny = true
		return
	}
	if d := m.stmtDirective(m.Pattern[0]); d != nil {
		if d.Kind == KindCall {
			m.startType = reflect.TypeOf((*ast.ExprStmt)(nil))
			return
		}
		// $BLOCK and $ANY accept any leading statement; other directives
		// never match in statement position, which matchStmt rejects
		// uniformly, so staying permissive is still correct.
		m.startAny = true
		return
	}
	m.startType = reflect.TypeOf(m.Pattern[0])
}

// CanStartWith reports whether a match could possibly begin at the given
// statement, per the pre-filter index. A false answer is definitive; a
// true answer still requires a full MatchPrefix.
func (m *MetaModel) CanStartWith(s ast.Stmt) bool {
	m.startOnce.Do(m.initStartFilter)
	return m.startAny || reflect.TypeOf(s) == m.startType
}

// canOpen is the uncached form of the pre-filter, applied to an arbitrary
// pattern element: it reports whether target statement t could possibly
// unify with pattern statement p. Used by the block matcher to discard
// extents whose follow-up statement is of the wrong kind before paying
// for a recursive unify. False negatives are not allowed; false
// positives just cost the unify that would have happened anyway.
func (m *MetaModel) canOpen(p, t ast.Stmt) bool {
	if d := m.stmtDirective(p); d != nil {
		if d.Kind == KindCall {
			_, ok := t.(*ast.ExprStmt)
			return ok
		}
		return true
	}
	return reflect.TypeOf(p) == reflect.TypeOf(t)
}

// HoleFor returns the directive bound to a placeholder expression, or nil
// when the expression is not a placeholder. Directives that consume an
// argument list ($CALL, $CORRUPT, ...) are emitted as zero-argument calls
// (`__dsl_N()`) so they parse in call-only positions such as defer and go
// statements; both spellings resolve here.
func (m *MetaModel) HoleFor(e ast.Expr) *Directive {
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 0 {
		e = call.Fun
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return m.Holes[id.Name]
}

// Bound is a value captured by a tagged directive during matching: either
// a statement run (for $BLOCK) or a single expression (everything else).
type Bound struct {
	Stmts []ast.Stmt
	Expr  ast.Expr
}

// Bindings maps directive tags to the nodes they captured. The matcher
// threads bindings internally as a persistent list (see bindNode) and
// materializes this map once per successful match.
type Bindings map[string]Bound

// Match is one occurrence of a meta-model's code pattern in a target file:
// a window of N consecutive statements starting at Start within the
// statement list identified by BlockPath.
type Match struct {
	File      string
	FuncName  string // enclosing function or method, "" at file scope
	BlockPath []int  // child indices from the function body to the stmt list
	Start     int    // first statement index in the window
	N         int    // statements consumed by the pattern
	Pos       token.Position
	Bindings  Bindings
}

// ID returns a stable identifier for the match within its file.
func (m *Match) ID() string {
	parts := make([]string, 0, len(m.BlockPath)+2)
	for _, p := range m.BlockPath {
		parts = append(parts, strconv.Itoa(p))
	}
	return fmt.Sprintf("%s:%s:%s@%d+%d", m.File, m.FuncName, strings.Join(parts, "."), m.Start, m.N)
}
