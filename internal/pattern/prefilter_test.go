package pattern_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"profipy/internal/dsl"
)

func parseBody(t *testing.T, body string) []ast.Stmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body.List
}

// TestPrefilterAgreesWithMatch: CanStartWith may only reject start
// positions that MatchPrefix would reject too — across pattern heads of
// every flavor (concrete statement, bare $CALL, $BLOCK, $ANY).
func TestPrefilterAgreesWithMatch(t *testing.T) {
	specs := map[string]string{
		"if-head": `
change {
	if $EXPR#e {
		$BLOCK{stmts=1,4}
	}
} into {
}`,
		"assign-head": `
change {
	$VAR#v := $CALL#c{name=*}(...)
} into {
	$VAR#v := $NIL
}`,
		"call-head": `
change {
	$CALL{name=*}(...)
} into {
}`,
		"block-head": `
change {
	$BLOCK{tag=b; stmts=1,*}
	return $EXPR#e
} into {
	$BLOCK{tag=b}
}`,
		"any-head": `
change {
	$ANY#a
	$CALL{name=mark}(...)
} into {
	$ANY#a
}`,
		"return-head": `
change {
	return $EXPR#e
} into {
	return $NIL
}`,
	}
	stmts := parseBody(t, `
	x := get(1)
	use(x)
	if x != nil {
		mark(x)
	}
	for i := 0; i < 3; i++ {
		step(i)
	}
	return x
`)
	for name, spec := range specs {
		mm, err := dsl.Compile(name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for start := range stmts {
			_, _, matched := mm.MatchPrefix(stmts, start)
			if matched && !mm.CanStartWith(stmts[start]) {
				t.Errorf("%s: prefilter rejects start %d that the matcher accepts", name, start)
			}
		}
	}
}

// TestPrefilterRejectsImpossibleKinds: the index must actually prune —
// an if-headed pattern refuses non-if starts with a single comparison.
func TestPrefilterRejectsImpossibleKinds(t *testing.T) {
	mm, err := dsl.Compile("mifs", `
change {
	if $EXPR#e {
		$BLOCK{stmts=1,4}
	}
} into {
}`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := parseBody(t, `
	x := get(1)
	use(x)
	if x != nil {
		mark(x)
	}
`)
	if mm.CanStartWith(stmts[0]) {
		t.Error("if-headed pattern must reject an assignment start")
	}
	if mm.CanStartWith(stmts[1]) {
		t.Error("if-headed pattern must reject a call start")
	}
	if !mm.CanStartWith(stmts[2]) {
		t.Error("if-headed pattern must accept an if start")
	}
}

// TestPrefilterCallHead: a statement-position $CALL can only open on an
// expression statement.
func TestPrefilterCallHead(t *testing.T) {
	mm, err := dsl.Compile("mfc", `
change {
	$CALL{name=*}(...)
} into {
}`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := parseBody(t, `
	x := get(1)
	use(x)
`)
	if mm.CanStartWith(stmts[0]) {
		t.Error("$CALL head must reject an assignment")
	}
	if !mm.CanStartWith(stmts[1]) {
		t.Error("$CALL head must accept an expression statement")
	}
}

// TestPrefilterBlockHeadIsPermissive: $BLOCK swallows any leading
// statement, so nothing may be pruned.
func TestPrefilterBlockHeadIsPermissive(t *testing.T) {
	mm, err := dsl.Compile("mfc", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range parseBody(t, `
	x := get(1)
	use(x)
	if x != nil {
		mark(x)
	}
	return x
`) {
		if !mm.CanStartWith(s) {
			t.Errorf("$BLOCK head must accept %T", s)
		}
	}
}

// TestBlockBindingsSurviveBacktracking: the block matcher reuses one
// trial bindings map across extents; a successful match must still carry
// the binding of the extent that succeeded, not a stale or clobbered one.
func TestBlockBindingsSurviveBacktracking(t *testing.T) {
	mm, err := dsl.Compile("mfc", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := parseBody(t, `
	one()
	two()
	DeletePort(x)
	three()
`)
	n, b, ok := mm.MatchPrefix(stmts, 0)
	if !ok || n != 4 {
		t.Fatalf("match: n=%d ok=%v", n, ok)
	}
	if got := len(b["b1"].Stmts); got != 2 {
		t.Errorf("b1 bound %d stmts, want 2 (one(); two())", got)
	}
	if got := len(b["b2"].Stmts); got != 1 {
		t.Errorf("b2 bound %d stmts, want 1 (three())", got)
	}
}
