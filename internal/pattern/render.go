package pattern

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// CalleeName renders the callee of a call expression as a dotted path
// ("Execute", "utils.Execute", "c.conn.Do"). It returns "" for callees
// that are not identifier/selector chains (e.g. immediately-invoked
// function literals).
func CalleeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := CalleeName(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return CalleeName(x.X)
	default:
		return ""
	}
}

// ExprString renders an expression as source text. Used in diagnostics
// and injection-point snippets.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	if e == nil {
		return ""
	}
	if fset == nil {
		fset = token.NewFileSet()
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<unprintable>"
	}
	return buf.String()
}

// StmtString renders a statement as source text.
func StmtString(fset *token.FileSet, s ast.Stmt) string {
	if s == nil {
		return ""
	}
	if fset == nil {
		fset = token.NewFileSet()
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, s); err != nil {
		return "<unprintable>"
	}
	return buf.String()
}

// MentionsIdent reports whether the expression tree mentions an identifier
// whose name matches the given glob.
func MentionsIdent(e ast.Expr, nameGlob string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && GlobAny(nameGlob, id.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}
