// Package plan implements the fault injection plan of §IV-A: the set of
// experiments selected from the scanned injection points, with the
// filtering and sampling operations the Scan phase offers (per-component
// selection, random sampling with a bound on experiments, or everything).
package plan

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"profipy/internal/faultmodel"
	"profipy/internal/pattern"
	"profipy/internal/runtimefault"
	"profipy/internal/scanner"
)

// Plan is a fault injection plan: each injection point is one experiment.
type Plan struct {
	Specs  []faultmodel.Spec        `json:"specs"`
	Points []scanner.InjectionPoint `json:"points"`
}

// New builds a plan from a faultload and the points its scan produced.
func New(specs []faultmodel.Spec, points []scanner.InjectionPoint) *Plan {
	return &Plan{
		Specs:  append([]faultmodel.Spec(nil), specs...),
		Points: append([]scanner.InjectionPoint(nil), points...),
	}
}

// Len returns the number of experiments.
func (p *Plan) Len() int { return len(p.Points) }

// Spec returns the spec for a point, by name.
func (p *Plan) Spec(name string) (faultmodel.Spec, bool) {
	for _, s := range p.Specs {
		if s.Name == name {
			return s, true
		}
	}
	return faultmodel.Spec{}, false
}

// TypeOf returns the fault-type label of a point.
func (p *Plan) TypeOf(pt scanner.InjectionPoint) string {
	if s, ok := p.Spec(pt.Spec); ok && s.Type != "" {
		return s.Type
	}
	return pt.Spec
}

// FilterFile keeps only points in files matching the glob (per-component
// selection).
func (p *Plan) FilterFile(glob string) *Plan {
	out := New(p.Specs, nil)
	for _, pt := range p.Points {
		if pattern.GlobAny(glob, pt.File) {
			out.Points = append(out.Points, pt)
		}
	}
	return out
}

// FilterType keeps only points whose fault type matches the glob.
func (p *Plan) FilterType(glob string) *Plan {
	out := New(p.Specs, nil)
	for _, pt := range p.Points {
		if pattern.GlobAny(glob, p.TypeOf(pt)) {
			out.Points = append(out.Points, pt)
		}
	}
	return out
}

// Keep retains only points whose ID is in the given set (the reduced
// plan produced by coverage analysis).
func (p *Plan) Keep(ids map[string]bool) *Plan {
	out := New(p.Specs, nil)
	for _, pt := range p.Points {
		if ids[pt.ID()] {
			out.Points = append(out.Points, pt)
		}
	}
	return out
}

// Sample selects up to n random points (deterministic for a fixed seed),
// enforcing a bound on the number of experiments.
func (p *Plan) Sample(n int, seed int64) *Plan {
	out := New(p.Specs, nil)
	if n >= len(p.Points) {
		out.Points = append(out.Points, p.Points...)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(p.Points))[:n]
	// Keep plan order stable: sort selected indices.
	sort.Ints(perm)
	for _, idx := range perm {
		out.Points = append(out.Points, p.Points[idx])
	}
	return out
}

// RuntimeFaults compiles the plan's runtime trigger/action specs into
// injector faults keyed by spec name; compile-time specs are skipped.
// An empty map means the plan is purely compile-time mutation. (The
// campaign engine partitions its faultload directly via
// faultmodel.CompileSplit; this is the introspection form for plan
// consumers.)
func (p *Plan) RuntimeFaults() (map[string]*runtimefault.Fault, error) {
	return faultmodel.CompileRuntime(p.Specs)
}

// CountByType returns experiments per fault type.
func (p *Plan) CountByType() map[string]int {
	out := make(map[string]int)
	for _, pt := range p.Points {
		out[p.TypeOf(pt)]++
	}
	return out
}

// CountByFile returns experiments per target file.
func (p *Plan) CountByFile() map[string]int {
	out := make(map[string]int)
	for _, pt := range p.Points {
		out[pt.File]++
	}
	return out
}

// Save serializes the plan to JSON.
func (p *Plan) Save() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Load parses a plan from JSON.
func Load(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: parse: %w", err)
	}
	return &p, nil
}

// Build scans a project with a faultload and returns the full plan.
func Build(files map[string][]byte, specs []faultmodel.Spec) (*Plan, error) {
	return BuildFromCache(scanner.NewProjectCache(files), specs)
}

// BuildFromCache builds a plan against a per-campaign parse cache, so the
// parses produced by the scan survive for the coverage and mutation
// phases. The scan runs with one worker per available CPU; the plan is
// deterministic regardless.
func BuildFromCache(cache *scanner.ProjectCache, specs []faultmodel.Spec) (*Plan, error) {
	models, err := faultmodel.CompileAll(specs)
	if err != nil {
		return nil, err
	}
	points, err := scanner.ScanCache(cache, models, 0)
	if err != nil {
		return nil, err
	}
	return New(specs, points), nil
}
