package plan

import (
	"testing"

	"profipy/internal/faultmodel"
	"profipy/internal/scanner"
)

const target = `package p

func A() {
	pre()
	DeleteX()
	post()
}

func B() {
	pre()
	DeleteY()
	post()
}
`

func buildTestPlan(t *testing.T) *Plan {
	t.Helper()
	specs := []faultmodel.Spec{
		{Name: "mfc", Type: "MFC", DSL: `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`},
		{Name: "calls", Type: "AllCalls", DSL: `
change {
	$CALL{name=p*}(...)
} into {
}`},
	}
	p, err := Build(map[string][]byte{"a.go": []byte(target)}, specs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// buildMixedPlan builds a plan over one compile-time and one runtime
// spec sharing the same target.
func buildMixedPlan(t *testing.T) *Plan {
	t.Helper()
	specs := []faultmodel.Spec{
		{Name: "mfc", Type: "MFC", DSL: `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`},
		{Name: "rt-flaky", Type: "RuntimeFlaky", DSL: `
change {
	$CALL{name=Delete*}(...)
} trigger {
	prob(0.5)
} action {
	raise(E, "m")
}`},
	}
	p, err := Build(map[string][]byte{"a.go": []byte(target)}, specs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// TestRuntimeSpecsEnumerated asserts that runtime trigger/action specs
// produce injection points through the same scan as compile-time ones,
// and that RuntimeFaults identifies them.
func TestRuntimeSpecsEnumerated(t *testing.T) {
	p := buildMixedPlan(t)
	byType := p.CountByType()
	if byType["MFC"] != 2 || byType["RuntimeFlaky"] != 2 {
		t.Fatalf("byType = %v, want 2 MFC + 2 RuntimeFlaky", byType)
	}
	rt, err := p.RuntimeFaults()
	if err != nil {
		t.Fatalf("RuntimeFaults: %v", err)
	}
	if len(rt) != 1 || rt["rt-flaky"] == nil {
		t.Fatalf("RuntimeFaults = %v, want rt-flaky only", rt)
	}
	if rt["rt-flaky"].Do.ExcType != "E" {
		t.Fatalf("runtime fault action = %+v", rt["rt-flaky"].Do)
	}
	runtimePoints := 0
	for _, pt := range p.Points {
		if _, ok := rt[pt.Spec]; ok {
			runtimePoints++
		}
	}
	if runtimePoints != 2 {
		t.Fatalf("runtime points = %d, want 2", runtimePoints)
	}
}

// TestRuntimePlanSurvivesSaveLoad asserts the new spec fields round-trip
// through the plan's JSON form.
func TestRuntimePlanSurvivesSaveLoad(t *testing.T) {
	p := buildMixedPlan(t)
	data, err := p.Save()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := p2.RuntimeFaults()
	if err != nil {
		t.Fatalf("RuntimeFaults after round-trip: %v", err)
	}
	if len(rt) != 1 {
		t.Fatalf("runtime specs lost in round-trip: %v", rt)
	}
}

func TestBuildAndCounts(t *testing.T) {
	p := buildTestPlan(t)
	// 2 MFC matches + 4 pre/post call matches.
	if p.Len() != 6 {
		t.Fatalf("points = %d, want 6", p.Len())
	}
	byType := p.CountByType()
	if byType["MFC"] != 2 || byType["AllCalls"] != 4 {
		t.Fatalf("byType = %v", byType)
	}
	if p.CountByFile()["a.go"] != 6 {
		t.Fatalf("byFile = %v", p.CountByFile())
	}
}

func TestFilters(t *testing.T) {
	p := buildTestPlan(t)
	if got := p.FilterType("MFC").Len(); got != 2 {
		t.Errorf("FilterType = %d, want 2", got)
	}
	if got := p.FilterFile("*.go").Len(); got != 6 {
		t.Errorf("FilterFile(*.go) = %d, want 6", got)
	}
	if got := p.FilterFile("b.*").Len(); got != 0 {
		t.Errorf("FilterFile(b.*) = %d, want 0", got)
	}
}

func TestSampleDeterministic(t *testing.T) {
	p := buildTestPlan(t)
	s1 := p.Sample(3, 42)
	s2 := p.Sample(3, 42)
	if s1.Len() != 3 || s2.Len() != 3 {
		t.Fatalf("sample sizes = %d, %d", s1.Len(), s2.Len())
	}
	for i := range s1.Points {
		if s1.Points[i].ID() != s2.Points[i].ID() {
			t.Fatal("sampling is not deterministic")
		}
	}
	// Sampling more than available returns everything.
	if got := p.Sample(100, 1).Len(); got != p.Len() {
		t.Errorf("oversample = %d, want %d", got, p.Len())
	}
}

func TestKeep(t *testing.T) {
	p := buildTestPlan(t)
	ids := map[string]bool{p.Points[0].ID(): true, p.Points[3].ID(): true}
	kept := p.Keep(ids)
	if kept.Len() != 2 {
		t.Fatalf("kept = %d, want 2", kept.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := buildTestPlan(t)
	data, err := p.Save()
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	p2, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p2.Len() != p.Len() || len(p2.Specs) != len(p.Specs) {
		t.Fatal("round trip mismatch")
	}
	if _, err := Load([]byte("{bad")); err == nil {
		t.Error("Load of bad JSON should fail")
	}
}

func TestTypeOfFallsBackToSpecName(t *testing.T) {
	p := New(nil, []scanner.InjectionPoint{{Spec: "unknown-spec"}})
	if got := p.TypeOf(p.Points[0]); got != "unknown-spec" {
		t.Errorf("TypeOf = %q", got)
	}
}
