// Package remote defines the wire protocol between the profipyd control
// plane and remote execution workers: the serialized campaign spec a
// worker rebuilds its execution context from, the worker registration
// and lease messages, and the NDJSON record envelope workers stream
// results back with.
//
// The protocol is deliberately pull-based and idempotent. Workers
// register, then poll for shard leases; the control plane never dials a
// worker. Every lease carries a fencing token, every record envelope
// carries its plan index, and the control plane deduplicates by index —
// so a lease that expires mid-shard and is re-dispatched to another
// worker can only ever fill holes, never corrupt or duplicate records.
// Experiment seeds derive from the campaign seed plus the plan index,
// so any worker executing any index produces the same record bytes.
package remote

import (
	"crypto/sha256"
	"encoding/hex"

	"profipy/internal/analysis"
	"profipy/internal/faultmodel"
	"profipy/internal/scanner"
)

// CampaignSpec is the serialized form of a campaign's execution phase:
// everything a worker needs to rebuild the campaign Runner and run any
// experiment by plan index. The control plane resolves scan, sampling
// and coverage itself and ships the verdicts, so worker-side Runners
// derive the exact same plan (PlanHash proves it).
type CampaignSpec struct {
	Name string `json:"name"`
	// Files is the full container file set (target + workload sources),
	// keyed by container path. JSON transports the bytes as base64.
	Files     map[string][]byte `json:"files"`
	ScanFiles []string          `json:"scanFiles,omitempty"`
	Faultload []faultmodel.Spec `json:"faultload"`

	// Workload configuration. Env functions don't serialize; EnvName
	// names a well-known host environment ("kvclient", "plain") the
	// worker resolves locally.
	Entry         string   `json:"entry"`
	WorkloadFiles []string `json:"workloadFiles,omitempty"`
	TimeoutNS     int64    `json:"timeoutNs,omitempty"`
	MaxSteps      int64    `json:"maxSteps,omitempty"`
	WallBudgetNS  int64    `json:"wallBudgetNs,omitempty"`
	Rounds        int      `json:"rounds,omitempty"`
	EnvName       string   `json:"envName,omitempty"`

	// Image resource profile (files are filled in per experiment).
	ImageName   string `json:"imageName,omitempty"`
	ImageMemMB  int    `json:"imageMemMb,omitempty"`
	ImageIOMBps int    `json:"imageIoMbps,omitempty"`

	Seed       int64 `json:"seed"`
	SampleN    int   `json:"sampleN,omitempty"`
	ReducePlan bool  `json:"reducePlan,omitempty"`
	TreeWalk   bool  `json:"treeWalk,omitempty"`
	// Engine selects the compiled path's execution engine ("",
	// "bytecode" or "closure"); shipped so worker-side execution uses
	// the same engine as the control plane would.
	Engine string `json:"engine,omitempty"`

	// Covered is the control plane's coverage verdict map; workers use
	// it verbatim instead of re-running the coverage phase.
	Covered map[string]bool `json:"covered,omitempty"`

	// PlanHash fingerprints the control plane's post-reduction
	// exec-point list. A worker whose rebuilt Runner derives a
	// different hash refuses the lease instead of shipping records from
	// a divergent plan.
	PlanHash string `json:"planHash"`
	// NumExperiments is the control plane's exec-point count, shipped
	// so workers can sanity-check shard bounds before executing.
	NumExperiments int `json:"numExperiments"`
}

// PlanHash fingerprints an exec-point list: the sha256 over each
// point's stable identity (file, function, statement address and spec
// name), in plan order. Both sides compute it over their own view of
// the plan; equality means every index maps to the same experiment.
func PlanHash(points []scanner.InjectionPoint) string {
	h := sha256.New()
	for _, pt := range points {
		h.Write([]byte(pt.ID()))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RegisterRequest announces a worker to the control plane.
type RegisterRequest struct {
	// Name is a human-readable worker label (hostname, pod name);
	// the control plane assigns the authoritative ID.
	Name string `json:"name,omitempty"`
	// Parallel is the worker's container parallelism (informational).
	Parallel int `json:"parallel,omitempty"`
}

// RegisterResponse carries the worker's identity and the protocol
// cadence the control plane expects.
type RegisterResponse struct {
	ID string `json:"id"`
	// LeaseTTLMS is how long a shard lease stays valid without a
	// heartbeat before the control plane expires and re-dispatches it.
	LeaseTTLMS int64 `json:"leaseTtlMs"`
	// HeartbeatMS is the interval the worker should heartbeat at
	// (a fraction of the lease TTL).
	HeartbeatMS int64 `json:"heartbeatMs"`
	// PollMS is the suggested lease-poll interval while idle.
	PollMS int64 `json:"pollMs"`
}

// Lease grants a worker one contiguous shard of a campaign's plan.
type Lease struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	// Lo and Hi are the shard's half-open experiment index range
	// [Lo, Hi) into the campaign's post-reduction plan.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Token fences the lease: record ingestion and completion must
	// quote it, and a token from an expired lease is rejected, so a
	// worker that lost its lease (and its re-dispatched successor)
	// cannot interleave corrupt state.
	Token string `json:"token"`
	// PlanHash echoes the campaign spec's plan fingerprint.
	PlanHash string `json:"planHash"`
	// ExpiresMS is the lease deadline in milliseconds from grant;
	// informational — the control plane's clock is authoritative.
	ExpiresMS int64 `json:"expiresMs"`
}

// Execution-path kinds carried in record envelopes: which injection
// path the experiment ran. KindLocal marks records produced by the
// control plane's in-process fallback (its own Runner accounts those).
const (
	KindMutated  = "mutated"  // compile-time source mutation ran
	KindInjected = "injected" // runtime injector table ran
	KindLocal    = "local"    // produced by the local fallback path
	KindError    = ""         // experiment aborted before execution
)

// RecordLine is one experiment result in a worker's NDJSON record
// stream: the plan index, the execution-path kind (KindMutated /
// KindInjected / "") and the record itself. Ingestion deduplicates by
// index, so retransmits after a transport error are harmless.
type RecordLine struct {
	Idx  int             `json:"idx"`
	Kind string          `json:"kind,omitempty"`
	Rec  analysis.Record `json:"rec"`
}

// CompleteRequest reports a fully executed shard.
type CompleteRequest struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Token    string `json:"token"`
}

// WorkerInfo is the control plane's view of one registered worker.
type WorkerInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
	// Live reports whether the worker heartbeated within the lease TTL.
	Live bool `json:"live"`
	// LastSeenMS is milliseconds since the last heartbeat.
	LastSeenMS int64 `json:"lastSeenMs"`
	// Shards counts shards currently leased to the worker.
	Shards int `json:"shards"`
}
