package resultstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"profipy/internal/analysis"
)

// writeCampaign populates a disk store with n records across several
// segments, finishes it and closes the store, returning the campaign
// directory.
func writeCampaign(t *testing.T, dir, id string, n int) string {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSegmentRecords(4)
	w, err := s.StartCampaign(Meta{ID: id, Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, n)
	if err := w.Finish(StatusDone, nil, &analysis.Report{Total: n}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "campaigns", id)
}

func segments(t *testing.T, cdir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(cdir, "records-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no record segments under %s", cdir)
	}
	return names
}

// TestRestoreDropsTornTrailingWrite truncates the last segment
// mid-line (a crashed process's torn write): restore must drop only
// the torn fragment and keep serving every complete record.
func TestRestoreDropsTornTrailingWrite(t *testing.T) {
	dir := t.TempDir()
	cdir := writeCampaign(t, dir, "camp-torn", 10)
	segs := segments(t, cdir)
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("restore with torn segment failed: %v", err)
	}
	defer s.Close()
	got := recordLines(t, s, "camp-torn")
	if len(got) != 9 { // 10 minus the torn final line
		t.Fatalf("restored %d records, want 9", len(got))
	}
}

// TestRestoreQuarantinesBitFlippedSegment corrupts an interior byte of
// the first segment: restore must rename it to .bad, log, and keep
// serving the surviving segments instead of refusing the campaign.
func TestRestoreQuarantinesBitFlippedSegment(t *testing.T) {
	dir := t.TempDir()
	cdir := writeCampaign(t, dir, "camp-rot", 10)
	segs := segments(t, cdir)
	if len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff // destroy the opening brace of the first JSON line
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("restore with corrupt segment failed: %v", err)
	}
	defer s.Close()

	// The damaged file moved aside; the healthy segments still serve.
	if _, err := os.Stat(segs[0] + ".bad"); err != nil {
		t.Errorf("corrupt segment not quarantined: %v", err)
	}
	if _, err := os.Stat(segs[0]); !os.IsNotExist(err) {
		t.Errorf("corrupt segment still present: %v", err)
	}
	got := recordLines(t, s, "camp-rot")
	if len(got) != 6 { // 10 records minus the quarantined 4-record segment
		t.Fatalf("restored %d records, want 6", len(got))
	}
	for _, ln := range got {
		if strings.Contains(string(ln), "\x00") {
			t.Fatal("corrupt bytes leaked into served records")
		}
	}
}

// TestRestoreSurvivesAllSegmentsCorrupt quarantines everything: the
// campaign restores with zero records but the store still opens.
func TestRestoreSurvivesAllSegmentsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cdir := writeCampaign(t, dir, "camp-dead", 6)
	for _, seg := range segments(t, cdir) {
		if err := os.WriteFile(seg, []byte("not json at all\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	defer s.Close()
	if got := recordLines(t, s, "camp-dead"); len(got) != 0 {
		t.Fatalf("restored %d records from fully corrupt campaign, want 0", len(got))
	}
}
