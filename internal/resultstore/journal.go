package resultstore

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
)

// Job journal states recorded in JournalEntry.State. They mirror the
// scheduler's lifecycle; the journal is written ahead of the work
// (queued at submit, running at task start, one terminal state at
// finish), so a crashed process's journal tells the next process
// exactly which jobs still owe execution.
const (
	JournalQueued   = "queued"
	JournalRunning  = "running"
	JournalDone     = "done"
	JournalFailed   = "failed"
	JournalCanceled = "canceled"
)

// JournalEntry is one write-ahead record of a campaign job's lifecycle.
// The submit-time entry carries the full serialized request in Payload,
// so recovery can rebuild the campaign with no other state surviving;
// later transitions carry only the state.
type JournalEntry struct {
	Job      string `json:"job"`
	State    string `json:"state"`
	Campaign string `json:"campaign,omitempty"`
	// Name is the job's display name (the project name), replayed into
	// the scheduler on recovery.
	Name string `json:"name,omitempty"`
	// Payload is the opaque serialized submission (the SaaS layer's
	// request plus its project file snapshot).
	Payload json.RawMessage `json:"payload,omitempty"`
	TimeMS  int64           `json:"timeMs,omitempty"`
}

// Terminal reports whether the entry's state ends the job's lifecycle.
func (e JournalEntry) Terminal() bool {
	return e.State == JournalDone || e.State == JournalFailed || e.State == JournalCanceled
}

// journalRank orders states so folding is append-order independent:
// a late-arriving "queued" line can never downgrade a job the journal
// already saw running or finished.
func journalRank(state string) int {
	switch state {
	case JournalQueued:
		return 1
	case JournalRunning:
		return 2
	case JournalDone, JournalFailed, JournalCanceled:
		return 3
	}
	return 0
}

const journalFile = "journal.jsonl"

// AppendJournal writes one job lifecycle entry ahead of the work it
// describes. The line is fsync'd before AppendJournal returns — this is
// the store's write-ahead durability point — and folded into the
// in-memory pending view (terminal entries retire the job from it).
// Memory-only stores fold without persisting.
func (s *Store) AppendJournal(e JournalEntry) error {
	if e.Job == "" || journalRank(e.State) == 0 {
		return fmt.Errorf("resultstore: journal entry needs a job and a known state (got %q/%q)", e.Job, e.State)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resultstore: journal: %w", err)
	}
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	s.foldJournalLocked(e)
	if s.journalF == nil {
		return nil
	}
	if _, err := s.journalF.Write(append(line, '\n')); err != nil {
		s.met.writeError()
		return fmt.Errorf("resultstore: journal append: %w", err)
	}
	if err := s.journalF.Sync(); err != nil {
		s.met.writeError()
		return fmt.Errorf("resultstore: journal sync: %w", err)
	}
	s.met.fsync()
	return nil
}

// foldJournalLocked merges one entry into the pending-job view; callers
// hold journalMu. Terminal states delete the job (the file keeps its
// history until the next open-time compaction), non-terminal states
// upgrade by rank and fill in fields the first entry carried.
func (s *Store) foldJournalLocked(e JournalEntry) {
	if e.Terminal() {
		if _, ok := s.journalPend[e.Job]; ok {
			delete(s.journalPend, e.Job)
			for i, id := range s.journalOrder {
				if id == e.Job {
					s.journalOrder = append(s.journalOrder[:i], s.journalOrder[i+1:]...)
					break
				}
			}
		}
		return
	}
	cur, ok := s.journalPend[e.Job]
	if !ok {
		cp := e
		s.journalPend[e.Job] = &cp
		s.journalOrder = append(s.journalOrder, e.Job)
		return
	}
	if journalRank(e.State) >= journalRank(cur.State) {
		cur.State = e.State
	}
	if cur.Campaign == "" {
		cur.Campaign = e.Campaign
	}
	if cur.Name == "" {
		cur.Name = e.Name
	}
	if cur.Payload == nil {
		cur.Payload = e.Payload
	}
}

// PendingJobs returns the folded journal view of jobs that never
// reached a terminal state: what a recovering control plane must
// re-enqueue (queued) or resume (running). Entries appear in
// first-journaled order.
func (s *Store) PendingJobs() []JournalEntry {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	out := make([]JournalEntry, 0, len(s.journalOrder))
	for _, id := range s.journalOrder {
		out = append(out, *s.journalPend[id])
	}
	return out
}

// loadJournal replays and compacts the job journal at open. Replay
// tolerates torn writes the same way segments do — only complete,
// valid JSON lines count — then the file is atomically rewritten to
// hold just one folded snapshot per still-pending job, so the journal's
// size is bounded by the live job count rather than the daemon's
// lifetime submission history.
func (s *Store) loadJournal() error {
	path := filepath.Join(s.dir, journalFile)
	dropped := 0
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range completeLines(data) {
			var e JournalEntry
			if !json.Valid(line) || json.Unmarshal(line, &e) != nil || e.Job == "" {
				dropped++
				continue
			}
			s.foldJournalLocked(e)
		}
	}
	if dropped > 0 {
		slog.Warn("resultstore: dropped corrupt job journal lines", "lines", dropped)
	}
	var compact []byte
	for _, id := range s.journalOrder {
		compact = append(compact, mustJSON(s.journalPend[id])...)
		compact = append(compact, '\n')
	}
	if err := writeFileSync(path, compact); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	s.journalF = f
	return nil
}
