package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"profipy/internal/obs"
)

func appendJournal(t *testing.T, s *Store, job, state string) {
	t.Helper()
	if err := s.AppendJournal(JournalEntry{Job: job, State: state, TimeMS: 1}); err != nil {
		t.Fatalf("journal %s %s: %v", job, state, err)
	}
}

func pendingIDs(s *Store) []string {
	var ids []string
	for _, e := range s.PendingJobs() {
		ids = append(ids, e.Job+":"+e.State)
	}
	return ids
}

func TestJournalFoldPrecedence(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "memory"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// queued → running upgrades in place; terminal retires the job;
			// a late stale "queued" after terminal must not resurrect it.
			if err := s.AppendJournal(JournalEntry{
				Job: "job-1", State: JournalQueued, Campaign: "camp-1", Name: "p",
				Payload: json.RawMessage(`{"x":1}`), TimeMS: 1,
			}); err != nil {
				t.Fatal(err)
			}
			appendJournal(t, s, "job-2", JournalQueued)
			appendJournal(t, s, "job-1", JournalRunning)
			got := pendingIDs(s)
			want := []string{"job-1:" + JournalRunning, "job-2:" + JournalQueued}
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("pending = %v, want %v", got, want)
			}
			// The running upgrade must keep the queued entry's payload.
			if p := s.PendingJobs()[0]; string(p.Payload) != `{"x":1}` || p.Campaign != "camp-1" {
				t.Fatalf("upgrade lost payload: %+v", p)
			}
			appendJournal(t, s, "job-2", JournalDone)
			appendJournal(t, s, "job-1", JournalFailed)
			if got := pendingIDs(s); len(got) != 0 {
				t.Fatalf("pending after terminal = %v, want none", got)
			}
			// A running entry with no prior queued entry still pends.
			appendJournal(t, s, "job-3", JournalRunning)
			if got := pendingIDs(s); len(got) != 1 || got[0] != "job-3:"+JournalRunning {
				t.Fatalf("pending = %v", got)
			}
			if err := s.AppendJournal(JournalEntry{Job: "", State: JournalQueued}); err == nil {
				t.Fatal("journal accepted empty job ID")
			}
		})
	}
}

func TestJournalSurvivesRestartAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendJournal(t, s, "job-1", JournalQueued)
	appendJournal(t, s, "job-1", JournalRunning)
	appendJournal(t, s, "job-2", JournalQueued)
	appendJournal(t, s, "job-3", JournalQueued)
	appendJournal(t, s, "job-3", JournalDone)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final append: half a JSON line at the tail must be
	// dropped without poisoning the records before it.
	jp := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":"job-9","state":"que`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := pendingIDs(s2)
	want := []string{"job-1:" + JournalRunning, "job-2:" + JournalQueued}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("pending after reload = %v, want %v", got, want)
	}
	// Open compacted the journal: one folded line per pending job, the
	// terminal and torn lines gone.
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("compacted journal has %d lines, want 2:\n%s", len(lines), data)
	}
	// And appends after the compaction still land.
	appendJournal(t, s2, "job-4", JournalQueued)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := pendingIDs(s3); len(got) != 3 {
		t.Fatalf("pending after second reload = %v", got)
	}
}

func TestResumeCampaignAppendsToFreshSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSegmentRecords(4)
	w, err := s.StartCampaign(Meta{ID: "camp-1", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 6) // one rolled segment + open tail
	_ = s.Close()    // crash-like: campaign never finished

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta, _ := s2.Get("camp-1"); meta.Status != StatusInterrupted {
		t.Fatalf("reloaded status = %q, want %q", meta.Status, StatusInterrupted)
	}
	if _, err := s2.ResumeCampaign("camp-9"); err == nil {
		t.Fatal("resumed unknown campaign")
	}
	w2, err := s2.ResumeCampaign("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if meta, _ := s2.Get("camp-1"); meta.Status != StatusRunning {
		t.Fatalf("resumed status = %q, want %q", meta.Status, StatusRunning)
	}
	if _, err := s2.ResumeCampaign("camp-1"); err == nil {
		t.Fatal("double resume succeeded")
	}
	for i := 6; i < 10; i++ {
		if err := w2.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Finish(StatusDone, nil, nil); err != nil {
		t.Fatal(err)
	}
	if lines := recordLines(t, s2, "camp-1"); len(lines) != 10 {
		t.Fatalf("resumed campaign has %d records, want 10", len(lines))
	}
	// The resumed writer must have started a new segment file rather
	// than appending to the possibly-torn tail of the crashed one.
	segs, _ := filepath.Glob(filepath.Join(dir, "campaigns", "camp-1", "records-*.jsonl"))
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segment files after resume, got %v", segs)
	}
	// A finished campaign cannot be resumed.
	if _, err := s2.ResumeCampaign("camp-1"); err == nil {
		t.Fatal("resumed a done campaign")
	}
	// And the records all survive another restart.
	_ = s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lines := recordLines(t, s3, "camp-1"); len(lines) != 10 {
		t.Fatalf("after reload: %d records, want 10", len(lines))
	}
}

func TestWriteErrorDegradesCampaignButKeepsReads(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(reg)
	s.SetSegmentRecords(2)
	w, err := s.StartCampaign(Meta{ID: "camp-1", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	// Break the campaign directory out from under the writer before the
	// first append (segments open lazily), so the segment create fails —
	// a full disk looks the same.
	s.mu.Lock()
	c := s.camps["camp-1"]
	s.mu.Unlock()
	c.mu.Lock()
	c.dir = filepath.Join(dir, "gone", "camp-1")
	c.mu.Unlock()

	for i := 0; i < 5; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatalf("append after degradation returned error: %v", err)
		}
	}
	// Reads keep serving every record, including the memory-only ones.
	if lines := recordLines(t, s, "camp-1"); len(lines) != 5 {
		t.Fatalf("degraded campaign serves %d records, want 5", len(lines))
	}
	if err := w.Finish(StatusDone, nil, nil); err == nil {
		t.Fatal("Finish on a degraded campaign did not surface the write error")
	}
	meta, _ := s.Get("camp-1")
	if meta.Status != StatusDegraded {
		t.Fatalf("status = %q, want %q", meta.Status, StatusDegraded)
	}
	if meta.Error == "" {
		t.Fatal("degraded campaign has no error message")
	}
	if v := reg.Counter("profipy_resultstore_write_errors_total", "").Value(); v < 1 {
		t.Fatalf("write_errors_total = %v, want >= 1", v)
	}
}

func TestRestoreSalvagesTornMeta(t *testing.T) {
	dir := t.TempDir()
	cdir := writeCampaign(t, dir, "camp-1", 5)
	// Torn meta.json: half a JSON object, as after a crash mid-rename on
	// a filesystem without atomic rename (or a corrupted sector).
	if err := os.WriteFile(filepath.Join(cdir, "meta.json"), []byte(`{"id":"camp-`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := s.Get("camp-1")
	if !ok {
		t.Fatal("campaign with torn meta was dropped")
	}
	if meta.Status != StatusInterrupted {
		t.Fatalf("salvaged status = %q, want %q", meta.Status, StatusInterrupted)
	}
	if lines := recordLines(t, s, "camp-1"); len(lines) != 5 {
		t.Fatalf("salvaged campaign serves %d records, want 5", len(lines))
	}
	if _, err := os.Stat(filepath.Join(cdir, "meta.json.bad")); err != nil {
		t.Fatalf("torn meta not quarantined: %v", err)
	}
	// The salvaged campaign is resumable.
	if _, err := s.ResumeCampaign("camp-1"); err != nil {
		t.Fatalf("resume salvaged campaign: %v", err)
	}
}
