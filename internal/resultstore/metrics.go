package resultstore

import "profipy/internal/obs"

// storeMetrics instruments the persistence layer. A nil *storeMetrics
// is valid and inert, so an uninstrumented store pays one nil check
// per event.
type storeMetrics struct {
	appends     *obs.Counter
	bytes       *obs.Counter
	fsyncs      *obs.Counter
	writeErrors *obs.Counter
	subscribers *obs.Gauge
}

// Instrument registers the store's metric families in reg and starts
// counting. Call once, before traffic; a nil reg leaves the store
// uninstrumented.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.met = &storeMetrics{
		appends: reg.Counter("profipy_resultstore_appends_total",
			"Experiment record lines appended across all campaigns."),
		bytes: reg.Counter("profipy_resultstore_bytes_total",
			"Record bytes written to segment storage (including newlines)."),
		fsyncs: reg.Counter("profipy_resultstore_fsyncs_total",
			"Durability points: segment-roll syncs, journal appends and atomic meta/report writes."),
		writeErrors: reg.Counter("profipy_resultstore_write_errors_total",
			"Segment or journal write failures; each degrades the affected campaign to memory-only records."),
		subscribers: reg.Gauge("profipy_resultstore_follow_subscribers",
			"Live Follow streams currently attached to campaigns."),
	}
}

func (m *storeMetrics) append(n int) {
	if m != nil {
		m.appends.Inc()
		m.bytes.Add(float64(n))
	}
}

func (m *storeMetrics) fsync() {
	if m != nil {
		m.fsyncs.Inc()
	}
}

func (m *storeMetrics) writeError() {
	if m != nil {
		m.writeErrors.Inc()
	}
}

func (m *storeMetrics) follow(delta float64) {
	if m != nil {
		m.subscribers.Add(delta)
	}
}
