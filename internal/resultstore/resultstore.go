// Package resultstore is the persistence layer of the as-a-service
// workflow: an append-only store of campaign metadata, experiment
// record segments and final reports, plus a journal of finished jobs.
// Records arrive as a stream (one Append per completed experiment) and
// are written through to JSONL segment files that roll at a fixed
// record count with an fsync on every roll, so a crash or shutdown
// mid-campaign loses at most the unsynced tail of one segment — and a
// graceful shutdown, which closes the writer, loses nothing. Reads are
// paginated by a monotonic record cursor and can follow a live
// campaign, which is what the SaaS layer's `?after=<cursor>` record
// pages and NDJSON streams are built on.
//
// With an empty directory path the store runs memory-only: the same
// segment structure and API, no durability. That keeps every consumer
// on one code path whether or not profipyd was given a -data-dir.
//
// Layout under the data directory:
//
//	campaigns/<id>/meta.json            campaign metadata (rewritten at finish)
//	campaigns/<id>/report.json          final analysis report
//	campaigns/<id>/records-NNNNNN.jsonl record segments, SegmentRecords lines each
//	jobs.jsonl                          terminal job snapshots, one JSON per line
//	journal.jsonl                       write-ahead job journal, fsync per entry
package resultstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Campaign status values stored in Meta.Status.
const (
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusCanceled    = "canceled"
	StatusFailed      = "failed"
	StatusInterrupted = "interrupted" // found still "running" at reopen
	// StatusDegraded marks a campaign that completed but lost segment
	// durability mid-stream (disk full, EIO): the report and the records
	// still in memory serve reads, Meta.Error carries the write failure.
	StatusDegraded = "degraded"
)

// DefaultSegmentRecords is the segment roll threshold.
const DefaultSegmentRecords = 256

// DefaultRetainCampaigns bounds how many finished campaigns a
// memory-only store keeps (a memory-only store holds every record line
// in RAM; disk-backed stores keep O(open segment) per campaign and are
// never evicted — durability is their point).
const DefaultRetainCampaigns = 64

// ErrNotFound reports an unknown campaign ID.
var ErrNotFound = errors.New("resultstore: no such campaign")

// Meta describes one stored campaign.
type Meta struct {
	ID      string `json:"id"`
	Project string `json:"project"`
	// Name is the display name (the project's human name).
	Name   string `json:"name,omitempty"`
	Status string `json:"status"`
	// Records is the number of records appended so far.
	Records int64 `json:"records"`
	// Summary is an opaque blob the API layer attaches at finish time
	// (the saas CampaignSummary).
	Summary json.RawMessage `json:"summary,omitempty"`
	// Phases is the campaign's phase-span timeline (a []trace.Span),
	// stored opaquely so the store stays decoupled from the trace
	// package.
	Phases     json.RawMessage `json:"phases,omitempty"`
	CreatedMS  int64           `json:"createdMs,omitempty"`
	FinishedMS int64           `json:"finishedMs,omitempty"`
	// Error surfaces the stream's first write failure for campaigns that
	// finished degraded.
	Error string `json:"error,omitempty"`
}

// Page is one page of a campaign's record stream.
type Page struct {
	// Records are verbatim stored JSON lines, in append order.
	Records []json.RawMessage `json:"records"`
	// Next is the cursor to pass as `after` for the following page:
	// the count of records consumed so far.
	Next int64 `json:"next"`
	// Total is the number of records stored at read time.
	Total int64 `json:"total"`
	// Done reports that the campaign is finished AND this page reached
	// the end of its records.
	Done bool `json:"done"`
}

// segment is one JSONL record segment. Closed segments of a disk-backed
// store hold no lines in memory (they are re-read on demand); the open
// segment keeps its lines for live reads, bounded by the roll
// threshold. Memory-only stores keep all lines.
type segment struct {
	name  string // file name, "" in memory-only mode
	start int64  // global index of its first record
	count int
	lines [][]byte
}

// campaign is the in-store state of one campaign.
type campaign struct {
	mu    sync.Mutex
	meta  Meta
	dir   string // campaign directory, "" in memory-only mode
	segs  []*segment
	open  *segment
	file  *os.File // open segment file (disk mode, while writing)
	seq   int64    // records appended
	live  bool     // a Writer is attached
	// nextSeg numbers the next segment file. It advances past every
	// segment ever created in the directory — including quarantined
	// ones — so a resumed campaign can never append into a file whose
	// tail may be torn.
	nextSeg int
	// degraded marks a campaign whose segment stream hit a write error:
	// file writes stop, records keep accumulating in memory for reads.
	degraded bool
	watch    chan struct{}
	// report caches the final report bytes once loaded or finished.
	report []byte
	werr   error // first write error, surfaced at Finish
}

// Store is the campaign result store. All methods are safe for
// concurrent use.
type Store struct {
	dir string // "" = memory-only

	// SegmentRecords overrides the roll threshold (tests).
	segmentRecords int
	// retainCampaigns bounds finished campaigns in memory-only mode.
	retainCampaigns int

	mu    sync.Mutex
	camps map[string]*campaign
	order []string

	jobsMu   sync.Mutex
	jobsFile *os.File
	jobs     []json.RawMessage

	// The write-ahead job journal (journal.go): journalPend is the
	// folded view of jobs with no terminal entry yet, journalOrder their
	// first-journaled order, journalF the fsync-per-append file handle
	// (nil when memory-only).
	journalMu    sync.Mutex
	journalF     *os.File
	journalPend  map[string]*JournalEntry
	journalOrder []string

	// met is set once by Instrument before traffic; nil = uninstrumented.
	met *storeMetrics
}

// Open opens (or initializes) a store rooted at dir; an empty dir gives
// a memory-only store. Existing campaign metadata, segment extents and
// the job journal are loaded; campaigns left "running" by a crash are
// surfaced as StatusInterrupted.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:             dir,
		segmentRecords:  DefaultSegmentRecords,
		retainCampaigns: DefaultRetainCampaigns,
		camps:           map[string]*campaign{},
		journalPend:     map[string]*JournalEntry{},
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(filepath.Join(dir, "campaigns"), 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	if err := s.loadCampaigns(); err != nil {
		return nil, err
	}
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	if err := s.loadJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetSegmentRecords adjusts the segment roll threshold for subsequently
// started campaigns (mainly for tests; call before StartCampaign).
func (s *Store) SetSegmentRecords(n int) {
	if n > 0 {
		s.segmentRecords = n
	}
}

// SetRetainCampaigns adjusts how many finished campaigns a memory-only
// store keeps before evicting the oldest (no effect on disk-backed
// stores).
func (s *Store) SetRetainCampaigns(n int) {
	if n > 0 {
		s.retainCampaigns = n
	}
}

// Dir reports the backing directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// evictMemory drops the oldest finished campaigns beyond the retention
// limit in memory-only mode, where every record line lives in RAM.
// Live campaigns are never evicted; disk-backed stores are untouched.
func (s *Store) evictMemory() {
	if s.dir != "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	excess := len(s.order) - s.retainCampaigns
	if excess <= 0 {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		c := s.camps[id]
		c.mu.Lock()
		live := c.live
		c.mu.Unlock()
		if excess > 0 && !live {
			delete(s.camps, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

func (s *Store) loadCampaigns() error {
	entries, err := os.ReadDir(filepath.Join(s.dir, "campaigns"))
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		cdir := filepath.Join(s.dir, "campaigns", e.Name())
		metaPath := filepath.Join(cdir, "meta.json")
		metaData, err := os.ReadFile(metaPath)
		var meta Meta
		if err != nil || json.Unmarshal(metaData, &meta) != nil || meta.ID == "" {
			// Torn or missing meta. The meta write is atomic, so this is
			// either a half-created campaign directory (no records — skip
			// it) or real corruption next to surviving segments; those
			// records are too valuable to drop, so quarantine the bad
			// meta and resurrect the campaign as interrupted.
			if segs, _ := filepath.Glob(filepath.Join(cdir, "records-*.jsonl")); len(segs) == 0 {
				continue
			}
			if metaData != nil {
				if rerr := os.Rename(metaPath, metaPath+".bad"); rerr != nil {
					return fmt.Errorf("resultstore: quarantining corrupt meta: %w", rerr)
				}
			}
			slog.Warn("resultstore: rebuilt campaign with corrupt meta",
				"campaign", e.Name())
			meta = Meta{ID: e.Name(), Status: StatusInterrupted}
		}
		if meta.Status == StatusRunning {
			meta.Status = StatusInterrupted
		}
		if _, dup := s.camps[meta.ID]; dup || sanitizeID(meta.ID) != nil || meta.ID != e.Name() {
			continue // meta claiming another directory's identity
		}
		c := &campaign{meta: meta, dir: cdir}
		if err := c.loadSegments(); err != nil {
			return err
		}
		c.meta.Records = c.seq
		s.camps[meta.ID] = c
		s.order = append(s.order, meta.ID)
	}
	sort.Strings(s.order)
	return nil
}

// loadSegments scans the campaign directory's record segments, counting
// complete lines (a torn trailing write is ignored) and recording each
// segment's extent; line data is not retained. A segment containing a
// corrupt interior line (bit rot, partial overwrite) is quarantined —
// renamed to <name>.bad and skipped — so one damaged file costs its own
// records, never the whole campaign restore.
func (c *campaign) loadSegments() error {
	names, err := filepath.Glob(filepath.Join(c.dir, "records-*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	var start int64
	for _, path := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(path), "records-%d.jsonl", &idx); err == nil && idx >= c.nextSeg {
			c.nextSeg = idx + 1
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("resultstore: %w", err)
		}
		lines := completeLines(data)
		valid := true
		for _, line := range lines {
			if !json.Valid(line) {
				valid = false
				break
			}
		}
		if !valid {
			if rerr := os.Rename(path, path+".bad"); rerr != nil {
				return fmt.Errorf("resultstore: quarantining corrupt segment: %w", rerr)
			}
			slog.Warn("resultstore: quarantined corrupt record segment",
				"campaign", c.meta.ID, "segment", filepath.Base(path), "lines", len(lines))
			continue
		}
		count := len(lines)
		c.segs = append(c.segs, &segment{name: filepath.Base(path), start: start, count: count})
		start += int64(count)
	}
	c.seq = start
	return nil
}

// completeLines splits JSONL data into its newline-terminated lines,
// dropping a torn trailing fragment.
func completeLines(data []byte) [][]byte {
	var lines [][]byte
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			return lines
		}
		lines = append(lines, data[:i])
		data = data[i+1:]
	}
}

func (s *Store) loadJobs() error {
	path := filepath.Join(s.dir, "jobs.jsonl")
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range completeLines(data) {
			if json.Valid(line) {
				s.jobs = append(s.jobs, json.RawMessage(append([]byte(nil), line...)))
			}
		}
		if len(s.jobs) > maxJobsInMemory {
			s.jobs = append([]json.RawMessage(nil), s.jobs[len(s.jobs)-maxJobsInMemory:]...)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	s.jobsFile = f
	return nil
}

// maxJobsInMemory bounds the in-RAM copy of the job journal: the file
// keeps full history, but Jobs() only ever needs recent snapshots (the
// API layer caps its restore at the scheduler's retention anyway), so
// a long-running daemon must not grow this slice forever.
const maxJobsInMemory = 1024

// AppendJob journals one terminal job snapshot.
func (s *Store) AppendJob(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs = append(s.jobs, json.RawMessage(line))
	if len(s.jobs) > maxJobsInMemory {
		s.jobs = append([]json.RawMessage(nil), s.jobs[len(s.jobs)-maxJobsInMemory:]...)
	}
	if s.jobsFile != nil {
		if _, err := s.jobsFile.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("resultstore: jobs journal: %w", err)
		}
	}
	return nil
}

// Jobs returns every journaled job snapshot in append order.
func (s *Store) Jobs() []json.RawMessage {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return append([]json.RawMessage(nil), s.jobs...)
}

// List returns the metadata of every stored campaign, sorted by ID.
func (s *Store) List() []Meta {
	s.mu.Lock()
	camps := make([]*campaign, 0, len(s.order))
	for _, id := range s.order {
		camps = append(camps, s.camps[id])
	}
	s.mu.Unlock()
	out := make([]Meta, len(camps))
	for i, c := range camps {
		c.mu.Lock()
		out[i] = c.meta
		out[i].Records = c.seq
		c.mu.Unlock()
	}
	return out
}

// Get returns one campaign's metadata.
func (s *Store) Get(id string) (Meta, bool) {
	c, ok := s.camp(id)
	if !ok {
		return Meta{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.meta
	m.Records = c.seq
	return m, true
}

func (s *Store) camp(id string) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.camps[id]
	return c, ok
}

// Report returns a campaign's final report JSON, or ErrNotFound /
// an error when the campaign has no report (yet).
func (s *Store) Report(id string) (json.RawMessage, error) {
	c, ok := s.camp(id)
	if !ok {
		return nil, ErrNotFound
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.report != nil {
		return c.report, nil
	}
	if c.dir == "" {
		return nil, fmt.Errorf("resultstore: campaign %s has no report", id)
	}
	data, err := os.ReadFile(filepath.Join(c.dir, "report.json"))
	if err != nil {
		return nil, fmt.Errorf("resultstore: campaign %s has no report: %w", id, err)
	}
	c.report = data
	return data, nil
}

// Records returns one page of a campaign's record stream: up to limit
// records after the cursor (after = records already consumed; 0 starts
// at the beginning). limit <= 0 selects a default of 100.
func (s *Store) Records(id string, after int64, limit int) (Page, error) {
	c, ok := s.camp(id)
	if !ok {
		return Page{}, ErrNotFound
	}
	if limit <= 0 {
		limit = 100
	}
	if after < 0 {
		after = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	page := Page{Next: after, Total: c.seq}
	idx := after
	for idx < c.seq && len(page.Records) < limit {
		seg := c.segmentAt(idx)
		if seg == nil {
			break
		}
		lines, err := c.segmentLines(seg)
		if err != nil {
			return Page{}, err
		}
		for _, line := range lines[idx-seg.start:] {
			if len(page.Records) >= limit {
				break
			}
			page.Records = append(page.Records, json.RawMessage(line))
			idx++
		}
	}
	page.Next = idx
	page.Done = !c.live && idx >= c.seq
	return page, nil
}

// segmentAt finds the segment containing global record index idx;
// callers hold c.mu.
func (c *campaign) segmentAt(idx int64) *segment {
	if c.open != nil && idx >= c.open.start {
		return c.open
	}
	i := sort.Search(len(c.segs), func(i int) bool {
		return c.segs[i].start+int64(c.segs[i].count) > idx
	})
	if i == len(c.segs) {
		return nil
	}
	return c.segs[i]
}

// segmentLines returns a segment's record lines, reading the file for
// closed disk-backed segments; callers hold c.mu.
func (c *campaign) segmentLines(seg *segment) ([][]byte, error) {
	if seg.lines != nil || seg.count == 0 {
		return seg.lines, nil
	}
	data, err := os.ReadFile(filepath.Join(c.dir, seg.name))
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	lines := completeLines(data)
	if len(lines) > seg.count {
		lines = lines[:seg.count]
	}
	return lines, nil
}

// watchChan returns the channel closed on the campaign's next append or
// finish; callers hold c.mu.
func (c *campaign) watchChan() chan struct{} {
	if c.watch == nil {
		c.watch = make(chan struct{})
	}
	return c.watch
}

// notifyLocked wakes all followers; callers hold c.mu.
func (c *campaign) notifyLocked() {
	if c.watch != nil {
		close(c.watch)
		c.watch = nil
	}
}

func segName(i int) string { return fmt.Sprintf("records-%06d.jsonl", i) }

// sanitizeID rejects campaign IDs that would escape the campaigns/
// directory.
func sanitizeID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return fmt.Errorf("resultstore: invalid campaign id %q", id)
	}
	return nil
}
