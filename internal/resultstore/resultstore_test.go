package resultstore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/obs"
	"profipy/internal/scanner"
	"profipy/internal/workload"
)

// testRecord builds a distinguishable record for index i.
func testRecord(i int) analysis.Record {
	return analysis.Record{
		Point:     scanner.InjectionPoint{File: fmt.Sprintf("f%d.py", i%3), Line: i, Func: "F"},
		FaultType: "T",
		Covered:   i%2 == 0,
		Result:    &workload.Result{Rounds: []workload.RoundResult{{OK: true, Steps: int64(i)}}},
	}
}

func appendN(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func recordLines(t *testing.T, s *Store, id string) []json.RawMessage {
	t.Helper()
	var all []json.RawMessage
	var after int64
	for {
		page, err := s.Records(id, after, 7)
		if err != nil {
			t.Fatalf("records after %d: %v", after, err)
		}
		all = append(all, page.Records...)
		if page.Next == after {
			return all
		}
		after = page.Next
	}
}

func TestSegmentRollAndPagination(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "memory"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			s.SetSegmentRecords(5)
			w, err := s.StartCampaign(Meta{ID: "camp-1", Project: "p"})
			if err != nil {
				t.Fatal(err)
			}
			const n = 23 // 4 full segments + open tail
			appendN(t, w, n)

			lines := recordLines(t, s, "camp-1")
			if len(lines) != n {
				t.Fatalf("paginated %d records, want %d", len(lines), n)
			}
			for i, line := range lines {
				var rec analysis.Record
				if err := json.Unmarshal(line, &rec); err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
				if rec.Point.Line != i {
					t.Errorf("record %d out of order: line %d", i, rec.Point.Line)
				}
			}

			// Mid-stream page before finish: not done.
			page, err := s.Records("camp-1", 20, 10)
			if err != nil {
				t.Fatal(err)
			}
			if page.Done || page.Total != n || len(page.Records) != 3 {
				t.Errorf("live tail page = done=%v total=%d len=%d, want false/%d/3", page.Done, page.Total, len(page.Records), n)
			}

			rep := &analysis.Report{Total: n, Modes: map[string]int{}, ByType: map[string]*analysis.TypeStats{}, ByComponent: map[string]*analysis.TypeStats{}}
			if err := w.Finish(StatusDone, map[string]int{"points": n}, rep); err != nil {
				t.Fatal(err)
			}
			page, err = s.Records("camp-1", 20, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !page.Done {
				t.Error("final page not marked done after Finish")
			}
			got, err := s.Report("camp-1")
			if err != nil {
				t.Fatal(err)
			}
			var gotRep analysis.Report
			if err := json.Unmarshal(got, &gotRep); err != nil {
				t.Fatal(err)
			}
			if gotRep.Total != n {
				t.Errorf("stored report total = %d, want %d", gotRep.Total, n)
			}
			meta, ok := s.Get("camp-1")
			if !ok || meta.Status != StatusDone || meta.Records != n {
				t.Errorf("meta = %+v, want done with %d records", meta, n)
			}
		})
	}
}

func TestReopenServesCompletedCampaign(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSegmentRecords(4)
	w, err := s.StartCampaign(Meta{ID: "camp-9", Project: "proj", Name: "python-etcd"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 11
	appendN(t, w, n)
	rep := &analysis.Report{Total: n, Modes: map[string]int{"crash": 2}, ByType: map[string]*analysis.TypeStats{}, ByComponent: map[string]*analysis.TypeStats{}}
	if err := w.Finish(StatusDone, nil, rep); err != nil {
		t.Fatal(err)
	}
	before := recordLines(t, s, "camp-9")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process opens the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas := s2.List()
	if len(metas) != 1 || metas[0].ID != "camp-9" || metas[0].Status != StatusDone || metas[0].Records != n {
		t.Fatalf("reopened metas = %+v", metas)
	}
	after := recordLines(t, s2, "camp-9")
	if !reflect.DeepEqual(before, after) {
		t.Error("records drifted across reopen")
	}
	repData, err := s2.Report("camp-9")
	if err != nil {
		t.Fatal(err)
	}
	var rep2 analysis.Report
	if err := json.Unmarshal(repData, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Modes["crash"] != 2 {
		t.Errorf("reopened report = %+v", rep2)
	}
}

func TestReopenAfterAbortKeepsAppendedRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSegmentRecords(3)
	w, err := s.StartCampaign(Meta{ID: "camp-2", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 8)
	if err := w.Abort(StatusCanceled); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := s2.Get("camp-2")
	if !ok || meta.Status != StatusCanceled || meta.Records != 8 {
		t.Fatalf("meta after abort+reopen = %+v", meta)
	}
	if got := recordLines(t, s2, "camp-2"); len(got) != 8 {
		t.Errorf("kept %d records, want 8", len(got))
	}
	if _, err := s2.Report("camp-2"); err == nil {
		t.Error("aborted campaign should have no report")
	}
}

func TestReopenMarksCrashedCampaignInterrupted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSegmentRecords(2)
	w, err := s.StartCampaign(Meta{ID: "camp-3", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 5)
	// Simulate a crash: no Finish/Abort/Close. Also tear one line.
	path := filepath.Join(dir, "campaigns", "camp-3", segName(3))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := s2.Get("camp-3")
	if !ok || meta.Status != StatusInterrupted {
		t.Fatalf("meta after crash = %+v, want interrupted", meta)
	}
	if got := recordLines(t, s2, "camp-3"); len(got) != 5 {
		t.Errorf("kept %d complete records, want 5 (torn tail dropped)", len(got))
	}
	page, err := s2.Records("camp-3", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !page.Done {
		t.Error("interrupted campaign pages should be done (nothing more will come)")
	}
}

func TestFollowStreamsLiveRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetSegmentRecords(4)
	w, err := s.StartCampaign(Meta{ID: "camp-live", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 3) // records present before the follower attaches

	const total = 10
	var mu sync.Mutex
	var got []int64
	done := make(chan error, 1)
	go func() {
		done <- s.Follow(context.Background(), "camp-live", 0, func(seq int64, line json.RawMessage) error {
			mu.Lock()
			got = append(got, seq)
			mu.Unlock()
			return nil
		})
	}()

	for i := 3; i < total; i++ {
		time.Sleep(2 * time.Millisecond)
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(StatusDone, nil, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not terminate after Finish")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != total {
		t.Fatalf("follower saw %d records, want %d", len(got), total)
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("sequence %v not contiguous", got)
		}
	}
}

func TestFollowHonorsContextAndCursor(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.StartCampaign(Meta{ID: "c", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 6)
	// Resume after cursor 4: only records 5 and 6.
	var seqs []int64
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.Follow(ctx, "c", 4, func(seq int64, line json.RawMessage) error {
			seqs = append(seqs, seq)
			if seq == 6 {
				cancel() // live campaign: follower now waits; cancel ends it
			}
			return nil
		})
	}()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("follow err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow did not honor cancellation")
	}
	if !reflect.DeepEqual(seqs, []int64{5, 6}) {
		t.Errorf("resumed seqs = %v, want [5 6]", seqs)
	}
	if err := s.Follow(context.Background(), "missing", 0, nil); err != ErrNotFound {
		t.Errorf("unknown id err = %v, want ErrNotFound", err)
	}
}

func TestJobsJournalSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.AppendJob(map[string]any{"id": fmt.Sprintf("job-%d", i), "state": "done"}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := s2.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("reloaded %d jobs, want 3", len(jobs))
	}
	var last struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(jobs[2], &last); err != nil || last.ID != "job-3" {
		t.Errorf("last job = %s (%v)", jobs[2], err)
	}
}

func TestStartCampaignRejectsBadIDs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", `a\b`} {
		if _, err := s.StartCampaign(Meta{ID: id}); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
	if _, err := s.StartCampaign(Meta{ID: "dup"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartCampaign(Meta{ID: "dup"}); err == nil {
		t.Error("duplicate campaign id accepted")
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetSegmentRecords(8)
	w, err := s.StartCampaign(Meta{ID: "camp-c", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := w.Append(testRecord(i)); err != nil {
				t.Error(err)
				return
			}
		}
		w.Finish(StatusDone, nil, nil)
	}()
	var cursor int64
	for {
		page, err := s.Records("camp-c", cursor, 50)
		if err != nil {
			t.Fatal(err)
		}
		cursor = page.Next
		if page.Done {
			break
		}
	}
	wg.Wait()
	if got := recordLines(t, s, "camp-c"); len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
}

// TestFollowCancelsMidDrain: a canceled follower must detach even while
// the campaign keeps producing records — the drain loop never reaches
// the idle watch, so cancellation has to be checked between pages. The
// follower cancels during the first page of a 2500-record backlog and
// must not be fed the remaining pages.
func TestFollowCancelsMidDrain(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	w, err := s.StartCampaign(Meta{ID: "busy", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 2500) // campaign stays live: the drain loop never idles

	subscribers := reg.Gauge("profipy_resultstore_follow_subscribers", "")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	err = s.Follow(ctx, "busy", 0, func(seq int64, line json.RawMessage) error {
		delivered++
		if seq == 10 {
			cancel()
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("follow err = %v, want context.Canceled", err)
	}
	// The page being drained at cancel time finishes (fn kept returning
	// nil), but no further page may start.
	if delivered > 1000 {
		t.Fatalf("delivered %d records after cancellation, want at most one page (1000)", delivered)
	}
	if got := subscribers.Value(); got != 0 {
		t.Fatalf("follow_subscribers gauge = %v after follower detached, want 0", got)
	}
}
