package resultstore

import (
	"encoding/json"
	"testing"
)

// TestDuplicateStartDoesNotClobberStoredMeta guards the reserve-first
// ordering: a rejected duplicate StartCampaign must leave the existing
// campaign's persisted metadata untouched.
func TestDuplicateStartDoesNotClobberStoredMeta(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.StartCampaign(Meta{ID: "camp-1", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 4)
	if err := w.Finish(StatusDone, map[string]int{"points": 4}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartCampaign(Meta{ID: "camp-1", Project: "intruder"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	s.Close()

	// The original metadata survives on disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := s2.Get("camp-1")
	if !ok || meta.Status != StatusDone || meta.Records != 4 || meta.Project != "p" {
		t.Fatalf("meta clobbered by rejected duplicate: %+v", meta)
	}
	var summary map[string]int
	if err := json.Unmarshal(meta.Summary, &summary); err != nil || summary["points"] != 4 {
		t.Fatalf("summary clobbered: %s", meta.Summary)
	}
}

// TestMemoryModeEvictsOldFinishedCampaigns bounds the memory-only
// store: record lines of evicted campaigns are released, live campaigns
// are never evicted, and disk-backed stores do not evict at all.
func TestMemoryModeEvictsOldFinishedCampaigns(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetainCampaigns(2)
	for i := 1; i <= 3; i++ {
		w, err := s.StartCampaign(Meta{ID: metaID(i), Project: "p"})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 3)
		if err := w.Finish(StatusDone, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	// A 4th start evicts down to the retention bound.
	wLive, err := s.StartCampaign(Meta{ID: metaID(4), Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.List()); got > 3 {
		t.Errorf("memory store retains %d campaigns, want <= retain+live = 3", got)
	}
	if _, ok := s.Get(metaID(1)); ok {
		t.Error("oldest finished campaign not evicted")
	}
	if _, ok := s.Get(metaID(4)); !ok {
		t.Error("live campaign evicted")
	}
	wLive.Abort(StatusCanceled)

	// Disk-backed stores never evict.
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetainCampaigns(1)
	for i := 1; i <= 3; i++ {
		w, err := d.StartCampaign(Meta{ID: metaID(i), Project: "p"})
		if err != nil {
			t.Fatal(err)
		}
		w.Finish(StatusDone, nil, nil)
	}
	if got := len(d.List()); got != 3 {
		t.Errorf("disk store evicted campaigns: %d of 3 left", got)
	}
}

func metaID(i int) string {
	return "camp-" + string(rune('0'+i))
}
