package resultstore

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"profipy/internal/analysis"
)

// Writer appends one campaign's record stream to the store. Append is
// safe to call from the campaign's single emit goroutine; Finish (or
// Abort) must be called exactly once when the campaign ends.
type Writer struct {
	s *Store
	c *campaign
}

// StartCampaign registers a campaign and returns its record writer. The
// metadata is persisted immediately with StatusRunning, so a live
// campaign is visible to readers (and to a post-crash reopen) from its
// first record on. The ID is reserved under the store lock before any
// filesystem write, so a duplicate can never clobber an existing
// campaign's persisted metadata.
func (s *Store) StartCampaign(meta Meta) (*Writer, error) {
	if err := sanitizeID(meta.ID); err != nil {
		return nil, err
	}
	meta.Status = StatusRunning
	if meta.CreatedMS == 0 {
		meta.CreatedMS = time.Now().UnixMilli()
	}
	c := &campaign{meta: meta, live: true}
	s.mu.Lock()
	if _, exists := s.camps[meta.ID]; exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("resultstore: campaign %s already stored", meta.ID)
	}
	s.camps[meta.ID] = c
	s.order = append(s.order, meta.ID)
	s.mu.Unlock()
	if s.dir != "" {
		c.dir = filepath.Join(s.dir, "campaigns", meta.ID)
		err := os.MkdirAll(c.dir, 0o755)
		if err == nil {
			err = writeFileSync(filepath.Join(c.dir, "meta.json"), mustJSON(meta))
			if err == nil {
				s.met.fsync()
			}
		}
		if err != nil {
			s.mu.Lock()
			delete(s.camps, meta.ID)
			for i, id := range s.order {
				if id == meta.ID {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	s.evictMemory()
	return &Writer{s: s, c: c}, nil
}

// ResumeCampaign reattaches a Writer to a campaign a previous process
// left behind mid-run (StatusInterrupted after a crash or shutdown):
// the surviving segments stay read-only, new records append into a
// fresh segment — never into a file whose trailing write may be torn —
// and the metadata goes back to StatusRunning. The caller is expected
// to replay the stored records into its aggregation and execute only
// the missing plan indices.
func (s *Store) ResumeCampaign(id string) (*Writer, error) {
	c, ok := s.camp(id)
	if !ok {
		return nil, ErrNotFound
	}
	c.mu.Lock()
	if c.live {
		c.mu.Unlock()
		return nil, fmt.Errorf("resultstore: campaign %s already has a writer", id)
	}
	if c.meta.Status == StatusDone || c.meta.Status == StatusDegraded {
		c.mu.Unlock()
		return nil, fmt.Errorf("resultstore: campaign %s already finished", id)
	}
	c.live = true
	c.meta.Status = StatusRunning
	c.meta.FinishedMS = 0
	c.meta.Error = ""
	meta := c.meta
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		if err := writeFileSync(filepath.Join(dir, "meta.json"), mustJSON(meta)); err != nil {
			c.mu.Lock()
			c.live = false
			c.mu.Unlock()
			return nil, err
		}
		s.met.fsync()
	}
	return &Writer{s: s, c: c}, nil
}

// Append streams one completed experiment record into the campaign's
// current segment. The line reaches the OS immediately (live readers
// and a graceful shutdown see it); fsync happens on segment roll and at
// Finish. A file-level write failure does not reject the record: the
// campaign degrades to memory-only persistence (reads keep serving,
// Finish reports StatusDegraded) and the first error is retained.
func (w *Writer) Append(rec analysis.Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return w.fail(err)
	}
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.open == nil {
		w.openSegmentLocked()
	}
	if c.file != nil {
		if _, err := c.file.Write(append(line, '\n')); err != nil {
			w.degradeLocked(fmt.Errorf("resultstore: append: %w", err))
		}
	}
	w.s.met.append(len(line) + 1)
	c.open.lines = append(c.open.lines, line)
	c.open.count++
	c.seq++
	c.meta.Records = c.seq
	c.notifyLocked()
	if c.open.count >= w.s.segmentRecords {
		w.rollLocked()
	}
	return nil
}

// openSegmentLocked starts the next segment. A failure to create the
// segment file degrades the campaign to memory-only records instead of
// dropping them; callers hold c.mu.
func (w *Writer) openSegmentLocked() {
	c := w.c
	seg := &segment{start: c.seq, lines: [][]byte{}}
	if c.dir != "" && !c.degraded {
		if c.nextSeg == 0 {
			c.nextSeg = 1
		}
		seg.name = segName(c.nextSeg)
		f, err := os.OpenFile(filepath.Join(c.dir, seg.name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			c.open = seg
			w.degradeLocked(fmt.Errorf("resultstore: segment: %w", err))
			return
		}
		c.nextSeg++
		c.file = f
	}
	c.open = seg
}

// rollLocked closes the open segment with an fsync — the durability
// point of the stream — syncs the directory entry, and forgets the
// segment's line cache in disk mode. A sync or close failure degrades
// the campaign (the lines stay served from memory); callers hold c.mu.
func (w *Writer) rollLocked() {
	c := w.c
	if c.open == nil {
		return
	}
	if c.file != nil {
		err := c.file.Sync()
		if err == nil {
			w.s.met.fsync()
			err = c.file.Close()
			c.file = nil
		}
		if err != nil {
			w.degradeLocked(fmt.Errorf("resultstore: roll segment: %w", err))
		} else {
			c.open.lines = nil // closed segments are re-read from disk
			syncDir(c.dir)
		}
	}
	c.segs = append(c.segs, c.open)
	c.open = nil
}

// degradeLocked switches the campaign to memory-only records after a
// write failure: the file handle is dropped, the first error retained
// for Finish (which will mark the campaign StatusDegraded), and every
// later segment stays in memory so reads keep serving the full stream.
// Callers hold c.mu.
func (w *Writer) degradeLocked(err error) {
	c := w.c
	w.failLocked(err)
	w.s.met.writeError()
	if !c.degraded {
		c.degraded = true
		slog.Warn("resultstore: campaign degraded to memory-only records",
			"campaign", c.meta.ID, "err", err)
	}
	if c.file != nil {
		_ = c.file.Close()
		c.file = nil
	}
}

func (w *Writer) fail(err error) error {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.failLocked(err)
}

func (w *Writer) failLocked(err error) error {
	if w.c.werr == nil {
		w.c.werr = err
	}
	return err
}

// SetPhases attaches the campaign's phase-span timeline (typically a
// []trace.Span) to its metadata. Call before Finish — the timeline is
// persisted with the terminal meta rewrite. A marshal failure is
// recorded as the stream's first error.
func (w *Writer) SetPhases(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return w.fail(fmt.Errorf("resultstore: phases: %w", err))
	}
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	w.c.meta.Phases = data
	return nil
}

// Seq reports how many records have been appended.
func (w *Writer) Seq() int64 {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.c.seq
}

// Finish seals the campaign: rolls the open segment (fsync), stores the
// final report and summary, rewrites the metadata with the terminal
// status, and wakes followers so live streams can end. It returns the
// first error the stream hit, if any; a successful campaign whose
// stream degraded finishes as StatusDegraded with the error surfaced
// in Meta.Error.
func (w *Writer) Finish(status string, summary any, report *analysis.Report) error {
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.live {
		return fmt.Errorf("resultstore: campaign %s already finished", c.meta.ID)
	}
	w.rollLocked()
	c.live = false
	if status == StatusDone && c.werr != nil {
		status = StatusDegraded
	}
	if c.werr != nil {
		c.meta.Error = c.werr.Error()
	}
	c.meta.Status = status
	c.meta.FinishedMS = time.Now().UnixMilli()
	c.meta.Records = c.seq
	if summary != nil {
		if data, err := json.Marshal(summary); err == nil {
			c.meta.Summary = data
		}
	}
	if report != nil {
		c.report = mustJSON(report)
	}
	if c.dir != "" {
		if c.report != nil {
			if err := writeFileSync(filepath.Join(c.dir, "report.json"), c.report); err != nil {
				w.failLocked(err)
			} else {
				w.s.met.fsync()
			}
		}
		if err := writeFileSync(filepath.Join(c.dir, "meta.json"), mustJSON(c.meta)); err != nil {
			w.failLocked(err)
		} else {
			w.s.met.fsync()
		}
	}
	c.notifyLocked()
	return c.werr
}

// Abort seals a campaign that did not complete (canceled, failed,
// shutdown): everything appended so far stays readable, no report is
// stored. Safe to call after Finish (no-op).
func (w *Writer) Abort(status string) error {
	w.c.mu.Lock()
	live := w.c.live
	w.c.mu.Unlock()
	if !live {
		return nil
	}
	return w.Finish(status, nil, nil)
}

// Close flushes and seals every still-live campaign (as
// StatusInterrupted) and closes the job journal. Called on daemon
// shutdown after the scheduler has drained.
func (s *Store) Close() error {
	s.mu.Lock()
	camps := make([]*campaign, 0, len(s.camps))
	for _, c := range s.camps {
		camps = append(camps, c)
	}
	s.mu.Unlock()
	var first error
	for _, c := range camps {
		c.mu.Lock()
		live := c.live
		c.mu.Unlock()
		if live {
			w := &Writer{s: s, c: c}
			if err := w.Abort(StatusInterrupted); err != nil && first == nil {
				first = err
			}
		}
	}
	s.jobsMu.Lock()
	if s.jobsFile != nil {
		if err := s.jobsFile.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.jobsFile.Close(); err != nil && first == nil {
			first = err
		}
		s.jobsFile = nil
	}
	s.jobsMu.Unlock()
	s.journalMu.Lock()
	if s.journalF != nil {
		// Every journal append already fsync'd; just release the handle.
		if err := s.journalF.Close(); err != nil && first == nil {
			first = err
		}
		s.journalF = nil
	}
	s.journalMu.Unlock()
	return first
}

// Follow streams a campaign's records through fn, starting after the
// cursor, until the campaign finishes and every record has been
// delivered (returns nil), fn returns an error (returned verbatim), or
// ctx is canceled. For an already-finished campaign it replays the
// stored records and returns.
func (s *Store) Follow(ctx context.Context, id string, after int64, fn func(seq int64, line json.RawMessage) error) error {
	c, ok := s.camp(id)
	if !ok {
		return ErrNotFound
	}
	s.met.follow(1)
	defer s.met.follow(-1)
	cursor := after
	if cursor < 0 {
		cursor = 0
	}
	for {
		// A canceled follower must detach even when the campaign keeps
		// producing: the drain paths below loop without ever reaching the
		// watch select, so the cancellation check lives at the top.
		if err := ctx.Err(); err != nil {
			return err
		}
		page, err := s.Records(id, cursor, 1000)
		if err != nil {
			return err
		}
		for i, line := range page.Records {
			if err := fn(cursor+int64(i)+1, line); err != nil {
				return err
			}
		}
		cursor = page.Next
		if page.Done {
			return nil
		}
		if len(page.Records) > 0 {
			continue // drain before sleeping
		}
		c.mu.Lock()
		if c.seq > cursor || !c.live {
			c.mu.Unlock()
			continue
		}
		watch := c.watchChan()
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-watch:
		}
	}
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err) // Meta/Report marshaling cannot fail
	}
	return data
}

// writeFileSync writes data to path durably: temp file in the same
// directory, fsync, atomic rename, directory fsync (so the rename
// itself survives a power cut — a reader after a crash sees either the
// old complete file or the new complete file, never a torn mix).
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so renames and newly created files in it
// are durable. Best effort: some filesystems reject directory fsync,
// and the data files themselves are already synced.
func syncDir(dir string) {
	if dir == "" {
		return
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
