package resultstore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"profipy/internal/analysis"
)

// Writer appends one campaign's record stream to the store. Append is
// safe to call from the campaign's single emit goroutine; Finish (or
// Abort) must be called exactly once when the campaign ends.
type Writer struct {
	s *Store
	c *campaign
}

// StartCampaign registers a campaign and returns its record writer. The
// metadata is persisted immediately with StatusRunning, so a live
// campaign is visible to readers (and to a post-crash reopen) from its
// first record on. The ID is reserved under the store lock before any
// filesystem write, so a duplicate can never clobber an existing
// campaign's persisted metadata.
func (s *Store) StartCampaign(meta Meta) (*Writer, error) {
	if err := sanitizeID(meta.ID); err != nil {
		return nil, err
	}
	meta.Status = StatusRunning
	if meta.CreatedMS == 0 {
		meta.CreatedMS = time.Now().UnixMilli()
	}
	c := &campaign{meta: meta, live: true}
	s.mu.Lock()
	if _, exists := s.camps[meta.ID]; exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("resultstore: campaign %s already stored", meta.ID)
	}
	s.camps[meta.ID] = c
	s.order = append(s.order, meta.ID)
	s.mu.Unlock()
	if s.dir != "" {
		c.dir = filepath.Join(s.dir, "campaigns", meta.ID)
		err := os.MkdirAll(c.dir, 0o755)
		if err == nil {
			err = writeFileSync(filepath.Join(c.dir, "meta.json"), mustJSON(meta))
			if err == nil {
				s.met.fsync()
			}
		}
		if err != nil {
			s.mu.Lock()
			delete(s.camps, meta.ID)
			for i, id := range s.order {
				if id == meta.ID {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	s.evictMemory()
	return &Writer{s: s, c: c}, nil
}

// Append streams one completed experiment record into the campaign's
// current segment. The line reaches the OS immediately (live readers
// and a graceful shutdown see it); fsync happens on segment roll and at
// Finish. The first write error is retained and returned by Finish.
func (w *Writer) Append(rec analysis.Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return w.fail(err)
	}
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.open == nil {
		if err := w.openSegmentLocked(); err != nil {
			return w.failLocked(err)
		}
	}
	if c.file != nil {
		if _, err := c.file.Write(append(line, '\n')); err != nil {
			return w.failLocked(fmt.Errorf("resultstore: append: %w", err))
		}
	}
	w.s.met.append(len(line) + 1)
	c.open.lines = append(c.open.lines, line)
	c.open.count++
	c.seq++
	c.meta.Records = c.seq
	c.notifyLocked()
	if c.open.count >= w.s.segmentRecords {
		if err := w.rollLocked(); err != nil {
			return w.failLocked(err)
		}
	}
	return nil
}

// openSegmentLocked starts the next segment; callers hold c.mu.
func (w *Writer) openSegmentLocked() error {
	c := w.c
	seg := &segment{start: c.seq, lines: [][]byte{}}
	if c.dir != "" {
		seg.name = segName(len(c.segs) + 1)
		f, err := os.OpenFile(filepath.Join(c.dir, seg.name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("resultstore: segment: %w", err)
		}
		c.file = f
	}
	c.open = seg
	return nil
}

// rollLocked closes the open segment with an fsync — the durability
// point of the stream — and forgets its line cache in disk mode;
// callers hold c.mu.
func (w *Writer) rollLocked() error {
	c := w.c
	if c.open == nil {
		return nil
	}
	if c.file != nil {
		if err := c.file.Sync(); err != nil {
			return fmt.Errorf("resultstore: sync segment: %w", err)
		}
		w.s.met.fsync()
		if err := c.file.Close(); err != nil {
			return fmt.Errorf("resultstore: close segment: %w", err)
		}
		c.file = nil
		c.open.lines = nil // closed segments are re-read from disk
	}
	c.segs = append(c.segs, c.open)
	c.open = nil
	return nil
}

func (w *Writer) fail(err error) error {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.failLocked(err)
}

func (w *Writer) failLocked(err error) error {
	if w.c.werr == nil {
		w.c.werr = err
	}
	return err
}

// SetPhases attaches the campaign's phase-span timeline (typically a
// []trace.Span) to its metadata. Call before Finish — the timeline is
// persisted with the terminal meta rewrite. A marshal failure is
// recorded as the stream's first error.
func (w *Writer) SetPhases(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return w.fail(fmt.Errorf("resultstore: phases: %w", err))
	}
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	w.c.meta.Phases = data
	return nil
}

// Seq reports how many records have been appended.
func (w *Writer) Seq() int64 {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.c.seq
}

// Finish seals the campaign: rolls the open segment (fsync), stores the
// final report and summary, rewrites the metadata with the terminal
// status, and wakes followers so live streams can end. It returns the
// first error the stream hit, if any.
func (w *Writer) Finish(status string, summary any, report *analysis.Report) error {
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.live {
		return fmt.Errorf("resultstore: campaign %s already finished", c.meta.ID)
	}
	if err := w.rollLocked(); err != nil {
		w.failLocked(err)
	}
	c.live = false
	c.meta.Status = status
	c.meta.FinishedMS = time.Now().UnixMilli()
	c.meta.Records = c.seq
	if summary != nil {
		if data, err := json.Marshal(summary); err == nil {
			c.meta.Summary = data
		}
	}
	if report != nil {
		c.report = mustJSON(report)
	}
	if c.dir != "" {
		if c.report != nil {
			if err := writeFileSync(filepath.Join(c.dir, "report.json"), c.report); err != nil {
				w.failLocked(err)
			} else {
				w.s.met.fsync()
			}
		}
		if err := writeFileSync(filepath.Join(c.dir, "meta.json"), mustJSON(c.meta)); err != nil {
			w.failLocked(err)
		} else {
			w.s.met.fsync()
		}
	}
	c.notifyLocked()
	return c.werr
}

// Abort seals a campaign that did not complete (canceled, failed,
// shutdown): everything appended so far stays readable, no report is
// stored. Safe to call after Finish (no-op).
func (w *Writer) Abort(status string) error {
	w.c.mu.Lock()
	live := w.c.live
	w.c.mu.Unlock()
	if !live {
		return nil
	}
	return w.Finish(status, nil, nil)
}

// Close flushes and seals every still-live campaign (as
// StatusInterrupted) and closes the job journal. Called on daemon
// shutdown after the scheduler has drained.
func (s *Store) Close() error {
	s.mu.Lock()
	camps := make([]*campaign, 0, len(s.camps))
	for _, c := range s.camps {
		camps = append(camps, c)
	}
	s.mu.Unlock()
	var first error
	for _, c := range camps {
		c.mu.Lock()
		live := c.live
		c.mu.Unlock()
		if live {
			w := &Writer{s: s, c: c}
			if err := w.Abort(StatusInterrupted); err != nil && first == nil {
				first = err
			}
		}
	}
	s.jobsMu.Lock()
	if s.jobsFile != nil {
		if err := s.jobsFile.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.jobsFile.Close(); err != nil && first == nil {
			first = err
		}
		s.jobsFile = nil
	}
	s.jobsMu.Unlock()
	return first
}

// Follow streams a campaign's records through fn, starting after the
// cursor, until the campaign finishes and every record has been
// delivered (returns nil), fn returns an error (returned verbatim), or
// ctx is canceled. For an already-finished campaign it replays the
// stored records and returns.
func (s *Store) Follow(ctx context.Context, id string, after int64, fn func(seq int64, line json.RawMessage) error) error {
	c, ok := s.camp(id)
	if !ok {
		return ErrNotFound
	}
	s.met.follow(1)
	defer s.met.follow(-1)
	cursor := after
	if cursor < 0 {
		cursor = 0
	}
	for {
		page, err := s.Records(id, cursor, 1000)
		if err != nil {
			return err
		}
		for i, line := range page.Records {
			if err := fn(cursor+int64(i)+1, line); err != nil {
				return err
			}
		}
		cursor = page.Next
		if page.Done {
			return nil
		}
		if len(page.Records) > 0 {
			continue // drain before sleeping
		}
		c.mu.Lock()
		if c.seq > cursor || !c.live {
			c.mu.Unlock()
			continue
		}
		watch := c.watchChan()
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-watch:
		}
	}
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err) // Meta/Report marshaling cannot fail
	}
	return data
}

// writeFileSync writes data to path durably: temp file in the same
// directory, fsync, atomic rename.
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}
