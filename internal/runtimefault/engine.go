package runtimefault

import (
	"fmt"
	"math"
	"math/rand"
	"unicode/utf8"

	"profipy/internal/interp"
	"profipy/internal/pattern"
)

// Engine is a per-experiment injector table: it implements the
// interpreter's CallHook and fires the armed faults whose site selector
// matches the activated function. One engine serves every round of one
// experiment (activation counters persist across rounds, like the
// in-process state of a long-running injector); create a fresh engine
// per experiment.
//
// The engine is intentionally lock-free: a workload executes its rounds
// sequentially on one goroutine, and campaigns build one engine per
// experiment, so the only cross-goroutine access is reading Report
// after the experiment completes (ordered by the campaign's own
// synchronization).
type Engine struct {
	faults []armedFault
	rng    *rand.Rand

	// round is the 1-based current workload round; armed gates firing
	// (round 2 of the two-round protocol runs with faults disarmed, the
	// runtime analog of the mutator's __fault_enabled trigger).
	// Round-scoped faults are instead gated by everArmed — whether any
	// round of this experiment ran fault-enabled — so a round(2) fault
	// can fire during the normally-disarmed round 2 of a fault-enabled
	// experiment while staying silent in fault-free runs (coverage,
	// golden passes), which never arm.
	round     int
	armed     bool
	everArmed bool

	// sites memoizes site-glob resolution per function name.
	sites map[string][]int
}

type armedFault struct {
	fault       Fault
	activations int64
	fires       int64
}

// Activation is the per-fault outcome of one experiment: how often the
// fault's site was entered while armed, and how often the trigger fired.
type Activation struct {
	Fault       string `json:"fault"`
	Site        string `json:"site"`
	Activations int64  `json:"activations"`
	Fires       int64  `json:"fires"`
}

// NewEngine builds an injector table over the given faults, drawing all
// randomness (probabilistic triggers, corruption choices) from one PRNG
// seeded with seed. Identical faults + seed + workload ⇒ identical
// injection decisions, on either execution path.
func NewEngine(faults []Fault, seed int64) (*Engine, error) {
	seen := make(map[string]bool, len(faults))
	for _, f := range faults {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		if seen[f.Name] {
			// The analysis aggregates trigger stats by fault name;
			// duplicates would silently merge.
			return nil, fmt.Errorf("runtimefault: duplicate fault name %q", f.Name)
		}
		seen[f.Name] = true
	}
	e := &Engine{
		faults:    make([]armedFault, len(faults)),
		rng:       rand.New(rand.NewSource(seed)),
		round:     1,
		armed:     true,
		everArmed: true,
		sites:     make(map[string][]int),
	}
	for i, f := range faults {
		e.faults[i] = armedFault{fault: f}
	}
	return e, nil
}

// BeginRound arms or disarms the table for one workload round (0-based,
// as the workload counts them). The standard two-round protocol arms
// round 0 and disarms the rest; activation counters persist across
// rounds. The first BeginRound call resets everArmed, so an engine
// handed to a fault-free run (which disarms every round) keeps its
// round-scoped faults silent too.
func (e *Engine) BeginRound(round int, faultEnabled bool) {
	if round == 0 {
		e.everArmed = faultEnabled
	} else if faultEnabled {
		e.everArmed = true
	}
	e.round = round + 1
	e.armed = faultEnabled
}

// Report returns the per-fault activation counts, in fault-table order.
func (e *Engine) Report() []Activation {
	out := make([]Activation, len(e.faults))
	for i := range e.faults {
		af := &e.faults[i]
		out[i] = Activation{
			Fault:       af.fault.Name,
			Site:        af.fault.Site,
			Activations: af.activations,
			Fires:       af.fires,
		}
	}
	return out
}

// resolve returns the indices of faults whose site glob matches fn.
func (e *Engine) resolve(fn string) []int {
	if idx, ok := e.sites[fn]; ok {
		return idx
	}
	idx := []int{}
	for i := range e.faults {
		if pattern.GlobAny(e.faults[i].fault.Site, fn) {
			idx = append(idx, i)
		}
	}
	e.sites[fn] = idx
	return idx
}

// live reports whether a fault participates in the current round:
// round-scoped faults stay live through every round of a fault-enabled
// experiment (so round(2) can fire while the standard protocol has the
// table disarmed), everything else only while armed.
func (e *Engine) live(af *armedFault) bool {
	if af.fault.When.Mode == TriggerRound {
		return e.everArmed
	}
	return e.armed
}

// EnterCall fires raise and delay faults on function entry. Corrupt
// faults activate on return instead (LeaveCall), since their action
// needs the return value. A firing raise preempts the entry: faults
// later in the table do not activate for that call — the raised
// exception aborts the function before they would, exactly as a real
// crash would preempt co-located instrumentation.
func (e *Engine) EnterCall(it *interp.Interp, fn string) error {
	if !e.armed && !e.everArmed {
		return nil
	}
	for _, i := range e.resolve(fn) {
		af := &e.faults[i]
		if af.fault.Do.Kind == ActionCorrupt || !e.live(af) {
			continue
		}
		af.activations++
		if !e.fires(af) {
			continue
		}
		af.fires++
		switch af.fault.Do.Kind {
		case ActionRaise:
			return it.Throw(af.fault.Do.ExcType, af.fault.Do.Message)
		case ActionDelay:
			it.AdvanceClock(af.fault.Do.DelayNS)
		}
	}
	return nil
}

// LeaveCall fires corrupt faults on successful function return,
// replacing the result with its corrupted variant. A fire is recorded
// only when the corruption actually changed the value — a value the
// mode cannot perturb (an *Object return under bitflip, an empty
// string under offbyone) leaves the record honest instead of claiming
// an injection that never happened.
func (e *Engine) LeaveCall(it *interp.Interp, fn string, result interp.Value) (interp.Value, error) {
	if !e.armed && !e.everArmed {
		return result, nil
	}
	for _, i := range e.resolve(fn) {
		af := &e.faults[i]
		if af.fault.Do.Kind != ActionCorrupt || !e.live(af) {
			continue
		}
		af.activations++
		if !e.fires(af) {
			continue
		}
		out, changed := corruptValue(e.rng, af.fault.Do.Corruption, result)
		if !changed {
			continue
		}
		af.fires++
		result = out
	}
	return result, nil
}

// fires evaluates the fault's trigger against its activation counter
// (already incremented for the current activation) and the engine PRNG.
func (e *Engine) fires(af *armedFault) bool {
	switch af.fault.When.Mode {
	case TriggerProb:
		return e.rng.Float64() < af.fault.When.P
	case TriggerEvery:
		return af.activations%af.fault.When.K == 0
	case TriggerAfter:
		return af.activations > af.fault.When.N
	case TriggerRound:
		return e.round == af.fault.When.Round
	default: // TriggerAlways
		return true
	}
}

// CorruptValue produces the corrupted variant of a value under the
// given corruption mode, drawing choices from rng. nil values stay nil
// under every mode except null (which they already are); values the
// mode cannot perturb are returned unchanged.
func CorruptValue(rng *rand.Rand, mode string, v interp.Value) interp.Value {
	out, _ := corruptValue(rng, mode, v)
	return out
}

// corruptValue is CorruptValue plus a flag reporting whether the value
// actually changed, which the engine uses to keep fire counts honest.
// Corrupted aggregates are copies — the callee's own references are
// never mutated. Objects and tuples pass through unchanged: their
// reference identity is observable, so a corrupted replica would
// perturb more than the return value.
func corruptValue(rng *rand.Rand, mode string, v interp.Value) (interp.Value, bool) {
	if mode == CorruptNull {
		return nil, v != nil
	}
	switch x := v.(type) {
	case int64:
		if mode == CorruptBitflip {
			return x ^ (1 << rng.Intn(63)), true
		}
		return x + int64(rng.Intn(2)*2-1), true
	case float64:
		if mode == CorruptBitflip {
			// Flip one mantissa bit: a subtly wrong value, never NaN/Inf.
			return flipFloatBit(x, rng.Intn(52)), true
		}
		return x + float64(rng.Intn(2)*2-1), true
	case bool:
		return !x, true
	case string:
		if mode == CorruptBitflip {
			return flipStringBit(rng, x), true
		}
		if x == "" {
			return x, false
		}
		// Drop the last rune, not the last byte: mid-rune cuts would
		// leak invalid UTF-8 into records (same rule as the scanner's
		// snippet truncation).
		_, size := utf8.DecodeLastRuneInString(x)
		return x[:len(x)-size], true
	case *interp.List:
		if len(x.Elems) == 0 {
			return x, false
		}
		if mode == CorruptBitflip {
			out := interp.NewList(append([]interp.Value(nil), x.Elems...)...)
			i := rng.Intn(len(out.Elems))
			elem, changed := corruptValue(rng, mode, out.Elems[i])
			out.Elems[i] = elem
			return out, changed
		}
		return interp.NewList(append([]interp.Value(nil), x.Elems[:len(x.Elems)-1]...)...), true
	case *interp.Map:
		keys := x.Keys()
		if len(keys) == 0 {
			return x, false
		}
		out := interp.NewMap()
		if mode == CorruptBitflip {
			// Corrupt the value under one key (insertion order is
			// deterministic, so the choice is too).
			pick := rng.Intn(len(keys))
			changed := false
			for i, k := range keys {
				val, _ := x.Get(k)
				if i == pick {
					val, changed = corruptValue(rng, mode, val)
				}
				out.Set(k, val)
			}
			return out, changed
		}
		// offbyone: drop the most recently inserted entry.
		for _, k := range keys[:len(keys)-1] {
			val, _ := x.Get(k)
			out.Set(k, val)
		}
		return out, true
	default:
		return v, false
	}
}

// flipFloatBit flips one bit of the float's mantissa.
func flipFloatBit(f float64, bit int) float64 {
	return math.Float64frombits(math.Float64bits(f) ^ (1 << uint(bit)))
}

// flipStringBit flips one low bit of a PRNG-chosen byte (bits 0–6, so
// the byte stays ASCII-range when it started there).
func flipStringBit(rng *rand.Rand, s string) string {
	if s == "" {
		return "\x01"
	}
	b := []byte(s)
	i := rng.Intn(len(b))
	b[i] ^= byte(1 << rng.Intn(7))
	return string(b)
}
