// Package runtimefault implements runtime trigger-based fault injection:
// instead of mutating source before execution (the compile-time path of
// §III), an injector table attaches to a compiled interp.Program via the
// interpreter's call hook and fires faults while the program runs — the
// scenario axis of runtime-level injectors such as ZOFI (transient
// faults during execution) and InjectV (trigger-conditioned injection).
//
// A runtime fault is a site selector (a function-name glob, resolved
// from scanned injection points), a trigger (always, probability-p,
// every-Kth activation, after-Nth activation, round-scoped) and an
// action (raise an exception, corrupt the return value, inject virtual
// latency). All randomness flows from one per-experiment seeded PRNG,
// so identical seeds yield byte-identical campaign records on both the
// compiled and the tree-walk execution paths.
package runtimefault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Trigger modes: when a fault at an activated site actually fires.
const (
	TriggerAlways = "always" // every activation
	TriggerProb   = "prob"   // each activation independently with probability P
	TriggerEvery  = "every"  // every K-th activation (K, 2K, 3K, ...)
	TriggerAfter  = "after"  // every activation after the N-th
	TriggerRound  = "round"  // every activation during workload round R (1-based)
)

// Action kinds: what a firing fault does.
const (
	ActionRaise   = "raise"   // raise an exception in the activated function
	ActionCorrupt = "corrupt" // corrupt the function's return value
	ActionDelay   = "delay"   // advance the virtual clock (injected latency)
)

// Corruption modes for ActionCorrupt.
const (
	CorruptBitflip  = "bitflip"  // flip one PRNG-chosen bit of the value
	CorruptOffByOne = "offbyone" // nudge the value by one (±1, drop last element)
	CorruptNull     = "null"     // replace the value with nil
)

// Trigger decides when an armed fault fires at an activated site.
type Trigger struct {
	Mode string `json:"mode"`
	// P is the firing probability for TriggerProb.
	P float64 `json:"p,omitempty"`
	// K is the activation period for TriggerEvery.
	K int64 `json:"k,omitempty"`
	// N is the activation threshold for TriggerAfter.
	N int64 `json:"n,omitempty"`
	// Round is the 1-based workload round for TriggerRound.
	Round int `json:"round,omitempty"`
}

// Validate checks mode-specific parameters.
func (t Trigger) Validate() error {
	switch t.Mode {
	case TriggerAlways:
		return nil
	case TriggerProb:
		// The negated form catches NaN, which every direct comparison
		// would wave through.
		if !(t.P >= 0 && t.P <= 1) {
			return fmt.Errorf("runtimefault: trigger prob(%g): probability must be in [0,1]", t.P)
		}
		return nil
	case TriggerEvery:
		if t.K < 1 {
			return fmt.Errorf("runtimefault: trigger every(%d): period must be >= 1", t.K)
		}
		return nil
	case TriggerAfter:
		if t.N < 0 {
			return fmt.Errorf("runtimefault: trigger after(%d): threshold must be >= 0", t.N)
		}
		return nil
	case TriggerRound:
		if t.Round < 1 {
			return fmt.Errorf("runtimefault: trigger round(%d): rounds are 1-based", t.Round)
		}
		return nil
	default:
		return fmt.Errorf("runtimefault: unknown trigger mode %q", t.Mode)
	}
}

// Action is what a firing fault does to the activated function.
type Action struct {
	Kind string `json:"kind"`
	// ExcType and Message configure ActionRaise.
	ExcType string `json:"excType,omitempty"`
	Message string `json:"message,omitempty"`
	// Corruption selects the ActionCorrupt mode.
	Corruption string `json:"corruption,omitempty"`
	// DelayNS is the virtual latency of ActionDelay, in nanoseconds.
	DelayNS int64 `json:"delayNs,omitempty"`
}

// Validate checks kind-specific parameters.
func (a Action) Validate() error {
	switch a.Kind {
	case ActionRaise:
		if a.ExcType == "" {
			return fmt.Errorf("runtimefault: raise action needs an exception type")
		}
		return nil
	case ActionCorrupt:
		switch a.Corruption {
		case CorruptBitflip, CorruptOffByOne, CorruptNull:
			return nil
		}
		return fmt.Errorf("runtimefault: unknown corruption %q (want bitflip, offbyone or null)", a.Corruption)
	case ActionDelay:
		if a.DelayNS <= 0 {
			return fmt.Errorf("runtimefault: delay action needs a positive duration")
		}
		return nil
	default:
		return fmt.Errorf("runtimefault: unknown action kind %q", a.Kind)
	}
}

// Fault is one runtime fault: where it can activate, when it fires and
// what it does. Site is a function-name glob in the interpreter's
// display naming (top-level "Fn", methods "Type.Method"); campaigns
// bind it per injection point to the point's enclosing function.
type Fault struct {
	Name string  `json:"name"`
	Site string  `json:"site"`
	When Trigger `json:"when"`
	Do   Action  `json:"do"`
}

// Validate checks the fault's trigger and action, and that the site
// selector is bound (an empty glob matches nothing, so an unbound fault
// would sit silently inert in an engine).
func (f Fault) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("runtimefault: fault with empty name")
	}
	if f.Site == "" {
		return fmt.Errorf("runtimefault: fault %q has no site selector (campaigns bind it per injection point; set Site to a function-name glob)", f.Name)
	}
	if err := f.When.Validate(); err != nil {
		return fmt.Errorf("fault %q: %w", f.Name, err)
	}
	if err := f.Do.Validate(); err != nil {
		return fmt.Errorf("fault %q: %w", f.Name, err)
	}
	return nil
}

// NewFault resolves the textual trigger/action pair into a fault — the
// single constructor behind both spellings (DSL `trigger{}/action{}`
// clauses and the faultload's Trigger/Action fields). An empty trigger
// defaults to always; the action is mandatory. The site selector is
// left empty: campaigns bind it per injection point, standalone users
// set Fault.Site themselves.
func NewFault(name, trigger, action string) (*Fault, error) {
	when := Trigger{Mode: TriggerAlways}
	if strings.TrimSpace(trigger) != "" {
		var err error
		when, err = ParseTrigger(trigger)
		if err != nil {
			return nil, err
		}
	}
	do, err := ParseAction(action)
	if err != nil {
		return nil, err
	}
	return &Fault{Name: name, When: when, Do: do}, nil
}

// ParseTrigger parses the DSL trigger clause syntax:
//
//	always | prob(0.25) | every(3) | after(5) | round(2)
func ParseTrigger(s string) (Trigger, error) {
	name, arg, err := splitClause(s)
	if err != nil {
		return Trigger{}, fmt.Errorf("runtimefault: bad trigger %q: %w", s, err)
	}
	t := Trigger{Mode: name}
	switch name {
	case TriggerAlways:
		if arg != "" {
			return Trigger{}, fmt.Errorf("runtimefault: trigger always takes no argument")
		}
	case TriggerProb:
		t.P, err = strconv.ParseFloat(arg, 64)
		if err != nil {
			return Trigger{}, fmt.Errorf("runtimefault: bad probability %q in trigger %q", arg, s)
		}
	case TriggerEvery:
		t.K, err = strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return Trigger{}, fmt.Errorf("runtimefault: bad period %q in trigger %q", arg, s)
		}
	case TriggerAfter:
		t.N, err = strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return Trigger{}, fmt.Errorf("runtimefault: bad threshold %q in trigger %q", arg, s)
		}
	case TriggerRound:
		r, rerr := strconv.ParseInt(arg, 10, 32)
		if rerr != nil {
			return Trigger{}, fmt.Errorf("runtimefault: bad round %q in trigger %q", arg, s)
		}
		t.Round = int(r)
	default:
		return Trigger{}, fmt.Errorf("runtimefault: unknown trigger mode %q (want always, prob, every, after or round)", name)
	}
	if err := t.Validate(); err != nil {
		return Trigger{}, err
	}
	return t, nil
}

// ParseAction parses the DSL action clause syntax:
//
//	raise(ExcType) | raise(ExcType, "message")
//	corrupt(bitflip) | corrupt(offbyone) | corrupt(null)
//	delay(500ms) | delay(2s) | delay(750us) | delay(100)   // bare = ms
func ParseAction(s string) (Action, error) {
	name, arg, err := splitClause(s)
	if err != nil {
		return Action{}, fmt.Errorf("runtimefault: bad action %q: %w", s, err)
	}
	a := Action{Kind: name}
	switch name {
	case ActionRaise:
		excType, msg := arg, ""
		if i := strings.IndexByte(arg, ','); i >= 0 {
			excType = strings.TrimSpace(arg[:i])
			msg = strings.TrimSpace(arg[i+1:])
			if unq, uerr := strconv.Unquote(msg); uerr == nil {
				msg = unq
			}
		}
		a.ExcType = strings.TrimSpace(excType)
		a.Message = msg
		if a.Message == "" {
			a.Message = "injected runtime fault"
		}
	case ActionCorrupt:
		a.Corruption = strings.TrimSpace(arg)
	case ActionDelay:
		a.DelayNS, err = parseDuration(strings.TrimSpace(arg))
		if err != nil {
			return Action{}, fmt.Errorf("runtimefault: bad delay %q in action %q", arg, s)
		}
	default:
		return Action{}, fmt.Errorf("runtimefault: unknown action kind %q (want raise, corrupt or delay)", name)
	}
	if err := a.Validate(); err != nil {
		return Action{}, err
	}
	return a, nil
}

// splitClause splits "name(arg)" or a bare "name" into its parts.
func splitClause(s string) (name, arg string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if s == "" {
			return "", "", fmt.Errorf("empty clause")
		}
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("missing closing parenthesis")
	}
	return strings.TrimSpace(s[:open]), strings.TrimSpace(s[open+1 : len(s)-1]), nil
}

// parseDuration parses a virtual duration: a number with an optional
// ns/us/ms/s suffix; a bare number means milliseconds.
func parseDuration(s string) (int64, error) {
	mult := int64(1_000_000) // default: milliseconds
	switch {
	case strings.HasSuffix(s, "ns"):
		s, mult = s[:len(s)-2], 1
	case strings.HasSuffix(s, "us"):
		s, mult = s[:len(s)-2], 1_000
	case strings.HasSuffix(s, "ms"):
		s, mult = s[:len(s)-2], 1_000_000
	case strings.HasSuffix(s, "s"):
		s, mult = s[:len(s)-1], 1_000_000_000
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, err
	}
	if n > math.MaxInt64/mult || n < math.MinInt64/mult {
		return 0, fmt.Errorf("duration overflows the virtual clock")
	}
	return n * mult, nil
}
