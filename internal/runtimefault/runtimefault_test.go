package runtimefault

import (
	"math/rand"
	"strings"
	"testing"

	"profipy/internal/interp"
)

func TestParseTrigger(t *testing.T) {
	cases := []struct {
		in   string
		want Trigger
	}{
		{"always", Trigger{Mode: TriggerAlways}},
		{"prob(0.25)", Trigger{Mode: TriggerProb, P: 0.25}},
		{"prob(1)", Trigger{Mode: TriggerProb, P: 1}},
		{"every(3)", Trigger{Mode: TriggerEvery, K: 3}},
		{"after(5)", Trigger{Mode: TriggerAfter, N: 5}},
		{"after(0)", Trigger{Mode: TriggerAfter, N: 0}},
		{"round(2)", Trigger{Mode: TriggerRound, Round: 2}},
		{"  every( 7 ) ", Trigger{Mode: TriggerEvery, K: 7}},
	}
	for _, tc := range cases {
		got, err := ParseTrigger(tc.in)
		if err != nil {
			t.Errorf("ParseTrigger(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTrigger(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseTriggerErrors(t *testing.T) {
	for _, in := range []string{
		"", "sometimes", "prob(2)", "prob(-0.1)", "prob(x)", "prob(NaN)",
		"every(0)", "every(-1)", "after(-1)", "round(0)", "always(1)",
		"every(3", "prob 0.5",
	} {
		if _, err := ParseTrigger(in); err == nil {
			t.Errorf("ParseTrigger(%q): expected error", in)
		}
	}
}

func TestParseAction(t *testing.T) {
	cases := []struct {
		in   string
		want Action
	}{
		{"raise(IOError)", Action{Kind: ActionRaise, ExcType: "IOError", Message: "injected runtime fault"}},
		{`raise(IOError, "disk gone")`, Action{Kind: ActionRaise, ExcType: "IOError", Message: "disk gone"}},
		{"raise(IOError, unquoted text)", Action{Kind: ActionRaise, ExcType: "IOError", Message: "unquoted text"}},
		{"corrupt(bitflip)", Action{Kind: ActionCorrupt, Corruption: CorruptBitflip}},
		{"corrupt(offbyone)", Action{Kind: ActionCorrupt, Corruption: CorruptOffByOne}},
		{"corrupt(null)", Action{Kind: ActionCorrupt, Corruption: CorruptNull}},
		{"delay(500ms)", Action{Kind: ActionDelay, DelayNS: 500_000_000}},
		{"delay(2s)", Action{Kind: ActionDelay, DelayNS: 2_000_000_000}},
		{"delay(750us)", Action{Kind: ActionDelay, DelayNS: 750_000}},
		{"delay(40ns)", Action{Kind: ActionDelay, DelayNS: 40}},
		{"delay(100)", Action{Kind: ActionDelay, DelayNS: 100_000_000}},
	}
	for _, tc := range cases {
		got, err := ParseAction(tc.in)
		if err != nil {
			t.Errorf("ParseAction(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseAction(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseActionErrors(t *testing.T) {
	for _, in := range []string{
		"", "explode", "raise()", "corrupt(zero)", "corrupt()",
		"delay(0)", "delay(-5)", "delay(soon)", "raise(E",
	} {
		if _, err := ParseAction(in); err == nil {
			t.Errorf("ParseAction(%q): expected error", in)
		}
	}
}

func TestFaultValidate(t *testing.T) {
	good := Fault{Name: "f", Site: "Fn", When: Trigger{Mode: TriggerAlways},
		Do: Action{Kind: ActionRaise, ExcType: "E", Message: "m"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid fault rejected: %v", err)
	}
	bad := good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = good
	bad.Site = ""
	if err := bad.Validate(); err == nil {
		t.Error("unbound site accepted (the fault could never activate)")
	}
	bad = good
	bad.When.Mode = "never"
	if err := bad.Validate(); err == nil {
		t.Error("bad trigger accepted")
	}
	bad = good
	bad.Do.Kind = "noop"
	if err := bad.Validate(); err == nil {
		t.Error("bad action accepted")
	}
	if _, err := NewEngine([]Fault{bad}, 1); err == nil {
		t.Error("NewEngine accepted an invalid fault")
	}
}

// hookRun drives the engine directly through an interpreter running a
// probe program that calls `hooked` n times, swallowing exceptions, and
// returns the concatenated outcomes.
func hookRun(t *testing.T, eng *Engine, n int) string {
	t.Helper()
	src := `package main
func hooked(i int) any { return i }
func Probe(n int) any {
	out := ""
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					out = out + "!"
				}
			}()
			out = out + ":" + str(hooked(i))
		}()
	}
	return out
}`
	it := interp.New(interp.Config{Hook: eng, MaxSteps: 200_000})
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	v, err := it.Call("Probe", int64(n))
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	s, _ := v.(string)
	return s
}

func mustEngine(t *testing.T, faults []Fault, seed int64) *Engine {
	t.Helper()
	eng, err := NewEngine(faults, seed)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineEveryKth(t *testing.T) {
	eng := mustEngine(t, []Fault{{
		Name: "e", Site: "hooked",
		When: Trigger{Mode: TriggerEvery, K: 3},
		Do:   Action{Kind: ActionRaise, ExcType: "E", Message: "m"},
	}}, 1)
	got := hookRun(t, eng, 7)
	// Activations 3 and 6 fire (1-based counting).
	if want := ":0:1!:3:4!:6"; got != want {
		t.Errorf("every(3) pattern = %q, want %q", got, want)
	}
	rep := eng.Report()
	if len(rep) != 1 || rep[0].Activations != 7 || rep[0].Fires != 2 {
		t.Errorf("report = %+v, want 7 activations / 2 fires", rep)
	}
}

func TestEngineAfterNth(t *testing.T) {
	eng := mustEngine(t, []Fault{{
		Name: "a", Site: "hooked",
		When: Trigger{Mode: TriggerAfter, N: 4},
		Do:   Action{Kind: ActionRaise, ExcType: "E", Message: "m"},
	}}, 1)
	got := hookRun(t, eng, 7)
	if want := ":0:1:2:3!!!"; got != want {
		t.Errorf("after(4) pattern = %q, want %q", got, want)
	}
}

func TestEngineProbDeterministic(t *testing.T) {
	mk := func(seed int64) string {
		eng := mustEngine(t, []Fault{{
			Name: "p", Site: "hooked",
			When: Trigger{Mode: TriggerProb, P: 0.5},
			Do:   Action{Kind: ActionRaise, ExcType: "E", Message: "m"},
		}}, seed)
		return hookRun(t, eng, 12)
	}
	if mk(7) != mk(7) {
		t.Error("same seed produced different outcomes")
	}
	if !strings.Contains(mk(7), "!") {
		t.Error("prob(0.5) over 12 activations with seed 7 never fired (suspicious)")
	}
}

func TestEngineRoundScoping(t *testing.T) {
	eng := mustEngine(t, []Fault{{
		Name: "r", Site: "hooked",
		When: Trigger{Mode: TriggerRound, Round: 2},
		Do:   Action{Kind: ActionRaise, ExcType: "E", Message: "m"},
	}}, 1)
	if got := hookRun(t, eng, 2); strings.Contains(got, "!") {
		t.Errorf("round(2) fired during round 1: %q", got)
	}
	eng.BeginRound(1, true) // round 2, armed
	if got := hookRun(t, eng, 2); got != "!!" {
		t.Errorf("round(2) in round 2 = %q, want %q", got, "!!")
	}
}

// TestEngineRoundScopedUnderStandardProtocol replays the workload's
// two-round arming sequence (round 0 enabled, round 1 disabled): a
// round(2) fault must fire during the normally-disarmed round 2 of a
// fault-enabled experiment, while a fault-free sequence (every round
// disabled, as the coverage pass runs) keeps it silent.
func TestEngineRoundScopedUnderStandardProtocol(t *testing.T) {
	mk := func() *Engine {
		return mustEngine(t, []Fault{{
			Name: "r2", Site: "hooked",
			When: Trigger{Mode: TriggerRound, Round: 2},
			Do:   Action{Kind: ActionRaise, ExcType: "E", Message: "m"},
		}}, 1)
	}
	eng := mk()
	eng.BeginRound(0, true) // round 1, armed
	if got := hookRun(t, eng, 2); got != ":0:1" {
		t.Errorf("round 1 of armed experiment = %q, want clean run", got)
	}
	eng.BeginRound(1, false) // round 2, standard protocol disarms
	if got := hookRun(t, eng, 2); got != "!!" {
		t.Errorf("round 2 of armed experiment = %q, want both activations to fire", got)
	}
	faultFree := mk()
	faultFree.BeginRound(0, false) // fault-free run: never armed
	if got := hookRun(t, faultFree, 2); got != ":0:1" {
		t.Errorf("fault-free round 1 = %q, want clean run", got)
	}
	faultFree.BeginRound(1, false)
	if got := hookRun(t, faultFree, 2); got != ":0:1" {
		t.Errorf("fault-free round 2 = %q, want clean run", got)
	}
	if rep := faultFree.Report(); rep[0].Activations != 0 {
		t.Errorf("fault-free run counted activations: %+v", rep)
	}
}

func TestEngineDisarmedCountsNothing(t *testing.T) {
	eng := mustEngine(t, []Fault{{
		Name: "d", Site: "hooked",
		When: Trigger{Mode: TriggerAlways},
		Do:   Action{Kind: ActionRaise, ExcType: "E", Message: "m"},
	}}, 1)
	eng.BeginRound(1, false)
	if got := hookRun(t, eng, 3); got != ":0:1:2" {
		t.Errorf("disarmed engine changed execution: %q", got)
	}
	if rep := eng.Report(); rep[0].Activations != 0 || rep[0].Fires != 0 {
		t.Errorf("disarmed engine counted: %+v", rep)
	}
}

func TestEngineDelayAdvancesClock(t *testing.T) {
	eng := mustEngine(t, []Fault{{
		Name: "lat", Site: "hooked",
		When: Trigger{Mode: TriggerAlways},
		Do:   Action{Kind: ActionDelay, DelayNS: 1_000_000_000},
	}}, 1)
	it := interp.New(interp.Config{Hook: eng, MaxSteps: 200_000})
	if err := it.LoadSource("t.go", []byte("package main\nfunc hooked() any { return 1 }\nfunc F() any { return hooked() + hooked() }")); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Call("F"); err != nil {
		t.Fatal(err)
	}
	if it.Clock() < 2_000_000_000 {
		t.Errorf("clock = %d, want >= 2s of injected latency", it.Clock())
	}
}

func TestCorruptValueModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if v := CorruptValue(rng, CorruptNull, int64(5)); v != nil {
		t.Errorf("null corruption = %v, want nil", v)
	}
	if v := CorruptValue(rng, CorruptBitflip, int64(5)); v == int64(5) || v == nil {
		t.Errorf("bitflip corruption left int unchanged: %v", v)
	}
	v := CorruptValue(rng, CorruptOffByOne, int64(5))
	if v != int64(4) && v != int64(6) {
		t.Errorf("offbyone corruption = %v, want 4 or 6", v)
	}
	if v := CorruptValue(rng, CorruptBitflip, true); v != false {
		t.Errorf("bitflip bool = %v, want false", v)
	}
	if v := CorruptValue(rng, CorruptOffByOne, "abc"); v != "ab" {
		t.Errorf("offbyone string = %v, want \"ab\"", v)
	}
	if v := CorruptValue(rng, CorruptOffByOne, ""); v != "" {
		t.Errorf("offbyone empty string = %v, want \"\"", v)
	}
	s, _ := CorruptValue(rng, CorruptBitflip, "abc").(string)
	if s == "abc" || len(s) != 3 {
		t.Errorf("bitflip string = %q, want same-length changed string", s)
	}
	lst := interp.NewList(int64(1), int64(2))
	out, ok := CorruptValue(rng, CorruptOffByOne, lst).(*interp.List)
	if !ok || len(out.Elems) != 1 {
		t.Errorf("offbyone list = %v, want one element", out)
	}
	if len(lst.Elems) != 2 {
		t.Error("corruption mutated the original list")
	}
	f, _ := CorruptValue(rng, CorruptBitflip, 2.5).(float64)
	if f == 2.5 {
		t.Error("bitflip float unchanged")
	}
	// nil and unknown types pass through (except under null, above).
	if v := CorruptValue(rng, CorruptBitflip, nil); v != nil {
		t.Errorf("bitflip nil = %v, want nil", v)
	}
	// offbyone drops the last rune, never splitting multi-byte UTF-8.
	if v := CorruptValue(rng, CorruptOffByOne, "café"); v != "caf" {
		t.Errorf("offbyone multi-byte string = %q, want %q", v, "caf")
	}
	// Maps corrupt as copies: offbyone drops the newest entry, bitflip
	// perturbs one value, the original is untouched.
	m := interp.NewMap()
	m.Set("a", int64(1))
	m.Set("b", int64(2))
	shrunk, ok := CorruptValue(rng, CorruptOffByOne, m).(*interp.Map)
	if !ok || shrunk.Len() != 1 {
		t.Errorf("offbyone map = %v, want 1 entry", shrunk)
	}
	if _, stillThere := shrunk.Get("b"); stillThere {
		t.Error("offbyone map should drop the most recently inserted key")
	}
	flipped, ok := CorruptValue(rng, CorruptBitflip, m).(*interp.Map)
	if !ok || flipped.Len() != 2 {
		t.Errorf("bitflip map = %v, want 2 entries", flipped)
	}
	va, _ := flipped.Get("a")
	vb, _ := flipped.Get("b")
	if va == int64(1) && vb == int64(2) {
		t.Error("bitflip map left every value unchanged")
	}
	if m.Len() != 2 {
		t.Error("corruption mutated the original map")
	}
}

// TestCorruptFiresOnlyWhenChanged asserts honest fire counting: a
// corruption that cannot perturb the return value (an *Object under
// bitflip, an empty string under offbyone) records the activation but
// not a fire.
func TestCorruptFiresOnlyWhenChanged(t *testing.T) {
	run := func(src, entry string, corruption string) []Activation {
		eng := mustEngine(t, []Fault{{
			Name: "c", Site: "hooked",
			When: Trigger{Mode: TriggerAlways},
			Do:   Action{Kind: ActionCorrupt, Corruption: corruption},
		}}, 1)
		it := interp.New(interp.Config{Hook: eng, MaxSteps: 200_000})
		if err := it.LoadSource("t.go", []byte("package main\n"+src)); err != nil {
			t.Fatal(err)
		}
		if _, err := it.Call(entry); err != nil {
			t.Fatal(err)
		}
		return eng.Report()
	}
	rep := run(`func hooked() any { return &Box{v: 1} }
func F() any { return hooked() }`, "F", CorruptBitflip)
	if rep[0].Activations != 1 || rep[0].Fires != 0 {
		t.Errorf("object return: %+v, want 1 activation / 0 fires", rep[0])
	}
	rep = run(`func hooked() any { return "" }
func F() any { return hooked() }`, "F", CorruptOffByOne)
	if rep[0].Activations != 1 || rep[0].Fires != 0 {
		t.Errorf("empty string return: %+v, want 1 activation / 0 fires", rep[0])
	}
	rep = run(`func hooked() any { return 5 }
func F() any { return hooked() }`, "F", CorruptOffByOne)
	if rep[0].Activations != 1 || rep[0].Fires != 1 {
		t.Errorf("int return: %+v, want 1 activation / 1 fire", rep[0])
	}
}

func TestEngineSiteGlobAndReportOrder(t *testing.T) {
	faults := []Fault{
		{Name: "b", Site: "Get*", When: Trigger{Mode: TriggerAlways}, Do: Action{Kind: ActionDelay, DelayNS: 1}},
		{Name: "a", Site: "nomatch", When: Trigger{Mode: TriggerAlways}, Do: Action{Kind: ActionDelay, DelayNS: 1}},
	}
	eng := mustEngine(t, faults, 1)
	it := interp.New(interp.Config{Hook: eng, MaxSteps: 200_000})
	src := "package main\nfunc GetA() any { return 1 }\nfunc GetB() any { return 2 }\nfunc Other() any { return 3 }\nfunc F() any { return GetA() + GetB() + Other() }"
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Call("F"); err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if len(rep) != 2 {
		t.Fatalf("report has %d rows, want 2", len(rep))
	}
	// Report preserves fault-table order, not alphabetical order.
	if rep[0].Fault != "b" || rep[1].Fault != "a" {
		t.Errorf("report order = %s,%s, want b,a", rep[0].Fault, rep[1].Fault)
	}
	if rep[0].Activations != 2 {
		t.Errorf("Get* activations = %d, want 2", rep[0].Activations)
	}
	if rep[1].Activations != 0 {
		t.Errorf("nomatch activations = %d, want 0", rep[1].Activations)
	}
}
