package saas

import (
	"net/http"
	"strconv"
	"time"

	"profipy/internal/obs"
)

// httpBuckets span fast JSON endpoints through long ?wait=true campaign
// runs and minutes-long NDJSON follows.
var httpBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 5, 15, 60, 300}

// instrumentHTTP wraps the API mux with request counting and latency
// by route pattern and status code. The route label is the registered
// mux pattern (e.g. "GET /api/v1/campaigns/{id}"), which http.Request
// carries after ServeHTTP returns — path parameters never leak into
// label values, so cardinality stays bounded by the route table.
func instrumentHTTP(reg *obs.Registry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	requests := reg.CounterVec("profipy_http_requests_total",
		"API requests served, by mux route pattern and status code.", "route", "status")
	latency := reg.HistogramVec("profipy_http_request_seconds",
		"API request latency, by mux route pattern.", httpBuckets, "route")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		requests.With(route, strconv.Itoa(sw.code())).Inc()
		latency.With(route).ObserveSince(start)
	})
}

// statusWriter records the response status. It forwards Flush so the
// NDJSON stream endpoint keeps its per-record flushing through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// code returns the recorded status, defaulting to 200 for handlers
// that never write.
func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
