// End-to-end tests for the asynchronous campaign job API: enqueue,
// streaming progress, concurrent completion, cancellation, and
// backpressure, all driven through the HTTP handler.
//
// Campaigns on this hardware can finish in milliseconds, so tests that
// need to observe a job mid-flight do not race the worker pool: they
// install Server.testProgressHook, which blocks the campaign inside its
// progress callback until the test releases it.
package saas

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"profipy/internal/campaign"
	"profipy/internal/scheduler"
)

func newAsyncTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServerWithOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

// installGate stalls every campaign progress update until the returned
// release function is called (idempotent; also runs at cleanup so a
// failing test cannot deadlock Server.Close). The started channel gets
// one signal per stalled update.
func installGate(t *testing.T, srv *Server) (started chan campaign.Progress, release func()) {
	t.Helper()
	started = make(chan campaign.Progress, 64)
	gate := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release) // registered after srv.Close's cleanup → runs first
	srv.testProgressHook = func(p campaign.Progress) {
		select {
		case started <- p:
		default:
		}
		<-gate
	}
	return started, release
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	code, body := getBody(t, base+"/api/v1/jobs/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET job %s = %d: %s", id, code, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("job json: %v: %s", err, body)
	}
	return st
}

func deleteJob(t *testing.T, base, id string) (int, JobStatus) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st
}

func submitDemo(t *testing.T, base string, sampleN int) string {
	t.Helper()
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = sampleN
	resp, out := postJSON(t, base+"/api/v1/campaigns", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue status = %d: %v", resp.StatusCode, out)
	}
	var jobID string
	_ = json.Unmarshal(out["job"], &jobID)
	if jobID == "" {
		t.Fatalf("no job id in %v", out)
	}
	return jobID
}

// pollUntilTerminal polls the job, collecting every snapshot, and fails
// the test if state or progress ever moves backwards.
func pollUntilTerminal(t *testing.T, base, id string) (JobStatus, []JobStatus) {
	t.Helper()
	rank := map[scheduler.State]int{
		scheduler.Queued: 0, scheduler.Running: 1,
		scheduler.Done: 2, scheduler.Failed: 2, scheduler.Canceled: 2,
	}
	var snaps []JobStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getJob(t, base, id)
		if n := len(snaps); n > 0 {
			prev := snaps[n-1]
			if rank[st.State] < rank[prev.State] {
				t.Fatalf("state went backwards: %s after %s", st.State, prev.State)
			}
			if st.Progress.Done < prev.Progress.Done {
				t.Fatalf("progress went backwards: %d after %d", st.Progress.Done, prev.Progress.Done)
			}
		}
		snaps = append(snaps, st)
		if st.State.Terminal() {
			return st, snaps
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4})
	started, release := installGate(t, srv)
	jobID := submitDemo(t, ts.URL, 0) // full 26-point campaign

	// The campaign is stalled at its first progress update (scan phase):
	// the job must be observably running with intermediate progress.
	<-started
	mid := getJob(t, ts.URL, jobID)
	if mid.State != scheduler.Running {
		t.Fatalf("stalled job = %s, want running", mid.State)
	}
	if mid.Progress.Phase != campaign.PhaseScan {
		t.Errorf("stalled phase = %q, want scan", mid.Progress.Phase)
	}
	if mid.StartedMS == 0 || mid.FinishedMS != 0 {
		t.Errorf("intermediate timestamps = %+v", mid)
	}
	release()

	final, _ := pollUntilTerminal(t, ts.URL, jobID)
	if final.State != scheduler.Done {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.Campaign == "" {
		t.Fatal("done job has no campaign id")
	}
	if final.Progress.Total == 0 || final.Progress.Done != final.Progress.Total {
		t.Fatalf("final progress = %+v, want done == total > 0", final.Progress)
	}
	if _, ok := final.PhaseMillis["execute"]; !ok {
		t.Errorf("phaseMillis missing execute: %v", final.PhaseMillis)
	}
	if final.EnqueuedMS == 0 || final.StartedMS == 0 || final.FinishedMS == 0 {
		t.Errorf("missing lifecycle timestamps: %+v", final)
	}

	// The finished campaign is fetchable through the classic API.
	code, body := getBody(t, ts.URL+"/api/v1/campaigns/"+final.Campaign)
	if code != http.StatusOK {
		t.Fatalf("campaign fetch = %d: %s", code, body)
	}
	// And the job shows up in the listing.
	code, body = getBody(t, ts.URL+"/api/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("job list = %d", code)
	}
	var list []JobStatus
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range list {
		if st.ID == jobID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s not in list %s", jobID, body)
	}
}

func TestIntermediateExecuteProgress(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4})
	// Stall only execute-phase updates: every experiment worker blocks
	// right after reporting its completed experiment, so the job shows
	// a partial done counter while the campaign is provably unfinished.
	started := make(chan campaign.Progress, 64)
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	srv.testProgressHook = func(p campaign.Progress) {
		if p.Phase == campaign.PhaseExecute && p.Done >= 1 {
			select {
			case started <- p:
			default:
			}
			<-gate
		}
	}
	jobID := submitDemo(t, ts.URL, 0) // 26 points
	<-started
	mid := getJob(t, ts.URL, jobID)
	if mid.State != scheduler.Running {
		t.Fatalf("state = %s, want running", mid.State)
	}
	if mid.Progress.Phase != campaign.PhaseExecute {
		t.Fatalf("phase = %q, want execute", mid.Progress.Phase)
	}
	if mid.Progress.Done < 1 || mid.Progress.Done >= mid.Progress.Total {
		t.Fatalf("intermediate progress = %d/%d, want 0 < done < total",
			mid.Progress.Done, mid.Progress.Total)
	}
	release()
	if final, _ := pollUntilTerminal(t, ts.URL, jobID); final.State != scheduler.Done {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
}

func TestConcurrentCampaignsBothComplete(t *testing.T) {
	_, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 2})
	a := submitDemo(t, ts.URL, 8)
	b := submitDemo(t, ts.URL, 8)
	finalA, _ := pollUntilTerminal(t, ts.URL, a)
	finalB, _ := pollUntilTerminal(t, ts.URL, b)
	if finalA.State != scheduler.Done || finalB.State != scheduler.Done {
		t.Fatalf("states = %s / %s, want done / done", finalA.State, finalB.State)
	}
	if finalA.Campaign == finalB.Campaign {
		t.Fatalf("both jobs produced campaign %s", finalA.Campaign)
	}
	for _, camp := range []string{finalA.Campaign, finalB.Campaign} {
		if code, _ := getBody(t, ts.URL+"/api/v1/campaigns/"+camp); code != http.StatusOK {
			t.Errorf("campaign %s not fetchable: %d", camp, code)
		}
	}
}

func TestQueuedJobObservableWhileWorkerBusy(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 1})
	started, release := installGate(t, srv)
	first := submitDemo(t, ts.URL, 4)
	<-started // the only worker is now stalled inside the first campaign
	second := submitDemo(t, ts.URL, 4)
	if st := getJob(t, ts.URL, second); st.State != scheduler.Queued {
		t.Fatalf("second job = %s, want queued while worker busy", st.State)
	}
	release()
	f1, _ := pollUntilTerminal(t, ts.URL, first)
	f2, _ := pollUntilTerminal(t, ts.URL, second)
	if f1.State != scheduler.Done || f2.State != scheduler.Done {
		t.Fatalf("states = %s / %s", f1.State, f2.State)
	}
}

func TestCancelJobs(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 1})
	started, release := installGate(t, srv)
	running := submitDemo(t, ts.URL, 0)
	<-started // worker stalled inside the first campaign
	queued := submitDemo(t, ts.URL, 4)

	code, st := deleteJob(t, ts.URL, queued)
	if code != http.StatusAccepted || st.State != scheduler.Canceled {
		t.Fatalf("cancel queued = %d %+v", code, st)
	}
	code, _ = deleteJob(t, ts.URL, running)
	if code != http.StatusAccepted {
		t.Fatalf("cancel running = %d", code)
	}
	release() // the campaign resumes, sees its canceled context, and stops
	final, _ := pollUntilTerminal(t, ts.URL, running)
	if final.State != scheduler.Canceled {
		t.Fatalf("running job after cancel = %s, want canceled", final.State)
	}
	// A canceled job never produces a campaign.
	if final.Campaign != "" {
		t.Errorf("canceled job has campaign %s", final.Campaign)
	}
	if st := getJob(t, ts.URL, queued); st.State != scheduler.Canceled {
		t.Fatalf("queued job after drain = %s, want canceled", st.State)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 1, QueueDepth: 1})
	started, release := installGate(t, srv)
	defer release()
	submitDemo(t, ts.URL, 4)
	<-started                // worker busy, queue empty
	submitDemo(t, ts.URL, 4) // fills the single queue slot
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d: %v", resp.StatusCode, out)
	}
	// No campaign has finished yet, so there is no load estimate: the
	// header must be the fixed fallback hint.
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After before any finished job = %q, want the fallback \"5\"", got)
	}
}

// TestRetryAfterDerivedFromLoad: once a campaign has finished, a
// queue-full 429's Retry-After derives from queue depth × recent mean
// job duration and must be a bounded integer number of seconds.
func TestRetryAfterDerivedFromLoad(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 1, QueueDepth: 1})
	// Let one fast campaign finish so the scheduler has a duration
	// sample to estimate from.
	first := submitDemo(t, ts.URL, 2)
	pollUntilTerminal(t, ts.URL, first)

	started, release := installGate(t, srv)
	defer release()
	submitDemo(t, ts.URL, 4)
	<-started                // worker busy, queue empty
	submitDemo(t, ts.URL, 4) // fills the single queue slot
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d: %v", resp.StatusCode, out)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 1 || secs > 300 {
		t.Fatalf("Retry-After = %d, want within [1, 300]", secs)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newAsyncTestServer(t, Options{Cores: 4})
	if code, _ := getBody(t, ts.URL+"/api/v1/jobs/job-999"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d", code)
	}
	if code, _ := deleteJob(t, ts.URL, "job-999"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d", code)
	}
}

// TestPrefixForkRequestByteIdentical runs the same demo campaign with
// prefixFork off and on through the HTTP API and asserts byte-identical
// reports plus actual fork engagement — the API-level form of the
// golden fork-equivalence suite.
func TestPrefixForkRequestByteIdentical(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4})
	reports := make([]string, 2)
	for i, fork := range []bool{false, true} {
		req, err := DemoCampaignRequest("A", 101)
		if err != nil {
			t.Fatal(err)
		}
		req.PrefixFork = fork
		resp, out := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("wait (fork=%v) status = %d: %v", fork, resp.StatusCode, out)
		}
		reports[i] = string(out["report"])
	}
	if reports[0] == "" || reports[0] != reports[1] {
		t.Errorf("reports differ between full-run and prefix-fork execution:\noff: %s\non:  %s",
			reports[0], reports[1])
	}
	hits := srv.Metrics().CounterVec("profipy_campaign_fork_events_total", "", "event").With("hit")
	if hits.Value() == 0 {
		t.Error("prefix-fork campaign engaged no fork hits")
	}
}
