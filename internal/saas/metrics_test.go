package saas

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"profipy/internal/trace"
)

// TestMetricsEndpointCoversAllLayers runs a campaign through the API
// and asserts the scrape output contains every layer's metric families
// with the expected route/status labels.
func TestMetricsEndpointCoversAllLayers(t *testing.T) {
	ts := newTestServer(t)

	// Generate traffic: one matched 200, one matched 404, one full
	// sharded campaign (exercises scheduler, campaign, executor and
	// resultstore instrumentation).
	if code, _ := getBody(t, ts.URL+"/api/v1/projects"); code != 200 {
		t.Fatalf("projects = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/api/v1/campaigns/nope"); code != 404 {
		t.Fatalf("missing campaign = %d", code)
	}
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 6
	req.Shards = 2
	if resp, out := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req); resp.StatusCode != http.StatusCreated {
		t.Fatalf("campaign = %d: %v", resp.StatusCode, out)
	}

	code, body := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		// HTTP middleware: pattern-labeled, not concrete paths.
		`profipy_http_requests_total{route="GET /api/v1/projects",status="200"} 1`,
		`profipy_http_requests_total{route="GET /api/v1/campaigns/{id}",status="404"} 1`,
		`profipy_http_request_seconds_count{route="GET /api/v1/projects"} 1`,
		// Scheduler.
		"profipy_scheduler_queue_depth 0",
		`profipy_scheduler_jobs_finished_total{state="done"} 1`,
		"profipy_scheduler_job_duration_seconds_count 1",
		// Campaign workflow.
		`profipy_campaign_runs_total{status="completed"} 1`,
		`profipy_campaign_experiments_total{result="ok",engine="bytecode"} 6`,
		`profipy_campaign_phase_seconds_count{phase="execute"} 1`,
		"profipy_campaign_compile_cache_",
		// Executor (sharded engine).
		`profipy_executor_records_total{engine="bytecode",executor="sharded(2×1)"} 6`,
		"profipy_executor_shard_seconds_count 2",
		// Result store.
		"profipy_resultstore_appends_total 6",
		"profipy_resultstore_fsyncs_total",
		"profipy_resultstore_follow_subscribers 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(body, `route="GET /api/v1/campaigns/nope"`) {
		t.Error("concrete path leaked into route label")
	}
	if !strings.HasPrefix(body, "# HELP") {
		t.Errorf("scrape does not start with HELP: %.80q", body)
	}
}

// TestCampaignPhaseTimeline asserts GET /campaigns/{id} carries the
// machine-readable phase spans, including per-shard execution spans,
// and that they survive a report decode by older clients.
func TestCampaignPhaseTimeline(t *testing.T) {
	ts := newTestServer(t)
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 6
	req.Shards = 2
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("campaign = %d: %v", resp.StatusCode, out)
	}
	var id string
	_ = json.Unmarshal(out["id"], &id)

	code, body := getBody(t, ts.URL+"/api/v1/campaigns/"+id)
	if code != 200 {
		t.Fatalf("campaign json = %d", code)
	}
	var view struct {
		Phases []trace.Span `json:"phases"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := map[string]trace.Span{}
	for _, sp := range view.Phases {
		if sp.EndNS < sp.StartNS {
			t.Errorf("span %q ends before it starts: %+v", sp.Name, sp)
		}
		got[sp.Name] = sp
	}
	for _, name := range []string{"scan", "compile", "execute", "aggregate", "store", "shard-0", "shard-1"} {
		if _, ok := got[name]; !ok {
			t.Errorf("phase timeline missing %q (have %v)", name, names(view.Phases))
		}
	}
	// Shard spans sit inside the execute phase's extent.
	exec, ok := got["execute"]
	if ok {
		for _, n := range []string{"shard-0", "shard-1"} {
			if sp, ok := got[n]; ok && (sp.StartNS < exec.StartNS || sp.EndNS > exec.EndNS) {
				t.Errorf("%s [%d,%d] outside execute [%d,%d]", n, sp.StartNS, sp.EndNS, exec.StartNS, exec.EndNS)
			}
		}
	}
}

func names(spans []trace.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
