// Tests for the streaming/persistence surface of the SaaS layer: record
// pagination and NDJSON streams, the persistent result store behind
// -data-dir (a restarted server keeps serving finished campaigns and
// job history without re-running anything), graceful shutdown without
// record loss, and the report-text hardening.
package saas

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/campaign"
	"profipy/internal/resultstore"
	"profipy/internal/scheduler"
)

// runDemoCampaign posts the §V-A demo campaign synchronously and
// returns the campaign ID and the decoded report.
func runDemoCampaign(t *testing.T, ts *httptest.Server, sampleN int, mutate func(*CampaignRequest)) (string, *analysis.Report) {
	t.Helper()
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = sampleN
	if mutate != nil {
		mutate(&req)
	}
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("campaign status = %d: %v", resp.StatusCode, out)
	}
	var id string
	_ = json.Unmarshal(out["id"], &id)
	var rep analysis.Report
	if err := json.Unmarshal(out["report"], &rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	return id, &rep
}

// pageRecords drains the records endpoint page by page.
func pageRecords(t *testing.T, ts *httptest.Server, id string, limit int) []analysis.Record {
	t.Helper()
	var recs []analysis.Record
	var after int64
	for {
		code, body := getBody(t, ts.URL+"/api/v1/campaigns/"+id+"/records?after="+
			jsonNum(after)+"&limit="+jsonNum(int64(limit)))
		if code != http.StatusOK {
			t.Fatalf("records page = %d %s", code, body)
		}
		var page resultstore.Page
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatalf("page json: %v", err)
		}
		for _, raw := range page.Records {
			var rec analysis.Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				t.Fatalf("record json: %v", err)
			}
			recs = append(recs, rec)
		}
		if page.Next == after {
			if !page.Done {
				t.Fatalf("empty page not done: %+v", page)
			}
			return recs
		}
		after = page.Next
	}
}

func jsonNum(v int64) string {
	data, _ := json.Marshal(v)
	return string(data)
}

func TestRecordsPaginationEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id, rep := runDemoCampaign(t, ts, 7, nil)
	recs := pageRecords(t, ts, id, 3) // force several pages
	if len(recs) != rep.Total {
		t.Fatalf("paginated %d records, want %d", len(recs), rep.Total)
	}
	// The streamed records must agree with the aggregated report.
	covered := 0
	for _, rec := range recs {
		if rec.Covered {
			covered++
		}
	}
	if covered != rep.Covered {
		t.Errorf("records say %d covered, report says %d", covered, rep.Covered)
	}
	if code, _ := getBody(t, ts.URL+"/api/v1/campaigns/nope/records"); code != http.StatusNotFound {
		t.Errorf("missing campaign records = %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/api/v1/campaigns/"+id+"/records?after=zzz"); code != http.StatusBadRequest {
		t.Errorf("bad cursor = %d, want 400", code)
	}
}

func TestStreamEndpointReplaysFinishedCampaign(t *testing.T) {
	ts := newTestServer(t)
	id, rep := runDemoCampaign(t, ts, 5, nil)
	resp, err := http.Get(ts.URL + "/api/v1/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec analysis.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		lines++
	}
	if lines != rep.Total {
		t.Errorf("stream delivered %d records, want %d", lines, rep.Total)
	}
	if code, _ := getBody(t, ts.URL+"/api/v1/campaigns/nope/stream"); code != http.StatusNotFound {
		t.Errorf("missing campaign stream = %d, want 404", code)
	}
}

// TestLiveStreamFollowsRunningCampaign gates a campaign mid-execution,
// verifies the job exposes its campaign ID while running, attaches a
// live NDJSON follower, then releases the gate and checks the follower
// received every record.
func TestLiveStreamFollowsRunningCampaign(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 1})
	started := make(chan campaign.Progress, 64)
	gate := make(chan struct{})
	var once atomic.Bool
	srv.testProgressHook = func(p campaign.Progress) {
		if p.Phase == campaign.PhaseExecute && p.Done >= 2 && once.CompareAndSwap(false, true) {
			started <- p
			<-gate
		}
	}
	defer func() {
		if once.CompareAndSwap(false, true) {
			close(gate)
		}
	}()

	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 6
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue = %d", resp.StatusCode)
	}
	var jobID string
	_ = json.Unmarshal(out["job"], &jobID)

	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never reached the gate")
	}
	// The running job links to its live campaign.
	code, body := getBody(t, ts.URL+"/api/v1/jobs/"+jobID)
	if code != http.StatusOK {
		t.Fatalf("job status = %d", code)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Campaign == "" {
		t.Fatalf("running job should expose its campaign: %+v", st)
	}

	// Attach a live follower, then release the gate.
	streamResp, err := http.Get(ts.URL + "/api/v1/campaigns/" + st.Campaign + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	close(gate)

	lines := 0
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
	}
	if lines != 6 {
		t.Errorf("live stream delivered %d records, want 6", lines)
	}
}

// TestRestartServesPersistedCampaign is the acceptance-criterion test:
// a campaign finished under -data-dir is served — report, text, record
// pages, summary list and job history — by a fresh server process on
// the same directory, without re-running anything.
func TestRestartServesPersistedCampaign(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := newAsyncTestServer(t, Options{Cores: 4, DataDir: dir})
	id, rep := runDemoCampaign(t, ts1, 6, nil)
	wantReport, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	recs1 := pageRecords(t, ts1, id, 4)
	code, wantList := getBody(t, ts1.URL+"/api/v1/campaigns")
	if code != http.StatusOK {
		t.Fatal("campaign list failed")
	}
	ts1.Close()
	srv1.Close()

	srv2, err := NewServerWithOptions(Options{Cores: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)

	// Report, byte-identical through the restart.
	code, body := getBody(t, ts2.URL+"/api/v1/campaigns/"+id)
	if code != http.StatusOK {
		t.Fatalf("restarted report = %d", code)
	}
	var rep2 analysis.Report
	if err := json.Unmarshal([]byte(body), &rep2); err != nil {
		t.Fatal(err)
	}
	gotReport, _ := json.Marshal(&rep2)
	if string(gotReport) != string(wantReport) {
		t.Errorf("report drifted across restart:\n got %s\nwant %s", gotReport, wantReport)
	}
	// Records, identical page-through.
	recs2 := pageRecords(t, ts2, id, 4)
	got, _ := json.Marshal(recs2)
	want, _ := json.Marshal(recs1)
	if string(got) != string(want) {
		t.Error("records drifted across restart")
	}
	// Text report and summary list still render.
	code, text := getBody(t, ts2.URL+"/api/v1/campaigns/"+id+"/text")
	if code != http.StatusOK || !strings.Contains(text, "experiments:") {
		t.Errorf("restarted text = %d %q", code, text)
	}
	code, list := getBody(t, ts2.URL+"/api/v1/campaigns")
	if code != http.StatusOK || list != wantList {
		t.Errorf("campaign list drifted across restart:\n got %s\nwant %s", list, wantList)
	}
	// Job history restored, linked to the campaign.
	code, jobs := getBody(t, ts2.URL+"/api/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("jobs = %d", code)
	}
	var sts []JobStatus
	if err := json.Unmarshal([]byte(jobs), &sts); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range sts {
		if st.Campaign == id && st.State == "done" {
			found = true
		}
	}
	if !found {
		t.Errorf("restored job history missing done job for %s: %s", id, jobs)
	}
	// New campaigns on the restarted server get fresh, non-colliding IDs.
	id2, _ := runDemoCampaign(t, ts2, 3, nil)
	if id2 == id {
		t.Errorf("restarted server reused campaign id %s", id)
	}
}

// TestCrashRestartAvoidsCampaignIDCollision simulates a crash that left
// a campaign in the store whose job never reached the journal: the
// restarted server must advance its counters past every stored
// campaign, so new runs get fresh IDs instead of colliding with (and
// silently not persisting over) the interrupted one.
func TestCrashRestartAvoidsCampaignIDCollision(t *testing.T) {
	dir := t.TempDir()
	// A "crashed" process: campaign camp-1 started, no job journaled,
	// no Finish — exactly what kill -9 mid-campaign leaves behind.
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := store.StartCampaign(resultstore.Meta{ID: "camp-1", Project: "demo-python-etcd"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(analysis.Record{FaultType: "T"}); err != nil {
		t.Fatal(err)
	}
	// No Finish, no Close: simulate the crash by just abandoning it.

	srv, err := NewServerWithOptions(Options{Cores: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	id, rep := runDemoCampaign(t, ts, 4, nil)
	if id == "camp-1" {
		t.Fatalf("new campaign collided with crashed campaign id %s", id)
	}
	// The new campaign's records really persisted under its own ID.
	meta, ok := srv.Store().Get(id)
	if !ok || meta.Status != resultstore.StatusDone || int(meta.Records) != rep.Total {
		t.Fatalf("new campaign not persisted: %+v", meta)
	}
	// The crashed campaign's records are still intact and separate.
	crashed, ok := srv.Store().Get("camp-1")
	if !ok || crashed.Records != 1 || crashed.Status != resultstore.StatusInterrupted {
		t.Fatalf("crashed campaign state = %+v", crashed)
	}
}

// TestJobJournalDedupAndCapOnRestore: the append-only journal may hold
// several snapshots per job and arbitrarily many jobs; a restart keeps
// the newest snapshot per ID and at most RetainJobs of them.
func TestJobJournalDedupAndCapOnRestore(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		id := jobIDFor(i)
		// Two snapshots per job: the stale one must lose.
		_ = store.AppendJob(JobStatus{ID: id, State: "failed", Error: "stale"})
		_ = store.AppendJob(JobStatus{ID: id, State: "done", Campaign: "camp-" + jsonNum(int64(i))})
	}
	store.Close()

	srv, err := NewServerWithOptions(Options{Cores: 2, DataDir: dir, RetainJobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	code, body := getBody(t, ts.URL+"/api/v1/jobs")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var sts []JobStatus
	if err := json.Unmarshal([]byte(body), &sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("restored %d jobs, want RetainJobs=3 newest", len(sts))
	}
	for _, st := range sts {
		if st.State != "done" {
			t.Errorf("job %s restored stale snapshot %q", st.ID, st.State)
		}
	}
}

func jobIDFor(i int) string {
	return "job-" + jsonNum(int64(i))
}

// TestShutdownMidCampaignLosesNoRecords is the graceful-shutdown
// satellite: records streamed to the store before Close must be
// readable from the data directory by a later process. The progress
// gate stalls the campaign after a known number of experiments; Close
// cancels it; the reopened store must hold at least the records
// completed before the stall and every stored line must parse.
func TestShutdownMidCampaignLosesNoRecords(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 1, DataDir: dir})
	srv.Store().SetSegmentRecords(2) // several rolls within one small campaign

	const gateAt = 3
	reached := make(chan struct{})
	gate := make(chan struct{})
	var once atomic.Bool
	srv.testProgressHook = func(p campaign.Progress) {
		if p.Phase == campaign.PhaseExecute && p.Done >= gateAt && once.CompareAndSwap(false, true) {
			close(reached)
			<-gate
		}
	}

	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 8
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue = %d", resp.StatusCode)
	}
	var jobID string
	_ = json.Unmarshal(out["job"], &jobID)

	select {
	case <-reached:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never reached the gate")
	}
	// Shut down mid-campaign. Close cancels the running campaign and
	// blocks until the worker drains, so release the gate concurrently.
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	time.Sleep(10 * time.Millisecond)
	close(gate)
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
	ts.Close()

	// A fresh process reads the data directory: the campaign is sealed
	// canceled with every pre-shutdown record intact and parseable.
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	metas := store.List()
	if len(metas) != 1 {
		t.Fatalf("stored campaigns = %d, want 1", len(metas))
	}
	meta := metas[0]
	if meta.Status != resultstore.StatusCanceled {
		t.Errorf("campaign status = %q, want canceled", meta.Status)
	}
	if meta.Records < gateAt {
		t.Errorf("store holds %d records, want >= %d completed before shutdown", meta.Records, gateAt)
	}
	var cursor int64
	seen := int64(0)
	for {
		page, err := store.Records(meta.ID, cursor, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, raw := range page.Records {
			var rec analysis.Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				t.Fatalf("stored record %d unparseable: %v", seen, err)
			}
			seen++
		}
		cursor = page.Next
		if page.Done {
			break
		}
	}
	if seen != meta.Records {
		t.Errorf("paged %d records, meta says %d", seen, meta.Records)
	}
}

// TestShardedCampaignRequest drives the sharded executor through the
// API and checks the report matches the default engine's byte-for-byte.
func TestShardedCampaignRequest(t *testing.T) {
	ts := newTestServer(t)
	_, repDefault := runDemoCampaign(t, ts, 6, nil)
	_, repSharded := runDemoCampaign(t, ts, 6, func(req *CampaignRequest) {
		req.Shards = 3
		req.ShardWorkers = 2
	})
	got, _ := json.Marshal(repSharded)
	want, _ := json.Marshal(repDefault)
	if string(got) != string(want) {
		t.Errorf("sharded report drifted from default:\n got %s\nwant %s", got, want)
	}
}

func TestTextReportCappedAndTyped(t *testing.T) {
	ts := newTestServer(t)
	id, _ := runDemoCampaign(t, ts, 3, nil)
	resp, err := http.Get(ts.URL + "/api/v1/campaigns/" + id + "/text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text content type = %q", ct)
	}
	if xcto := resp.Header.Get("X-Content-Type-Options"); xcto != "nosniff" {
		t.Errorf("X-Content-Type-Options = %q", xcto)
	}
}

func TestTruncateTextRuneSafe(t *testing.T) {
	long := strings.Repeat("héllo wörld ", 100)
	got := truncateText(long, 121)
	if len(got) > 121+len("\n…(truncated)\n") {
		t.Fatalf("truncated to %d bytes", len(got))
	}
	if !strings.HasSuffix(got, "\n…(truncated)\n") {
		t.Fatalf("missing truncation marker: %q", got)
	}
	if !json.Valid([]byte(jsonString(got))) {
		t.Fatal("truncation split a rune (invalid UTF-8)")
	}
	if s := truncateText("short", 100); s != "short" {
		t.Errorf("short text modified: %q", s)
	}
}

func jsonString(s string) string {
	data, _ := json.Marshal(s)
	return string(data)
}

// TestStreamDisconnectDrainsFollowSubscribers: a streaming client that
// disconnects mid-campaign must tear its follower down via the request
// context — the profipy_resultstore_follow_subscribers gauge returns to
// zero instead of leaking a goroutine per dropped client.
func TestStreamDisconnectDrainsFollowSubscribers(t *testing.T) {
	srv, ts := newAsyncTestServer(t, Options{Cores: 4, Workers: 1})
	started := make(chan campaign.Progress, 64)
	gate := make(chan struct{})
	var once atomic.Bool
	srv.testProgressHook = func(p campaign.Progress) {
		if p.Phase == campaign.PhaseExecute && p.Done >= 1 && once.CompareAndSwap(false, true) {
			started <- p
			<-gate
		}
	}
	defer func() {
		if once.CompareAndSwap(false, true) {
			close(gate)
		}
	}()

	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 4
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue = %d", resp.StatusCode)
	}
	var jobID string
	_ = json.Unmarshal(out["job"], &jobID)
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never reached the gate")
	}
	st := getJob(t, ts.URL, jobID)
	if st.Campaign == "" {
		t.Fatalf("running job has no campaign: %+v", st)
	}

	subscribers := srv.Metrics().Gauge("profipy_resultstore_follow_subscribers", "")
	// Attach a follower on the live (gated) campaign and wait until the
	// server registers it.
	streamCtx, cancelStream := context.WithCancel(context.Background())
	streamReq, err := http.NewRequestWithContext(streamCtx, http.MethodGet,
		ts.URL+"/api/v1/campaigns/"+st.Campaign+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	streamResp, err := http.DefaultClient.Do(streamReq)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	waitGauge := func(want float64, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for subscribers.Value() != want {
			if time.Now().After(deadline) {
				t.Fatalf("follow_subscribers = %v, want %v (%s)", subscribers.Value(), want, what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitGauge(1, "after stream attach")

	// Drop the client. The handler's Follow must observe the request
	// context and detach even though the campaign is still live.
	cancelStream()
	waitGauge(0, "after client disconnect")

	// Release the campaign and let the job drain normally.
	close(gate)
	if final, _ := pollUntilTerminal(t, ts.URL, jobID); final.State != scheduler.Done {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
}
