// Startup-recovery tests: the control plane write-ahead-journals every
// accepted campaign job, so a process that dies mid-flight (kill -9 —
// no shutdown hooks, no Finish, no terminal journal entry) leaves
// enough state for the next boot to re-admit the job: queued jobs re-run
// from scratch, running jobs resume from their stored records, and the
// final reports come out byte-identical to an uninterrupted run.
package saas

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"profipy/internal/analysis"
	"profipy/internal/kvclient"
	"profipy/internal/resultstore"
	"profipy/internal/scheduler"
)

// demoJournalPayload builds the write-ahead payload journalAccepted
// would have produced for a demo campaign A job.
func demoJournalPayload(t *testing.T, mutate func(*CampaignRequest)) json.RawMessage {
	t.Helper()
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 6
	if mutate != nil {
		mutate(&req)
	}
	payload, err := json.Marshal(journaledJob{
		Request: req, Project: "python-etcd", Files: kvclient.Sources(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func recoveryCount(t *testing.T, srv *Server, outcome string) float64 {
	t.Helper()
	return srv.reg.CounterVec("profipy_recovery_jobs_total", "", "outcome").With(outcome).Value()
}

// sortedRecordLines canonicalizes a record set for comparison: one
// JSON line per record, sorted — stream order is scheduling-dependent,
// record bytes are not.
func sortedRecordLines(t *testing.T, recs []analysis.Record) []string {
	t.Helper()
	lines := make([]string, len(recs))
	for i, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(data)
	}
	sort.Strings(lines)
	return lines
}

func marshalIndent(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRecoveryResumesMidFlightCampaign(t *testing.T) {
	// Golden: the same campaign run uninterrupted in its own store.
	_, goldenTS := newAsyncTestServer(t, Options{Cores: 4, DataDir: t.TempDir()})
	goldenID, goldenRep := runDemoCampaign(t, goldenTS, 6, nil)
	goldenRecs := pageRecords(t, goldenTS, goldenID, 5)
	n := len(goldenRecs)
	if n < 4 {
		t.Fatalf("golden campaign too small to interrupt meaningfully: %d records", n)
	}

	// Crash state: job-1 journaled queued→running, campaign camp-1 open
	// with the first k records appended, then the process dies — no
	// terminal journal entry, no Finish, no Close.
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := demoJournalPayload(t, nil)
	must := func(e resultstore.JournalEntry) {
		t.Helper()
		if err := store.AppendJournal(e); err != nil {
			t.Fatal(err)
		}
	}
	must(resultstore.JournalEntry{
		Job: "job-1", State: resultstore.JournalQueued,
		Campaign: "camp-1", Name: DemoProjectID, Payload: payload, TimeMS: 1,
	})
	must(resultstore.JournalEntry{Job: "job-1", State: resultstore.JournalRunning, Campaign: "camp-1", TimeMS: 2})
	w, err := store.StartCampaign(resultstore.Meta{ID: "camp-1", Project: DemoProjectID, Name: "python-etcd"})
	if err != nil {
		t.Fatal(err)
	}
	k := n / 2
	for _, rec := range goldenRecs[:k] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Finish/Close: the crash.

	srv, err := NewServerWithOptions(Options{Cores: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	st, ok := srv.sched.Wait("job-1")
	if !ok || st.State != scheduler.Done {
		t.Fatalf("recovered job = %+v", st)
	}
	if got := recoveryCount(t, srv, "resumed"); got != 1 {
		t.Fatalf("resumed count = %v, want 1", got)
	}
	if got := srv.reg.Counter("profipy_recovery_replayed_records_total", "").Value(); got != float64(k) {
		t.Fatalf("replayed records = %v, want %d", got, k)
	}
	// Exactly n records: the k replayed ones were not re-executed and
	// not re-appended, the missing n-k executed once each.
	recs := pageRecords(t, ts, "camp-1", 5)
	if len(recs) != n {
		t.Fatalf("resumed campaign has %d records, want %d (re-executed indices append duplicates)", len(recs), n)
	}
	// Stream order differs legitimately (replayed records first, then
	// the missing ones in completion order); record content may not.
	if !reflect.DeepEqual(sortedRecordLines(t, recs), sortedRecordLines(t, goldenRecs)) {
		t.Fatal("resumed records differ from uninterrupted run")
	}
	// The final report is byte-identical to the uninterrupted run's.
	code, body := getBody(t, ts.URL+"/api/v1/campaigns/camp-1")
	if code != 200 {
		t.Fatalf("GET resumed campaign = %d: %s", code, body)
	}
	var gotRep analysis.Report
	if err := json.Unmarshal([]byte(body), &gotRep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalIndent(t, &gotRep), marshalIndent(t, goldenRep)) {
		t.Fatal("resumed report differs from uninterrupted run")
	}
	meta, _ := srv.Store().Get("camp-1")
	if meta.Status != resultstore.StatusDone {
		t.Fatalf("resumed campaign status = %q", meta.Status)
	}
	// The journal retired the job: another boot re-admits nothing.
	srv.Close()
	srv2, err := NewServerWithOptions(Options{Cores: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	if pend := srv2.Store().PendingJobs(); len(pend) != 0 {
		t.Fatalf("jobs still pending after clean finish: %+v", pend)
	}
	if got := recoveryCount(t, srv2, "resumed"); got != 0 {
		t.Fatalf("second boot resumed %v jobs", got)
	}
}

// TestRecoveryRequeuesQueuedJob: a job accepted but never started (the
// queued-at-crash case) re-runs from scratch after the restart and
// completes normally.
func TestRecoveryRequeuesQueuedJob(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AppendJournal(resultstore.JournalEntry{
		Job: "job-1", State: resultstore.JournalQueued,
		Campaign: "camp-1", Name: DemoProjectID,
		Payload: demoJournalPayload(t, nil), TimeMS: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServerWithOptions(Options{Cores: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	st, ok := srv.sched.Wait("job-1")
	if !ok || st.State != scheduler.Done {
		t.Fatalf("requeued job = %+v", st)
	}
	if got := recoveryCount(t, srv, "requeued"); got != 1 {
		t.Fatalf("requeued count = %v, want 1", got)
	}
	meta, ok := srv.Store().Get("camp-1")
	if !ok || meta.Status != resultstore.StatusDone {
		t.Fatalf("campaign of requeued job = %+v", meta)
	}
	// A fresh submission must not collide with the recovered job's ID.
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	id, _ := runDemoCampaign(t, ts, 4, nil)
	if id == "camp-1" {
		t.Fatalf("fresh campaign collided with recovered ID %s", id)
	}
}

// TestRecoveryAbandonsUnusablePayload: a journal entry whose payload
// cannot rebuild a campaign is marked failed — visible in job history,
// retired from the journal — instead of crash-looping every boot.
func TestRecoveryAbandonsUnusablePayload(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AppendJournal(resultstore.JournalEntry{
		Job: "job-1", State: resultstore.JournalQueued, Name: DemoProjectID,
		Payload: json.RawMessage(`{"request":{}}`), TimeMS: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServerWithOptions(Options{Cores: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if got := recoveryCount(t, srv, "abandoned"); got != 1 {
		t.Fatalf("abandoned count = %v, want 1", got)
	}
	st, ok := srv.sched.Status("job-1")
	if !ok || st.State != scheduler.Failed || st.Error == "" {
		t.Fatalf("abandoned job = %+v", st)
	}
	// Retired: the next boot has nothing pending.
	srv.Close()
	srv2, err := NewServerWithOptions(Options{Cores: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	if pend := srv2.Store().PendingJobs(); len(pend) != 0 {
		t.Fatalf("abandoned job still pending: %+v", pend)
	}
}

// TestCancelRecoveredJob: canceling a job right after recovery (racing
// its re-admission) terminates it cleanly and retires it from the
// journal, whether the cancel lands while it is still queued or already
// running.
func TestCancelRecoveredJob(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AppendJournal(resultstore.JournalEntry{
		Job: "job-1", State: resultstore.JournalQueued,
		Campaign: "camp-1", Name: DemoProjectID,
		// Long workload: the cancel below always lands mid-run.
		Payload: demoJournalPayload(t, func(r *CampaignRequest) { r.Rounds = 400 }),
		TimeMS:  1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServerWithOptions(Options{Cores: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if _, ok := srv.sched.Cancel("job-1"); !ok {
		t.Fatal("recovered job unknown to scheduler")
	}
	st, ok := srv.sched.Wait("job-1")
	if !ok || st.State != scheduler.Canceled {
		t.Fatalf("canceled recovered job = %+v", st)
	}
	// Canceled is terminal: the journal retires it, the next boot does
	// not resurrect the job.
	srv.Close()
	srv2, err := NewServerWithOptions(Options{Cores: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	if pend := srv2.Store().PendingJobs(); len(pend) != 0 {
		t.Fatalf("canceled job still pending: %+v", pend)
	}
	st2, ok := srv2.sched.Status("job-1")
	if !ok || st2.State != scheduler.Canceled {
		t.Fatalf("job history after reboot = %+v", st2)
	}
}
