package saas

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"profipy/internal/worker"
)

func sortedLines(recs []json.RawMessage) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	sort.Strings(out)
	return out
}

// TestRemoteCampaignOverAPI drives the whole distributed stack through
// the public HTTP surface: a worker registers against the same handler
// the SaaS API is served from, a campaign posted with remote=true is
// executed by that worker, and its records match a non-remote run of
// the identical request byte for byte.
func TestRemoteCampaignOverAPI(t *testing.T) {
	srv, err := NewServerWithOptions(Options{Cores: 4, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ag := worker.New(worker.Config{Server: ts.URL, Name: "api-test", Parallel: 2, Poll: 5 * time.Millisecond})
	workerDone := make(chan error, 1)
	go func() { workerDone <- ag.Run(ctx) }()
	for deadline := time.Now().Add(5 * time.Second); srv.Fleet().LiveWorkers() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}

	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 6 // keep the test fast

	run := func(remoteRun bool) (string, []json.RawMessage) {
		req.Remote = remoteRun
		req.WaitForWorkers = remoteRun
		resp, out := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("remote=%v status = %d: %v", remoteRun, resp.StatusCode, out)
		}
		var id string
		_ = json.Unmarshal(out["id"], &id)
		code, body := getBody(t, ts.URL+"/api/v1/campaigns/"+id+"/records?limit=100")
		if code != 200 {
			t.Fatalf("records = %d %s", code, body)
		}
		var page struct {
			Records []json.RawMessage `json:"records"`
		}
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatal(err)
		}
		return id, page.Records
	}

	remoteID, remoteRecs := run(true)
	_, localRecs := run(false)
	if len(remoteRecs) != 6 {
		t.Fatalf("remote campaign produced %d records, want 6", len(remoteRecs))
	}
	// Records stream into the store in completion order, which is
	// timing-dependent under any parallel engine; the invariant is that
	// the record *sets* are byte-identical.
	if !reflect.DeepEqual(sortedLines(remoteRecs), sortedLines(localRecs)) {
		t.Errorf("remote records differ from in-process records for the same request")
	}

	code, body := getBody(t, ts.URL+"/api/v1/campaigns/"+remoteID)
	if code != 200 || !strings.Contains(body, "\"total\": 6") {
		t.Fatalf("remote campaign report = %d %s", code, body)
	}

	// The fleet listing reports the worker that executed the shards.
	code, body = getBody(t, ts.URL+"/api/v1/workers")
	if code != 200 || !strings.Contains(body, "api-test") {
		t.Fatalf("worker listing = %d %s", code, body)
	}

	cancel()
	if err := <-workerDone; err != nil && err != context.Canceled {
		t.Errorf("worker: %v", err)
	}
}
